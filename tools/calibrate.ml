(* Calibration tool: prints each synthetic benchmark's isolated
   characteristics on the baseline hierarchy, then sanity-checks MPPM
   against detailed multi-core simulation on a few 4-program mixes.  Used
   while tuning lib/trace/suite.ml; kept as a development aid.

   --jobs N fans the per-benchmark profiling and the per-mix simulations
   out over N worker domains (0 or absent: all recommended domains).
   Tasks are mapped positionally and printed after the batch, so the
   report is identical for any job count (wall-clock timings aside). *)

module Suite = Mppm_trace.Suite
module Single_core = Mppm_simcore.Single_core
module Multi_core = Mppm_multicore.Multi_core
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Configs = Mppm_cache.Configs
module Pool = Mppm_pool.Pool

let trace = 2_000_000
let interval = trace / 50

let jobs =
  let rec find = function
    | "--jobs" :: n :: _ -> ( try int_of_string n with Failure _ -> 0)
    | _ :: rest -> find rest
    | [] -> 0
  in
  let n = find (Array.to_list Sys.argv) in
  if n <= 0 then Pool.default_jobs () else n

(* Pool task metrics (per-domain counts, queue wait, utilization): the
   clock is injected here — lib/ stays wall-clock-free (lint rule D1). *)
let prof = Mppm_obs.Prof.make ~clock:Unix.gettimeofday

let () =
  Pool.with_pool ~jobs ~prof @@ fun pool ->
  let hierarchy = Configs.baseline () in
  let cfg = Single_core.config hierarchy in
  let rows =
    Pool.map pool
      (fun bench ->
        let name = bench.Mppm_trace.Benchmark.name in
        let t0 = Unix.gettimeofday () in
        let profile =
          Single_core.profile cfg ~benchmark:bench ~seed:(Suite.seed_for name)
            ~trace_instructions:trace ~interval_instructions:interval
        in
        let dt = Unix.gettimeofday () -. t0 in
        (name, profile, dt))
      Suite.all
  in
  Printf.printf "%-12s %6s %6s %6s %7s %8s\n" "benchmark" "CPI" "mCPI" "mem%"
    "MPKI" "LLCacc/ki";
  Array.iter
    (fun (name, profile, dt) ->
      let llc_acc =
        Array.fold_left
          (fun a iv -> a +. iv.Profile.llc_accesses)
          0.0 profile.Profile.intervals
      in
      Printf.printf "%-12s %6.3f %6.3f %5.1f%% %7.2f %8.2f  (%.2fs)\n" name
        (Profile.cpi profile) (Profile.memory_cpi profile)
        (100.0 *. Profile.memory_cpi_fraction profile)
        (Profile.llc_mpki profile)
        (llc_acc *. 1000.0 /. float_of_int trace)
        dt)
    rows;
  let profiles = Array.map (fun (_, p, _) -> p) rows in
  (* A few 4-program mixes: the paper's worst mix and two contrasts. *)
  let mixes =
    [|
      [| "gamess"; "gamess"; "hmmer"; "soplex" |];
      [| "gamess"; "lbm"; "mcf"; "libquantum" |];
      [| "hmmer"; "povray"; "namd"; "gromacs" |];
      [| "soplex"; "omnetpp"; "xalancbmk"; "gobmk" |];
      [| "mcf"; "lbm"; "milc"; "GemsFDTD" |];
    |]
  in
  let params = Model.default_params ~trace_instructions:trace in
  let mix_reports =
    Pool.map pool
      (fun names ->
        let offsets = Multi_core.default_offsets (Array.length names) in
        let specs =
          Array.mapi
            (fun i name ->
              {
                Multi_core.benchmark = Suite.find name;
                seed = Suite.seed_for name;
                offset = offsets.(i);
              })
            names
        in
        let t0 = Unix.gettimeofday () in
        let detailed =
          Multi_core.run (Multi_core.config hierarchy) ~programs:specs
            ~trace_instructions:trace
        in
        let dt_sim = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        let predicted =
          Model.predict_profiles params
            (Array.map (fun n -> profiles.(Suite.index n)) names)
        in
        let dt_model = Unix.gettimeofday () -. t0 in
        (names, detailed, predicted, dt_sim, dt_model))
      mixes
  in
  Array.iter
    (fun (names, detailed, predicted, dt_sim, dt_model) ->
      let cpi_single =
        Array.map (fun n -> Profile.cpi profiles.(Suite.index n)) names
      in
      let cpi_multi_meas =
        Array.map
          (fun p -> p.Multi_core.multicore_cpi)
          detailed.Multi_core.programs
      in
      let stp_meas = Metrics.stp ~cpi_single ~cpi_multi:cpi_multi_meas in
      let antt_meas = Metrics.antt ~cpi_single ~cpi_multi:cpi_multi_meas in
      Printf.printf "\nmix [%s]  (sim %.1fs, model %.3fs)\n"
        (String.concat ", " (Array.to_list names))
        dt_sim dt_model;
      Printf.printf "  STP  measured %.3f  predicted %.3f\n" stp_meas
        predicted.Model.stp;
      Printf.printf "  ANTT measured %.3f  predicted %.3f\n" antt_meas
        predicted.Model.antt;
      Array.iteri
        (fun i name ->
          let meas_slow = cpi_multi_meas.(i) /. cpi_single.(i) in
          let pred = predicted.Model.programs.(i) in
          Printf.printf "  %-12s slowdown measured %.3f predicted %.3f\n" name
            meas_slow pred.Model.slowdown)
        names)
    mix_reports;
  if Option.is_some (Mppm_obs.Prof.pool_stats prof) then
    Format.printf "@.%a@." Mppm_obs.Prof.pp_pool prof
