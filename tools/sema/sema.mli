(** The AST analysis layer: semantic rules S1-S8 over compiler-libs
    parse trees.

    Per-file {!Facts} extraction (cacheable by content fingerprint via
    {!Cache}) feeds the cross-module checks: S1/S5 effect containment
    ({!Effects}), S2 seed-flow ({!Seedflow}), S3 order-sensitive float
    accumulation over unordered [Hashtbl] iteration, S4 dead [.mli]
    exports, and the S6/S7/S8 parallel-determinism rules ({!Purity}:
    pool-task purity, no module-level mutable state in [lib/], declared
    lock order), and the P1-P4 hot-path perf rules ({!Hotpath}:
    interprocedural hotness from [(* mppm: hot *)] roots).  Findings
    share the token layer's suppression comments:
    [(* lint: allow S1 *)] on (or above) the line, or
    [(* lint: allow-file S1 *)] anywhere in the file. *)

type input = { rel : string;  (** root-relative path *)
               content : string  (** full source text *) }
(** One source file handed to {!analyze}. *)

type report = {
  diags : Mppm_lint.Diag.t list;  (** suppression-filtered, sorted *)
  parses : int;  (** files actually parsed this run *)
  cache_hits : int;  (** files served from the facts cache *)
  fallbacks : int;  (** files where the compiler-libs parse failed and
      only lexer-derived facts are available *)
  summaries : (string * string * string) list;
      (** [(file, function, effects)] transitive effect summaries *)
  hot : Hotpath.entry list;
      (** ranked hot-function inventory (the [--report hot] payload) *)
  units : Units.analysis;
      (** unit-inference outcome: coverage map ([--report units]),
          per-function classes and the [--fix] annotation suggestions *)
}
(** The outcome of one analysis run. *)

val analyze :
  ?cache_file:string -> dunes:(string * string) list -> input list -> report
(** [analyze ?cache_file ~dunes inputs] runs the full AST layer over the
    given sources.  [dunes] are the tree's dune files ([(rel, content)]),
    used to map wrapped-library alias modules to directories.  When
    [cache_file] is given, per-file facts are loaded from and persisted
    to it, so a second run over unchanged sources reports zero
    [parses]. *)

val analyze_tree : ?cache_file:string -> root:string -> unit -> report
(** Convenience wrapper: collect the tree with
    {!Mppm_lint.Engine.collect_tree}, read every file and {!analyze}. *)
