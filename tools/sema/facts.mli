(** Per-file facts extracted from the compiler-libs parse tree.

    Facts are plain serializable data (no AST nodes), so they can be
    cached by source fingerprint ({!Cache}) and re-fed to the cross-module
    passes ({!Effects}, {!Seedflow}, {!Purity}, S4 in {!Sema}) without
    re-parsing.  Extraction is purely syntactic; every judgment is a
    heuristic tuned to be zero-noise on this tree. *)

type mut_scope =
  | Mut_local
      (** the mutated value is let-bound to a fresh mutable allocation
          ([ref]/[Array.make]/[Hashtbl.create]/...) inside the function *)
  | Mut_arg
      (** the mutated value is bound somewhere in the function (a
          parameter, [let], or match case) but not to a visible fresh
          allocation — typically caller-owned state *)
  | Mut_toplevel
      (** the mutated value is free in the function: module-level state
          of this unit, or a qualified path into another unit *)

type mutation = {
  mut_target : string;  (** identifier (or qualified path) being written *)
  mut_prim : string;  (** [":="], ["<-"], ["Hashtbl.replace"], ... *)
  mut_scope : mut_scope;
  mut_line : int;
}
(** One direct write site: a [:=]/[<-] assignment or a stdlib mutation
    primitive over refs, arrays, [Bytes], [Hashtbl], [Buffer], [Queue],
    [Stack], [Atomic] or [Bigarray] values. *)

type closure = {
  ct_line : int;
  ct_writes : (string * string * string * int) list;
      (** [(target, prim, scope, line)] writes to values the closure does
          not bind itself; [scope] is ["captured"] or ["toplevel"] *)
  ct_calls : string list list;
      (** every value path referenced inside the closure, alias-expanded *)
  ct_escaping : (string list * string * int) list;
      (** [(callee, ident, line)] calls whose first positional argument
          is an identifier captured from outside the closure — paired
          with the callee's [mut_arg0] this detects shared state mutated
          on the closure's behalf *)
}
(** The S6 summary of a closure handed to the parallel surface. *)

type task =
  | Task_path of string list * string option
      (** a named task, possibly partially applied; the option is the
          first positional identifier applied at the call site *)
  | Task_closure of closure  (** an inline (or let-bound local) lambda *)

type pool_call = {
  pc_entry : string;
      (** ["Pool.map"], ["Pool.map_reduce"], ["Single_flight.get"], or
          ["Pool.map via <local wrapper>"] *)
  pc_line : int;
  pc_tasks : task list;
}
(** One call site handing work to pool domains or a single-flight memo. *)

type perf_site = {
  ps_rule : string;  (** ["P1"].."P4" *)
  ps_what : string;  (** human description of the offending shape *)
  ps_line : int;
}
(** One hot-path performance hazard: a heap allocation (P1), polymorphic
    comparison (P2), hashtable operation (P3) or boxed-float ref
    accumulation (P4).  Sites are collected per function and only become
    findings when {!Hotpath} proves the function reachable from a
    [(* mppm: hot *)] root. *)

type uop = U_add | U_sub | U_mul | U_div | U_minmax | U_cmp | U_rem
(** Arithmetic heads the unit algebra understands: additive ops require
    equal dimensions, [U_mul]/[U_div] compose and cancel them,
    [U_minmax]/[U_cmp]/[U_rem] require equal dimensions without changing
    them. *)

(** A serializable unit-relevant skeleton of an expression, extracted
    once per file and evaluated by {!Units} with a cross-module
    environment.  Conversion is lossy by design: shapes the unit algebra
    cannot reason about collapse to {!U_opaque} (which poisons inference
    and never produces a finding) or to containers whose children are
    still checked. *)
type uexpr =
  | U_opaque  (** unknown value: never produces a finding *)
  | U_const  (** literal or nullary constructor: unifies with anything *)
  | U_ident of string list  (** alias-expanded value path *)
  | U_field of string  (** record projection, by trailing field name *)
  | U_apply of {
      ua_path : string list;
          (** callee path, [[]] when the head is computed *)
      ua_args : (string option * uexpr) list;  (** (label, argument) *)
      ua_line : int;
    }
  | U_arith of { uo_op : uop; uo_lhs : uexpr; uo_rhs : uexpr; uo_line : int }
  | U_branch of uexpr list  (** if/match arms: result is the join *)
  | U_let of {
      ul_name : string;
      ul_rhs : uexpr;
      ul_body : uexpr;
      ul_line : int;
    }
  | U_fun of { uf_params : (string option * string) list; uf_body : uexpr }
  | U_seq of uexpr * uexpr  (** first checked, second is the value *)
  | U_stmt of uexpr list  (** unit-typed container: checked, result free *)
  | U_block of uexpr list  (** opaque container: checked, result unknown *)
  | U_record of { ur_fields : (string * uexpr) list; ur_line : int }
      (** record construction: each field expression is checked against
          the field's declared or conventional unit *)
  | U_setfield of { us_field : string; us_rhs : uexpr; us_line : int }
      (** [t.f <- e]: [e] is checked against [f]'s unit *)

type fn = {
  fn_name : string;  (** top-level binding name, or ["(init:<line>)"] *)
  fn_line : int;
  calls : string list list;
      (** every value path referenced inside the body, alias-expanded *)
  rng_fields : string list;
      (** record fields passed as the state argument of an [Rng] draw,
          including draws through a [let v = t.field] local alias *)
  prim_io : (string * int) list;
      (** [(primitive, line)] for each direct file/channel-I/O or
          filesystem primitive the body applies *)
  prim_conc : (string * int) list;
      (** [(primitive, line)] for each direct use of the OCaml 5
          concurrency surface ([Domain]/[Mutex]/[Condition]/[Atomic]);
          feeds the S5 containment and S8 lock-order rules *)
  has_rng : bool;  (** the body calls into [Mppm_util.Rng] *)
  mutations : mutation list;
      (** every direct write site in the body, scope-classified *)
  mut_arg0 : bool;
      (** the body directly mutates its own first positional parameter
          (the shape of every [Rng] draw and in-place simulator step) *)
  pool_calls : pool_call list;
      (** calls into the parallel surface, with their tasks *)
  top_arg_calls : (string list * string * int) list;
      (** [(callee, ident, line)] calls passing a module-level value as
          the callee's first positional argument *)
  raises : bool;  (** the body applies [raise]/[failwith]/[invalid_arg] *)
  fn_hot : bool;
      (** the binding carries a [(* mppm: hot *)] annotation on its line
          or the line above — a hotness root *)
  fn_has_loop : bool;
      (** the warm region contains a [while]/[for] loop; for an annotated
          root this restricts the hot region to its loops *)
  warm_sites : perf_site list;
      (** P1-P4 shapes anywhere in the body outside cold guards
          (branches conditioned on [Invariant]/[Trace]/[Prof.enabled],
          [Trace.emit] thunks and [Invariant] applications, and
          [(* mppm: cold *)]-marked expressions) *)
  loop_sites : perf_site list;
      (** the subset of {!warm_sites} inside [while]/[for] loops,
          including the bodies of local lambdas referenced from a loop *)
  warm_calls : string list list;
      (** value paths referenced outside cold guards — the hotness
          propagation edges of a transitively-hot (or loop-free root)
          function *)
  loop_calls : string list list;
      (** value paths referenced inside loops — the propagation edges of
          an annotated root whose hot region is its loops *)
  fn_uparams : (string option * string) list;
      (** every parameter in binding order: [(label, name)] *)
  fn_ubody : uexpr;
      (** unit skeleton of the body with parameters stripped; the {!Units}
          pass evaluates it to infer the result unit and check every
          arithmetic / call / record-construction site *)
  fn_unit_annot : string option;
      (** the [(* mppm: unit ... *)] annotation on the binding's line, the
          line above, or two above (stacking with a hot marker) *)
}

type rng_create = {
  rc_line : int;
  rc_constant_seed : bool;
      (** the [~seed] argument mentions no identifier at all — a baked-in
          literal *)
}

type float_accum = { fa_line : int; fa_context : string }
(** An order-sensitive float accumulation site (S3): float arithmetic
    inside a closure fed to unordered [Hashtbl] iteration. *)

type t = {
  rel : string;  (** normalized root-relative path *)
  unit_name : string;  (** capitalized stem, e.g. ["Generator"] *)
  dir : string;  (** e.g. ["lib/trace"] *)
  is_mli : bool;
  parse_failed : bool;
      (** the compiler-libs parse failed; only the lexer-derived fields
          ([allows], [allow_files]) are populated *)
  opens : string list list;  (** [open]ed module paths, file-wide *)
  aliases : (string * string list) list;  (** [module X = A.B] aliases *)
  fns : fn list;
  refs : string list list;  (** every value path referenced in the file *)
  mli_vals : (string * int) list;  (** [.mli] [val] items: [(name, line)] *)
  val_units : (string * string) list;
      (** [(val name, unit annotation)] for each [.mli] item carrying a
          [(* mppm: unit ... *)] comment on its line or the line above *)
  field_units : (string * string) list;
      (** [(record field, unit annotation)] pairs from the file's type
          declarations (both layers of a [.ml]/[.mli] pair contribute) *)
  rng_creates : rng_create list;
  float_accums : float_accum list;
  toplevel_muts : (string * string * int) list;
      (** [(name, kind, line)] module-level mutable allocations — the S7
          inventory ([ref]/[Hashtbl.create]/[Buffer.create]/...).
          Mutable records and toplevel arrays are caught at their write
          sites instead, so constant tables stay unflagged. *)
  allows : (string * int) list;  (** line-scoped suppressions (shared
      syntax with the token layer) *)
  allow_files : string list;  (** file-scoped suppressions *)
}

val unit_key_of_rel : string -> string
(** The globally unique compilation-unit key of a source path: the path
    without its extension, so a [.ml]/[.mli] pair shares one key. *)

val extract : rel:string -> string -> t
(** [extract ~rel content] parses and scans one source file.  Total: on
    parse failure the result has [parse_failed = true] and carries only
    the lexer-derived suppression data. *)
