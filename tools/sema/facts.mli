(** Per-file facts extracted from the compiler-libs parse tree.

    Facts are plain serializable data (no AST nodes), so they can be
    cached by source fingerprint ({!Cache}) and re-fed to the cross-module
    passes ({!Effects}, {!Seedflow}, S4 in {!Sema}) without re-parsing.
    Extraction is purely syntactic; every judgment is a heuristic tuned to
    be zero-noise on this tree. *)

type fn = {
  fn_name : string;  (** top-level binding name, or ["(init:<line>)"] *)
  fn_line : int;
  calls : string list list;
      (** every value path referenced inside the body, alias-expanded *)
  rng_fields : string list;
      (** record fields passed as the state argument of an [Rng] draw,
          including draws through a [let v = t.field] local alias *)
  prim_io : (string * int) list;
      (** [(primitive, line)] for each direct file/channel-I/O or
          filesystem primitive the body applies *)
  prim_conc : (string * int) list;
      (** [(primitive, line)] for each direct use of the OCaml 5
          concurrency surface ([Domain]/[Mutex]/[Condition]/[Atomic]);
          feeds the S5 containment rule *)
  has_rng : bool;  (** the body calls into [Mppm_util.Rng] *)
  mutates_global : bool;
      (** the body assigns ([:=] or [<-]) a module-level value *)
  raises : bool;  (** the body applies [raise]/[failwith]/[invalid_arg] *)
}

type rng_create = {
  rc_line : int;
  rc_constant_seed : bool;
      (** the [~seed] argument mentions no identifier at all — a baked-in
          literal *)
}

type float_accum = { fa_line : int; fa_context : string }
(** An order-sensitive float accumulation site (S3): float arithmetic
    inside a closure fed to unordered [Hashtbl] iteration. *)

type t = {
  rel : string;  (** normalized root-relative path *)
  unit_name : string;  (** capitalized stem, e.g. ["Generator"] *)
  dir : string;  (** e.g. ["lib/trace"] *)
  is_mli : bool;
  parse_failed : bool;
      (** the compiler-libs parse failed; only the lexer-derived fields
          ([allows], [allow_files]) are populated *)
  opens : string list list;  (** [open]ed module paths, file-wide *)
  aliases : (string * string list) list;  (** [module X = A.B] aliases *)
  fns : fn list;
  refs : string list list;  (** every value path referenced in the file *)
  mli_vals : (string * int) list;  (** [.mli] [val] items: [(name, line)] *)
  rng_creates : rng_create list;
  float_accums : float_accum list;
  allows : (string * int) list;  (** line-scoped suppressions (shared
      syntax with the token layer) *)
  allow_files : string list;  (** file-scoped suppressions *)
}

val unit_key_of_rel : string -> string
(** The globally unique compilation-unit key of a source path: the path
    without its extension, so a [.ml]/[.mli] pair shares one key. *)

val extract : rel:string -> string -> t
(** [extract ~rel content] parses and scans one source file.  Total: on
    parse failure the result has [parse_failed = true] and carries only
    the lexer-derived suppression data. *)
