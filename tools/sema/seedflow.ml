(* S2: seed-flow discipline for Mppm_util.Rng states.

   Two checks, both per compilation unit:

   - Stream separation.  The workload generator keeps distinct RNG
     streams for data references ([next]) and instruction fetches
     ([next_fetch]) so the data stream is invariant to fetch blocking.
     For every unit defining both members of a stream pair, the set of
     record fields whose [Rng.t] reaches a draw inside [next] (closed
     over same-unit helper calls) must be disjoint from the set reached
     by [next_fetch].

   - Seed provenance.  An [Rng.create] whose [~seed] argument mentions
     no identifier is a baked-in constant: the stream no longer flows
     from the caller's integer seed, breaking reproducibility plumbing. *)

module Diag = Mppm_lint.Diag

let stream_pairs = [ ("next", "next_fetch") ]

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

(* Transitive rng-field sets per top-level function of one unit, closed
   over unqualified same-unit calls to a fixpoint. *)
let field_sets (facts : Facts.t) =
  let tbl : (string, string list) Hashtbl.t =
    Hashtbl.create ~random:false 16
  in
  List.iter
    (fun (fn : Facts.fn) ->
      Hashtbl.replace tbl fn.Facts.fn_name fn.Facts.rng_fields)
    facts.Facts.fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fn : Facts.fn) ->
        let current =
          Option.value ~default:[] (Hashtbl.find_opt tbl fn.Facts.fn_name)
        in
        let extra =
          List.concat_map
            (fun path ->
              match path with
              | [ callee ] ->
                  Option.value ~default:[] (Hashtbl.find_opt tbl callee)
              | _ -> [])
            fn.Facts.calls
        in
        let merged =
          List.fold_left
            (fun acc f -> if List.mem f acc then acc else f :: acc)
            current extra
        in
        if List.length merged <> List.length current then begin
          Hashtbl.replace tbl fn.Facts.fn_name merged;
          changed := true
        end)
      facts.Facts.fns
  done;
  tbl

let fn_line (facts : Facts.t) name =
  List.find_map
    (fun (fn : Facts.fn) ->
      if fn.Facts.fn_name = name then Some fn.Facts.fn_line else None)
    facts.Facts.fns

let check_unit (facts : Facts.t) =
  if facts.Facts.is_mli || facts.Facts.parse_failed || not (in_lib facts.Facts.rel)
  then []
  else begin
    let sets = field_sets facts in
    let pair_diags =
      List.concat_map
        (fun (a, b) ->
          match (Hashtbl.find_opt sets a, Hashtbl.find_opt sets b) with
          | Some sa, Some sb ->
              let shared = List.filter (fun f -> List.mem f sb) sa in
              List.map
                (fun field ->
                  {
                    Diag.file = facts.Facts.rel;
                    line =
                      Option.value ~default:1 (fn_line facts b);
                    rule = "S2";
                    severity = Diag.Error;
                    message =
                      Printf.sprintf
                        "Rng state %S feeds both %s and %s; data and fetch \
                         streams must draw from separate Rng.t values"
                        field a b;
                  })
                shared
          | _ -> [])
        stream_pairs
    in
    let seed_diags =
      List.map
        (fun (rc : Facts.rng_create) ->
          {
            Diag.file = facts.Facts.rel;
            line = rc.Facts.rc_line;
            rule = "S2";
            severity = Diag.Error;
            message =
              "Rng.create with a constant seed; every Rng state in lib/ \
               must originate from a caller-provided seed argument";
          })
        (List.filter
           (fun (rc : Facts.rng_create) -> rc.Facts.rc_constant_seed)
           facts.Facts.rng_creates)
    in
    pair_diags @ seed_diags
  end

let check facts_list =
  List.concat_map check_unit facts_list |> List.sort Diag.compare
