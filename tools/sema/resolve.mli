(** Cross-module name resolution over the value-reference graph.

    Maps alias-expanded value paths (e.g. [["Mppm_util"; "Rng"; "int"]])
    to the compilation unit that defines them, using the dune library
    name -> directory mapping for wrapped-library heads, same-directory
    lookup for within-library references, and the referencing file's
    [open]s as a fallback. *)

type env
(** The resolution environment: library aliases and the units each
    scanned directory defines. *)

val build : dunes:(string * string) list -> files:string list -> env
(** [build ~dunes ~files] derives the environment from every scanned
    [dune] file ([(rel, content)] pairs; each ["(name x)"] maps the
    capitalized name to the dune file's directory) and the list of scanned
    source paths. *)

val key : dir:string -> unit_name:string -> string
(** The unique key of a compilation unit, e.g.
    [key ~dir:"lib/util" ~unit_name:"Rng" = "lib/util/rng"] — the same
    value {!Facts.unit_key_of_rel} computes from a source path. *)

val resolve : env -> Facts.t -> string list -> (string * string) option
(** [resolve env facts path] is [Some (unit_key, member)] when [path],
    referenced from the file described by [facts], resolves to another
    compilation unit, and [None] for local, stdlib or unresolvable
    references. *)
