(** S2: seed-flow discipline for [Mppm_util.Rng] states.

    Statically proves the generator's stream-separation invariant (the
    data stream [next] and the fetch stream [next_fetch] never draw from
    the same [Rng.t] record field, closed over same-unit helpers) and
    flags [Rng.create] calls whose seed is a baked-in constant. *)

val stream_pairs : (string * string) list
(** Function-name pairs that must draw from disjoint Rng states when a
    single unit defines both — currently [("next", "next_fetch")]. *)

val check : Facts.t list -> Mppm_lint.Diag.t list
(** S2 findings (errors) over [lib/] implementation files, sorted in
    {!Mppm_lint.Diag.compare} order.  Suppression is applied by the
    caller ({!Sema.analyze}). *)
