(** Total wrappers around the compiler-libs OCaml parser.

    Any parser/lexer exception yields [None] instead of escaping, so the
    AST layer can always fall back gracefully to the token layer
    (qcheck-verified in [test/suite_sema.ml]). *)

val implementation : filename:string -> string -> Parsetree.structure option
(** Parse a [.ml] source given as a string; [None] on any parse failure. *)

val interface : filename:string -> string -> Parsetree.signature option
(** Parse a [.mli] source given as a string; [None] on any parse
    failure. *)
