(** Interprocedural hotness propagation and the hot-path perf rules
    (P1-P4).

    [(* mppm: hot *)] marks a toplevel binding as a hotness root.
    Hotness propagates transitively over the cross-module
    value-reference graph — from a root with a [while]/[for] loop along
    its loop-region references, otherwise along the whole
    cold-guard-stripped body — and every {!Facts.perf_site} on a
    reachable function becomes a finding labeled with the shortest call
    chain back to a root. *)

type entry = {
  h_key : string;  (** node key: [unit_key ^ ":" ^ fn_name] *)
  h_rel : string;  (** root-relative source path *)
  h_label : string;  (** display label, e.g. ["Sdc.add_into"] *)
  h_line : int;  (** line of the binding *)
  h_root : bool;  (** carries the [(* mppm: hot *)] annotation itself *)
  h_chain : string list;
      (** shortest call chain of labels, root first, this fn last *)
  h_sites : (Facts.perf_site * bool) list;
      (** perf sites in the hot region, each paired with whether an
          allow comment already suppresses it *)
}
(** One hot function in the ranked inventory. *)

val closure : roots:string list -> edges:(string * string list) list -> string list
(** [closure ~roots ~edges] is the pure reachability core: the sorted
    set of nodes reachable from [roots] over [edges].  Exposed for the
    propagation law tests (idempotence, monotonicity, root-subset). *)

val analyze : Resolve.env -> Facts.t list -> entry list
(** The full hot-function inventory, ranked by open (unsuppressed) site
    count descending, then shortest chain, then key — the order of the
    flat-rewrite work-list surfaced by [lint --report hot]. *)

val check : Resolve.env -> Facts.t list -> Mppm_lint.Diag.t list
(** P1-P4 findings for every perf site on a hot path (errors in [lib/],
    warnings elsewhere).  Raw: allow-comment suppression is applied by
    the {!Sema} driver. *)
