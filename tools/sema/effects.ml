(* Transitive per-function effect summaries and the S1/S5 containment
   rules.

   Each top-level function starts from its direct effects (recorded in
   Facts) and absorbs the effects of every resolvable callee to a
   fixpoint over an explicit join-semilattice of summaries.  Propagation
   of the I/O effect stops at the allowlisted units: calling into the
   profile cache or the trace-file store is sanctioned, so the caller
   does not inherit the I/O taint.  The concurrency effect (S5) is
   absorbed at lib/pool/ the same way, and the module-state mutation
   effect (backing S6/S7) at the purity allowlist: the pool internals,
   the obs registry (commutative counters) and the sanitizer's check
   registry are allowed to hold and write module-level state without
   tainting callers.  Lock-class sets (backing S8) propagate with no
   absorption at all — holding a lock is never sanctioned away. *)

module Diag = Mppm_lint.Diag

(* Units allowed to perform (and absorb) file/channel I/O: the profile
   store, the binary trace store, the profile-cache directory management in
   the experiment context, and the observability sink surface. *)
let allowlist =
  [
    "lib/profile/profile";
    "lib/trace/trace_file";
    "lib/experiments/context";
    "lib/obs/sink";
  ]

(* Units allowed to use (and absorb) the Domain/Mutex/Condition/Atomic
   concurrency surface: everything under lib/pool/. *)
let conc_dir = "lib/pool/"

let in_conc_allowlist unit_key =
  String.length unit_key >= String.length conc_dir
  && String.sub unit_key 0 (String.length conc_dir) = conc_dir

(* Units sanctioned to hold and mutate module-level state (S6/S7): the
   registry's counters are commutative additions under one lock, and the
   sanitizer's invariant-check registry is result-neutral by contract
   (MPPM_SANITIZE runs are bit-for-bit identical).  lib/pool/ is included
   so the pool's own machinery never taints its callers. *)
let purity_allowlist = [ "lib/obs/registry"; "lib/util/invariant" ]

let in_purity_allowlist unit_key =
  in_conc_allowlist unit_key || List.mem unit_key purity_allowlist

(* The declared lock ordering (S8): the pool mutex is acquired before the
   registry mutex, never the other way around. *)
let lock_order = [ "pool"; "registry" ]

let lock_class_of_unit unit_key =
  if in_conc_allowlist unit_key then Some "pool"
  else if unit_key = "lib/obs/registry" then Some "registry"
  else None

let lock_rank c =
  let rec go i = function
    | [] -> None
    | x :: rest -> if x = c then Some i else go (i + 1) rest
  in
  go 0 lock_order

(* ---- the summary lattice ------------------------------------------------ *)

type summary = {
  e_io : bool;
  e_conc : bool;
  e_rng : bool;
  e_mut_top : bool;  (* writes module-level mutable state *)
  e_mut_arg : bool;  (* writes caller-owned state it was handed *)
  e_raises : bool;
  e_locks : string list;  (* sorted distinct lock classes acquired *)
}

let bottom =
  {
    e_io = false;
    e_conc = false;
    e_rng = false;
    e_mut_top = false;
    e_mut_arg = false;
    e_raises = false;
    e_locks = [];
  }

let merge a b =
  {
    e_io = a.e_io || b.e_io;
    e_conc = a.e_conc || b.e_conc;
    e_rng = a.e_rng || b.e_rng;
    e_mut_top = a.e_mut_top || b.e_mut_top;
    e_mut_arg = a.e_mut_arg || b.e_mut_arg;
    e_raises = a.e_raises || b.e_raises;
    e_locks = List.sort_uniq compare (a.e_locks @ b.e_locks);
  }

let equal (a : summary) b = a = b
let leq a b = equal (merge a b) b

(* ---- nodes and the fixpoint --------------------------------------------- *)

type node = {
  mutable s : summary;
  mutable io_witness : string;
  mutable conc_witness : string;
  mutable mut_witness : string;
  n_mut_arg0 : bool;
  fn : Facts.fn;
  unit_key : string;
  rel : string;
}

type info = {
  i_summary : summary;
  i_mut_arg0 : bool;
      (* direct fact: the callee mutates its own first positional param *)
  i_mut_witness : string;
  i_unit : string;
  i_rel : string;
  i_fn_name : string;
  i_fn_line : int;
}

type table = { env : Resolve.env; nodes : (string, node) Hashtbl.t }

let node_key unit_key fn_name = unit_key ^ ":" ^ fn_name

(* Direct concurrency prims with the file's S5 allow comments already
   applied: a prim on an allowed line never enters the effect lattice, so
   a sanctioned use (e.g. the registry's lock) does not taint its
   callers the way a suppressed-at-report-time diag still would. *)
let conc_prims_of (f : Facts.t) (fn : Facts.fn) =
  if List.mem "S5" f.Facts.allow_files then []
  else
    List.filter
      (fun (_, line) ->
        not
          (List.exists
             (fun (rule, l) -> rule = "S5" && (l = line || l = line - 1))
             f.Facts.allows))
      fn.Facts.prim_conc

(* The lock-order rule needs the raw prims: the registry's allow-file S5
   sanctions its lock's *existence*, not its ordering. *)
let locks_directly (fn : Facts.fn) =
  List.exists (fun (p, _) -> p = "Mutex.lock") fn.Facts.prim_conc

let has_mut scope (fn : Facts.fn) =
  List.exists (fun (m : Facts.mutation) -> m.Facts.mut_scope = scope)
    fn.Facts.mutations

let build_nodes facts_list =
  let nodes : (string, node) Hashtbl.t = Hashtbl.create ~random:false 256 in
  List.iter
    (fun (f : Facts.t) ->
      if (not f.Facts.is_mli) && not f.Facts.parse_failed then
        let unit_key = Facts.unit_key_of_rel f.Facts.rel in
        List.iter
          (fun (fn : Facts.fn) ->
            let conc_prims = conc_prims_of f fn in
            let mut_top = has_mut Facts.Mut_toplevel fn in
            Hashtbl.replace nodes
              (node_key unit_key fn.Facts.fn_name)
              {
                s =
                  {
                    e_io = fn.Facts.prim_io <> [];
                    e_conc = conc_prims <> [];
                    e_rng = fn.Facts.has_rng;
                    e_mut_top = mut_top;
                    e_mut_arg = has_mut Facts.Mut_arg fn;
                    e_raises = fn.Facts.raises;
                    e_locks =
                      (match lock_class_of_unit unit_key with
                      | Some c when locks_directly fn -> [ c ]
                      | _ -> []);
                  };
                io_witness =
                  (match fn.Facts.prim_io with
                  | (p, _) :: _ -> p
                  | [] -> "");
                conc_witness =
                  (match conc_prims with (p, _) :: _ -> p | [] -> "");
                mut_witness =
                  (if mut_top then
                     match
                       List.find_opt
                         (fun (m : Facts.mutation) ->
                           m.Facts.mut_scope = Facts.Mut_toplevel)
                         fn.Facts.mutations
                     with
                     | Some m ->
                         Printf.sprintf "writes %s via %s" m.Facts.mut_target
                           m.Facts.mut_prim
                     | None -> ""
                   else "");
                n_mut_arg0 = fn.Facts.mut_arg0;
                fn;
                unit_key;
                rel = f.Facts.rel;
              })
          f.Facts.fns)
    facts_list;
  nodes

(* Resolve a call made from [facts] to a node key, when the callee is a
   known top-level function of a scanned unit.  Unqualified single-element
   paths resolve within the same unit. *)
let callee_key env (facts : Facts.t) nodes path =
  let unit_key = Facts.unit_key_of_rel facts.Facts.rel in
  match path with
  | [ name ] ->
      let k = node_key unit_key name in
      if Hashtbl.mem nodes k then Some k else None
  | _ -> (
      match Resolve.resolve env facts path with
      | Some (callee_unit, member) ->
          let k = node_key callee_unit member in
          if Hashtbl.mem nodes k then Some k else None
      | None -> None)

let callee_label callee =
  Printf.sprintf "%s.%s"
    (String.capitalize_ascii (Filename.basename callee.unit_key))
    callee.fn.Facts.fn_name

(* Pre-fixpoint seeding: a call passing a module-level value as the first
   positional argument of a callee that mutates its first parameter is a
   write to toplevel state made on the caller's behalf — the shape of the
   registry's [Counter.add counters ...]. *)
let seed_top_arg_calls env facts_list nodes =
  List.iter
    (fun (f : Facts.t) ->
      if (not f.Facts.is_mli) && not f.Facts.parse_failed then
        let unit_key = Facts.unit_key_of_rel f.Facts.rel in
        List.iter
          (fun (fn : Facts.fn) ->
            match Hashtbl.find_opt nodes (node_key unit_key fn.Facts.fn_name) with
            | None -> ()
            | Some node ->
                List.iter
                  (fun (path, target, _line) ->
                    match callee_key env f nodes path with
                    | None -> ()
                    | Some k ->
                        let callee = Hashtbl.find nodes k in
                        if
                          callee.n_mut_arg0
                          && (not (in_purity_allowlist callee.unit_key))
                          && not node.s.e_mut_top
                        then begin
                          node.s <- { node.s with e_mut_top = true };
                          node.mut_witness <-
                            Printf.sprintf "passes module state %s to %s"
                              target (callee_label callee)
                        end)
                  fn.Facts.top_arg_calls)
          f.Facts.fns)
    facts_list

(* What a caller inherits from [callee]: its summary with the effects the
   callee's unit is sanctioned to absorb masked off.  The caller-owned
   mutation bit never propagates — it describes the callee's own
   parameters, not the caller's. *)
let contribution callee =
  let s = callee.s in
  let s = if List.mem callee.unit_key allowlist then { s with e_io = false } else s in
  let s = if in_conc_allowlist callee.unit_key then { s with e_conc = false } else s in
  let s =
    if in_purity_allowlist callee.unit_key then { s with e_mut_top = false }
    else s
  in
  { s with e_mut_arg = false }

let propagate env facts_list nodes =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Facts.t) ->
        if (not f.Facts.is_mli) && not f.Facts.parse_failed then
          let unit_key = Facts.unit_key_of_rel f.Facts.rel in
          List.iter
            (fun (fn : Facts.fn) ->
              match Hashtbl.find_opt nodes (node_key unit_key fn.Facts.fn_name) with
              | None -> ()
              | Some node ->
                  List.iter
                    (fun path ->
                      match callee_key env f nodes path with
                      | None -> ()
                      | Some k ->
                          let callee = Hashtbl.find nodes k in
                          if callee != node then begin
                            let merged = merge node.s (contribution callee) in
                            if not (equal merged node.s) then begin
                              if merged.e_io && not node.s.e_io then
                                node.io_witness <-
                                  Printf.sprintf "call to %s"
                                    (callee_label callee);
                              if merged.e_conc && not node.s.e_conc then
                                node.conc_witness <-
                                  Printf.sprintf "call to %s"
                                    (callee_label callee);
                              if merged.e_mut_top && not node.s.e_mut_top then
                                node.mut_witness <-
                                  Printf.sprintf "call to %s"
                                    (callee_label callee);
                              node.s <- merged;
                              changed := true
                            end
                          end)
                    fn.Facts.calls)
            f.Facts.fns)
      facts_list
  done

let build env facts_list =
  let nodes = build_nodes facts_list in
  seed_top_arg_calls env facts_list nodes;
  propagate env facts_list nodes;
  { env; nodes }

let info_of node =
  {
    i_summary = node.s;
    i_mut_arg0 = node.n_mut_arg0;
    i_mut_witness = node.mut_witness;
    i_unit = node.unit_key;
    i_rel = node.rel;
    i_fn_name = node.fn.Facts.fn_name;
    i_fn_line = node.fn.Facts.fn_line;
  }

let find t (facts : Facts.t) path =
  match callee_key t.env facts t.nodes path with
  | Some k -> Some (info_of (Hashtbl.find t.nodes k))
  | None -> None

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

let check t =
  let diags = ref [] in
  Hashtbl.iter
    (fun _ node ->
      if
        node.s.e_io && in_lib node.rel
        && not (List.mem node.unit_key allowlist)
      then
        diags :=
          {
            Diag.file = node.rel;
            line = node.fn.Facts.fn_line;
            rule = "S1";
            severity = Diag.Error;
            message =
              Printf.sprintf
                "%s reaches file/channel I/O (%s); lib/ effects must stay \
                 inside the allowlisted profile-cache/trace-file/obs-sink \
                 modules"
                node.fn.Facts.fn_name node.io_witness;
          }
          :: !diags;
      if
        node.s.e_conc && in_lib node.rel
        && not (in_conc_allowlist node.unit_key)
      then
        diags :=
          {
            Diag.file = node.rel;
            line = node.fn.Facts.fn_line;
            rule = "S5";
            severity = Diag.Error;
            message =
              Printf.sprintf
                "%s reaches the Domain/Mutex/Condition/Atomic surface (%s); \
                 lib/ concurrency must stay inside lib/pool/ (or carry an \
                 allow comment)"
                node.fn.Facts.fn_name node.conc_witness;
          }
          :: !diags)
    t.nodes;
  List.sort Diag.compare !diags

let summaries t =
  Hashtbl.fold
    (fun _ node acc ->
      let effects =
        List.filter_map
          (fun (name, on) -> if on then Some name else None)
          [
            ("io", node.s.e_io); ("conc", node.s.e_conc);
            ("rng", node.s.e_rng); ("mut-top", node.s.e_mut_top);
            ("mut-arg", node.s.e_mut_arg); ("raises", node.s.e_raises);
          ]
        @ List.map (fun c -> "lock:" ^ c) node.s.e_locks
      in
      (node.rel, node.fn.Facts.fn_name, String.concat "," effects) :: acc)
    t.nodes []
  |> List.sort compare
