(* Transitive per-function effect summaries and the S1/S5 containment
   rules.

   Each top-level function starts from its direct effects (recorded in
   Facts) and absorbs the effects of every resolvable callee to a
   fixpoint.  Propagation of the I/O effect stops at the allowlisted
   units: calling into the profile cache or the trace-file store is
   sanctioned, so the caller does not inherit the I/O taint.  The
   concurrency effect (S5) propagates the same way and is absorbed at
   lib/pool/: calling Pool.map is sanctioned, open-coding Domain.spawn
   elsewhere in lib/ is not. *)

module Diag = Mppm_lint.Diag

(* Units allowed to perform (and absorb) file/channel I/O: the profile
   store, the binary trace store, the profile-cache directory management in
   the experiment context, and the observability sink surface. *)
let allowlist =
  [
    "lib/profile/profile";
    "lib/trace/trace_file";
    "lib/experiments/context";
    "lib/obs/sink";
  ]

(* Units allowed to use (and absorb) the Domain/Mutex/Condition/Atomic
   concurrency surface: everything under lib/pool/. *)
let conc_dir = "lib/pool/"

let in_conc_allowlist unit_key =
  String.length unit_key >= String.length conc_dir
  && String.sub unit_key 0 (String.length conc_dir) = conc_dir

type node = {
  mutable io : bool;
  mutable io_witness : string;
  mutable conc : bool;
  mutable conc_witness : string;
  mutable rng : bool;
  mutable mut : bool;
  mutable raises : bool;
  fn : Facts.fn;
  unit_key : string;
  rel : string;
}

let node_key unit_key fn_name = unit_key ^ ":" ^ fn_name

(* Direct concurrency prims with the file's S5 allow comments already
   applied: a prim on an allowed line never enters the effect lattice, so
   a sanctioned use (e.g. the registry's lock) does not taint its
   callers the way a suppressed-at-report-time diag still would. *)
let conc_prims_of (f : Facts.t) (fn : Facts.fn) =
  if List.mem "S5" f.Facts.allow_files then []
  else
    List.filter
      (fun (_, line) ->
        not
          (List.exists
             (fun (rule, l) -> rule = "S5" && (l = line || l = line - 1))
             f.Facts.allows))
      fn.Facts.prim_conc

let build_nodes facts_list =
  let nodes : (string, node) Hashtbl.t = Hashtbl.create ~random:false 256 in
  List.iter
    (fun (f : Facts.t) ->
      if (not f.Facts.is_mli) && not f.Facts.parse_failed then
        let unit_key = Facts.unit_key_of_rel f.Facts.rel in
        List.iter
          (fun (fn : Facts.fn) ->
            let io = fn.Facts.prim_io <> [] in
            let conc_prims = conc_prims_of f fn in
            Hashtbl.replace nodes
              (node_key unit_key fn.Facts.fn_name)
              {
                io;
                io_witness =
                  (match fn.Facts.prim_io with
                  | (p, _) :: _ -> p
                  | [] -> "");
                conc = conc_prims <> [];
                conc_witness =
                  (match conc_prims with (p, _) :: _ -> p | [] -> "");
                rng = fn.Facts.has_rng;
                mut = fn.Facts.mutates_global;
                raises = fn.Facts.raises;
                fn;
                unit_key;
                rel = f.Facts.rel;
              })
          f.Facts.fns)
    facts_list;
  nodes

(* Resolve a call made from [facts] to a node key, when the callee is a
   known top-level function of a scanned unit.  Unqualified single-element
   paths resolve within the same unit. *)
let callee_key env (facts : Facts.t) nodes path =
  let unit_key = Facts.unit_key_of_rel facts.Facts.rel in
  match path with
  | [ name ] ->
      let k = node_key unit_key name in
      if Hashtbl.mem nodes k then Some k else None
  | _ -> (
      match Resolve.resolve env facts path with
      | Some (callee_unit, member) ->
          let k = node_key callee_unit member in
          if Hashtbl.mem nodes k then Some k else None
      | None -> None)

let propagate env facts_list nodes =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Facts.t) ->
        if (not f.Facts.is_mli) && not f.Facts.parse_failed then
          let unit_key = Facts.unit_key_of_rel f.Facts.rel in
          List.iter
            (fun (fn : Facts.fn) ->
              match Hashtbl.find_opt nodes (node_key unit_key fn.Facts.fn_name) with
              | None -> ()
              | Some node ->
                  List.iter
                    (fun path ->
                      match callee_key env f nodes path with
                      | None -> ()
                      | Some k ->
                          let callee = Hashtbl.find nodes k in
                          if callee != node then begin
                            if
                              callee.io
                              && (not (List.mem callee.unit_key allowlist))
                              && not node.io
                            then begin
                              node.io <- true;
                              node.io_witness <-
                                Printf.sprintf "call to %s.%s"
                                  (String.capitalize_ascii
                                     (Filename.basename callee.unit_key))
                                  callee.fn.Facts.fn_name;
                              changed := true
                            end;
                            if
                              callee.conc
                              && (not (in_conc_allowlist callee.unit_key))
                              && not node.conc
                            then begin
                              node.conc <- true;
                              node.conc_witness <-
                                Printf.sprintf "call to %s.%s"
                                  (String.capitalize_ascii
                                     (Filename.basename callee.unit_key))
                                  callee.fn.Facts.fn_name;
                              changed := true
                            end;
                            if callee.rng && not node.rng then begin
                              node.rng <- true;
                              changed := true
                            end;
                            if callee.mut && not node.mut then begin
                              node.mut <- true;
                              changed := true
                            end;
                            if callee.raises && not node.raises then begin
                              node.raises <- true;
                              changed := true
                            end
                          end)
                    fn.Facts.calls)
            f.Facts.fns)
      facts_list
  done

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

let check env facts_list =
  let nodes = build_nodes facts_list in
  propagate env facts_list nodes;
  let diags = ref [] in
  Hashtbl.iter
    (fun _ node ->
      if
        node.io && in_lib node.rel
        && not (List.mem node.unit_key allowlist)
      then
        diags :=
          {
            Diag.file = node.rel;
            line = node.fn.Facts.fn_line;
            rule = "S1";
            severity = Diag.Error;
            message =
              Printf.sprintf
                "%s reaches file/channel I/O (%s); lib/ effects must stay \
                 inside the allowlisted profile-cache/trace-file/obs-sink \
                 modules"
                node.fn.Facts.fn_name node.io_witness;
          }
          :: !diags;
      if
        node.conc && in_lib node.rel
        && not (in_conc_allowlist node.unit_key)
      then
        diags :=
          {
            Diag.file = node.rel;
            line = node.fn.Facts.fn_line;
            rule = "S5";
            severity = Diag.Error;
            message =
              Printf.sprintf
                "%s reaches the Domain/Mutex/Condition/Atomic surface (%s); \
                 lib/ concurrency must stay inside lib/pool/ (or carry an \
                 allow comment)"
                node.fn.Facts.fn_name node.conc_witness;
          }
          :: !diags)
    nodes;
  List.sort Diag.compare !diags

let summaries env facts_list =
  let nodes = build_nodes facts_list in
  propagate env facts_list nodes;
  Hashtbl.fold
    (fun _ node acc ->
      let effects =
        List.filter_map
          (fun (name, on) -> if on then Some name else None)
          [
            ("io", node.io); ("conc", node.conc); ("rng", node.rng);
            ("mut-global", node.mut); ("raises", node.raises);
          ]
      in
      (node.rel, node.fn.Facts.fn_name, String.concat "," effects) :: acc)
    nodes []
  |> List.sort compare
