(** Transitive effect summaries and the S1 effect-containment rule.

    Direct per-function effects come from {!Facts}; this module closes
    them over the cross-module call graph to a fixpoint and reports any
    [lib/] function that can transitively reach file/channel I/O outside
    the allowlisted profile-cache / trace-file / obs-sink modules. *)

val allowlist : string list
(** Compilation-unit keys ([lib/profile/profile], ...) sanctioned to
    perform file/channel I/O.  Propagation of the I/O effect is cut at
    these units: calling them does not taint the caller. *)

val check : Resolve.env -> Facts.t list -> Mppm_lint.Diag.t list
(** S1 findings (errors), sorted in {!Mppm_lint.Diag.compare} order.
    Suppression is applied by the caller ({!Sema.analyze}). *)

val summaries : Resolve.env -> Facts.t list -> (string * string * string) list
(** [(file, function, effects)] for every analyzed function, where
    [effects] is a comma-joined subset of
    [io], [rng], [mut-global], [raises] after transitive propagation.
    Sorted; used by the driver's [--summaries] output. *)
