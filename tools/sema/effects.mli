(** Transitive effect summaries and the S1/S5 effect-containment rules.

    Direct per-function effects come from {!Facts}; this module closes
    them over the cross-module call graph to a fixpoint and reports any
    [lib/] function that can transitively reach file/channel I/O outside
    the allowlisted profile-cache / trace-file / obs-sink modules (S1),
    or the [Domain]/[Mutex]/[Condition]/[Atomic] concurrency surface
    outside [lib/pool/] (S5). *)

val allowlist : string list
(** Compilation-unit keys ([lib/profile/profile], ...) sanctioned to
    perform file/channel I/O.  Propagation of the I/O effect is cut at
    these units: calling them does not taint the caller. *)

val conc_dir : string
(** Directory prefix ([lib/pool/]) whose units are sanctioned to use the
    concurrency surface.  Propagation of the concurrency effect is cut at
    these units: calling [Pool.map] does not taint the caller.  A
    concurrency prim on a line covered by an S5 allow comment (or in a
    file with an S5 allow-file) never enters the effect lattice at all,
    so a sanctioned use does not taint callers either. *)

val check : Resolve.env -> Facts.t list -> Mppm_lint.Diag.t list
(** S1 and S5 findings (errors), sorted in {!Mppm_lint.Diag.compare}
    order.  Suppression is applied by the caller ({!Sema.analyze}). *)

val summaries : Resolve.env -> Facts.t list -> (string * string * string) list
(** [(file, function, effects)] for every analyzed function, where
    [effects] is a comma-joined subset of
    [io], [conc], [rng], [mut-global], [raises] after transitive
    propagation.  Sorted; used by the driver's [--summaries] output. *)
