(** Transitive effect summaries and the S1/S5 effect-containment rules.

    Direct per-function effects come from {!Facts}; this module closes
    them over the cross-module call graph to a fixpoint over an explicit
    join-semilattice of {!summary} values, and reports any [lib/]
    function that can transitively reach file/channel I/O outside the
    allowlisted profile-cache / trace-file / obs-sink modules (S1), or
    the [Domain]/[Mutex]/[Condition]/[Atomic] concurrency surface outside
    [lib/pool/] (S5).  The closed summaries also back the S6/S7/S8
    parallel-determinism rules in {!Purity}. *)

type summary = {
  e_io : bool;  (** reaches file/channel I/O *)
  e_conc : bool;  (** reaches the OCaml 5 concurrency surface *)
  e_rng : bool;  (** draws from [Mppm_util.Rng] *)
  e_mut_top : bool;  (** writes module-level mutable state *)
  e_mut_arg : bool;  (** writes caller-owned state it was handed *)
  e_raises : bool;  (** may raise *)
  e_locks : string list;  (** sorted distinct lock classes acquired *)
}
(** One point of the effect lattice.  [e_locks] is kept sorted and
    duplicate-free, so the derived [compare]/[equal] are structural. *)

val bottom : summary
(** The lattice bottom: no effects, no locks. *)

val merge : summary -> summary -> summary
(** Least upper bound: pointwise disjunction, lock-set union.
    Idempotent, commutative, associative (qcheck-tested). *)

val equal : summary -> summary -> bool
(** Structural equality of summaries. *)

val leq : summary -> summary -> bool
(** Lattice order: [leq a b] iff [merge a b = b]. *)

val allowlist : string list
(** Compilation-unit keys ([lib/profile/profile], ...) sanctioned to
    perform file/channel I/O.  Propagation of the I/O effect is cut at
    these units: calling them does not taint the caller. *)

val conc_dir : string
(** Directory prefix ([lib/pool/]) whose units are sanctioned to use the
    concurrency surface.  Propagation of the concurrency effect is cut at
    these units: calling [Pool.map] does not taint the caller.  A
    concurrency prim on a line covered by an S5 allow comment (or in a
    file with an S5 allow-file) never enters the effect lattice at all,
    so a sanctioned use does not taint callers either. *)

val in_conc_allowlist : string -> bool
(** Whether a compilation-unit key lies under {!conc_dir}. *)

val purity_allowlist : string list
(** Compilation-unit keys outside [lib/pool/] sanctioned to hold and
    mutate module-level state: the obs registry (commutative counters
    under one lock) and the sanitizer's invariant-check registry
    (result-neutral by contract). *)

val in_purity_allowlist : string -> bool
(** Whether a unit may hold/mutate module state without tainting callers:
    under {!conc_dir} or listed in {!purity_allowlist}. *)

val lock_order : string list
(** The declared lock ordering for S8, outermost first:
    [["pool"; "registry"]] — the pool mutex is acquired before the
    registry mutex, never the other way around. *)

val lock_class_of_unit : string -> string option
(** The lock class a unit's mutex belongs to: ["pool"] for [lib/pool/]
    units, ["registry"] for the obs registry, [None] elsewhere. *)

val lock_rank : string -> int option
(** Position of a lock class in {!lock_order} (0 = outermost). *)

type info = {
  i_summary : summary;  (** transitively closed effects *)
  i_mut_arg0 : bool;
      (** direct fact: the function mutates its own first positional
          parameter (never propagated — it describes the callee's own
          parameters, not the caller's) *)
  i_mut_witness : string;
      (** how [e_mut_top] arose: a write site, a module-state argument,
          or the call that imported the taint *)
  i_unit : string;  (** compilation-unit key *)
  i_rel : string;
  i_fn_name : string;
  i_fn_line : int;
}
(** The resolved view of one analyzed function. *)

type table
(** The closed effect table: every analyzed function with its transitive
    summary, plus the resolution environment. *)

val build : Resolve.env -> Facts.t list -> table
(** Build nodes from direct facts, seed module-state-argument writes, and
    close over the call graph to a fixpoint. *)

val find : table -> Facts.t -> string list -> info option
(** [find t facts path] resolves a call path appearing in [facts] to the
    callee's closed summary.  Unqualified single-element paths resolve
    within the same unit. *)

val check : table -> Mppm_lint.Diag.t list
(** S1 and S5 findings (errors), sorted in {!Mppm_lint.Diag.compare}
    order.  Suppression is applied by the caller ({!Sema.analyze}). *)

val summaries : table -> (string * string * string) list
(** [(file, function, effects)] for every analyzed function, where
    [effects] is a comma-joined subset of [io], [conc], [rng], [mut-top],
    [mut-arg], [raises], [lock:<class>] after transitive propagation.
    Sorted; used by the driver's summary output. *)
