(** Incremental facts cache keyed by {!Mppm_util.Fingerprint}.

    A single Marshal'd file maps per-source fingerprints to extracted
    {!Facts.t}, so a second run over an unchanged tree performs zero
    re-parses (asserted by the test suite via the driver's parse
    counter).  The cache is disposable: any load failure — missing file,
    stale magic after a format change, truncated data — degrades to an
    empty cache, never an error. *)

type t
(** An in-memory cache, mutated in place and persisted with {!store}. *)

val magic : string
(** Version tag written at the head of the cache file; folded into every
    key so a format bump invalidates all entries. *)

val key : rel:string -> string -> string
(** [key ~rel content] is the cache key of one source file: a
    fingerprint of the cache version, the root-relative path and the
    full file content. *)

val create : unit -> t
(** A fresh empty cache. *)

val load : string -> t
(** [load path] reads a cache file, or returns an empty cache when the
    file is missing, carries a different {!magic}, or fails to
    deserialize. *)

val store : string -> t -> unit
(** [store path t] persists the cache (entries in sorted key order, so
    the byte output is deterministic for a given content). *)

val find : t -> string -> Facts.t option
(** Lookup by {!key}. *)

val add : t -> string -> Facts.t -> unit
(** Insert/replace an entry. *)
