(** Dimensional analysis over the per-file unit skeletons (U1-U3).

    Units originate from [(* mppm: unit ... *)] annotations on [.mli]
    items and record fields, plus a small naming-convention fallback
    ([cpi], [ipc], [mpki], [*_cycles], [*_insns], ...).  Inference
    composes them through arithmetic via a unit semilattice — additive
    ops, comparisons and [min]/[max] require equal dimensions, [*]/[/]
    compose and cancel them ([cycles/insns] is CPI) — and propagates
    transitively across modules by a fixed-round chaotic iteration over
    the {!Facts.uexpr} bodies, exactly like {!Hotpath} propagates
    hotness.

    Three rules, errors in [lib/]: {b U1} mixed-unit arithmetic or
    comparison; {b U2} cumulative/per-interval confusion — a
    [cumulative] flavor tag that only plain subtraction of two
    cumulative values discharges back to per-interval; {b U3} inverted
    or unit-unsound ratio construction ([cycles/insns] vs
    [insns/cycles], an interval index used as a count). *)

type t =
  | Any  (** bottom: literals and unconstrained values; unifies freely *)
  | Known of {
      dims : (string * int) list;
          (** canonical dimensions, sorted by name, no zero exponents *)
      cum : bool;  (** the cumulative (prefix-sum) flavor tag *)
    }
  | Opaque
      (** top: shapes the algebra cannot reason about; poisons inference
          and never produces a finding *)
(** A point of the unit semilattice.  Exposed concretely for the qcheck
    law tests. *)

val dimensionless : t
(** [Known { dims = []; cum = false }] — pure numbers, ratios. *)

val known : ?cum:bool -> (string * int) list -> t
(** Build a normalized [Known] (sorts, folds synonyms, drops zeros). *)

val equal : t -> t -> bool
(** Structural equality after normalization (flavor-sensitive). *)

val join : t -> t -> t
(** Least upper bound: [Any] is the identity, [Opaque] absorbs, and two
    [Known]s that disagree (dimensions or flavor) join to [Opaque]. *)

val mul : t -> t -> t
(** Dimension product; [Any] acts as dimensionless, [Opaque] absorbs.
    The result is cumulative when either operand is. *)

val div : t -> t -> t
(** Dimension quotient ([mul] with the divisor inverted); the result
    drops the cumulative flavor — a ratio of totals is an average, not a
    prefix sum. *)

val inverse : t -> t
(** Negate every exponent ([inverse (div a b) = div b a]). *)

val parse : string -> t
(** Parse one unit expression: ["cycles"], ["cycles/insns"],
    ["accesses^2"], ["cumulative accesses"], ["ratio<cycles,insns>"],
    ["1"]/["_"]/["dimensionless"], ["opaque"].  Unknown words become
    fresh dimensions, so structural units like ["window"] are valid. *)

val to_string : t -> string
(** Canonical rendering; [parse (to_string u)] round-trips. *)

type usig = {
  sig_params : (string option * t) list;
      (** parameter units in declaration order, with optional labels
          (["~seed:"] annotates as ["seed:dimensionless"]) *)
  sig_result : t;
}
(** A parsed annotation: either a plain value unit ([sig_params = []])
    or an arrow ["cycles -> insns -> cycles/insns"]. *)

val parse_sig : string -> usig
(** Split an annotation on ["->"]; the last component is the result. *)

val fallback_of_name : string -> t option
(** The naming-convention fallback: matches the whole lowercased name,
    then its last ['_']-separated segment, then its first, against the
    conventional vocabulary ([cpi], [ipc], [mpki], [cycles], [insns],
    [misses]/[hits]/[accesses], [slowdown]/[stp]/[antt]/..., plural
    [intervals]/[ways]/[bytes]/[programs]); a ["cum_"]/["cumulative_"]
    prefix sets the cumulative flavor.  [None] for everything else —
    deliberately including [penalty], [latency] and singular
    [interval]. *)

type fn_class =
  | Annotated  (** carries a [(* mppm: unit ... *)] annotation *)
  | Inferred  (** no annotation, but inference reached a usable unit *)
  | Opaque_unit  (** inference bottomed out at {!Opaque} *)
(** Coverage classification of one function or exported value. *)

val class_name : fn_class -> string
(** ["annotated"], ["inferred"] or ["opaque"]. *)

type coverage = {
  cov_key : string;  (** compilation-unit key, e.g. ["lib/core/model"] *)
  cov_annotated : int;
  cov_inferred : int;
  cov_opaque : int;
  cov_opaque_names : string list;
      (** the exported values classified {!Opaque_unit}, for the
          [--report units] drill-down *)
}
(** Per-module annotation coverage over the public [.mli] values. *)

type analysis = {
  u_diags : Mppm_lint.Diag.t list;
      (** raw U1/U2/U3 findings (suppression is applied by {!Sema}) *)
  u_coverage : coverage list;  (** one row per [lib/] module, sorted *)
  u_fn_class : (string * fn_class) list;
      (** every scanned function keyed [unit_key ^ ":" ^ fn_name] — the
          same keys as {!Hotpath.entry.h_key}, so the driver can assert
          no hot-path function has an opaque unit *)
  u_suggest : (string * int * string * string) list;
      (** [(rel, line, name, unit)] — [.mli] items with no annotation
          whose unit is uniquely inferred from their definition with the
          naming fallback disabled; the [--fix] payload *)
}
(** The full outcome of the unit pass. *)

val analyze : Resolve.env -> Facts.t list -> analysis
(** Run annotation seeding, the cross-module inference fixpoint, the
    finding pass and the strict (fallback-free) suggestion pass. *)

val check : Resolve.env -> Facts.t list -> Mppm_lint.Diag.t list
(** Just the findings of {!analyze}. *)
