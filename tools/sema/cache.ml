(* Incremental facts cache.

   Facts are plain serializable data, so one Marshal'd file keyed by
   per-source fingerprints lets a re-run skip every unchanged parse.
   The cache is disposable: any read failure (missing file, stale magic
   after a format change, truncation) degrades to an empty cache. *)

let magic = "mppm-sema-cache v5"

let key ~rel content =
  Mppm_util.Fingerprint.(
    to_hex (add_string (add_string (of_string magic) rel) content))

type t = (string, Facts.t) Hashtbl.t

let create () : t = Hashtbl.create ~random:false 64

let load path : t =
  match
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let m = really_input_string ic (String.length magic) in
          if m <> magic then None
          else Some (Marshal.from_channel ic : (string * Facts.t) list))
    end
    else None
  with
  | Some entries ->
      let t = create () in
      List.iter (fun (k, v) -> Hashtbl.replace t k v) entries;
      t
  | None -> create ()
  | exception _ -> create ()

let store path (t : t) =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort compare
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc entries [])

let find (t : t) k = Hashtbl.find_opt t k
let add (t : t) k v = Hashtbl.replace t k v
