(* S6/S7/S8: the parallel-determinism rules.

   The invariant "parallel runs are bit-for-bit equal to sequential"
   holds because every task handed to Mppm_pool is a pure function of its
   inputs, shared state is confined to the sanctioned memo/registry
   units, and the two mutexes those units own are always taken in one
   order.  These rules make each clause a build-time theorem over the
   mutation facts and the closed effect lattice:

   S6  every closure reaching Pool.map / Pool.map_reduce / a
       Single_flight memo must be observationally pure — no writes to
       captured or module-level mutable state, no calls reaching such a
       write outside the purity allowlist, and no captured value shared
       with a callee that mutates its first argument (the shape of every
       Rng draw and in-place simulator step);
   S7  lib/ holds no module-level mutable state outside the sanctioned
       units — neither the allocation (ref/Hashtbl.create/... at
       toplevel) nor a write to one, nor handing one to a mutating
       callee;
   S8  a function that acquires a declared lock may not call into code
       acquiring a lock of an outer class (declared order: pool before
       registry), so the lock graph stays acyclic. *)

module Diag = Mppm_lint.Diag

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"
let pretty path = String.concat "." path

let diag rel line rule message =
  { Diag.file = rel; line; rule; severity = Diag.Error; message }

(* ---- S6: pool-task purity ----------------------------------------------- *)

(* A resolvable callee whose closed summary still carries the
   module-state taint: the purity allowlist was already absorbed during
   propagation, but the sanctioned units themselves keep their own bit. *)
let tainted_callee table facts path =
  match Effects.find table facts path with
  | Some i
    when i.Effects.i_summary.Effects.e_mut_top
         && not (Effects.in_purity_allowlist i.Effects.i_unit) ->
      Some i
  | _ -> None

let arg0_mutating_callee table facts path =
  match Effects.find table facts path with
  | Some i
    when i.Effects.i_mut_arg0
         && not (Effects.in_purity_allowlist i.Effects.i_unit) ->
      Some i
  | _ -> None

let s6_task table (facts : Facts.t) (pc : Facts.pool_call) task =
  let d line message = diag facts.Facts.rel line "S6" message in
  match task with
  | Facts.Task_closure c ->
      List.map
        (fun (target, prim, scope, line) ->
          d line
            (Printf.sprintf
               "task passed to %s writes %s state %s (%s); pool tasks must \
                be pure functions of their inputs"
               pc.Facts.pc_entry scope target prim))
        c.Facts.ct_writes
      @ List.filter_map
          (fun path ->
            match tainted_callee table facts path with
            | Some i ->
                Some
                  (d pc.Facts.pc_line
                     (Printf.sprintf
                        "task passed to %s calls %s, which reaches \
                         module-level mutable state (%s)"
                        pc.Facts.pc_entry (pretty path)
                        i.Effects.i_mut_witness))
            | None -> None)
          c.Facts.ct_calls
      @ List.filter_map
          (fun (path, v, line) ->
            match arg0_mutating_callee table facts path with
            | Some _ ->
                Some
                  (d line
                     (Printf.sprintf
                        "task passed to %s shares captured value %s with %s, \
                         which mutates its first argument — workers would \
                         race on it"
                        pc.Facts.pc_entry v (pretty path)))
            | None -> None)
          c.Facts.ct_escaping
  | Facts.Task_path (path, applied) ->
      (match tainted_callee table facts path with
      | Some i ->
          [
            d pc.Facts.pc_line
              (Printf.sprintf
                 "task %s passed to %s reaches module-level mutable state \
                  (%s)"
                 (pretty path) pc.Facts.pc_entry i.Effects.i_mut_witness);
          ]
      | None -> [])
      @
      (match (applied, arg0_mutating_callee table facts path) with
      | Some v, Some _ ->
          [
            d pc.Facts.pc_line
              (Printf.sprintf
                 "task %s passed to %s is partially applied to %s and \
                  mutates it — workers would race on the shared value"
                 (pretty path) pc.Facts.pc_entry v);
          ]
      | _ -> [])

let s6 table facts_list =
  List.concat_map
    (fun (f : Facts.t) ->
      if
        in_lib f.Facts.rel && (not f.Facts.is_mli)
        && (not f.Facts.parse_failed)
        && not (Effects.in_purity_allowlist (Facts.unit_key_of_rel f.Facts.rel))
      then
        List.concat_map
          (fun (fn : Facts.fn) ->
            List.concat_map
              (fun (pc : Facts.pool_call) ->
                List.concat_map (s6_task table f pc) pc.Facts.pc_tasks)
              fn.Facts.pool_calls)
          f.Facts.fns
      else [])
    facts_list

(* ---- S7: no new module-level mutable state in lib/ ----------------------- *)

let s7 table facts_list =
  List.concat_map
    (fun (f : Facts.t) ->
      if
        in_lib f.Facts.rel && (not f.Facts.is_mli)
        && (not f.Facts.parse_failed)
        && not (Effects.in_purity_allowlist (Facts.unit_key_of_rel f.Facts.rel))
      then
        let d line message = diag f.Facts.rel line "S7" message in
        List.map
          (fun (name, kind, line) ->
            d line
              (Printf.sprintf
                 "module-level mutable state %s (%s) in lib/; keep state \
                  local, thread it through arguments, or move it into a \
                  sanctioned memo/registry unit"
                 name kind))
          f.Facts.toplevel_muts
        @ List.concat_map
            (fun (fn : Facts.fn) ->
              List.filter_map
                (fun (m : Facts.mutation) ->
                  if m.Facts.mut_scope = Facts.Mut_toplevel then
                    Some
                      (d m.Facts.mut_line
                         (Printf.sprintf
                            "%s writes module-level mutable state %s (%s); \
                             lib/ state outside the sanctioned \
                             memo/registry units must stay local"
                            fn.Facts.fn_name m.Facts.mut_target
                            m.Facts.mut_prim))
                  else None)
                fn.Facts.mutations
              @ List.filter_map
                  (fun (path, target, line) ->
                    match Effects.find table f path with
                    | Some i
                      when i.Effects.i_mut_arg0
                           && not
                                (Effects.in_purity_allowlist i.Effects.i_unit)
                      ->
                        Some
                          (d line
                             (Printf.sprintf
                                "%s passes module-level value %s to %s, \
                                 which mutates it; lib/ state outside the \
                                 sanctioned memo/registry units must stay \
                                 local"
                                fn.Facts.fn_name target (pretty path)))
                    | _ -> None)
                  fn.Facts.top_arg_calls)
            f.Facts.fns
      else [])
    facts_list

(* ---- S8: declared lock order --------------------------------------------- *)

let s8 table facts_list =
  List.concat_map
    (fun (f : Facts.t) ->
      if f.Facts.is_mli || f.Facts.parse_failed then []
      else
        match Effects.lock_class_of_unit (Facts.unit_key_of_rel f.Facts.rel) with
        | None -> []
        | Some own -> (
            match Effects.lock_rank own with
            | None -> []
            | Some own_rank ->
                List.concat_map
                  (fun (fn : Facts.fn) ->
                    if
                      List.exists
                        (fun (p, _) -> p = "Mutex.lock")
                        fn.Facts.prim_conc
                    then
                      List.filter_map
                        (fun path ->
                          match Effects.find table f path with
                          | Some i -> (
                              let outer =
                                List.find_opt
                                  (fun c ->
                                    match Effects.lock_rank c with
                                    | Some r -> r < own_rank
                                    | None -> false)
                                  i.Effects.i_summary.Effects.e_locks
                              in
                              match outer with
                              | Some c ->
                                  Some
                                    (diag f.Facts.rel fn.Facts.fn_line "S8"
                                       (Printf.sprintf
                                          "lock-order violation: %s acquires \
                                           the %s lock and may call %s, \
                                           which acquires the %s lock; the \
                                           declared order is %s"
                                          fn.Facts.fn_name own (pretty path)
                                          c
                                          (String.concat " before "
                                             Effects.lock_order)))
                              | None -> None)
                          | None -> None)
                        fn.Facts.calls
                    else [])
                  f.Facts.fns))
    facts_list

let check table facts_list =
  List.sort_uniq compare
    (s6 table facts_list @ s7 table facts_list @ s8 table facts_list)
  |> List.sort Diag.compare
