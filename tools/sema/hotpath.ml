(* Interprocedural hotness propagation and the hot-path perf rules
   (P1-P4).

   A [(* mppm: hot *)] annotation on a toplevel binding marks a hotness
   root.  Hotness propagates transitively over the cross-module
   value-reference graph: from a root with a while/for loop along its
   [loop_calls] (the annotated region is the loop), from a loop-free root
   or a transitively-hot function along its [warm_calls] (the whole body
   minus cold guards).  Every perf site recorded by {!Facts.extract} on a
   reachable function becomes a finding, labeled with the shortest call
   chain back to a root.  Suppression is left to the driver so one
   [(* lint: allow P1 <why> *)] comment behaves exactly like every other
   rule's. *)

module Diag = Mppm_lint.Diag

type node = {
  n_rel : string;
  n_unit : string;  (* unit key, e.g. "lib/cache/sdc" *)
  n_fn : Facts.fn;
  n_facts : Facts.t;  (* for alias/open-aware path resolution *)
}

type entry = {
  h_key : string;  (* unit_key ^ ":" ^ fn_name *)
  h_rel : string;
  h_label : string;  (* "Sdc.add_into" *)
  h_line : int;
  h_root : bool;
  h_chain : string list;  (* labels, root first, this fn last *)
  h_sites : (Facts.perf_site * bool) list;  (* (site, allow-suppressed) *)
}

let node_key unit_key fn_name = unit_key ^ ":" ^ fn_name

let label unit_key fn_name =
  String.capitalize_ascii (Filename.basename unit_key) ^ "." ^ fn_name

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

(* Pure reachability core, exposed for the law tests: the hot set is
   exactly the set of nodes reachable from [roots] over [edges]. *)
let closure ~roots ~edges =
  let adj : (string, string list) Hashtbl.t =
    Hashtbl.create ~random:false 64
  in
  List.iter
    (fun (src, dsts) ->
      let prev =
        match Hashtbl.find_opt adj src with Some l -> l | None -> []
      in
      Hashtbl.replace adj src (dsts @ prev))
    edges;
  let hot : (string, unit) Hashtbl.t = Hashtbl.create ~random:false 64 in
  let rec visit k =
    if not (Hashtbl.mem hot k) then begin
      Hashtbl.add hot k ();
      List.iter visit
        (match Hashtbl.find_opt adj k with Some l -> l | None -> [])
    end
  in
  List.iter visit roots;
  Hashtbl.fold (fun k () acc -> k :: acc) hot [] |> List.sort compare

let allowed (f : Facts.t) rule line =
  List.mem rule f.Facts.allow_files
  || List.exists
       (fun (r, l) -> r = rule && (l = line || l = line - 1))
       f.Facts.allows

(* The hot region of a node: an annotated root with a loop is hot in its
   loops only; everything else (loop-free roots, transitively-hot fns)
   is hot over the whole cold-guard-stripped body. *)
let region_calls n =
  if n.n_fn.Facts.fn_hot && n.n_fn.Facts.fn_has_loop then
    n.n_fn.Facts.loop_calls
  else n.n_fn.Facts.warm_calls

let region_sites n =
  if n.n_fn.Facts.fn_hot && n.n_fn.Facts.fn_has_loop then
    n.n_fn.Facts.loop_sites
  else n.n_fn.Facts.warm_sites

let analyze env facts_list =
  let nodes : (string, node) Hashtbl.t = Hashtbl.create ~random:false 512 in
  List.iter
    (fun (f : Facts.t) ->
      if (not f.Facts.is_mli) && not f.Facts.parse_failed then begin
        let unit_key = Facts.unit_key_of_rel f.Facts.rel in
        List.iter
          (fun (fn : Facts.fn) ->
            Hashtbl.replace nodes
              (node_key unit_key fn.Facts.fn_name)
              { n_rel = f.Facts.rel; n_unit = unit_key; n_fn = fn; n_facts = f })
          f.Facts.fns
      end)
    facts_list;
  let callee_key (f : Facts.t) path =
    match path with
    | [ name ] ->
        let k = node_key (Facts.unit_key_of_rel f.Facts.rel) name in
        if Hashtbl.mem nodes k then Some k else None
    | _ -> (
        match Resolve.resolve env f path with
        | Some (callee_unit, member) ->
            let k = node_key callee_unit member in
            if Hashtbl.mem nodes k then Some k else None
        | None -> None)
  in
  let succs n =
    List.filter_map (callee_key n.n_facts) (region_calls n)
    |> List.sort_uniq compare
  in
  (* BFS from all roots at once: [parent] doubles as the visited set and
     yields a shortest call chain per reached node.  Roots are seeded in
     sorted order so ties break deterministically. *)
  let roots =
    Hashtbl.fold
      (fun k n acc -> if n.n_fn.Facts.fn_hot then k :: acc else acc)
      nodes []
    |> List.sort compare
  in
  let parent : (string, string option) Hashtbl.t =
    Hashtbl.create ~random:false 256
  in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if not (Hashtbl.mem parent r) then begin
        Hashtbl.replace parent r None;
        Queue.add r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let k = Queue.pop q in
    List.iter
      (fun s ->
        if not (Hashtbl.mem parent s) then begin
          Hashtbl.replace parent s (Some k);
          Queue.add s q
        end)
      (succs (Hashtbl.find nodes k))
  done;
  let rec chain k acc =
    let n = Hashtbl.find nodes k in
    let lbl = label n.n_unit n.n_fn.Facts.fn_name in
    match Hashtbl.find parent k with
    | None -> lbl :: acc
    | Some p -> chain p (lbl :: acc)
  in
  let entries =
    Hashtbl.fold
      (fun k n acc -> if Hashtbl.mem parent k then (k, n) :: acc else acc)
      nodes []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (k, n) ->
           {
             h_key = k;
             h_rel = n.n_rel;
             h_label = label n.n_unit n.n_fn.Facts.fn_name;
             h_line = n.n_fn.Facts.fn_line;
             h_root = n.n_fn.Facts.fn_hot;
             h_chain = chain k [];
             h_sites =
               List.map
                 (fun (s : Facts.perf_site) ->
                   (s, allowed n.n_facts s.Facts.ps_rule s.Facts.ps_line))
                 (region_sites n);
           })
  in
  (* Rank: open (unsuppressed) site count descending, then shortest
     chain, then key — the flat-rewrite work-list order. *)
  let open_sites e =
    List.length (List.filter (fun (_, allowed) -> not allowed) e.h_sites)
  in
  List.sort
    (fun a b ->
      match compare (open_sites b) (open_sites a) with
      | 0 -> (
          match
            compare (List.length a.h_chain) (List.length b.h_chain)
          with
          | 0 -> compare a.h_key b.h_key
          | c -> c)
      | c -> c)
    entries

let hint = function
  | "P1" ->
      "hot regions must stay allocation-free — hoist or preallocate, or \
       allow with a rationale"
  | "P2" -> "use monomorphic Int.equal/Float.equal on hot paths"
  | "P3" ->
      "hashtable traffic is banned on the hot path — use an array keyed \
       by a dense index"
  | "P4" ->
      "accumulate through a float array cell or an unboxed accumulator \
       argument"
  | _ -> ""

let check env facts_list =
  analyze env facts_list
  |> List.concat_map (fun e ->
         let via =
           match e.h_chain with
           | [ _ ] -> "hot root"
           | chain -> "hot via " ^ String.concat " -> " chain
         in
         List.map
           (fun ((s : Facts.perf_site), _) ->
             {
               Diag.file = e.h_rel;
               line = s.Facts.ps_line;
               rule = s.Facts.ps_rule;
               severity =
                 (if in_lib e.h_rel then Diag.Error else Diag.Warning);
               message =
                 Printf.sprintf "%s on the hot path (%s); %s"
                   s.Facts.ps_what via (hint s.Facts.ps_rule);
             })
           e.h_sites)
