(* Dimensional analysis over the unit skeletons (rules U1-U3).

   The pass mirrors the other cross-module analyses: per-file facts
   (here {!Facts.uexpr} bodies plus annotation strings) feed a
   whole-tree table, a fixed-round chaotic iteration propagates inferred
   units across call edges, and a final pass over [lib/] bodies emits
   findings.  The lattice is deliberately three-valued: [Any] (no
   constraint yet) never blocks, [Opaque] (can't reason) never fires,
   and only two conflicting [Known]s produce a diagnostic — so every
   finding is backed by two annotation- or convention-rooted units. *)

module Diag = Mppm_lint.Diag

(* ------------------------------------------------------------------ *)
(* The unit semilattice                                               *)
(* ------------------------------------------------------------------ *)

type t =
  | Any
  | Known of { dims : (string * int) list; cum : bool }
  | Opaque

(* Synonym folding keeps the dimension vocabulary small: hits, misses
   and accesses are all cache-access counts; singular and plural forms
   collapse. *)
let canon_dim d =
  match String.lowercase_ascii d with
  | "hit" | "hits" | "miss" | "misses" | "access" | "accesses" -> "accesses"
  | "cycle" | "cycles" -> "cycles"
  | "insn" | "insns" | "instruction" | "instructions" -> "insns"
  | "interval" | "intervals" -> "intervals"
  | "way" | "ways" -> "ways"
  | "byte" | "bytes" -> "bytes"
  | "program" | "programs" -> "programs"
  | "quantum" | "quanta" -> "quanta"
  | d -> d

let norm_dims dims =
  let tbl = Hashtbl.create ~random:false 8 in
  List.iter
    (fun (d, e) ->
      let d = canon_dim d in
      let prev = match Hashtbl.find_opt tbl d with Some p -> p | None -> 0 in
      Hashtbl.replace tbl d (prev + e))
    dims;
  Hashtbl.fold (fun d e acc -> if e = 0 then acc else (d, e) :: acc) tbl []
  |> List.sort compare

let known ?(cum = false) dims = Known { dims = norm_dims dims; cum }
let dimensionless = Known { dims = []; cum = false }

let equal a b =
  match (a, b) with
  | Any, Any | Opaque, Opaque -> true
  | Known a, Known b -> a.dims = b.dims && a.cum = b.cum
  | _ -> false

let join a b =
  match (a, b) with
  | Any, u | u, Any -> u
  | Opaque, _ | _, Opaque -> Opaque
  | Known _, Known _ -> if equal a b then a else Opaque

let mul a b =
  match (a, b) with
  | Opaque, _ | _, Opaque -> Opaque
  | Any, u | u, Any -> u
  | Known a, Known b ->
      Known { dims = norm_dims (a.dims @ b.dims); cum = a.cum || b.cum }

let inverse = function
  | Known k -> Known { k with dims = List.map (fun (d, e) -> (d, -e)) k.dims }
  | u -> u

(* A ratio of cumulative totals is a run-so-far average, not a prefix
   sum: nothing discharges it by subtraction, so the flavor drops. *)
let div a b =
  match mul a (inverse b) with
  | Known k -> Known { k with cum = false }
  | u -> u

(* ------------------------------------------------------------------ *)
(* Parsing and rendering                                              *)
(* ------------------------------------------------------------------ *)

let split_trim c s =
  String.split_on_char c s |> List.map String.trim
  |> List.filter (fun s -> s <> "")

(* One multiplicative factor: "cycles", "accesses^2", "1". *)
let parse_factor sign f =
  match split_trim '^' f with
  | [ d; e ] -> (
      match int_of_string_opt e with
      | Some e -> [ (d, sign * e) ]
      | None -> [ (d, sign) ])
  | _ -> if f = "1" then [] else [ (f, sign) ]

let parse_product sign p =
  String.map (fun c -> if c = '*' || c = '.' then ' ' else c) p
  |> split_trim ' '
  |> List.concat_map (parse_factor sign)

let rec parse s =
  let s = String.trim s in
  let low = String.lowercase_ascii s in
  if s = "" || s = "_" || low = "any" then Any
  else if low = "opaque" then Opaque
  else if low = "1" || low = "dimensionless" then dimensionless
  else if
    String.length low > 11
    && String.sub low 0 11 = "cumulative "
  then
    match parse (String.sub s 11 (String.length s - 11)) with
    | Known k -> Known { k with cum = true }
    | u -> u
  else if
    String.length low > 6
    && String.sub low 0 6 = "ratio<"
    && s.[String.length s - 1] = '>'
  then
    match split_trim ',' (String.sub s 6 (String.length s - 7)) with
    | [ a; b ] -> div (parse a) (parse b)
    | _ -> Opaque
  else
    match split_trim '/' s with
    | [] -> Any
    | num :: dens ->
        known
          (parse_product 1 num @ List.concat_map (parse_product (-1)) dens)

let to_string = function
  | Any -> "_"
  | Opaque -> "opaque"
  | Known { dims; cum } ->
      let part l =
        String.concat "*"
          (List.map
             (fun (d, e) -> if e = 1 then d else Printf.sprintf "%s^%d" d e)
             l)
      in
      let num = List.filter (fun (_, e) -> e > 0) dims in
      let den =
        List.filter (fun (_, e) -> e < 0) dims
        |> List.map (fun (d, e) -> (d, -e))
      in
      let s =
        (if num = [] then "1" else part num)
        ^ if den = [] then "" else "/" ^ part den
      in
      if cum then "cumulative " ^ s else s

type usig = { sig_params : (string option * t) list; sig_result : t }

let parse_sig s =
  (* Split on "->" arrows; each non-final component may carry a
     "label:" prefix binding it to a labeled parameter. *)
  let parts =
    let rec go acc buf i =
      if i >= String.length s then List.rev (Buffer.contents buf :: acc)
      else if i + 1 < String.length s && s.[i] = '-' && s.[i + 1] = '>' then begin
        let acc = Buffer.contents buf :: acc in
        Buffer.clear buf;
        go acc buf (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go acc buf (i + 1)
      end
    in
    go [] (Buffer.create 16) 0 |> List.map String.trim
  in
  match List.rev parts with
  | [] | [ "" ] -> { sig_params = []; sig_result = Any }
  | result :: rev_params ->
      let param p =
        match String.index_opt p ':' with
        | Some i when i > 0 ->
            ( Some (String.trim (String.sub p 0 i)),
              parse (String.sub p (i + 1) (String.length p - i - 1)) )
        | _ -> (None, parse p)
      in
      {
        sig_params = List.rev_map param rev_params;
        sig_result = parse result;
      }

(* ------------------------------------------------------------------ *)
(* Naming-convention fallback                                         *)
(* ------------------------------------------------------------------ *)

(* Only the vocabulary this model actually uses, and only tokens that
   are unambiguous: "penalty", "latency" and singular "interval" stay
   unmapped on purpose. *)
let fallback_token tok =
  match tok with
  | "cpi" -> Some (known [ ("cycles", 1); ("insns", -1) ])
  | "ipc" -> Some (known [ ("insns", 1); ("cycles", -1) ])
  | "mpki" -> Some (known [ ("accesses", 1); ("insns", -1) ])
  | "slowdown" | "speedup" | "stp" | "antt" | "fraction" | "ratio" | "rate"
  | "probability" | "prob" | "weight" ->
      Some dimensionless
  | "cycles" | "cycle" -> Some (known [ ("cycles", 1) ])
  | "insns" | "insn" | "instructions" -> Some (known [ ("insns", 1) ])
  | "misses" | "hits" | "accesses" -> Some (known [ ("accesses", 1) ])
  | "intervals" -> Some (known [ ("intervals", 1) ])
  | "ways" -> Some (known [ ("ways", 1) ])
  | "bytes" -> Some (known [ ("bytes", 1) ])
  | "programs" -> Some (known [ ("programs", 1) ])
  | _ -> None

let rec fallback_of_name name =
  let name = String.lowercase_ascii name in
  let strip p =
    let n = String.length p in
    if String.length name > n && String.sub name 0 n = p then
      Some (String.sub name n (String.length name - n))
    else None
  in
  match (strip "cum_", strip "cumulative_") with
  | Some rest, _ | _, Some rest -> (
      match fallback_of_name rest with
      | Some (Known k) -> Some (Known { k with cum = true })
      | u -> u)
  | None, None -> (
      match fallback_token name with
      | Some u -> Some u
      | None -> (
          match split_trim '_' name with
          | [] -> None
          | [ _ ] -> None
          | segs -> (
              let last = List.nth segs (List.length segs - 1) in
              match fallback_token last with
              | Some u -> Some u
              | None -> fallback_token (List.hd segs))))

(* ------------------------------------------------------------------ *)
(* Mismatch classification                                            *)
(* ------------------------------------------------------------------ *)

let count_dims = [ [ ("accesses", 1) ]; [ ("cycles", 1) ]; [ ("insns", 1) ] ]

(* Decide which rule a Known/Known conflict belongs to.  Returns
   [(rule, phrase)]; [None] means the pair is consistent. *)
let classify ?(flavor = false) a b =
  match (a, b) with
  | Known ka, Known kb ->
      if ka.dims = kb.dims then
        if flavor && ka.cum <> kb.cum then
          Some
            ( "U2",
              Printf.sprintf
                "cumulative/per-interval confusion: %s vs %s — only \
                 subtracting two cumulative values discharges the flavor"
                (to_string a) (to_string b) )
        else None
      else if
        (* negation preserves the by-name sort order, so the reciprocal
           test is a direct list comparison *)
        ka.dims <> [] && ka.dims = List.map (fun (d, e) -> (d, -e)) kb.dims
      then
        Some
          ( "U3",
            Printf.sprintf "inverted ratio: %s vs %s" (to_string a)
              (to_string b) )
      else if
        (ka.dims = [ ("intervals", 1) ] && List.mem kb.dims count_dims)
        || (kb.dims = [ ("intervals", 1) ] && List.mem ka.dims count_dims)
      then
        Some
          ( "U3",
            Printf.sprintf
              "interval index used as a count: %s vs %s" (to_string a)
              (to_string b) )
      else
        Some
          ( "U1",
            Printf.sprintf "mixed units: %s vs %s" (to_string a)
              (to_string b) )
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The cross-module table                                             *)
(* ------------------------------------------------------------------ *)

type info = {
  i_params : (string option * t) list;  (* annotation-declared params *)
  mutable i_result : t;
  i_annotated : bool;
}

type ctx = {
  cx_env : Resolve.env;
  cx_table : (string, info) Hashtbl.t;
  cx_fields : (string, t) Hashtbl.t;
  cx_fallback : bool;
  mutable cx_emit : bool;
  cx_diags : Diag.t list ref;
  mutable cx_facts : Facts.t;
  mutable cx_self : string;
}

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

let emit cx ~line rule message =
  if cx.cx_emit && in_lib cx.cx_facts.Facts.rel then
    cx.cx_diags :=
      { Diag.file = cx.cx_facts.Facts.rel; line; rule; severity = Diag.Error;
        message }
      :: !(cx.cx_diags)

(* Check an actual unit against a declared one at an assignment-like
   site (call argument, record field, setfield, declared result): the
   cumulative flavor must match exactly here. *)
let check_assign cx ~line ~what declared actual =
  match classify ~flavor:true declared actual with
  | Some (rule, phrase) ->
      emit cx ~line rule (Printf.sprintf "%s in %s" phrase what)
  | None -> ()

let field_unit cx f =
  match Hashtbl.find_opt cx.cx_fields f with
  | Some u -> Some u
  | None -> if cx.cx_fallback then fallback_of_name f else None

let lookup_info cx path =
  match path with
  | [ name ] -> (
      match Hashtbl.find_opt cx.cx_table (cx.cx_self ^ ":" ^ name) with
      | Some i -> Some i
      | None -> (
          match Resolve.resolve cx.cx_env cx.cx_facts path with
          | Some (u, m) -> Hashtbl.find_opt cx.cx_table (u ^ ":" ^ m)
          | None -> None))
  | _ -> (
      match Resolve.resolve cx.cx_env cx.cx_facts path with
      | Some (u, m) -> Hashtbl.find_opt cx.cx_table (u ^ ":" ^ m)
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

let rec eval cx scope (e : Facts.uexpr) : t =
  match e with
  | Facts.U_opaque -> Opaque
  | Facts.U_const -> Any
  | Facts.U_ident path -> (
      match path with
      | [ name ] when List.mem_assoc name scope -> List.assoc name scope
      | _ -> (
          match lookup_info cx path with
          | Some i -> if i.i_params = [] then i.i_result else Opaque
          | None -> (
              let name =
                match List.rev path with n :: _ -> n | [] -> ""
              in
              if cx.cx_fallback then
                match fallback_of_name name with
                | Some u -> u
                | None -> Any
              else Any)))
  | Facts.U_field f -> (
      match field_unit cx f with Some u -> u | None -> Any)
  | Facts.U_apply { ua_path; ua_args; ua_line } -> (
      let args = List.map (fun (lbl, a) -> (lbl, eval cx scope a)) ua_args in
      match lookup_info cx ua_path with
      | Some i when i.i_params <> [] ->
          let what =
            Printf.sprintf "argument of %s" (String.concat "." ua_path)
          in
          (* Labeled arguments match declared labels; positional ones
             consume the positional declarations in order. *)
          let positional =
            List.filter (fun (l, _) -> l = None) i.i_params
            |> List.map snd |> ref
          in
          List.iter
            (fun (lbl, actual) ->
              let declared =
                match lbl with
                | Some l -> (
                    match
                      List.find_opt (fun (l', _) -> l' = Some l) i.i_params
                    with
                    | Some (_, u) -> Some u
                    | None -> None)
                | None -> (
                    match !positional with
                    | u :: rest ->
                        positional := rest;
                        Some u
                    | [] -> None)
              in
              match declared with
              | Some d -> check_assign cx ~line:ua_line ~what d actual
              | None -> ())
            args;
          i.i_result
      | Some i -> if i.i_params = [] then Opaque else i.i_result
      | None -> Opaque)
  | Facts.U_arith { uo_op; uo_lhs; uo_rhs; uo_line } ->
      arith cx ~line:uo_line uo_op
        (eval cx scope uo_lhs)
        (eval cx scope uo_rhs)
  | Facts.U_branch es ->
      List.fold_left (fun acc e -> join acc (eval cx scope e)) Any es
  | Facts.U_let { ul_name; ul_rhs; ul_body; ul_line = _ } ->
      let v = eval cx scope ul_rhs in
      eval cx ((ul_name, v) :: scope) ul_body
  | Facts.U_fun { uf_params; uf_body } ->
      let scope =
        List.fold_left
          (fun sc (_, name) ->
            let u =
              if cx.cx_fallback then
                match fallback_of_name name with Some u -> u | None -> Any
              else Any
            in
            (name, u) :: sc)
          scope uf_params
      in
      ignore (eval cx scope uf_body);
      Opaque
  | Facts.U_seq (a, b) ->
      ignore (eval cx scope a);
      eval cx scope b
  | Facts.U_stmt es ->
      List.iter (fun e -> ignore (eval cx scope e)) es;
      Any
  | Facts.U_block es ->
      List.iter (fun e -> ignore (eval cx scope e)) es;
      Opaque
  | Facts.U_record { ur_fields; ur_line } ->
      List.iter
        (fun (f, e) ->
          let v = eval cx scope e in
          if f <> "_base" then
            match Hashtbl.find_opt cx.cx_fields f with
            | Some declared ->
                check_assign cx ~line:ur_line
                  ~what:(Printf.sprintf "field %s" f) declared v
            | None -> ())
        ur_fields;
      Opaque
  | Facts.U_setfield { us_field; us_rhs; us_line } ->
      let v = eval cx scope us_rhs in
      (match Hashtbl.find_opt cx.cx_fields us_field with
      | Some declared ->
          check_assign cx ~line:us_line
            ~what:(Printf.sprintf "field %s" us_field)
            declared v
      | None -> ());
      Any

and arith cx ~line op l r =
  let conflict what =
    (match classify l r with
    | Some (rule, phrase) ->
        emit cx ~line rule (Printf.sprintf "%s in %s" phrase what)
    | None -> ());
    Opaque
  in
  (* Additive-family shape analysis: both Opaque-free operands either
     agree on dimensions or conflict. *)
  let shape =
    match (l, r) with
    | Opaque, _ | _, Opaque -> `Opaque
    | Any, Any -> `Anys
    | Any, Known k -> `One (k.dims, k.cum, `Right)
    | Known k, Any -> `One (k.dims, k.cum, `Left)
    | Known ka, Known kb ->
        if ka.dims = kb.dims then `Both (ka.dims, ka.cum, kb.cum)
        else `Conflict
  in
  match op with
  | Facts.U_add -> (
      match shape with
      | `Opaque -> Opaque
      | `Anys -> Any
      | `One (dims, cum, _) -> Known { dims; cum }
      | `Both (dims, ca, cb) ->
          if ca && cb then begin
            emit cx ~line "U2"
              (Printf.sprintf
                 "adding two cumulative %s values — cumulative counters \
                  compose by subtraction, not addition"
                 (to_string (Known { dims; cum = false })));
            Opaque
          end
          else
            (* cumulative + per-interval extends the prefix sum *)
            Known { dims; cum = ca || cb }
      | `Conflict -> conflict "addition")
  | Facts.U_sub -> (
      match shape with
      | `Opaque -> Opaque
      | `Anys -> Any
      | `One (dims, cum, _) -> Known { dims; cum }
      | `Both (dims, ca, cb) ->
          if ca && cb then
            (* the discharge: cum - cum is back to per-interval *)
            Known { dims; cum = false }
          else if cb && not ca then begin
            emit cx ~line "U2"
              (Printf.sprintf
                 "subtracting a cumulative %s counter from a per-interval \
                  value — subtract two cumulative readings instead"
                 (to_string (Known { dims; cum = false })));
            Opaque
          end
          else Known { dims; cum = ca }
      | `Conflict -> conflict "subtraction")
  | Facts.U_minmax -> (
      match shape with
      | `Opaque -> Opaque
      | `Anys -> Any
      | `One (dims, cum, _) -> Known { dims; cum }
      | `Both (dims, ca, cb) -> Known { dims; cum = ca && cb }
      | `Conflict -> conflict "min/max")
  | Facts.U_rem -> (
      match shape with
      | `Opaque -> Opaque
      | `Anys -> Any
      | `One (dims, cum, _) -> Known { dims; cum }
      | `Both (dims, ca, _) -> Known { dims; cum = ca }
      | `Conflict -> conflict "mod")
  | Facts.U_cmp -> (
      (* Comparisons are flavor-blind: checking a cumulative counter
         against a per-interval threshold is ordinary control flow. *)
      match shape with
      | `Conflict ->
          ignore (conflict "comparison");
          Any
      | _ -> Any)
  | Facts.U_mul -> mul l r
  | Facts.U_div -> div l r

(* ------------------------------------------------------------------ *)
(* Table construction and the fixpoint                                *)
(* ------------------------------------------------------------------ *)

let fn_key (f : Facts.t) (fn : Facts.fn) =
  Facts.unit_key_of_rel f.Facts.rel ^ ":" ^ fn.Facts.fn_name

(* Bind a function's parameters for body evaluation: annotation-declared
   units first (labels by name, positionals in order), the naming
   fallback for the rest. *)
let param_scope cx (fn : Facts.fn) (i : info) =
  let positional =
    List.filter (fun (l, _) -> l = None) i.i_params |> List.map snd |> ref
  in
  List.map
    (fun (lbl, name) ->
      let declared =
        match lbl with
        | Some l -> (
            match
              List.find_opt (fun (l', _) -> l' = Some l) i.i_params
            with
            | Some (_, u) -> Some u
            | None -> None)
        | None -> (
            match !positional with
            | u :: rest ->
                positional := rest;
                Some u
            | [] -> None)
      in
      let u =
        match declared with
        | Some u when not (equal u Any) -> u
        | _ -> (
            if cx.cx_fallback then
              match fallback_of_name name with Some u -> u | None -> Any
            else Any)
      in
      (name, u))
    fn.Facts.fn_uparams

let build_tables ~fallback (facts_list : Facts.t list) =
  let table : (string, info) Hashtbl.t = Hashtbl.create ~random:false 512 in
  let fields : (string, t) Hashtbl.t = Hashtbl.create ~random:false 128 in
  (* Field annotations from every file; a conflicting re-declaration of
     the same field name across modules poisons it to Opaque rather than
     guessing. *)
  List.iter
    (fun (f : Facts.t) ->
      List.iter
        (fun (fname, annot) ->
          let u = parse annot in
          match Hashtbl.find_opt fields fname with
          | Some prev when not (equal prev u) ->
              Hashtbl.replace fields fname Opaque
          | _ -> Hashtbl.replace fields fname u)
        f.Facts.field_units)
    facts_list;
  if fallback then
    (* Convention-derived field units fill the gaps but never override
       an annotation. *)
    List.iter
      (fun (f : Facts.t) ->
        List.iter
          (fun (fname, _) ->
            if not (Hashtbl.mem fields fname) then
              match fallback_of_name fname with
              | Some u -> Hashtbl.replace fields fname u
              | None -> ())
          f.Facts.field_units)
      facts_list;
  (* .mli val annotations, keyed like functions. *)
  let mli_annot : (string, string) Hashtbl.t =
    Hashtbl.create ~random:false 256
  in
  List.iter
    (fun (f : Facts.t) ->
      if f.Facts.is_mli then
        List.iter
          (fun (name, annot) ->
            Hashtbl.replace mli_annot
              (Facts.unit_key_of_rel f.Facts.rel ^ ":" ^ name)
              annot)
          f.Facts.val_units)
    facts_list;
  List.iter
    (fun (f : Facts.t) ->
      if (not f.Facts.is_mli) && not f.Facts.parse_failed then
        List.iter
          (fun (fn : Facts.fn) ->
            let key = fn_key f fn in
            let annot =
              match Hashtbl.find_opt mli_annot key with
              | Some a -> Some a
              | None -> fn.Facts.fn_unit_annot
            in
            let i =
              match annot with
              | Some a ->
                  let s = parse_sig a in
                  {
                    i_params = s.sig_params;
                    i_result = s.sig_result;
                    i_annotated = true;
                  }
              | None ->
                  { i_params = []; i_result = Any; i_annotated = false }
            in
            if not (Hashtbl.mem table key) then Hashtbl.replace table key i)
          f.Facts.fns)
    facts_list;
  (* Annotated .mli vals with no scanned body (aliases, re-exports)
     still publish their declared signature. *)
  Hashtbl.iter
    (fun key annot ->
      if not (Hashtbl.mem table key) then
        let s = parse_sig annot in
        Hashtbl.replace table key
          { i_params = s.sig_params; i_result = s.sig_result; i_annotated = true })
    mli_annot;
  (table, fields)

let rounds = 5

let run_inference ~fallback env (facts_list : Facts.t list) =
  let table, fields = build_tables ~fallback facts_list in
  let cx =
    {
      cx_env = env;
      cx_table = table;
      cx_fields = fields;
      cx_fallback = fallback;
      cx_emit = false;
      cx_diags = ref [];
      cx_facts = List.hd facts_list;
      cx_self = "";
    }
  in
  let each_fn f =
    List.iter
      (fun (fa : Facts.t) ->
        if (not fa.Facts.is_mli) && not fa.Facts.parse_failed then begin
          cx.cx_facts <- fa;
          cx.cx_self <- Facts.unit_key_of_rel fa.Facts.rel;
          List.iter
            (fun (fn : Facts.fn) ->
              match Hashtbl.find_opt table (fn_key fa fn) with
              | Some i -> f fa fn i
              | None -> ())
            fa.Facts.fns
        end)
      facts_list
  in
  for _ = 1 to rounds do
    each_fn (fun _ fn i ->
        if not i.i_annotated then
          i.i_result <- eval cx (param_scope cx fn i) fn.Facts.fn_ubody)
  done;
  (cx, each_fn)

(* ------------------------------------------------------------------ *)
(* The public pass                                                    *)
(* ------------------------------------------------------------------ *)

type fn_class = Annotated | Inferred | Opaque_unit

let class_name = function
  | Annotated -> "annotated"
  | Inferred -> "inferred"
  | Opaque_unit -> "opaque"

type coverage = {
  cov_key : string;
  cov_annotated : int;
  cov_inferred : int;
  cov_opaque : int;
  cov_opaque_names : string list;
}

type analysis = {
  u_diags : Diag.t list;
  u_coverage : coverage list;
  u_fn_class : (string * fn_class) list;
  u_suggest : (string * int * string * string) list;
}

let analyze env (facts_list : Facts.t list) =
  match facts_list with
  | [] -> { u_diags = []; u_coverage = []; u_fn_class = []; u_suggest = [] }
  | _ ->
      let cx, each_fn = run_inference ~fallback:true env facts_list in
      (* Findings pass: re-evaluate every body once with the converged
         table, emitting diagnostics, and check declared-vs-inferred
         consistency for annotated functions. *)
      cx.cx_emit <- true;
      let classes = ref [] in
      each_fn (fun fa fn i ->
          let inferred = eval cx (param_scope cx fn i) fn.Facts.fn_ubody in
          if i.i_annotated then
            check_assign cx ~line:fn.Facts.fn_line
              ~what:
                (Printf.sprintf "declared unit of %s (inferred %s)"
                   fn.Facts.fn_name (to_string inferred))
              i.i_result inferred;
          let cls =
            if i.i_annotated then Annotated
            else
              match i.i_result with Opaque -> Opaque_unit | _ -> Inferred
          in
          classes := (fn_key fa fn, cls) :: !classes);
      let class_of = Hashtbl.create ~random:false 512 in
      List.iter (fun (k, c) -> Hashtbl.replace class_of k c) !classes;
      (* Coverage over the public .mli values of lib/ modules. *)
      let coverage =
        List.filter_map
          (fun (f : Facts.t) ->
            if
              f.Facts.is_mli
              && in_lib f.Facts.rel
              && not f.Facts.parse_failed
            then begin
              let key = Facts.unit_key_of_rel f.Facts.rel in
              let ann = ref 0 and inf = ref 0 and opq = ref 0 in
              let opq_names = ref [] in
              List.iter
                (fun (name, _) ->
                  if List.mem_assoc name f.Facts.val_units then incr ann
                  else
                    match Hashtbl.find_opt class_of (key ^ ":" ^ name) with
                    | Some Annotated -> incr ann
                    | Some Inferred -> incr inf
                    | Some Opaque_unit | None ->
                        incr opq;
                        opq_names := name :: !opq_names)
                f.Facts.mli_vals;
              Some
                {
                  cov_key = key;
                  cov_annotated = !ann;
                  cov_inferred = !inf;
                  cov_opaque = !opq;
                  cov_opaque_names = List.rev !opq_names;
                }
            end
            else None)
          facts_list
        |> List.sort compare
      in
      (* Suggestion pass: strict inference (no naming fallback), so a
         suggested annotation is backed purely by annotation-rooted
         units flowing through the definition. *)
      let scx, _ = run_inference ~fallback:false env facts_list in
      let suggest =
        List.concat_map
          (fun (f : Facts.t) ->
            if
              f.Facts.is_mli
              && in_lib f.Facts.rel
              && not f.Facts.parse_failed
            then
              let key = Facts.unit_key_of_rel f.Facts.rel in
              List.filter_map
                (fun (name, line) ->
                  if List.mem_assoc name f.Facts.val_units then None
                  else
                    match
                      Hashtbl.find_opt scx.cx_table (key ^ ":" ^ name)
                    with
                    | Some i when not i.i_annotated -> (
                        match i.i_result with
                        | Known _ as u ->
                            Some (f.Facts.rel, line, name, to_string u)
                        | _ -> None)
                    | _ -> None)
                f.Facts.mli_vals
            else [])
          facts_list
        |> List.sort compare
      in
      {
        u_diags = List.rev !(cx.cx_diags);
        u_coverage = coverage;
        u_fn_class = List.sort compare !classes;
        u_suggest = suggest;
      }

let check env facts_list = (analyze env facts_list).u_diags
