(** S6/S7/S8: the parallel-determinism rules over mutation facts and the
    closed effect lattice.

    S6 proves every closure reaching [Pool.map]/[Pool.map_reduce]/a
    [Single_flight] memo observationally pure: no writes to captured or
    module-level mutable state, no calls reaching such a write outside
    the purity allowlist, and no captured value shared with a callee that
    mutates its first argument.  S7 forbids module-level mutable state in
    [lib/] outside the sanctioned memo/registry units — the allocation,
    a write to one, or handing one to a mutating callee.  S8 enforces the
    declared lock order ({!Effects.lock_order}: pool before registry) on
    every [Mutex.lock] in the lock-owning units. *)

val check : Effects.table -> Facts.t list -> Mppm_lint.Diag.t list
(** All S6/S7/S8 findings (errors), deduplicated and sorted in
    {!Mppm_lint.Diag.compare} order.  Suppression is applied by the
    caller ({!Sema.analyze}). *)
