(* Total wrappers around the compiler-libs parser.

   The AST layer must never crash the linter: any exception from the
   lexer/parser (syntax errors, malformed literals, even assertion
   failures on adversarial bytes) is caught and surfaced as [None], which
   the driver treats as "fall back to the token layer for this file".
   This totality is qcheck-verified in test/suite_sema.ml. *)

let fresh_lexbuf ~filename content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf filename;
  lexbuf.Lexing.lex_curr_p <-
    { lexbuf.Lexing.lex_curr_p with Lexing.pos_lnum = 1; pos_bol = 0 };
  lexbuf

let implementation ~filename content =
  match Parse.implementation (fresh_lexbuf ~filename content) with
  | structure -> Some structure
  | exception _ -> None

let interface ~filename content =
  match Parse.interface (fresh_lexbuf ~filename content) with
  | signature -> Some signature
  | exception _ -> None
