(* Top-level driver of the AST analysis layer.

   Extraction (per file, cacheable) feeds the cross-checks: S1/S5 effect
   containment (Effects), S2 seed-flow (Seedflow), S3 order-sensitive
   float accumulation and S4 dead exports (here), and the S6/S7/S8
   parallel-determinism rules (Purity) over the closed effect table.
   Suppression reuses the token layer's [(* lint: allow ... *)] semantics
   via Engine.suppress, so one comment silences findings from either
   layer. *)

module Diag = Mppm_lint.Diag
module Engine = Mppm_lint.Engine
module Rules = Mppm_lint.Rules

type input = { rel : string; content : string }

type report = {
  diags : Diag.t list;
  parses : int;
  cache_hits : int;
  fallbacks : int;
  summaries : (string * string * string) list;
  hot : Hotpath.entry list;
  units : Units.analysis;
}

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

(* S3: float accumulation over unordered Hashtbl iteration.  Iteration
   order depends on the hash layout, so a float sum folded over it is not
   reproducible across table histories — an error in lib/, a warning in
   executable and test code. *)
let s3 facts_list =
  List.concat_map
    (fun (f : Facts.t) ->
      List.map
        (fun (fa : Facts.float_accum) ->
          {
            Diag.file = f.Facts.rel;
            line = fa.Facts.fa_line;
            rule = "S3";
            severity =
              (if in_lib f.Facts.rel then Diag.Error else Diag.Warning);
            message =
              Printf.sprintf
                "float accumulation over unordered %s; iteration order is \
                 not deterministic — accumulate over a sorted projection \
                 instead"
                fa.Facts.fa_context;
          })
        f.Facts.float_accums)
    facts_list

(* S4: lib/ .mli exports referenced by no other compilation unit.  Uses
   are collected from every scanned file's alias-expanded value paths;
   unqualified names in a file that [open]s a unit count as potential
   uses of that unit (an over-approximation, so S4 under-reports rather
   than false-positives). *)
let s4 env facts_list =
  let used : (string * string, unit) Hashtbl.t =
    Hashtbl.create ~random:false 1024
  in
  List.iter
    (fun (f : Facts.t) ->
      if not f.Facts.parse_failed then begin
        let self = Facts.unit_key_of_rel f.Facts.rel in
        let opened_units =
          List.filter_map
            (fun open_path ->
              match Resolve.resolve env f (open_path @ [ "_" ]) with
              | Some (u, _) when u <> self -> Some u
              | _ -> None)
            f.Facts.opens
        in
        List.iter
          (fun path ->
            match path with
            | [ name ] ->
                List.iter
                  (fun u -> Hashtbl.replace used (u, name) ())
                  opened_units
            | _ -> (
                match Resolve.resolve env f path with
                | Some (u, m) when u <> self -> Hashtbl.replace used (u, m) ()
                | _ -> ()))
          f.Facts.refs
      end)
    facts_list;
  List.concat_map
    (fun (f : Facts.t) ->
      if
        f.Facts.is_mli && in_lib f.Facts.rel && not f.Facts.parse_failed
      then
        let self = Facts.unit_key_of_rel f.Facts.rel in
        List.filter_map
          (fun (name, line) ->
            if Hashtbl.mem used (self, name) then None
            else
              Some
                {
                  Diag.file = f.Facts.rel;
                  line;
                  rule = "S4";
                  severity = Diag.Warning;
                  message =
                    Printf.sprintf
                      "val %s is exported but referenced by no other \
                       compilation unit; drop it from the .mli or mark the \
                       intent with an allow comment"
                      name;
                })
          f.Facts.mli_vals
      else [])
    facts_list

let analyze ?cache_file ~dunes inputs =
  let cache =
    match cache_file with Some p -> Cache.load p | None -> Cache.create ()
  in
  let parses = ref 0 and hits = ref 0 and fallbacks = ref 0 in
  let facts_list =
    List.map
      (fun { rel; content } ->
        let rel = Engine.normalize_rel rel in
        let k = Cache.key ~rel content in
        match Cache.find cache k with
        | Some f ->
            incr hits;
            f
        | None ->
            incr parses;
            let f = Facts.extract ~rel content in
            if f.Facts.parse_failed then incr fallbacks;
            Cache.add cache k f;
            f)
      inputs
  in
  (match cache_file with Some p -> Cache.store p cache | None -> ());
  let env =
    Resolve.build ~dunes
      ~files:(List.map (fun (f : Facts.t) -> f.Facts.rel) facts_list)
  in
  let table = Effects.build env facts_list in
  let units = Units.analyze env facts_list in
  let raw =
    Effects.check table
    @ Seedflow.check facts_list
    @ Purity.check table facts_list
    @ Hotpath.check env facts_list
    @ units.Units.u_diags
    @ s3 facts_list
    @ s4 env facts_list
  in
  let allows_of : (string, (string * int) list * string list) Hashtbl.t =
    Hashtbl.create ~random:false 256
  in
  List.iter
    (fun (f : Facts.t) ->
      Hashtbl.replace allows_of f.Facts.rel
        (f.Facts.allows, f.Facts.allow_files))
    facts_list;
  let diags =
    List.filter
      (fun d ->
        match Hashtbl.find_opt allows_of d.Diag.file with
        | Some (allows, allow_files) ->
            Engine.suppress ~allows ~allow_files [ d ] <> []
        | None -> true)
      raw
    |> List.sort Diag.compare
  in
  {
    diags;
    parses = !parses;
    cache_hits = !hits;
    fallbacks = !fallbacks;
    summaries = Effects.summaries table;
    hot = Hotpath.analyze env facts_list;
    units;
  }

let analyze_tree ?cache_file ~root () =
  let files = Engine.collect_tree ~root in
  let dunes, sources =
    List.partition (fun rel -> Filename.basename rel = "dune") files
  in
  let read rel = Engine.read_file (Filename.concat root rel) in
  let dunes = List.map (fun rel -> (rel, read rel)) dunes in
  let inputs = List.map (fun rel -> { rel; content = read rel }) sources in
  analyze ?cache_file ~dunes inputs
