(* Per-file facts extracted from the compiler-libs parse tree.

   Facts are plain serializable data (no AST nodes), so they can be cached
   by source fingerprint and re-fed to the cross-module passes without
   re-parsing.  Extraction is syntactic — no typing — so every judgment
   here is a heuristic; the rules built on top are tuned to be zero-noise
   on this tree (asserted by the test suite). *)

type mut_scope =
  | Mut_local  (* target is let-bound to a fresh mutable allocation *)
  | Mut_arg  (* target is bound somewhere in the function (param, let,
                match case) but not to a visible fresh allocation *)
  | Mut_toplevel  (* target is free in the function: module-level state
                     of this unit, or a qualified path into another *)

type mutation = {
  mut_target : string;
  mut_prim : string;  (* ":=", "<-", "Hashtbl.replace", ... *)
  mut_scope : mut_scope;
  mut_line : int;
}

type closure = {
  ct_line : int;
  ct_writes : (string * string * string * int) list;
      (* (target, prim, "captured"|"toplevel", line): writes whose target
         is not bound inside the closure *)
  ct_calls : string list list;
      (* every value path referenced inside the closure, alias-expanded *)
  ct_escaping : (string list * string * int) list;
      (* (callee, ident, line): calls whose first positional argument is
         an identifier captured from outside the closure *)
}

type task =
  | Task_path of string list * string option
      (* a named task, possibly partially applied; the option is the
         first positional identifier applied at the call site *)
  | Task_closure of closure

type pool_call = { pc_entry : string; pc_line : int; pc_tasks : task list }

type perf_site = {
  ps_rule : string;  (* "P1".."P4" *)
  ps_what : string;  (* human description of the offending shape *)
  ps_line : int;
}

(* ---- unit-analysis shapes (U1-U3) -------------------------------------- *)

type uop = U_add | U_sub | U_mul | U_div | U_minmax | U_cmp | U_rem

(* A serializable unit-relevant skeleton of an expression: enough structure
   for the Units pass to infer and check physical units cross-module
   without re-parsing.  Conversion is lossy by design — shapes the unit
   algebra cannot reason about collapse to U_opaque (poisons, never
   findings) or containers whose children are still checked. *)
type uexpr =
  | U_opaque  (* unknown value: never produces a finding *)
  | U_const  (* literal or nullary constructor: unifies with anything *)
  | U_ident of string list  (* alias-expanded value path *)
  | U_field of string  (* record projection, by trailing field name *)
  | U_apply of {
      ua_path : string list;  (* callee path, [] when the head is computed *)
      ua_args : (string option * uexpr) list;  (* (label, argument) *)
      ua_line : int;
    }
  | U_arith of { uo_op : uop; uo_lhs : uexpr; uo_rhs : uexpr; uo_line : int }
  | U_branch of uexpr list  (* if/match arms: result is the join *)
  | U_let of { ul_name : string; ul_rhs : uexpr; ul_body : uexpr; ul_line : int }
  | U_fun of { uf_params : (string option * string) list; uf_body : uexpr }
  | U_seq of uexpr * uexpr  (* first checked, second is the value *)
  | U_stmt of uexpr list  (* unit-typed container: checked, result free *)
  | U_block of uexpr list  (* opaque container: checked, result unknown *)
  | U_record of { ur_fields : (string * uexpr) list; ur_line : int }
  | U_setfield of { us_field : string; us_rhs : uexpr; us_line : int }

type fn = {
  fn_name : string;
  fn_line : int;
  calls : string list list;
      (* every value path referenced inside the body, alias-expanded *)
  rng_fields : string list;
      (* record fields passed as the state argument of an Rng draw *)
  prim_io : (string * int) list;  (* (primitive, line) of direct file I/O *)
  prim_conc : (string * int) list;
      (* (primitive, line) of direct Domain/Mutex/Condition/Atomic use *)
  has_rng : bool;
  mutations : mutation list;  (* direct writes, scope-classified *)
  mut_arg0 : bool;  (* mutates its own first positional parameter *)
  pool_calls : pool_call list;  (* Pool.map/map_reduce/Single_flight sites *)
  top_arg_calls : (string list * string * int) list;
      (* (callee, ident, line): calls passing a module-level value as the
         first positional argument *)
  raises : bool;
  fn_hot : bool;  (* carries a (* mppm: hot *) root annotation *)
  fn_has_loop : bool;  (* the warm region contains a while/for loop *)
  warm_sites : perf_site list;
      (* P1-P4 shapes anywhere in the body outside cold guards
         (Invariant/Trace-conditioned branches, Trace.emit thunks,
         mppm:cold-marked expressions) *)
  loop_sites : perf_site list;
      (* the subset of warm_sites inside while/for loops, including the
         bodies of local lambdas referenced from a loop *)
  warm_calls : string list list;
      (* value paths referenced outside cold guards: the hotness
         propagation edges of a non-root (or loop-free root) hot fn *)
  loop_calls : string list list;
      (* value paths referenced inside loops: the propagation edges of an
         annotated root whose hot region is its loops *)
  fn_uparams : (string option * string) list;
      (* every parameter in binding order: (label, name) *)
  fn_ubody : uexpr;  (* unit skeleton of the body (params stripped) *)
  fn_unit_annot : string option;
      (* (* mppm: unit ... *) annotation on or just above the binding *)
}

type rng_create = { rc_line : int; rc_constant_seed : bool }
type float_accum = { fa_line : int; fa_context : string }

type t = {
  rel : string;
  unit_name : string;  (* capitalized stem, e.g. "Generator" *)
  dir : string;  (* e.g. "lib/trace" *)
  is_mli : bool;
  parse_failed : bool;
  opens : string list list;
  aliases : (string * string list) list;  (* module X = A.B *)
  fns : fn list;
  refs : string list list;  (* every value path referenced in the file *)
  mli_vals : (string * int) list;  (* .mli val items: (name, line) *)
  val_units : (string * string) list;
      (* (.mli val name, unit annotation) pairs, attached by line *)
  field_units : (string * string) list;
      (* (record field name, unit annotation) pairs from type decls *)
  rng_creates : rng_create list;
  float_accums : float_accum list;
  toplevel_muts : (string * string * int) list;
      (* (name, kind, line): module-level mutable allocations *)
  allows : (string * int) list;
  allow_files : string list;
}

let unit_key_of_rel rel = Filename.remove_extension rel

(* ---- path helpers ------------------------------------------------------ *)

let flatten lid = try Longident.flatten lid with _ -> []

let expand aliases path =
  match path with
  | a :: rest when List.mem_assoc a aliases -> List.assoc a aliases @ rest
  | _ -> path

let channel_prims =
  [
    "open_in"; "open_in_bin"; "open_in_gen"; "open_out"; "open_out_bin";
    "open_out_gen"; "close_in"; "close_in_noerr"; "close_out";
    "close_out_noerr"; "input_line"; "input_char"; "input_byte";
    "input_binary_int"; "input_value"; "really_input"; "really_input_string";
    "output_string"; "output_char"; "output_byte"; "output_binary_int";
    "output_value"; "output_bytes"; "output_substring"; "seek_in"; "seek_out";
    "pos_in"; "pos_out"; "in_channel_length"; "out_channel_length";
    "set_binary_mode_in"; "set_binary_mode_out";
  ]

let sys_fs_prims =
  [
    "remove"; "rename"; "readdir"; "mkdir"; "rmdir"; "command"; "chdir";
    "getcwd"; "file_exists"; "is_directory";
  ]

let io_prim_of_path = function
  | [ p ] when List.mem p channel_prims -> Some p
  | [ "Stdlib"; p ] when List.mem p channel_prims -> Some p
  | [ "Sys"; p ] when List.mem p sys_fs_prims -> Some ("Sys." ^ p)
  | "Unix" :: p :: _ -> Some ("Unix." ^ p)
  | _ -> None

let conc_modules = [ "Domain"; "Mutex"; "Condition"; "Atomic" ]

(* A use of the OCaml 5 concurrency surface (S5).  Aliases are expanded
   before we get here, and the stdlib qualifies these as [Stdlib.Mutex]
   etc., so both spellings resolve. *)
let conc_prim_of_path path =
  let path = match path with "Stdlib" :: rest -> rest | p -> p in
  match path with
  | m :: member :: _ when List.mem m conc_modules -> Some (m ^ "." ^ member)
  | _ -> None

(* A path that ends [....Rng.member] is a use of the deterministic RNG:
   the only module named Rng anywhere in the tree is Mppm_util.Rng, and
   local aliases ([module Rng = Mppm_util.Rng]) keep the name. *)
let rng_member_of_path path =
  match List.rev path with
  | member :: "Rng" :: _ -> Some member
  | _ -> None

let raise_prims = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let float_ops = [ "+."; "-."; "*."; "/." ]

(* ---- mutation primitives ----------------------------------------------- *)

let bigarray_modules = [ "Array0"; "Array1"; "Array2"; "Array3"; "Genarray" ]

(* Stdlib functions whose application allocates a fresh mutable value; a
   name let-bound to one of these is local state, not shared state. *)
let alloc_prim_of_path path =
  let named m kind members =
    if List.mem m members then Some kind else None
  in
  match path with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | _ -> (
      match List.rev path with
      | m :: "Hashtbl" :: _ -> named m ("Hashtbl." ^ m) [ "create"; "copy" ]
      | m :: "Array" :: _ ->
          named m ("Array." ^ m)
            [
              "make"; "create"; "init"; "copy"; "sub"; "of_list"; "append";
              "concat"; "make_matrix"; "map"; "mapi"; "of_seq";
            ]
      | m :: "Bytes" :: _ ->
          named m ("Bytes." ^ m)
            [ "create"; "make"; "init"; "copy"; "sub"; "of_string" ]
      | m :: "Buffer" :: _ -> named m ("Buffer." ^ m) [ "create" ]
      | m :: "Queue" :: _ -> named m ("Queue." ^ m) [ "create"; "copy" ]
      | m :: "Stack" :: _ -> named m ("Stack." ^ m) [ "create"; "copy" ]
      | m :: "Atomic" :: _ -> named m ("Atomic." ^ m) [ "make" ]
      | m :: "Mutex" :: _ -> named m ("Mutex." ^ m) [ "create" ]
      | m :: "Condition" :: _ -> named m ("Condition." ^ m) [ "create" ]
      | m :: b :: _ when List.mem b bigarray_modules ->
          named m (b ^ "." ^ m) [ "create"; "init"; "of_array" ]
      | _ -> None)

(* Stdlib write primitives: [Some (name, i)] means the [i]-th positional
   argument is the mutated value. *)
let write_prim_of_path path =
  let named m kind members idx =
    if List.mem m members then Some (kind, idx) else None
  in
  match path with
  | [ ":=" ] | [ "Stdlib"; ":=" ] -> Some (":=", 0)
  | [ ("incr" | "decr") as p ] | [ "Stdlib"; (("incr" | "decr") as p) ] ->
      Some (p, 0)
  | _ -> (
      match List.rev path with
      | "blit" :: "Array" :: _ -> Some ("Array.blit", 2)
      | m :: "Array" :: _ when List.mem m [ "sort"; "fast_sort"; "stable_sort" ]
        ->
          (* The comparison function comes first; the array is mutated. *)
          Some ("Array." ^ m, 1)
      | m :: "Array" :: _ ->
          named m ("Array." ^ m) [ "set"; "unsafe_set"; "fill" ] 0
      | ("blit" | "blit_string") :: "Bytes" :: _ -> Some ("Bytes.blit", 2)
      | m :: "Bytes" :: _ ->
          named m ("Bytes." ^ m) [ "set"; "unsafe_set"; "fill" ] 0
      | "filter_map_inplace" :: "Hashtbl" :: _ ->
          Some ("Hashtbl.filter_map_inplace", 1)
      | m :: "Hashtbl" :: _ ->
          named m ("Hashtbl." ^ m)
            [ "add"; "replace"; "remove"; "reset"; "clear" ]
            0
      | m :: "Buffer" :: _ when String.length m >= 4 && String.sub m 0 4 = "add_"
        ->
          Some ("Buffer." ^ m, 0)
      | m :: "Buffer" :: _ ->
          named m ("Buffer." ^ m) [ "clear"; "reset"; "truncate" ] 0
      | m :: "Queue" :: _ when m = "add" || m = "push" || m = "transfer" ->
          Some ("Queue." ^ m, 1)
      | m :: "Queue" :: _ ->
          named m ("Queue." ^ m) [ "take"; "pop"; "clear" ] 0
      | "push" :: "Stack" :: _ -> Some ("Stack.push", 1)
      | m :: "Stack" :: _ -> named m ("Stack." ^ m) [ "pop"; "clear" ] 0
      | m :: "Atomic" :: _ ->
          named m ("Atomic." ^ m)
            [
              "set"; "exchange"; "compare_and_set"; "fetch_and_add"; "incr";
              "decr";
            ]
            0
      | "blit" :: b :: _ when List.mem b bigarray_modules ->
          Some (b ^ ".blit", 1)
      | m :: b :: _ when List.mem b bigarray_modules ->
          named m (b ^ "." ^ m) [ "set"; "unsafe_set"; "fill" ] 0
      | _ -> None)

(* Entries of the parallel surface whose function argument runs on pool
   worker domains (or is shared by them): the S6 purity boundary. *)
let pool_entry_of_path path =
  match List.rev path with
  | m :: "Pool" :: _ when m = "map" || m = "map_reduce" -> Some ("Pool." ^ m)
  | m :: "Single_flight" :: _ when m = "get" || m = "run_or_wait" ->
      Some ("Single_flight." ^ m)
  | _ -> None

(* Module-level bindings to these shapes are the S7 inventory.  Mutable
   records and toplevel arrays are deliberately absent: they are caught at
   their write sites instead, so constant tables stay unflagged. *)
let toplevel_mut_kind_of_path path =
  match path with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | _ -> (
      match List.rev path with
      | "create" :: m :: _
        when List.mem m
               [ "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Mutex"; "Condition" ]
        ->
          Some (m ^ ".create")
      | ("create" | "make") :: "Bytes" :: _ -> Some "Bytes.create"
      | "make" :: "Atomic" :: _ -> Some "Atomic.make"
      | _ -> None)

(* ---- expression scanning ---------------------------------------------- *)

let line_of_expr e = e.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_lnum

let expr_contains pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if pred e then found := true;
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let is_float_op e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt = Longident.Lident op; _ } ->
      List.mem op float_ops
  | Parsetree.Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ "Float"; ("add" | "sub" | "mul" | "div") ] -> true
      | _ -> false)
  | _ -> false

let mentions_ident e =
  expr_contains
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident _ -> true
      | _ -> false)
    e

let is_fun e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
  | _ -> false

let head_path aliases e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> expand aliases (flatten txt)
  | _ -> []

let applies_hashtbl_to_seq aliases e =
  expr_contains
    (fun e ->
      let path =
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (head, _) -> head_path aliases head
        | Parsetree.Pexp_ident { txt; _ } -> expand aliases (flatten txt)
        | _ -> []
      in
      match List.rev path with
      | m :: "Hashtbl" :: _ ->
          String.length m >= 6 && String.sub m 0 6 = "to_seq"
      | _ -> false)
    e

(* The identifier ultimately mutated by a write: the head of a (possibly
   nested) field chain.  Unknown shapes (computed targets) yield None and
   the write is conservatively not recorded. *)
let rec target_ident e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [] -> None
      | [ v ] -> Some (v, false)
      | path -> Some (String.concat "." path, true))
  | Parsetree.Pexp_field (e, _) -> target_ident e
  | Parsetree.Pexp_constraint (e, _) -> target_ident e
  | _ -> None

let nth_positional args i =
  let positional = List.filter (fun (l, _) -> l = Asttypes.Nolabel) args in
  match List.nth_opt positional i with Some (_, a) -> Some a | None -> None

let first_positional_ident args =
  match nth_positional args 0 with
  | Some { Parsetree.pexp_desc = Parsetree.Pexp_ident { txt = Longident.Lident v; _ }; _ }
    ->
      Some v
  | _ -> None

(* The task argument of a parallel entry: Pool.map's second positional
   argument, Pool.map_reduce's ~map, a Single_flight memo's third. *)
let task_arg_of_entry entry args =
  match entry with
  | "Pool.map_reduce" ->
      List.find_map
        (fun (l, a) -> if l = Asttypes.Labelled "map" then Some a else None)
        args
  | "Pool.map" -> nth_positional args 1
  | _ -> nth_positional args 2

(* Names bound anywhere inside [e] (params, lets, match cases — flat,
   shadowing-insensitive) and the subset let-bound to a fresh mutable
   allocation. *)
let binding_env aliases e =
  let bound = ref [] in
  let alloc = ref [] in
  let rec shallow_names p =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> [ txt ]
    | Parsetree.Ppat_constraint (p, _) -> shallow_names p
    | Parsetree.Ppat_tuple ps -> List.concat_map shallow_names ps
    | Parsetree.Ppat_alias (p, { txt; _ }) -> txt :: shallow_names p
    | _ -> []
  in
  let rec allocates rhs =
    match rhs.Parsetree.pexp_desc with
    | Parsetree.Pexp_array _ | Parsetree.Pexp_record _ -> true
    | Parsetree.Pexp_constraint (e, _) -> allocates e
    | Parsetree.Pexp_apply (head, _) ->
        alloc_prim_of_path (head_path aliases head) <> None
    | _ -> false
  in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> bound := txt :: !bound
          | Parsetree.Ppat_alias (_, { txt; _ }) -> bound := txt :: !bound
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  if allocates vb.Parsetree.pvb_expr then
                    alloc := shallow_names vb.Parsetree.pvb_pat @ !alloc)
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  (!bound, !alloc)

let rec first_positional_param e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (Asttypes.Nolabel, _, pat, _) -> (
      match pat.Parsetree.ppat_desc with
      | Parsetree.Ppat_var { txt; _ } -> Some txt
      | Parsetree.Ppat_constraint
          ({ Parsetree.ppat_desc = Parsetree.Ppat_var { txt; _ }; _ }, _) ->
          Some txt
      | _ -> None)
  | Parsetree.Pexp_fun (_, _, _, rest) -> first_positional_param rest
  | Parsetree.Pexp_newtype (_, rest) -> first_positional_param rest
  | Parsetree.Pexp_constraint (e, _) -> first_positional_param e
  | _ -> None

let rec positional_params e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (Asttypes.Nolabel, _, pat, rest) ->
      let name =
        match pat.Parsetree.ppat_desc with
        | Parsetree.Ppat_var { txt; _ } -> txt
        | _ -> "_"
      in
      name :: positional_params rest
  | Parsetree.Pexp_fun (_, _, _, rest) -> positional_params rest
  | Parsetree.Pexp_newtype (_, rest) -> positional_params rest
  | Parsetree.Pexp_constraint (e, _) -> positional_params e
  | _ -> []

(* ---- hot-path perf primitives (P1-P4) ---------------------------------- *)

(* Stdlib calls that allocate on every invocation, beyond the mutable
   allocators already in [alloc_prim_of_path]: list/array producers,
   string builders and the formatting modules.  [Hashtbl] is deliberately
   absent — any hashtable traffic on a hot path is P3, not P1. *)
let perf_alloc_of_path path =
  match alloc_prim_of_path path with
  | Some p when String.length p >= 8 && String.sub p 0 8 = "Hashtbl." -> None
  | Some p -> Some p
  | None -> (
      match path with
      | [ "@" ] | [ "Stdlib"; "@" ] -> Some "list append (@)"
      | [ "^" ] | [ "Stdlib"; "^" ] -> Some "string concat (^)"
      | _ -> (
          match List.rev path with
          | m :: "Array" :: _ when List.mem m [ "append"; "concat"; "to_list"; "to_seq"; "split"; "combine" ]
            ->
              Some ("Array." ^ m)
          | m :: "List" :: _
            when List.mem m
                   [
                     "map"; "mapi"; "map2"; "rev_map"; "init"; "append";
                     "concat"; "concat_map"; "filter"; "filter_map"; "rev";
                     "rev_append"; "sort"; "stable_sort"; "fast_sort";
                     "sort_uniq"; "merge"; "split"; "combine"; "of_seq";
                     "to_seq"; "cons";
                   ] ->
              Some ("List." ^ m)
          | m :: "String" :: _
            when List.mem m [ "make"; "init"; "sub"; "concat"; "cat"; "map"; "mapi"; "split_on_char" ]
            ->
              Some ("String." ^ m)
          | _ :: "Printf" :: _ -> Some "Printf formatting"
          | _ :: "Format" :: _ -> Some "Format formatting"
          | _ -> None))

(* Polymorphic structural comparison: the runtime walks the representation
   through a C call, boxing floats on the way.  [<]/[<=] are excluded —
   the tree only uses them on immediates the compiler specializes. *)
let poly_compare_of_path path =
  match path with
  | [ ("=" | "<>" | "compare") as p ] | [ "Stdlib"; (("=" | "<>" | "compare") as p) ]
    ->
      Some (if p = "compare" then "compare" else "( " ^ p ^ " )")
  | _ -> (
      match List.rev path with
      | ("hash" | "hash_param" | "seeded_hash") :: "Hashtbl" :: _ ->
          Some "Hashtbl.hash"
      | _ -> None)

let hashtbl_member_of_path path =
  match List.rev path with
  | m :: "Hashtbl" :: _ -> Some ("Hashtbl." ^ m)
  | _ -> None

(* Conditions that gate off-hot-path work: the sanitizer and the trace
   sink are disabled on the bench path, so branches they guard are cold. *)
let is_cold_guard_path path =
  match List.rev path with
  | "enabled" :: ("Invariant" | "Trace" | "Prof") :: _ -> true
  | _ -> false

(* Applications whose argument work only runs when observability is on:
   Trace.emit takes a thunk forced behind the sink check, and the
   Invariant entry points only evaluate under MPPM_SANITIZE. *)
let is_cold_apply_path path =
  match List.rev path with
  | "emit" :: "Trace" :: _ -> true
  | _ :: "Invariant" :: _ -> true
  | _ -> false

(* Single lowercase idents that resolve to the stdlib, not to a captured
   binding: referencing one from a lambda does not force an environment. *)
let pervasive_idents =
  [
    "not"; "ignore"; "min"; "max"; "abs"; "fst"; "snd"; "succ"; "pred";
    "float_of_int"; "int_of_float"; "string_of_int"; "truncate"; "sqrt";
    "log"; "exp"; "ceil"; "floor"; "epsilon_float"; "infinity"; "nan";
    "max_int"; "min_int"; "raise"; "failwith"; "invalid_arg"; "compare";
    "incr"; "decr"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
  ]

let rec strip_params e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, rest) -> strip_params rest
  | Parsetree.Pexp_newtype (_, rest) -> strip_params rest
  | Parsetree.Pexp_constraint (e, _) -> strip_params e
  | _ -> e

(* ---- unit-skeleton conversion ------------------------------------------ *)

(* Arithmetic heads the unit algebra understands, by alias-expanded path. *)
let uop_of_path path =
  let path = match path with "Stdlib" :: rest -> rest | p -> p in
  match path with
  | [ p ] -> (
      match p with
      | "+" | "+." -> Some U_add
      | "-" | "-." -> Some U_sub
      | "*" | "*." -> Some U_mul
      | "/" | "/." -> Some U_div
      | "mod" -> Some U_rem
      | "min" | "max" -> Some U_minmax
      | "=" | "<>" | "==" | "!=" | "<" | ">" | "<=" | ">=" | "compare" ->
          Some U_cmp
      | _ -> None)
  | [ ("Float" | "Int") as m; p ] -> (
      match p with
      | "add" -> Some U_add
      | "sub" -> Some U_sub
      | "mul" -> Some U_mul
      | "div" -> Some U_div
      | "rem" when m = "Float" -> Some U_rem
      | "min" | "max" -> Some U_minmax
      | "equal" | "compare" -> Some U_cmp
      | _ -> None)
  | _ -> None

(* Unary wrappers that preserve the unit of their (first positional)
   argument: numeric casts, negation, rounding, ref cells and array
   reads.  [sqrt]/[log]/[exp] are deliberately absent — they change or
   destroy dimensions, so they collapse to opaque. *)
let unit_transparent_of_path path =
  let path = match path with "Stdlib" :: rest -> rest | p -> p in
  match path with
  | [ p ] ->
      List.mem p
        [
          "~-"; "~-."; "~+"; "~+."; "abs"; "abs_float"; "float_of_int";
          "int_of_float"; "truncate"; "floor"; "ceil"; "succ"; "pred";
          "ref"; "!";
        ]
  | [ "Float"; p ] ->
      List.mem p
        [ "abs"; "neg"; "of_int"; "to_int"; "round"; "trunc"; "succ"; "pred" ]
  | [ "Int"; p ] -> List.mem p [ "abs"; "neg"; "to_float"; "of_float" ]
  | _ -> (
      match List.rev path with
      | ("get" | "unsafe_get") :: "Array" :: _ -> true
      | _ -> false)

(* Applications that produce no unit-bearing value (writes, loops-as-
   functions, raises): children are still checked, the result is free. *)
let unit_stmt_of_path path =
  write_prim_of_path path <> None
  ||
  let path = match path with "Stdlib" :: rest -> rest | p -> p in
  match path with
  | [ p ] -> List.mem p ([ "ignore"; "assert" ] @ raise_prims)
  | _ -> false

let label_name = function
  | Asttypes.Nolabel -> None
  | Asttypes.Labelled s | Asttypes.Optional s -> Some s

(* Every parameter of a curried binding, in order: (label, name). *)
let rec all_params e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (lbl, _, pat, rest) ->
      let name =
        match pat.Parsetree.ppat_desc with
        | Parsetree.Ppat_var { txt; _ } -> txt
        | Parsetree.Ppat_constraint
            ({ Parsetree.ppat_desc = Parsetree.Ppat_var { txt; _ }; _ }, _) ->
            txt
        | _ -> "_"
      in
      (label_name lbl, name) :: all_params rest
  | Parsetree.Pexp_newtype (_, rest) -> all_params rest
  | Parsetree.Pexp_constraint (e, _) -> all_params e
  | _ -> []

let field_name_of_lid lid =
  match List.rev (flatten lid) with f :: _ -> Some f | [] -> None

(* Convert an expression to its unit skeleton.  Total and lossy: shapes
   outside the handled set become U_opaque, so the Units pass stays
   silent about them rather than guessing. *)
let rec uexpr_of aliases e =
  let conv = uexpr_of aliases in
  let line = line_of_expr e in
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant _ -> U_const
  | Parsetree.Pexp_ident { txt; _ } -> (
      match expand aliases (flatten txt) with
      | [] -> U_opaque
      | path -> U_ident path)
  | Parsetree.Pexp_field (_, lid) -> (
      match field_name_of_lid lid.Location.txt with
      | Some f -> U_field f
      | None -> U_opaque)
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_newtype (_, e) -> conv e
  | Parsetree.Pexp_open (_, e) -> conv e
  | Parsetree.Pexp_apply (head, args) -> (
      let path = head_path aliases head in
      let positional =
        List.filter_map
          (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
          args
      in
      if is_cold_apply_path path then U_stmt []
      else
        match (uop_of_path path, positional) with
        | Some op, [ lhs; rhs ] ->
            U_arith
              { uo_op = op; uo_lhs = conv lhs; uo_rhs = conv rhs; uo_line = line }
        | _ ->
            if unit_transparent_of_path path then
              match positional with a :: _ -> conv a | [] -> U_opaque
            else if unit_stmt_of_path path then
              U_stmt (List.map (fun (_, a) -> conv a) args)
            else
              U_apply
                {
                  ua_path = path;
                  ua_args = List.map (fun (l, a) -> (label_name l, conv a)) args;
                  ua_line = line;
                })
  | Parsetree.Pexp_ifthenelse (c, t, Some e) ->
      U_seq (conv c, U_branch [ conv t; conv e ])
  | Parsetree.Pexp_ifthenelse (c, t, None) ->
      U_seq (conv c, U_stmt [ conv t ])
  | Parsetree.Pexp_match (scrut, cases) | Parsetree.Pexp_try (scrut, cases) ->
      U_seq
        ( conv scrut,
          U_branch (List.map (fun c -> conv c.Parsetree.pc_rhs) cases) )
  | Parsetree.Pexp_let (_, vbs, body) ->
      List.fold_right
        (fun vb acc ->
          match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } ->
              U_let
                {
                  ul_name = txt;
                  ul_rhs = conv vb.Parsetree.pvb_expr;
                  ul_body = acc;
                  ul_line = line_of_loc' vb.Parsetree.pvb_loc;
                }
          | _ -> U_seq (U_stmt [ conv vb.Parsetree.pvb_expr ], acc))
        vbs (conv body)
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
      let params = all_params e in
      let body =
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_function cases ->
            U_branch (List.map (fun c -> conv c.Parsetree.pc_rhs) cases)
        | _ -> conv (strip_params e)
      in
      let params = if params = [] then [ (None, "_") ] else params in
      U_fun { uf_params = params; uf_body = body }
  | Parsetree.Pexp_sequence (a, b) -> U_seq (conv a, conv b)
  | Parsetree.Pexp_while (c, b) -> U_stmt [ conv c; conv b ]
  | Parsetree.Pexp_for (_, lo, hi, _, b) -> U_stmt [ conv lo; conv hi; conv b ]
  | Parsetree.Pexp_assert e | Parsetree.Pexp_lazy e -> U_stmt [ conv e ]
  | Parsetree.Pexp_tuple es -> U_block (List.map conv es)
  | Parsetree.Pexp_array es -> U_block (List.map conv es)
  | Parsetree.Pexp_construct (_, Some e) -> U_block [ conv e ]
  | Parsetree.Pexp_construct (_, None) | Parsetree.Pexp_variant (_, None) ->
      U_const
  | Parsetree.Pexp_variant (_, Some e) -> U_block [ conv e ]
  | Parsetree.Pexp_record (fields, base) ->
      let converted =
        List.filter_map
          (fun (lid, e) ->
            match field_name_of_lid lid.Location.txt with
            | Some f -> Some (f, conv e)
            | None -> None)
          fields
      in
      let base_checked =
        match base with Some b -> [ ("_base", conv b) ] | None -> []
      in
      U_record { ur_fields = converted @ base_checked; ur_line = line }
  | Parsetree.Pexp_setfield (_, lid, rhs) -> (
      match field_name_of_lid lid.Location.txt with
      | Some f -> U_setfield { us_field = f; us_rhs = conv rhs; us_line = line }
      | None -> U_stmt [ conv rhs ])
  | _ -> U_opaque

and line_of_loc' (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* ---- per-file extraction ----------------------------------------------- *)

type state = {
  mutable st_opens : string list list;
  mutable st_aliases : (string * string list) list;
  mutable st_toplevel : string list;
  mutable st_topmuts : (string * string * int) list;
  mutable st_fns : fn list;
  mutable st_refs : string list list;
  mutable st_creates : rng_create list;
  mutable st_accums : float_accum list;
  mutable st_hots : int list;
  mutable st_colds : int list;
  mutable st_units : (string * int * bool) list;
  mutable st_fields : (string * string) list;
}

let rec pattern_names p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> [ txt ]
  | Parsetree.Ppat_constraint (p, _) -> pattern_names p
  | Parsetree.Ppat_tuple ps -> List.concat_map pattern_names ps
  | Parsetree.Ppat_alias (p, { txt; _ }) -> txt :: pattern_names p
  | _ -> []

(* The unit annotation attached to an item starting at [line]: the
   comment may sit on the same line, the line above, or two above (so it
   stacks with a [(* mppm: hot *)] marker). *)
let unit_annot_near units line =
  match
    List.find_map (fun (u, l, _) -> if l = line then Some u else None) units
  with
  | Some u -> Some u
  | None ->
      (* Only a standalone annotation reaches down to the next item, so
         a trailing annotation on one record field never bleeds onto the
         field declared on the following line. *)
      List.find_map
        (fun (u, l, trailing) ->
          if (not trailing) && (l = line - 1 || l = line - 2) then Some u
          else None)
        units

let unit_annot_at st line = unit_annot_near st.st_units line

(* Summarize a closure handed to the parallel surface: writes to values
   it does not bind itself, every path it references, and captured
   identifiers it passes as a callee's first (potentially mutated)
   positional argument. *)
let summarize_closure st lambda =
  let bound, _alloc = binding_env st.st_aliases lambda in
  let writes = ref [] in
  let calls = ref [] in
  let escaping = ref [] in
  let record_write line target prim =
    match target_ident target with
    | Some (v, qualified) when qualified || not (List.mem v bound) ->
        let scope =
          if qualified || List.mem v st.st_toplevel then "toplevel"
          else "captured"
        in
        writes := (v, prim, scope, line) :: !writes
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } ->
              let path = expand st.st_aliases (flatten txt) in
              if path <> [] then calls := path :: !calls
          | Parsetree.Pexp_setfield (target, _, _) ->
              record_write (line_of_expr e) target "<-"
          | Parsetree.Pexp_apply (head, args) -> (
              let line = line_of_expr e in
              let path = head_path st.st_aliases head in
              (match write_prim_of_path path with
              | Some (prim, idx) -> (
                  match nth_positional args idx with
                  | Some target -> record_write line target prim
                  | None -> ())
              | None -> ());
              match (path, first_positional_ident args) with
              | _ :: _, Some v when not (List.mem v bound) ->
                  escaping := (path, v, line) :: !escaping
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it lambda;
  {
    ct_line = line_of_expr lambda;
    ct_writes = List.rev !writes;
    ct_calls = List.sort_uniq compare !calls;
    ct_escaping = List.rev !escaping;
  }

(* Whether a lambda captures anything: a reference to a single-ident name
   bound neither inside the lambda nor at the module toplevel forces a
   closure environment at runtime.  Capture-free lambdas are statically
   allocated by the compiler and cost nothing per call, so P1 skips
   them. *)
let lambda_captures st lambda =
  let bound, _ = binding_env st.st_aliases lambda in
  expr_contains
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt = Longident.Lident v; _ } ->
          String.length v > 0
          && (match v.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
          && (not (List.mem v bound))
          && (not (List.mem v st.st_toplevel))
          && not (List.mem v pervasive_idents)
      | _ -> false)
    lambda

(* P1-P4 site collection with hot-region structure.  One walk over the
   body records every perf-relevant shape outside the cold guards
   (branches conditioned on Invariant/Trace/Prof.enabled or an ident
   bound to one, Trace.emit/Invariant applications, and expressions under
   an [(* mppm: cold *)] marker).  Sites and referenced paths inside
   while/for loops land in the loop region too, and the bodies of local
   lambdas referenced from a loop are folded into the loop region by a
   worklist pass — so [let stop () = ... in while not (stop ()) do]
   contributes [stop]'s body to the loop. *)
let perf_scan st body =
  let warm_sites = ref [] and loop_sites = ref [] in
  let warm_calls = ref [] and loop_calls = ref [] in
  let has_loop = ref false in
  let loop_idents = ref [] in
  let local_lambdas = ref [] in
  let in_loop = ref false in
  let loop_only = ref false in
  (* Idents let-bound to a cold-guard read:
     [let observing = Trace.enabled obs]. *)
  let cold_idents = ref [] in
  let cold_rhs e =
    expr_contains
      (fun e ->
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident { txt; _ } ->
            is_cold_guard_path (expand st.st_aliases (flatten txt))
        | _ -> false)
      e
  in
  let collect_cold =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
                  | Parsetree.Ppat_var { txt = v; _ }
                    when cold_rhs vb.Parsetree.pvb_expr ->
                      cold_idents := v :: !cold_idents
                  | _ -> ())
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  collect_cold.expr collect_cold body;
  let is_cold_cond c =
    expr_contains
      (fun e ->
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident { txt; _ } -> (
            match expand st.st_aliases (flatten txt) with
            | [ v ] -> List.mem v !cold_idents
            | path -> is_cold_guard_path path)
        | _ -> false)
      c
  in
  let marked_cold e =
    let line = line_of_expr e in
    List.mem line st.st_colds || List.mem (line - 1) st.st_colds
  in
  let site rule what line =
    let s = { ps_rule = rule; ps_what = what; ps_line = line } in
    if not !loop_only then warm_sites := s :: !warm_sites;
    if !in_loop || !loop_only then loop_sites := s :: !loop_sites
  in
  let record_call path =
    if path <> [] then begin
      if not !loop_only then warm_calls := path :: !warm_calls;
      if !in_loop || !loop_only then begin
        loop_calls := path :: !loop_calls;
        match path with
        | [ v ] -> loop_idents := v :: !loop_idents
        | _ -> ()
      end
    end
  in
  let apply_sites line path args =
    match hashtbl_member_of_path path with
    | Some m -> site "P3" m line
    | None -> (
        match perf_alloc_of_path path with
        | Some p -> site "P1" ("allocating call " ^ p) line
        | None -> (
            match poly_compare_of_path path with
            | Some p -> site "P2" ("polymorphic " ^ p) line
            | None ->
                if path = [ ":=" ] || path = [ "Stdlib"; ":=" ] then
                  match nth_positional args 1 with
                  | Some rhs when expr_contains is_float_op rhs ->
                      site "P4" "boxed-float ref accumulation" line
                  | _ -> ()))
  in
  let iter = ref Ast_iterator.default_iterator in
  let handle it e =
    if not (marked_cold e) then
      let line = line_of_expr e in
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_while (cond, loop_body) ->
          if not !loop_only then has_loop := true;
          let saved = !in_loop in
          in_loop := true;
          it.Ast_iterator.expr it cond;
          it.Ast_iterator.expr it loop_body;
          in_loop := saved
      | Parsetree.Pexp_for (_, lo, hi, _, loop_body) ->
          if not !loop_only then has_loop := true;
          it.Ast_iterator.expr it lo;
          it.Ast_iterator.expr it hi;
          let saved = !in_loop in
          in_loop := true;
          it.Ast_iterator.expr it loop_body;
          in_loop := saved
      | Parsetree.Pexp_ifthenelse (cond, _, else_opt) when is_cold_cond cond
        -> (
          match else_opt with
          | Some else_ -> it.Ast_iterator.expr it else_
          | None -> ())
      | Parsetree.Pexp_apply (head, args) ->
          let path = head_path st.st_aliases head in
          if not (is_cold_apply_path path) then begin
            record_call path;
            apply_sites line path args;
            (match head.Parsetree.pexp_desc with
            | Parsetree.Pexp_ident _ -> ()
            | _ -> it.Ast_iterator.expr it head);
            List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
          end
      | Parsetree.Pexp_ident { txt; _ } -> (
          let path = expand st.st_aliases (flatten txt) in
          record_call path;
          match poly_compare_of_path path with
          | Some p -> site "P2" ("polymorphic " ^ p ^ " passed as a value") line
          | None -> ())
      | Parsetree.Pexp_fun _ ->
          (* A syntactically curried chain compiles to one multi-param
             closure, so captures are judged on the whole chain and the
             intermediate fun nodes are skipped — an outer param is not a
             capture of the inner lambda. *)
          if lambda_captures st e then
            site "P1" "closure allocation (captures its environment)" line;
          it.Ast_iterator.expr it (strip_params e)
      | Parsetree.Pexp_function _ ->
          if lambda_captures st e then
            site "P1" "closure allocation (captures its environment)" line;
          Ast_iterator.default_iterator.expr it e
      | Parsetree.Pexp_match
          ({ pexp_desc = Parsetree.Pexp_tuple comps; _ }, cases) ->
          (* [match (a, b) with ...] deconstructs the pair in place — the
             compiler never builds the tuple — so only the components and
             the cases are scanned, not the scrutinee tuple itself. *)
          List.iter (it.Ast_iterator.expr it) comps;
          List.iter (it.Ast_iterator.case it) cases
      | Parsetree.Pexp_tuple _ ->
          site "P1" "tuple allocation" line;
          Ast_iterator.default_iterator.expr it e
      | Parsetree.Pexp_record _ ->
          site "P1" "record allocation" line;
          Ast_iterator.default_iterator.expr it e
      | Parsetree.Pexp_array els ->
          if els <> [] then site "P1" "array literal" line;
          Ast_iterator.default_iterator.expr it e
      | Parsetree.Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) ->
          site "P1" "list cons" line;
          Ast_iterator.default_iterator.expr it e
      | Parsetree.Pexp_let (_, vbs, _) ->
          List.iter
            (fun vb ->
              match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
              | Parsetree.Ppat_var { txt = v; _ }
                when is_fun vb.Parsetree.pvb_expr ->
                  if not (List.mem_assoc v !local_lambdas) then
                    local_lambdas := (v, vb.Parsetree.pvb_expr) :: !local_lambdas
              | _ -> ())
            vbs;
          Ast_iterator.default_iterator.expr it e
      | _ -> Ast_iterator.default_iterator.expr it e
  in
  iter := { Ast_iterator.default_iterator with expr = handle };
  let iter = !iter in
  iter.Ast_iterator.expr iter (strip_params body);
  (* Fold loop-referenced local lambdas into the loop region. *)
  let visited = ref [] in
  let rec expand_loop_lambdas () =
    let pending =
      List.filter
        (fun (name, _) ->
          List.mem name !loop_idents && not (List.mem name !visited))
        !local_lambdas
    in
    if pending <> [] then begin
      List.iter
        (fun (name, lam) ->
          visited := name :: !visited;
          loop_only := true;
          in_loop := true;
          iter.Ast_iterator.expr iter (strip_params lam);
          loop_only := false;
          in_loop := false)
        pending;
      expand_loop_lambdas ()
    end
  in
  expand_loop_lambdas ();
  ( List.sort_uniq compare !warm_sites,
    List.sort_uniq compare !loop_sites,
    List.sort_uniq compare !warm_calls,
    List.sort_uniq compare !loop_calls,
    !has_loop )

(* A let-bound local function that forwards one of its own positional
   parameters as the task of a parallel entry is a sink: calls to it are
   pool calls, with the task at the forwarded parameter's index. *)
let sink_index_of st lambda =
  let params = positional_params lambda in
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (head, args) -> (
              match pool_entry_of_path (head_path st.st_aliases head) with
              | Some entry -> (
                  match task_arg_of_entry entry args with
                  | Some
                      {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_ident { txt = Longident.Lident v; _ };
                        _;
                      } -> (
                      match
                        List.find_index (fun p -> p = v) params
                      with
                      | Some i when !found = None -> found := Some i
                      | _ -> ())
                  | _ -> ())
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it lambda;
  !found

(* Scan one top-level binding body, accumulating the fn summary. *)
let scan_body st ~fn_name ~fn_line body =
  let calls = ref [] in
  let rng_fields = ref [] in
  let prim_io = ref [] in
  let prim_conc = ref [] in
  let has_rng = ref false in
  let mutations = ref [] in
  let pool_calls = ref [] in
  let top_arg_calls = ref [] in
  let raises = ref false in
  let fn_bound, fn_alloc = binding_env st.st_aliases body in
  let first_param = first_positional_param body in
  (* Let-bound local lambdas, so a task referenced by name is analyzed as
     the closure it is, and local pool-forwarding wrappers act as
     entries. *)
  let local_lambdas = ref [] in
  let local_sinks = ref [] in
  (* Function-wide map of [let v = expr.field] aliases, so a draw through a
     local binding still resolves to the record field. *)
  let field_aliases = ref [] in
  let record_path line path =
    if path <> [] then begin
      calls := path :: !calls;
      st.st_refs <- path :: st.st_refs;
      (match io_prim_of_path path with
      | Some p -> prim_io := (p, line) :: !prim_io
      | None -> ());
      (match conc_prim_of_path path with
      | Some p -> prim_conc := (p, line) :: !prim_conc
      | None -> ());
      (match List.rev path with
      | last :: _ when List.mem last raise_prims && List.length path <= 2 ->
          raises := true
      | _ -> ());
      match rng_member_of_path path with
      | Some _ -> has_rng := true
      | None -> ()
    end
  in
  let record_mutation line target prim =
    match target_ident target with
    | None -> ()
    | Some (v, qualified) ->
        let scope =
          if qualified then Mut_toplevel
          else if List.mem v fn_alloc then Mut_local
          else if List.mem v fn_bound then Mut_arg
          else Mut_toplevel
        in
        mutations :=
          { mut_target = v; mut_prim = prim; mut_scope = scope; mut_line = line }
          :: !mutations
  in
  let rec tasks_of_expr e =
    if is_fun e then [ Task_closure (summarize_closure st e) ]
    else
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_constraint (e, _) -> tasks_of_expr e
      | Parsetree.Pexp_ident { txt; _ } -> (
          let path = expand st.st_aliases (flatten txt) in
          match path with
          | [] -> []
          | [ name ] when List.mem_assoc name !local_lambdas ->
              [ Task_closure (summarize_closure st (List.assoc name !local_lambdas)) ]
          | _ -> [ Task_path (path, None) ])
      | Parsetree.Pexp_apply (head, hargs) -> (
          match head_path st.st_aliases head with
          | [] -> []
          | path -> [ Task_path (path, first_positional_ident hargs) ])
      | _ -> []
  in
  let rng_field_of_arg e =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_field (_, { txt; _ }) -> (
        match List.rev (flatten txt) with f :: _ -> Some f | [] -> None)
    | Parsetree.Pexp_ident { txt = Longident.Lident v; _ } ->
        List.assoc_opt v !field_aliases
    | _ -> None
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } ->
              record_path (line_of_expr e) (expand st.st_aliases (flatten txt))
          | Parsetree.Pexp_field (_, { txt; _ }) ->
              (* Qualified record-field access ([cfg.Hierarchy.llc]) counts
                 as a reference so S4 does not flag a val sharing a field's
                 name. *)
              st.st_refs <- expand st.st_aliases (flatten txt) :: st.st_refs
          | Parsetree.Pexp_open (od, _) -> (
              match od.Parsetree.popen_expr.Parsetree.pmod_desc with
              | Parsetree.Pmod_ident { txt; _ } ->
                  st.st_opens <- flatten txt :: st.st_opens
              | _ -> ())
          | Parsetree.Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  match
                    ( vb.Parsetree.pvb_pat.Parsetree.ppat_desc,
                      vb.Parsetree.pvb_expr.Parsetree.pexp_desc )
                  with
                  | ( Parsetree.Ppat_var { txt = v; _ },
                      Parsetree.Pexp_field (_, { txt; _ }) ) -> (
                      match List.rev (flatten txt) with
                      | f :: _ -> field_aliases := (v, f) :: !field_aliases
                      | [] -> ())
                  | Parsetree.Ppat_var { txt = v; _ }, _
                    when is_fun vb.Parsetree.pvb_expr ->
                      local_lambdas :=
                        (v, vb.Parsetree.pvb_expr) :: !local_lambdas;
                      (match sink_index_of st vb.Parsetree.pvb_expr with
                      | Some i -> local_sinks := (v, i) :: !local_sinks
                      | None -> ())
                  | _ -> ())
                vbs
          | Parsetree.Pexp_setfield (target, _, _) ->
              record_mutation (line_of_expr e) target "<-"
          | Parsetree.Pexp_apply (head, args) -> (
              let line = line_of_expr e in
              let path = head_path st.st_aliases head in
              (* Direct writes through stdlib mutation primitives *)
              (match write_prim_of_path path with
              | Some (prim, idx) -> (
                  match nth_positional args idx with
                  | Some target -> record_mutation line target prim
                  | None -> ())
              | None -> ());
              (* A module-level value passed as a callee's first positional
                 argument: pairs with the callee's mut_arg0 to detect
                 writes to toplevel state made on its behalf. *)
              (match first_positional_ident args with
              | Some v when List.mem v st.st_toplevel && path <> [] ->
                  top_arg_calls := (path, v, line) :: !top_arg_calls
              | _ -> ());
              (* Parallel entries and local forwarding sinks (S6) *)
              (let entry =
                 match pool_entry_of_path path with
                 | Some e -> Some (e, None)
                 | None -> (
                     match path with
                     | [ name ] -> (
                         match List.assoc_opt name !local_sinks with
                         | Some i -> Some ("Pool.map via " ^ name, Some i)
                         | None -> None)
                     | _ -> None)
               in
               match entry with
               | Some (entry_name, sink_idx) ->
                   let task_expr =
                     match sink_idx with
                     | Some i -> nth_positional args i
                     | None -> task_arg_of_entry entry_name args
                   in
                   let pc_tasks =
                     match task_expr with
                     | Some e -> tasks_of_expr e
                     | None -> []
                   in
                   pool_calls :=
                     { pc_entry = entry_name; pc_line = line; pc_tasks }
                     :: !pool_calls
               | None -> ());
              (* Rng call classification *)
              (match rng_member_of_path path with
              | Some "create" ->
                  let constant =
                    match
                      List.find_opt
                        (fun (lbl, _) -> lbl = Asttypes.Labelled "seed")
                        args
                    with
                    | Some (_, seed_expr) -> not (mentions_ident seed_expr)
                    | None -> false
                  in
                  st.st_creates <-
                    { rc_line = line; rc_constant_seed = constant }
                    :: st.st_creates
              | Some _ -> (
                  (* A draw: the generator state is the first positional
                     argument of every Mppm_util.Rng function. *)
                  match
                    List.find_opt
                      (fun (lbl, _) -> lbl = Asttypes.Nolabel)
                      args
                  with
                  | Some (_, state_arg) -> (
                      match rng_field_of_arg state_arg with
                      | Some f -> rng_fields := f :: !rng_fields
                      | None -> ())
                  | None -> ())
              | None -> ());
              (* S3: float accumulation over unordered Hashtbl iteration *)
              let closure_has_float_op () =
                List.exists
                  (fun (_, a) ->
                    (is_fun a && expr_contains is_float_op a) || is_float_op a)
                  args
              in
              match List.rev path with
              | m :: "Hashtbl" :: _ when m = "fold" || m = "iter" ->
                  if closure_has_float_op () then
                    st.st_accums <-
                      { fa_line = line; fa_context = "Hashtbl." ^ m }
                      :: st.st_accums
              | m :: _
                when (m = "fold_left" || m = "fold_right" || m = "fold")
                     && List.exists
                          (fun (_, a) ->
                            applies_hashtbl_to_seq st.st_aliases a)
                          args
                     && closure_has_float_op () ->
                  st.st_accums <-
                    { fa_line = line; fa_context = "fold over Hashtbl.to_seq" }
                    :: st.st_accums
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  let mutations = List.rev !mutations in
  (* Perf facts only make sense for function bindings: a non-fn toplevel
     binding runs once at module init, so its allocations are not
     per-call costs and must not taint the hotness propagation. *)
  let warm_sites, loop_sites, warm_calls, loop_calls, fn_has_loop =
    if is_fun body then perf_scan st body else ([], [], [], [], false)
  in
  {
    fn_name;
    fn_line;
    calls = List.sort_uniq compare !calls;
    rng_fields = List.sort_uniq compare !rng_fields;
    prim_io = List.rev !prim_io;
    prim_conc = List.rev !prim_conc;
    has_rng = !has_rng;
    mutations;
    mut_arg0 =
      (match first_param with
      | Some p ->
          List.exists
            (fun m -> m.mut_scope = Mut_arg && m.mut_target = p)
            mutations
      | None -> false);
    pool_calls = List.rev !pool_calls;
    top_arg_calls = List.rev !top_arg_calls;
    raises = !raises;
    fn_hot =
      List.mem fn_line st.st_hots || List.mem (fn_line - 1) st.st_hots;
    fn_has_loop;
    warm_sites;
    loop_sites;
    warm_calls;
    loop_calls;
    fn_uparams = all_params body;
    fn_ubody = uexpr_of st.st_aliases (strip_params body);
    fn_unit_annot = unit_annot_at st fn_line;
  }

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Record fields declared by one type declaration: (name, line) pairs,
   so unit annotations can attach by line. *)
let record_fields_of_decls decls =
  List.concat_map
    (fun d ->
      match d.Parsetree.ptype_kind with
      | Parsetree.Ptype_record labels ->
          List.map
            (fun ld ->
              ( ld.Parsetree.pld_name.Location.txt,
                line_of_loc ld.Parsetree.pld_loc ))
            labels
      | _ -> [])
    decls

(* First pass: module-level opens, aliases, value names and mutable
   allocations, recursing into inline submodule structures. *)
let rec collect_scaffolding st items =
  List.iter
    (fun item ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_type (_, decls) ->
          List.iter
            (fun (fname, fline) ->
              match unit_annot_at st fline with
              | Some u -> st.st_fields <- (fname, u) :: st.st_fields
              | None -> ())
            (record_fields_of_decls decls)
      | Parsetree.Pstr_open od -> (
          match od.Parsetree.popen_expr.Parsetree.pmod_desc with
          | Parsetree.Pmod_ident { txt; _ } ->
              st.st_opens <- flatten txt :: st.st_opens
          | _ -> ())
      | Parsetree.Pstr_module mb -> (
          let rec module_body me =
            match me.Parsetree.pmod_desc with
            | Parsetree.Pmod_constraint (me, _) -> module_body me
            | d -> d
          in
          match (mb.Parsetree.pmb_name.Location.txt, module_body mb.Parsetree.pmb_expr) with
          | Some name, Parsetree.Pmod_ident { txt; _ } ->
              st.st_aliases <- (name, flatten txt) :: st.st_aliases
          | _, Parsetree.Pmod_structure items -> collect_scaffolding st items
          | _ -> ())
      | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              st.st_toplevel <-
                pattern_names vb.Parsetree.pvb_pat @ st.st_toplevel;
              let rec alloc_kind rhs =
                match rhs.Parsetree.pexp_desc with
                | Parsetree.Pexp_constraint (e, _) -> alloc_kind e
                | Parsetree.Pexp_apply (head, _) ->
                    toplevel_mut_kind_of_path (head_path st.st_aliases head)
                | _ -> None
              in
              match
                (pattern_names vb.Parsetree.pvb_pat, alloc_kind vb.Parsetree.pvb_expr)
              with
              | name :: _, Some kind ->
                  st.st_topmuts <-
                    (name, kind, line_of_loc vb.Parsetree.pvb_loc)
                    :: st.st_topmuts
              | _ -> ())
            vbs
      | _ -> ())
    items

(* Second pass: one fn summary per top-level binding. *)
let rec collect_fns st items =
  List.iter
    (fun item ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let fn_name =
                match pattern_names vb.Parsetree.pvb_pat with
                | name :: _ -> name
                | [] -> Printf.sprintf "(init:%d)" (line_of_loc vb.Parsetree.pvb_loc)
              in
              st.st_fns <-
                scan_body st ~fn_name
                  ~fn_line:(line_of_loc vb.Parsetree.pvb_loc)
                  vb.Parsetree.pvb_expr
                :: st.st_fns)
            vbs
      | Parsetree.Pstr_eval (e, _) ->
          st.st_fns <-
            scan_body st
              ~fn_name:(Printf.sprintf "(init:%d)" (line_of_expr e))
              ~fn_line:(line_of_expr e) e
            :: st.st_fns
      | Parsetree.Pstr_module mb -> (
          let rec module_body me =
            match me.Parsetree.pmod_desc with
            | Parsetree.Pmod_constraint (me, _) -> module_body me
            | d -> d
          in
          match module_body mb.Parsetree.pmb_expr with
          | Parsetree.Pmod_structure items -> collect_fns st items
          | _ -> ())
      | _ -> ())
    items

let mli_vals_of_signature signature =
  List.filter_map
    (fun item ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd ->
          Some
            ( vd.Parsetree.pval_name.Location.txt,
              line_of_loc vd.Parsetree.pval_loc )
      | _ -> None)
    signature

let mli_fields_of_signature signature =
  List.concat_map
    (fun item ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_type (_, decls) -> record_fields_of_decls decls
      | _ -> [])
    signature

let extract ~rel content =
  let rel = Mppm_lint.Engine.normalize_rel rel in
  let is_mli = Filename.check_suffix rel ".mli" in
  let lx = Mppm_lint.Lexer.lex content in
  let base =
    {
      rel;
      unit_name =
        String.capitalize_ascii
          (Filename.remove_extension (Filename.basename rel));
      dir = Filename.dirname rel;
      is_mli;
      parse_failed = false;
      opens = [];
      aliases = [];
      fns = [];
      refs = [];
      mli_vals = [];
      val_units = [];
      field_units = [];
      rng_creates = [];
      float_accums = [];
      toplevel_muts = [];
      allows = lx.Mppm_lint.Lexer.allows;
      allow_files = lx.Mppm_lint.Lexer.allow_files;
    }
  in
  if is_mli then
    match Astparse.interface ~filename:rel content with
    | Some signature ->
        let units = lx.Mppm_lint.Lexer.units in
        let mli_vals = mli_vals_of_signature signature in
        let attach items =
          List.filter_map
            (fun (name, line) ->
              match unit_annot_near units line with
              | Some u -> Some (name, u)
              | None -> None)
            items
        in
        {
          base with
          mli_vals;
          val_units = attach mli_vals;
          field_units = attach (mli_fields_of_signature signature);
        }
    | None -> { base with parse_failed = true }
  else
    match Astparse.implementation ~filename:rel content with
    | Some structure ->
        let st =
          {
            st_opens = [];
            st_aliases = [];
            st_toplevel = [];
            st_topmuts = [];
            st_fns = [];
            st_refs = [];
            st_creates = [];
            st_accums = [];
            st_hots = lx.Mppm_lint.Lexer.hots;
            st_colds = lx.Mppm_lint.Lexer.colds;
            st_units = lx.Mppm_lint.Lexer.units;
            st_fields = [];
          }
        in
        collect_scaffolding st structure;
        collect_fns st structure;
        {
          base with
          opens = List.rev st.st_opens;
          aliases = st.st_aliases;
          fns = List.rev st.st_fns;
          refs = List.sort_uniq compare st.st_refs;
          field_units = List.rev st.st_fields;
          rng_creates = List.rev st.st_creates;
          float_accums = List.rev st.st_accums;
          toplevel_muts = List.rev st.st_topmuts;
        }
    | None -> { base with parse_failed = true }
