(* Per-file facts extracted from the compiler-libs parse tree.

   Facts are plain serializable data (no AST nodes), so they can be cached
   by source fingerprint and re-fed to the cross-module passes without
   re-parsing.  Extraction is syntactic — no typing — so every judgment
   here is a heuristic; the rules built on top are tuned to be zero-noise
   on this tree (asserted by the test suite). *)

type fn = {
  fn_name : string;
  fn_line : int;
  calls : string list list;
      (* every value path referenced inside the body, alias-expanded *)
  rng_fields : string list;
      (* record fields passed as the state argument of an Rng draw *)
  prim_io : (string * int) list;  (* (primitive, line) of direct file I/O *)
  prim_conc : (string * int) list;
      (* (primitive, line) of direct Domain/Mutex/Condition/Atomic use *)
  has_rng : bool;
  mutates_global : bool;
  raises : bool;
}

type rng_create = { rc_line : int; rc_constant_seed : bool }
type float_accum = { fa_line : int; fa_context : string }

type t = {
  rel : string;
  unit_name : string;  (* capitalized stem, e.g. "Generator" *)
  dir : string;  (* e.g. "lib/trace" *)
  is_mli : bool;
  parse_failed : bool;
  opens : string list list;
  aliases : (string * string list) list;  (* module X = A.B *)
  fns : fn list;
  refs : string list list;  (* every value path referenced in the file *)
  mli_vals : (string * int) list;  (* .mli val items: (name, line) *)
  rng_creates : rng_create list;
  float_accums : float_accum list;
  allows : (string * int) list;
  allow_files : string list;
}

let unit_key_of_rel rel = Filename.remove_extension rel

(* ---- path helpers ------------------------------------------------------ *)

let flatten lid = try Longident.flatten lid with _ -> []

let expand aliases path =
  match path with
  | a :: rest when List.mem_assoc a aliases -> List.assoc a aliases @ rest
  | _ -> path

let channel_prims =
  [
    "open_in"; "open_in_bin"; "open_in_gen"; "open_out"; "open_out_bin";
    "open_out_gen"; "close_in"; "close_in_noerr"; "close_out";
    "close_out_noerr"; "input_line"; "input_char"; "input_byte";
    "input_binary_int"; "input_value"; "really_input"; "really_input_string";
    "output_string"; "output_char"; "output_byte"; "output_binary_int";
    "output_value"; "output_bytes"; "output_substring"; "seek_in"; "seek_out";
    "pos_in"; "pos_out"; "in_channel_length"; "out_channel_length";
    "set_binary_mode_in"; "set_binary_mode_out";
  ]

let sys_fs_prims =
  [
    "remove"; "rename"; "readdir"; "mkdir"; "rmdir"; "command"; "chdir";
    "getcwd"; "file_exists"; "is_directory";
  ]

let io_prim_of_path = function
  | [ p ] when List.mem p channel_prims -> Some p
  | [ "Stdlib"; p ] when List.mem p channel_prims -> Some p
  | [ "Sys"; p ] when List.mem p sys_fs_prims -> Some ("Sys." ^ p)
  | "Unix" :: p :: _ -> Some ("Unix." ^ p)
  | _ -> None

let conc_modules = [ "Domain"; "Mutex"; "Condition"; "Atomic" ]

(* A use of the OCaml 5 concurrency surface (S5).  Aliases are expanded
   before we get here, and the stdlib qualifies these as [Stdlib.Mutex]
   etc., so both spellings resolve. *)
let conc_prim_of_path path =
  let path = match path with "Stdlib" :: rest -> rest | p -> p in
  match path with
  | m :: member :: _ when List.mem m conc_modules -> Some (m ^ "." ^ member)
  | _ -> None

(* A path that ends [....Rng.member] is a use of the deterministic RNG:
   the only module named Rng anywhere in the tree is Mppm_util.Rng, and
   local aliases ([module Rng = Mppm_util.Rng]) keep the name. *)
let rng_member_of_path path =
  match List.rev path with
  | member :: "Rng" :: _ -> Some member
  | _ -> None

let raise_prims = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let float_ops = [ "+."; "-."; "*."; "/." ]

(* ---- expression scanning ---------------------------------------------- *)

let line_of_expr e = e.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_lnum

let expr_contains pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if pred e then found := true;
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let is_float_op e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt = Longident.Lident op; _ } ->
      List.mem op float_ops
  | Parsetree.Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ "Float"; ("add" | "sub" | "mul" | "div") ] -> true
      | _ -> false)
  | _ -> false

let mentions_ident e =
  expr_contains
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident _ -> true
      | _ -> false)
    e

let is_fun e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
  | _ -> false

let head_path aliases e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> expand aliases (flatten txt)
  | _ -> []

let applies_hashtbl_to_seq aliases e =
  expr_contains
    (fun e ->
      let path =
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (head, _) -> head_path aliases head
        | Parsetree.Pexp_ident { txt; _ } -> expand aliases (flatten txt)
        | _ -> []
      in
      match List.rev path with
      | m :: "Hashtbl" :: _ ->
          String.length m >= 6 && String.sub m 0 6 = "to_seq"
      | _ -> false)
    e

(* ---- per-file extraction ----------------------------------------------- *)

type state = {
  mutable st_opens : string list list;
  mutable st_aliases : (string * string list) list;
  mutable st_toplevel : string list;
  mutable st_fns : fn list;
  mutable st_refs : string list list;
  mutable st_creates : rng_create list;
  mutable st_accums : float_accum list;
}

let rec pattern_names p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> [ txt ]
  | Parsetree.Ppat_constraint (p, _) -> pattern_names p
  | Parsetree.Ppat_tuple ps -> List.concat_map pattern_names ps
  | Parsetree.Ppat_alias (p, { txt; _ }) -> txt :: pattern_names p
  | _ -> []

(* Scan one top-level binding body, accumulating the fn summary. *)
let scan_body st ~fn_name ~fn_line body =
  let calls = ref [] in
  let rng_fields = ref [] in
  let prim_io = ref [] in
  let prim_conc = ref [] in
  let has_rng = ref false in
  let mutates_global = ref false in
  let raises = ref false in
  (* Function-wide map of [let v = expr.field] aliases, so a draw through a
     local binding still resolves to the record field. *)
  let field_aliases = ref [] in
  let record_path line path =
    if path <> [] then begin
      calls := path :: !calls;
      st.st_refs <- path :: st.st_refs;
      (match io_prim_of_path path with
      | Some p -> prim_io := (p, line) :: !prim_io
      | None -> ());
      (match conc_prim_of_path path with
      | Some p -> prim_conc := (p, line) :: !prim_conc
      | None -> ());
      (match List.rev path with
      | last :: _ when List.mem last raise_prims && List.length path <= 2 ->
          raises := true
      | _ -> ());
      match rng_member_of_path path with
      | Some _ -> has_rng := true
      | None -> ()
    end
  in
  let rng_field_of_arg e =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_field (_, { txt; _ }) -> (
        match List.rev (flatten txt) with f :: _ -> Some f | [] -> None)
    | Parsetree.Pexp_ident { txt = Longident.Lident v; _ } ->
        List.assoc_opt v !field_aliases
    | _ -> None
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } ->
              record_path (line_of_expr e) (expand st.st_aliases (flatten txt))
          | Parsetree.Pexp_field (_, { txt; _ }) ->
              (* Qualified record-field access ([cfg.Hierarchy.llc]) counts
                 as a reference so S4 does not flag a val sharing a field's
                 name. *)
              st.st_refs <- expand st.st_aliases (flatten txt) :: st.st_refs
          | Parsetree.Pexp_open (od, _) -> (
              match od.Parsetree.popen_expr.Parsetree.pmod_desc with
              | Parsetree.Pmod_ident { txt; _ } ->
                  st.st_opens <- flatten txt :: st.st_opens
              | _ -> ())
          | Parsetree.Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  match
                    ( vb.Parsetree.pvb_pat.Parsetree.ppat_desc,
                      vb.Parsetree.pvb_expr.Parsetree.pexp_desc )
                  with
                  | ( Parsetree.Ppat_var { txt = v; _ },
                      Parsetree.Pexp_field (_, { txt; _ }) ) -> (
                      match List.rev (flatten txt) with
                      | f :: _ -> field_aliases := (v, f) :: !field_aliases
                      | [] -> ())
                  | _ -> ())
                vbs
          | Parsetree.Pexp_setfield (target, _, _) -> (
              match target.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident { txt = Longident.Lident v; _ }
                when List.mem v st.st_toplevel ->
                  mutates_global := true
              | _ -> ())
          | Parsetree.Pexp_apply (head, args) -> (
              let line = line_of_expr e in
              let path = head_path st.st_aliases head in
              (* [x := e] on a module-level ref *)
              (match (path, args) with
              | [ ":=" ], (Asttypes.Nolabel, lhs) :: _ -> (
                  match lhs.Parsetree.pexp_desc with
                  | Parsetree.Pexp_ident { txt = Longident.Lident v; _ }
                    when List.mem v st.st_toplevel ->
                      mutates_global := true
                  | _ -> ())
              | _ -> ());
              (* Rng call classification *)
              (match rng_member_of_path path with
              | Some "create" ->
                  let constant =
                    match
                      List.find_opt
                        (fun (lbl, _) -> lbl = Asttypes.Labelled "seed")
                        args
                    with
                    | Some (_, seed_expr) -> not (mentions_ident seed_expr)
                    | None -> false
                  in
                  st.st_creates <-
                    { rc_line = line; rc_constant_seed = constant }
                    :: st.st_creates
              | Some _ -> (
                  (* A draw: the generator state is the first positional
                     argument of every Mppm_util.Rng function. *)
                  match
                    List.find_opt
                      (fun (lbl, _) -> lbl = Asttypes.Nolabel)
                      args
                  with
                  | Some (_, state_arg) -> (
                      match rng_field_of_arg state_arg with
                      | Some f -> rng_fields := f :: !rng_fields
                      | None -> ())
                  | None -> ())
              | None -> ());
              (* S3: float accumulation over unordered Hashtbl iteration *)
              let closure_has_float_op () =
                List.exists
                  (fun (_, a) ->
                    (is_fun a && expr_contains is_float_op a) || is_float_op a)
                  args
              in
              match List.rev path with
              | m :: "Hashtbl" :: _ when m = "fold" || m = "iter" ->
                  if closure_has_float_op () then
                    st.st_accums <-
                      { fa_line = line; fa_context = "Hashtbl." ^ m }
                      :: st.st_accums
              | m :: _
                when (m = "fold_left" || m = "fold_right" || m = "fold")
                     && List.exists
                          (fun (_, a) ->
                            applies_hashtbl_to_seq st.st_aliases a)
                          args
                     && closure_has_float_op () ->
                  st.st_accums <-
                    { fa_line = line; fa_context = "fold over Hashtbl.to_seq" }
                    :: st.st_accums
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  {
    fn_name;
    fn_line;
    calls = List.sort_uniq compare !calls;
    rng_fields = List.sort_uniq compare !rng_fields;
    prim_io = List.rev !prim_io;
    prim_conc = List.rev !prim_conc;
    has_rng = !has_rng;
    mutates_global = !mutates_global;
    raises = !raises;
  }

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* First pass: module-level opens, aliases and value names, recursing into
   inline submodule structures. *)
let rec collect_scaffolding st items =
  List.iter
    (fun item ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_open od -> (
          match od.Parsetree.popen_expr.Parsetree.pmod_desc with
          | Parsetree.Pmod_ident { txt; _ } ->
              st.st_opens <- flatten txt :: st.st_opens
          | _ -> ())
      | Parsetree.Pstr_module mb -> (
          let rec module_body me =
            match me.Parsetree.pmod_desc with
            | Parsetree.Pmod_constraint (me, _) -> module_body me
            | d -> d
          in
          match (mb.Parsetree.pmb_name.Location.txt, module_body mb.Parsetree.pmb_expr) with
          | Some name, Parsetree.Pmod_ident { txt; _ } ->
              st.st_aliases <- (name, flatten txt) :: st.st_aliases
          | _, Parsetree.Pmod_structure items -> collect_scaffolding st items
          | _ -> ())
      | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              st.st_toplevel <-
                pattern_names vb.Parsetree.pvb_pat @ st.st_toplevel)
            vbs
      | _ -> ())
    items

(* Second pass: one fn summary per top-level binding. *)
let rec collect_fns st items =
  List.iter
    (fun item ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let fn_name =
                match pattern_names vb.Parsetree.pvb_pat with
                | name :: _ -> name
                | [] -> Printf.sprintf "(init:%d)" (line_of_loc vb.Parsetree.pvb_loc)
              in
              st.st_fns <-
                scan_body st ~fn_name
                  ~fn_line:(line_of_loc vb.Parsetree.pvb_loc)
                  vb.Parsetree.pvb_expr
                :: st.st_fns)
            vbs
      | Parsetree.Pstr_eval (e, _) ->
          st.st_fns <-
            scan_body st
              ~fn_name:(Printf.sprintf "(init:%d)" (line_of_expr e))
              ~fn_line:(line_of_expr e) e
            :: st.st_fns
      | Parsetree.Pstr_module mb -> (
          let rec module_body me =
            match me.Parsetree.pmod_desc with
            | Parsetree.Pmod_constraint (me, _) -> module_body me
            | d -> d
          in
          match module_body mb.Parsetree.pmb_expr with
          | Parsetree.Pmod_structure items -> collect_fns st items
          | _ -> ())
      | _ -> ())
    items

let mli_vals_of_signature signature =
  List.filter_map
    (fun item ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd ->
          Some
            ( vd.Parsetree.pval_name.Location.txt,
              line_of_loc vd.Parsetree.pval_loc )
      | _ -> None)
    signature

let extract ~rel content =
  let rel = Mppm_lint.Engine.normalize_rel rel in
  let is_mli = Filename.check_suffix rel ".mli" in
  let lx = Mppm_lint.Lexer.lex content in
  let base =
    {
      rel;
      unit_name =
        String.capitalize_ascii
          (Filename.remove_extension (Filename.basename rel));
      dir = Filename.dirname rel;
      is_mli;
      parse_failed = false;
      opens = [];
      aliases = [];
      fns = [];
      refs = [];
      mli_vals = [];
      rng_creates = [];
      float_accums = [];
      allows = lx.Mppm_lint.Lexer.allows;
      allow_files = lx.Mppm_lint.Lexer.allow_files;
    }
  in
  if is_mli then
    match Astparse.interface ~filename:rel content with
    | Some signature -> { base with mli_vals = mli_vals_of_signature signature }
    | None -> { base with parse_failed = true }
  else
    match Astparse.implementation ~filename:rel content with
    | Some structure ->
        let st =
          {
            st_opens = [];
            st_aliases = [];
            st_toplevel = [];
            st_fns = [];
            st_refs = [];
            st_creates = [];
            st_accums = [];
          }
        in
        collect_scaffolding st structure;
        collect_fns st structure;
        {
          base with
          opens = List.rev st.st_opens;
          aliases = st.st_aliases;
          fns = List.rev st.st_fns;
          refs = List.sort_uniq compare st.st_refs;
          rng_creates = List.rev st.st_creates;
          float_accums = List.rev st.st_accums;
        }
    | None -> { base with parse_failed = true }
