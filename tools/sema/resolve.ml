(* Cross-module name resolution over the value-reference graph.

   The tree uses dune wrapped libraries, so a cross-library reference
   looks like [Mppm_util.Rng.int]: the head is the library's alias module
   (capitalized dune library name), the second element the compilation
   unit.  Within a library, units refer to each other directly
   ([Benchmark.validate]), and [open]s and [module X = ...] aliases are
   applied before resolution (aliases already during facts extraction). *)

type env = {
  lib_dirs : (string * string) list;
      (* library alias module -> directory, e.g. "Mppm_util" -> "lib/util" *)
  unit_dirs : (string * string list) list;
      (* directory -> unit names defined there, e.g.
         "lib/util" -> ["Rng"; "Stats"; ...] *)
}

(* Extract every "(name xxx)" from a dune file, mapping the capitalized
   name to the dune file's directory. *)
let dune_names content =
  let n = String.length content in
  let needle = "(name " in
  let k = String.length needle in
  let rec go i acc =
    if i + k > n then List.rev acc
    else if String.sub content i k = needle then begin
      let j = ref (i + k) in
      while
        !j < n
        &&
        match content.[!j] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
        | _ -> false
      do
        incr j
      done;
      let name = String.sub content (i + k) (!j - i - k) in
      go !j (if name = "" then acc else name :: acc)
    end
    else go (i + 1) acc
  in
  go 0 []

let build ~dunes ~files =
  let lib_dirs =
    List.concat_map
      (fun (rel, content) ->
        let dir = Filename.dirname rel in
        List.map
          (fun name -> (String.capitalize_ascii name, dir))
          (dune_names content))
      dunes
  in
  let unit_dirs = Hashtbl.create ~random:false 32 in
  List.iter
    (fun rel ->
      if Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
      then begin
        let dir = Filename.dirname rel in
        let unit_name =
          String.capitalize_ascii
            (Filename.remove_extension (Filename.basename rel))
        in
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt unit_dirs dir)
        in
        if not (List.mem unit_name existing) then
          Hashtbl.replace unit_dirs dir (unit_name :: existing)
      end)
    files;
  {
    lib_dirs;
    unit_dirs =
      Hashtbl.fold (fun dir units acc -> (dir, units) :: acc) unit_dirs []
      |> List.sort compare;
  }

let unit_exists env ~dir unit_name =
  match List.assoc_opt dir env.unit_dirs with
  | Some units -> List.mem unit_name units
  | None -> false

let key ~dir ~unit_name = dir ^ "/" ^ String.uncapitalize_ascii unit_name

(* The member a resolved path refers to: its last element (which may be a
   constructor or submodule name; S4 matches it against .mli val names). *)
let member_of = function [] -> "" | path -> List.nth path (List.length path - 1)

let resolve env (facts : Facts.t) path =
  match path with
  | [] | [ _ ] -> None (* unqualified: local or same-unit, never cross-unit *)
  | head :: rest -> (
      match List.assoc_opt head env.lib_dirs with
      | Some dir -> (
          (* Library-qualified: Mppm_util.Rng.int *)
          match rest with
          | unit_name :: more when unit_exists env ~dir unit_name ->
              Some (key ~dir ~unit_name, member_of (if more = [] then rest else more))
          | _ -> None)
      | None ->
          (* Unit-qualified within the same directory: Benchmark.validate *)
          if unit_exists env ~dir:facts.Facts.dir head then
            Some (key ~dir:facts.Facts.dir ~unit_name:head, member_of rest)
          else
            (* Through an open: open Mppm_experiments ... Context.predict *)
            List.find_map
              (fun open_path ->
                match open_path with
                | [ lib_alias ] -> (
                    match List.assoc_opt lib_alias env.lib_dirs with
                    | Some dir when unit_exists env ~dir head ->
                        Some (key ~dir ~unit_name:head, member_of rest)
                    | _ -> None)
                | _ -> None)
              facts.Facts.opens)
