(* loadgen: a load harness for the mppmd prediction daemon.

   Replays a seeded stream of predict queries (random mixes drawn through
   Mppm_util.Rng, so the query set is a pure function of --seed) against a
   running daemon at a configurable concurrency, and reports the latency
   distribution (p50/p90/p99 through Mppm_obs.Histogram) plus sustained
   queries/sec.

   Correctness harness as much as a throughput one: --check verifies that
   every repetition of the same mix got a byte-identical response whatever
   interleaving the daemon saw, and any error response fails the run.
   --print-queries emits the query mixes without touching the network, so
   a CI job can replay the exact same stream through the one-shot CLI and
   diff the bytes (see .github/workflows/ci.yml, service-smoke). *)

module Wire = Mppm_serve.Wire
module Rng = Mppm_util.Rng
module Suite = Mppm_trace.Suite
module Histogram = Mppm_obs.Histogram

(* ---- query stream ---------------------------------------------------- *)

(* Mix i is drawn from its own split so the stream is stable under
   changes to how many draws one query makes. *)
let query_mixes ~seed ~queries ~cores =
  let rng = Rng.create ~seed in
  Array.init queries (fun _ ->
      let r = Rng.split rng in
      Array.to_list (Array.init cores (fun _ -> Rng.pick r Suite.names)))

(* ---- networking ------------------------------------------------------ *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      failwith (Printf.sprintf "loadgen: cannot resolve host %S" host))

let connect_endpoint endpoint =
  let addr, domain =
    match endpoint with
    | Wire.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Wire.Tcp { host; port } ->
        (Unix.ADDR_INET (resolve_host host, port), Unix.PF_INET)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      failwith
        (Printf.sprintf "loadgen: cannot connect to %s: %s (is mppmd \
                         running?)"
           (Wire.endpoint_to_string endpoint)
           (Unix.error_message err))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* ---- the client loop ------------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  mutable inbox : string;
  mutable query : int;     (* index of the in-flight query, -1 = idle *)
  mutable sent_at : float;
}

type outcome = { mix : string list; reply : Wire.response; latency : float }

(* [concurrency] connections, each with one query in flight; the next
   query is issued the moment a response completes, so the daemon always
   sees up to [concurrency] outstanding requests. *)
let run_stream endpoint mixes ~concurrency ~llc_config =
  let total = Array.length mixes in
  let outcomes = Array.make total None in
  let next = ref 0 in
  let clients =
    Array.init (min concurrency (max total 1)) (fun _ ->
        { fd = connect_endpoint endpoint; inbox = ""; query = -1;
          sent_at = 0.0 })
  in
  let send c =
    if !next < total then begin
      let i = !next in
      incr next;
      c.query <- i;
      c.sent_at <- Unix.gettimeofday ();
      write_all c.fd
        (Wire.frame
           (Wire.encode_request
              (Wire.Predict { names = mixes.(i); llc_config })))
    end
    else c.query <- -1
  in
  let complete c payload =
    let latency = Unix.gettimeofday () -. c.sent_at in
    let reply =
      match Wire.decode_response payload with
      | Result.Ok r -> r
      | Result.Error (code, message) -> Wire.Error { code; message }
    in
    outcomes.(c.query) <- Some { mix = mixes.(c.query); reply; latency };
    send c
  in
  let feed c =
    let continue = ref true in
    while !continue do
      let data = c.inbox in
      if String.length data < 4 then continue := false
      else
        match Wire.frame_length (String.sub data 0 4) with
        | Result.Error (_, msg) -> failwith ("loadgen: " ^ msg)
        | Result.Ok len ->
            if String.length data < 4 + len then continue := false
            else begin
              c.inbox <-
                String.sub data (4 + len) (String.length data - 4 - len);
              complete c (String.sub data 4 len)
            end
    done
  in
  let t0 = Unix.gettimeofday () in
  Array.iter send clients;
  let buf = Bytes.create 65536 in
  let busy () =
    Array.exists (fun c -> c.query >= 0) clients
  in
  while busy () do
    let watched =
      List.filter_map
        (fun c -> if c.query >= 0 then Some c.fd else None)
        (Array.to_list clients)
    in
    match Unix.select watched [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        Array.iter
          (fun c ->
            if c.query >= 0 && List.mem c.fd readable then begin
              let n = Unix.read c.fd buf 0 (Bytes.length buf) in
              if n = 0 then
                failwith
                  "loadgen: daemon closed the connection mid-stream";
              c.inbox <- c.inbox ^ Bytes.sub_string buf 0 n;
              feed c
            end)
          clients
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    clients;
  let outcomes =
    Array.map
      (function
        | Some o -> o
        | None -> failwith "loadgen: internal: query left unanswered")
      outcomes
  in
  (outcomes, elapsed)

(* ---- checking -------------------------------------------------------- *)

(* Determinism check: the daemon may interleave queries any way it likes,
   but two queries for the same mix must produce the same bytes, and no
   query may fail. *)
let check_outcomes outcomes =
  let expected = Hashtbl.create ~random:false 64 in
  let failures = ref 0 in
  Array.iter
    (fun { mix; reply; _ } ->
      let key = String.concat "," mix in
      match reply with
      | Wire.Error { code; message } ->
          incr failures;
          Printf.eprintf "loadgen: query %s failed: %s [%s]\n" key message
            (Wire.error_code_to_string code)
      | Wire.Counters _ ->
          incr failures;
          Printf.eprintf "loadgen: query %s: unexpected counters response\n"
            key
      | Wire.Output text -> (
          match Hashtbl.find_opt expected key with
          | None -> Hashtbl.replace expected key text
          | Some first ->
              if not (String.equal first text) then begin
                incr failures;
                Printf.eprintf
                  "loadgen: nondeterministic response for mix %s (%d vs %d \
                   bytes)\n"
                  key (String.length first) (String.length text)
              end))
    outcomes;
  !failures

(* ---- reporting ------------------------------------------------------- *)

let make_histogram outcomes =
  (* 1 us .. ~18 minutes in geometric steps; latencies live in seconds. *)
  let h = Histogram.create_exponential ~first:1e-6 ~ratio:1.6 ~buckets:48 in
  Array.iter (fun o -> Histogram.observe h o.latency) outcomes;
  h

let report_text ppf (h, elapsed, errors) =
  let n = Histogram.count h in
  let ms p = 1000.0 *. Histogram.quantile h p in
  Format.fprintf ppf "loadgen: %.0f queries in %.2fs = %.1f qps@." n elapsed
    (n /. elapsed);
  Format.fprintf ppf
    "latency: p50 %.2fms  p90 %.2fms  p99 %.2fms  (min %.2fms  max %.2fms  \
     mean %.2fms)@."
    (ms 0.5) (ms 0.9) (ms 0.99)
    (1000.0 *. Option.value (Histogram.min_value h) ~default:0.0)
    (1000.0 *. Option.value (Histogram.max_value h) ~default:0.0)
    (1000.0 *. Histogram.mean h);
  if errors > 0 then
    Format.fprintf ppf "errors: %d failed or nondeterministic quer%s@."
      errors
      (if errors = 1 then "y" else "ies")

let report_json ppf (h, elapsed, errors) =
  let n = Histogram.count h in
  let ms p = 1000.0 *. Histogram.quantile h p in
  Format.fprintf ppf
    "{\"queries\": %.0f, \"seconds\": %.4f, \"qps\": %.2f, \"p50_ms\": \
     %.4f, \"p90_ms\": %.4f, \"p99_ms\": %.4f, \"min_ms\": %.4f, \
     \"max_ms\": %.4f, \"mean_ms\": %.4f, \"errors\": %d, \
     \"bucket_counts\": [%s]}@."
    n elapsed
    (n /. elapsed)
    (ms 0.5) (ms 0.9) (ms 0.99)
    (1000.0 *. Option.value (Histogram.min_value h) ~default:0.0)
    (1000.0 *. Option.value (Histogram.max_value h) ~default:0.0)
    (1000.0 *. Histogram.mean h)
    errors
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun c -> Printf.sprintf "%.0f" c)
             (Histogram.bucket_counts h))))

(* ---- command line ---------------------------------------------------- *)

open Cmdliner

let endpoint_term =
  let parse s =
    match Wire.endpoint_of_string s with
    | Result.Ok ep -> Ok ep
    | Result.Error msg -> Error (`Msg msg)
  in
  let endpoint_conv =
    Arg.conv
      ( parse,
        fun ppf ep -> Format.pp_print_string ppf (Wire.endpoint_to_string ep)
      )
  in
  Arg.(
    value
    & opt endpoint_conv (Wire.Unix_socket "mppmd.sock")
    & info [ "connect" ] ~docv:"ENDPOINT"
        ~doc:"The mppmd endpoint: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")

let run connect queries concurrency seed cores llc_config check json
    print_queries min_qps =
  if queries < 1 then failwith "loadgen: --queries must be at least 1";
  if concurrency < 1 then failwith "loadgen: --concurrency must be at least 1";
  if cores < 1 then failwith "loadgen: --cores must be at least 1";
  let mixes = query_mixes ~seed ~queries ~cores in
  if print_queries then
    Array.iter (fun mix -> print_endline (String.concat "," mix)) mixes
  else begin
    let outcomes, elapsed = run_stream connect mixes ~concurrency ~llc_config in
    let errors = if check then check_outcomes outcomes else 0 in
    let h = make_histogram outcomes in
    (match json with
    | None -> report_text Format.std_formatter (h, elapsed, errors)
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            report_json (Format.formatter_of_out_channel oc)
              (h, elapsed, errors));
        report_text Format.std_formatter (h, elapsed, errors));
    if errors > 0 then exit 1;
    let qps = Histogram.count h /. elapsed in
    if min_qps > 0.0 && qps < min_qps then begin
      Printf.eprintf "loadgen: %.1f qps is below the --min-qps %.1f floor\n"
        qps min_qps;
      exit 1
    end
  end

let cmd =
  let queries =
    Arg.(
      value & opt int 1000
      & info [ "queries" ] ~doc:"Number of queries to replay.")
  in
  let concurrency =
    Arg.(
      value & opt int 8
      & info [ "concurrency" ] ~doc:"Concurrent client connections.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Seed for the query stream (the mixes are a \
                              pure function of it).")
  in
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Programs per query mix.")
  in
  let llc_config =
    Arg.(
      value & opt int 1
      & info [ "config" ] ~doc:"LLC configuration, 1..6 (Table 2).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Fail (exit 1) if any response is an error or if two queries \
             for the same mix got different bytes.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report (with histogram buckets) as JSON.")
  in
  let print_queries =
    Arg.(
      value & flag
      & info [ "print-queries" ]
          ~doc:
            "Print the seeded query mixes (one comma-separated mix per \
             line) instead of contacting the daemon, so the stream can be \
             replayed through the one-shot CLI.")
  in
  let min_qps =
    Arg.(
      value & opt float 0.0
      & info [ "min-qps" ]
          ~doc:"Fail (exit 1) if sustained throughput falls below this.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay seeded prediction queries against a running mppmd and \
          report latency quantiles and throughput.")
    Term.(
      const run $ endpoint_term $ queries $ concurrency $ seed $ cores
      $ llc_config $ check $ json $ print_queries $ min_qps)

let () =
  try exit (Cmd.eval ~catch:false cmd) with
  | Failure msg ->
      prerr_endline msg;
      exit 2
  | Sys_error msg ->
      prerr_endline ("loadgen: " ^ msg);
      exit 2
  | Unix.Unix_error (err, fn, _) ->
      prerr_endline
        (Printf.sprintf "loadgen: %s: %s" fn (Unix.error_message err));
      exit 2
