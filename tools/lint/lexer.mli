(** A lightweight, total OCaml tokenizer for lint rules.

    This is not a full OCaml lexer: it only needs to be sound about the
    things rules care about — identifiers, qualified-name dots, operators,
    numeric literals (and whether they are floats), string literals, and
    comments (nested, string-aware).  It never raises on malformed input;
    unterminated constructs simply run to end of file. *)

type token =
  | Ident of string  (** lowercase identifier or keyword *)
  | Uident of string  (** capitalized identifier (module/constructor) *)
  | Number of { text : string; is_float : bool }
  | Str of string  (** string literal, unescaped content *)
  | Chr  (** character literal *)
  | Op of string  (** operator or punctuation, e.g. ["="], ["."], ["("] *)

type loc_token = { tok : token; line : int (** 1-based *) }

type doc = { doc_start : int; doc_end : int }
(** Line span of one [(** ... *)] doc comment. *)

type lexed = {
  tokens : loc_token array;  (** code tokens in source order *)
  docs : doc list;  (** doc comments in source order *)
  allows : (string * int) list;
      (** [(rule, line)] for each [(* lint: allow <rule> ... *)] comment *)
  allow_files : string list;
      (** rules suppressed for the whole file by
          [(* lint: allow-file <rule> ... *)] comments *)
  hots : int list;
      (** start lines of [(* mppm: hot ... *)] hot-root annotations; the
          sema layer attaches each to the toplevel binding on the same
          line or the line below *)
  colds : int list;
      (** start lines of [(* mppm: cold ... *)] annotations excluding the
          expression starting on the same line (or the line below) from
          the hot region *)
  units : (string * int * bool) list;
      (** [(unit-expression, line, trailing)] for each
          [(* mppm: unit ... *)] annotation; the unit expression is the
          text up to the first ["--"] (or dash) separator, and
          [trailing] records whether code precedes the comment on its
          line — a trailing annotation attaches only to that line's
          item, a standalone one also to the item one or two lines
          below *)
}

val lex : string -> lexed
(** [lex source] tokenizes [source].  Total: any byte string yields a
    result. *)
