type token =
  | Ident of string
  | Uident of string
  | Number of { text : string; is_float : bool }
  | Str of string
  | Chr
  | Op of string

type loc_token = { tok : token; line : int }
type doc = { doc_start : int; doc_end : int }

type lexed = {
  tokens : loc_token array;
  docs : doc list;
  allows : (string * int) list;
  allow_files : string list;
  hots : int list;
  colds : int list;
  units : (string * int * bool) list;
}

let is_digit c = c >= '0' && c <= '9'
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_op_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '='
  | '>' | '?' | '@' | '^' | '|' | '~' | '#' ->
      true
  | _ -> false

(* Parse the body of a suppression comment: "lint: allow D1 F1" for a
   line-scoped allow, "lint: allow-file O1" for a whole-file allow (rules
   may also be comma-separated).  Returns the scope and the listed rule
   ids. *)
type allow_scope = Allow_line | Allow_file

(* Recognize a hotness annotation: "mppm: hot" marks the toplevel binding
   on the same line (or the line below) as a hotness root for the
   sema-layer P rules; "mppm: cold" marks the expression starting on the
   same line (or the line below) as off the hot path.  Either may be
   followed by free-form rationale text.  "mppm: unit <expr>" attaches a
   physical unit to the .mli item, record field or toplevel binding on
   the same line (or just below); the unit expression runs to the first
   "--" separator or the end of the comment, so rationale text can
   follow. *)
type hot_mark = Mark_hot | Mark_cold | Mark_unit of string

let parse_hot body =
  match
    String.split_on_char ' ' (String.trim body)
    |> List.filter (fun s -> s <> "")
  with
  | "mppm:" :: "hot" :: _ -> Some Mark_hot
  | "mppm:" :: "cold" :: _ -> Some Mark_cold
  | "mppm:" :: "unit" :: rest ->
      let rec until_sep = function
        | [] -> []
        | tok :: _
          when String.length tok >= 2
               && (String.sub tok 0 2 = "--" || String.sub tok 0 2 = "\xe2\x80")
          ->
            []
        | tok :: rest -> tok :: until_sep rest
      in
      Some (Mark_unit (String.concat " " (until_sep rest)))
  | _ -> None

let parse_allow body =
  let body = String.trim body in
  let prefix = "lint:" in
  if String.length body < String.length prefix
     || not (String.sub body 0 (String.length prefix) = prefix)
  then None
  else
    let rest = String.sub body 5 (String.length body - 5) in
    (* Rule ids are an uppercase letter followed by digits; everything
       after the leading run of ids is free-form "why" text. *)
    let is_rule_id s =
      String.length s >= 2
      && s.[0] >= 'A'
      && s.[0] <= 'Z'
      && String.for_all (fun c -> c >= '0' && c <= '9')
           (String.sub s 1 (String.length s - 1))
    in
    let rec leading_ids = function
      | tok :: rest when is_rule_id tok -> tok :: leading_ids rest
      | _ -> []
    in
    match
      String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) rest)
      |> List.filter (fun s -> s <> "")
    with
    | "allow" :: rules -> Some (Allow_line, leading_ids rules)
    | "allow-file" :: rules -> Some (Allow_file, leading_ids rules)
    | _ -> None

let lex source =
  let n = String.length source in
  let tokens = ref [] in
  let docs = ref [] in
  let allows = ref [] in
  let allow_files = ref [] in
  let hots = ref [] in
  let colds = ref [] in
  let units = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some source.[!i + k] else None in
  let emit tok = tokens := { tok; line = !line } :: !tokens in
  let advance () =
    if !i < n then begin
      if source.[!i] = '\n' then incr line;
      incr i
    end
  in
  (* Skip a string literal body (opening quote already consumed); returns the
     raw content.  Handles backslash escapes, including escaped newlines. *)
  let scan_string () =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek 0 with
      | None -> Buffer.contents buf
      | Some '"' ->
          advance ();
          Buffer.contents buf
      | Some '\\' ->
          Buffer.add_char buf '\\';
          advance ();
          (match peek 0 with
          | Some c ->
              Buffer.add_char buf c;
              advance ()
          | None -> ());
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  (* Quoted-string literal {id|...|id}; [!i] is at the char after '{'. *)
  let scan_quoted_string id =
    let close = "|" ^ id ^ "}" in
    let len = String.length close in
    let rec go () =
      if !i >= n then ()
      else if !i + len <= n && String.sub source !i len = close then
        for _ = 1 to len do
          advance ()
        done
      else begin
        advance ();
        go ()
      end
    in
    go ();
    emit (Str "")
  in
  (* Comment body: [!i] is just after the opening "(*".  Tracks nesting and
     skips string literals inside (as the real OCaml lexer does). *)
  let scan_comment start_line is_doc =
    let buf = Buffer.create 32 in
    let depth = ref 1 in
    let rec go () =
      match peek 0 with
      | None -> ()
      | Some '(' when peek 1 = Some '*' ->
          incr depth;
          Buffer.add_string buf "(*";
          advance ();
          advance ();
          go ()
      | Some '*' when peek 1 = Some ')' ->
          decr depth;
          advance ();
          advance ();
          if !depth > 0 then begin
            Buffer.add_string buf "*)";
            go ()
          end
      | Some '"' ->
          advance ();
          ignore (scan_string ());
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    let body = Buffer.contents buf in
    if is_doc then docs := { doc_start = start_line; doc_end = !line } :: !docs
    else
      match parse_hot body with
      | Some Mark_hot -> hots := start_line :: !hots
      | Some Mark_cold -> colds := start_line :: !colds
      | Some (Mark_unit u) ->
          (* A trailing annotation (code precedes it on its line) belongs
             to that line's item only; a standalone one may also attach
             to the item one or two lines below. *)
          let trailing =
            match !tokens with
            | { line = l; _ } :: _ -> l = start_line
            | [] -> false
          in
          units := (u, start_line, trailing) :: !units
      | None -> (
      (* fall through to the allow-comment parse *)
      match parse_allow body with
      | Some (Allow_line, rules) ->
          List.iter
            (fun rule -> allows := (rule, start_line) :: !allows)
            rules
      | Some (Allow_file, rules) ->
          List.iter (fun rule -> allow_files := rule :: !allow_files) rules
      | None -> ())
  in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' || c = ' ' || c = '\t' || c = '\r' then advance ()
    else if c = '(' && peek 1 = Some '*' then begin
      let start_line = !line in
      advance ();
      advance ();
      (* "(**" and not "(**)" is a doc comment. *)
      let is_doc = peek 0 = Some '*' && peek 1 <> Some ')' in
      scan_comment start_line is_doc
    end
    else if c = '"' then begin
      advance ();
      let s = scan_string () in
      emit (Str s)
    end
    else if c = '{' then begin
      (* {|...|} or {id|...|id} quoted string, else plain brace. *)
      let j = ref (!i + 1) in
      while !j < n && is_lower source.[!j] do
        incr j
      done;
      if !j < n && source.[!j] = '|' then begin
        let id = String.sub source (!i + 1) (!j - !i - 1) in
        while !i <= !j do
          advance ()
        done;
        scan_quoted_string id
      end
      else begin
        emit (Op "{");
        advance ()
      end
    end
    else if c = '\'' then begin
      (* Char literal or type-variable quote. *)
      match (peek 1, peek 2) with
      | Some '\\', _ ->
          advance ();
          advance ();
          let budget = ref 6 in
          let rec go () =
            match peek 0 with
            | Some '\'' -> advance ()
            | Some _ when !budget > 0 ->
                decr budget;
                advance ();
                go ()
            | _ -> ()
          in
          go ();
          emit Chr
      | Some ch, Some '\'' when ch <> '\'' ->
          advance ();
          advance ();
          advance ();
          emit Chr
      | _ ->
          emit (Op "'");
          advance ()
    end
    else if is_digit c then begin
      let start = !i in
      let is_float = ref false in
      let hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if hex then begin
        advance ();
        advance ();
        while
          match peek 0 with Some c -> is_hex c || c = '_' | None -> false
        do
          advance ()
        done;
        if peek 0 = Some '.' then begin
          is_float := true;
          advance ();
          while
            match peek 0 with Some c -> is_hex c || c = '_' | None -> false
          do
            advance ()
          done
        end;
        (match peek 0 with
        | Some ('p' | 'P') ->
            is_float := true;
            advance ();
            (match peek 0 with
            | Some ('+' | '-') -> advance ()
            | _ -> ());
            while
              match peek 0 with Some c -> is_digit c | None -> false
            do
              advance ()
            done
        | _ -> ())
      end
      else begin
        while
          match peek 0 with
          | Some c -> is_digit c || c = '_' || c = 'o' || c = 'b' || c = 'O' || c = 'B'
          | None -> false
        do
          advance ()
        done;
        if peek 0 = Some '.' && peek 1 <> Some '.' then begin
          is_float := true;
          advance ();
          while
            match peek 0 with Some c -> is_digit c || c = '_' | None -> false
          do
            advance ()
          done
        end;
        (match peek 0 with
        | Some ('e' | 'E') -> (
            match (peek 1, peek 2) with
            | Some ('+' | '-'), Some d when is_digit d ->
                is_float := true;
                advance ();
                advance ();
                while
                  match peek 0 with Some c -> is_digit c | None -> false
                do
                  advance ()
                done
            | Some d, _ when is_digit d ->
                is_float := true;
                advance ();
                while
                  match peek 0 with Some c -> is_digit c | None -> false
                do
                  advance ()
                done
            | _ -> ())
        | _ -> ())
      end;
      let text = String.sub source start (!i - start) in
      emit (Number { text; is_float = !is_float })
    end
    else if is_lower c || is_upper c then begin
      let start = !i in
      while match peek 0 with Some c -> is_ident_char c | None -> false do
        advance ()
      done;
      let text = String.sub source start (!i - start) in
      if is_upper text.[0] then emit (Uident text) else emit (Ident text)
    end
    else if is_op_char c then begin
      let start = !i in
      while match peek 0 with Some c -> is_op_char c | None -> false do
        advance ()
      done;
      emit (Op (String.sub source start (!i - start)))
    end
    else begin
      emit (Op (String.make 1 c));
      advance ()
    end
  done;
  {
    tokens = Array.of_list (List.rev !tokens);
    docs = List.rev !docs;
    allows = List.rev !allows;
    allow_files = List.rev !allow_files;
    hots = List.rev !hots;
    colds = List.rev !colds;
    units = List.rev !units;
  }
