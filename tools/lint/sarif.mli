(** SARIF 2.1.0 rendering of a diagnostic stream, for GitHub code-scanning
    annotations ([--format sarif]). *)

val schema_uri : string
(** The [$schema] URI emitted in the log header. *)

val tool_name : string
(** The [tool.driver.name] emitted in the run. *)

val tool_version : string
(** The [tool.driver.version] emitted in the run. *)

val render : Diag.t list -> string
(** [render diags] is a complete, deterministic SARIF 2.1.0 log: one run,
    the {!Rule_info.all} rules table (so [ruleIndex] is stable), and one
    [result] per finding in {!Diag.compare} order.  File URIs are the
    root-relative diagnostic paths under the [%SRCROOT%] base id. *)
