type severity = Error | Warning

type t = {
  file : string;
  line : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_text d =
  Printf.sprintf "%s:%d: [%s] %s: %s" d.file d.line d.rule
    (severity_to_string d.severity)
    d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.file) d.line (json_escape d.rule)
    (severity_to_string d.severity)
    (json_escape d.message)

let list_to_json ds =
  match ds with
  | [] -> "[]"
  | ds -> "[\n  " ^ String.concat ",\n  " (List.map to_json ds) ^ "\n]"

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
  | c -> c
