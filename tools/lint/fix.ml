(* Autofixes for the mechanical rules (--fix):

   - D1's [Hashtbl.create] form: insert [~random:false] after the call.
   - E1: prefix the [failwith]/[invalid_arg] string literal with the
     module name.

   Fixes are driven by re-linting, so suppressed findings are never
   rewritten, and a pass is repeated until the file re-lints clean of the
   fixable shapes (bounded, in case a line resists fixing). *)

let substr_index_from line start needle =
  let n = String.length needle and h = String.length line in
  let rec go i =
    if i + n > h then None
    else if String.sub line i n = needle then Some i
    else go (i + 1)
  in
  go start

(* Insert [" ~random:false"] after every [Hashtbl.create] on the line that
   is not already followed by a [~random] label. *)
let fix_hashtbl_create line =
  let needle = "Hashtbl.create" in
  let buf = Buffer.create (String.length line + 16) in
  let rec go pos =
    match substr_index_from line pos needle with
    | None -> Buffer.add_string buf (String.sub line pos (String.length line - pos))
    | Some i ->
        let stop = i + String.length needle in
        Buffer.add_string buf (String.sub line pos (stop - pos));
        let rec skip_spaces j =
          if j < String.length line && line.[j] = ' ' then skip_spaces (j + 1)
          else j
        in
        let j = skip_spaces stop in
        let already =
          j + 7 <= String.length line && String.sub line j 7 = "~random"
        in
        if not already then Buffer.add_string buf " ~random:false";
        go stop
  in
  go 0;
  Buffer.contents buf

(* Insert ["Module: "] after the opening quote of the first
   [failwith "..."] / [invalid_arg "..."] on the line. *)
let fix_error_prefix ~module_name line =
  let try_fn fn =
    match substr_index_from line 0 fn with
    | None -> None
    | Some i -> (
        match substr_index_from line (i + String.length fn) "\"" with
        | None -> None
        | Some q ->
            Some
              (String.sub line 0 (q + 1)
              ^ module_name ^ ": "
              ^ String.sub line (q + 1) (String.length line - q - 1)))
  in
  match try_fn "failwith" with
  | Some fixed -> Some fixed
  | None -> try_fn "invalid_arg"

let is_fixable d =
  match d.Diag.rule with
  | "E1" -> true
  | "D1" ->
      (* Only the Hashtbl.create form of D1 is mechanical. *)
      let msg = d.Diag.message in
      let rec contains i =
        i + 13 <= String.length msg
        && (String.sub msg i 13 = "~random:false" || contains (i + 1))
      in
      contains 0
  | _ -> false

let apply_once ~rel content =
  let diags = List.filter is_fixable (Engine.lint_source ~rel content) in
  if diags = [] then (content, 0)
  else
    let module_name =
      String.capitalize_ascii
        (Filename.remove_extension (Filename.basename rel))
    in
    let lines = Array.of_list (String.split_on_char '\n' content) in
    let applied = ref 0 in
    List.iter
      (fun d ->
        let idx = d.Diag.line - 1 in
        if idx >= 0 && idx < Array.length lines then begin
          let line = lines.(idx) in
          let fixed =
            match d.Diag.rule with
            | "D1" -> Some (fix_hashtbl_create line)
            | "E1" -> fix_error_prefix ~module_name line
            | _ -> None
          in
          match fixed with
          | Some f when f <> line ->
              lines.(idx) <- f;
              incr applied
          | _ -> ()
        end)
      diags;
    (String.concat "\n" (Array.to_list lines), !applied)

let fix_source ~rel content =
  let rec go content total pass =
    if pass >= 5 then (content, total)
    else
      let content', n = apply_once ~rel content in
      if n = 0 then (content', total) else go content' (total + n) (pass + 1)
  in
  go content 0 0

let fix_tree ~root =
  Engine.collect_tree ~root
  |> List.filter_map (fun rel ->
         if not (Filename.check_suffix rel ".ml") then None
         else
           let path = Filename.concat root rel in
           let content = Engine.read_file path in
           let fixed, n = fix_source ~rel content in
           if n = 0 then None
           else begin
             let oc = open_out_bin path in
             Fun.protect
               ~finally:(fun () -> close_out_noerr oc)
               (fun () -> output_string oc fixed);
             Some (rel, n)
           end)
