(* Strip leading "./" segments so reports are stable root-relative paths
   whatever form the caller handed the path in. *)
let normalize_rel rel =
  let rec strip rel =
    if String.length rel >= 2 && String.sub rel 0 2 = "./" then
      strip (String.sub rel 2 (String.length rel - 2))
    else rel
  in
  strip (String.map (fun c -> if c = '\\' then '/' else c) rel)

let suppress ~allows ~allow_files diags =
  List.filter
    (fun d ->
      (not (List.mem d.Diag.rule allow_files))
      && not
           (List.exists
              (fun (rule, line) ->
                rule = d.Diag.rule
                && (line = d.Diag.line || line = d.Diag.line - 1))
              allows))
    diags

let lint_source ~rel content =
  let rel = normalize_rel rel in
  let ctx = Rules.context_of_rel rel in
  let lx = Lexer.lex content in
  suppress ~allows:lx.Lexer.allows ~allow_files:lx.Lexer.allow_files
    (Rules.check_tokens ctx lx)

let lint_dune ~rel content = Rules.check_dune ~rel:(normalize_rel rel) content

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ~root ~rel =
  let content = read_file (Filename.concat root rel) in
  if Filename.basename rel = "dune" then lint_dune ~rel content
  else lint_source ~rel content

let scanned_dirs = [ "lib"; "bin"; "bench"; "tools"; "test"; "examples" ]

let skip_dir name =
  name = "_build" || name = "_profile_cache"
  || (String.length name > 0 && name.[0] = '.')

(* Root-relative paths of the lintable files under [dir], sorted for
   deterministic reports. *)
let rec collect root rel_dir =
  let abs = if rel_dir = "" then root else Filename.concat root rel_dir in
  if not (Sys.file_exists abs && Sys.is_directory abs) then []
  else
    Sys.readdir abs |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           let rel = if rel_dir = "" then name else rel_dir ^ "/" ^ name in
           let path = Filename.concat root rel in
           if Sys.is_directory path then
             if skip_dir name then [] else collect root rel
           else if
             Filename.check_suffix name ".ml"
             || Filename.check_suffix name ".mli"
             || name = "dune"
           then [ rel ]
           else [])

let collect_tree ~root = List.concat_map (fun d -> collect root d) scanned_dirs

let errors diags =
  List.filter (fun d -> d.Diag.severity = Diag.Error) diags

let lint_tree ~root =
  let files = collect_tree ~root in
  let file_set = List.fold_left (fun s f -> f :: s) [] files in
  let missing =
    (* Every lib/ implementation must have an interface. *)
    List.filter_map
      (fun rel ->
        if
          String.length rel >= 4
          && String.sub rel 0 4 = "lib/"
          && Filename.check_suffix rel ".ml"
          && not (List.mem (rel ^ "i") file_set)
        then Some (Rules.missing_mli ~rel_ml:rel)
        else None)
      files
  in
  let found = List.concat_map (fun rel -> lint_file ~root ~rel) files in
  List.sort Diag.compare (missing @ found)
