type t = { id : string; layer : string; summary : string }

(* Report order: token-layer rules first, then the AST layer.  SARIF
   [ruleIndex] values index into this list, so the order is part of the
   golden-tested output format. *)
let all =
  [
    {
      id = "D1";
      layer = "token";
      summary =
        "Nondeterminism source in lib/: stdlib Random, wall-clock reads, \
         Hashtbl.hash-family, Hashtbl.create without ~random:false, or a \
         lib/ dune file linking unix.";
    };
    {
      id = "D2";
      layer = "token";
      summary =
        "stdlib Random outside Mppm_util.Rng: all randomness must flow from \
         integer seeds through Mppm_util.Rng.";
    };
    {
      id = "F1";
      layer = "token";
      summary =
        "Float equality via polymorphic =/==/<>/!=/compare against a float \
         literal; use Mppm_util.Stats.approx_equal or Float.equal.";
    };
    {
      id = "M1";
      layer = "token";
      summary =
        "Public lib/ module without an .mli, or an .mli item without a doc \
         comment.";
    };
    {
      id = "E1";
      layer = "token";
      summary =
        "failwith/invalid_arg message without the defining module's name as \
         prefix.";
    };
    {
      id = "O1";
      layer = "token";
      summary =
        "Console output from lib/: return data, render via a caller-supplied \
         formatter, or emit through an Mppm_obs sink.";
    };
    {
      id = "S1";
      layer = "ast";
      summary =
        "Effect containment: a lib/ function transitively reaches file or \
         channel I/O outside the allowlisted profile-cache / trace-file / \
         obs-sink modules.";
    };
    {
      id = "S2";
      layer = "ast";
      summary =
        "Seed flow: an Mppm_util.Rng state created from a baked-in literal \
         seed, or one Rng stream feeding both the data (next) and fetch \
         (next_fetch) draw sites.";
    };
    {
      id = "S3";
      layer = "ast";
      summary =
        "Order-sensitive float accumulation over unordered Hashtbl \
         iteration: the sum depends on hash-bucket order.";
    };
    {
      id = "S4";
      layer = "ast";
      summary =
        "Dead export: a lib/ .mli value referenced by no other compilation \
         unit.";
    };
    {
      id = "S5";
      layer = "ast";
      summary =
        "Concurrency containment: a lib/ function transitively reaches the \
         Domain/Mutex/Condition/Atomic surface outside lib/pool/.";
    };
    {
      id = "S6";
      layer = "ast";
      summary =
        "Pool-task purity: a closure reaching Pool.map/map_reduce or a \
         Single_flight memo writes captured or module-level mutable state, \
         or shares a captured value with a callee that mutates it.";
    };
    {
      id = "S7";
      layer = "ast";
      summary =
        "Module-level mutable state in lib/ (ref/Hashtbl.create at \
         toplevel, a write to one, or handing one to a mutating callee) \
         outside the sanctioned pool/registry/invariant units.";
    };
    {
      id = "S8";
      layer = "ast";
      summary =
        "Lock order: lib/pool/ and the obs registry must acquire their \
         mutexes in the declared order (pool before registry).";
    };
    {
      id = "P1";
      layer = "ast";
      summary =
        "Heap allocation on a hot path: closure capture, \
         tuple/record/array/list construction, or an allocating stdlib \
         call (Array.append, List.map, Printf/Format, ...) reachable \
         from a (* mppm: hot *) root.";
    };
    {
      id = "P2";
      layer = "ast";
      summary =
        "Polymorphic =/<>/compare/Hashtbl.hash reaching a hot path; use \
         monomorphic Int.equal/Float.equal.";
    };
    {
      id = "P3";
      layer = "ast";
      summary =
        "Hashtbl traffic (create/add/find/iter/...) on a hot path: the \
         per-quantum loop must index arrays, not hash.";
    };
    {
      id = "P4";
      layer = "ast";
      summary =
        "Boxed-float ref accumulation in a hot loop; accumulate through \
         a float array cell or an unboxed accumulator argument.";
    };
    {
      id = "U1";
      layer = "ast";
      summary =
        "Mixed-unit arithmetic or comparison: adding, subtracting, \
         min/max-ing or comparing two quantities whose (* mppm: unit *) \
         dimensions disagree (cycles vs insns, ...).";
    };
    {
      id = "U2";
      layer = "ast";
      summary =
        "Cumulative/per-interval confusion: adding two cumulative \
         counters, or passing/storing a cumulative value where a \
         per-interval one is declared — only subtracting two cumulative \
         readings discharges the flavor.";
    };
    {
      id = "U3";
      layer = "ast";
      summary =
        "Inverted or unit-unsound ratio: cycles/insns mixed with \
         insns/cycles (CPI vs IPC), or an interval index used as an \
         access/cycle/instruction count.";
    };
  ]

let all_ids = List.map (fun r -> r.id) all

let find id = List.find_opt (fun r -> r.id = id) all
