(* SARIF 2.1.0 rendering of a diagnostic stream.

   The output is deterministic (rule order fixed by Rule_info.all, results
   in Diag.compare order, two-space indentation) so it can be golden-tested
   and diffed across runs.  Only the subset of the schema that GitHub code
   scanning consumes is emitted: tool.driver with a rules table, and one
   result per finding with ruleId/ruleIndex/level/message/locations. *)

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let tool_name = "mppm-lint"
let tool_version = "2.0.0"

let esc = Diag.json_escape

let rule_to_json r =
  Printf.sprintf
    "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"properties\":{\"layer\":\"%s\"}}"
    (esc r.Rule_info.id)
    (esc r.Rule_info.summary)
    (esc r.Rule_info.layer)

let level_of = function Diag.Error -> "error" | Diag.Warning -> "warning"

let rule_index rule =
  let rec go i = function
    | [] -> -1
    | r :: rest -> if r.Rule_info.id = rule then i else go (i + 1) rest
  in
  go 0 Rule_info.all

let result_to_json d =
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\",\"uriBaseId\":\"%%SRCROOT%%\"},\"region\":{\"startLine\":%d}}}]}"
    (esc d.Diag.rule) (rule_index d.Diag.rule)
    (level_of d.Diag.severity)
    (esc d.Diag.message) (esc d.Diag.file) d.Diag.line

let render diags =
  let diags = List.sort Diag.compare diags in
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"$schema\": \"%s\",\n" schema_uri);
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n";
  add "    {\n";
  add "      \"tool\": {\n";
  add "        \"driver\": {\n";
  add (Printf.sprintf "          \"name\": \"%s\",\n" tool_name);
  add (Printf.sprintf "          \"version\": \"%s\",\n" tool_version);
  add "          \"rules\": [\n";
  List.iteri
    (fun i r ->
      add "            ";
      add (rule_to_json r);
      if i < List.length Rule_info.all - 1 then add ",";
      add "\n")
    Rule_info.all;
  add "          ]\n";
  add "        }\n";
  add "      },\n";
  add "      \"results\": [\n";
  List.iteri
    (fun i d ->
      add "        ";
      add (result_to_json d);
      if i < List.length diags - 1 then add ",";
      add "\n")
    diags;
  add "      ]\n";
  add "    }\n";
  add "  ]\n";
  add "}\n";
  Buffer.contents buf
