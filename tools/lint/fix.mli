(** Autofixes for the mechanical rule shapes ([--fix]): inserting
    [~random:false] into bare [Hashtbl.create] calls (D1) and prefixing
    [failwith]/[invalid_arg] messages with the module name (E1).

    Fixes are driven by re-linting the source, so suppressed findings are
    left untouched, and fixing is idempotent: a fixed file re-lints clean
    of the fixable shapes. *)

val fix_source : rel:string -> string -> string * int
(** [fix_source ~rel content] is [(fixed, n)] where [n] is the number of
    edits applied.  [n = 0] means [fixed] is [content] unchanged. *)

val fix_tree : root:string -> (string * int) list
(** Fix every [.ml] file under the scanned tree in place, returning the
    root-relative path and edit count of each rewritten file. *)
