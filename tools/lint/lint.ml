(* mppm-lint driver: run both analysis layers over the tree, print the
   merged findings, exit 1 on errors.

   Layers: the token rules (D1 D2 F1 M1 E1 O1, Mppm_lint) and the AST
   rules (S1-S8, the hot-path perf rules P1-P4 and the unit rules U1-U3,
   Mppm_sema).  Both share root-relative paths and the
   [(* lint: allow ... *)] suppression comments.

   Usage: lint.exe [--root DIR] [--format text|json|sarif] [--only RULE]...
                   [--rules R1,R2] [--fix] [--cache FILE] [--verbose]
                   [--report hot|units] [--bench FILE] *)

module Diag = Mppm_lint.Diag
module Engine = Mppm_lint.Engine
module Rules = Mppm_lint.Rules
module Fix = Mppm_lint.Fix
module Sarif = Mppm_lint.Sarif

type format = Text | Json | Sarif

let usage =
  "lint.exe [--root DIR] [--format text|json|sarif] [--only RULE]... \
   [--rules R1,R2] [--fix] [--cache FILE] [--verbose] [--report hot|units] \
   [--bench FILE]"

(* Human-readable byte counts for the Gc cross-reference table. *)
let pp_bytes b =
  if b >= 1e9 then Printf.sprintf "%.2f GB" (b /. 1e9)
  else if b >= 1e6 then Printf.sprintf "%.2f MB" (b /. 1e6)
  else if b >= 1e3 then Printf.sprintf "%.2f kB" (b /. 1e3)
  else Printf.sprintf "%.0f B" b

(* --report hot: the ranked hot-path inventory.  Findings stay with the
   normal lint run; this mode is the work-list view — every function the
   hotness propagation reached, its shortest chain back to a
   (* mppm: hot *) root, and its P1-P4 sites (open or allow-suppressed).
   When a bench report with per-phase Gc deltas is available
   (BENCH_model.json by default, --bench to point elsewhere), its
   allocation totals are appended so the static inventory can be read
   against the measured churn. *)
let report_hot ~root ~bench (report : Mppm_sema.Sema.report) =
  let hot = report.Mppm_sema.Sema.hot in
  let roots = List.filter (fun e -> e.Mppm_sema.Hotpath.h_root) hot in
  let sites = List.concat_map (fun e -> e.Mppm_sema.Hotpath.h_sites) hot in
  let open_sites = List.filter (fun (_, allowed) -> not allowed) sites in
  Printf.printf
    "hot-path inventory: %d hot function%s (%d root%s), %d site%s (%d \
     open, %d allowed)\n"
    (List.length hot)
    (if List.length hot = 1 then "" else "s")
    (List.length roots)
    (if List.length roots = 1 then "" else "s")
    (List.length sites)
    (if List.length sites = 1 then "" else "s")
    (List.length open_sites)
    (List.length sites - List.length open_sites);
  List.iter
    (fun e ->
      if e.Mppm_sema.Hotpath.h_sites <> [] then begin
        Printf.printf "\n%s (%s:%d)\n" e.Mppm_sema.Hotpath.h_label
          e.Mppm_sema.Hotpath.h_rel e.Mppm_sema.Hotpath.h_line;
        Printf.printf "  chain: %s\n"
          (String.concat " -> " e.Mppm_sema.Hotpath.h_chain);
        List.iter
          (fun ((s : Mppm_sema.Facts.perf_site), allowed) ->
            Printf.printf "  %s:%d  %s  %s%s\n" e.Mppm_sema.Hotpath.h_rel
              s.Mppm_sema.Facts.ps_line s.Mppm_sema.Facts.ps_rule
              s.Mppm_sema.Facts.ps_what
              (if allowed then "  [allowed]" else ""))
          e.Mppm_sema.Hotpath.h_sites
      end)
    hot;
  let clean =
    List.filter (fun e -> e.Mppm_sema.Hotpath.h_sites = []) hot
  in
  if clean <> [] then
    Printf.printf "\n%d hot function%s with no perf sites: %s\n"
      (List.length clean)
      (if List.length clean = 1 then "" else "s")
      (String.concat ", "
         (List.map (fun e -> e.Mppm_sema.Hotpath.h_label) clean));
  let bench_path =
    if bench <> "" then Some bench
    else
      let candidate name =
        let p = Filename.concat root name in
        if Sys.file_exists p then Some p else None
      in
      match candidate "BENCH_model.json" with
      | Some p -> Some p
      | None -> candidate "BENCH_seed.json"
  in
  match bench_path with
  | None -> ()
  | Some path -> (
      let text =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> Some (really_input_string ic (in_channel_length ic)))
        with Sys_error _ -> None
      in
      match text with
      | None -> Printf.printf "\n(bench report %s is unreadable)\n" path
      | Some text -> (
          match Mppm_obs.Bench_report.of_json text with
          | Error msg -> Printf.printf "\n(bench report %s: %s)\n" path msg
          | Ok bench ->
              Printf.printf "\nGc allocation context (%s):\n" path;
              List.iter
                (fun (ph : Mppm_obs.Bench_report.phase) ->
                  match ph.Mppm_obs.Bench_report.ph_alloc_bytes with
                  | None -> ()
                  | Some b ->
                      Printf.printf "  %-28s %10s allocated in %.1fs\n"
                        ph.Mppm_obs.Bench_report.ph_name (pp_bytes b)
                        ph.Mppm_obs.Bench_report.ph_seconds)
                bench.Mppm_obs.Bench_report.r_phases))

(* --report units: the annotation coverage map.  One row per lib/
   module — public .mli values that are annotated, inferred or opaque —
   plus the hot-path opacity check: every function on a
   (* mppm: hot *) path must carry or infer a unit, so the per-quantum
   math stays inside the checked algebra.  Exit 1 when a lib/ hot-path
   function has an opaque unit. *)
let report_units (report : Mppm_sema.Sema.report) =
  let module U = Mppm_sema.Units in
  let cov = report.Mppm_sema.Sema.units.U.u_coverage in
  let tot f = List.fold_left (fun a c -> a + f c) 0 cov in
  let ann = tot (fun c -> c.U.cov_annotated)
  and inf = tot (fun c -> c.U.cov_inferred)
  and opq = tot (fun c -> c.U.cov_opaque) in
  let total = ann + inf + opq in
  let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b in
  Printf.printf
    "unit coverage: %d public values across %d lib/ modules — %d annotated, \
     %d inferred, %d opaque (%.1f%% covered)\n\n"
    total (List.length cov) ann inf opq
    (pct (ann + inf) total);
  Printf.printf "  %-34s %9s %8s %6s\n" "module" "annotated" "inferred"
    "opaque";
  List.iter
    (fun (c : U.coverage) ->
      Printf.printf "  %-34s %9d %8d %6d\n" c.U.cov_key c.U.cov_annotated
        c.U.cov_inferred c.U.cov_opaque)
    cov;
  let opaque_rows =
    List.filter (fun (c : U.coverage) -> c.U.cov_opaque_names <> []) cov
  in
  if opaque_rows <> [] then begin
    Printf.printf "\nopaque values:\n";
    List.iter
      (fun (c : U.coverage) ->
        Printf.printf "  %s: %s\n" c.U.cov_key
          (String.concat ", " c.U.cov_opaque_names))
      opaque_rows
  end;
  let class_of = Hashtbl.create 512 in
  List.iter
    (fun (k, c) -> Hashtbl.replace class_of k c)
    report.Mppm_sema.Sema.units.U.u_fn_class;
  let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/" in
  let hot_lib =
    List.filter
      (fun (e : Mppm_sema.Hotpath.entry) -> in_lib e.Mppm_sema.Hotpath.h_rel)
      report.Mppm_sema.Sema.hot
  in
  let opaque_hot =
    List.filter
      (fun (e : Mppm_sema.Hotpath.entry) ->
        Hashtbl.find_opt class_of e.Mppm_sema.Hotpath.h_key
        = Some U.Opaque_unit)
      hot_lib
  in
  if opaque_hot = [] then
    Printf.printf
      "\nhot-path units: %d hot lib/ functions, none with an opaque unit\n"
      (List.length hot_lib)
  else begin
    Printf.printf "\nhot-path functions with an opaque unit:\n";
    List.iter
      (fun (e : Mppm_sema.Hotpath.entry) ->
        Printf.printf "  %s (%s:%d)\n" e.Mppm_sema.Hotpath.h_label
          e.Mppm_sema.Hotpath.h_rel e.Mppm_sema.Hotpath.h_line)
      opaque_hot
  end;
  opaque_hot = []

(* --fix, sema side: insert a missing (* mppm: unit ... *) annotation at
   the end of an .mli val line whose unit the strict (fallback-free)
   inference determined uniquely from its definition.  End-of-line
   placement keeps the annotation inside the lexer's attachment window
   without disturbing M1's doc-comment association.  Idempotent: an
   annotated item is never suggested again. *)
let apply_unit_suggestions ~root suggestions =
  let by_file = Hashtbl.create 16 in
  List.iter
    (fun (rel, line, name, u) ->
      let prev =
        match Hashtbl.find_opt by_file rel with Some l -> l | None -> []
      in
      Hashtbl.replace by_file rel ((line, name, u) :: prev))
    suggestions;
  Hashtbl.fold (fun rel items acc -> (rel, items) :: acc) by_file []
  |> List.sort compare
  |> List.map (fun (rel, items) ->
         let path = Filename.concat root rel in
         let ic = open_in_bin path in
         let text =
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         in
         let lines = String.split_on_char '\n' text in
         let fixed =
           List.mapi
             (fun i l ->
               match
                 List.find_opt (fun (line, _, _) -> line = i + 1) items
               with
               | Some (_, _, u) ->
                   Printf.sprintf "%s  (* mppm: unit %s *)" l u
               | None -> l)
             lines
         in
         let oc = open_out_bin path in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc (String.concat "\n" fixed));
         (rel, List.length items))

let () =
  let root = ref "." in
  let format = ref Text in
  let only = ref [] in
  let fix = ref false in
  let cache_file = ref "" in
  let verbose = ref false in
  let report_mode = ref "" in
  let bench = ref "" in
  let add_rule r =
    if not (List.mem r Rules.all_rule_ids) then begin
      Printf.eprintf "lint: unknown rule %s (known: %s)\n" r
        (String.concat " " (List.sort compare Rules.all_rule_ids));
      exit 2
    end;
    if not (List.mem r !only) then only := r :: !only
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  repository root to lint (default .)");
      ( "--format",
        Arg.Symbol
          ( [ "text"; "json"; "sarif" ],
            fun s ->
              format := (match s with "json" -> Json | "sarif" -> Sarif | _ -> Text) ),
        "  output format (default text)" );
      ( "--only",
        Arg.String add_rule,
        "RULE  restrict to one rule id (repeatable)" );
      ( "--rules",
        Arg.String
          (fun s ->
            List.iter
              (fun r ->
                let r = String.trim r in
                if r <> "" then add_rule r)
              (String.split_on_char ',' s)),
        "R1,R2  restrict to a comma-separated set of rule ids" );
      ( "--fix",
        Arg.Set fix,
        "  rewrite sources in place, applying the mechanical fixes (D1 \
         ~random:false, E1 message prefix) before linting" );
      ( "--cache",
        Arg.Set_string cache_file,
        "FILE  persist per-file AST facts keyed by content fingerprint; a \
         second run over an unchanged tree re-parses nothing" );
      ( "--verbose",
        Arg.Set verbose,
        "  print per-layer statistics (sema parses / cache hits / fallbacks)"
      );
      ( "--report",
        Arg.String
          (fun s ->
            if s <> "hot" && s <> "units" then begin
              Printf.eprintf "lint: unknown report %s (known: hot units)\n" s;
              exit 2
            end;
            report_mode := s),
        "hot|units  print the ranked hot-path inventory or the unit \
         annotation coverage map instead of findings" );
      ( "--bench",
        Arg.Set_string bench,
        "FILE  bench report whose Gc deltas annotate --report hot \
         (default: BENCH_model.json, then BENCH_seed.json, under --root)"
      );
    ]
  in
  Arg.parse spec
    (fun a ->
      Printf.eprintf "lint: unexpected argument %s\n" a;
      exit 2)
    usage;
  (* A typo'd --root must not pass as an empty (hence clean) tree. *)
  if
    not
      (List.exists
         (fun d -> Sys.file_exists (Filename.concat !root d))
         Engine.scanned_dirs)
  then begin
    Printf.eprintf "lint: %s contains none of the scanned directories (%s)\n"
      !root
      (String.concat " " Engine.scanned_dirs);
    exit 2
  end;
  if !fix then begin
    let fixed = Fix.fix_tree ~root:!root in
    List.iter
      (fun (rel, n) ->
        Printf.printf "fixed %s (%d change%s)\n" rel n
          (if n = 1 then "" else "s"))
      fixed
  end;
  let analyze () =
    Mppm_sema.Sema.analyze_tree
      ?cache_file:(if !cache_file = "" then None else Some !cache_file)
      ~root:!root ()
  in
  let report = analyze () in
  let report =
    if not !fix then report
    else
      match report.Mppm_sema.Sema.units.Mppm_sema.Units.u_suggest with
      | [] -> report
      | suggestions ->
          List.iter
            (fun (rel, n) ->
              Printf.printf "fixed %s (%d unit annotation%s)\n" rel n
                (if n = 1 then "" else "s"))
            (apply_unit_suggestions ~root:!root suggestions);
          (* Re-analyze so findings and reports reflect the fixed tree. *)
          analyze ()
  in
  if !report_mode = "hot" then begin
    report_hot ~root:!root ~bench:!bench report;
    exit 0
  end;
  if !report_mode = "units" then exit (if report_units report then 0 else 1);
  let token_diags = Engine.lint_tree ~root:!root in
  let diags = List.sort Diag.compare (token_diags @ report.Mppm_sema.Sema.diags) in
  let diags =
    match !only with
    | [] -> diags
    | rules -> List.filter (fun d -> List.mem d.Diag.rule rules) diags
  in
  if !verbose then
    Printf.printf "sema: parses=%d cache-hits=%d fallbacks=%d\n"
      report.Mppm_sema.Sema.parses report.Mppm_sema.Sema.cache_hits
      report.Mppm_sema.Sema.fallbacks;
  let errors = Engine.errors diags in
  (match !format with
  | Json -> print_endline (Diag.list_to_json diags)
  | Sarif -> print_string (Sarif.render diags)
  | Text ->
      List.iter (fun d -> print_endline (Diag.to_text d)) diags;
      Printf.printf "%d finding%s (%d error%s, %d warning%s)\n"
        (List.length diags)
        (if List.length diags = 1 then "" else "s")
        (List.length errors)
        (if List.length errors = 1 then "" else "s")
        (List.length diags - List.length errors)
        (if List.length diags - List.length errors = 1 then "" else "s"));
  exit (if errors <> [] then 1 else 0)
