(* mppm-lint driver: walk the tree, print findings, exit 1 on errors.

   Usage: lint.exe [--root DIR] [--format text|json] [--only RULE]... *)

module Diag = Mppm_lint.Diag
module Engine = Mppm_lint.Engine
module Rules = Mppm_lint.Rules

type format = Text | Json

let usage = "lint.exe [--root DIR] [--format text|json] [--only RULE]..."

let () =
  let root = ref "." in
  let format = ref Text in
  let only = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  repository root to lint (default .)");
      ( "--format",
        Arg.Symbol
          ( [ "text"; "json" ],
            fun s -> format := if s = "json" then Json else Text ),
        "  output format (default text)" );
      ( "--only",
        Arg.String
          (fun r ->
            if not (List.mem r Rules.all_rule_ids) then begin
              Printf.eprintf "lint: unknown rule %s (known: %s)\n" r
                (String.concat " " Rules.all_rule_ids);
              exit 2
            end;
            only := r :: !only),
        "RULE  restrict to one rule id (repeatable)" );
    ]
  in
  Arg.parse spec
    (fun a ->
      Printf.eprintf "lint: unexpected argument %s\n" a;
      exit 2)
    usage;
  (* A typo'd --root must not pass as an empty (hence clean) tree. *)
  if
    not
      (List.exists
         (fun d -> Sys.file_exists (Filename.concat !root d))
         Engine.scanned_dirs)
  then begin
    Printf.eprintf "lint: %s contains none of the scanned directories (%s)\n"
      !root
      (String.concat " " Engine.scanned_dirs);
    exit 2
  end;
  let diags = Engine.lint_tree ~root:!root in
  let diags =
    match !only with
    | [] -> diags
    | rules -> List.filter (fun d -> List.mem d.Diag.rule rules) diags
  in
  let errors = Engine.errors diags in
  (match !format with
  | Json -> print_endline (Diag.list_to_json diags)
  | Text ->
      List.iter (fun d -> print_endline (Diag.to_text d)) diags;
      Printf.printf "%d finding%s (%d error%s, %d warning%s)\n"
        (List.length diags)
        (if List.length diags = 1 then "" else "s")
        (List.length errors)
        (if List.length errors = 1 then "" else "s")
        (List.length diags - List.length errors)
        (if List.length diags - List.length errors = 1 then "" else "s"));
  exit (if errors <> [] then 1 else 0)
