(* mppm-lint driver: run both analysis layers over the tree, print the
   merged findings, exit 1 on errors.

   Layers: the token rules (D1 D2 F1 M1 E1 O1, Mppm_lint) and the AST
   rules (S1-S8, Mppm_sema).  Both share root-relative paths and
   the [(* lint: allow ... *)] suppression comments.

   Usage: lint.exe [--root DIR] [--format text|json|sarif] [--only RULE]...
                   [--rules R1,R2] [--fix] [--cache FILE] [--verbose] *)

module Diag = Mppm_lint.Diag
module Engine = Mppm_lint.Engine
module Rules = Mppm_lint.Rules
module Fix = Mppm_lint.Fix
module Sarif = Mppm_lint.Sarif

type format = Text | Json | Sarif

let usage =
  "lint.exe [--root DIR] [--format text|json|sarif] [--only RULE]... \
   [--rules R1,R2] [--fix] [--cache FILE] [--verbose]"

let () =
  let root = ref "." in
  let format = ref Text in
  let only = ref [] in
  let fix = ref false in
  let cache_file = ref "" in
  let verbose = ref false in
  let add_rule r =
    if not (List.mem r Rules.all_rule_ids) then begin
      Printf.eprintf "lint: unknown rule %s (known: %s)\n" r
        (String.concat " " Rules.all_rule_ids);
      exit 2
    end;
    only := r :: !only
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  repository root to lint (default .)");
      ( "--format",
        Arg.Symbol
          ( [ "text"; "json"; "sarif" ],
            fun s ->
              format := (match s with "json" -> Json | "sarif" -> Sarif | _ -> Text) ),
        "  output format (default text)" );
      ( "--only",
        Arg.String add_rule,
        "RULE  restrict to one rule id (repeatable)" );
      ( "--rules",
        Arg.String
          (fun s ->
            List.iter
              (fun r ->
                let r = String.trim r in
                if r <> "" then add_rule r)
              (String.split_on_char ',' s)),
        "R1,R2  restrict to a comma-separated set of rule ids" );
      ( "--fix",
        Arg.Set fix,
        "  rewrite sources in place, applying the mechanical fixes (D1 \
         ~random:false, E1 message prefix) before linting" );
      ( "--cache",
        Arg.Set_string cache_file,
        "FILE  persist per-file AST facts keyed by content fingerprint; a \
         second run over an unchanged tree re-parses nothing" );
      ( "--verbose",
        Arg.Set verbose,
        "  print per-layer statistics (sema parses / cache hits / fallbacks)"
      );
    ]
  in
  Arg.parse spec
    (fun a ->
      Printf.eprintf "lint: unexpected argument %s\n" a;
      exit 2)
    usage;
  (* A typo'd --root must not pass as an empty (hence clean) tree. *)
  if
    not
      (List.exists
         (fun d -> Sys.file_exists (Filename.concat !root d))
         Engine.scanned_dirs)
  then begin
    Printf.eprintf "lint: %s contains none of the scanned directories (%s)\n"
      !root
      (String.concat " " Engine.scanned_dirs);
    exit 2
  end;
  if !fix then begin
    let fixed = Fix.fix_tree ~root:!root in
    List.iter
      (fun (rel, n) ->
        Printf.printf "fixed %s (%d change%s)\n" rel n
          (if n = 1 then "" else "s"))
      fixed
  end;
  let token_diags = Engine.lint_tree ~root:!root in
  let report =
    Mppm_sema.Sema.analyze_tree
      ?cache_file:(if !cache_file = "" then None else Some !cache_file)
      ~root:!root ()
  in
  let diags = List.sort Diag.compare (token_diags @ report.Mppm_sema.Sema.diags) in
  let diags =
    match !only with
    | [] -> diags
    | rules -> List.filter (fun d -> List.mem d.Diag.rule rules) diags
  in
  if !verbose then
    Printf.printf "sema: parses=%d cache-hits=%d fallbacks=%d\n"
      report.Mppm_sema.Sema.parses report.Mppm_sema.Sema.cache_hits
      report.Mppm_sema.Sema.fallbacks;
  let errors = Engine.errors diags in
  (match !format with
  | Json -> print_endline (Diag.list_to_json diags)
  | Sarif -> print_string (Sarif.render diags)
  | Text ->
      List.iter (fun d -> print_endline (Diag.to_text d)) diags;
      Printf.printf "%d finding%s (%d error%s, %d warning%s)\n"
        (List.length diags)
        (if List.length diags = 1 then "" else "s")
        (List.length errors)
        (if List.length errors = 1 then "" else "s")
        (List.length diags - List.length errors)
        (if List.length diags - List.length errors = 1 then "" else "s"));
  exit (if errors <> [] then 1 else 0)
