(** Structured lint diagnostics and their textual / JSON rendering. *)

type severity = Error | Warning

type t = {
  file : string;  (** path relative to the lint root, '/'-separated *)
  line : int;  (** 1-based line of the finding *)
  rule : string;  (** rule identifier, e.g. ["D1"] *)
  severity : severity;
  message : string;  (** human-readable explanation *)
}

val severity_to_string : severity -> string
(** ["error"] or ["warning"]. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (RFC 8259);
    shared by the JSON and SARIF renderers. *)

val to_text : t -> string
(** One [file:line: [rule] severity: message] line, the [--format text]
    rendering. *)

val to_json : t -> string
(** One JSON object with [file], [line], [rule], [severity] and [message]
    fields; strings are escaped per RFC 8259. *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects, one per line, suitable for CI
    annotation consumers. *)

val compare : t -> t -> int
(** Order by file, then line, then rule — the stable report order. *)
