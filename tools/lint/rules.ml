type scope = Lib | Exec | Testish

type ctx = {
  rel : string;
  scope : scope;
  in_lib : bool;
  is_mli : bool;
  module_name : string;
}

let all_rule_ids = Rule_info.all_ids

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let scope_of_rel rel =
  if starts_with "lib/" rel then Lib
  else if starts_with "test/" rel || starts_with "examples/" rel then Testish
  else Exec

let context_of_rel rel =
  let base = Filename.basename rel in
  let stem = Filename.remove_extension base in
  let scope = scope_of_rel rel in
  {
    rel;
    scope;
    in_lib = scope = Lib;
    is_mli = Filename.extension base = ".mli";
    module_name = String.capitalize_ascii stem;
  }

let diag ctx ~line ~rule ~severity message =
  { Diag.file = ctx.rel; line; rule; severity; message }

open Lexer

let tok_at tokens i =
  if i >= 0 && i < Array.length tokens then Some tokens.(i).tok else None

(* [qualified tokens i] is [Some (modname, member)] when token [i] starts a
   qualified path like [Random.int] that is not itself prefixed by a longer
   path ([Mppm_util.Rng.int] must not match [Rng.]). *)
let qualified tokens i =
  match tok_at tokens i with
  | Some (Uident u) when tok_at tokens (i + 1) = Some (Op ".") -> (
      match tok_at tokens (i - 1) with
      | Some (Op ".") -> None
      | _ -> (
          match tok_at tokens (i + 2) with
          | Some (Ident m) -> Some (u, m)
          | _ -> Some (u, "")))
  | _ -> None

(* ---- D1 / D2: nondeterminism sources --------------------------------- *)

let wall_clock_members = [ "gettimeofday"; "time"; "gmtime"; "localtime"; "times" ]
let hash_members = [ "hash"; "seeded_hash"; "hash_param"; "randomize" ]

(* Does the argument list of a [Hashtbl.create] starting after token [i]
   (the [create] member) pass [~random:false]?  Looks a short window ahead. *)
let has_random_false tokens i =
  let found = ref false in
  for j = i to i + 8 do
    if
      tok_at tokens j = Some (Op "~")
      && tok_at tokens (j + 1) = Some (Ident "random")
      && tok_at tokens (j + 2) = Some (Op ":")
      && tok_at tokens (j + 3) = Some (Ident "false")
    then found := true
  done;
  !found

let check_nondeterminism ctx lx acc =
  let tokens = lx.tokens in
  let out = ref acc in
  Array.iteri
    (fun i { tok = _; line } ->
      match qualified tokens i with
      | Some ("Random", _) ->
          if ctx.in_lib then
            out :=
              diag ctx ~line ~rule:"D1" ~severity:Diag.Error
                "stdlib Random is banned in lib/ (all randomness must flow \
                 through Mppm_util.Rng)"
              :: !out
          else if ctx.rel <> "lib/util/rng.ml" then
            out :=
              diag ctx ~line ~rule:"D2" ~severity:Diag.Error
                "stdlib Random used outside Mppm_util.Rng; derive a seeded \
                 Mppm_util.Rng.t instead"
              :: !out
      | Some ("Sys", "time") when ctx.in_lib ->
          out :=
            diag ctx ~line ~rule:"D1" ~severity:Diag.Error
              "wall-clock read (Sys.time) in the model path breaks \
               bit-for-bit determinism"
            :: !out
      | Some ("Unix", m) when ctx.in_lib && List.mem m wall_clock_members ->
          out :=
            diag ctx ~line ~rule:"D1" ~severity:Diag.Error
              (Printf.sprintf
                 "wall-clock read (Unix.%s) in the model path breaks \
                  bit-for-bit determinism"
                 m)
            :: !out
      | Some ("Hashtbl", m) when ctx.in_lib && List.mem m hash_members ->
          out :=
            diag ctx ~line ~rule:"D1" ~severity:Diag.Error
              (Printf.sprintf
                 "Hashtbl.%s depends on the polymorphic hash; use \
                  Mppm_util.Fingerprint or an explicit key function"
                 m)
            :: !out
      | Some ("Hashtbl", "create")
        when ctx.in_lib && not (has_random_false tokens (i + 2)) ->
          out :=
            diag ctx ~line ~rule:"D1" ~severity:Diag.Error
              "Hashtbl.create without ~random:false: iteration order must \
               not depend on OCAMLRUNPARAM=R"
            :: !out
      | _ -> ())
    tokens;
  !out

(* ---- F1: float equality ----------------------------------------------- *)

let is_float_number = function
  | Some (Number { is_float = true; _ }) -> true
  | _ -> false

(* Index of the token preceding the operand whose last token is [j]
   (walks back over projections [a.b], indexing [a.(i)], parenthesised
   groups and [!] dereference).  [-1] when the operand opens the file or the
   walk fails (unbalanced parens). *)
let rec before_operand tokens j =
  if j < 0 then -1
  else
    let atom_start =
      match tok_at tokens j with
      | Some (Op ")") ->
          let depth = ref 0 and k = ref j and found = ref (-1) in
          while !found < 0 && !k >= 0 do
            (match tokens.(!k).tok with
            | Op ")" -> incr depth
            | Op "(" ->
                decr depth;
                if !depth = 0 then found := !k
            | _ -> ());
            decr k
          done;
          !found
      | Some (Ident _ | Uident _ | Number _ | Chr | Str _) -> j
      | _ -> -1
    in
    if atom_start < 0 then -1
    else
      match tok_at tokens (atom_start - 1) with
      | Some (Op ".") -> before_operand tokens (atom_start - 2)
      | Some (Op "!") -> atom_start - 2
      | _ -> atom_start - 1

(* Is the token at [p] something that starts a boolean/comparison context
   (rather than a let-binding, record field or labelled default)? *)
let comparison_start tokens p =
  match tok_at tokens p with
  | Some (Ident ("if" | "when" | "while" | "then" | "else" | "begin" | "not" | "do"))
    ->
      true
  | Some (Op ("&&" | "||" | "->")) -> true
  | Some (Op "(") -> tok_at tokens (p - 1) = Some (Ident "assert")
  | _ -> false

let float_eq_message op =
  Printf.sprintf
    "float equality via polymorphic %s: use Mppm_util.Stats.approx_equal \
     (or Float.equal when exact comparison is intended)"
    op

let check_float_equality ctx lx acc =
  let tokens = lx.tokens in
  let severity = if ctx.in_lib then Diag.Error else Diag.Warning in
  let out = ref acc in
  Array.iteri
    (fun i { tok; line } ->
      match tok with
      | Op (("=" | "==" | "<>" | "!=") as op) ->
          let right_float =
            is_float_number (tok_at tokens (i + 1))
            || (match tok_at tokens (i + 1) with
               | Some (Op ("-" | "-.")) -> is_float_number (tok_at tokens (i + 2))
               | _ -> false)
          in
          let left_float = is_float_number (tok_at tokens (i - 1)) in
          let flagged =
            (right_float
            && comparison_start tokens (before_operand tokens (i - 1)))
            || (left_float
               && comparison_start tokens (before_operand tokens (i - 1)))
          in
          if flagged then
            out :=
              diag ctx ~line ~rule:"F1" ~severity (float_eq_message op) :: !out
      | Ident "compare" when tok_at tokens (i - 1) <> Some (Op ".") ->
          let arg_float =
            is_float_number (tok_at tokens (i + 1))
            || is_float_number (tok_at tokens (i + 2))
            || is_float_number (tok_at tokens (i + 3))
          in
          if arg_float then
            out :=
              diag ctx ~line ~rule:"F1" ~severity (float_eq_message "compare")
              :: !out
      | _ -> ())
    tokens;
  !out

(* ---- M1: interface documentation -------------------------------------- *)

type item = { item_line : int; item_kind : string; item_name : string }

(* Top-level signature items of an .mli, with nesting tracked so items of
   inline module signatures are ignored. *)
let signature_items tokens =
  let depth = ref 0 in
  let items = ref [] in
  Array.iteri
    (fun i { tok; line } ->
      match tok with
      | Ident ("sig" | "struct" | "object" | "begin") -> incr depth
      | Ident "end" -> if !depth > 0 then decr depth
      | Ident (("val" | "external" | "type" | "exception") as kind)
        when !depth = 0 ->
          (* "type" can also appear in "module type" — skip that form. *)
          let after_module = tok_at tokens (i - 1) = Some (Ident "module") in
          (* In "type nonrec t" / "type 'a t", find the name loosely. *)
          let name =
            match tok_at tokens (i + 1) with
            | Some (Ident n) -> n
            | Some (Uident n) -> n
            | _ -> "_"
          in
          if not after_module then
            items := { item_line = line; item_kind = kind; item_name = name } :: !items
      | _ -> ())
    tokens;
  List.rev !items

let check_mli_docs ctx lx acc =
  if not (ctx.is_mli && (ctx.scope = Lib || ctx.scope = Testish)) then acc
  else
    let items = signature_items lx.tokens in
    let last_line =
      List.fold_left
        (fun m d -> max m d.doc_end)
        (Array.fold_left (fun m t -> max m t.line) 0 lx.tokens)
        lx.docs
    in
    let rec spans = function
      | [] -> []
      | [ it ] -> [ (it, last_line) ]
      | it :: (next :: _ as rest) ->
          (it, next.item_line - 1) :: spans rest
    in
    List.fold_left
      (fun acc (it, span_end) ->
        let documented =
          List.exists
            (fun d ->
              let gap = it.item_line - d.doc_end in
              (gap = 0 || gap = 1)
              || (d.doc_start >= it.item_line && d.doc_start <= span_end))
            lx.docs
        in
        if documented then acc
        else
          let severity =
            (* Interfaces under test/ and examples/ are held to the same
               documentation bar, but only advisorily. *)
            if ctx.scope = Testish then Diag.Warning
            else
              match it.item_kind with
              | "val" | "external" -> Diag.Error
              | _ -> Diag.Warning
          in
          diag ctx ~line:it.item_line ~rule:"M1" ~severity
            (Printf.sprintf "%s %s has no doc comment" it.item_kind
               it.item_name)
          :: acc)
      acc (spans items)

(* ---- E1: error message prefixes ---------------------------------------- *)

let check_error_prefixes ctx lx acc =
  if not ctx.in_lib then acc
  else
    let tokens = lx.tokens in
    let prefix_dot = ctx.module_name ^ "." in
    let prefix_colon = ctx.module_name ^ ":" in
    let starts_with p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    let out = ref acc in
    Array.iteri
      (fun i { tok; line } ->
        match tok with
        | Ident (("failwith" | "invalid_arg") as fn)
          when tok_at tokens (i - 1) <> Some (Op ".") -> (
            match tok_at tokens (i + 1) with
            | Some (Str s)
              when not (starts_with prefix_dot s || starts_with prefix_colon s)
              ->
                out :=
                  diag ctx ~line ~rule:"E1" ~severity:Diag.Error
                    (Printf.sprintf
                       "%s message %S must carry the module prefix (\"%s\" \
                        or \"%s\")"
                       fn s prefix_dot prefix_colon)
                  :: !out
            | _ -> ())
        | _ -> ())
      tokens;
    !out

(* ---- O1: console output in lib/ ---------------------------------------- *)

(* Bare stdlib channel printers.  [Format.pp_print_string ppf ...] is fine
   (the caller chose the formatter); writing straight to stdout/stderr from
   the model path is not. *)
let console_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes";
  ]

let console_message ctx what =
  Printf.sprintf
    "console output (%s) in %s: return data, render via a caller-supplied \
     formatter, or emit through an Mppm_obs sink"
    what
    (match ctx.scope with Lib -> "lib/" | _ -> "test/examples code")

let check_console_output ctx lx acc =
  if not (ctx.scope = Lib || ctx.scope = Testish) then acc
  else
    let severity = if ctx.scope = Lib then Diag.Error else Diag.Warning in
    let tokens = lx.tokens in
    let out = ref acc in
    Array.iteri
      (fun i { tok; line } ->
        match tok with
        | Ident id
          when List.mem id console_idents
               && tok_at tokens (i - 1) <> Some (Op ".") ->
            out :=
              diag ctx ~line ~rule:"O1" ~severity (console_message ctx id)
              :: !out
        | _ -> (
            match qualified tokens i with
            | Some ((("Printf" | "Format") as u), (("printf" | "eprintf") as m))
              ->
                out :=
                  diag ctx ~line ~rule:"O1" ~severity
                    (console_message ctx (u ^ "." ^ m))
                  :: !out
            | Some ("Format", (("std_formatter" | "err_formatter") as m)) ->
                out :=
                  diag ctx ~line ~rule:"O1" ~severity
                    (console_message ctx ("Format." ^ m))
                  :: !out
            | _ -> ()))
      tokens;
    !out

(* ---- dune files -------------------------------------------------------- *)

let check_dune ~rel content =
  let in_lib = String.length rel >= 4 && String.sub rel 0 4 = "lib/" in
  if not in_lib then []
  else
    let lines = String.split_on_char '\n' content in
    let is_word_char c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      || c = '_'
    in
    let has_word line w =
      let n = String.length line and k = String.length w in
      let rec go i =
        if i + k > n then false
        else if
          String.sub line i k = w
          && (i = 0 || not (is_word_char line.[i - 1]))
          && (i + k = n || not (is_word_char line.[i + k]))
        then true
        else go (i + 1)
      in
      go 0
    in
    List.concat
      (List.mapi
         (fun idx line ->
           if has_word line "unix" then
             [
               {
                 Diag.file = rel;
                 line = idx + 1;
                 rule = "D1";
                 severity = Diag.Error;
                 message =
                   "lib/ libraries must not link unix (wall-clock and \
                    process state are banned from the model path)";
               };
             ]
           else [])
         lines)

let missing_mli ~rel_ml =
  let ctx = context_of_rel rel_ml in
  diag ctx ~line:1 ~rule:"M1" ~severity:Diag.Error
    (Printf.sprintf "public module %s has no .mli interface" ctx.module_name)

(* ---- entry point -------------------------------------------------------- *)

let check_tokens ctx lx =
  let acc = [] in
  let acc = check_nondeterminism ctx lx acc in
  let acc = if ctx.is_mli then acc else check_float_equality ctx lx acc in
  let acc = check_mli_docs ctx lx acc in
  let acc = if ctx.is_mli then acc else check_error_prefixes ctx lx acc in
  let acc = if ctx.is_mli then acc else check_console_output ctx lx acc in
  List.sort Diag.compare acc
