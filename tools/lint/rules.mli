(** The lint rules.

    Rule ids (each suppressible at a finding's line, or the line above it,
    with a [(* lint: allow <rule> *)] comment):

    - [D1] — nondeterminism sources banned in [lib/]: the stdlib [Random]
      module, wall-clock reads ([Sys.time], [Unix.gettimeofday], ...),
      [Hashtbl.hash]-family functions, and [Hashtbl.create] without an
      explicit [~random:false].  Also flags [lib/] dune files linking the
      [unix] library.
    - [D2] — stdlib [Random] used outside [lib/util/rng.ml] anywhere in the
      scanned tree: all randomness must flow through [Mppm_util.Rng].
    - [F1] — float equality via polymorphic [=]/[==]/[<>]/[!=]/[compare]
      against a float literal in comparison position; use
      [Mppm_util.Stats.approx_equal] (or [Float.equal] when exactness is
      intended).
    - [M1] — every public module under [lib/] has an [.mli], and every
      [val]/[external] item of a [lib/] [.mli] carries a doc comment
      ([type]/[exception] items get warnings).
    - [E1] — [failwith]/[invalid_arg] in [lib/] code with a literal message
      must prefix the message with the module name ("Model.predict: ..." or
      "Metrics: ...").
    - [O1] — no console output from [lib/]: bare channel printers
      ([print_string], [prerr_endline], ...), [Printf.printf]/[eprintf],
      [Format.printf]/[eprintf], and [Format.std_formatter]/
      [err_formatter] are banned.  Library code returns data, renders
      through a caller-supplied formatter, or emits through an
      [Mppm_obs] sink. *)

type scope = Lib | Exec | Testish
(** Where a file lives, which decides rule applicability and severity:
    [Lib] is [lib/]; [Testish] is [test/] and [examples/], where [M1] and
    [O1] downgrade to warnings; [Exec] is everything else ([bin/],
    [bench/], [tools/]). *)

type ctx = {
  rel : string;  (** root-relative path, '/'-separated *)
  scope : scope;  (** see {!scope} *)
  in_lib : bool;  (** true when [scope] is [Lib] *)
  is_mli : bool;
  module_name : string;  (** capitalized basename, e.g. ["Model"] *)
}

val all_rule_ids : string list
(** The known rule identifiers across both analysis layers, in report
    order (an alias for {!Rule_info.all_ids}). *)

val context_of_rel : string -> ctx
(** Derive a {!ctx} from a root-relative path. *)

val check_tokens : ctx -> Lexer.lexed -> Diag.t list
(** Run every token-level rule applicable to [ctx] over one lexed file.
    Suppression comments are {e not} applied here (see
    {!Engine.lint_source}). *)

val check_dune : rel:string -> string -> Diag.t list
(** Rules for [dune] files: [lib/] libraries must not link [unix] (D1). *)

val missing_mli : rel_ml:string -> Diag.t
(** The M1 diagnostic for a [lib/] module lacking an [.mli]. *)
