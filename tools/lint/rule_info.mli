(** Registry of every lint rule across both analysis layers.

    The token layer ([Rules], over {!Lexer} output) and the AST layer
    ([Mppm_sema], over compiler-libs parse trees) share one diagnostic
    stream, one suppression syntax and one output format; this module is
    the single list of rule ids and descriptions both layers and the
    SARIF renderer agree on. *)

type t = {
  id : string;  (** rule identifier, e.g. ["D1"] or ["S2"] *)
  layer : string;  (** ["token"] or ["ast"] *)
  summary : string;  (** one-sentence description, used in SARIF rules *)
}

val all : t list
(** Every known rule in report order.  SARIF [ruleIndex] values index into
    this list, so the order is stable and golden-tested. *)

val all_ids : string list
(** The ids of {!all}, in the same order. *)

val find : string -> t option
(** Look a rule up by id. *)
