(** Applies the rules to sources, files and whole trees, and filters
    findings through [(* lint: allow <rule> *)] suppression comments. *)

val lint_source : rel:string -> string -> Diag.t list
(** [lint_source ~rel content] lints one [.ml]/[.mli] source given as a
    string.  [rel] is the root-relative path the rules use to decide
    applicability (lib-ness, module name).  Suppressions are applied: a
    finding is dropped when an allow comment for its rule sits on the same
    line or the line above. *)

val lint_dune : rel:string -> string -> Diag.t list
(** [lint_dune ~rel content] lints one dune file given as a string. *)

val lint_file : root:string -> rel:string -> Diag.t list
(** Read and lint one file ([.ml], [.mli] or [dune]) under [root]. *)

val scanned_dirs : string list
(** The top-level directories a tree lint walks: [lib], [bin], [bench],
    [tools]. *)

val lint_tree : root:string -> Diag.t list
(** Walk {!scanned_dirs} under [root] (skipping [_build], [_profile_cache]
    and dot-directories), lint every [.ml]/[.mli]/[dune] file, check that
    every [lib/] module with an implementation has an interface, and return
    all findings sorted by file and line. *)

val errors : Diag.t list -> Diag.t list
(** The error-severity subset of a report. *)
