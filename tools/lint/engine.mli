(** Applies the token-layer rules to sources, files and whole trees, and
    filters findings through [(* lint: allow <rule> *)] /
    [(* lint: allow-file <rule> *)] suppression comments.  The AST layer
    ([Mppm_sema]) reuses {!normalize_rel}, {!collect_tree}, {!read_file}
    and {!suppress} so both layers agree on paths and suppression
    semantics. *)

val normalize_rel : string -> string
(** Canonicalize a root-relative path: strip leading ["./"] segments and
    use ['/'] separators, so diagnostics, SARIF locations and editors all
    see the same stable path whatever form the caller passed. *)

val suppress :
  allows:(string * int) list -> allow_files:string list -> Diag.t list ->
  Diag.t list
(** [suppress ~allows ~allow_files diags] drops every finding whose rule is
    allowed for the whole file, or allowed on the finding's line or the
    line above it. *)

val lint_source : rel:string -> string -> Diag.t list
(** [lint_source ~rel content] lints one [.ml]/[.mli] source given as a
    string.  [rel] is the root-relative path the rules use to decide
    applicability (scope, module name).  Suppressions are applied. *)

val lint_dune : rel:string -> string -> Diag.t list
(** [lint_dune ~rel content] lints one dune file given as a string. *)

val read_file : string -> string
(** Read a whole file as bytes. *)

val lint_file : root:string -> rel:string -> Diag.t list
(** Read and lint one file ([.ml], [.mli] or [dune]) under [root]. *)

val scanned_dirs : string list
(** The top-level directories a tree lint walks: [lib], [bin], [bench],
    [tools], [test], [examples]. *)

val collect_tree : root:string -> string list
(** Root-relative paths of every lintable file under {!scanned_dirs},
    sorted for deterministic reports (skipping [_build], [_profile_cache]
    and dot-directories). *)

val lint_tree : root:string -> Diag.t list
(** Walk {!collect_tree}, lint every [.ml]/[.mli]/[dune] file, check that
    every [lib/] module with an implementation has an interface, and return
    all findings sorted by file and line. *)

val errors : Diag.t list -> Diag.t list
(** The error-severity subset of a report. *)
