(* benchdiff: compare two bench timing reports (BENCH_*.json, schema
   mppm-bench/2 or the legacy mppm-bench-timings/1) phase by phase.

   Exit codes: 0 = no regression, 1 = at least one phase regressed
   (suppressed by --warn-only, for CI jobs that only report), 2 = bad
   input.  All comparison logic lives in Mppm_obs.Bench_report so it is
   unit-tested; this file only does argv, file reading and exit codes. *)

module Bench_report = Mppm_obs.Bench_report

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Bench_report.of_json text with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let run baseline current threshold min_seconds format warn_only =
  match (load baseline, load current) with
  | Error msg, _ | _, Error msg ->
      prerr_endline ("benchdiff: " ^ msg);
      2
  | Ok base, Ok cur ->
      let d = Bench_report.diff ~threshold ~min_seconds ~baseline:base
          ~current:cur ()
      in
      (match format with
      | `Text -> Format.printf "%a@." Bench_report.pp_text d
      | `Markdown -> Format.printf "%a@." Bench_report.pp_markdown d
      | `Json -> print_string (Bench_report.diff_to_json d));
      if Bench_report.has_regression d && not warn_only then 1 else 0

open Cmdliner

let baseline =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BASELINE" ~doc:"Baseline report (e.g. BENCH_seed.json).")

let current =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"CURRENT" ~doc:"Current report (e.g. BENCH_model.json).")

let threshold =
  Arg.(
    value & opt float 0.10
    & info [ "threshold" ]
        ~doc:
          "Regression threshold as a fraction: a phase fails when \
           current/baseline exceeds 1 + $(docv).")

let min_seconds =
  Arg.(
    value & opt float 0.05
    & info [ "min-seconds" ]
        ~doc:
          "Ignore phases where both sides run shorter than $(docv) \
           seconds (timing noise).")

let format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("markdown", `Markdown); ("json", `Json) ])
        `Text
    & info [ "format" ] ~doc:"Output format: $(b,text), $(b,markdown) or \
                              $(b,json).")

let warn_only =
  Arg.(
    value & flag
    & info [ "warn-only" ]
        ~doc:"Report regressions but exit 0 anyway (CI advisory mode).")

let cmd =
  let doc = "Compare two mppm bench timing reports and flag regressions." in
  Cmd.v
    (Cmd.info "benchdiff" ~doc ~exits:
       [
         Cmd.Exit.info 0 ~doc:"no regression (or --warn-only)";
         Cmd.Exit.info 1 ~doc:"at least one phase regressed";
         Cmd.Exit.info 2 ~doc:"unreadable or malformed report";
       ])
    Term.(
      const run $ baseline $ current $ threshold $ min_seconds $ format
      $ warn_only)

let () = exit (Cmd.eval' cmd)
