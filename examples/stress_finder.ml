(* lint: allow-file O1 example programs print their results to stdout by design *)
(* Stress-workload identification (Sec. 6): sweep a large population of
   mixes with MPPM, surface the worst-STP workloads, then confirm the top
   few with detailed simulation.

   Run with:  dune exec examples/stress_finder.exe *)

module Model = Mppm_core.Model
module Mix = Mppm_workload.Mix
module Sampler = Mppm_workload.Sampler
open Mppm_experiments

let population = 600
let cores = 4
let confirm = 5

let () =
  let ctx = Context.create ~cache_dir:"_profile_cache" Scale.default in
  let rng = Context.rng ctx "stress-finder" in
  let mixes = Sampler.distinct_random_mixes rng ~cores ~count:population in
  Printf.printf "MPPM-screening %d distinct %d-core mixes for stress...\n%!"
    population cores;
  let scored =
    Array.map
      (fun mix -> (mix, Context.predict ctx ~llc_config:1 mix))
      mixes
  in
  Array.sort
    (fun (_, a) (_, b) -> compare a.Model.stp b.Model.stp)
    scored;
  Printf.printf "\npredicted worst mixes (lowest STP):\n";
  Array.iteri
    (fun i (mix, r) ->
      if i < 10 then
        Printf.printf "  %2d. %-44s STP %.3f ANTT %.3f\n" (i + 1)
          (Mix.to_string mix) r.Model.stp r.Model.antt)
    scored;
  (* Count how often each benchmark appears in the worst decile: the
     paper's Sec. 6 analysis identifying gamess as the sensitive one. *)
  let decile = population / 10 in
  let counts = Hashtbl.create 32 in
  Array.iteri
    (fun i (mix, _) ->
      if i < decile then
        Array.iter
          (fun name ->
            Hashtbl.replace counts name
              (1 + Option.value (Hashtbl.find_opt counts name) ~default:0))
          (Mix.names mix))
    scored;
  Printf.printf "\nbenchmarks over-represented in the worst decile:\n";
  Hashtbl.fold (fun name c acc -> (c, name) :: acc) counts []
  |> List.sort compare |> List.rev
  |> List.iteri (fun i (c, name) ->
         if i < 6 then Printf.printf "  %-12s %d appearances\n" name c);
  (* Confirm the top few with detailed simulation. *)
  Printf.printf "\nconfirming the %d worst with detailed simulation:\n%!"
    confirm;
  Array.iteri
    (fun i (mix, predicted) ->
      if i < confirm then begin
        let measured = Context.detailed ctx ~llc_config:1 mix in
        Printf.printf "  %-44s predicted STP %.3f, measured %.3f\n%!"
          (Mix.to_string mix) predicted.Model.stp measured.Context.m_stp
      end)
    scored
