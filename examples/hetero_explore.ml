(* lint: allow-file O1 example programs print their results to stdout by design *)
(* Heterogeneous multi-core exploration — one of the paper's Sec. 8 future
   directions.  A "little" core is modelled by dilating the non-memory part
   of a program's profiled CPI (memory stall cycles are hierarchy-bound and
   stay); MPPM then resolves the shared-LLC entanglement between big and
   little cores exactly as in the homogeneous case, because the model only
   sees per-program profiles.  The detailed simulator supports the same
   heterogeneity (per-core compute scaling), so the winning placement is
   verified at the end.

   The experiment: for each big/little assignment of a 4-program mix, which
   placement maximizes STP?

   Run with:  dune exec examples/hetero_explore.exe *)

module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
open Mppm_experiments

(* Dilate the compute portion of each interval's cycles: a core with half
   the issue width roughly doubles base CPI while memory time is
   unchanged. *)
let on_little_core ~slowdown (p : Profile.t) =
  let intervals =
    Array.map
      (fun iv ->
        let compute = iv.Profile.cycles -. iv.Profile.memory_stall_cycles in
        {
          iv with
          Profile.cycles =
            (compute *. slowdown) +. iv.Profile.memory_stall_cycles;
        })
      p.Profile.intervals
  in
  { p with Profile.intervals }

let mix_names = [| "gamess"; "mcf"; "hmmer"; "libquantum" |]
let little_slowdown = 2.0
let little_cores = 2

let rec choose k lo n =
  if k = 0 then [ [] ]
  else
    List.concat_map
      (fun i -> List.map (fun rest -> i :: rest) (choose (k - 1) (i + 1) n))
    @@ List.init (n - lo) (fun d -> lo + d)

let () =
  let ctx = Context.create ~cache_dir:"_profile_cache" Scale.default in
  (* Profiles in mix_names order (deliberately not via Mix.t, which sorts):
     placement indices must line up with the verification run's per-slot
     compute scales. *)
  let base_profiles =
    Array.map
      (fun name ->
        Context.profile ctx ~llc_config:1 (Mppm_trace.Suite.index name))
      mix_names
  in
  let params = Context.model_params ctx in
  let n = Array.length base_profiles in
  Printf.printf
    "placing %d programs on %d big + %d little cores (little = %.1fx compute \
     slowdown)\n\n%!"
    n (n - little_cores) little_cores little_slowdown;
  let big_cpi = Array.map Profile.cpi base_profiles in
  (* Rank placements by throughput in big-core equivalents: each program's
     predicted multi-core CPI (little-core baseline included) against its
     big-core isolated CPI — the machine-level question a placement study
     asks.  (result.stp would instead measure contention relative to each
     program's own core.) *)
  let hetero_stp (result : Model.result) =
    Array.to_list result.Model.programs
    |> List.mapi (fun i p -> big_cpi.(i) /. p.Model.cpi_multi)
    |> List.fold_left ( +. ) 0.0
  in
  let assignments = choose little_cores 0 n in
  let scored =
    List.map
      (fun little ->
        let inputs =
          Array.mapi
            (fun i p ->
              let is_little = List.mem i little in
              {
                Model.label =
                  Printf.sprintf "%s@%s" p.Profile.benchmark
                    (if is_little then "little" else "big");
                profile =
                  (if is_little then
                     on_little_core ~slowdown:little_slowdown p
                   else p);
              })
            base_profiles
        in
        let result = Model.predict params inputs in
        (little, result, hetero_stp result))
      assignments
  in
  let scored =
    List.sort (fun (_, _, a) (_, _, b) -> compare b a) scored
  in
  List.iteri
    (fun rank (little, result, stp) ->
      let names =
        List.map (fun i -> base_profiles.(i).Profile.benchmark) little
      in
      Printf.printf
        "%d. little = {%s}  STP %.3f (big-core equivalents)  contention ANTT          %.3f\n"
        (rank + 1)
        (String.concat ", " names)
        stp result.Model.antt)
    scored;
  (* Verify the MPPM ranking's extremes with heterogeneous detailed
     simulation. *)
  let scale = Context.scale ctx in
  let verify little =
    let offsets =
      Mppm_multicore.Multi_core.default_offsets (Array.length mix_names)
    in
    let specs =
      Array.mapi
        (fun i name ->
          {
            Mppm_multicore.Multi_core.benchmark = Mppm_trace.Suite.find name;
            seed = Mppm_trace.Suite.seed_for name;
            offset = offsets.(i);
          })
        mix_names
    in
    let compute_scales =
      Array.init (Array.length mix_names) (fun i ->
          if List.mem i little then little_slowdown else 1.0)
    in
    let detail =
      Mppm_multicore.Multi_core.run ~compute_scales
        (Mppm_multicore.Multi_core.config (Context.hierarchy ctx ~llc_config:1))
        ~programs:specs
        ~trace_instructions:scale.Scale.trace_instructions
    in
    (* STP against the *big-core* isolated CPI: the placement question is
       how much total progress the heterogeneous machine retains. *)
    let cpi_single = Array.map Profile.cpi base_profiles in
    let cpi_multi =
      Array.map
        (fun p -> p.Mppm_multicore.Multi_core.multicore_cpi)
        detail.Mppm_multicore.Multi_core.programs
    in
    Mppm_core.Metrics.stp ~cpi_single ~cpi_multi
  in
  match (scored, List.rev scored) with
  | (best, _, best_stp) :: _, (worst, _, worst_stp) :: _ ->
      let names little =
        String.concat ", "
          (List.map (fun i -> base_profiles.(i).Profile.benchmark) little)
      in
      Printf.printf
        "\nbest placement puts {%s} on the little cores: programs whose CPI\n\
         is dominated by stalls a slower core does not lengthen.\n"
        (names best);
      Printf.printf "\nverifying with heterogeneous detailed simulation:\n%!";
      Printf.printf "  best  {%s}: predicted STP %.3f, measured %.3f\n%!"
        (names best) best_stp (verify best);
      Printf.printf "  worst {%s}: predicted STP %.3f, measured %.3f\n%!"
        (names worst) worst_stp (verify worst)
  | _ -> ()
