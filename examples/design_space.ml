(* lint: allow-file O1 example programs print their results to stdout by design *)
(* Design-space exploration: rank the six Table 2 LLC configurations by
   mean STP over a large MPPM-predicted workload population — the study
   that is infeasible with detailed simulation (Sec. 5) — and report
   confidence bounds on each configuration's mean.

   Run with:  dune exec examples/design_space.exe *)

module Stats = Mppm_util.Stats
module Configs = Mppm_cache.Configs
module Model = Mppm_core.Model
module Mix = Mppm_workload.Mix
module Sampler = Mppm_workload.Sampler
open Mppm_experiments

let population = 400
let cores = 4

let () =
  let ctx = Context.create ~cache_dir:"_profile_cache" Scale.default in
  let rng = Context.rng ctx "design-space" in
  let mixes = Sampler.random_mixes rng ~cores ~count:population in
  Printf.printf
    "ranking %d LLC configurations over %d random %d-core mixes (MPPM)\n%!"
    Configs.llc_config_count population cores;
  let evaluate cfg =
    (* Profiling each benchmark on config #cfg happens once, then every
       prediction is analytical. *)
    let stps =
      Array.map
        (fun mix -> (Context.predict ctx ~llc_config:cfg mix).Model.stp)
        mixes
    in
    let antts =
      Array.map
        (fun mix -> (Context.predict ctx ~llc_config:cfg mix).Model.antt)
        mixes
    in
    (cfg, Stats.confidence_interval stps, Stats.confidence_interval antts)
  in
  let rows =
    Array.init Configs.llc_config_count (fun i -> evaluate (i + 1))
  in
  let by_stp = Array.copy rows in
  Array.sort
    (fun (_, a, _) (_, b, _) -> compare b.Stats.mean a.Stats.mean)
    by_stp;
  Printf.printf "\n%-10s %22s %22s\n" "rank" "STP (95% CI)" "ANTT (95% CI)";
  Array.iteri
    (fun rank (cfg, stp, antt) ->
      Printf.printf "%d. %-7s %10.3f +/- %-6.3f %10.3f +/- %-6.3f\n"
        (rank + 1)
        (Configs.llc_config_name cfg)
        stp.Stats.mean stp.Stats.half_width antt.Stats.mean
        antt.Stats.half_width)
    by_stp;
  let best, _, _ = by_stp.(0) in
  Printf.printf
    "\nbest configuration by mean STP: %s\n\
     (note the overlapping confidence intervals between neighbours — the\n\
     reason a dozen random mixes cannot rank these reliably, Sec. 5)\n"
    (Configs.llc_config_name best)
