(* lint: allow-file O1 example programs print their results to stdout by design *)
(* Quickstart: profile four benchmarks, predict a quad-core mix with MPPM,
   and check the prediction against detailed simulation.

   Run with:  dune exec examples/quickstart.exe *)

module Suite = Mppm_trace.Suite
module Configs = Mppm_cache.Configs
module Single_core = Mppm_simcore.Single_core
module Multi_core = Mppm_multicore.Multi_core
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics

let () =
  (* 1. The machine: Table 1 hierarchy with the 512KB 8-way shared LLC. *)
  let hierarchy = Configs.baseline () in

  (* 2. One-time cost: single-core profiling of each benchmark in the mix.
     Intervals of trace/50 instructions capture time-varying behaviour. *)
  let trace = 2_000_000 in
  let interval = trace / 50 in
  let names = [| "gamess"; "gamess"; "hmmer"; "soplex" |] in
  Printf.printf "profiling %d benchmarks (one-time cost)...\n%!"
    (Array.length names);
  let profiles =
    Array.map
      (fun name ->
        let p =
          Single_core.profile
            (Single_core.config hierarchy)
            ~benchmark:(Suite.find name) ~seed:(Suite.seed_for name)
            ~trace_instructions:trace ~interval_instructions:interval
        in
        Format.printf "  %a@." Profile.pp_summary p;
        p)
      names
  in

  (* 3. MPPM: the analytical model predicts the mix in well under a
     second. *)
  let params = Model.default_params ~trace_instructions:trace in
  let predicted = Model.predict_profiles params profiles in
  Printf.printf "\nMPPM prediction (%d iterations of the Fig. 2 loop):\n"
    predicted.Model.iterations;
  Array.iter
    (fun p ->
      Printf.printf "  %-10s slowdown %.3f (CPI %.3f -> %.3f)\n" p.Model.name
        p.Model.slowdown p.Model.cpi_single p.Model.cpi_multi)
    predicted.Model.programs;
  Printf.printf "  STP = %.3f, ANTT = %.3f\n%!" predicted.Model.stp
    predicted.Model.antt;

  (* 4. The expensive way: detailed multi-core simulation of the same mix
     (the reference MPPM is meant to replace). *)
  Printf.printf "\nrunning detailed simulation for comparison...\n%!";
  let offsets = Multi_core.default_offsets (Array.length names) in
  let detailed =
    Multi_core.run
      (Multi_core.config hierarchy)
      ~programs:
        (Array.mapi
           (fun i name ->
             {
               Multi_core.benchmark = Suite.find name;
               seed = Suite.seed_for name;
               offset = offsets.(i);
             })
           names)
      ~trace_instructions:trace
  in
  let cpi_single = Array.map Profile.cpi profiles in
  let cpi_multi =
    Array.map (fun p -> p.Multi_core.multicore_cpi) detailed.Multi_core.programs
  in
  let stp = Metrics.stp ~cpi_single ~cpi_multi in
  let antt = Metrics.antt ~cpi_single ~cpi_multi in
  Printf.printf "  measured STP = %.3f, ANTT = %.3f\n" stp antt;
  Printf.printf "\nprediction error: STP %.1f%%, ANTT %.1f%%\n"
    (100.0 *. abs_float (predicted.Model.stp -. stp) /. stp)
    (100.0 *. abs_float (predicted.Model.antt -. antt) /. antt)
