(* The benchmark harness: regenerates every table and figure of the paper.

   Sections (selectable with --only):
     table1 table2     the simulated machine
     fig3              variability vs number of workload mixes
     fig4 fig5         MPPM accuracy scatter + average errors (2/4/8/16 cores)
     fig6              CPI breakdown of the worst-STP mix
     fig7 fig8         debunking current practice (config ranking)
     fig9              stress-workload identification
     speed             Sec. 4.3 MPPM vs detailed simulation
     ablation          contention model / update rule / smoothing / L sweeps
                       + the static (phase-unaware) baseline
     derivation        reduced-associativity profile derivation (Sec. 2)
     partition         way-partitioned LLC vs the Way_partition model
     bandwidth         shared memory channel vs the M/D/1 queueing term
     cophase           the co-phase matrix baseline (Sec. 7)
     simpoint          SimPoint-style profile quantization
     micro             Bechamel micro-benchmarks (one per table/figure kernel)

   The default sizes finish in roughly 30-40 minutes on a laptop-class
   machine; --paper uses the paper's population sizes (hours). *)

module Core_model = Mppm_simcore.Core_model
module Contention = Mppm_contention.Contention
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Profile = Mppm_profile.Profile
module Stats = Mppm_util.Stats
module Mix = Mppm_workload.Mix
module Sampler = Mppm_workload.Sampler
module Pool = Mppm_pool.Pool
module Single_flight = Mppm_pool.Single_flight
open Mppm_experiments

let section title =
  Printf.printf "\n================ %s ================\n%!" title

let std = Format.std_formatter

(* The wall-clock profiler behind phase spans, the pool's task metrics
   and the timing report.  The clock stays in bench/ (and tools/): lib/
   is wall-clock-free by lint rule D1, so [Mppm_obs.Prof] takes the
   clock as an argument and this harness injects [Unix.gettimeofday].
   Profiling never changes results — everything the model computes stays
   bit-for-bit deterministic (asserted elsewhere). *)
module Prof = Mppm_obs.Prof
module Obs_event = Mppm_obs.Event
module Render = Mppm_obs.Render

let prof = Prof.make ~clock:Unix.gettimeofday

let phase name f =
  let t0 = Unix.gettimeofday () in
  let result = Prof.time prof name f in
  Printf.printf "[%s: %.1fs]\n%!" name (Unix.gettimeofday () -. t0);
  result

(* The current commit, for the bench report (timings are only comparable
   when the reader knows what code produced them). *)
let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> None
  | ic ->
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      (match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> (match line with Some "" -> None | l -> l)
      | _ | (exception _) -> None)

(* The per-phase wall-time report (schema mppm-bench/2): one JSON object
   per run, so CI can archive BENCH_model.json and tools/benchdiff.exe
   can compare harness cost across commits. *)
let write_bench_json ~path ~trace ~mixes ~seed ~jobs ~paper_scale ~only ~total =
  let report =
    Mppm_obs.Bench_report.of_prof ?git_rev:(git_rev ())
      ~params:
        Mppm_obs.Bench_report.
          [
            ("trace", Int trace);
            ("mixes", Int mixes);
            ("seed", Int seed);
            ("jobs", Int jobs);
            ("paper", Bool paper_scale);
            ("only", Strings only);
          ]
      ~total prof
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Mppm_obs.Bench_report.to_json report));
  Printf.printf "phase timings written to %s\n%!" path

(* --trace-phases: the run's wall-clock timeline as a Chrome trace_event
   file — phase spans on the top lane, every pool task on the lane of
   the worker domain that ran it (queue wait in args).  Complements the
   virtual-cycle model trace (bin/mppm --trace): this one profiles the
   harness, that one the model. *)
let write_phase_trace ~path prof =
  let spans = Prof.spans prof and tasks = Prof.tasks prof in
  let t0 =
    List.fold_left
      (fun acc (s : Prof.span) -> Float.min acc s.Prof.sp_start)
      (List.fold_left
         (fun acc (tk : Prof.task) -> Float.min acc tk.Prof.tk_start)
         infinity tasks)
      spans
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let us x = (x -. t0) *. 1e6 in
  let events =
    List.map
      (fun (s : Prof.span) ->
        Obs_event.make ~name:s.Prof.sp_name ~time:(us s.Prof.sp_start)
          ~dur:(s.Prof.sp_dur *. 1e6)
          [ ("alloc_bytes", Obs_event.Float s.Prof.sp_alloc_bytes) ])
      spans
    @ List.map
        (fun (tk : Prof.task) ->
          Obs_event.make ~name:"pool.task" ~time:(us tk.Prof.tk_start)
            ~dur:(tk.Prof.tk_dur *. 1e6)
            [
              ("domain", Obs_event.Int tk.Prof.tk_domain);
              ("wait_us", Obs_event.Float (tk.Prof.tk_wait *. 1e6));
            ])
        tasks
  in
  let events =
    List.sort
      (fun a b -> Float.compare a.Obs_event.time b.Obs_event.time)
      events
  in
  (* Lane 0 holds the phase spans; pool tasks go to worker lane + 1. *)
  let lane ev =
    match Obs_event.int_field ev "domain" with Some d -> d + 1 | None -> 0
  in
  let r = Render.chrome ~lane () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Render.to_string r events));
  Printf.printf "phase trace written to %s\n%!" path

(* A per-mix callback for Accuracy.evaluate: one carriage-return progress
   line with elapsed time and a linear ETA.  Pool workers complete tasks
   out of order, so every reporter funnels through one mutex and [done_]
   counts completed tasks (monotonic) rather than task indices — the \r
   line never interleaves or runs backwards. *)
let progress_mutex = Mutex.create ()

let progress_eta label =
  let t0 = Unix.gettimeofday () in
  fun ~done_ ~total ->
    Mutex.lock progress_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock progress_mutex)
      (fun () ->
        let elapsed = Unix.gettimeofday () -. t0 in
        let eta =
          if done_ = 0 then 0.0
          else elapsed /. float_of_int done_ *. float_of_int (total - done_)
        in
        Printf.printf "\r%-24s %3d/%d mixes  %4.0fs elapsed  ETA %4.0fs %!"
          label done_ total elapsed eta;
        if done_ >= total then print_newline ())

(* Optional CSV export of figure data (--csv DIR). *)
let csv_dir : string option ref = ref None

let csv_write name header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir name) in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (header ^ "\n");
          List.iter (fun row -> output_string oc (row ^ "\n")) rows)

let csv_points name points =
  csv_write name "predicted,measured"
    (Array.to_list
       (Array.map (fun (p, m) -> Printf.sprintf "%.6f,%.6f" p m) points))

(* ------------------------------------------------------------------ *)
(* Experiment sections                                                  *)
(* ------------------------------------------------------------------ *)

let run_tables () =
  section "Table 1 & 2: simulated machine";
  Tables.pp_table1 std Core_model.default;
  Tables.pp_table2 std ()

let run_fig3 ctx ~pool ~mixes =
  section "Fig. 3: variability vs number of workload mixes";
  let t = Variability.run ctx ~pool ~max_mixes:(max 150 mixes) ~step:10 () in
  Variability.pp std t;
  csv_write "fig3_variability.csv"
    "mixes,stp_mean,stp_half_width,antt_mean,antt_half_width"
    (List.map
       (fun p ->
         Printf.sprintf "%d,%.6f,%.6f,%.6f,%.6f" p.Variability.mixes
           p.Variability.stp.Stats.mean p.Variability.stp.Stats.half_width
           p.Variability.antt.Stats.mean p.Variability.antt.Stats.half_width)
       t.Variability.points);
  let rel metric =
    t.Variability.points
    |> List.map (fun p -> 100.0 *. Stats.relative_half_width (metric p))
    |> Array.of_list
  in
  print_string
    (Mppm_util.Ascii_plot.series ~x_label:"point # (10 mixes per step)"
       ~y_label:"95% CI half-width, % of mean"
       [
         ("STP", rel (fun p -> p.Variability.stp));
         ("ANTT", rel (fun p -> p.Variability.antt));
       ])

let run_accuracy ctx ~pool ~mixes ~sixteen_core_mixes =
  section "Fig. 4 & 5: MPPM accuracy vs detailed simulation";
  let runs =
    List.map
      (fun cores ->
        let label = Printf.sprintf "%d cores" cores in
        phase label (fun () ->
            Accuracy.evaluate ~on_mix:(progress_eta label) ~pool ctx
              ~llc_config:1 ~cores ~count:mixes))
      [ 2; 4; 8 ]
  in
  let runs =
    if sixteen_core_mixes > 0 then begin
      let label = "16 cores (config #4)" in
      let run =
        phase label (fun () ->
            Accuracy.evaluate ~on_mix:(progress_eta label) ~pool ctx
              ~llc_config:4 ~cores:16 ~count:sixteen_core_mixes)
      in
      runs @ [ run ]
    end
    else runs
  in
  List.iter
    (fun run ->
      Accuracy.pp_run_summary std run;
      Format.pp_print_newline std ())
    runs;
  (* Render the quad-core scatters as plots (the paper's Fig. 4 panels). *)
  (match List.find_opt (fun r -> r.Accuracy.cores = 4) runs with
  | Some run ->
      Printf.printf "\nFig.4a, 4 cores: predicted (x) vs measured (y) STP\n";
      print_string
        (Mppm_util.Ascii_plot.scatter ~diagonal:true ~x_label:"predicted STP"
           ~y_label:"measured STP" (Accuracy.scatter_stp run));
      Printf.printf "\nFig.5, 4 cores: predicted vs measured per-program slowdown\n";
      print_string
        (Mppm_util.Ascii_plot.scatter ~diagonal:true
           ~x_label:"predicted slowdown" ~y_label:"measured slowdown"
           (Accuracy.scatter_slowdown run))
  | None -> ());
  List.iter
    (fun run ->
      let c = run.Accuracy.cores in
      csv_points (Printf.sprintf "fig4a_stp_%dcores.csv" c)
        (Accuracy.scatter_stp run);
      csv_points (Printf.sprintf "fig4b_antt_%dcores.csv" c)
        (Accuracy.scatter_antt run);
      csv_points (Printf.sprintf "fig5_slowdown_%dcores.csv" c)
        (Accuracy.scatter_slowdown run))
    runs;
  List.iter
    (fun run ->
      if run.Accuracy.cores <= 8 then begin
        Accuracy.pp_scatter
          ~label:
            (Printf.sprintf "Fig.4a STP scatter, %d cores" run.Accuracy.cores)
          std (Accuracy.scatter_stp run);
        Accuracy.pp_scatter
          ~label:
            (Printf.sprintf "Fig.4b ANTT scatter, %d cores" run.Accuracy.cores)
          std (Accuracy.scatter_antt run);
        Accuracy.pp_scatter
          ~label:
            (Printf.sprintf "Fig.5 per-program slowdown scatter, %d cores"
               run.Accuracy.cores)
          std
          (Accuracy.scatter_slowdown run)
      end)
    runs;
  runs

let run_fig6 ctx (four_core : Accuracy.run) =
  section "Fig. 6: worst-STP mix CPI breakdown";
  let worst = Accuracy.worst_stp_eval four_core in
  Format.fprintf std "worst mix in the population: %a (measured STP %.3f)@."
    Mix.pp worst.Accuracy.mix worst.Accuracy.measured.Context.m_stp;
  Accuracy.pp_cpi_rows std (Accuracy.cpi_rows worst);
  (* The paper's canonical Fig. 6 mix. *)
  let canonical = Mix.of_names [| "gamess"; "gamess"; "hmmer"; "soplex" |] in
  let eval =
    {
      Accuracy.mix = canonical;
      measured = Context.detailed ctx ~llc_config:1 canonical;
      predicted = Context.predict ctx ~llc_config:1 canonical;
    }
  in
  Format.fprintf std "@.the paper's mix (2x gamess + hmmer + soplex):@.";
  Accuracy.pp_cpi_rows std (Accuracy.cpi_rows eval)

let run_fig7_8 ctx ~pool ~paper_scale =
  section "Fig. 7 & 8: debunking current practice";
  let options =
    if paper_scale then Ranking.paper_options else Ranking.default_options
  in
  let t = phase "ranking" (fun () -> Ranking.run ~pool ctx options) in
  Ranking.pp_fig7 std t;
  Format.pp_print_newline std ();
  Ranking.pp_fig8 std t

let run_fig9 (four_core : Accuracy.run) =
  section "Fig. 9: stress-workload identification";
  let t = Stress.analyze four_core in
  csv_write "fig9_sorted_stp.csv" "rank,measured,predicted"
    (List.mapi
       (fun i (m, p) -> Printf.sprintf "%d,%.6f,%.6f" (i + 1) m p)
       (Array.to_list t.Stress.sorted));
  Stress.pp_summary std t;
  print_string
    (Mppm_util.Ascii_plot.series ~x_label:"workloads sorted by measured STP"
       ~y_label:"STP"
       [
         ("detailed simulation", Array.map fst t.Stress.sorted);
         ("MPPM", Array.map snd t.Stress.sorted);
       ]);
  Stress.pp_sorted std t

let run_speed ctx =
  section "Sec. 4.3: speed";
  Speed.pp std (Speed.measure ctx ())

(* Ablations over the design choices DESIGN.md calls out. *)
let run_ablation ctx ~pool ~mixes =
  section "Ablations: contention model, update rule, smoothing, L";
  let cores = 4 in
  let rng = Context.rng ctx "ablation" in
  let sample = Sampler.random_mixes rng ~cores ~count:(max 8 (mixes / 4)) in
  let measured = Pool.map pool (Context.detailed ctx ~llc_config:1) sample in
  let eval_params params label =
    let profiles mix =
      Array.map (fun i -> Context.profile ctx ~llc_config:1 i) (Mix.indices mix)
    in
    let predicted =
      Array.map (fun mix -> Model.predict_profiles params (profiles mix)) sample
    in
    let err metric_p metric_m =
      Stats.mean_relative_error
        ~predicted:(Array.map metric_p predicted)
        ~measured:(Array.map metric_m measured)
    in
    Printf.printf "%-34s STP err %5.2f%%  ANTT err %5.2f%%\n%!" label
      (100.0 *. err (fun r -> r.Model.stp) (fun m -> m.Context.m_stp))
      (100.0 *. err (fun r -> r.Model.antt) (fun m -> m.Context.m_antt))
  in
  let base = Context.model_params ctx in
  Printf.printf "(population: %d quad-core mixes)\n" (Array.length sample);
  eval_params { base with contention = Contention.Foa }
    "contention = FOA (paper)";
  eval_params
    { base with contention = Contention.Sdc_competition }
    "contention = SDC competition";
  eval_params
    { base with contention = Contention.Prob { iterations = 5 } }
    "contention = Prob (5 iters)";
  eval_params
    { base with update_rule = Model.Paper_literal }
    "update rule = paper-literal";
  eval_params
    { base with update_rule = Model.Consistent }
    "update rule = consistent";
  List.iter
    (fun f ->
      eval_params { base with smoothing = f }
        (Printf.sprintf "smoothing f = %.2f" f))
    [ 0.0; 0.25; 0.5; 0.75; 0.9 ];
  let trace = (Context.scale ctx).Scale.trace_instructions in
  List.iter
    (fun denom ->
      eval_params
        { base with iteration_instructions = max 1 (trace / denom) }
        (Printf.sprintf "L = trace/%d" denom))
    [ 2; 5; 10; 25 ];
  (* The phase-unaware StatCC-style baseline: what discarding time-varying
     behaviour costs. *)
  let static_predicted =
    Array.map (Context.predict_static ctx ~llc_config:1) sample
  in
  let static_err metric_p metric_m =
    Stats.mean_relative_error
      ~predicted:(Array.map metric_p static_predicted)
      ~measured:(Array.map metric_m measured)
  in
  Printf.printf "%-34s STP err %5.2f%%  ANTT err %5.2f%%\n%!"
    "static model (no phases)"
    (100.0 *. static_err (fun r -> r.Model.stp) (fun m -> m.Context.m_stp))
    (100.0 *. static_err (fun r -> r.Model.antt) (fun m -> m.Context.m_antt))

(* Extension: a way-partitioned shared LLC.  The paper's Sec. 2.3 claims
   MPPM supports any partitioning strategy given a matching contention
   model; here the detailed simulator enforces 2-way quotas per core and
   MPPM predicts with the Way_partition model (with plain FOA shown as the
   mismatched-model baseline). *)
let run_partition ctx ~pool ~mixes =
  section "Extension: way-partitioned LLC";
  let cores = 4 in
  (* Deliberately asymmetric quotas: a frequency-proportional model (FOA)
     cannot reproduce a policy that grants core 0 half the cache. *)
  let quotas = [| 4; 2; 1; 1 |] in
  let rng = Context.rng ctx "partition" in
  let sample = Sampler.random_mixes rng ~cores ~count:(max 8 (mixes / 5)) in
  let measured =
    Pool.map pool (Context.detailed ~llc_partition:quotas ctx ~llc_config:1)
      sample
  in
  let base = Context.model_params ctx in
  let eval contention label =
    let predicted =
      Array.map
        (fun mix ->
          Context.predict_with ctx ~params:{ base with Model.contention }
            ~llc_config:1 mix)
        sample
    in
    let err metric_p metric_m =
      Stats.mean_relative_error
        ~predicted:(Array.map metric_p predicted)
        ~measured:(Array.map metric_m measured)
    in
    Printf.printf "%-34s STP err %5.2f%%  ANTT err %5.2f%%\n%!" label
      (100.0 *. err (fun r -> r.Model.stp) (fun m -> m.Context.m_stp))
      (100.0 *. err (fun r -> r.Model.antt) (fun m -> m.Context.m_antt))
  in
  Printf.printf
    "(detailed simulator enforces per-core way quotas %s; %d mixes)\n"
    (String.concat "/" (List.map string_of_int (Array.to_list quotas)))
    (Array.length sample);
  eval
    (Contention.Way_partition (Array.map float_of_int quotas))
    "contention = Way_partition (match)";
  eval Contention.Foa "contention = FOA (mismatched)"

(* Extension: the paper's Sec. 2 parenthetical — deriving lower-
   associativity profiles without re-simulation.  Table 2 pairs with equal
   set counts: config #4 (1MB 16-way) folds to config #1 (512KB 8-way) and
   #6 (2MB 16-way) folds to #3 (1MB 8-way).  The SDCs derive exactly; the
   timing fields keep the profiled machine's latencies, so this section
   quantifies the end-to-end prediction error of using derived profiles. *)
let run_derivation ctx ~pool ~mixes =
  section "Extension: reduced-associativity profile derivation";
  let rng = Context.rng ctx "derivation" in
  let sample = Sampler.random_mixes rng ~cores:4 ~count:(max 10 (mixes / 4)) in
  List.iter
    (fun (src, dst) ->
      let direct = Context.all_profiles ~pool ctx ~llc_config:dst in
      let derived =
        Array.map
          (fun p -> Profile.reduce_associativity p ~assoc:8)
          (Context.all_profiles ~pool ctx ~llc_config:src)
      in
      let mpki_err =
        Stats.mean_relative_error
          ~predicted:(Array.map (fun p -> Profile.llc_mpki p +. 1e-9) derived)
          ~measured:(Array.map (fun p -> Profile.llc_mpki p +. 1e-9) direct)
      in
      let params = Context.model_params ctx in
      let predict profiles mix =
        (Model.predict_profiles params
           (Array.map (fun i -> profiles.(i)) (Mix.indices mix)))
          .Model.stp
      in
      let stp_err =
        Stats.mean_relative_error
          ~predicted:(Array.map (predict derived) sample)
          ~measured:(Array.map (predict direct) sample)
      in
      Printf.printf
        "config #%d -> #%d: per-benchmark MPKI error %.1f%%, STP prediction \
         error vs direct profiles %.2f%% (over %d mixes)\n%!"
        src dst (100.0 *. mpki_err) (100.0 *. stp_err) (Array.length sample))
    [ (4, 1); (6, 3) ]

(* Extension: bandwidth sharing (paper Sec. 8 future work).  The detailed
   simulator serializes all LLC misses over one memory channel; MPPM adds
   an M/D/1 queueing term on top of FOA.  Profiles are re-collected with a
   private channel so isolated CPIs carry their own self-queueing. *)
let run_bandwidth ctx ~pool ~mixes =
  section "Extension: memory bandwidth sharing";
  let transfer_cycles = 16.0 in
  let cores = 4 in
  let scale = Context.scale ctx in
  let hierarchy = Context.hierarchy ctx ~llc_config:1 in
  let rng = Context.rng ctx "bandwidth" in
  let sample = Sampler.random_mixes rng ~cores ~count:(max 6 (mixes / 6)) in
  (* Bandwidth profiles are re-collected with a private channel, outside
     the context's cache; a single-flight table keeps concurrent workers
     from computing one benchmark's profile twice. *)
  let profile_table : (string, Profile.t) Single_flight.t =
    Single_flight.create ()
  in
  let bw_profile name =
    Single_flight.get profile_table name (fun name ->
        Mppm_simcore.Single_core.profile
          (Mppm_simcore.Single_core.config ~bandwidth:transfer_cycles
             hierarchy)
          ~benchmark:(Mppm_trace.Suite.find name)
          ~seed:(Mppm_trace.Suite.seed_for name)
          ~trace_instructions:scale.Scale.trace_instructions
          ~interval_instructions:scale.Scale.interval_instructions)
  in
  let offsets = Mppm_multicore.Multi_core.default_offsets ~seed:(Context.seed ctx) 16 in
  let detailed mix =
    let names = Mix.names mix in
    let specs =
      Array.mapi
        (fun i name ->
          {
            Mppm_multicore.Multi_core.benchmark = Mppm_trace.Suite.find name;
            seed = Mppm_trace.Suite.seed_for name;
            offset = offsets.(i);
          })
        names
    in
    let detail =
      Mppm_multicore.Multi_core.run
        (Mppm_multicore.Multi_core.config ~bandwidth:transfer_cycles hierarchy)
        ~programs:specs ~trace_instructions:scale.Scale.trace_instructions
    in
    let cpi_single = Array.map (fun n -> Profile.cpi (bw_profile n)) names in
    let cpi_multi =
      Array.map
        (fun p -> p.Mppm_multicore.Multi_core.multicore_cpi)
        detail.Mppm_multicore.Multi_core.programs
    in
    ( Metrics.stp ~cpi_single ~cpi_multi,
      Metrics.antt ~cpi_single ~cpi_multi )
  in
  let measured = Pool.map pool detailed sample in
  let base = Context.model_params ctx in
  let eval params label =
    let predicted =
      Array.map
        (fun mix ->
          let profiles = Array.map bw_profile (Mix.names mix) in
          let r = Model.predict_profiles params profiles in
          (r.Model.stp, r.Model.antt))
        sample
    in
    let err f =
      Stats.mean_relative_error
        ~predicted:(Array.map f predicted)
        ~measured:(Array.map f measured)
    in
    Printf.printf "%-34s STP err %5.2f%%  ANTT err %5.2f%%\n%!" label
      (100.0 *. err fst) (100.0 *. err snd)
  in
  Printf.printf
    "(channel: %.0f cycles/line; detailed simulator serializes misses; %d mixes)\n"
    transfer_cycles (Array.length sample);
  eval base "MPPM, no bandwidth term";
  eval
    { base with
      Model.bandwidth =
        Some { Model.transfer_cycles; exposed_fraction = 0.35 } }
    "MPPM + M/D/1 queueing term"

(* Extension: SimPoint-style profile quantization (the paper's reference
   [13] applied to the model's input): cluster each profile's intervals
   into k phases and replace every interval with its phase representative.
   Measures the MPPM accuracy cost of compressing profiles. *)
let run_simpoint ctx ~mixes =
  section "Extension: SimPoint-style profile quantization";
  let rng = Context.rng ctx "simpoint" in
  let sample = Sampler.random_mixes rng ~cores:4 ~count:(max 8 (mixes / 4)) in
  let params = Context.model_params ctx in
  let full_profiles = Context.all_profiles ctx ~llc_config:1 in
  let full mix =
    (Model.predict_profiles params
       (Array.map (fun i -> full_profiles.(i)) (Mix.indices mix)))
      .Model.stp
  in
  let full_stps = Array.map full sample in
  List.iter
    (fun k ->
      let quantized =
        Array.map (fun p -> Mppm_simpoint.Simpoint.quantize ~k p) full_profiles
      in
      let stps =
        Array.map
          (fun mix ->
            (Model.predict_profiles params
               (Array.map (fun i -> quantized.(i)) (Mix.indices mix)))
              .Model.stp)
          sample
      in
      let err =
        Stats.mean_relative_error ~predicted:stps ~measured:full_stps
      in
      let avg_distinct =
        Array.fold_left
          (fun acc p ->
            acc + Mppm_simpoint.Simpoint.distinct_intervals p)
          0 quantized
        / Array.length quantized
      in
      Printf.printf
        "k = %2d phases: STP drift vs full profiles %.2f%% (avg %d distinct          intervals of 50)\n%!"
        k (100.0 *. err) avg_distinct)
    [ 2; 4; 8; 16 ]

(* Extension: the co-phase matrix baseline (Van Biesbrouck et al., paper
   Sec. 7).  Accurate per mix, but the matrix is rebuilt with detailed
   windows for every new mix — the cost MPPM eliminates. *)
let run_cophase ctx ~mixes:_ =
  section "Extension: co-phase matrix baseline";
  let trace = (Context.scale ctx).Scale.trace_instructions in
  let hierarchy = Context.hierarchy ctx ~llc_config:1 in
  let mix_names =
    [
      [| "bzip2"; "gcc" |];
      [| "gcc"; "astar" |];
      [| "bzip2"; "gcc"; "h264ref"; "wrf" |];
      [| "gamess"; "gamess"; "hmmer"; "soplex" |];
    ]
  in
  List.iter
    (fun names ->
      let mix = Mix.of_names names in
      (* Mix sorts its programs; use that canonical order for the co-phase
         specs so per-slot results align with the reference. *)
      let names = Mix.names mix in
      let measured = Context.detailed ctx ~llc_config:1 mix in
      let predicted = Context.predict ctx ~llc_config:1 mix in
      let offsets =
        (* Must match Context.detailed's per-slot offsets so the co-phase
           windows see the exact programs the reference simulated. *)
        Mppm_multicore.Multi_core.default_offsets ~seed:(Context.seed ctx)
          (Array.length names)
      in
      let specs =
        Array.mapi
          (fun i name ->
            {
              Mppm_cophase.Co_phase.benchmark = Mppm_trace.Suite.find name;
              seed = Mppm_trace.Suite.seed_for name;
              offset = offsets.(i);
            })
          names
      in
      let matrix =
        Mppm_cophase.Co_phase.create
          (Mppm_cophase.Co_phase.config hierarchy)
          ~programs:specs
      in
      let cop = Mppm_cophase.Co_phase.predict matrix ~trace_instructions:trace in
      let cop_stp =
        Metrics.stp ~cpi_single:measured.Context.m_cpi_single
          ~cpi_multi:cop.Mppm_cophase.Co_phase.cpi_multi
      in
      let err x = 100.0 *. abs_float (x -. measured.Context.m_stp) /. measured.Context.m_stp in
      Printf.printf
        "%-40s STP detailed %.3f | co-phase %.3f (%.1f%% err, %d co-phases, %.1fM detailed insns) | MPPM %.3f (%.1f%% err, 0 detailed insns)\n%!"
        (Mix.to_string mix) measured.Context.m_stp cop_stp (err cop_stp)
        cop.Mppm_cophase.Co_phase.co_phases_measured
        (float_of_int cop.Mppm_cophase.Co_phase.detailed_instructions /. 1e6)
        predicted.Model.stp (err predicted.Model.stp))
    mix_names

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per table/figure              *)
(* ------------------------------------------------------------------ *)

let micro_tests ctx =
  let open Bechamel in
  let hierarchy = Context.hierarchy ctx ~llc_config:1 in
  let profiles = Context.all_profiles ctx ~llc_config:1 in
  let params = Context.model_params ctx in
  let mix = Mix.of_names [| "gamess"; "gamess"; "hmmer"; "soplex" |] in
  let mix_profiles = Array.map (fun i -> profiles.(i)) (Mix.indices mix) in
  let sdcs =
    Array.map
      (fun p -> (Profile.window p ~start:0.0 ~count:100_000.0).Profile.w_sdc)
      mix_profiles
  in
  let cache =
    Mppm_cache.Cache.create hierarchy.Mppm_cache.Hierarchy.llc.geometry
  in
  let cache_rng = Mppm_util.Rng.create ~seed:7 in
  [
    (* Table 1/2 kernel: the simulated machine's innermost operation. *)
    Test.make ~name:"table1-llc-access"
      (Staged.stage (fun () ->
           ignore
             (Mppm_cache.Cache.access cache
                (Mppm_util.Rng.int cache_rng (1 lsl 20) * 64))));
    (* Fig. 3 kernel: one MPPM prediction (the unit the variability curve
       is built from). *)
    Test.make ~name:"fig3-mppm-predict"
      (Staged.stage (fun () ->
           ignore (Model.predict_profiles params mix_profiles)));
    (* Fig. 4/5 kernel: the profile-window aggregation MPPM performs per
       iteration per program. *)
    Test.make ~name:"fig4-profile-window"
      (Staged.stage (fun () ->
           ignore
             (Profile.window profiles.(0) ~start:123_456.0 ~count:400_000.0)));
    (* Fig. 6 kernel: metric computation from per-program slowdowns. *)
    Test.make ~name:"fig6-metrics"
      (Staged.stage (fun () ->
           ignore
             (Metrics.stp_of_slowdowns [| 1.1; 2.2; 1.0; 1.3 |]
             +. Metrics.antt_of_slowdowns [| 1.1; 2.2; 1.0; 1.3 |])));
    (* Fig. 7/8 kernel: the FOA contention model. *)
    Test.make ~name:"fig7-contention-foa"
      (Staged.stage (fun () -> ignore (Contention.predict Contention.Foa sdcs)));
    (* Fig. 9 kernel: Spearman rank correlation. *)
    Test.make ~name:"fig9-spearman"
      (Staged.stage
         (let a = Array.init 150 (fun i -> float_of_int (i * 7919 mod 150)) in
          let b =
            Array.init 150 (fun i -> float_of_int (i * 104729 mod 150))
          in
          fun () -> ignore (Mppm_util.Rank.spearman a b)));
    (* Speed-section kernel: 10K instructions of single-core simulation. *)
    Test.make ~name:"speed-single-core-10k"
      (Staged.stage
         (let cfg = Mppm_simcore.Single_core.config hierarchy in
          let bench = Mppm_trace.Suite.find "soplex" in
          fun () ->
            ignore
              (Mppm_simcore.Single_core.run cfg ~benchmark:bench ~seed:11
                 ~instructions:10_000)));
  ]

let run_micro ctx =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let tests = Test.make_grouped ~name:"mppm" ~fmt:"%s %s" (micro_tests ctx) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _instance per_test ->
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          rows := (name, estimate) :: !rows)
        per_test)
    merged;
  List.sort compare !rows
  |> List.iter (fun (name, ns) ->
         Printf.printf "%-32s %12.1f ns/run\n" name ns)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let all_sections =
  [
    "table1"; "table2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
    "fig9"; "speed"; "ablation"; "derivation"; "partition"; "bandwidth";
    "cophase"; "simpoint"; "micro";
  ]

let run trace mixes seed cache_dir only paper_scale csv jobs bench_json
    trace_phases =
  (match List.filter (fun s -> not (List.mem s all_sections)) only with
  | [] -> ()
  | unknown ->
      failwith
        (Printf.sprintf "Main.run: unknown --only section(s): %s (valid: %s)"
           (String.concat ", " unknown)
           (String.concat ", " all_sections)));
  csv_dir := csv;
  let t_start = Unix.gettimeofday () in
  let scale = Scale.of_trace trace in
  let ctx = Context.create ~seed ~cache_dir scale in
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  Pool.with_pool ~jobs ~prof @@ fun pool ->
  let wants name = List.mem name only in
  let timed name f = phase ("section " ^ name) f in
  Format.fprintf std "MPPM benchmark harness: %a, seed %d@." Scale.pp scale
    seed;
  if wants "table1" || wants "table2" then run_tables ();
  if wants "fig3" then timed "fig3" (fun () -> run_fig3 ctx ~pool ~mixes);
  let accuracy_runs =
    if wants "fig4" || wants "fig5" || wants "fig6" || wants "fig9" then
      timed "fig4+fig5" (fun () ->
          run_accuracy ctx ~pool ~mixes
            ~sixteen_core_mixes:(if paper_scale then 25 else max 3 (mixes / 8)))
    else []
  in
  let four_core =
    List.find_opt (fun r -> r.Accuracy.cores = 4) accuracy_runs
  in
  (match four_core with
  | Some run ->
      if wants "fig6" then timed "fig6" (fun () -> run_fig6 ctx run);
      if wants "fig9" then timed "fig9" (fun () -> run_fig9 run)
  | None -> ());
  if wants "fig7" || wants "fig8" then
    timed "fig7+fig8" (fun () -> run_fig7_8 ctx ~pool ~paper_scale);
  if wants "speed" then timed "speed" (fun () -> run_speed ctx);
  if wants "ablation" then
    timed "ablation" (fun () -> run_ablation ctx ~pool ~mixes);
  if wants "derivation" then
    timed "derivation" (fun () -> run_derivation ctx ~pool ~mixes);
  if wants "partition" then
    timed "partition" (fun () -> run_partition ctx ~pool ~mixes);
  if wants "bandwidth" then
    timed "bandwidth" (fun () -> run_bandwidth ctx ~pool ~mixes);
  if wants "cophase" then timed "cophase" (fun () -> run_cophase ctx ~mixes);
  if wants "simpoint" then timed "simpoint" (fun () -> run_simpoint ctx ~mixes);
  if wants "micro" then timed "micro" (fun () -> run_micro ctx);
  if Option.is_some (Prof.pool_stats prof) then
    Format.printf "@.%a@." Prof.pp_pool prof;
  (match bench_json with
  | None -> ()
  | Some path ->
      write_bench_json ~path ~trace ~mixes ~seed ~jobs ~paper_scale ~only
        ~total:(Unix.gettimeofday () -. t_start));
  (match trace_phases with
  | None -> ()
  | Some path -> write_phase_trace ~path prof);
  Printf.printf "\ndone.\n"

open Cmdliner

let trace =
  Arg.(
    value & opt int 2_000_000
    & info [ "trace" ] ~doc:"Trace length in instructions.")

let mixes =
  Arg.(
    value & opt int 40
    & info [ "mixes" ]
        ~doc:"Workload mixes per accuracy experiment (paper: 150).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master random seed.")

let cache_dir =
  Arg.(
    value
    & opt string "_profile_cache"
    & info [ "cache" ] ~doc:"Profile cache directory.")

let only =
  Arg.(
    value
    & opt (list string) all_sections
    & info [ "only" ] ~doc:"Comma-separated sections to run.")

let paper_scale =
  Arg.(
    value & flag
    & info [ "paper" ] ~doc:"Use the paper's population sizes (slow).")

let csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~doc:"Also export figure data as CSV files into $(docv)."
        ~docv:"DIR")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "jobs" ]
        ~doc:
          "Worker domains for mix populations (0 = \
           Domain.recommended_domain_count).  Results are bit-for-bit \
           identical for any value.")

let bench_json =
  Arg.(
    value
    & opt (some string) (Some "BENCH_model.json")
    & info [ "bench-json" ]
        ~doc:
          "Write per-phase wall-time timings as JSON to $(docv) (CI \
           archives it).  Pass an empty value via --no-bench-json to skip."
        ~docv:"FILE")

let no_bench_json =
  Arg.(
    value & flag
    & info [ "no-bench-json" ] ~doc:"Do not write the phase-timing JSON file.")

let trace_phases =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-phases" ]
        ~doc:
          "Write the run's wall-clock timeline (phase spans + pool tasks \
           on per-domain lanes) as a Chrome trace_event file to $(docv) \
           (load in chrome://tracing or Perfetto)."
        ~docv:"FILE")

let cmd =
  let doc = "Regenerate the tables and figures of the MPPM paper." in
  Cmd.v
    (Cmd.info "mppm-bench" ~doc)
    Term.(
      const
        (fun trace mixes seed cache_dir only paper_scale csv jobs bench_json
             no_bench_json trace_phases ->
          run trace mixes seed cache_dir only paper_scale csv jobs
            (if no_bench_json then None else bench_json)
            trace_phases)
      $ trace $ mixes $ seed $ cache_dir $ only $ paper_scale $ csv $ jobs
      $ bench_json $ no_bench_json $ trace_phases)

let () =
  try exit (Cmd.eval ~catch:false cmd)
  with Failure msg ->
    prerr_endline ("mppm-bench: " ^ msg);
    exit 2
