(* The mppm command-line tool.

   Subcommands:
     suite                list the synthetic benchmark suite
     profile              run single-core profiling for benchmarks
     predict              MPPM-predict a mix from profiles
     simulate             detailed multi-core simulation of a mix
     compare              predict + simulate + error report for a mix
     population           combinatorics of the mix population
     rank                 rank the six LLC configs with MPPM
     cache                profile-cache statistics and pruning
     trace-report         render a recorded model event trace
     client               send queries to a running mppmd daemon

   Every subcommand shares the scale/seed/cache options, so a profile
   computed once (or by the bench harness) is reused everywhere.

   Mix parsing, output rendering and the predict/compare/rank handlers
   live in Mppm_serve.Dispatch, shared with the mppmd daemon — which is
   why daemon responses are byte-identical to this CLI's output.

   This file owns all trace *file* writers (JSONL and Chrome trace JSON):
   lib/obs only serializes events to strings, so the model core never
   touches an output channel. *)

module Suite = Mppm_trace.Suite
module Benchmark = Mppm_trace.Benchmark
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Mix = Mppm_workload.Mix
module Pool = Mppm_pool.Pool
module Wire = Mppm_serve.Wire
module Dispatch = Mppm_serve.Dispatch
open Mppm_experiments

let std = Format.std_formatter

(* ---- shared options ------------------------------------------------ *)

type common = { ctx : Context.t; llc_config : int }

let make_common trace seed cache_dir llc_config =
  { ctx = Context.create ~seed ~cache_dir (Scale.of_trace trace); llc_config }

open Cmdliner

let common_term =
  let trace =
    Arg.(
      value & opt int 2_000_000
      & info [ "length" ] ~doc:"Trace length in instructions.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master random seed.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string "_profile_cache"
      & info [ "cache" ] ~doc:"Profile cache directory.")
  in
  let llc_config =
    Arg.(
      value & opt int 1
      & info [ "config" ] ~doc:"LLC configuration, 1..6 (Table 2).")
  in
  Term.(const make_common $ trace $ seed $ cache_dir $ llc_config)

let mix_arg =
  Arg.(
    non_empty
    & pos_all string []
    & info [] ~docv:"BENCHMARK"
        ~doc:
          "Benchmark names forming the mix (repeat a name for copies).  If \
           any argument contains a comma, each argument is its own \
           comma-separated mix and they are evaluated as a batch (see \
           --jobs).")

(* Comma semantics and validation live in Dispatch.parse_mixes; here a
   bad mix is a fatal CLI error (one stderr line, exit 2). *)
let parse_mixes names =
  match Dispatch.parse_mixes names with
  | Result.Ok mixes -> mixes
  | Result.Error (_, msg) -> failwith msg

let jobs_term =
  Arg.(
    value & opt int 0
    & info [ "jobs" ]
        ~doc:
          "Worker domains when several mixes are given (0 = \
           Domain.recommended_domain_count).  Results and traces are \
           bit-for-bit identical for any value.")

(* ---- trace output -------------------------------------------------- *)

module Obs_event = Mppm_obs.Event
module Obs_sink = Mppm_obs.Sink
module Obs_trace = Mppm_obs.Trace
module Render = Mppm_obs.Render
module Registry = Mppm_obs.Registry

(* A sink that streams events to [path] as they are emitted.  JSONL is one
   event per line; Chrome trace JSON is one array usable directly in
   chrome://tracing / Perfetto.  The byte format (framing included) comes
   from Mppm_obs.Render; this file only owns the channel. *)
let file_sink path format =
  let oc = open_out path in
  let r =
    match format with
    | `Jsonl -> Render.jsonl ()
    | `Chrome -> Render.chrome ()
  in
  output_string oc (Render.header r);
  Obs_sink.make
    ~close:(fun () ->
      output_string oc (Render.finish r);
      close_out oc)
    (fun ev -> output_string oc (Render.step r ev))

let trace_term =
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the model's event trace to $(docv).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:"Trace file format: $(b,jsonl) (default) or $(b,chrome).")
  in
  Term.(const (fun file format -> (file, format)) $ file $ format)

(* Evaluate [f ~obs mix] for every mix on a domain pool.  Each task
   buffers its trace events in a per-mix memory sink; after the batch the
   buffers are replayed into the --trace file in mix order, so the file
   is byte-identical to a sequential run's regardless of --jobs.  A
   single mix skips the extra domains entirely. *)
let eval_mixes trace jobs mixes f =
  let mixes = Array.of_list mixes in
  let jobs =
    if Array.length mixes = 1 then 1
    else if jobs <= 0 then Pool.default_jobs ()
    else jobs
  in
  let tracing = fst trace <> None in
  let outcomes =
    Pool.with_pool ~jobs @@ fun pool ->
    Pool.map pool
      (fun mix ->
        if tracing then begin
          let sink, events = Obs_sink.memory () in
          let obs = Obs_trace.of_sink sink in
          let r =
            Fun.protect
              ~finally:(fun () -> Obs_trace.close obs)
              (fun () -> f ~obs mix)
          in
          (r, events ())
        end
        else (f ~obs:Obs_trace.null mix, []))
      mixes
  in
  (match fst trace with
  | None -> ()
  | Some path ->
      let sink = file_sink path (snd trace) in
      Fun.protect
        ~finally:(fun () -> Obs_sink.close sink)
        (fun () ->
          Array.iter
            (fun (_, evs) -> List.iter (Obs_sink.emit sink) evs)
            outcomes));
  Array.map fst outcomes

let verbose_term =
  Arg.(
    value & flag
    & info [ "verbose" ]
        ~doc:"Also print profile-cache statistics for this run.")

let pp_cache_counters () =
  let v name = Registry.get ("profile_cache." ^ name) in
  Format.fprintf std
    "profile cache: %.0f disk hits, %.0f memo hits, %.0f misses, %.0f stale \
     entries seen@."
    (v "hits") (v "memo_hits") (v "misses") (v "stale")

(* ---- suite --------------------------------------------------------- *)

let suite_cmd =
  let run () =
    Array.iter
      (fun b -> Format.fprintf std "%a@." Benchmark.pp b)
      Suite.all
  in
  Cmd.v (Cmd.info "suite" ~doc:"List the synthetic benchmark suite.")
    Term.(const run $ const ())

(* ---- profile ------------------------------------------------------- *)

let profile_cmd =
  let run common names =
    let names = if names = [ "all" ] then Array.to_list Suite.names else names in
    List.iter
      (fun name ->
        let index = Suite.index name in
        let p = Context.profile common.ctx ~llc_config:common.llc_config index in
        Format.fprintf std "%a@." Profile.pp_summary p)
      names
  in
  let names =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark names, or 'all'.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run (or load) single-core profiling and print a summary.")
    Term.(const run $ common_term $ names)

(* ---- predict / simulate / compare ----------------------------------- *)

let predict_cmd =
  let run common trace verbose jobs names =
    let mixes = parse_mixes names in
    let results =
      eval_mixes trace jobs mixes (fun ~obs mix ->
          Context.predict ~obs common.ctx ~llc_config:common.llc_config mix)
    in
    Dispatch.pp_batch Dispatch.pp_predicted ~mixes std results;
    if verbose then pp_cache_counters ()
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Predict multi-core performance with MPPM.  Plain names form one \
          mix; comma-separated arguments are evaluated as a batch of mixes \
          (in parallel with --jobs).")
    Term.(const run $ common_term $ trace_term $ verbose_term $ jobs_term
          $ mix_arg)

let simulate_cmd =
  let run common names =
    match parse_mixes names with
    | [ mix ] ->
        Dispatch.pp_measured std
          (Context.detailed common.ctx ~llc_config:common.llc_config mix)
    | _ ->
        failwith
          "Mppm.simulate: one mix only (no comma batches; use compare for \
           batch runs)"
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the detailed multi-core simulator on a mix.")
    Term.(const run $ common_term $ mix_arg)

let compare_cmd =
  let run common trace verbose jobs names =
    let mixes = parse_mixes names in
    let results =
      eval_mixes trace jobs mixes (fun ~obs mix ->
          let predicted =
            Context.predict ~obs common.ctx ~llc_config:common.llc_config mix
          in
          let measured =
            Context.detailed common.ctx ~llc_config:common.llc_config mix
          in
          (predicted, measured))
    in
    Dispatch.pp_batch Dispatch.pp_comparison ~mixes std results;
    if verbose then pp_cache_counters ()
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Predict and simulate mixes; report the prediction error.  \
          Comma-separated arguments are evaluated as a batch of mixes (in \
          parallel with --jobs).")
    Term.(const run $ common_term $ trace_term $ verbose_term $ jobs_term
          $ mix_arg)

(* ---- population ------------------------------------------------------ *)

let population_cmd =
  let run cores =
    List.iter
      (fun m ->
        Format.fprintf std "%2d cores: %.0f mixes@." m (Mix.population ~cores:m))
      cores
  in
  let cores =
    Arg.(value & pos_all int [ 2; 4; 8; 16 ] & info [] ~docv:"CORES")
  in
  Cmd.v
    (Cmd.info "population"
       ~doc:"Count the multi-program workload population (Sec. 1).")
    Term.(const run $ cores)

(* ---- rank ------------------------------------------------------------ *)

(* The same handler the daemon runs: rank requests go through
   Dispatch.handle, so CLI output and mppmd responses cannot drift. *)
let rank_run common cores count =
  match Dispatch.handle common.ctx (Wire.Rank { cores; count }) with
  | Wire.Output text -> Format.fprintf std "%s%!" text
  | Wire.Error { message; _ } -> failwith message
  | Wire.Counters _ -> failwith "Mppm.rank: unexpected counters response"

let rank_term =
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Programs per mix.")
  in
  let count =
    Arg.(value & opt int 500 & info [ "mixes" ] ~doc:"Number of mixes.")
  in
  Term.(const rank_run $ common_term $ cores $ count)

let rank_cmd =
  Cmd.v
    (Cmd.info "rank" ~doc:"Rank the Table 2 LLC configurations with MPPM.")
    rank_term

let rank_configs_cmd =
  Cmd.v
    (Cmd.info "rank-configs"
       ~doc:"Alias of $(b,rank), kept for older scripts.")
    rank_term

(* ---- categories -------------------------------------------------------- *)

let categories_cmd =
  let run common =
    let profiles = Context.all_profiles common.ctx ~llc_config:common.llc_config in
    let classes = Mppm_workload.Category.classify_profiles profiles in
    Array.iteri
      (fun i p ->
        Format.fprintf std "%-12s %a  mem-CPI fraction %4.0f%%  (CPI %.3f)@."
          Suite.names.(i) Mppm_workload.Category.pp classes.(i)
          (100.0 *. Profile.memory_cpi_fraction p)
          (Profile.cpi p))
      profiles;
    let mem, comp = Mppm_workload.Category.partition classes in
    Format.fprintf std "@.%d MEM, %d COMP@." (Array.length mem)
      (Array.length comp)
  in
  Cmd.v
    (Cmd.info "categories"
       ~doc:"Classify the suite into MEM/COMP benchmark categories (Sec. 5).")
    Term.(const run $ common_term)

(* ---- traces -------------------------------------------------------------- *)

let trace_record_cmd =
  let run name path accesses seed =
    let generator =
      Mppm_trace.Generator.create ~seed (Suite.find name)
    in
    let meta =
      Mppm_trace.Trace_file.record ~path ~generator ~accesses ()
    in
    Format.fprintf std "recorded %d references (%d instructions) of %s to %s@."
      meta.Mppm_trace.Trace_file.accesses
      meta.Mppm_trace.Trace_file.instructions
      meta.Mppm_trace.Trace_file.benchmark path
  in
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let path = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let accesses =
    Arg.(
      value & opt int 100_000
      & info [ "accesses" ] ~doc:"References to record.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  Cmd.v
    (Cmd.info "trace-record"
       ~doc:"Record a benchmark's memory-reference trace to a file.")
    Term.(const run $ bench_arg $ path $ accesses $ seed)

let trace_stats_cmd =
  let run path size_kb assoc =
    let geometry =
      Mppm_cache.Geometry.make
        ~size_bytes:(Mppm_cache.Geometry.kib size_kb)
        ~line_bytes:64 ~associativity:assoc
    in
    let meta = Mppm_trace.Trace_file.read_meta path in
    let sdc = Mppm_trace.Trace_file.replay_sdc path ~geometry in
    Format.fprintf std "%s: %d references of %s@." path
      meta.Mppm_trace.Trace_file.accesses
      meta.Mppm_trace.Trace_file.benchmark;
    Format.fprintf std "on %a: miss rate %.2f%%@." Mppm_cache.Geometry.pp
      geometry
      (100.0 *. Mppm_cache.Sdc.miss_rate sdc);
    Format.fprintf std "%a@." Mppm_cache.Sdc.pp sdc
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let size_kb =
    Arg.(value & opt int 512 & info [ "size" ] ~doc:"Cache size in KB.")
  in
  let assoc =
    Arg.(value & opt int 8 & info [ "assoc" ] ~doc:"Cache associativity.")
  in
  Cmd.v
    (Cmd.info "trace-stats"
       ~doc:"Replay a recorded trace through a cache and print its SDC.")
    Term.(const run $ path $ size_kb $ assoc)

(* ---- cache --------------------------------------------------------- *)

let cache_stats_cmd =
  let run common =
    match Context.scan_cache common.ctx with
    | None -> Format.fprintf std "no profile cache directory configured@."
    | Some r ->
        let n_tmp = List.length r.Context.cr_tmp in
        Format.fprintf std
          "profile cache: %d live, %d stale, %d foreign entr%s%s@."
          (List.length r.Context.cr_live)
          (List.length r.Context.cr_stale)
          (List.length r.Context.cr_foreign)
          (if
             List.length r.Context.cr_live
             + List.length r.Context.cr_stale
             + List.length r.Context.cr_foreign
             = 1
           then "y"
           else "ies")
          (if n_tmp = 0 then ""
           else Printf.sprintf ", %d orphaned .tmp" n_tmp);
        List.iter
          (fun f -> Format.fprintf std "  stale: %s@." f)
          r.Context.cr_stale;
        List.iter (fun f -> Format.fprintf std "  tmp: %s@." f) r.Context.cr_tmp
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Classify the profile cache: live entries (fingerprint matches a \
          current benchmark/config), stale entries (recognized name but \
          outdated fingerprint), foreign files, and orphaned .tmp staging \
          files left by interrupted writes.")
    Term.(const run $ common_term)

let cache_prune_cmd =
  let run common =
    let deleted = Context.prune_cache common.ctx in
    List.iter (fun f -> Format.fprintf std "deleted %s@." f) deleted;
    Format.fprintf std "%d stale or orphaned entr%s pruned@."
      (List.length deleted)
      (if List.length deleted = 1 then "y" else "ies")
  in
  Cmd.v
    (Cmd.info "prune"
       ~doc:
         "Delete profile-cache entries whose fingerprint no longer matches \
          any known benchmark/config pair, plus orphaned .tmp staging files \
          from interrupted writes.  Live and foreign files are kept.")
    Term.(const run $ common_term)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or prune the profile cache directory.")
    [ cache_stats_cmd; cache_prune_cmd ]

(* ---- trace-report ---------------------------------------------------- *)

let read_jsonl_events path =
  let ic = open_in path in
  let events = ref [] in
  let lineno = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let trimmed = String.trim line in
           if trimmed <> "" then
             match Obs_event.of_jsonl line with
             | Ok ev -> events := ev :: !events
             | Error msg ->
                 let hint =
                   if trimmed.[0] = '[' || trimmed.[0] = ']' then
                     " (hint: this looks like a Chrome trace; trace-report \
                      reads the JSONL format, i.e. --trace without \
                      --trace-format chrome)"
                   else ""
                 in
                 failwith
                   (Printf.sprintf "Mppm.trace_report: %s:%d: %s%s" path
                      !lineno msg hint)
         done
       with End_of_file -> ());
      List.rev !events)

let trace_report_cmd =
  let run path =
    let events = read_jsonl_events path in
    if events = [] then
      failwith
        (Printf.sprintf
           "Mppm.trace_report: %s holds no events (hint: record a trace \
            with 'mppm compare ... --trace %s' first)"
           path path);
    let named name = List.filter (fun ev -> ev.Obs_event.name = name) events in
    let quanta = named "model.quantum" in
    if quanta = [] then
      failwith
        (Printf.sprintf
           "Mppm.trace_report: %s holds no model.quantum events (hint: the \
            trace must come from 'mppm predict' or 'mppm compare' with \
            --trace; trace-report cannot read bench --trace-phases files)"
           path);
    let programs =
      match named "model.start" with
      | start :: _ ->
          Option.value
            (Obs_event.string_list_field start "programs")
            ~default:[]
      | [] -> []
    in
    let n =
      match quanta with
      | q :: _ -> (
          match Obs_event.float_list_field q "r_after" with
          | Some rs -> List.length rs
          | None -> List.length programs)
      | [] -> 0
    in
    let programs =
      if List.length programs = n then Array.of_list programs
      else Array.init n (Printf.sprintf "P%d")
    in
    (* Convergence records pair 1:1 with quanta via their iter field. *)
    let delta_of =
      let tbl = Hashtbl.create ~random:false 64 in
      List.iter
        (fun ev ->
          match (Obs_event.int_field ev "iter",
                 Obs_event.float_field ev "max_delta_r") with
          | Some iter, Some d -> Hashtbl.replace tbl iter d
          | _ -> ())
        (named "model.convergence");
      fun iter -> Hashtbl.find_opt tbl iter
    in
    Format.fprintf std "%s: %d quanta over %d programs (%s)@.@." path
      (List.length quanta) n
      (String.concat " " (Array.to_list programs));
    Format.fprintf std "  iter  slowest       budget (cycles)   max dR";
    Array.iter (fun p -> Format.fprintf std "  %8s"
                   (if String.length p > 8 then String.sub p 0 8 else p))
      programs;
    Format.fprintf std "@.";
    List.iter
      (fun q ->
        let iter = Option.value (Obs_event.int_field q "iter") ~default:(-1) in
        let slowest =
          match Obs_event.int_field q "slowest" with
          | Some i when i >= 0 && i < n -> programs.(i)
          | _ -> "?"
        in
        let budget =
          Option.value (Obs_event.float_field q "budget_cycles") ~default:0.0
        in
        Format.fprintf std "  %4d  %-12s  %16.0f  " iter slowest budget;
        (match delta_of iter with
        | Some d -> Format.fprintf std "%7.4f" d
        | None -> Format.fprintf std "%7s" "-");
        (match Obs_event.float_list_field q "r_after" with
        | Some rs -> List.iter (fun r -> Format.fprintf std "  %8.4f" r) rs
        | None -> ());
        Format.fprintf std "@.")
      quanta;
    (* R_p trajectories, one series per program (Fig. 3 style). *)
    let trajectory i =
      Array.of_list
        (List.filter_map
           (fun q ->
             match Obs_event.float_list_field q "r_after" with
             | Some rs -> List.nth_opt rs i
             | None -> None)
           quanta)
    in
    let series =
      Array.to_list (Array.mapi (fun i p -> (p, trajectory i)) programs)
    in
    Format.fprintf std "@.%s@."
      (Mppm_util.Ascii_plot.series ~x_label:"quantum" ~y_label:"R_p" series);
    (match named "model.result" with
    | result :: _ ->
        Format.fprintf std "converged after %d iterations:  STP %.3f   ANTT %.3f@."
          (Option.value (Obs_event.int_field result "iterations") ~default:0)
          (Option.value (Obs_event.float_field result "stp") ~default:nan)
          (Option.value (Obs_event.float_field result "antt") ~default:nan)
    | [] -> ())
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:
         "Render a JSONL model trace (from --trace) as a per-quantum \
          convergence table plus R_p trajectory plot.")
    Term.(const run $ path)

(* ---- client ---------------------------------------------------------- *)

(* Thin wire client for a running mppmd: frame one request, read one
   framed response, print it.  All interpretation (mix parsing, config
   validation) happens daemon-side, so errors come back as structured
   responses; the client renders them on stderr and exits 2. *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      failwith (Printf.sprintf "Mppm.client: cannot resolve host %S" host))

let connect_endpoint endpoint =
  let addr, domain =
    match endpoint with
    | Wire.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Wire.Tcp { host; port } ->
        (Unix.ADDR_INET (resolve_host host, port), Unix.PF_INET)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      failwith
        (Printf.sprintf
           "Mppm.client: cannot connect to %s: %s (is mppmd running?)"
           (Wire.endpoint_to_string endpoint)
           (Unix.error_message err))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let read_frame fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec fill need =
    if Buffer.length buf < need then begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then
        failwith
          "Mppm.client: connection closed mid-response (daemon died?)";
      Buffer.add_subbytes buf chunk 0 n;
      fill need
    end
  in
  fill 4;
  let len =
    match Wire.frame_length (String.sub (Buffer.contents buf) 0 4) with
    | Result.Ok len -> len
    | Result.Error (_, msg) -> failwith msg
  in
  fill (4 + len);
  String.sub (Buffer.contents buf) 4 len

let client_roundtrip endpoint req =
  let fd = connect_endpoint endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd (Wire.frame (Wire.encode_request req));
      match Wire.decode_response (read_frame fd) with
      | Result.Ok resp -> resp
      | Result.Error (_, msg) -> failwith msg)

let print_response = function
  | Wire.Output text -> Format.fprintf std "%s%!" text
  | Wire.Counters kvs ->
      List.iter (fun (name, v) -> Format.fprintf std "%-40s %g@." name v) kvs
  | Wire.Error { code; message } ->
      prerr_endline
        (Printf.sprintf "mppm: %s [%s]" message
           (Wire.error_code_to_string code));
      exit 2

let connect_term =
  let parse s =
    match Wire.endpoint_of_string s with
    | Result.Ok ep -> Ok ep
    | Result.Error msg -> Error (`Msg msg)
  in
  let endpoint_conv =
    Arg.conv
      ( parse,
        fun ppf ep -> Format.pp_print_string ppf (Wire.endpoint_to_string ep)
      )
  in
  Arg.(
    value
    & opt endpoint_conv (Wire.Unix_socket "mppmd.sock")
    & info [ "connect" ] ~docv:"ENDPOINT"
        ~doc:
          "The mppmd endpoint: $(b,unix:PATH) or $(b,tcp:HOST:PORT) \
           (default $(b,unix:mppmd.sock)).")

let client_config_term =
  Arg.(
    value & opt int 1
    & info [ "config" ] ~doc:"LLC configuration, 1..6 (Table 2).")

let client_predict_cmd =
  let run endpoint llc_config names =
    print_response
      (client_roundtrip endpoint (Wire.Predict { names; llc_config }))
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Ask the daemon for an MPPM prediction.  Output is byte-identical \
          to $(b,mppm predict) with the daemon's scale options.")
    Term.(const run $ connect_term $ client_config_term $ mix_arg)

let client_compare_cmd =
  let run endpoint llc_config names =
    print_response
      (client_roundtrip endpoint (Wire.Compare { names; llc_config }))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Ask the daemon for a predict + simulate + error report.")
    Term.(const run $ connect_term $ client_config_term $ mix_arg)

let client_rank_cmd =
  let run endpoint cores count =
    print_response (client_roundtrip endpoint (Wire.Rank { cores; count }))
  in
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Programs per mix.")
  in
  let count =
    Arg.(value & opt int 500 & info [ "mixes" ] ~doc:"Number of mixes.")
  in
  Cmd.v
    (Cmd.info "rank"
       ~doc:"Ask the daemon to rank the Table 2 LLC configurations.")
    Term.(const run $ connect_term $ cores $ count)

let client_stats_cmd =
  let run endpoint = print_response (client_roundtrip endpoint Wire.Stats) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print the daemon's serve/pool/profile-cache registry counters.")
    Term.(const run $ connect_term)

let client_shutdown_cmd =
  let run endpoint =
    print_response (client_roundtrip endpoint Wire.Shutdown)
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to exit cleanly.")
    Term.(const run $ connect_term)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Query a running mppmd daemon over its socket (see \
          docs/service.md).")
    [
      client_predict_cmd; client_compare_cmd; client_rank_cmd;
      client_stats_cmd; client_shutdown_cmd;
    ]

(* ---- main ------------------------------------------------------------ *)

let () =
  let doc = "The Multi-Program Performance Model (IISWC 2011) toolkit." in
  (* ~catch:false so domain errors (Failure/Sys_error, e.g. a malformed
     or missing trace file) print as one clean line on stderr with exit
     code 2 instead of cmdliner's internal-error backtrace panel. *)
  try
    exit
      (Cmd.eval ~catch:false
         (Cmd.group (Cmd.info "mppm" ~doc)
            [
              suite_cmd; profile_cmd; predict_cmd; simulate_cmd; compare_cmd;
              population_cmd; rank_cmd; rank_configs_cmd; categories_cmd;
              cache_cmd; trace_record_cmd; trace_stats_cmd; trace_report_cmd;
              client_cmd;
            ]))
  with
  | Failure msg ->
      prerr_endline ("mppm: " ^ msg);
      exit 2
  | Sys_error msg ->
      prerr_endline ("mppm: " ^ msg);
      exit 2
