(* The mppm command-line tool.

   Subcommands:
     suite                list the synthetic benchmark suite
     profile              run single-core profiling for benchmarks
     predict              MPPM-predict a mix from profiles
     simulate             detailed multi-core simulation of a mix
     compare              predict + simulate + error report for a mix
     population           combinatorics of the mix population
     rank-configs         rank the six LLC configs with MPPM
     cache                profile-cache statistics and pruning
     trace-report         render a recorded model event trace

   Every subcommand shares the scale/seed/cache options, so a profile
   computed once (or by the bench harness) is reused everywhere.

   This file owns all trace *file* writers (JSONL and Chrome trace JSON):
   lib/obs only serializes events to strings, so the model core never
   touches an output channel. *)

module Suite = Mppm_trace.Suite
module Benchmark = Mppm_trace.Benchmark
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Mix = Mppm_workload.Mix
module Sampler = Mppm_workload.Sampler
module Pool = Mppm_pool.Pool
open Mppm_experiments

let std = Format.std_formatter

(* ---- shared options ------------------------------------------------ *)

type common = { ctx : Context.t; llc_config : int }

let make_common trace seed cache_dir llc_config =
  { ctx = Context.create ~seed ~cache_dir (Scale.of_trace trace); llc_config }

open Cmdliner

let common_term =
  let trace =
    Arg.(
      value & opt int 2_000_000
      & info [ "length" ] ~doc:"Trace length in instructions.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master random seed.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string "_profile_cache"
      & info [ "cache" ] ~doc:"Profile cache directory.")
  in
  let llc_config =
    Arg.(
      value & opt int 1
      & info [ "config" ] ~doc:"LLC configuration, 1..6 (Table 2).")
  in
  Term.(const make_common $ trace $ seed $ cache_dir $ llc_config)

let mix_arg =
  Arg.(
    non_empty
    & pos_all string []
    & info [] ~docv:"BENCHMARK"
        ~doc:
          "Benchmark names forming the mix (repeat a name for copies).  If \
           any argument contains a comma, each argument is its own \
           comma-separated mix and they are evaluated as a batch (see \
           --jobs).")

(* Plain names form one mix; comma syntax makes each argument a mix of
   its own ("a,b,c,d e,f,g,h" is two quad-core mixes). *)
let parse_mixes names =
  if List.exists (fun s -> String.contains s ',') names then
    List.map
      (fun s ->
        Mix.of_names
          (Array.of_list
             (List.filter (fun x -> x <> "") (String.split_on_char ',' s))))
      names
  else [ Mix.of_names (Array.of_list names) ]

let jobs_term =
  Arg.(
    value & opt int 0
    & info [ "jobs" ]
        ~doc:
          "Worker domains when several mixes are given (0 = \
           Domain.recommended_domain_count).  Results and traces are \
           bit-for-bit identical for any value.")

(* ---- trace output -------------------------------------------------- *)

module Obs_event = Mppm_obs.Event
module Obs_sink = Mppm_obs.Sink
module Obs_trace = Mppm_obs.Trace
module Render = Mppm_obs.Render
module Registry = Mppm_obs.Registry

(* A sink that streams events to [path] as they are emitted.  JSONL is one
   event per line; Chrome trace JSON is one array usable directly in
   chrome://tracing / Perfetto.  The byte format (framing included) comes
   from Mppm_obs.Render; this file only owns the channel. *)
let file_sink path format =
  let oc = open_out path in
  let r =
    match format with
    | `Jsonl -> Render.jsonl ()
    | `Chrome -> Render.chrome ()
  in
  output_string oc (Render.header r);
  Obs_sink.make
    ~close:(fun () ->
      output_string oc (Render.finish r);
      close_out oc)
    (fun ev -> output_string oc (Render.step r ev))

let trace_term =
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the model's event trace to $(docv).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:"Trace file format: $(b,jsonl) (default) or $(b,chrome).")
  in
  Term.(const (fun file format -> (file, format)) $ file $ format)

(* Evaluate [f ~obs mix] for every mix on a domain pool.  Each task
   buffers its trace events in a per-mix memory sink; after the batch the
   buffers are replayed into the --trace file in mix order, so the file
   is byte-identical to a sequential run's regardless of --jobs.  A
   single mix skips the extra domains entirely. *)
let eval_mixes trace jobs mixes f =
  let mixes = Array.of_list mixes in
  let jobs =
    if Array.length mixes = 1 then 1
    else if jobs <= 0 then Pool.default_jobs ()
    else jobs
  in
  let tracing = fst trace <> None in
  let outcomes =
    Pool.with_pool ~jobs @@ fun pool ->
    Pool.map pool
      (fun mix ->
        if tracing then begin
          let sink, events = Obs_sink.memory () in
          let obs = Obs_trace.of_sink sink in
          let r =
            Fun.protect
              ~finally:(fun () -> Obs_trace.close obs)
              (fun () -> f ~obs mix)
          in
          (r, events ())
        end
        else (f ~obs:Obs_trace.null mix, []))
      mixes
  in
  (match fst trace with
  | None -> ()
  | Some path ->
      let sink = file_sink path (snd trace) in
      Fun.protect
        ~finally:(fun () -> Obs_sink.close sink)
        (fun () ->
          Array.iter
            (fun (_, evs) -> List.iter (Obs_sink.emit sink) evs)
            outcomes));
  Array.map fst outcomes

let verbose_term =
  Arg.(
    value & flag
    & info [ "verbose" ]
        ~doc:"Also print profile-cache statistics for this run.")

let pp_cache_counters () =
  let v name = Registry.get ("profile_cache." ^ name) in
  Format.fprintf std
    "profile cache: %.0f disk hits, %.0f memo hits, %.0f misses, %.0f stale \
     entries seen@."
    (v "hits") (v "memo_hits") (v "misses") (v "stale")

(* ---- suite --------------------------------------------------------- *)

let suite_cmd =
  let run () =
    Array.iter
      (fun b -> Format.fprintf std "%a@." Benchmark.pp b)
      Suite.all
  in
  Cmd.v (Cmd.info "suite" ~doc:"List the synthetic benchmark suite.")
    Term.(const run $ const ())

(* ---- profile ------------------------------------------------------- *)

let profile_cmd =
  let run common names =
    let names = if names = [ "all" ] then Array.to_list Suite.names else names in
    List.iter
      (fun name ->
        let index = Suite.index name in
        let p = Context.profile common.ctx ~llc_config:common.llc_config index in
        Format.fprintf std "%a@." Profile.pp_summary p)
      names
  in
  let names =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark names, or 'all'.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run (or load) single-core profiling and print a summary.")
    Term.(const run $ common_term $ names)

(* ---- predict / simulate / compare ----------------------------------- *)

let pp_predicted result =
  Format.fprintf std "MPPM prediction (%d iterations):@."
    result.Model.iterations;
  Array.iter
    (fun p ->
      Format.fprintf std
        "  %-12s slowdown %5.3f  CPI %6.3f -> %6.3f@." p.Model.name
        p.Model.slowdown p.Model.cpi_single p.Model.cpi_multi)
    result.Model.programs;
  Format.fprintf std "  STP %.3f   ANTT %.3f@." result.Model.stp
    result.Model.antt

let predict_cmd =
  let run common trace verbose jobs names =
    let mixes = parse_mixes names in
    let results =
      eval_mixes trace jobs mixes (fun ~obs mix ->
          Context.predict ~obs common.ctx ~llc_config:common.llc_config mix)
    in
    let many = Array.length results > 1 in
    Array.iteri
      (fun i result ->
        if many then
          Format.fprintf std "%s== mix %s ==@."
            (if i > 0 then "\n" else "")
            (Mix.to_string (List.nth mixes i));
        pp_predicted result)
      results;
    if verbose then pp_cache_counters ()
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Predict multi-core performance with MPPM.  Plain names form one \
          mix; comma-separated arguments are evaluated as a batch of mixes \
          (in parallel with --jobs).")
    Term.(const run $ common_term $ trace_term $ verbose_term $ jobs_term
          $ mix_arg)

let pp_measured (m : Context.measured) =
  Format.fprintf std "detailed simulation:@.";
  Array.iteri
    (fun i p ->
      Format.fprintf std "  %-12s slowdown %5.3f  CPI %6.3f -> %6.3f@."
        p.Mppm_multicore.Multi_core.name m.Context.m_slowdowns.(i)
        m.Context.m_cpi_single.(i) m.Context.m_cpi_multi.(i))
    m.Context.m_detail.Mppm_multicore.Multi_core.programs;
  Format.fprintf std "  STP %.3f   ANTT %.3f@." m.Context.m_stp
    m.Context.m_antt

let simulate_cmd =
  let run common names =
    let mix = Mix.of_names (Array.of_list names) in
    pp_measured (Context.detailed common.ctx ~llc_config:common.llc_config mix)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the detailed multi-core simulator on a mix.")
    Term.(const run $ common_term $ mix_arg)

let compare_cmd =
  let run common trace verbose jobs names =
    let mixes = parse_mixes names in
    let results =
      eval_mixes trace jobs mixes (fun ~obs mix ->
          let predicted =
            Context.predict ~obs common.ctx ~llc_config:common.llc_config mix
          in
          let measured =
            Context.detailed common.ctx ~llc_config:common.llc_config mix
          in
          (predicted, measured))
    in
    let many = Array.length results > 1 in
    Array.iteri
      (fun i (predicted, measured) ->
        if many then
          Format.fprintf std "%s== mix %s ==@."
            (if i > 0 then "\n" else "")
            (Mix.to_string (List.nth mixes i));
        pp_predicted predicted;
        pp_measured measured;
        let err p m = 100.0 *. abs_float (p -. m) /. m in
        Format.fprintf std "errors: STP %.1f%%  ANTT %.1f%%@."
          (err predicted.Model.stp measured.Context.m_stp)
          (err predicted.Model.antt measured.Context.m_antt))
      results;
    if verbose then pp_cache_counters ()
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Predict and simulate mixes; report the prediction error.  \
          Comma-separated arguments are evaluated as a batch of mixes (in \
          parallel with --jobs).")
    Term.(const run $ common_term $ trace_term $ verbose_term $ jobs_term
          $ mix_arg)

(* ---- population ------------------------------------------------------ *)

let population_cmd =
  let run cores =
    List.iter
      (fun m ->
        Format.fprintf std "%2d cores: %.0f mixes@." m (Mix.population ~cores:m))
      cores
  in
  let cores =
    Arg.(value & pos_all int [ 2; 4; 8; 16 ] & info [] ~docv:"CORES")
  in
  Cmd.v
    (Cmd.info "population"
       ~doc:"Count the multi-program workload population (Sec. 1).")
    Term.(const run $ cores)

(* ---- rank-configs ----------------------------------------------------- *)

let rank_cmd =
  let run common cores count =
    let rng = Context.rng common.ctx "cli-rank" in
    let mixes = Sampler.random_mixes rng ~cores ~count in
    Format.fprintf std
      "ranking LLC configs by mean MPPM-predicted STP over %d %d-core mixes@."
      count cores;
    let means =
      Array.map
        (fun cfg ->
          let stps =
            Array.map
              (fun mix -> (Context.predict common.ctx ~llc_config:cfg mix).Model.stp)
              mixes
          in
          (cfg, Mppm_util.Stats.mean stps))
        (Array.init Mppm_cache.Configs.llc_config_count (fun i -> i + 1))
    in
    let order = Array.copy means in
    Array.sort (fun (_, a) (_, b) -> compare b a) order;
    Array.iteri
      (fun rank (cfg, stp) ->
        Format.fprintf std "  %d. config #%d  mean STP %.3f@." (rank + 1) cfg
          stp)
      order
  in
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Programs per mix.")
  in
  let count =
    Arg.(value & opt int 500 & info [ "mixes" ] ~doc:"Number of mixes.")
  in
  Cmd.v
    (Cmd.info "rank-configs"
       ~doc:"Rank the Table 2 LLC configurations with MPPM.")
    Term.(const run $ common_term $ cores $ count)

(* ---- categories -------------------------------------------------------- *)

let categories_cmd =
  let run common =
    let profiles = Context.all_profiles common.ctx ~llc_config:common.llc_config in
    let classes = Mppm_workload.Category.classify_profiles profiles in
    Array.iteri
      (fun i p ->
        Format.fprintf std "%-12s %a  mem-CPI fraction %4.0f%%  (CPI %.3f)@."
          Suite.names.(i) Mppm_workload.Category.pp classes.(i)
          (100.0 *. Profile.memory_cpi_fraction p)
          (Profile.cpi p))
      profiles;
    let mem, comp = Mppm_workload.Category.partition classes in
    Format.fprintf std "@.%d MEM, %d COMP@." (Array.length mem)
      (Array.length comp)
  in
  Cmd.v
    (Cmd.info "categories"
       ~doc:"Classify the suite into MEM/COMP benchmark categories (Sec. 5).")
    Term.(const run $ common_term)

(* ---- traces -------------------------------------------------------------- *)

let trace_record_cmd =
  let run name path accesses seed =
    let generator =
      Mppm_trace.Generator.create ~seed (Suite.find name)
    in
    let meta =
      Mppm_trace.Trace_file.record ~path ~generator ~accesses ()
    in
    Format.fprintf std "recorded %d references (%d instructions) of %s to %s@."
      meta.Mppm_trace.Trace_file.accesses
      meta.Mppm_trace.Trace_file.instructions
      meta.Mppm_trace.Trace_file.benchmark path
  in
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let path = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let accesses =
    Arg.(
      value & opt int 100_000
      & info [ "accesses" ] ~doc:"References to record.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  Cmd.v
    (Cmd.info "trace-record"
       ~doc:"Record a benchmark's memory-reference trace to a file.")
    Term.(const run $ bench_arg $ path $ accesses $ seed)

let trace_stats_cmd =
  let run path size_kb assoc =
    let geometry =
      Mppm_cache.Geometry.make
        ~size_bytes:(Mppm_cache.Geometry.kib size_kb)
        ~line_bytes:64 ~associativity:assoc
    in
    let meta = Mppm_trace.Trace_file.read_meta path in
    let sdc = Mppm_trace.Trace_file.replay_sdc path ~geometry in
    Format.fprintf std "%s: %d references of %s@." path
      meta.Mppm_trace.Trace_file.accesses
      meta.Mppm_trace.Trace_file.benchmark;
    Format.fprintf std "on %a: miss rate %.2f%%@." Mppm_cache.Geometry.pp
      geometry
      (100.0 *. Mppm_cache.Sdc.miss_rate sdc);
    Format.fprintf std "%a@." Mppm_cache.Sdc.pp sdc
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let size_kb =
    Arg.(value & opt int 512 & info [ "size" ] ~doc:"Cache size in KB.")
  in
  let assoc =
    Arg.(value & opt int 8 & info [ "assoc" ] ~doc:"Cache associativity.")
  in
  Cmd.v
    (Cmd.info "trace-stats"
       ~doc:"Replay a recorded trace through a cache and print its SDC.")
    Term.(const run $ path $ size_kb $ assoc)

(* ---- cache --------------------------------------------------------- *)

let cache_stats_cmd =
  let run common =
    match Context.scan_cache common.ctx with
    | None -> Format.fprintf std "no profile cache directory configured@."
    | Some r ->
        let n_tmp = List.length r.Context.cr_tmp in
        Format.fprintf std
          "profile cache: %d live, %d stale, %d foreign entr%s%s@."
          (List.length r.Context.cr_live)
          (List.length r.Context.cr_stale)
          (List.length r.Context.cr_foreign)
          (if
             List.length r.Context.cr_live
             + List.length r.Context.cr_stale
             + List.length r.Context.cr_foreign
             = 1
           then "y"
           else "ies")
          (if n_tmp = 0 then ""
           else Printf.sprintf ", %d orphaned .tmp" n_tmp);
        List.iter
          (fun f -> Format.fprintf std "  stale: %s@." f)
          r.Context.cr_stale;
        List.iter (fun f -> Format.fprintf std "  tmp: %s@." f) r.Context.cr_tmp
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Classify the profile cache: live entries (fingerprint matches a \
          current benchmark/config), stale entries (recognized name but \
          outdated fingerprint), foreign files, and orphaned .tmp staging \
          files left by interrupted writes.")
    Term.(const run $ common_term)

let cache_prune_cmd =
  let run common =
    let deleted = Context.prune_cache common.ctx in
    List.iter (fun f -> Format.fprintf std "deleted %s@." f) deleted;
    Format.fprintf std "%d stale or orphaned entr%s pruned@."
      (List.length deleted)
      (if List.length deleted = 1 then "y" else "ies")
  in
  Cmd.v
    (Cmd.info "prune"
       ~doc:
         "Delete profile-cache entries whose fingerprint no longer matches \
          any known benchmark/config pair, plus orphaned .tmp staging files \
          from interrupted writes.  Live and foreign files are kept.")
    Term.(const run $ common_term)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or prune the profile cache directory.")
    [ cache_stats_cmd; cache_prune_cmd ]

(* ---- trace-report ---------------------------------------------------- *)

let read_jsonl_events path =
  let ic = open_in path in
  let events = ref [] in
  let lineno = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let trimmed = String.trim line in
           if trimmed <> "" then
             match Obs_event.of_jsonl line with
             | Ok ev -> events := ev :: !events
             | Error msg ->
                 let hint =
                   if trimmed.[0] = '[' || trimmed.[0] = ']' then
                     " (hint: this looks like a Chrome trace; trace-report \
                      reads the JSONL format, i.e. --trace without \
                      --trace-format chrome)"
                   else ""
                 in
                 failwith
                   (Printf.sprintf "Mppm.trace_report: %s:%d: %s%s" path
                      !lineno msg hint)
         done
       with End_of_file -> ());
      List.rev !events)

let trace_report_cmd =
  let run path =
    let events = read_jsonl_events path in
    if events = [] then
      failwith
        (Printf.sprintf
           "Mppm.trace_report: %s holds no events (hint: record a trace \
            with 'mppm compare ... --trace %s' first)"
           path path);
    let named name = List.filter (fun ev -> ev.Obs_event.name = name) events in
    let quanta = named "model.quantum" in
    if quanta = [] then
      failwith
        (Printf.sprintf
           "Mppm.trace_report: %s holds no model.quantum events (hint: the \
            trace must come from 'mppm predict' or 'mppm compare' with \
            --trace; trace-report cannot read bench --trace-phases files)"
           path);
    let programs =
      match named "model.start" with
      | start :: _ ->
          Option.value
            (Obs_event.string_list_field start "programs")
            ~default:[]
      | [] -> []
    in
    let n =
      match quanta with
      | q :: _ -> (
          match Obs_event.float_list_field q "r_after" with
          | Some rs -> List.length rs
          | None -> List.length programs)
      | [] -> 0
    in
    let programs =
      if List.length programs = n then Array.of_list programs
      else Array.init n (Printf.sprintf "P%d")
    in
    (* Convergence records pair 1:1 with quanta via their iter field. *)
    let delta_of =
      let tbl = Hashtbl.create ~random:false 64 in
      List.iter
        (fun ev ->
          match (Obs_event.int_field ev "iter",
                 Obs_event.float_field ev "max_delta_r") with
          | Some iter, Some d -> Hashtbl.replace tbl iter d
          | _ -> ())
        (named "model.convergence");
      fun iter -> Hashtbl.find_opt tbl iter
    in
    Format.fprintf std "%s: %d quanta over %d programs (%s)@.@." path
      (List.length quanta) n
      (String.concat " " (Array.to_list programs));
    Format.fprintf std "  iter  slowest       budget (cycles)   max dR";
    Array.iter (fun p -> Format.fprintf std "  %8s"
                   (if String.length p > 8 then String.sub p 0 8 else p))
      programs;
    Format.fprintf std "@.";
    List.iter
      (fun q ->
        let iter = Option.value (Obs_event.int_field q "iter") ~default:(-1) in
        let slowest =
          match Obs_event.int_field q "slowest" with
          | Some i when i >= 0 && i < n -> programs.(i)
          | _ -> "?"
        in
        let budget =
          Option.value (Obs_event.float_field q "budget_cycles") ~default:0.0
        in
        Format.fprintf std "  %4d  %-12s  %16.0f  " iter slowest budget;
        (match delta_of iter with
        | Some d -> Format.fprintf std "%7.4f" d
        | None -> Format.fprintf std "%7s" "-");
        (match Obs_event.float_list_field q "r_after" with
        | Some rs -> List.iter (fun r -> Format.fprintf std "  %8.4f" r) rs
        | None -> ());
        Format.fprintf std "@.")
      quanta;
    (* R_p trajectories, one series per program (Fig. 3 style). *)
    let trajectory i =
      Array.of_list
        (List.filter_map
           (fun q ->
             match Obs_event.float_list_field q "r_after" with
             | Some rs -> List.nth_opt rs i
             | None -> None)
           quanta)
    in
    let series =
      Array.to_list (Array.mapi (fun i p -> (p, trajectory i)) programs)
    in
    Format.fprintf std "@.%s@."
      (Mppm_util.Ascii_plot.series ~x_label:"quantum" ~y_label:"R_p" series);
    (match named "model.result" with
    | result :: _ ->
        Format.fprintf std "converged after %d iterations:  STP %.3f   ANTT %.3f@."
          (Option.value (Obs_event.int_field result "iterations") ~default:0)
          (Option.value (Obs_event.float_field result "stp") ~default:nan)
          (Option.value (Obs_event.float_field result "antt") ~default:nan)
    | [] -> ())
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:
         "Render a JSONL model trace (from --trace) as a per-quantum \
          convergence table plus R_p trajectory plot.")
    Term.(const run $ path)

(* ---- main ------------------------------------------------------------ *)

let () =
  let doc = "The Multi-Program Performance Model (IISWC 2011) toolkit." in
  (* ~catch:false so domain errors (Failure/Sys_error, e.g. a malformed
     or missing trace file) print as one clean line on stderr with exit
     code 2 instead of cmdliner's internal-error backtrace panel. *)
  try
    exit
      (Cmd.eval ~catch:false
         (Cmd.group (Cmd.info "mppm" ~doc)
            [
              suite_cmd; profile_cmd; predict_cmd; simulate_cmd; compare_cmd;
              population_cmd; rank_cmd; categories_cmd; cache_cmd;
              trace_record_cmd; trace_stats_cmd; trace_report_cmd;
            ]))
  with
  | Failure msg ->
      prerr_endline ("mppm: " ^ msg);
      exit 2
  | Sys_error msg ->
      prerr_endline ("mppm: " ^ msg);
      exit 2
