(* The mppm command-line tool.

   Subcommands:
     suite                list the synthetic benchmark suite
     profile              run single-core profiling for benchmarks
     predict              MPPM-predict a mix from profiles
     simulate             detailed multi-core simulation of a mix
     compare              predict + simulate + error report for a mix
     population           combinatorics of the mix population
     rank-configs         rank the six LLC configs with MPPM

   Every subcommand shares the scale/seed/cache options, so a profile
   computed once (or by the bench harness) is reused everywhere. *)

module Suite = Mppm_trace.Suite
module Benchmark = Mppm_trace.Benchmark
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Mix = Mppm_workload.Mix
module Sampler = Mppm_workload.Sampler
open Mppm_experiments

let std = Format.std_formatter

(* ---- shared options ------------------------------------------------ *)

type common = { ctx : Context.t; llc_config : int }

let make_common trace seed cache_dir llc_config =
  { ctx = Context.create ~seed ~cache_dir (Scale.of_trace trace); llc_config }

open Cmdliner

let common_term =
  let trace =
    Arg.(
      value & opt int 2_000_000
      & info [ "trace" ] ~doc:"Trace length in instructions.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master random seed.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string "_profile_cache"
      & info [ "cache" ] ~doc:"Profile cache directory.")
  in
  let llc_config =
    Arg.(
      value & opt int 1
      & info [ "config" ] ~doc:"LLC configuration, 1..6 (Table 2).")
  in
  Term.(const make_common $ trace $ seed $ cache_dir $ llc_config)

let mix_arg =
  Arg.(
    non_empty
    & pos_all string []
    & info [] ~docv:"BENCHMARK"
        ~doc:"Benchmark names forming the mix (repeat a name for copies).")

(* ---- suite --------------------------------------------------------- *)

let suite_cmd =
  let run () =
    Array.iter
      (fun b -> Format.fprintf std "%a@." Benchmark.pp b)
      Suite.all
  in
  Cmd.v (Cmd.info "suite" ~doc:"List the synthetic benchmark suite.")
    Term.(const run $ const ())

(* ---- profile ------------------------------------------------------- *)

let profile_cmd =
  let run common names =
    let names = if names = [ "all" ] then Array.to_list Suite.names else names in
    List.iter
      (fun name ->
        let index = Suite.index name in
        let p = Context.profile common.ctx ~llc_config:common.llc_config index in
        Format.fprintf std "%a@." Profile.pp_summary p)
      names
  in
  let names =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark names, or 'all'.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run (or load) single-core profiling and print a summary.")
    Term.(const run $ common_term $ names)

(* ---- predict / simulate / compare ----------------------------------- *)

let pp_predicted result =
  Format.fprintf std "MPPM prediction (%d iterations):@."
    result.Model.iterations;
  Array.iter
    (fun p ->
      Format.fprintf std
        "  %-12s slowdown %5.3f  CPI %6.3f -> %6.3f@." p.Model.name
        p.Model.slowdown p.Model.cpi_single p.Model.cpi_multi)
    result.Model.programs;
  Format.fprintf std "  STP %.3f   ANTT %.3f@." result.Model.stp
    result.Model.antt

let predict_cmd =
  let run common names =
    let mix = Mix.of_names (Array.of_list names) in
    pp_predicted (Context.predict common.ctx ~llc_config:common.llc_config mix)
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Predict a mix's multi-core performance with MPPM.")
    Term.(const run $ common_term $ mix_arg)

let pp_measured (m : Context.measured) =
  Format.fprintf std "detailed simulation:@.";
  Array.iteri
    (fun i p ->
      Format.fprintf std "  %-12s slowdown %5.3f  CPI %6.3f -> %6.3f@."
        p.Mppm_multicore.Multi_core.name m.Context.m_slowdowns.(i)
        m.Context.m_cpi_single.(i) m.Context.m_cpi_multi.(i))
    m.Context.m_detail.Mppm_multicore.Multi_core.programs;
  Format.fprintf std "  STP %.3f   ANTT %.3f@." m.Context.m_stp
    m.Context.m_antt

let simulate_cmd =
  let run common names =
    let mix = Mix.of_names (Array.of_list names) in
    pp_measured (Context.detailed common.ctx ~llc_config:common.llc_config mix)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the detailed multi-core simulator on a mix.")
    Term.(const run $ common_term $ mix_arg)

let compare_cmd =
  let run common names =
    let mix = Mix.of_names (Array.of_list names) in
    let predicted = Context.predict common.ctx ~llc_config:common.llc_config mix in
    let measured = Context.detailed common.ctx ~llc_config:common.llc_config mix in
    pp_predicted predicted;
    pp_measured measured;
    let err p m = 100.0 *. abs_float (p -. m) /. m in
    Format.fprintf std "errors: STP %.1f%%  ANTT %.1f%%@."
      (err predicted.Model.stp measured.Context.m_stp)
      (err predicted.Model.antt measured.Context.m_antt)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Predict and simulate a mix; report the prediction error.")
    Term.(const run $ common_term $ mix_arg)

(* ---- population ------------------------------------------------------ *)

let population_cmd =
  let run cores =
    List.iter
      (fun m ->
        Format.fprintf std "%2d cores: %.0f mixes@." m (Mix.population ~cores:m))
      cores
  in
  let cores =
    Arg.(value & pos_all int [ 2; 4; 8; 16 ] & info [] ~docv:"CORES")
  in
  Cmd.v
    (Cmd.info "population"
       ~doc:"Count the multi-program workload population (Sec. 1).")
    Term.(const run $ cores)

(* ---- rank-configs ----------------------------------------------------- *)

let rank_cmd =
  let run common cores count =
    let rng = Context.rng common.ctx "cli-rank" in
    let mixes = Sampler.random_mixes rng ~cores ~count in
    Format.fprintf std
      "ranking LLC configs by mean MPPM-predicted STP over %d %d-core mixes@."
      count cores;
    let means =
      Array.map
        (fun cfg ->
          let stps =
            Array.map
              (fun mix -> (Context.predict common.ctx ~llc_config:cfg mix).Model.stp)
              mixes
          in
          (cfg, Mppm_util.Stats.mean stps))
        (Array.init Mppm_cache.Configs.llc_config_count (fun i -> i + 1))
    in
    let order = Array.copy means in
    Array.sort (fun (_, a) (_, b) -> compare b a) order;
    Array.iteri
      (fun rank (cfg, stp) ->
        Format.fprintf std "  %d. config #%d  mean STP %.3f@." (rank + 1) cfg
          stp)
      order
  in
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Programs per mix.")
  in
  let count =
    Arg.(value & opt int 500 & info [ "mixes" ] ~doc:"Number of mixes.")
  in
  Cmd.v
    (Cmd.info "rank-configs"
       ~doc:"Rank the Table 2 LLC configurations with MPPM.")
    Term.(const run $ common_term $ cores $ count)

(* ---- categories -------------------------------------------------------- *)

let categories_cmd =
  let run common =
    let profiles = Context.all_profiles common.ctx ~llc_config:common.llc_config in
    let classes = Mppm_workload.Category.classify_profiles profiles in
    Array.iteri
      (fun i p ->
        Format.fprintf std "%-12s %a  mem-CPI fraction %4.0f%%  (CPI %.3f)@."
          Suite.names.(i) Mppm_workload.Category.pp classes.(i)
          (100.0 *. Profile.memory_cpi_fraction p)
          (Profile.cpi p))
      profiles;
    let mem, comp = Mppm_workload.Category.partition classes in
    Format.fprintf std "@.%d MEM, %d COMP@." (Array.length mem)
      (Array.length comp)
  in
  Cmd.v
    (Cmd.info "categories"
       ~doc:"Classify the suite into MEM/COMP benchmark categories (Sec. 5).")
    Term.(const run $ common_term)

(* ---- traces -------------------------------------------------------------- *)

let trace_record_cmd =
  let run name path accesses seed =
    let generator =
      Mppm_trace.Generator.create ~seed (Suite.find name)
    in
    let meta =
      Mppm_trace.Trace_file.record ~path ~generator ~accesses ()
    in
    Format.fprintf std "recorded %d references (%d instructions) of %s to %s@."
      meta.Mppm_trace.Trace_file.accesses
      meta.Mppm_trace.Trace_file.instructions
      meta.Mppm_trace.Trace_file.benchmark path
  in
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let path = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let accesses =
    Arg.(
      value & opt int 100_000
      & info [ "accesses" ] ~doc:"References to record.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  Cmd.v
    (Cmd.info "trace-record"
       ~doc:"Record a benchmark's memory-reference trace to a file.")
    Term.(const run $ bench_arg $ path $ accesses $ seed)

let trace_stats_cmd =
  let run path size_kb assoc =
    let geometry =
      Mppm_cache.Geometry.make
        ~size_bytes:(Mppm_cache.Geometry.kib size_kb)
        ~line_bytes:64 ~associativity:assoc
    in
    let meta = Mppm_trace.Trace_file.read_meta path in
    let sdc = Mppm_trace.Trace_file.replay_sdc path ~geometry in
    Format.fprintf std "%s: %d references of %s@." path
      meta.Mppm_trace.Trace_file.accesses
      meta.Mppm_trace.Trace_file.benchmark;
    Format.fprintf std "on %a: miss rate %.2f%%@." Mppm_cache.Geometry.pp
      geometry
      (100.0 *. Mppm_cache.Sdc.miss_rate sdc);
    Format.fprintf std "%a@." Mppm_cache.Sdc.pp sdc
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let size_kb =
    Arg.(value & opt int 512 & info [ "size" ] ~doc:"Cache size in KB.")
  in
  let assoc =
    Arg.(value & opt int 8 & info [ "assoc" ] ~doc:"Cache associativity.")
  in
  Cmd.v
    (Cmd.info "trace-stats"
       ~doc:"Replay a recorded trace through a cache and print its SDC.")
    Term.(const run $ path $ size_kb $ assoc)

(* ---- main ------------------------------------------------------------ *)

let () =
  let doc = "The Multi-Program Performance Model (IISWC 2011) toolkit." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "mppm" ~doc)
          [
            suite_cmd; profile_cmd; predict_cmd; simulate_cmd; compare_cmd;
            population_cmd; rank_cmd; categories_cmd; trace_record_cmd;
            trace_stats_cmd;
          ]))
