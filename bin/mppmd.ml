(* mppmd: the resident MPPM prediction daemon.

   Keeps the whole benchmark suite's single-core profiles resident (warmed
   through Context.all_profiles over the domain pool at startup, then
   served from the Single_flight memo forever after) and answers
   predict / compare / rank / stats queries over the length-prefixed wire
   protocol of Mppm_serve.Wire — see docs/service.md for the spec.

   Architecture: one select(2) loop owns the listening socket and every
   client connection; complete frames collected in a loop pass form a
   batch that is fanned across an Mppm_pool.Pool of domains (requests
   pipelined on one connection keep their order because batches preserve
   arrival order).  All request handling is Mppm_serve.Dispatch — the
   daemon owns only sockets, so its answers are byte-identical to the
   one-shot CLI for the same query, whatever the job count or client
   interleaving (tested in test/suite_serve.ml, diffed again by CI). *)

module Wire = Mppm_serve.Wire
module Dispatch = Mppm_serve.Dispatch
module Pool = Mppm_pool.Pool
module Registry = Mppm_obs.Registry
open Mppm_experiments

let max_clients = 64

(* ---- sockets --------------------------------------------------------- *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      failwith (Printf.sprintf "mppmd: cannot resolve host %S" host))

(* A leftover socket file from a crashed daemon would make every restart
   fail; probe it and only reclaim the path when nothing accepts. *)
let reclaim_stale_unix_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
        Unix.close probe;
        failwith
          (Printf.sprintf
             "mppmd: %s is in use by a running daemon (shut it down first, \
              or listen elsewhere)"
             path)
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        Unix.close probe;
        (try Sys.remove path with Sys_error _ -> ())
    | exception e ->
        Unix.close probe;
        raise e
  end

let listen_socket = function
  | Wire.Unix_socket path ->
      reclaim_stale_unix_socket path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd max_clients;
      fd
  | Wire.Tcp { host; port } ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
      Unix.listen fd max_clients;
      fd

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* ---- connections ----------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  id : int;
  mutable inbox : string;  (* received bytes not yet consumed by framing *)
  mutable closing : bool;  (* close once the pending responses are out *)
}

(* One unit of work for the dispatch batch: a well-framed payload, or the
   framing-layer error that poisoned the connection. *)
type work = Payload of string | Garbage of Wire.error_code * string

(* Pop every complete frame out of [conn.inbox].  A corrupt length prefix
   cannot be resynchronized, so it yields one final [Garbage] work item
   (answered with a structured error response) and marks the connection
   for close. *)
let rec take_frames conn acc =
  let data = conn.inbox in
  if String.length data < 4 then List.rev acc
  else
    match Wire.frame_length (String.sub data 0 4) with
    | Error (code, msg) ->
        conn.inbox <- "";
        conn.closing <- true;
        List.rev (Garbage (code, msg) :: acc)
    | Ok len ->
        if String.length data < 4 + len then List.rev acc
        else begin
          let payload = String.sub data 4 len in
          conn.inbox <-
            String.sub data (4 + len) (String.length data - 4 - len);
          take_frames conn (Payload payload :: acc)
        end

(* ---- request handling ------------------------------------------------ *)

(* Runs on a pool domain: pure function of the work item (registry and
   single-flight traffic is the sanctioned shared state), so responses
   are independent of scheduling. *)
let compute ctx work =
  match work with
  | Garbage (code, message) ->
      Registry.incr "serve.errors";
      (Wire.encode_response (Wire.Error { code; message }), false)
  | Payload payload -> (
      match Wire.decode_request payload with
      | Error (code, message) ->
          Registry.incr "serve.errors";
          (Wire.encode_response (Wire.Error { code; message }), false)
      | Ok req ->
          let shutdown =
            match req with Wire.Shutdown -> true | _ -> false
          in
          (Wire.encode_response (Dispatch.handle ctx req), shutdown))

(* ---- the serve loop -------------------------------------------------- *)

let serve ctx pool listen_fd =
  let running = ref true in
  let conns = ref [] in
  let next_id = ref 0 in
  let drop conn =
    conns := List.filter (fun c -> c.id <> conn.id) !conns;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  let accept_new () =
    match Unix.accept listen_fd with
    | fd, _ ->
        incr next_id;
        Registry.incr "serve.connections";
        conns := !conns @ [ { fd; id = !next_id; inbox = ""; closing = false } ]
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let read_conn conn =
    let buf = Bytes.create 65536 in
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> drop conn
    | n -> conn.inbox <- conn.inbox ^ Bytes.sub_string buf 0 n
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        drop conn
  in
  while !running do
    let watched =
      (if List.length !conns < max_clients then [ listen_fd ] else [])
      @ List.map (fun c -> c.fd) !conns
    in
    match Unix.select watched [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem listen_fd readable then accept_new ();
        List.iter
          (fun conn -> if List.mem conn.fd readable then read_conn conn)
          !conns;
        (* Collect every complete frame that arrived this pass — across
           connections, in accept order, preserving per-connection
           arrival order — and answer the whole batch through the pool. *)
        let batch =
          List.concat_map
            (fun conn ->
              List.map (fun w -> (conn, w)) (take_frames conn []))
            !conns
        in
        if batch <> [] then begin
          Registry.incr "serve.batches";
          let items = Array.of_list batch in
          let answers =
            Pool.map pool (fun (_, work) -> compute ctx work) items
          in
          Array.iteri
            (fun i (encoded, shutdown) ->
              let conn, _ = items.(i) in
              (try write_all conn.fd (Wire.frame encoded)
               with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                 conn.closing <- true);
              if shutdown then running := false)
            answers;
          List.iter (fun c -> if c.closing then drop c) !conns
        end
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns

(* ---- start-up -------------------------------------------------------- *)

let parse_warm_configs s =
  let all = Mppm_cache.Configs.llc_config_count in
  if s = "all" then List.init all (fun i -> i + 1)
  else
    let parts = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
    if parts = [] then
      failwith "mppmd: --warm-configs needs \"all\" or LLC config numbers";
    List.map
      (fun p ->
        match int_of_string_opt p with
        | Some c when c >= 1 && c <= all -> c
        | _ ->
            failwith
              (Printf.sprintf
                 "mppmd: bad --warm-configs entry %S (valid: 1..%d or \
                  \"all\")"
                 p all))
      parts

let run length seed cache_dir listen jobs warm_configs =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let endpoint =
    match Wire.endpoint_of_string listen with
    | Ok ep -> ep
    | Error msg -> failwith msg
  in
  let warm_configs = parse_warm_configs warm_configs in
  let ctx = Context.create ~seed ~cache_dir (Scale.of_trace length) in
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  Pool.with_pool ~jobs @@ fun pool ->
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun cfg -> ignore (Context.all_profiles ~pool ctx ~llc_config:cfg))
    warm_configs;
  Format.printf "mppmd: %d profiles resident (LLC config%s %s) in %.1fs@."
    (Mppm_trace.Suite.count * List.length warm_configs)
    (if List.length warm_configs = 1 then "" else "s")
    (String.concat "," (List.map string_of_int warm_configs))
    (Unix.gettimeofday () -. t0);
  let listen_fd = listen_socket endpoint in
  Format.printf "mppmd: listening on %s (%d worker domain%s)@.%!"
    (Wire.endpoint_to_string endpoint)
    jobs
    (if jobs = 1 then "" else "s");
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      match endpoint with
      | Wire.Unix_socket path -> (
          try Sys.remove path with Sys_error _ -> ())
      | Wire.Tcp _ -> ())
    (fun () -> serve ctx pool listen_fd);
  Format.printf "mppmd: served %.0f request(s) over %.0f connection(s)@."
    (Registry.get "serve.requests")
    (Registry.get "serve.connections")

(* ---- command line ---------------------------------------------------- *)

open Cmdliner

let length_term =
  Arg.(
    value & opt int 2_000_000
    & info [ "length" ] ~doc:"Trace length in instructions.")

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master random seed.")

let cache_term =
  Arg.(
    value
    & opt string "_profile_cache"
    & info [ "cache" ] ~doc:"Profile cache directory.")

let listen_term =
  Arg.(
    value
    & opt string "unix:mppmd.sock"
    & info [ "listen" ] ~docv:"ENDPOINT"
        ~doc:
          "Where to accept connections: $(b,unix:PATH) or \
           $(b,tcp:HOST:PORT).")

let jobs_term =
  Arg.(
    value & opt int 0
    & info [ "jobs" ]
        ~doc:
          "Worker domains answering request batches (0 = \
           Domain.recommended_domain_count).  Responses are bit-for-bit \
           identical for any value.")

let warm_term =
  Arg.(
    value & opt string "1"
    & info [ "warm-configs" ] ~docv:"CONFIGS"
        ~doc:
          "LLC configurations (Table 2) whose 29 profiles are loaded \
           resident at startup: comma-separated numbers or $(b,all).  \
           Other configurations warm lazily on first request.")

let cmd =
  Cmd.v
    (Cmd.info "mppmd"
       ~doc:
         "The resident MPPM prediction daemon: a hot profile store \
          answering predict/compare/rank/stats queries over a \
          length-prefixed socket protocol (see docs/service.md).")
    Term.(
      const run $ length_term $ seed_term $ cache_term $ listen_term
      $ jobs_term $ warm_term)

let () =
  try exit (Cmd.eval ~catch:false cmd) with
  | Failure msg ->
      prerr_endline ("mppmd: " ^ msg);
      exit 2
  | Sys_error msg ->
      prerr_endline ("mppmd: " ^ msg);
      exit 2
  | Unix.Unix_error (err, fn, arg) ->
      prerr_endline
        (Printf.sprintf "mppmd: %s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message err));
      exit 2
