(* Tests for lib/serve and the mppmd daemon.

   Wire: qcheck round-trips (decode is a left inverse of encode for
   requests and responses), totality of the decoder on truncated,
   version-bumped, tag-corrupted, oversized and trailing-byte payloads,
   and the framing contract.

   Dispatch: handler output is byte-identical to the CLI renderers over
   the same context, malformed queries come back as structured errors,
   and rank is a deterministic function of the context seed.

   Daemon (when the built executables are visible): mppmd answers eight
   concurrent clients — pipelined, split-write and garbage frames
   included — byte-identically to the one-shot CLI, for --jobs 1 and
   --jobs 4 alike, and the loadgen harness passes its own --check. *)

module Wire = Mppm_serve.Wire
module Dispatch = Mppm_serve.Dispatch
module Suite = Mppm_trace.Suite
open Mppm_experiments

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let tiny_scale = Scale.of_trace 100_000
let make_ctx () = Context.create ~seed:7 tiny_scale

(* ---- qcheck round-trips ---------------------------------------------- *)

let name_gen = QCheck.Gen.(string_size ~gen:printable (int_bound 12))

let request_gen =
  let open QCheck.Gen in
  oneof
    [
      map2
        (fun names llc_config -> Wire.Predict { names; llc_config })
        (list_size (int_bound 6) name_gen)
        (int_bound 1000);
      map2
        (fun names llc_config -> Wire.Compare { names; llc_config })
        (list_size (int_bound 6) name_gen)
        (int_bound 1000);
      map2
        (fun cores count -> Wire.Rank { cores; count })
        (int_bound 100) (int_bound 10_000);
      return Wire.Stats;
      return Wire.Shutdown;
    ]

let error_code_gen =
  QCheck.Gen.oneofl
    [
      Wire.Bad_frame; Wire.Bad_version; Wire.Bad_request; Wire.Bad_response;
      Wire.Unknown_benchmark; Wire.Internal;
    ]

let response_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun s -> Wire.Output s) (string_size ~gen:printable (int_bound 200));
      map
        (fun kvs -> Wire.Counters kvs)
        (list_size (int_bound 8) (pair name_gen float));
      map2
        (fun code message -> Wire.Error { code; message })
        error_code_gen name_gen;
    ]

let request_arb =
  QCheck.make request_gen ~print:(fun r ->
      String.escaped (Wire.encode_request r))

let response_arb =
  QCheck.make response_gen ~print:(fun r ->
      String.escaped (Wire.encode_response r))

let qcheck_tests =
  [
    QCheck.Test.make ~count:500 ~name:"request decode∘encode = id" request_arb
      (fun req ->
        match Wire.decode_request (Wire.encode_request req) with
        | Result.Ok req' -> Wire.equal_request req req'
        | Result.Error _ -> false);
    QCheck.Test.make ~count:500 ~name:"response decode∘encode = id"
      response_arb (fun resp ->
        match Wire.decode_response (Wire.encode_response resp) with
        | Result.Ok resp' -> Wire.equal_response resp resp'
        | Result.Error _ -> false);
    QCheck.Test.make ~count:500 ~name:"truncated request is a Bad_frame"
      request_arb (fun req ->
        let enc = Wire.encode_request req in
        match
          Wire.decode_request (String.sub enc 0 (String.length enc - 1))
        with
        | Result.Error (Wire.Bad_frame, _) -> true
        | _ -> false);
    QCheck.Test.make ~count:500 ~name:"trailing bytes are a Bad_frame"
      request_arb (fun req ->
        match Wire.decode_request (Wire.encode_request req ^ "\x00") with
        | Result.Error (Wire.Bad_frame, _) -> true
        | _ -> false);
    QCheck.Test.make ~count:500 ~name:"version bump is a Bad_version"
      request_arb (fun req ->
        let enc = Bytes.of_string (Wire.encode_request req) in
        Bytes.set enc 0 (Char.chr (Wire.protocol_version + 8));
        match Wire.decode_request (Bytes.to_string enc) with
        | Result.Error (Wire.Bad_version, _) -> true
        | _ -> false);
    QCheck.Test.make ~count:500 ~name:"framing round-trip" request_arb
      (fun req ->
        let payload = Wire.encode_request req in
        let framed = Wire.frame payload in
        match Wire.frame_length (String.sub framed 0 4) with
        | Result.Ok len ->
            len = String.length payload
            && String.sub framed 4 len = payload
        | Result.Error _ -> false);
  ]

(* ---- decoder totality on crafted payloads ---------------------------- *)

let u32_be v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (v land 0xff));
  Bytes.to_string b

let expect_error what result expected_code =
  match result with
  | Result.Error (code, msg) ->
      Alcotest.(check bool)
        (what ^ " carries the expected code")
        true (code = expected_code);
      Alcotest.(check bool) (what ^ " message is prefixed") true
        (String.length msg > 5 && String.sub msg 0 5 = "Wire:")
  | Result.Ok _ -> Alcotest.fail (what ^ ": decoder accepted a bad payload")

let test_decoder_totality () =
  expect_error "unknown request tag"
    (Wire.decode_request "\x01\xff")
    Wire.Bad_request;
  expect_error "unknown response tag"
    (Wire.decode_response "\x01\xff")
    Wire.Bad_response;
  expect_error "unknown error code"
    (Wire.decode_response ("\x01\x03\x2a" ^ u32_be 0))
    Wire.Bad_response;
  expect_error "empty payload" (Wire.decode_request "") Wire.Bad_frame;
  (* A hostile count field must be rejected before any allocation. *)
  expect_error "list count above the cap"
    (Wire.decode_request ("\x01\x01" ^ u32_be 1 ^ u32_be 1_000_000))
    Wire.Bad_frame;
  (* A name length lying past the payload end. *)
  expect_error "lying string length"
    (Wire.decode_request ("\x01\x01" ^ u32_be 1 ^ u32_be 1 ^ u32_be 500))
    Wire.Bad_frame

let test_framing_contract () =
  (match Wire.frame_length "ab" with
  | Result.Error (Wire.Bad_frame, _) -> ()
  | _ -> Alcotest.fail "short prefix accepted");
  (match Wire.frame_length (u32_be 0) with
  | Result.Error (Wire.Bad_frame, _) -> ()
  | _ -> Alcotest.fail "zero-length frame accepted");
  (match Wire.frame_length (u32_be (Wire.max_frame_bytes + 1)) with
  | Result.Error (Wire.Bad_frame, _) -> ()
  | _ -> Alcotest.fail "oversized frame accepted");
  (match Wire.frame_length (u32_be 2) with
  | Result.Ok 2 -> ()
  | _ -> Alcotest.fail "minimal frame rejected");
  Alcotest.(check bool) "frame rejects the empty payload" true
    (try
       ignore (Wire.frame "");
       false
     with Invalid_argument _ -> true)

let test_endpoints () =
  (match Wire.endpoint_of_string "unix:/tmp/x.sock" with
  | Result.Ok (Wire.Unix_socket "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix endpoint");
  (match Wire.endpoint_of_string "tcp:localhost:7070" with
  | Result.Ok (Wire.Tcp { host = "localhost"; port = 7070 }) -> ()
  | _ -> Alcotest.fail "tcp endpoint");
  List.iter
    (fun bad ->
      match Wire.endpoint_of_string bad with
      | Result.Error _ -> ()
      | Result.Ok _ -> Alcotest.fail ("accepted bad endpoint " ^ bad))
    [ "unix:"; "tcp:localhost"; "tcp::80"; "tcp:h:0"; "tcp:h:70000"; "nope" ];
  List.iter
    (fun s ->
      match Wire.endpoint_of_string s with
      | Result.Ok ep ->
          Alcotest.(check string) "endpoint round-trip" s
            (Wire.endpoint_to_string ep)
      | Result.Error _ -> Alcotest.fail ("endpoint " ^ s))
    [ "unix:mppmd.sock"; "tcp:127.0.0.1:7070" ]

(* ---- dispatch -------------------------------------------------------- *)

let render f = Format.asprintf "%t" f

let output_of what resp =
  match resp with
  | Wire.Output text -> text
  | Wire.Error { message; _ } -> Alcotest.fail (what ^ ": error: " ^ message)
  | Wire.Counters _ -> Alcotest.fail (what ^ ": unexpected counters")

let test_dispatch_predict_matches_renderers () =
  let ctx = make_ctx () in
  let names = [ "gamess"; "gamess"; "hmmer"; "soplex" ] in
  let served =
    output_of "predict"
      (Dispatch.handle ctx (Wire.Predict { names; llc_config = 1 }))
  in
  let mixes =
    match Dispatch.parse_mixes names with
    | Result.Ok mixes -> mixes
    | Result.Error (_, msg) -> Alcotest.fail msg
  in
  let direct =
    let results =
      Array.map
        (fun mix -> Context.predict ctx ~llc_config:1 mix)
        (Array.of_list mixes)
    in
    render (fun ppf -> Dispatch.pp_batch Dispatch.pp_predicted ~mixes ppf results)
  in
  Alcotest.(check string) "served = rendered" direct served;
  (* A batch gets the == mix == headers. *)
  let batch =
    output_of "batch predict"
      (Dispatch.handle ctx
         (Wire.Predict { names = [ "gamess,hmmer"; "lbm,milc" ]; llc_config = 1 }))
  in
  Alcotest.(check bool) "batch has mix headers" true
    (contains batch "== mix ")

let test_dispatch_errors () =
  let ctx = make_ctx () in
  (match Dispatch.handle ctx (Wire.Predict { names = [ "nosuch" ]; llc_config = 1 }) with
  | Wire.Error { code = Wire.Unknown_benchmark; message } ->
      Alcotest.(check bool) "names the benchmark" true
        (contains message "nosuch")
  | _ -> Alcotest.fail "unknown benchmark not rejected");
  (match Dispatch.handle ctx (Wire.Predict { names = []; llc_config = 1 }) with
  | Wire.Error { code = Wire.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "empty mix not rejected");
  List.iter
    (fun llc_config ->
      match Dispatch.handle ctx (Wire.Predict { names = [ "gamess" ]; llc_config }) with
      | Wire.Error { code = Wire.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "LLC config bound not enforced")
    [ 0; 7; -1 ];
  List.iter
    (fun (cores, count) ->
      match Dispatch.handle ctx (Wire.Rank { cores; count }) with
      | Wire.Error { code = Wire.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "rank bounds not enforced")
    [ (0, 10); (65, 10); (2, 0); (2, 2_000_000) ]

let test_dispatch_rank_deterministic () =
  let ctx = make_ctx () in
  let one () =
    output_of "rank" (Dispatch.handle ctx (Wire.Rank { cores = 2; count = 3 }))
  in
  let a = one () in
  Alcotest.(check string) "rank repeats bit-for-bit" a (one ());
  Alcotest.(check bool) "rank lists every config" true
    (contains a
       (Printf.sprintf "%d. config #" Mppm_cache.Configs.llc_config_count));
  (* The handler is exactly rank_configs fed through pp_ranking. *)
  let direct =
    Format.asprintf "%t" (fun fmt ->
        Dispatch.pp_ranking ~cores:2 ~count:3 fmt
          (Dispatch.rank_configs ctx ~cores:2 ~count:3))
  in
  Alcotest.(check string) "handle output is the rendered ranking" direct a

let test_dispatch_stats () =
  let ctx = make_ctx () in
  ignore (Dispatch.handle ctx (Wire.Predict { names = [ "hmmer" ]; llc_config = 1 }));
  match Dispatch.handle ctx Wire.Stats with
  | Wire.Counters kvs ->
      let get name = List.assoc_opt name kvs in
      (match get "serve.requests" with
      | Some v -> Alcotest.(check bool) "requests counted" true (v >= 1.0)
      | None -> Alcotest.fail "serve.requests missing")
  | _ -> Alcotest.fail "stats did not return counters"

(* ---- daemon integration ---------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let built_exe rel =
  let candidates =
    (match Sys.getenv_opt "MPPM_LINT_ROOT" with Some r -> [ r ] | None -> [])
    @ [ ".."; "../.."; "." ]
  in
  List.find_map
    (fun root ->
      let path = Filename.concat root rel in
      if Sys.file_exists path then Some path else None)
    candidates

let run_cli cmd =
  let out = Filename.temp_file "mppm_serve_out" ".txt" in
  let rc = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out)) in
  let text = read_file out in
  Sys.remove out;
  (rc, text)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Reads exactly one frame: [fill] never asks the socket for more bytes
   than the current frame needs, so pipelined responses queued behind it
   are left for the next call. *)
let read_frame fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec fill need =
    if Buffer.length buf < need then begin
      let want = min (Bytes.length chunk) (need - Buffer.length buf) in
      let n = Unix.read fd chunk 0 want in
      if n = 0 then Alcotest.fail "daemon closed the connection mid-response";
      Buffer.add_subbytes buf chunk 0 n;
      fill need
    end
  in
  fill 4;
  let len =
    match Wire.frame_length (String.sub (Buffer.contents buf) 0 4) with
    | Result.Ok len -> len
    | Result.Error (_, msg) -> Alcotest.fail msg
  in
  fill (4 + len);
  String.sub (Buffer.contents buf) 4 len

let response_text payload =
  match Wire.decode_response payload with
  | Result.Ok (Wire.Output text) -> text
  | Result.Ok (Wire.Error { message; _ }) ->
      Alcotest.fail ("daemon error: " ^ message)
  | Result.Ok (Wire.Counters _) -> Alcotest.fail "unexpected counters"
  | Result.Error (_, msg) -> Alcotest.fail msg

(* A daemon under test: spawned from the built mppmd.exe, shut down (and
   reaped) by [stop], its socket reclaimed by the temp-dir name. *)
type daemon = { pid : int; sock : string; log : string }

let start_daemon exe ~jobs ~cache ~idx =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mppmd-test-%d-%d.sock" (Unix.getpid ()) idx)
  in
  (try Sys.remove sock with Sys_error _ -> ());
  let log = Filename.temp_file "mppmd_test" ".log" in
  let log_fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0o400 in
  let pid =
    Unix.create_process exe
      [|
        exe; "--length"; "100000"; "--seed"; "7"; "--cache"; cache;
        "--listen"; "unix:" ^ sock; "--jobs"; string_of_int jobs;
      |]
      null log_fd log_fd
  in
  Unix.close log_fd;
  Unix.close null;
  (* Wait until the daemon accepts (it warms 29 profiles first). *)
  let deadline = 1200 in
  let rec await tries =
    if tries > deadline then begin
      Unix.kill pid Sys.sigkill;
      Alcotest.fail ("mppmd did not come up; log: " ^ read_file log)
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        Unix.sleepf 0.05;
        await (tries + 1)
  in
  await 0;
  { pid; sock; log }

let connect daemon =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX daemon.sock);
  fd

let request_daemon daemon req =
  let fd = connect daemon in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd (Wire.frame (Wire.encode_request req));
      read_frame fd)

let stop_daemon daemon =
  (try ignore (request_daemon daemon Wire.Shutdown)
   with _ -> (try Unix.kill daemon.pid Sys.sigkill with Unix.Unix_error _ -> ()));
  ignore (Unix.waitpid [] daemon.pid);
  (try Sys.remove daemon.log with Sys_error _ -> ());
  try Sys.remove daemon.sock with Sys_error _ -> ()

let with_daemon exe ~jobs ~cache ~idx f =
  let daemon = start_daemon exe ~jobs ~cache ~idx in
  Fun.protect ~finally:(fun () -> stop_daemon daemon) (fun () -> f daemon)

let mix_a = [ "gamess"; "gamess"; "hmmer"; "soplex" ]
let mix_b = [ "mcf"; "lbm"; "milc"; "GemsFDTD" ]

let test_daemon_end_to_end () =
  match (built_exe "bin/mppmd.exe", built_exe "bin/mppm.exe") with
  | None, _ | _, None -> () (* source checkout without a build *)
  | Some mppmd, Some mppm ->
      let cache =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "mppmd-test-cache-%d" (Unix.getpid ()))
      in
      let cli names =
        let rc, text =
          run_cli
            (Printf.sprintf
               "%s predict %s --length 100000 --seed 7 --cache %s"
               (Filename.quote mppm) (String.concat " " names)
               (Filename.quote cache))
        in
        Alcotest.(check int) "one-shot CLI exits 0" 0 rc;
        text
      in
      let expect_a = cli mix_a in
      let expect_b = cli mix_b in
      with_daemon mppmd ~jobs:4 ~cache ~idx:0 (fun daemon ->
          (* Eight concurrent clients, alternating queries; all frames are
             written before any response is read, so the daemon sees the
             full concurrency. *)
          let clients =
            Array.init 8 (fun i ->
                (connect daemon, if i mod 2 = 0 then mix_a else mix_b))
          in
          Array.iteri
            (fun i (fd, mix) ->
              let framed =
                Wire.frame
                  (Wire.encode_request
                     (Wire.Predict { names = mix; llc_config = 1 }))
              in
              if i = 0 then begin
                (* Split writes exercise the daemon's frame reassembly. *)
                write_all fd (String.sub framed 0 3);
                Unix.sleepf 0.01;
                write_all fd
                  (String.sub framed 3 (String.length framed - 3))
              end
              else write_all fd framed)
            clients;
          Array.iteri
            (fun i (fd, mix) ->
              let expected = if mix == mix_a then expect_a else expect_b in
              Alcotest.(check string)
                (Printf.sprintf "client %d matches the one-shot CLI" i)
                expected
                (response_text (read_frame fd)))
            clients;
          Array.iter (fun (fd, _) -> Unix.close fd) clients;
          (* Pipelining: three requests in one write come back in order. *)
          let fd = connect daemon in
          let one = Wire.frame (Wire.encode_request (Wire.Predict { names = mix_a; llc_config = 1 })) in
          let two = Wire.frame (Wire.encode_request (Wire.Predict { names = mix_b; llc_config = 1 })) in
          write_all fd (one ^ two ^ one);
          Alcotest.(check string) "pipelined 1" expect_a (response_text (read_frame fd));
          Alcotest.(check string) "pipelined 2" expect_b (response_text (read_frame fd));
          Alcotest.(check string) "pipelined 3" expect_a (response_text (read_frame fd));
          Unix.close fd;
          (* A version-corrupted request is answered with a structured
             error and the connection survives for the next query. *)
          let fd = connect daemon in
          write_all fd
            (Wire.frame
               (Printf.sprintf "%c\x04"
                  (Char.chr (Wire.protocol_version + 8))));
          (match Wire.decode_response (read_frame fd) with
          | Result.Ok (Wire.Error { code = Wire.Bad_version; _ }) -> ()
          | _ -> Alcotest.fail "version error not surfaced");
          write_all fd one;
          Alcotest.(check string) "connection survives a bad request"
            expect_a
            (response_text (read_frame fd));
          Unix.close fd;
          (* The client subcommand speaks the same protocol: unknown
             benchmarks exit 2 with the structured message. *)
          let rc, text =
            run_cli
              (Printf.sprintf "%s client predict nosuch --connect unix:%s"
                 (Filename.quote mppm) daemon.sock)
          in
          Alcotest.(check int) "client exits 2 on unknown benchmark" 2 rc;
          Alcotest.(check bool) "client names the benchmark" true
            (contains text "nosuch");
          let rc, text =
            run_cli
              (Printf.sprintf "%s client stats --connect unix:%s"
                 (Filename.quote mppm) daemon.sock)
          in
          Alcotest.(check int) "client stats exits 0" 0 rc;
          Alcotest.(check bool) "stats lists serve.requests" true
            (contains text "serve.requests");
          (* The loadgen harness against the live daemon: its --check
             verifies responses are deterministic across interleavings. *)
          match built_exe "tools/loadgen.exe" with
          | None -> ()
          | Some loadgen ->
              let rc, text =
                run_cli
                  (Printf.sprintf
                     "%s --connect unix:%s --queries 64 --concurrency 8 \
                      --check"
                     (Filename.quote loadgen) daemon.sock)
              in
              Alcotest.(check int) ("loadgen --check exits 0: " ^ text) 0 rc);
      (* A --jobs 1 daemon answers byte-identically to the --jobs 4 one
         (both already diffed against the CLI above, so one query
         suffices). *)
      with_daemon mppmd ~jobs:1 ~cache ~idx:1 (fun daemon ->
          Alcotest.(check string) "--jobs 1 matches the CLI" expect_a
            (response_text
               (request_daemon daemon
                  (Wire.Predict { names = mix_a; llc_config = 1 }))))

let tests =
  [
    ( "serve.wire",
      List.map QCheck_alcotest.to_alcotest qcheck_tests
      @ [
          Alcotest.test_case "decoder totality" `Quick test_decoder_totality;
          Alcotest.test_case "framing contract" `Quick test_framing_contract;
          Alcotest.test_case "endpoints" `Quick test_endpoints;
        ] );
    ( "serve.dispatch",
      [
        Alcotest.test_case "predict matches renderers" `Quick
          test_dispatch_predict_matches_renderers;
        Alcotest.test_case "structured errors" `Quick test_dispatch_errors;
        Alcotest.test_case "rank deterministic" `Quick
          test_dispatch_rank_deterministic;
        Alcotest.test_case "stats counters" `Quick test_dispatch_stats;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "end to end vs one-shot CLI" `Slow
          test_daemon_end_to_end;
      ] );
  ]
