(* Integration tests for mppm_experiments at miniature scale: the context
   (profile caching, measured/predicted views), and each experiment driver's
   structural contract. *)

module Stats = Mppm_util.Stats
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Mix = Mppm_workload.Mix
open Mppm_experiments

let check_close eps = Alcotest.(check (float eps))

(* Tiny but non-degenerate: 100K-instruction traces, 2K intervals. *)
let tiny_scale = Scale.of_trace 100_000

let make_ctx ?cache_dir () = Context.create ?cache_dir ~seed:7 tiny_scale

(* ---- Scale -------------------------------------------------------------- *)

let test_scale_of_trace () =
  let s = Scale.of_trace 123_456 in
  Alcotest.(check int) "50 intervals" 50
    (s.Scale.trace_instructions / s.Scale.interval_instructions);
  Alcotest.(check int) "rounded up" 0
    (s.Scale.trace_instructions mod s.Scale.interval_instructions);
  Alcotest.(check bool) "at least requested" true
    (s.Scale.trace_instructions >= 123_456);
  Alcotest.(check bool) "invalid raises" true
    (try ignore (Scale.of_trace 0); false with Invalid_argument _ -> true)

let test_scale_presets () =
  Alcotest.(check int) "default" 2_000_000 Scale.default.Scale.trace_instructions;
  Alcotest.(check int) "quick" 1_000_000 Scale.quick.Scale.trace_instructions;
  Alcotest.(check int) "large" 10_000_000 Scale.large.Scale.trace_instructions

(* ---- Context ------------------------------------------------------------- *)

let test_context_profile_memoized () =
  let ctx = make_ctx () in
  let a = Context.profile ctx ~llc_config:1 0 in
  let b = Context.profile ctx ~llc_config:1 0 in
  Alcotest.(check bool) "same physical profile" true (a == b);
  let c = Context.profile ctx ~llc_config:2 0 in
  Alcotest.(check bool) "different config, different profile" true (a != c)

let test_context_disk_cache_roundtrip () =
  let dir = Filename.temp_file "mppm-cache" "" in
  Sys.remove dir;
  let ctx1 = make_ctx ~cache_dir:dir () in
  let a = Context.profile ctx1 ~llc_config:1 3 in
  (* A second context with the same cache dir must load the same values. *)
  let ctx2 = make_ctx ~cache_dir:dir () in
  let b = Context.profile ctx2 ~llc_config:1 3 in
  check_close 1e-6 "same cpi" (Profile.cpi a) (Profile.cpi b);
  check_close 1e-6 "same memory cpi" (Profile.memory_cpi a) (Profile.memory_cpi b);
  (* Clean up. *)
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir

let test_context_rng_purposes () =
  let ctx = make_ctx () in
  let a = Mppm_util.Rng.int (Context.rng ctx "alpha") 1_000_000 in
  let b = Mppm_util.Rng.int (Context.rng ctx "beta") 1_000_000 in
  let a' = Mppm_util.Rng.int (Context.rng ctx "alpha") 1_000_000 in
  Alcotest.(check int) "same purpose, same stream" a a';
  Alcotest.(check bool) "different purposes differ" true (a <> b)

let test_context_measured_view () =
  let ctx = make_ctx () in
  let mix = Mix.of_names [| "gamess"; "soplex" |] in
  let m = Context.detailed ctx ~llc_config:1 mix in
  Alcotest.(check int) "two programs" 2 (Array.length m.Context.m_cpi_multi);
  check_close 1e-9 "stp consistent"
    (Metrics.stp ~cpi_single:m.Context.m_cpi_single ~cpi_multi:m.Context.m_cpi_multi)
    m.Context.m_stp;
  check_close 1e-9 "antt consistent"
    (Metrics.antt ~cpi_single:m.Context.m_cpi_single ~cpi_multi:m.Context.m_cpi_multi)
    m.Context.m_antt;
  Array.iter
    (fun s -> Alcotest.(check bool) "slowdown >= ~1" true (s > 0.95))
    m.Context.m_slowdowns;
  (* Isolated CPIs come from the profiles. *)
  let expected = Context.cpi_single ctx ~llc_config:1 mix in
  Alcotest.(check (array (float 1e-9))) "cpi_single from profiles" expected
    m.Context.m_cpi_single

let test_context_predict_view () =
  let ctx = make_ctx () in
  let mix = Mix.of_names [| "gamess"; "gamess"; "hmmer"; "soplex" |] in
  let r = Context.predict ctx ~llc_config:1 mix in
  Alcotest.(check int) "four programs" 4 (Array.length r.Model.programs);
  Alcotest.(check bool) "iterations ran" true (r.Model.iterations > 0);
  Alcotest.(check bool) "stp within (0, n]" true
    (r.Model.stp > 0.0 && r.Model.stp <= 4.0 +. 1e-9)

let test_context_categories () =
  let ctx = make_ctx () in
  let classes = Context.categories ctx ~llc_config:1 in
  Alcotest.(check int) "whole suite classified" Mppm_trace.Suite.count
    (Array.length classes);
  let mem, comp = Mppm_workload.Category.partition classes in
  Alcotest.(check bool) "both classes present" true
    (Array.length mem > 0 && Array.length comp > 0)

(* ---- Accuracy ------------------------------------------------------------- *)

let test_accuracy_evaluate () =
  let ctx = make_ctx () in
  let run = Accuracy.evaluate ctx ~llc_config:1 ~cores:2 ~count:4 in
  Alcotest.(check int) "evals" 4 (Array.length run.Accuracy.evals);
  Alcotest.(check bool) "errors finite and sane" true
    (run.Accuracy.stp_error >= 0.0 && run.Accuracy.stp_error < 0.5
    && run.Accuracy.antt_error >= 0.0
    && run.Accuracy.antt_error < 0.5);
  Alcotest.(check int) "stp scatter size" 4 (Array.length (Accuracy.scatter_stp run));
  Alcotest.(check int) "slowdown scatter size" 8
    (Array.length (Accuracy.scatter_slowdown run));
  let worst = Accuracy.worst_stp_eval run in
  Array.iter
    (fun e ->
      Alcotest.(check bool) "worst is minimal" true
        (worst.Accuracy.measured.Context.m_stp
         <= e.Accuracy.measured.Context.m_stp))
    run.Accuracy.evals;
  let rows = Accuracy.cpi_rows worst in
  Alcotest.(check int) "cpi rows" 2 (Array.length rows);
  Array.iter
    (fun row ->
      Alcotest.(check bool) "cpi ordering" true
        (row.Accuracy.measured_cpi >= 0.9 *. row.Accuracy.isolated_cpi))
    rows

(* ---- Variability ------------------------------------------------------------ *)

let test_variability_run () =
  let ctx = make_ctx () in
  let t = Variability.run ctx ~cores:2 ~max_mixes:30 ~step:10 () in
  Alcotest.(check int) "points" 3 (List.length t.Variability.points);
  let counts = List.map (fun p -> p.Variability.mixes) t.Variability.points in
  Alcotest.(check (list int)) "mix counts" [ 10; 20; 30 ] counts;
  List.iter
    (fun p ->
      Alcotest.(check bool) "CI sane" true
        (p.Variability.stp.Stats.half_width >= 0.0
        && p.Variability.stp.Stats.lower <= p.Variability.stp.Stats.upper))
    t.Variability.points;
  (* More samples must not widen the relative CI dramatically; usually it
     shrinks. *)
  let first = List.hd t.Variability.points in
  let last = List.nth t.Variability.points 2 in
  Alcotest.(check bool) "CI shrinks with samples" true
    (last.Variability.stp.Stats.half_width
     <= first.Variability.stp.Stats.half_width *. 1.2)

(* ---- Stress -------------------------------------------------------------------- *)

let test_stress_analyze () =
  let ctx = make_ctx () in
  let run = Accuracy.evaluate ctx ~llc_config:1 ~cores:2 ~count:6 in
  let t = Stress.analyze ~worst_k:2 run in
  Alcotest.(check int) "k" 2 t.Stress.worst_k;
  Alcotest.(check bool) "overlap bounded" true
    (t.Stress.overlap >= 0 && t.Stress.overlap <= 2);
  Alcotest.(check int) "sorted size" 6 (Array.length t.Stress.sorted);
  let sorted_ok = ref true in
  Array.iteri
    (fun i (m, _) ->
      if i > 0 && m < fst t.Stress.sorted.(i - 1) then sorted_ok := false)
    t.Stress.sorted;
  Alcotest.(check bool) "ascending by measured" true !sorted_ok;
  Alcotest.(check bool) "per-benchmark table non-empty" true
    (Array.length t.Stress.per_benchmark_slowdown > 0)

(* ---- Ranking (micro options) ----------------------------------------------------- *)

let test_ranking_micro () =
  let ctx = make_ctx () in
  let options =
    {
      Ranking.cores = 2;
      random_pool = 4;
      category_pool_per_composition = 2;
      sets = 3;
      per_set = 3;
      per_composition = 1;
      mppm_mixes = 6;
    }
  in
  let t = Ranking.run ctx options in
  Alcotest.(check int) "six configs" 6 (Array.length t.Ranking.config_ids);
  Alcotest.(check int) "random sets" 3 (Array.length t.Ranking.random_sets);
  Alcotest.(check int) "category sets" 3 (Array.length t.Ranking.category_sets);
  Alcotest.(check int) "pairwise rows" 5 (Array.length t.Ranking.pairwise);
  let rho_ok r = Float.is_nan r || (r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9) in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "rho in range" true
        (rho_ok s.Ranking.stp_rho && rho_ok s.Ranking.antt_rho))
    t.Ranking.random_sets;
  Array.iter
    (fun p ->
      check_close 1e-9 "fractions sum to 1" 1.0
        (p.Ranking.agree_both_right +. p.Ranking.agree_both_wrong
        +. p.Ranking.disagree_mppm_right +. p.Ranking.disagree_practice_right))
    t.Ranking.pairwise;
  (* Bigger LLCs cannot hurt mean MPPM STP by much: config #5 (2MB) should
     beat config #1 (512KB) on throughput. *)
  Alcotest.(check bool) "2MB beats 512KB on predicted STP" true
    (t.Ranking.mppm_mean_stp.(4) >= t.Ranking.mppm_mean_stp.(0))

(* ---- Tables ----------------------------------------------------------------------- *)

let test_tables_render () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Tables.pp_table1 ppf Mppm_simcore.Core_model.default;
  Tables.pp_table2 ppf ();
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions 512KB" true (contains "512KB");
  Alcotest.(check bool) "mentions 2MB" true (contains "2MB");
  Alcotest.(check bool) "mentions 200-cycle memory" true (contains "200")

let tests =
  [
    ( "experiments.scale",
      [
        Alcotest.test_case "of_trace" `Quick test_scale_of_trace;
        Alcotest.test_case "presets" `Quick test_scale_presets;
      ] );
    ( "experiments.context",
      [
        Alcotest.test_case "profile memoized" `Quick test_context_profile_memoized;
        Alcotest.test_case "disk cache roundtrip" `Quick test_context_disk_cache_roundtrip;
        Alcotest.test_case "rng purposes" `Quick test_context_rng_purposes;
        Alcotest.test_case "measured view" `Quick test_context_measured_view;
        Alcotest.test_case "predicted view" `Quick test_context_predict_view;
        Alcotest.test_case "categories" `Slow test_context_categories;
      ] );
    ( "experiments.drivers",
      [
        Alcotest.test_case "accuracy evaluate" `Slow test_accuracy_evaluate;
        Alcotest.test_case "variability run" `Slow test_variability_run;
        Alcotest.test_case "stress analyze" `Slow test_stress_analyze;
        Alcotest.test_case "ranking micro" `Slow test_ranking_micro;
        Alcotest.test_case "tables render" `Quick test_tables_render;
      ] );
  ]
