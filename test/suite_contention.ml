(* Tests for mppm_contention: the FOA, SDC-competition and Prob models. *)

module Contention = Mppm_contention.Contention
module Sdc = Mppm_cache.Sdc

let check_close eps = Alcotest.(check (float eps))
let assoc = 8

(* An SDC whose hits are spread uniformly over the first [depth] stack
   positions, [per_depth] each, plus [misses]. *)
let uniform_sdc ~depth ~per_depth ~misses =
  let counters =
    List.init (assoc + 1) (fun i ->
        if i < depth then per_depth else if i = assoc then misses else 0.0)
  in
  Sdc.of_list ~assoc counters

let test_single_program_no_contention () =
  List.iter
    (fun model ->
      let sdc = uniform_sdc ~depth:6 ~per_depth:10.0 ~misses:3.0 in
      let p = Contention.predict model [| sdc |] in
      check_close 1e-9 "no extra misses" 0.0 p.Contention.extra_misses.(0);
      check_close 1e-9 "shared = isolated" 3.0 p.Contention.shared_misses.(0))
    [ Contention.Foa; Contention.Sdc_competition; Contention.Prob { iterations = 5 } ]

let test_no_accesses_no_contention () =
  let empty = Sdc.create ~assoc in
  let p = Contention.predict Contention.Foa [| empty; empty |] in
  check_close 1e-9 "no accesses -> no extra" 0.0 p.Contention.extra_misses.(0)

let test_foa_equal_programs_split_equally () =
  let sdc () = uniform_sdc ~depth:8 ~per_depth:10.0 ~misses:0.0 in
  let p = Contention.predict Contention.Foa [| sdc (); sdc () |] in
  check_close 1e-9 "half the ways each" 4.0 p.Contention.effective_ways.(0);
  check_close 1e-9 "symmetric" p.Contention.extra_misses.(0) p.Contention.extra_misses.(1);
  (* With 4 of 8 ways, the hits at depths 5..8 (40 accesses) become
     misses. *)
  check_close 1e-9 "extra misses" 40.0 p.Contention.extra_misses.(0)

let test_foa_ways_proportional_to_frequency () =
  let heavy = uniform_sdc ~depth:8 ~per_depth:30.0 ~misses:0.0 in
  (* 240 accesses *)
  let light = uniform_sdc ~depth:8 ~per_depth:10.0 ~misses:0.0 in
  (* 80 accesses *)
  let p = Contention.predict Contention.Foa [| heavy; light |] in
  check_close 1e-9 "heavy gets 3/4" 6.0 p.Contention.effective_ways.(0);
  check_close 1e-9 "light gets 1/4" 2.0 p.Contention.effective_ways.(1);
  Alcotest.(check bool) "light suffers more relatively" true
    (p.Contention.extra_misses.(1) /. Sdc.accesses light
     > p.Contention.extra_misses.(0) /. Sdc.accesses heavy)

let test_foa_inactive_corunner_harmless () =
  let active = uniform_sdc ~depth:6 ~per_depth:10.0 ~misses:2.0 in
  let idle = Sdc.create ~assoc in
  let p = Contention.predict Contention.Foa [| active; idle |] in
  check_close 1e-9 "all ways to the active program" 8.0
    p.Contention.effective_ways.(0);
  check_close 1e-9 "no extra misses" 0.0 p.Contention.extra_misses.(0)

let test_sdc_competition_greedy () =
  (* Program A's counters dominate at every depth: it should win every way
     until its counters are exhausted. *)
  let a = uniform_sdc ~depth:4 ~per_depth:100.0 ~misses:0.0 in
  let b = uniform_sdc ~depth:8 ~per_depth:1.0 ~misses:0.0 in
  let p = Contention.predict Contention.Sdc_competition [| a; b |] in
  check_close 1e-9 "A wins its 4 deep ways" 4.0 p.Contention.effective_ways.(0);
  check_close 1e-9 "B gets the rest" 4.0 p.Contention.effective_ways.(1);
  check_close 1e-9 "A keeps all hits" 0.0 p.Contention.extra_misses.(0);
  check_close 1e-9 "B loses its deep hits" 4.0 p.Contention.extra_misses.(1)

let test_sdc_competition_ways_bounded () =
  let a = uniform_sdc ~depth:8 ~per_depth:5.0 ~misses:1.0 in
  let b = uniform_sdc ~depth:8 ~per_depth:4.0 ~misses:1.0 in
  let c = uniform_sdc ~depth:8 ~per_depth:3.0 ~misses:1.0 in
  let p = Contention.predict Contention.Sdc_competition [| a; b; c |] in
  let total = Array.fold_left ( +. ) 0.0 p.Contention.effective_ways in
  check_close 1e-9 "exactly A ways handed out" (float_of_int assoc) total

let test_prob_no_corunner_misses_no_dilation () =
  let a = uniform_sdc ~depth:4 ~per_depth:10.0 ~misses:0.0 in
  let b = uniform_sdc ~depth:4 ~per_depth:10.0 ~misses:0.0 in
  let p = Contention.predict (Contention.Prob { iterations = 5 }) [| a; b |] in
  check_close 1e-9 "no allocations, no dilation" 0.0 p.Contention.extra_misses.(0)

let test_prob_dilation_monotone () =
  let victim = uniform_sdc ~depth:6 ~per_depth:10.0 ~misses:1.0 in
  let aggressor misses = uniform_sdc ~depth:2 ~per_depth:10.0 ~misses in
  let extra m =
    (Contention.predict (Contention.Prob { iterations = 5 })
       [| victim; aggressor m |]).Contention.extra_misses.(0)
  in
  Alcotest.(check bool) "more aggressor misses, more victim extra" true
    (extra 200.0 > extra 20.0);
  Alcotest.(check bool) "some dilation" true (extra 200.0 > 0.0)

let test_all_models_sane_on_real_profiles () =
  (* Extra misses are non-negative and shared misses never exceed
     accesses, for all models, on profiles from the real pipeline. *)
  let hierarchy = Mppm_cache.Configs.baseline () in
  let profile name =
    Mppm_simcore.Single_core.profile
      (Mppm_simcore.Single_core.config hierarchy)
      ~benchmark:(Mppm_trace.Suite.find name)
      ~seed:(Mppm_trace.Suite.seed_for name) ~trace_instructions:100_000
      ~interval_instructions:10_000
  in
  let sdcs =
    Array.map
      (fun name ->
        (Mppm_profile.Profile.window (profile name) ~start:0.0 ~count:100_000.0)
          .Mppm_profile.Profile.w_sdc)
      [| "gamess"; "soplex"; "lbm"; "hmmer" |]
  in
  List.iter
    (fun model ->
      let p = Contention.predict model sdcs in
      Array.iteri
        (fun i extra ->
          Alcotest.(check bool) "extra >= 0" true (extra >= 0.0);
          Alcotest.(check bool) "shared <= accesses" true
            (p.Contention.shared_misses.(i) <= Sdc.accesses sdcs.(i) +. 1e-6))
        p.Contention.extra_misses)
    [ Contention.Foa; Contention.Sdc_competition; Contention.Prob { iterations = 5 } ]

let test_validations () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "no programs" true
    (invalid (fun () -> Contention.predict Contention.Foa [||]));
  Alcotest.(check bool) "assoc mismatch" true
    (invalid (fun () ->
         Contention.predict Contention.Foa
           [| Sdc.create ~assoc:8; Sdc.create ~assoc:4 |]))

let test_model_names () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "name roundtrip" true
        (Contention.of_string (Contention.model_name m) = m))
    [ Contention.Foa; Contention.Sdc_competition; Contention.Prob { iterations = 3 } ];
  Alcotest.(check bool) "unknown raises" true
    (try ignore (Contention.of_string "magic"); false
     with Invalid_argument _ -> true)

let qcheck_tests =
  let open QCheck in
  let random_sdc seed =
    let rng = Mppm_util.Rng.create ~seed in
    let sdc = Sdc.create ~assoc in
    for _ = 1 to 50 + Mppm_util.Rng.int rng 200 do
      Sdc.record sdc ~depth:(1 + Mppm_util.Rng.int rng 12)
    done;
    sdc
  in
  List.map
    (fun (name, model) ->
      Test.make ~name:(name ^ ": extra >= 0 and shared <= accesses") ~count:100
        (pair small_int (int_range 2 6))
        (fun (seed, n) ->
          let sdcs = Array.init n (fun i -> random_sdc (seed + (1000 * i))) in
          let p = Contention.predict model sdcs in
          Array.for_all (fun e -> e >= 0.0) p.Contention.extra_misses
          && Array.for_all2
               (fun s sdc -> s <= Sdc.accesses sdc +. 1e-6)
               p.Contention.shared_misses sdcs))
    [
      ("foa", Contention.Foa);
      ("sdc", Contention.Sdc_competition);
      ("prob", Contention.Prob { iterations = 4 });
    ]

let tests =
  [
    ( "contention.models",
      [
        Alcotest.test_case "single program" `Quick test_single_program_no_contention;
        Alcotest.test_case "no accesses" `Quick test_no_accesses_no_contention;
        Alcotest.test_case "FOA equal split" `Quick test_foa_equal_programs_split_equally;
        Alcotest.test_case "FOA frequency proportional" `Quick
          test_foa_ways_proportional_to_frequency;
        Alcotest.test_case "FOA idle co-runner" `Quick test_foa_inactive_corunner_harmless;
        Alcotest.test_case "SDC competition greedy" `Quick test_sdc_competition_greedy;
        Alcotest.test_case "SDC competition bounded" `Quick test_sdc_competition_ways_bounded;
        Alcotest.test_case "Prob: no dilation without misses" `Quick
          test_prob_no_corunner_misses_no_dilation;
        Alcotest.test_case "Prob: dilation monotone" `Quick test_prob_dilation_monotone;
        Alcotest.test_case "sane on real profiles" `Quick test_all_models_sane_on_real_profiles;
        Alcotest.test_case "validations" `Quick test_validations;
        Alcotest.test_case "model names" `Quick test_model_names;
      ] );
    ("contention.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
