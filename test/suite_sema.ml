(* Tests for the AST analysis layer (tools/sema): facts extraction
   totality, rules S1-S4, shared suppression, the incremental facts
   cache, the SARIF golden, and the --fix round-trip.

   The acceptance test for S2 mutates the *real* workload generator
   source (replacing the fetch stream with the data stream) and asserts
   the lint fails: the stream-separation invariant is statically
   provable, not just qcheck'd. *)

module Diag = Mppm_lint.Diag
module Engine = Mppm_lint.Engine
module Fix = Mppm_lint.Fix
module Sarif = Mppm_lint.Sarif
module Facts = Mppm_sema.Facts
module Effects = Mppm_sema.Effects
module Sema = Mppm_sema.Sema
module Units = Mppm_sema.Units

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Locate the real source tree (same discipline as suite_lint). *)
let lint_root () =
  let candidates =
    (match Sys.getenv_opt "MPPM_LINT_ROOT" with Some r -> [ r ] | None -> [])
    @ [ ".."; "../.."; "." ]
  in
  List.find_opt
    (fun root ->
      let dir = Filename.concat root "lib" in
      Sys.file_exists dir && Sys.is_directory dir)
    candidates

let analyze ?cache_file inputs =
  Sema.analyze ?cache_file ~dunes:[]
    (List.map (fun (rel, content) -> { Sema.rel; content }) inputs)

(* Like [analyze], with dune files so cross-library references resolve. *)
let analyze_dunes dunes inputs =
  Sema.analyze ~dunes
    (List.map (fun (rel, content) -> { Sema.rel; content }) inputs)

let rules_of report = List.map (fun d -> d.Diag.rule) report.Sema.diags

(* ---- S1: effect containment --------------------------------------------- *)

let leaky = "let save x =\n  let oc = open_out \"f.txt\" in\n  output_string oc x;\n  close_out oc\n"

let test_s1_direct_io () =
  let r = analyze [ ("lib/demo/leaky.ml", leaky) ] in
  Alcotest.(check (list string)) "direct I/O in lib flagged" [ "S1" ] (rules_of r);
  let r = analyze [ ("bench/leaky.ml", leaky) ] in
  Alcotest.(check (list string)) "I/O outside lib is fine" [] (rules_of r)

let test_s1_transitive () =
  let r =
    analyze
      [
        ("lib/demo/a.ml", leaky);
        ("lib/demo/b.ml", "let run x = A.save x\n");
      ]
  in
  let files = List.map (fun d -> d.Diag.file) r.Sema.diags in
  Alcotest.(check (list string)) "caller inherits the I/O effect"
    [ "lib/demo/a.ml"; "lib/demo/b.ml" ]
    (List.sort compare files);
  Alcotest.(check bool) "witness names the callee" true
    (List.exists
       (fun d -> d.Diag.file = "lib/demo/b.ml" && contains d.Diag.message "A.save")
       r.Sema.diags)

let test_s1_allowlist () =
  let r = analyze [ ("lib/profile/profile.ml", leaky) ] in
  Alcotest.(check (list string)) "profile store may do I/O" [] (rules_of r);
  (* Calling an allowlisted unit does not taint the caller. *)
  let r =
    analyze
      [
        ("lib/profile/profile.ml", leaky);
        ("lib/profile/user.ml", "let run x = Profile.save x\n");
      ]
  in
  Alcotest.(check (list string)) "allowlist cuts propagation" [] (rules_of r)

(* ---- S2: seed flow ------------------------------------------------------- *)

let test_s2_real_generator_separation () =
  match lint_root () with
  | None -> Alcotest.fail "cannot locate the source tree"
  | Some root ->
      let rel = "lib/trace/generator.ml" in
      let content = read_file (Filename.concat root rel) in
      let clean = analyze [ (rel, content) ] in
      Alcotest.(check (list string)) "real generator separates streams" []
        (List.filter (fun r -> r = "S2") (rules_of clean));
      (* Collapse the fetch stream onto the data stream: S2 must fail. *)
      let buf = Buffer.create (String.length content) in
      let n = String.length content in
      let i = ref 0 in
      while !i < n do
        if !i + 10 <= n && String.sub content !i 10 = ".fetch_rng" then begin
          Buffer.add_string buf ".rng";
          i := !i + 10
        end
        else begin
          Buffer.add_char buf content.[!i];
          incr i
        end
      done;
      let mutated = analyze [ (rel, Buffer.contents buf) ] in
      Alcotest.(check bool) "collapsed streams are caught" true
        (List.exists
           (fun d -> d.Diag.rule = "S2" && contains d.Diag.message "next_fetch")
           mutated.Sema.diags)

let test_s2_helper_fixpoint () =
  (* The shared field is only reachable through a same-unit helper. *)
  let src =
    "let draw t = Mppm_util.Rng.int t.rng 10\n\
     let next t = draw t\n\
     let next_fetch t = draw t\n"
  in
  let r = analyze [ ("lib/demo/gen.ml", src) ] in
  Alcotest.(check (list string)) "shared state found through helper" [ "S2" ]
    (rules_of r)

let test_s2_constant_seed () =
  let r =
    analyze [ ("lib/demo/c.ml", "let r = Mppm_util.Rng.create ~seed:42\n") ]
  in
  Alcotest.(check (list string)) "constant seed in lib flagged" [ "S2" ]
    (rules_of r);
  let r =
    analyze
      [ ("lib/demo/c.ml", "let make seed = Mppm_util.Rng.create ~seed\n") ]
  in
  Alcotest.(check (list string)) "seed from argument is fine" [] (rules_of r);
  let r =
    analyze [ ("test/demo.ml", "let r = Mppm_util.Rng.create ~seed:42\n") ]
  in
  Alcotest.(check (list string)) "constant seed outside lib is fine" []
    (rules_of r)

(* ---- S3: order-sensitive float accumulation ------------------------------ *)

let accum = "let total t = Hashtbl.fold (fun _ v a -> a +. v) t 0.0\n"

let test_s3 () =
  let r = analyze [ ("lib/demo/acc.ml", accum) ] in
  (match r.Sema.diags with
  | [ d ] ->
      Alcotest.(check string) "rule" "S3" d.Diag.rule;
      Alcotest.(check bool) "error in lib" true (d.Diag.severity = Diag.Error)
  | ds -> Alcotest.failf "expected one S3, got %d" (List.length ds));
  let r = analyze [ ("test/acc.ml", accum) ] in
  (match r.Sema.diags with
  | [ d ] ->
      Alcotest.(check bool) "warning outside lib" true
        (d.Diag.severity = Diag.Warning)
  | ds -> Alcotest.failf "expected one S3, got %d" (List.length ds));
  let seq = "let total t = Seq.fold_left ( +. ) 0.0 (Hashtbl.to_seq_values t)\n" in
  let r = analyze [ ("lib/demo/acc2.ml", seq) ] in
  Alcotest.(check (list string)) "to_seq form flagged" [ "S3" ] (rules_of r);
  let ints = "let total t = Hashtbl.fold (fun _ v a -> a + v) t 0\n" in
  let r = analyze [ ("lib/demo/acc3.ml", ints) ] in
  Alcotest.(check (list string)) "integer fold is fine" [] (rules_of r)

(* ---- S4: dead exports ---------------------------------------------------- *)

let test_s4 () =
  let r =
    analyze
      [
        ("lib/demo/a.ml", "let used n = n + 1\nlet dead n = n - 1\n");
        ( "lib/demo/a.mli",
          "val used : int -> int\n(** Used. *)\nval dead : int -> int\n(** Dead. *)\n"
        );
        ("lib/demo/b.ml", "let x = A.used 1\n");
      ]
  in
  (match r.Sema.diags with
  | [ d ] ->
      Alcotest.(check string) "rule" "S4" d.Diag.rule;
      Alcotest.(check bool) "names the dead val" true
        (contains d.Diag.message "dead")
  | ds -> Alcotest.failf "expected one S4, got %d" (List.length ds));
  (* A use through [open] counts. *)
  let r =
    analyze
      [
        ("lib/demo/a.ml", "let used n = n + 1\nlet dead n = n - 1\n");
        ( "lib/demo/a.mli",
          "val used : int -> int\n(** Used. *)\nval dead : int -> int\n(** Dead. *)\n"
        );
        ("lib/demo/b.ml", "open A\n\nlet x = used 1 + dead 2\n");
      ]
  in
  Alcotest.(check (list string)) "uses through open count" [] (rules_of r)

(* ---- S5: concurrency containment ----------------------------------------- *)

let locky =
  "let m = Mutex.create ()\nlet guard f =\n  Mutex.lock m;\n  let r = f () in\n  Mutex.unlock m;\n  r\n"

let test_s5_direct () =
  let r = analyze [ ("lib/demo/locky.ml", locky) ] in
  Alcotest.(check bool) "Mutex in plain lib flagged" true
    (List.mem "S5" (rules_of r));
  (match List.find_opt (fun d -> d.Diag.rule = "S5") r.Sema.diags with
  | Some d ->
      Alcotest.(check bool) "error severity" true (d.Diag.severity = Diag.Error);
      Alcotest.(check bool) "witness names the prim" true
        (contains d.Diag.message "Mutex.")
  | None -> Alcotest.fail "expected an S5 diag");
  let r = analyze [ ("bench/locky.ml", locky) ] in
  Alcotest.(check (list string)) "concurrency outside lib is fine" []
    (rules_of r);
  let r = analyze [ ("lib/pool/locky.ml", locky) ] in
  Alcotest.(check (list string)) "lib/pool/ is sanctioned" [] (rules_of r)

let test_s5_transitive () =
  let r =
    analyze
      [
        ("lib/demo/locky.ml", locky);
        ("lib/demo/user.ml", "let run f = Locky.guard f\n");
      ]
  in
  Alcotest.(check bool) "caller inherits the concurrency effect" true
    (List.exists
       (fun d ->
         d.Diag.rule = "S5"
         && d.Diag.file = "lib/demo/user.ml"
         && contains d.Diag.message "Locky.guard")
       r.Sema.diags);
  (* Calling into lib/pool/ does not taint the caller. *)
  let r =
    analyze
      [
        ("lib/pool/locky.ml", locky);
        ("lib/demo/user.ml", "let run f = Mppm_pool.Locky.guard f\n");
      ]
  in
  Alcotest.(check (list string)) "lib/pool/ cuts propagation" [] (rules_of r)

let test_s5_allow_absorbs () =
  (* An allow-file on the direct user suppresses the finding AND keeps the
     taint out of the effect lattice, so callers stay clean too. *)
  let allowed =
    "(* lint: allow-file S5 single lock, sanctioned like the registry *)\n\
     (* lint: allow-file S7 sanctioned module state *)\n"
    ^ locky
  in
  let r =
    analyze
      [
        ("lib/demo/locky.ml", allowed);
        ("lib/demo/user.ml", "let run f = Locky.guard f\n");
      ]
  in
  Alcotest.(check (list string)) "allow-file absorbs the taint" []
    (rules_of r);
  let line_allowed =
    "(* lint: allow S7 demo state *)\n\
     let m = Mutex.create () (* lint: allow S5 one sanctioned lock *)\n"
  in
  let r = analyze [ ("lib/demo/l2.ml", line_allowed) ] in
  Alcotest.(check (list string)) "line allow absorbs a single prim" []
    (rules_of r)

(* ---- S6: pool-task purity -------------------------------------------------- *)

let rule_diags rule report =
  List.filter (fun d -> d.Diag.rule = rule) report.Sema.diags

let test_s6_captured_ref () =
  let impure =
    "let run pool xs =\n\
    \  let hits = ref 0 in\n\
    \  Mppm_pool.Pool.map pool (fun x -> incr hits; x + 1) xs\n"
  in
  let r = analyze [ ("lib/demo/par.ml", impure) ] in
  (match rule_diags "S6" r with
  | [ d ] ->
      Alcotest.(check bool) "error severity" true (d.Diag.severity = Diag.Error);
      Alcotest.(check bool) "names the captured ref" true
        (contains d.Diag.message "hits");
      Alcotest.(check bool) "names the entry" true
        (contains d.Diag.message "Pool.map")
  | ds -> Alcotest.failf "expected one S6, got %d" (List.length ds));
  Alcotest.(check (list string)) "no other rule fires" [ "S6" ] (rules_of r);
  let r = analyze [ ("bench/par.ml", impure) ] in
  Alcotest.(check (list string)) "impure task outside lib is fine" []
    (rules_of r)

let test_s6_pure_tasks_clean () =
  let pure =
    "let run pool xs = Mppm_pool.Pool.map pool (fun x -> x + 1) xs\n\
     let render pool xs =\n\
    \  Mppm_pool.Pool.map pool\n\
    \    (fun x ->\n\
    \      let b = Buffer.create 16 in\n\
    \      Buffer.add_string b x;\n\
    \      Buffer.contents b)\n\
    \    xs\n"
  in
  let r = analyze [ ("lib/demo/par.ml", pure) ] in
  Alcotest.(check (list string))
    "pure tasks (incl. closure-local mutable state) are clean" [] (rules_of r)

let test_s6_tainted_task_path () =
  let r =
    analyze
      [
        ( "lib/demo/glob.ml",
          "let total = ref 0\nlet bump x = total := !total + x; x\n" );
        ( "lib/demo/par.ml",
          "let run pool xs = Mppm_pool.Pool.map pool Glob.bump xs\n" );
      ]
  in
  Alcotest.(check bool) "task named by path is traced to module state" true
    (List.exists
       (fun d ->
         d.Diag.rule = "S6"
         && d.Diag.file = "lib/demo/par.ml"
         && contains d.Diag.message "Glob.bump")
       r.Sema.diags)

let test_s6_partial_application_race () =
  let kit = "let step t x = Hashtbl.replace t x x; x\n" in
  let r =
    analyze
      [
        ("lib/demo/kit.ml", kit);
        ( "lib/demo/par.ml",
          "let run pool t xs = Mppm_pool.Pool.map pool (Kit.step t) xs\n" );
      ]
  in
  Alcotest.(check bool) "partially applied mutated value is a race" true
    (List.exists
       (fun d ->
         d.Diag.rule = "S6"
         && d.Diag.file = "lib/demo/par.ml"
         && contains d.Diag.message "partially applied")
       r.Sema.diags);
  (* The same shared value smuggled through a closure is caught too. *)
  let r =
    analyze
      [
        ("lib/demo/kit.ml", kit);
        ( "lib/demo/par.ml",
          "let run pool xs =\n\
          \  let acc = Hashtbl.create 16 in\n\
          \  Mppm_pool.Pool.map pool (fun x -> Kit.step acc x) xs\n" );
      ]
  in
  Alcotest.(check bool) "captured value escaping to a mutator is a race" true
    (List.exists
       (fun d ->
         d.Diag.rule = "S6" && contains d.Diag.message "shares captured value")
       r.Sema.diags)

let registry_fixture =
  "(* lint: allow-file S5 sanctioned registry lock *)\n\
   let counters = Hashtbl.create 8\n\
   let incr name = Hashtbl.replace counters name 1\n"

let test_s6_sanctioned_memo_clean () =
  (* The Single_flight memo shape from lib/experiments/context.ml: the
     task bumps a registry counter, which the purity allowlist sanctions. *)
  let r =
    analyze_dunes
      [ ("lib/obs/dune", "(name mppm_obs)") ]
      [
        ("lib/obs/registry.ml", registry_fixture);
        ( "lib/demo/memo.ml",
          "let get t k =\n\
          \  Mppm_pool.Single_flight.get t k (fun () ->\n\
          \      Mppm_obs.Registry.incr \"hit\";\n\
          \      42)\n" );
      ]
  in
  Alcotest.(check (list string)) "registry-backed memo task is sanctioned" []
    (rules_of r)

let test_s6_real_experiments_injection () =
  (* The acceptance check on real sources: lib/experiments/accuracy.ml is
     S6-clean as written, and splicing a leaked-counter task into it
     fails the build. *)
  match lint_root () with
  | None -> Alcotest.fail "cannot locate the source tree"
  | Some root ->
      let rel = "lib/experiments/accuracy.ml" in
      let content = read_file (Filename.concat root rel) in
      let clean = analyze [ (rel, content) ] in
      Alcotest.(check (list string)) "real experiments are task-pure" []
        (List.filter (fun r -> r = "S6" || r = "S7") (rules_of clean));
      let mutated =
        content
        ^ "\nlet leak_count = ref 0\n\
           let leak pool xs =\n\
          \  Mppm_pool.Pool.map pool (fun x -> incr leak_count; x) xs\n"
      in
      let r = analyze [ (rel, mutated) ] in
      Alcotest.(check bool) "injected impure task is caught by S6" true
        (List.exists
           (fun d -> d.Diag.rule = "S6" && contains d.Diag.message "leak_count")
           r.Sema.diags);
      Alcotest.(check bool) "the leaked toplevel ref is caught by S7" true
        (List.exists (fun d -> d.Diag.rule = "S7") r.Sema.diags)

(* ---- S7: module-level mutable state ---------------------------------------- *)

let test_s7_toplevel_state () =
  let glob = "let total = ref 0\nlet bump x = total := !total + x\n" in
  let r = analyze [ ("lib/demo/glob.ml", glob) ] in
  Alcotest.(check bool) "the allocation is inventoried" true
    (List.exists
       (fun d ->
         d.Diag.rule = "S7" && d.Diag.line = 1 && contains d.Diag.message "ref")
       r.Sema.diags);
  Alcotest.(check bool) "the write site is flagged" true
    (List.exists
       (fun d -> d.Diag.rule = "S7" && d.Diag.line = 2)
       r.Sema.diags);
  Alcotest.(check (list string)) "only S7 fires"
    [ "S7" ]
    (List.sort_uniq compare (rules_of r));
  let r = analyze [ ("bench/glob.ml", glob) ] in
  Alcotest.(check (list string)) "module state outside lib is fine" []
    (rules_of r);
  let r = analyze [ ("lib/pool/glob.ml", glob) ] in
  Alcotest.(check (list string)) "lib/pool/ is sanctioned" [] (rules_of r);
  let r = analyze [ ("lib/obs/registry.ml", glob) ] in
  Alcotest.(check (list string)) "the registry is sanctioned" [] (rules_of r)

let test_s7_handed_to_mutator () =
  let src =
    "let tbl = Hashtbl.create 16\n\
     let add t x = Hashtbl.replace t x x\n\
     let record x = add tbl x\n"
  in
  let r = analyze [ ("lib/demo/glob.ml", src) ] in
  Alcotest.(check bool) "module value handed to a mutating callee" true
    (List.exists
       (fun d ->
         d.Diag.rule = "S7"
         && contains d.Diag.message "passes module-level value")
       r.Sema.diags);
  (* Threading caller-owned state through arguments stays clean. *)
  let src =
    "let add t x = Hashtbl.replace t x x\n\
     let build xs =\n\
    \  let t = Hashtbl.create 16 in\n\
    \  List.iter (fun x -> add t x) xs;\n\
    \  t\n"
  in
  let r = analyze [ ("lib/demo/local.ml", src) ] in
  Alcotest.(check (list string)) "locally-owned state is fine" [] (rules_of r)

(* ---- S8: declared lock order ------------------------------------------------ *)

let s8_dunes =
  [ ("lib/pool/dune", "(name mppm_pool)"); ("lib/obs/dune", "(name mppm_obs)") ]

let test_s8_lock_order () =
  let pool_locked = "let m = Mutex.create ()\nlet poke () = Mutex.lock m; Mutex.unlock m\n" in
  let registry_bad =
    "(* lint: allow-file S5 sanctioned registry lock *)\n\
     let m = Mutex.create ()\n\
     let bad () =\n\
    \  Mutex.lock m;\n\
    \  Mppm_pool.Pool.poke ();\n\
    \  Mutex.unlock m\n"
  in
  let r =
    analyze_dunes s8_dunes
      [
        ("lib/pool/pool.ml", pool_locked);
        ("lib/obs/registry.ml", registry_bad);
      ]
  in
  (match rule_diags "S8" r with
  | [ d ] ->
      Alcotest.(check string) "flagged in the registry" "lib/obs/registry.ml"
        d.Diag.file;
      Alcotest.(check bool) "states the declared order" true
        (contains d.Diag.message "pool before registry")
  | ds -> Alcotest.failf "expected one S8, got %d" (List.length ds));
  Alcotest.(check (list string)) "only S8 fires" [ "S8" ] (rules_of r);
  (* The declared direction — pool calls into the registry — is fine. *)
  let registry_locked =
    "(* lint: allow-file S5 sanctioned registry lock *)\n\
     let m = Mutex.create ()\n\
     let touch () = Mutex.lock m; Mutex.unlock m\n"
  in
  let pool_good =
    "let m = Mutex.create ()\n\
     let run () =\n\
    \  Mutex.lock m;\n\
    \  Mppm_obs.Registry.touch ();\n\
    \  Mutex.unlock m\n"
  in
  let r =
    analyze_dunes s8_dunes
      [
        ("lib/pool/pool.ml", pool_good);
        ("lib/obs/registry.ml", registry_locked);
      ]
  in
  Alcotest.(check (list string)) "pool-then-registry respects the order" []
    (rules_of r)

(* ---- Suppression of the parallel-determinism rules -------------------------- *)

let test_purity_suppression () =
  let r =
    analyze
      [
        ( "lib/demo/par.ml",
          "let run pool xs =\n\
          \  let hits = ref 0 in\n\
          \  (* lint: allow S6 measured: merged after the join *)\n\
          \  Mppm_pool.Pool.map pool (fun x -> incr hits; x + 1) xs\n" );
      ]
  in
  Alcotest.(check (list string)) "line allow suppresses S6" [] (rules_of r);
  let r =
    analyze
      [
        ( "lib/demo/glob.ml",
          "(* lint: allow-file S7 frozen at startup *)\n\
           let total = ref 0\n\
           let bump x = total := !total + x\n" );
      ]
  in
  Alcotest.(check (list string)) "allow-file suppresses S7" [] (rules_of r)

(* ---- The effect lattice is a join-semilattice ------------------------------- *)

let summary_arb =
  let gen =
    QCheck.Gen.map2
      (fun bits locks ->
        match bits with
        | [ io; conc; rng; mt; ma; rs ] ->
            {
              Effects.e_io = io;
              e_conc = conc;
              e_rng = rng;
              e_mut_top = mt;
              e_mut_arg = ma;
              e_raises = rs;
              e_locks = List.sort_uniq compare locks;
            }
        | _ -> Effects.bottom)
      (QCheck.Gen.list_size (QCheck.Gen.return 6) QCheck.Gen.bool)
      (QCheck.Gen.list_size (QCheck.Gen.int_bound 3)
         (QCheck.Gen.oneofl [ "pool"; "registry"; "io" ]))
  in
  QCheck.make gen

let lattice_tests =
  let open Effects in
  [
    QCheck.Test.make ~name:"merge is idempotent" ~count:500 summary_arb
      (fun a -> equal (merge a a) a);
    QCheck.Test.make ~name:"merge is commutative" ~count:500
      (QCheck.pair summary_arb summary_arb) (fun (a, b) ->
        equal (merge a b) (merge b a));
    QCheck.Test.make ~name:"merge is associative" ~count:500
      (QCheck.triple summary_arb summary_arb summary_arb) (fun (a, b, c) ->
        equal (merge a (merge b c)) (merge (merge a b) c));
    QCheck.Test.make ~name:"bottom is the identity" ~count:500 summary_arb
      (fun a -> equal (merge a bottom) a && equal (merge bottom a) a);
    QCheck.Test.make ~name:"merge is the least upper bound" ~count:500
      (QCheck.pair summary_arb summary_arb) (fun (a, b) ->
        leq a (merge a b) && leq b (merge a b));
    QCheck.Test.make ~name:"leq is antisymmetric" ~count:500
      (QCheck.pair summary_arb summary_arb) (fun (a, b) ->
        (not (leq a b && leq b a)) || equal a b);
  ]

(* ---- Shared suppression --------------------------------------------------- *)

let test_suppression () =
  let r =
    analyze
      [
        ( "lib/demo/acc.ml",
          "(* lint: allow S3 checked: single entry *)\n" ^ accum );
      ]
  in
  Alcotest.(check (list string)) "line allow suppresses S3" [] (rules_of r);
  let r =
    analyze
      [
        ( "lib/demo/acc.ml",
          "(* lint: allow-file S3 demo file *)\nlet pad = 0\n" ^ accum );
      ]
  in
  Alcotest.(check (list string)) "allow-file suppresses S3" [] (rules_of r)

(* ---- Totality of extraction (fallback engages, never crashes) ------------- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"facts extraction total on arbitrary bytes"
      ~count:300 QCheck.string (fun s ->
        let f = Facts.extract ~rel:"lib/x/y.ml" s in
        let g = Facts.extract ~rel:"lib/x/y.mli" s in
        ignore f.Facts.parse_failed;
        ignore g.Facts.parse_failed;
        true);
    QCheck.Test.make ~name:"analysis total on arbitrary bytes" ~count:100
      QCheck.string (fun s ->
        ignore (analyze [ ("lib/x/y.ml", s) ]);
        true);
    QCheck.Test.make ~name:"fallback engages on mutated real sources"
      ~count:60
      QCheck.(pair small_nat string)
      (fun (pos, garbage) ->
        match lint_root () with
        | None -> true
        | Some root ->
            let content =
              read_file (Filename.concat root "lib/trace/generator.ml")
            in
            let pos = pos mod max 1 (String.length content) in
            let mutated =
              String.sub content 0 pos ^ garbage
              ^ String.sub content pos (String.length content - pos)
            in
            let f = Facts.extract ~rel:"lib/trace/generator.ml" mutated in
            (* Either it still parses (the splice was benign) or the
               fallback engaged; both are fine — no exception escaped. *)
            ignore f.Facts.parse_failed;
            true);
  ]

let test_fallback_is_flagged () =
  let f = Facts.extract ~rel:"lib/x/y.ml" "let let let (((" in
  Alcotest.(check bool) "parse failure sets the flag" true f.Facts.parse_failed;
  let r = analyze [ ("lib/x/y.ml", "let let let (((") ] in
  Alcotest.(check int) "fallback counted" 1 r.Sema.fallbacks

(* ---- P1-P4: hot-path perf rules ------------------------------------------ *)

let prules r =
  List.filter (fun x -> String.length x = 2 && x.[0] = 'P') (rules_of r)

let replace_once haystack needle subst =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then None
    else if String.sub haystack i n = needle then
      Some
        (String.sub haystack 0 i ^ subst
        ^ String.sub haystack (i + n) (h - i - n))
    else go (i + 1)
  in
  go 0

let test_hot_root_flagged () =
  let body = "let f xs = List.map (fun x -> x + 1) xs\n" in
  let r = analyze [ ("lib/demo/h.ml", "(* mppm: hot *)\n" ^ body) ] in
  Alcotest.(check (list string)) "allocating call under a hot root is P1"
    [ "P1" ] (prules r);
  let r = analyze [ ("lib/demo/h.ml", body) ] in
  Alcotest.(check (list string)) "annotation removed, no findings" []
    (prules r)

let test_hot_transitive () =
  let r =
    analyze
      [
        ("lib/demo/alloc.ml", "let mk a b = (a, b)\n");
        ("lib/demo/root.ml", "(* mppm: hot *)\nlet run x = Alloc.mk x x\n");
      ]
  in
  Alcotest.(check bool) "callee of a hot root is flagged" true
    (List.exists
       (fun d ->
         d.Diag.rule = "P1"
         && d.Diag.file = "lib/demo/alloc.ml"
         && contains d.Diag.message "hot via Root.run")
       r.Sema.diags)

let test_hot_cold_guard () =
  let src =
    "module Invariant = Mppm_util.Invariant\n\
     (* mppm: hot *)\n\
     let f xs =\n\
    \  if Invariant.enabled () then ignore (List.map (fun x -> x) xs);\n\
    \  Array.length xs\n"
  in
  let r = analyze [ ("lib/demo/h.ml", src) ] in
  Alcotest.(check (list string)) "sanitizer-guarded branch is cold" []
    (prules r)

let test_hot_loop_region () =
  let outside =
    "(* mppm: hot *)\n\
     let f n =\n\
    \  let scratch = Array.make n 0 in\n\
    \  for i = 0 to n - 1 do scratch.(i) <- i done;\n\
    \  scratch\n"
  in
  let r = analyze [ ("lib/demo/h.ml", outside) ] in
  Alcotest.(check (list string))
    "allocation before the loop of a looping root is fine" [] (prules r);
  let inside =
    "(* mppm: hot *)\n\
     let f n =\n\
    \  let acc = ref [] in\n\
    \  for i = 0 to n - 1 do acc := (i, i) :: !acc done;\n\
    \  !acc\n"
  in
  let r = analyze [ ("lib/demo/h.ml", inside) ] in
  Alcotest.(check bool) "allocation inside the loop is flagged" true
    (List.mem "P1" (prules r))

let test_cold_marker () =
  let src =
    "(* mppm: hot *)\n\
     let f n =\n\
    \  let acc = ref 0 in\n\
    \  for i = 0 to n - 1 do\n\
    \    (* mppm: cold — diagnostics only *)\n\
    \    if i > n then ignore (string_of_int i ^ \"!\");\n\
    \    acc := !acc + i\n\
    \  done;\n\
    \  !acc\n"
  in
  let r = analyze [ ("lib/demo/h.ml", src) ] in
  Alcotest.(check (list string)) "cold-marked expression is skipped" []
    (prules r)

let test_p2_p3_p4_shapes () =
  let check_rule name src rule =
    let r = analyze [ ("lib/demo/h.ml", src) ] in
    Alcotest.(check bool) name true (List.mem rule (prules r))
  in
  check_rule "polymorphic = on a hot path is P2"
    "(* mppm: hot *)\nlet f a b = a = b\n" "P2";
  check_rule "Hashtbl traffic on a hot path is P3"
    "(* mppm: hot *)\nlet f h k = Hashtbl.find h k\n" "P3";
  check_rule "boxed-float ref accumulation is P4"
    "(* mppm: hot *)\nlet f acc x = acc := !acc +. x\n" "P4"

(* The acceptance fixture: the real SDC update is P-clean, and injecting
   a heap allocation under its (* mppm: hot *) root fails the lint. *)
let test_injected_allocation_rejected () =
  match lint_root () with
  | None -> Alcotest.fail "cannot locate the source tree"
  | Some root ->
      let rel = "lib/cache/sdc.ml" in
      let content = read_file (Filename.concat root rel) in
      let clean = analyze [ (rel, content) ] in
      Alcotest.(check (list string)) "real Sdc is P-clean" [] (prules clean);
      let needle = "let i = if depth > t.assoc then t.assoc else depth - 1 in" in
      let subst = needle ^ "\n  let boxed = (depth, depth) in\n  ignore boxed;" in
      (match replace_once content needle subst with
      | None -> Alcotest.fail "injection site not found in lib/cache/sdc.ml"
      | Some mutated ->
          let r = analyze [ (rel, mutated) ] in
          Alcotest.(check bool) "injected allocation under the hot root fails"
            true
            (List.exists
               (fun d ->
                 d.Diag.rule = "P1"
                 && d.Diag.severity = Diag.Error
                 && contains d.Diag.message "hot")
               r.Sema.diags))

(* A hot annotation added to one file re-parses only that file, and the
   cached facts of the callee still carry its perf sites. *)
let test_cache_hot_annotation () =
  let cache_file = Filename.temp_file "mppm_sema_cache" ".bin" in
  let callee = ("lib/demo/alloc.ml", "let mk a b = (a, b)\n") in
  let root_plain = ("lib/demo/root.ml", "let run x = Alloc.mk x x\n") in
  let root_hot =
    ("lib/demo/root.ml", "(* mppm: hot *)\nlet run x = Alloc.mk x x\n")
  in
  let first = analyze ~cache_file [ callee; root_plain ] in
  Alcotest.(check (list string)) "no hot root, no P findings" []
    (prules first);
  let second = analyze ~cache_file [ callee; root_hot ] in
  Alcotest.(check int) "only the annotated file re-parses" 1
    second.Sema.parses;
  Alcotest.(check int) "the callee comes from the cache" 1
    second.Sema.cache_hits;
  Alcotest.(check bool) "hotness reaches the cached callee" true
    (List.mem "P1" (prules second));
  Sys.remove cache_file

(* Propagation laws over the pure reachability core. *)
let hot_graph_arb =
  let node = QCheck.Gen.map (fun i -> "n" ^ string_of_int i) (QCheck.Gen.int_bound 9) in
  let gen =
    QCheck.Gen.pair
      (QCheck.Gen.list_size (QCheck.Gen.int_bound 3) node)
      (QCheck.Gen.list_size (QCheck.Gen.int_bound 12)
         (QCheck.Gen.pair node (QCheck.Gen.list_size (QCheck.Gen.int_bound 3) node)))
  in
  QCheck.make gen

let subset a b = List.for_all (fun x -> List.mem x b) a

let hot_closure_tests =
  let closure = Mppm_sema.Hotpath.closure in
  [
    QCheck.Test.make ~name:"hot closure is idempotent" ~count:500 hot_graph_arb
      (fun (roots, edges) ->
        let c1 = closure ~roots ~edges in
        closure ~roots:c1 ~edges = c1);
    QCheck.Test.make ~name:"hot closure is monotone in the edges" ~count:500
      (QCheck.pair hot_graph_arb hot_graph_arb)
      (fun ((roots, edges), (_, more)) ->
        subset (closure ~roots ~edges) (closure ~roots ~edges:(edges @ more)));
    QCheck.Test.make
      ~name:"removing a root (annotation) never widens the hot set" ~count:500
      (QCheck.pair hot_graph_arb hot_graph_arb)
      (fun ((roots, edges), (extra, _)) ->
        subset (closure ~roots ~edges)
          (closure ~roots:(roots @ extra) ~edges));
    QCheck.Test.make ~name:"hot closure contains its roots" ~count:500
      hot_graph_arb
      (fun (roots, edges) -> subset roots (closure ~roots ~edges));
  ]

(* Driver-level coverage: unknown rule names are a usage error, and
   --report hot prints the inventory. *)
(* ---- U rules: dimensional analysis ---------------------------------------- *)

let u_rules r =
  List.filter
    (fun d -> String.length d.Diag.rule = 2 && d.Diag.rule.[0] = 'U')
    r.Sema.diags

let test_u1_mixed_arithmetic () =
  let mli =
    "val cyc : float  (* mppm: unit cycles *)\n\
     val ins : float  (* mppm: unit insns *)\n\
     val bad : float\n"
  in
  let ml = "let cyc = 1.0\nlet ins = 2.0\nlet bad = cyc +. ins\n" in
  let r = analyze [ ("lib/demo/u.mli", mli); ("lib/demo/u.ml", ml) ] in
  (match u_rules r with
  | [ d ] ->
      Alcotest.(check string) "rule" "U1" d.Diag.rule;
      Alcotest.(check bool) "message names both units" true
        (contains d.Diag.message "cycles" && contains d.Diag.message "insns")
  | ds -> Alcotest.failf "expected one U1, got %d U findings" (List.length ds));
  (* Same-unit arithmetic and literals stay silent. *)
  let ml_ok = "let cyc = 1.0\nlet ins = 2.0\nlet bad = cyc +. cyc +. 5.0 -. (cyc -. cyc) *. 2.0\n" in
  let r = analyze [ ("lib/demo/u.mli", mli); ("lib/demo/u.ml", ml_ok) ] in
  Alcotest.(check int) "clean module has no U findings" 0
    (List.length (u_rules r))

let test_u2_cumulative_flavor () =
  let mli =
    "val total : float  (* mppm: unit cumulative accesses *)\n\
     val total2 : float  (* mppm: unit cumulative accesses *)\n\
     val charge : window:float -> float  (* mppm: unit window:accesses -> accesses *)\n\
     val delta : float\n\
     val bad : float\n\
     val worse : float\n"
  in
  let ml =
    "let total = 100.0\n\
     let total2 = 160.0\n\
     let charge ~window = window\n\
     let delta = total2 -. total\n\
     let bad = charge ~window:total\n\
     let worse = total +. total2\n"
  in
  let r = analyze [ ("lib/demo/u.mli", mli); ("lib/demo/u.ml", ml) ] in
  let us = u_rules r in
  Alcotest.(check (list string)) "both flavor confusions are U2"
    [ "U2"; "U2" ]
    (List.map (fun d -> d.Diag.rule) us);
  List.iter
    (fun d ->
      Alcotest.(check bool) "message explains the flavor" true
        (contains d.Diag.message "cumulative"))
    us;
  (* The subtraction discharge [total2 -. total] raised nothing: only the
     call-site hand-off and the cumulative addition fired. *)
  Alcotest.(check bool) "discharge line is silent" true
    (List.for_all (fun d -> d.Diag.line <> 4) us)

let test_u3_ratio () =
  let mli =
    "val cpi : float  (* mppm: unit cycles/insns *)\n\
     val ipc : float  (* mppm: unit insns/cycles *)\n\
     val idx : float  (* mppm: unit intervals *)\n\
     val accs : float  (* mppm: unit accesses *)\n\
     val bad : float\n\
     val bad2 : float\n"
  in
  let ml =
    "let cpi = 2.0\nlet ipc = 0.5\nlet idx = 3.0\nlet accs = 9.0\n\
     let bad = cpi +. ipc\n\
     let bad2 = idx +. accs\n"
  in
  let r = analyze [ ("lib/demo/u.mli", mli); ("lib/demo/u.ml", ml) ] in
  (match u_rules r with
  | [ a; b ] ->
      Alcotest.(check (list string)) "both are U3" [ "U3"; "U3" ]
        [ a.Diag.rule; b.Diag.rule ];
      Alcotest.(check bool) "reciprocal ratio named inverted" true
        (contains a.Diag.message "inverted"
        || contains b.Diag.message "inverted");
      Alcotest.(check bool) "interval-as-count named" true
        (contains a.Diag.message "interval index"
        || contains b.Diag.message "interval index")
  | ds -> Alcotest.failf "expected two U3, got %d U findings" (List.length ds))

(* The committed SDC prefix-sum readout is the real-source anchor: flip its
   subtraction into an addition and U2 must fire on the flipped line. *)
let test_u2_real_sdc_flip () =
  match lint_root () with
  | None -> Alcotest.fail "cannot locate the source tree"
  | Some root ->
      let ml = read_file (Filename.concat root "lib/cache/sdc.ml") in
      let mli = read_file (Filename.concat root "lib/cache/sdc.mli") in
      let clean =
        analyze [ ("lib/cache/sdc.mli", mli); ("lib/cache/sdc.ml", ml) ]
      in
      Alcotest.(check int) "pristine readout is unit-clean" 0
        (List.length (u_rules clean));
      let needle = "prefix.(last) -. prefix.(first)" in
      Alcotest.(check bool) "readout shape present" true (contains ml needle);
      let idx =
        let n = String.length needle and h = String.length ml in
        let rec go i =
          if i + n > h then Alcotest.fail "needle vanished"
          else if String.sub ml i n = needle then i
          else go (i + 1)
        in
        go 0
      in
      let flipped =
        String.sub ml 0 idx
        ^ "prefix.(last) +. prefix.(first)"
        ^ String.sub ml (idx + String.length needle)
            (String.length ml - idx - String.length needle)
      in
      let r =
        analyze [ ("lib/cache/sdc.mli", mli); ("lib/cache/sdc.ml", flipped) ]
      in
      (match u_rules r with
      | [ d ] ->
          Alcotest.(check string) "flipped subtraction is U2" "U2" d.Diag.rule;
          Alcotest.(check bool) "message explains composition" true
            (contains d.Diag.message "cumulative")
      | ds ->
          Alcotest.failf "expected exactly one U2, got %d U findings"
            (List.length ds))

let units_lattice_tests =
  let unit_arb =
    let open QCheck in
    let dims_gen =
      Gen.list_size (Gen.int_bound 3)
        (Gen.pair
           (Gen.oneofl [ "cycles"; "insns"; "accesses"; "ways" ])
           (Gen.oneofl [ -2; -1; 1; 2 ]))
    in
    make
      (Gen.frequency
         [
           (1, Gen.return Units.Any);
           (1, Gen.return Units.Opaque);
           ( 4,
             Gen.map2
               (fun dims cum -> Units.known ~cum dims)
               dims_gen Gen.bool );
         ])
  in
  let open Units in
  [
    QCheck.Test.make ~name:"unit join is idempotent" ~count:500 unit_arb
      (fun a -> equal (join a a) a);
    QCheck.Test.make ~name:"unit join is commutative" ~count:500
      (QCheck.pair unit_arb unit_arb) (fun (a, b) ->
        equal (join a b) (join b a));
    QCheck.Test.make ~name:"unit join is associative" ~count:500
      (QCheck.triple unit_arb unit_arb unit_arb) (fun (a, b, c) ->
        equal (join a (join b c)) (join (join a b) c));
    QCheck.Test.make ~name:"Any is the join identity" ~count:500 unit_arb
      (fun a -> equal (join a Any) a && equal (join Any a) a);
    QCheck.Test.make ~name:"Opaque absorbs joins" ~count:500 unit_arb
      (fun a -> equal (join a Opaque) Opaque && equal (join Opaque a) Opaque);
    QCheck.Test.make ~name:"unit mul is commutative" ~count:500
      (QCheck.pair unit_arb unit_arb) (fun (a, b) ->
        equal (mul a b) (mul b a));
    QCheck.Test.make ~name:"unit mul is associative" ~count:500
      (QCheck.triple unit_arb unit_arb unit_arb) (fun (a, b, c) ->
        equal (mul a (mul b c)) (mul (mul a b) c));
    QCheck.Test.make ~name:"div cancels mul on plain units" ~count:500
      (QCheck.pair unit_arb unit_arb) (fun (a, b) ->
        match (a, b) with
        | Known { cum = false; _ }, Known { cum = false; _ } ->
            equal (div (mul a b) b) a
        | _ -> true);
    QCheck.Test.make ~name:"parse inverts to_string" ~count:500 unit_arb
      (fun a -> equal (parse (to_string a)) a);
    QCheck.Test.make ~name:"ratio<a,b> parses as a/b" ~count:500
      (QCheck.pair unit_arb unit_arb) (fun (a, b) ->
        match (a, b) with
        | Known _, Known _ ->
            equal
              (parse
                 (Printf.sprintf "ratio<%s,%s>" (to_string a) (to_string b)))
              (div a b)
        | _ -> true);
  ]

let test_driver_unknown_rule_and_report () =
  match lint_root () with
  | None -> Alcotest.fail "cannot locate the source tree"
  | Some root ->
      let exe = Filename.concat root "tools/lint/lint.exe" in
      if not (Sys.file_exists exe) then
        (* Source checkouts don't carry the binary; the in-process
           coverage above exercises the same paths. *)
        ()
      else begin
        let out = Filename.temp_file "mppm_lint_out" ".txt" in
        let run args =
          Sys.command
            (Printf.sprintf "%s --root %s %s > %s 2>&1" (Filename.quote exe)
               (Filename.quote root) args (Filename.quote out))
        in
        let rc = run "--rules P1,BOGUS" in
        Alcotest.(check int) "unknown rule exits 2" 2 rc;
        Alcotest.(check bool) "message names the rule" true
          (contains (read_file out) "lint: unknown rule BOGUS");
        let rc = run "--only NOPE" in
        Alcotest.(check int) "unknown --only exits 2" 2 rc;
        Alcotest.(check bool) "known-rule listing is alphabetized" true
          (contains (read_file out) "U1 U2 U3)");
        let rc = run "--rules U1,U1" in
        Alcotest.(check int) "duplicate --rules entries dedup" 0 rc;
        let rc = run "--report hot" in
        Alcotest.(check int) "--report hot exits 0" 0 rc;
        Alcotest.(check bool) "inventory header printed" true
          (contains (read_file out) "hot-path inventory:");
        let rc = run "--report units" in
        Alcotest.(check int) "--report units exits 0" 0 rc;
        Alcotest.(check bool) "coverage header printed" true
          (contains (read_file out) "unit coverage:");
        Alcotest.(check bool) "hot paths carry no opaque unit" true
          (contains (read_file out) "none with an opaque unit");
        Sys.remove out
      end

(* ---- Incremental cache ---------------------------------------------------- *)

let test_cache_zero_reparses () =
  let cache_file = Filename.temp_file "mppm_sema_cache" ".bin" in
  let inputs =
    [ ("lib/demo/a.ml", "let f x = x + 1\n"); ("lib/demo/acc.ml", accum) ]
  in
  let first = analyze ~cache_file inputs in
  Alcotest.(check int) "first run parses everything" 2 first.Sema.parses;
  Alcotest.(check int) "first run has no hits" 0 first.Sema.cache_hits;
  let second = analyze ~cache_file inputs in
  Alcotest.(check int) "second run re-parses nothing" 0 second.Sema.parses;
  Alcotest.(check int) "second run is all hits" 2 second.Sema.cache_hits;
  Alcotest.(check (list string)) "identical findings"
    (rules_of first) (rules_of second);
  (* Touching one file re-parses exactly that file. *)
  let third =
    analyze ~cache_file
      [ ("lib/demo/a.ml", "let f x = x + 2\n"); ("lib/demo/acc.ml", accum) ]
  in
  Alcotest.(check int) "changed file re-parsed" 1 third.Sema.parses;
  Alcotest.(check int) "unchanged file cached" 1 third.Sema.cache_hits;
  (* A corrupt cache degrades to empty, never an error. *)
  let oc = open_out_bin cache_file in
  output_string oc "garbage";
  close_out oc;
  let fourth = analyze ~cache_file inputs in
  Alcotest.(check int) "corrupt cache means re-parse" 2 fourth.Sema.parses;
  Sys.remove cache_file

(* The --verbose counter through the real driver, over the real tree. *)
let test_cache_via_driver () =
  match lint_root () with
  | None -> Alcotest.fail "cannot locate the source tree"
  | Some root ->
      let exe = Filename.concat root "tools/lint/lint.exe" in
      if not (Sys.file_exists exe) then
        (* Source checkouts don't carry the binary; the in-process cache
           test above covers the behavior. *)
        ()
      else begin
        let cache_file = Filename.temp_file "mppm_sema_cache" ".bin" in
        let out = Filename.temp_file "mppm_lint_out" ".txt" in
        let run () =
          Sys.command
            (Printf.sprintf "%s --root %s --cache %s --verbose > %s 2>&1"
               (Filename.quote exe) (Filename.quote root)
               (Filename.quote cache_file) (Filename.quote out))
        in
        let rc1 = run () in
        Alcotest.(check int) "clean tree exits 0 (first)" 0 rc1;
        let rc2 = run () in
        Alcotest.(check int) "clean tree exits 0 (second)" 0 rc2;
        let output = read_file out in
        Alcotest.(check bool) "second run reports parses=0" true
          (contains output "parses=0");
        Sys.remove cache_file;
        Sys.remove out
      end

(* ---- SARIF golden ---------------------------------------------------------- *)

let fixture_diags () =
  let token =
    Engine.lint_source ~rel:"lib/demo/tbl.ml" "let t = Hashtbl.create 16\n"
  in
  let sema =
    analyze [ ("lib/demo/leaky.ml", leaky); ("lib/demo/acc.ml", accum) ]
  in
  List.sort Diag.compare (token @ sema.Sema.diags)

let test_sarif_golden () =
  let rendered = Sarif.render (fixture_diags ()) in
  let golden_path = "golden_lint.sarif" in
  if not (Sys.file_exists golden_path) then
    Alcotest.failf "missing golden file %s" golden_path
  else
    Alcotest.(check string) "SARIF output matches golden"
      (read_file golden_path) rendered

let test_sarif_shape () =
  let s = Sarif.render (fixture_diags ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "has %s" frag) true (contains s frag))
    [
      "\"version\": \"2.1.0\"";
      "sarif-2.1.0.json";
      "\"name\": \"mppm-lint\"";
      "\"rules\"";
      "\"ruleId\":\"S1\"";
      "\"ruleIndex\"";
      "\"uriBaseId\":\"%SRCROOT%\"";
      "\"startLine\":";
      "\"uri\":\"lib/demo/leaky.ml\"";
    ];
  Alcotest.(check bool) "empty stream still renders a run" true
    (contains (Sarif.render []) "\"results\"")

(* ---- --fix round-trip ------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_fix_round_trip () =
  let root = Filename.temp_file "mppm_fix" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  Unix.mkdir (Filename.concat root "lib") 0o755;
  Unix.mkdir (Filename.concat root "lib/demo") 0o755;
  let file = Filename.concat root "lib/demo/box.ml" in
  let oc = open_out file in
  output_string oc
    "let t = Hashtbl.create 16\n\
     let f () = failwith \"boom\"\n\
     (* lint: allow D1 kept bare on purpose *)\n\
     let u = Hashtbl.create 8\n";
  close_out oc;
  let fixed = Fix.fix_tree ~root in
  Alcotest.(check (list (pair string int))) "one file, two edits"
    [ ("lib/demo/box.ml", 2) ] fixed;
  let content = read_file file in
  Alcotest.(check bool) "~random:false inserted" true
    (contains content "Hashtbl.create ~random:false 16");
  Alcotest.(check bool) "message prefixed with module" true
    (contains content "failwith \"Box: boom\"");
  Alcotest.(check bool) "suppressed site untouched" true
    (contains content "let u = Hashtbl.create 8");
  (* Round-trip: the fixed tree re-lints clean of the fixable shapes and a
     second pass changes nothing. *)
  let diags = Engine.lint_source ~rel:"lib/demo/box.ml" content in
  Alcotest.(check (list string)) "no E1 left" []
    (List.map (fun d -> d.Diag.rule)
       (List.filter (fun d -> d.Diag.rule = "E1") diags));
  Alcotest.(check (list (pair string int))) "idempotent" [] (Fix.fix_tree ~root);
  rm_rf root

(* ---- Whole-tree assertions (AST layer) ------------------------------------- *)

let test_tree_sema_clean () =
  match lint_root () with
  | None -> Alcotest.fail "cannot locate the source tree"
  | Some root ->
      let report = Sema.analyze_tree ~root () in
      let render ds = String.concat "\n" (List.map Diag.to_text ds) in
      Alcotest.(check string) "no AST-layer findings" ""
        (render report.Sema.diags);
      Alcotest.(check int) "every file parses (no fallbacks)" 0
        report.Sema.fallbacks;
      Alcotest.(check bool) "effect summaries cover the tree" true
        (List.length report.Sema.summaries > 100)

let tests =
  [
    ( "sema.tree",
      [
        Alcotest.test_case "repository is sema-clean" `Quick
          test_tree_sema_clean;
        Alcotest.test_case "S2 catches collapsed generator streams" `Quick
          test_s2_real_generator_separation;
        Alcotest.test_case "S6 catches an injected impure task" `Quick
          test_s6_real_experiments_injection;
        Alcotest.test_case "U2 catches a flipped SDC readout" `Quick
          test_u2_real_sdc_flip;
      ] );
    ( "sema.rules",
      [
        Alcotest.test_case "S1 direct I/O" `Quick test_s1_direct_io;
        Alcotest.test_case "S1 transitive" `Quick test_s1_transitive;
        Alcotest.test_case "S1 allowlist" `Quick test_s1_allowlist;
        Alcotest.test_case "S2 helper fixpoint" `Quick test_s2_helper_fixpoint;
        Alcotest.test_case "S2 constant seed" `Quick test_s2_constant_seed;
        Alcotest.test_case "S3 float accumulation" `Quick test_s3;
        Alcotest.test_case "S4 dead exports" `Quick test_s4;
        Alcotest.test_case "S5 direct concurrency" `Quick test_s5_direct;
        Alcotest.test_case "S5 transitive" `Quick test_s5_transitive;
        Alcotest.test_case "S5 allow absorbs taint" `Quick
          test_s5_allow_absorbs;
        Alcotest.test_case "S6 captured ref" `Quick test_s6_captured_ref;
        Alcotest.test_case "S6 pure tasks clean" `Quick
          test_s6_pure_tasks_clean;
        Alcotest.test_case "S6 tainted task path" `Quick
          test_s6_tainted_task_path;
        Alcotest.test_case "S6 partial application race" `Quick
          test_s6_partial_application_race;
        Alcotest.test_case "S6 sanctioned memo" `Quick
          test_s6_sanctioned_memo_clean;
        Alcotest.test_case "S7 toplevel state" `Quick test_s7_toplevel_state;
        Alcotest.test_case "S7 handed to mutator" `Quick
          test_s7_handed_to_mutator;
        Alcotest.test_case "S8 lock order" `Quick test_s8_lock_order;
        Alcotest.test_case "purity suppression" `Quick test_purity_suppression;
        Alcotest.test_case "shared suppression" `Quick test_suppression;
        Alcotest.test_case "fallback is flagged" `Quick test_fallback_is_flagged;
      ] );
    ( "sema.hotpath",
      [
        Alcotest.test_case "P1 hot root" `Quick test_hot_root_flagged;
        Alcotest.test_case "hotness is transitive" `Quick test_hot_transitive;
        Alcotest.test_case "cold guard excluded" `Quick test_hot_cold_guard;
        Alcotest.test_case "loop region only" `Quick test_hot_loop_region;
        Alcotest.test_case "mppm: cold marker" `Quick test_cold_marker;
        Alcotest.test_case "P2/P3/P4 shapes" `Quick test_p2_p3_p4_shapes;
        Alcotest.test_case "injected allocation rejected" `Quick
          test_injected_allocation_rejected;
        Alcotest.test_case "hot annotation re-parses one file" `Quick
          test_cache_hot_annotation;
        Alcotest.test_case "driver: unknown rule, --report hot" `Quick
          test_driver_unknown_rule_and_report;
      ] );
    ( "sema.units",
      [
        Alcotest.test_case "U1 mixed arithmetic" `Quick
          test_u1_mixed_arithmetic;
        Alcotest.test_case "U2 cumulative flavor" `Quick
          test_u2_cumulative_flavor;
        Alcotest.test_case "U3 ratio soundness" `Quick test_u3_ratio;
      ] );
    ( "sema.properties",
      List.map QCheck_alcotest.to_alcotest
        (qcheck_tests @ lattice_tests @ hot_closure_tests
        @ units_lattice_tests) );
    ( "sema.cache",
      [
        Alcotest.test_case "zero re-parses on unchanged inputs" `Quick
          test_cache_zero_reparses;
        Alcotest.test_case "driver --verbose counter" `Quick
          test_cache_via_driver;
      ] );
    ( "sema.output",
      [
        Alcotest.test_case "SARIF golden" `Quick test_sarif_golden;
        Alcotest.test_case "SARIF shape" `Quick test_sarif_shape;
        Alcotest.test_case "--fix round trip" `Quick test_fix_round_trip;
      ] );
  ]
