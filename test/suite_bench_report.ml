(* Tests for Mppm_obs.Bench_report: the BENCH_model.json schema is
   pinned by a golden string (key set + version tag), render -> parse ->
   render is a fixpoint, legacy v1 reports still parse, and the diff
   engine classifies improvements, regressions, threshold changes,
   min-seconds suppression and missing/added phases.  The tail drives
   the built tools/benchdiff.exe and bin/mppm.exe for the exit-code and
   error-message contracts. *)

module B = Mppm_obs.Bench_report
module Prof = Mppm_obs.Prof

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

(* ---- fixtures ------------------------------------------------------------ *)

let mk_phase ?alloc name seconds =
  { B.ph_name = name; ph_seconds = seconds; ph_alloc_bytes = alloc }

let mk_report ?rev ?(params = []) ?pool ~total phases =
  {
    B.r_git_rev = rev;
    r_params = params;
    r_phases = phases;
    r_pool = pool;
    r_total_seconds = total;
  }

let fixture =
  mk_report ~rev:"abc1234"
    ~params:
      [
        ("mixes", B.Int 10);
        ("paper", B.Bool false);
        ("only", B.Strings [ "fig4" ]);
      ]
    ~pool:
      {
        B.pl_jobs = 4;
        pl_tasks = 30.0;
        pl_utilization = 0.85;
        pl_wait_p50 = 0.001;
        pl_wait_p99 = 0.01;
        pl_dur_p50 = 0.4;
        pl_dur_p90 = 0.9;
        pl_dur_p99 = 1.2;
      }
    ~total:13.0
    [
      mk_phase ~alloc:1048576.0 "section fig4" 12.345678;
      mk_phase "write tables" 0.25;
    ]

(* The schema golden: key set, nesting and version tag of the v2 report.
   If this test breaks, either bump the schema version or fix the
   writer — consumers (benchdiff, CI) parse exactly this shape. *)
let fixture_golden =
  String.concat "\n"
    [
      "{";
      "  \"schema\": \"mppm-bench/2\",";
      "  \"git_rev\": \"abc1234\",";
      "  \"params\": {\"mixes\": 10, \"paper\": false, \"only\": [\"fig4\"]},";
      "  \"phases\": [";
      "    {\"name\": \"section fig4\", \"seconds\": 12.346, \
       \"alloc_bytes\": 1048576},";
      "    {\"name\": \"write tables\", \"seconds\": 0.250}";
      "  ],";
      "  \"pool\": {\"jobs\": 4, \"tasks\": 30, \"utilization\": 0.8500, \
       \"wait_p50\": 0.0010, \"wait_p99\": 0.0100, \"dur_p50\": 0.4000, \
       \"dur_p90\": 0.9000, \"dur_p99\": 1.2000},";
      "  \"total_seconds\": 13.000";
      "}";
      "";
    ]

let test_schema_golden () =
  Alcotest.(check string)
    "to_json matches the pinned mppm-bench/2 document" fixture_golden
    (B.to_json fixture)

let test_render_parse_render_fixpoint () =
  let rendered = B.to_json fixture in
  match B.of_json rendered with
  | Error msg -> Alcotest.fail ("fixture failed to parse: " ^ msg)
  | Ok parsed ->
      Alcotest.(check string)
        "render -> parse -> render is a fixpoint" rendered (B.to_json parsed)

let test_parse_v1 () =
  let v1 =
    String.concat "\n"
      [
        "{";
        "  \"schema\": \"mppm-bench-timings/1\",";
        "  \"params\": {\"trace\": 1000000, \"mixes\": 10},";
        "  \"phases\": [";
        "    {\"name\": \"section fig4\", \"seconds\": 10.000}";
        "  ],";
        "  \"total_seconds\": 10.000";
        "}";
      ]
  in
  match B.of_json v1 with
  | Error msg -> Alcotest.fail ("v1 report rejected: " ^ msg)
  | Ok t ->
      Alcotest.(check (option string)) "v1 has no git_rev" None t.B.r_git_rev;
      Alcotest.(check bool) "v1 has no pool" true (Option.is_none t.B.r_pool);
      (match t.B.r_phases with
      | [ p ] ->
          Alcotest.(check string) "phase name" "section fig4" p.B.ph_name;
          Alcotest.(check (float 1e-9)) "phase seconds" 10.0 p.B.ph_seconds;
          Alcotest.(check bool) "v1 phases carry no alloc" true
            (Option.is_none p.B.ph_alloc_bytes)
      | ps ->
          Alcotest.failf "expected exactly one phase, got %d" (List.length ps));
      Alcotest.(check (float 1e-9)) "total" 10.0 t.B.r_total_seconds

let test_parse_errors () =
  let check_error name text =
    match B.of_json text with
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" name
    | Error msg ->
        Alcotest.(check bool)
          (name ^ " error is module-prefixed")
          true
          (contains msg "Bench_report:")
  in
  check_error "truncated object" "{\"schema\": \"mppm-bench/2\",";
  check_error "not json at all" "BENCH_model.json";
  check_error "wrong schema"
    "{\"schema\": \"something-else/9\", \"phases\": [], \"total_seconds\": 1.0}";
  check_error "missing total"
    "{\"schema\": \"mppm-bench/2\", \"phases\": []}"

(* ---- diffing ------------------------------------------------------------- *)

let base_two =
  mk_report ~rev:"base1" ~total:12.0
    [ mk_phase "fig4" 10.0; mk_phase "tables" 2.0 ]

let test_diff_improvement () =
  let current =
    mk_report ~rev:"cur1" ~total:9.6
      [ mk_phase "fig4" 8.0; mk_phase "tables" 1.6 ]
  in
  let d = B.diff ~baseline:base_two ~current () in
  Alcotest.(check bool) "no regression" false (B.has_regression d);
  Alcotest.(check (list string)) "no regressed phases" [] d.B.df_regressions;
  (match d.B.df_geomean_ratio with
  | None -> Alcotest.fail "geomean expected over two comparable phases"
  | Some g ->
      Alcotest.(check bool) "geomean < 1 on an improvement" true (g < 1.0);
      Alcotest.(check (float 1e-9)) "geomean is 0.8" 0.8 g);
  Alcotest.(check (option (float 1e-9))) "total ratio" (Some 0.8)
    d.B.df_total_ratio;
  Alcotest.(check (option string)) "base rev" (Some "base1") d.B.df_base_rev;
  Alcotest.(check (option string)) "cur rev" (Some "cur1") d.B.df_cur_rev

let test_diff_regression () =
  let current =
    mk_report ~total:14.0 [ mk_phase "fig4" 12.0; mk_phase "tables" 2.0 ]
  in
  let d = B.diff ~baseline:base_two ~current () in
  Alcotest.(check bool) "regression detected" true (B.has_regression d);
  Alcotest.(check (list string)) "fig4 is the regressed phase" [ "fig4" ]
    d.B.df_regressions;
  let fig4 = List.find (fun dl -> dl.B.dl_name = "fig4") d.B.df_deltas in
  Alcotest.(check bool) "delta flagged" true fig4.B.dl_regression;
  Alcotest.(check (option (float 1e-9))) "ratio 1.2" (Some 1.2)
    fig4.B.dl_ratio;
  (* A wider threshold clears the same pair. *)
  let lax = B.diff ~threshold:0.30 ~baseline:base_two ~current () in
  Alcotest.(check bool) "30% threshold tolerates +20%" false
    (B.has_regression lax)

let test_diff_min_seconds_suppression () =
  let baseline = mk_report ~total:0.01 [ mk_phase "tiny" 0.01 ] in
  let current = mk_report ~total:0.04 [ mk_phase "tiny" 0.04 ] in
  let d = B.diff ~baseline ~current () in
  Alcotest.(check bool) "4x on a sub-min_seconds phase is noise" false
    (B.has_regression d);
  (* Lowering min_seconds turns the same pair into a regression. *)
  let strict = B.diff ~min_seconds:0.001 ~baseline ~current () in
  Alcotest.(check (list string)) "strict min_seconds flags it" [ "tiny" ]
    strict.B.df_regressions

let test_diff_missing_and_added () =
  let baseline = mk_report ~total:3.0 [ mk_phase "a" 1.0; mk_phase "b" 2.0 ] in
  let current = mk_report ~total:3.0 [ mk_phase "a" 1.0; mk_phase "c" 2.0 ] in
  let d = B.diff ~baseline ~current () in
  Alcotest.(check (list string)) "missing phases" [ "b" ] d.B.df_missing;
  Alcotest.(check (list string)) "added phases" [ "c" ] d.B.df_added;
  Alcotest.(check (list string)) "phase order: baseline first, added last"
    [ "a"; "b"; "c" ]
    (List.map (fun dl -> dl.B.dl_name) d.B.df_deltas);
  (* A vanished or new phase is never a regression by itself. *)
  Alcotest.(check bool) "no regression" false (B.has_regression d)

let test_diff_invalid_threshold () =
  Alcotest.check_raises "negative threshold rejected"
    (Invalid_argument "Bench_report.diff: threshold must be finite and >= 0")
    (fun () ->
      ignore (B.diff ~threshold:(-0.1) ~baseline:base_two ~current:base_two ()))

let test_of_prof () =
  let t = ref 0.0 in
  let clock () =
    t := !t +. 1.0;
    !t
  in
  let prof = Prof.make ~clock in
  ignore (Prof.time prof "alpha" (fun () -> 1));
  ignore (Prof.time prof "alpha" (fun () -> 2));
  let report =
    B.of_prof ~git_rev:"deadbee" ~params:[ ("jobs", B.Int 1) ] ~total:5.0 prof
  in
  Alcotest.(check (option string)) "git rev" (Some "deadbee")
    report.B.r_git_rev;
  Alcotest.(check bool) "no pool without tasks" true
    (Option.is_none report.B.r_pool);
  match report.B.r_phases with
  | [ p ] ->
      Alcotest.(check string) "span name becomes phase" "alpha" p.B.ph_name;
      Alcotest.(check (float 1e-9)) "summed duration" 2.0 p.B.ph_seconds;
      Alcotest.(check bool) "alloc recorded" true
        (Option.is_some p.B.ph_alloc_bytes)
  | ps -> Alcotest.failf "expected one phase, got %d" (List.length ps)

(* ---- the CLIs ------------------------------------------------------------ *)

(* Locate the built executables the dune test stanza declares as deps;
   source checkouts without a build skip gracefully (same discipline as
   suite_sema's driver test). *)
let built_exe rel =
  let candidates =
    (match Sys.getenv_opt "MPPM_LINT_ROOT" with Some r -> [ r ] | None -> [])
    @ [ ".."; "../.."; "." ]
  in
  List.find_map
    (fun root ->
      let path = Filename.concat root rel in
      if Sys.file_exists path then Some path else None)
    candidates

let run_cli cmd =
  let out = Filename.temp_file "mppm_cli_out" ".txt" in
  let rc = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out)) in
  let text = read_file out in
  Sys.remove out;
  (rc, text)

let with_report_file report f =
  let path = Filename.temp_file "mppm_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path (B.to_json report);
      f path)

let test_benchdiff_exit_codes () =
  match built_exe "tools/benchdiff.exe" with
  | None -> () (* source checkout without a build *)
  | Some exe ->
      let faster = mk_report ~total:9.6 [ mk_phase "fig4" 8.0 ] in
      let slower = mk_report ~total:14.0 [ mk_phase "fig4" 12.0 ] in
      with_report_file base_two (fun base ->
          with_report_file faster (fun cur ->
              let rc, text =
                run_cli
                  (Printf.sprintf "%s %s %s" (Filename.quote exe)
                     (Filename.quote base) (Filename.quote cur))
              in
              Alcotest.(check int) "improvement exits 0" 0 rc;
              Alcotest.(check bool) "table mentions the phase" true
                (contains text "fig4"));
          with_report_file slower (fun cur ->
              let rc, text =
                run_cli
                  (Printf.sprintf "%s %s %s" (Filename.quote exe)
                     (Filename.quote base) (Filename.quote cur))
              in
              Alcotest.(check int) "regression exits 1" 1 rc;
              Alcotest.(check bool) "regression named in output" true
                (contains text "REGRESSION");
              let rc, _ =
                run_cli
                  (Printf.sprintf "%s --warn-only %s %s" (Filename.quote exe)
                     (Filename.quote base) (Filename.quote cur))
              in
              Alcotest.(check int) "--warn-only exits 0 on regression" 0 rc);
          let bad = Filename.temp_file "mppm_bench_bad" ".json" in
          write_file bad "this is not a bench report";
          let rc, text =
            run_cli
              (Printf.sprintf "%s %s %s" (Filename.quote exe)
                 (Filename.quote base) (Filename.quote bad))
          in
          Sys.remove bad;
          Alcotest.(check int) "malformed report exits 2" 2 rc;
          Alcotest.(check bool) "parse error is module-prefixed" true
            (contains text "Bench_report:"))

let test_trace_report_bad_input () =
  match built_exe "bin/mppm.exe" with
  | None -> () (* source checkout without a build *)
  | Some exe ->
      let empty = Filename.temp_file "mppm_trace_empty" ".jsonl" in
      write_file empty "";
      let rc, text =
        run_cli
          (Printf.sprintf "%s trace-report %s" (Filename.quote exe)
             (Filename.quote empty))
      in
      Sys.remove empty;
      Alcotest.(check int) "empty trace exits 2" 2 rc;
      Alcotest.(check bool) "error names the command" true
        (contains text "Mppm.trace_report");
      Alcotest.(check bool) "error hints at recording a trace" true
        (contains text "hint");
      let chrome = Filename.temp_file "mppm_trace_chrome" ".jsonl" in
      write_file chrome "[\n{\"ph\": \"X\"}\n]\n";
      let rc, text =
        run_cli
          (Printf.sprintf "%s trace-report %s" (Filename.quote exe)
             (Filename.quote chrome))
      in
      Sys.remove chrome;
      Alcotest.(check int) "chrome trace exits 2" 2 rc;
      Alcotest.(check bool) "error carries file and line" true
        (contains text "Mppm.trace_report");
      Alcotest.(check bool) "hint says it looks like a Chrome trace" true
        (contains text "Chrome")

let tests =
  [
    ( "bench-report",
      [
        Alcotest.test_case "schema golden: pinned v2 document" `Quick
          test_schema_golden;
        Alcotest.test_case "render/parse/render fixpoint" `Quick
          test_render_parse_render_fixpoint;
        Alcotest.test_case "legacy v1 reports parse" `Quick test_parse_v1;
        Alcotest.test_case "malformed input yields Error" `Quick
          test_parse_errors;
        Alcotest.test_case "of_prof builds phases from spans" `Quick
          test_of_prof;
      ] );
    ( "bench-diff",
      [
        Alcotest.test_case "improvement: no regression, geomean < 1" `Quick
          test_diff_improvement;
        Alcotest.test_case "regression flagged, threshold respected" `Quick
          test_diff_regression;
        Alcotest.test_case "min_seconds suppresses tiny phases" `Quick
          test_diff_min_seconds_suppression;
        Alcotest.test_case "missing and added phases listed" `Quick
          test_diff_missing_and_added;
        Alcotest.test_case "invalid threshold rejected" `Quick
          test_diff_invalid_threshold;
      ] );
    ( "bench-cli",
      [
        Alcotest.test_case "benchdiff exit codes" `Quick
          test_benchdiff_exit_codes;
        Alcotest.test_case "trace-report rejects empty/foreign traces" `Quick
          test_trace_report_bad_input;
      ] );
  ]
