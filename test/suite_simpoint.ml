(* Tests for mppm_simpoint: k-means and SimPoint-style profile phase
   analysis / quantization. *)

module Kmeans = Mppm_simpoint.Kmeans
module Simpoint = Mppm_simpoint.Simpoint
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Single_core = Mppm_simcore.Single_core
module Suite = Mppm_trace.Suite
module Configs = Mppm_cache.Configs

let check_close eps = Alcotest.(check (float eps))

(* ---- kmeans ------------------------------------------------------------- *)

let blob rng center count =
  Array.init count (fun _ ->
      Array.map (fun c -> c +. Mppm_util.Rng.float rng 0.2) center)

let test_kmeans_separable () =
  let rng = Mppm_util.Rng.create ~seed:5 in
  let a = blob rng [| 0.0; 0.0 |] 20 in
  let b = blob rng [| 10.0; 10.0 |] 20 in
  let c = blob rng [| 0.0; 10.0 |] 20 in
  let points = Array.concat [ a; b; c ] in
  let r = Kmeans.cluster ~k:3 points in
  Alcotest.(check int) "3 centroids" 3 (Array.length r.Kmeans.centroids);
  (* Each original blob must land in a single cluster. *)
  let cluster_of range =
    let base = r.Kmeans.assignment.(fst range) in
    for i = fst range to snd range do
      Alcotest.(check int) "homogeneous blob" base r.Kmeans.assignment.(i)
    done;
    base
  in
  let ca = cluster_of (0, 19) in
  let cb = cluster_of (20, 39) in
  let cc = cluster_of (40, 59) in
  Alcotest.(check bool) "distinct clusters" true (ca <> cb && cb <> cc && ca <> cc)

let test_kmeans_k_clamped () =
  let points = [| [| 0.0 |]; [| 1.0 |] |] in
  let r = Kmeans.cluster ~k:10 points in
  Alcotest.(check int) "k clamped to n" 2 (Array.length r.Kmeans.centroids)

let test_kmeans_deterministic () =
  let rng = Mppm_util.Rng.create ~seed:7 in
  let points = blob rng [| 1.0; 2.0 |] 30 in
  let a = Kmeans.cluster ~seed:3 ~k:4 points in
  let b = Kmeans.cluster ~seed:3 ~k:4 points in
  Alcotest.(check (array int)) "same assignment" a.Kmeans.assignment
    b.Kmeans.assignment

let test_kmeans_single_cluster_inertia () =
  let points = [| [| 1.0 |]; [| 3.0 |] |] in
  let r = Kmeans.cluster ~k:1 points in
  (* Centroid 2.0; inertia 1 + 1 = 2. *)
  check_close 1e-9 "inertia" 2.0 r.Kmeans.inertia

let test_kmeans_validations () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "no points" true
    (invalid (fun () -> Kmeans.cluster ~k:2 [||]));
  Alcotest.(check bool) "bad k" true
    (invalid (fun () -> Kmeans.cluster ~k:0 [| [| 1.0 |] |]));
  Alcotest.(check bool) "ragged" true
    (invalid (fun () -> Kmeans.cluster ~k:1 [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

(* ---- simpoint on real profiles -------------------------------------------- *)

let baseline = Configs.baseline ()

let profile_of name =
  Single_core.profile
    (Single_core.config baseline)
    ~benchmark:(Suite.find name) ~seed:(Suite.seed_for name)
    ~trace_instructions:200_000 ~interval_instructions:4_000

let test_features_shape () =
  let p = profile_of "gamess" in
  let f = Simpoint.features_of_profile p in
  Alcotest.(check int) "one vector per interval" 50 (Array.length f);
  Array.iter
    (fun v ->
      Alcotest.(check int) "dimension" (4 + 8 + 1) (Array.length v);
      Array.iter
        (fun x -> Alcotest.(check bool) "normalized" true (x >= 0.0 && x <= 1.0 +. 1e-9))
        v)
    f

let test_phases_recover_schedule () =
  (* bzip2 alternates 400K/300K-instruction phases, so the trace must span
     several occurrences; two clusters should then reconstruct a 2-phase
     structure with sensible weights. *)
  let p =
    Single_core.profile
      (Single_core.config baseline)
      ~benchmark:(Suite.find "bzip2") ~seed:(Suite.seed_for "bzip2")
      ~trace_instructions:1_400_000 ~interval_instructions:28_000
  in
  let phases = Simpoint.phases_of_profile ~k:2 p in
  Alcotest.(check int) "assignment per interval" 50
    (Array.length phases.Simpoint.assignment);
  let w = phases.Simpoint.weights in
  check_close 1e-9 "weights sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 w);
  Array.iter
    (fun x -> Alcotest.(check bool) "both phases populated" true (x > 0.1))
    w

let test_quantize_structure () =
  let p = profile_of "gcc" in
  let q = Simpoint.quantize ~k:4 p in
  Alcotest.(check int) "same interval count" 50 (Array.length q.Profile.intervals);
  Alcotest.(check int) "same trace length" (Profile.total_instructions p)
    (Profile.total_instructions q);
  Alcotest.(check bool) "at most k distinct intervals" true
    (Simpoint.distinct_intervals q <= 4);
  Alcotest.(check bool) "fewer than the original" true
    (Simpoint.distinct_intervals q < Simpoint.distinct_intervals p)

let test_quantize_preserves_aggregates () =
  (* Long enough that cold-start transients (which quantization folds into
     steady phases) are a small share of the trace. *)
  let p =
    Single_core.profile
      (Single_core.config baseline)
      ~benchmark:(Suite.find "bzip2") ~seed:(Suite.seed_for "bzip2")
      ~trace_instructions:1_400_000 ~interval_instructions:28_000
  in
  let q = Simpoint.quantize ~k:6 p in
  let rel a b = abs_float (a -. b) /. b in
  Alcotest.(check bool) "cpi within 10%" true (rel (Profile.cpi q) (Profile.cpi p) < 0.10);
  Alcotest.(check bool) "mpki within 25%" true
    (rel (Profile.llc_mpki q +. 0.01) (Profile.llc_mpki p +. 0.01) < 0.25)

let test_quantized_profile_feeds_mppm () =
  let names = [| "gamess"; "bzip2"; "gcc"; "soplex" |] in
  let profiles = Array.map profile_of names in
  let params = Model.default_params ~trace_instructions:200_000 in
  let full = Model.predict_profiles params profiles in
  let quantized =
    Model.predict_profiles params
      (Array.map (fun p -> Simpoint.quantize ~k:6 p) profiles)
  in
  let rel a b = abs_float (a -. b) /. b in
  Alcotest.(check bool) "STP within 10% of full-profile MPPM" true
    (rel quantized.Model.stp full.Model.stp < 0.10);
  Alcotest.(check bool) "ANTT within 10%" true
    (rel quantized.Model.antt full.Model.antt < 0.10)

let tests =
  [
    ( "simpoint.kmeans",
      [
        Alcotest.test_case "separable blobs" `Quick test_kmeans_separable;
        Alcotest.test_case "k clamped" `Quick test_kmeans_k_clamped;
        Alcotest.test_case "deterministic" `Quick test_kmeans_deterministic;
        Alcotest.test_case "inertia" `Quick test_kmeans_single_cluster_inertia;
        Alcotest.test_case "validations" `Quick test_kmeans_validations;
      ] );
    ( "simpoint.profiles",
      [
        Alcotest.test_case "feature shape" `Quick test_features_shape;
        Alcotest.test_case "phases recover schedule" `Quick test_phases_recover_schedule;
        Alcotest.test_case "quantize structure" `Quick test_quantize_structure;
        Alcotest.test_case "quantize aggregates" `Quick test_quantize_preserves_aggregates;
        Alcotest.test_case "quantized MPPM accuracy" `Slow test_quantized_profile_feeds_mppm;
      ] );
  ]
