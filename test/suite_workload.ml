(* Tests for mppm_workload: mixes, categories, sampling. *)

module Mix = Mppm_workload.Mix
module Category = Mppm_workload.Category
module Sampler = Mppm_workload.Sampler
module Suite = Mppm_trace.Suite
module Rng = Mppm_util.Rng

let check_close eps = Alcotest.(check (float eps))

(* ---- Mix ------------------------------------------------------------------ *)

let test_mix_sorting_and_names () =
  let mix = Mix.of_names [| "soplex"; "gamess"; "gamess"; "hmmer" |] in
  Alcotest.(check int) "size" 4 (Mix.size mix);
  let indices = Mix.indices mix in
  for i = 1 to 3 do
    Alcotest.(check bool) "sorted" true (indices.(i - 1) <= indices.(i))
  done;
  let names = Array.to_list (Mix.names mix) in
  Alcotest.(check bool) "two copies of gamess" true
    (List.length (List.filter (( = ) "gamess") names) = 2)

let test_mix_equality_ignores_order () =
  let a = Mix.of_names [| "mcf"; "lbm" |] in
  let b = Mix.of_names [| "lbm"; "mcf" |] in
  Alcotest.(check bool) "order-insensitive" true (Mix.equal a b);
  Alcotest.(check int) "compare 0" 0 (Mix.compare a b);
  Alcotest.(check string) "same string" (Mix.to_string a) (Mix.to_string b)

let test_mix_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true (invalid (fun () -> Mix.of_indices ~n:29 [||]));
  Alcotest.(check bool) "out of range" true
    (invalid (fun () -> Mix.of_indices ~n:29 [| 29 |]));
  Alcotest.(check bool) "unknown name raises Not_found" true
    (try ignore (Mix.of_names [| "nope" |]); false with Not_found -> true)

let test_mix_population () =
  check_close 1e-9 "dual core" 435.0 (Mix.population ~cores:2);
  check_close 1e-9 "quad core" 35960.0 (Mix.population ~cores:4);
  check_close 1e-9 "eight core" 30260340.0 (Mix.population ~cores:8)

let test_mix_benchmarks () =
  let mix = Mix.of_names [| "gamess"; "hmmer" |] in
  let benchmarks = Mix.benchmarks mix in
  Alcotest.(check (list string)) "benchmarks aligned"
    (Array.to_list (Mix.names mix))
    (Array.to_list (Array.map (fun b -> b.Mppm_trace.Benchmark.name) benchmarks))

(* ---- Category --------------------------------------------------------------- *)

let test_classify_threshold () =
  Alcotest.(check bool) "above" true
    (Category.classify ~memory_fraction:0.6 ~threshold:0.5 = Category.Mem);
  Alcotest.(check bool) "below" true
    (Category.classify ~memory_fraction:0.4 ~threshold:0.5 = Category.Comp);
  Alcotest.(check bool) "at threshold is MEM" true
    (Category.classify ~memory_fraction:0.5 ~threshold:0.5 = Category.Mem)

let test_partition () =
  let classes = [| Category.Mem; Category.Comp; Category.Mem; Category.Comp |] in
  let mem, comp = Category.partition classes in
  Alcotest.(check (array int)) "mem" [| 0; 2 |] mem;
  Alcotest.(check (array int)) "comp" [| 1; 3 |] comp

let test_category_random_mix_compositions () =
  let rng = Rng.create ~seed:3 in
  let mem = [| 0; 1; 2 |] and comp = [| 10; 11; 12; 13 |] in
  let member pool i = Array.exists (( = ) i) pool in
  for _ = 1 to 50 do
    let all_mem = Category.random_mix rng ~mem ~comp ~cores:4 Category.All_mem in
    Array.iter
      (fun i -> Alcotest.(check bool) "all MEM" true (member mem i))
      (Mix.indices all_mem);
    let all_comp = Category.random_mix rng ~mem ~comp ~cores:4 Category.All_comp in
    Array.iter
      (fun i -> Alcotest.(check bool) "all COMP" true (member comp i))
      (Mix.indices all_comp);
    let half = Category.random_mix rng ~mem ~comp ~cores:4 Category.Half_half in
    let mem_count =
      Array.fold_left
        (fun acc i -> if member mem i then acc + 1 else acc)
        0 (Mix.indices half)
    in
    Alcotest.(check int) "half MEM" 2 mem_count
  done

let test_category_empty_class_raises () =
  let rng = Rng.create ~seed:3 in
  Alcotest.(check bool) "empty MEM raises" true
    (try
       ignore (Category.random_mix rng ~mem:[||] ~comp:[| 1 |] ~cores:2 Category.All_mem);
       false
     with Invalid_argument _ -> true)

let test_composition_names () =
  Alcotest.(check (list string)) "names" [ "MEM"; "COMP"; "MIX" ]
    (List.map Category.composition_name Category.compositions)

(* ---- Sampler ------------------------------------------------------------------ *)

let test_random_mixes_shape () =
  let rng = Rng.create ~seed:5 in
  let mixes = Sampler.random_mixes rng ~cores:4 ~count:50 in
  Alcotest.(check int) "count" 50 (Array.length mixes);
  Array.iter (fun m -> Alcotest.(check int) "size" 4 (Mix.size m)) mixes

let test_random_mixes_deterministic () =
  let go () =
    Sampler.random_mixes (Rng.create ~seed:9) ~cores:4 ~count:20
    |> Array.map Mix.to_string
  in
  Alcotest.(check (array string)) "same sample" (go ()) (go ())

let test_distinct_random_mixes () =
  let rng = Rng.create ~seed:7 in
  let mixes = Sampler.distinct_random_mixes rng ~cores:2 ~count:100 in
  let keys = Array.to_list (Array.map Mix.to_string mixes) in
  Alcotest.(check int) "all distinct" 100 (List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "too many raises" true
    (try
       ignore (Sampler.distinct_random_mixes rng ~cores:1 ~count:30);
       false
     with Invalid_argument _ -> true)

let test_all_mixes () =
  let mixes = Sampler.all_mixes ~cores:2 in
  Alcotest.(check int) "dual-core population" 435 (Array.length mixes);
  let keys = Array.to_list (Array.map Mix.to_string mixes) in
  Alcotest.(check int) "all distinct" 435 (List.length (List.sort_uniq compare keys))

let test_uniform_multiset_mixes () =
  let rng = Rng.create ~seed:11 in
  let mixes = Sampler.uniform_multiset_mixes rng ~cores:3 ~count:30 in
  Alcotest.(check int) "count" 30 (Array.length mixes);
  Array.iter (fun m -> Alcotest.(check int) "size" 3 (Mix.size m)) mixes

let test_category_sets_shape () =
  let rng = Rng.create ~seed:13 in
  let sets =
    Sampler.category_sets rng ~mem:[| 0; 1; 2 |] ~comp:[| 5; 6; 7 |] ~cores:4
      ~sets:5 ~per_composition:4
  in
  Alcotest.(check int) "sets" 5 (Array.length sets);
  Array.iter
    (fun set -> Alcotest.(check int) "4 MEM + 4 COMP + 4 MIX" 12 (Array.length set))
    sets

let test_random_sets_shape () =
  let rng = Rng.create ~seed:17 in
  let sets = Sampler.random_sets rng ~cores:4 ~sets:20 ~per_set:12 in
  Alcotest.(check int) "20 sets" 20 (Array.length sets);
  Array.iter
    (fun set -> Alcotest.(check int) "12 mixes each" 12 (Array.length set))
    sets;
  (* Independent sets should not all be identical. *)
  let first = Array.map Mix.to_string sets.(0) in
  let second = Array.map Mix.to_string sets.(1) in
  Alcotest.(check bool) "sets differ" true (first <> second)

let test_suite_classification_is_reasonable () =
  (* Classifying the real suite with real profiles should produce both
     classes, and the obvious members should land correctly. *)
  let hierarchy = Mppm_cache.Configs.baseline () in
  let profiles =
    Array.map
      (fun name ->
        Mppm_simcore.Single_core.profile
          (Mppm_simcore.Single_core.config hierarchy)
          ~benchmark:(Suite.find name) ~seed:(Suite.seed_for name)
          ~trace_instructions:1_000_000 ~interval_instructions:20_000)
      [| "hmmer"; "mcf"; "lbm"; "povray" |]
  in
  let classes = Category.classify_profiles profiles in
  Alcotest.(check bool) "hmmer is COMP" true (classes.(0) = Category.Comp);
  Alcotest.(check bool) "mcf is MEM" true (classes.(1) = Category.Mem);
  Alcotest.(check bool) "lbm is MEM" true (classes.(2) = Category.Mem);
  Alcotest.(check bool) "povray is COMP" true (classes.(3) = Category.Comp)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sampled mixes are valid" ~count:200
      (pair small_int (int_range 1 16))
      (fun (seed, cores) ->
        let rng = Rng.create ~seed in
        let mixes = Sampler.random_mixes rng ~cores ~count:5 in
        Array.for_all
          (fun m ->
            Mix.size m = cores
            && Array.for_all
                 (fun i -> i >= 0 && i < Suite.count)
                 (Mix.indices m))
          mixes);
  ]

let tests =
  [
    ( "workload.mix",
      [
        Alcotest.test_case "sorting and names" `Quick test_mix_sorting_and_names;
        Alcotest.test_case "order-insensitive equality" `Quick test_mix_equality_ignores_order;
        Alcotest.test_case "validation" `Quick test_mix_validation;
        Alcotest.test_case "population counts" `Quick test_mix_population;
        Alcotest.test_case "benchmarks" `Quick test_mix_benchmarks;
      ] );
    ( "workload.category",
      [
        Alcotest.test_case "threshold" `Quick test_classify_threshold;
        Alcotest.test_case "partition" `Quick test_partition;
        Alcotest.test_case "compositions" `Quick test_category_random_mix_compositions;
        Alcotest.test_case "empty class" `Quick test_category_empty_class_raises;
        Alcotest.test_case "composition names" `Quick test_composition_names;
        Alcotest.test_case "real-suite classification" `Slow
          test_suite_classification_is_reasonable;
      ] );
    ( "workload.sampler",
      [
        Alcotest.test_case "random mixes" `Quick test_random_mixes_shape;
        Alcotest.test_case "deterministic" `Quick test_random_mixes_deterministic;
        Alcotest.test_case "distinct mixes" `Quick test_distinct_random_mixes;
        Alcotest.test_case "full enumeration" `Quick test_all_mixes;
        Alcotest.test_case "uniform multisets" `Quick test_uniform_multiset_mixes;
        Alcotest.test_case "category sets" `Quick test_category_sets_shape;
        Alcotest.test_case "random sets" `Quick test_random_sets_shape;
      ] );
    ("workload.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
