(* Tests for mppm_core: the metrics and the MPPM iterative model itself,
   including hand-built fixed-point scenarios and the end-to-end accuracy
   contract against the detailed simulator. *)

module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Profile = Mppm_profile.Profile
module Sdc = Mppm_cache.Sdc
module Contention = Mppm_contention.Contention
module Configs = Mppm_cache.Configs
module Single_core = Mppm_simcore.Single_core
module Multi_core = Mppm_multicore.Multi_core
module Suite = Mppm_trace.Suite

let check_close eps = Alcotest.(check (float eps))

(* ---- Metrics ------------------------------------------------------------ *)

let test_metrics_known_values () =
  let cpi_single = [| 1.0; 2.0 |] in
  let cpi_multi = [| 2.0; 2.0 |] in
  (* STP = 1/2 + 2/2 = 1.5; ANTT = (2 + 1)/2 = 1.5. *)
  check_close 1e-9 "stp" 1.5 (Metrics.stp ~cpi_single ~cpi_multi);
  check_close 1e-9 "antt" 1.5 (Metrics.antt ~cpi_single ~cpi_multi);
  Alcotest.(check (array (float 1e-9))) "slowdowns" [| 2.0; 1.0 |]
    (Metrics.slowdowns ~cpi_single ~cpi_multi)

let test_metrics_ideal () =
  let cpi = [| 0.5; 1.5; 3.0; 0.7 |] in
  check_close 1e-9 "no contention: STP = n" 4.0
    (Metrics.stp ~cpi_single:cpi ~cpi_multi:cpi);
  check_close 1e-9 "no contention: ANTT = 1" 1.0
    (Metrics.antt ~cpi_single:cpi ~cpi_multi:cpi)

let test_metrics_slowdown_forms_agree () =
  let cpi_single = [| 1.0; 2.0; 0.5 |] in
  let cpi_multi = [| 1.5; 2.2; 0.9 |] in
  let s = Metrics.slowdowns ~cpi_single ~cpi_multi in
  check_close 1e-9 "stp forms" (Metrics.stp ~cpi_single ~cpi_multi)
    (Metrics.stp_of_slowdowns s);
  check_close 1e-9 "antt forms" (Metrics.antt ~cpi_single ~cpi_multi)
    (Metrics.antt_of_slowdowns s)

let test_metrics_validations () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "length mismatch" true
    (invalid (fun () -> Metrics.stp ~cpi_single:[| 1.0 |] ~cpi_multi:[| 1.0; 2.0 |]));
  Alcotest.(check bool) "zero cpi" true
    (invalid (fun () -> Metrics.antt ~cpi_single:[| 0.0 |] ~cpi_multi:[| 1.0 |]))

(* ---- synthetic profiles --------------------------------------------------- *)

let assoc = 8

(* A stationary profile: every interval identical.  [hit_depth] places all
   LLC hits at one stack depth, so contention effects are predictable. *)
let stationary_profile ?(name = "stationary") ~cpi ~stall_per_miss ~accesses_per_interval
    ~miss_fraction ~hit_depth () =
  let interval_instructions = 1_000 in
  let misses = accesses_per_interval *. miss_fraction in
  let hits = accesses_per_interval -. misses in
  let make_interval _ =
    let sdc = Sdc.create ~assoc in
    let record n depth =
      for _ = 1 to int_of_float n do
        Sdc.record sdc ~depth
      done
    in
    record hits hit_depth;
    record misses (assoc + 1);
    {
      Profile.instructions = interval_instructions;
      cycles = cpi *. float_of_int interval_instructions;
      memory_stall_cycles = stall_per_miss *. misses;
      llc_accesses = accesses_per_interval;
      llc_misses = misses;
      sdc;
    }
  in
  Profile.make ~benchmark:name ~interval_instructions ~llc_assoc:assoc
    (Array.init 10 make_interval)

let default_params =
  Model.default_params ~trace_instructions:10_000

(* ---- Model: degenerate and structural cases ------------------------------- *)

let test_model_single_program_is_identity () =
  let p = stationary_profile ~cpi:1.0 ~stall_per_miss:50.0
      ~accesses_per_interval:100.0 ~miss_fraction:0.1 ~hit_depth:4 () in
  let r = Model.predict_profiles default_params [| p |] in
  check_close 1e-9 "slowdown 1" 1.0 r.Model.programs.(0).Model.slowdown;
  check_close 1e-9 "stp 1" 1.0 r.Model.stp;
  check_close 1e-9 "antt 1" 1.0 r.Model.antt

let test_model_no_llc_traffic_no_slowdown () =
  let quiet () = stationary_profile ~cpi:0.5 ~stall_per_miss:0.0
      ~accesses_per_interval:0.0 ~miss_fraction:0.0 ~hit_depth:1 () in
  let r = Model.predict_profiles default_params [| quiet (); quiet (); quiet (); quiet () |] in
  Array.iter
    (fun p -> check_close 1e-9 "no traffic, no slowdown" 1.0 p.Model.slowdown)
    r.Model.programs;
  check_close 1e-9 "stp = n" 4.0 r.Model.stp

let test_model_iteration_count () =
  let p () = stationary_profile ~cpi:1.0 ~stall_per_miss:10.0
      ~accesses_per_interval:50.0 ~miss_fraction:0.2 ~hit_depth:2 () in
  let inputs =
    Array.map
      (fun profile -> { Model.label = profile.Profile.benchmark; profile })
      [| p (); p () |]
  in
  let r, history = Model.predict_with_history default_params inputs in
  (* Equal programs advance L = trace/5 per iteration; the stop criterion
     is 5 traces, so 25 iterations. *)
  Alcotest.(check int) "25 iterations" 25 r.Model.iterations;
  Alcotest.(check int) "history length" 25 (List.length history);
  List.iter
    (fun rec_ ->
      Alcotest.(check bool) "epoch cycles positive" true (rec_.Model.epoch_cycles > 0.0);
      Array.iter
        (fun n -> Alcotest.(check bool) "progress >= L" true (n >= 2_000.0 -. 1e-6))
        rec_.Model.progress)
    history

let test_model_instructions_modelled () =
  let p () = stationary_profile ~cpi:1.0 ~stall_per_miss:10.0
      ~accesses_per_interval:50.0 ~miss_fraction:0.2 ~hit_depth:2 () in
  let r = Model.predict_profiles default_params [| p (); p () |] in
  Array.iter
    (fun prog ->
      Alcotest.(check bool) "stop criterion reached" true
        (prog.Model.instructions_modelled >= 5.0 *. 10_000.0 -. 1e-6))
    r.Model.programs

let test_model_fast_program_advances_further () =
  let fast = stationary_profile ~name:"fast" ~cpi:0.5 ~stall_per_miss:0.0
      ~accesses_per_interval:0.0 ~miss_fraction:0.0 ~hit_depth:1 () in
  let slow = stationary_profile ~name:"slow" ~cpi:2.0 ~stall_per_miss:0.0
      ~accesses_per_interval:0.0 ~miss_fraction:0.0 ~hit_depth:1 () in
  let r = Model.predict_profiles default_params [| fast; slow |] in
  let by_name name =
    Array.to_list r.Model.programs
    |> List.find (fun p -> p.Model.name = name)
  in
  (* The fast program runs 4x more instructions in the same cycles. *)
  check_close 1e-3 "4x progress ratio" 4.0
    ((by_name "fast").Model.instructions_modelled
    /. (by_name "slow").Model.instructions_modelled)

let test_model_validations () =
  let p () = stationary_profile ~cpi:1.0 ~stall_per_miss:10.0
      ~accesses_per_interval:50.0 ~miss_fraction:0.2 ~hit_depth:2 () in
  let invalid params inputs =
    try ignore (Model.predict_profiles params inputs); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "no programs" true (invalid default_params [||]);
  Alcotest.(check bool) "bad smoothing" true
    (invalid { default_params with Model.smoothing = 1.0 } [| p () |]);
  Alcotest.(check bool) "bad L" true
    (invalid { default_params with Model.iteration_instructions = 0 } [| p () |]);
  Alcotest.(check bool) "bad stop" true
    (invalid { default_params with Model.stop_trace_multiplier = 0.0 } [| p () |])

let test_model_smoothing_converges_same_fixed_point () =
  (* For stationary workloads the EMA factor must not change the fixed
     point, only the path to it. *)
  let inputs () =
    [|
      stationary_profile ~name:"a" ~cpi:1.0 ~stall_per_miss:80.0
        ~accesses_per_interval:100.0 ~miss_fraction:0.05 ~hit_depth:6 ();
      stationary_profile ~name:"b" ~cpi:1.0 ~stall_per_miss:80.0
        ~accesses_per_interval:100.0 ~miss_fraction:0.05 ~hit_depth:6 ();
    |]
  in
  let slowdown f =
    (* Run long enough that even a heavily smoothed EMA settles. *)
    let params =
      { default_params with Model.smoothing = f; stop_trace_multiplier = 25.0 }
    in
    (Model.predict_profiles params (inputs ())).Model.programs.(0).Model.slowdown
  in
  check_close 1e-2 "f=0 vs f=0.5" (slowdown 0.0) (slowdown 0.5);
  check_close 1e-2 "f=0.5 vs f=0.8" (slowdown 0.5) (slowdown 0.8)

let test_model_fixed_point_closed_form () =
  (* Two identical programs, all hits at depth 6 of 8 ways.  FOA gives each
     4 ways, so every hit becomes a miss: extra = hits per window.  With
     the Consistent rule the fixed point solves
       R = 1 + extra * penalty * R / C,  C = cpi * R * N
     i.e. R = 1 + (extra * penalty) / (cpi * N). *)
  let cpi = 1.0 and stall_per_miss = 60.0 in
  let accesses = 100.0 and miss_fraction = 0.1 in
  let inputs =
    [|
      stationary_profile ~name:"a" ~cpi ~stall_per_miss
        ~accesses_per_interval:accesses ~miss_fraction ~hit_depth:6 ();
      stationary_profile ~name:"b" ~cpi ~stall_per_miss
        ~accesses_per_interval:accesses ~miss_fraction ~hit_depth:6 ();
    |]
  in
  let r =
    Model.predict_profiles
      { default_params with Model.update_rule = Model.Consistent }
      inputs
  in
  let hits_per_insn = accesses *. (1.0 -. miss_fraction) /. 1000.0 in
  let expected = 1.0 +. (hits_per_insn *. stall_per_miss /. cpi) in
  check_close 1e-2 "closed-form fixed point" expected
    r.Model.programs.(0).Model.slowdown

let test_model_paper_vs_consistent_update () =
  (* The paper-literal rule divides miss cycles by the epoch's wall time
     rather than the program's own isolated time, so it predicts smaller
     slowdowns once R > 1. *)
  let inputs =
    [|
      stationary_profile ~name:"a" ~cpi:1.0 ~stall_per_miss:80.0
        ~accesses_per_interval:100.0 ~miss_fraction:0.1 ~hit_depth:6 ();
      stationary_profile ~name:"b" ~cpi:1.0 ~stall_per_miss:80.0
        ~accesses_per_interval:100.0 ~miss_fraction:0.1 ~hit_depth:6 ();
    |]
  in
  let slowdown rule =
    (Model.predict_profiles { default_params with Model.update_rule = rule } inputs)
      .Model.programs.(0)
      .Model.slowdown
  in
  let paper = slowdown Model.Paper_literal in
  let consistent = slowdown Model.Consistent in
  Alcotest.(check bool) "both predict contention" true (paper > 1.1 && consistent > 1.1);
  Alcotest.(check bool) "paper-literal is the smaller" true (paper < consistent)

let test_model_contention_model_is_pluggable () =
  let inputs =
    [|
      stationary_profile ~name:"a" ~cpi:1.0 ~stall_per_miss:80.0
        ~accesses_per_interval:100.0 ~miss_fraction:0.1 ~hit_depth:6 ();
      stationary_profile ~name:"b" ~cpi:1.0 ~stall_per_miss:80.0
        ~accesses_per_interval:20.0 ~miss_fraction:0.1 ~hit_depth:2 ();
    |]
  in
  List.iter
    (fun contention ->
      let r =
        Model.predict_profiles { default_params with Model.contention } inputs
      in
      Array.iter
        (fun p ->
          Alcotest.(check bool) "slowdown >= 1" true (p.Model.slowdown >= 1.0 -. 1e-9))
        r.Model.programs)
    [ Contention.Foa; Contention.Sdc_competition; Contention.Prob { iterations = 5 } ]

let test_model_deterministic () =
  let inputs () =
    [|
      stationary_profile ~name:"a" ~cpi:1.0 ~stall_per_miss:80.0
        ~accesses_per_interval:100.0 ~miss_fraction:0.1 ~hit_depth:6 ();
      stationary_profile ~name:"b" ~cpi:0.7 ~stall_per_miss:40.0
        ~accesses_per_interval:60.0 ~miss_fraction:0.3 ~hit_depth:3 ();
    |]
  in
  let a = Model.predict_profiles default_params (inputs ()) in
  let b = Model.predict_profiles default_params (inputs ()) in
  Array.iteri
    (fun i p ->
      check_close 1e-12 "deterministic" p.Model.slowdown
        b.Model.programs.(i).Model.slowdown)
    a.Model.programs

(* ---- Model vs detailed simulation (the paper's accuracy contract) --------- *)

let test_model_tracks_detailed_simulation () =
  let trace = 200_000 in
  let interval = trace / 50 in
  let hierarchy = Configs.baseline () in
  let names = [| "gamess"; "gamess"; "hmmer"; "soplex" |] in
  let profiles =
    Array.map
      (fun name ->
        Single_core.profile (Single_core.config hierarchy)
          ~benchmark:(Suite.find name) ~seed:(Suite.seed_for name)
          ~trace_instructions:trace ~interval_instructions:interval)
      names
  in
  let predicted =
    Model.predict_profiles (Model.default_params ~trace_instructions:trace) profiles
  in
  let offsets = Multi_core.default_offsets (Array.length names) in
  let detailed =
    Multi_core.run (Multi_core.config hierarchy)
      ~programs:
        (Array.mapi
           (fun i name ->
             { Multi_core.benchmark = Suite.find name;
               seed = Suite.seed_for name; offset = offsets.(i) })
           names)
      ~trace_instructions:trace
  in
  let cpi_single = Array.map Profile.cpi profiles in
  let cpi_multi =
    Array.map (fun p -> p.Multi_core.multicore_cpi) detailed.Multi_core.programs
  in
  let stp = Metrics.stp ~cpi_single ~cpi_multi in
  let antt = Metrics.antt ~cpi_single ~cpi_multi in
  Alcotest.(check bool) "STP within 15%" true
    (abs_float (predicted.Model.stp -. stp) /. stp < 0.15);
  Alcotest.(check bool) "ANTT within 15%" true
    (abs_float (predicted.Model.antt -. antt) /. antt < 0.15);
  (* And the ordering of slowdowns must match: gamess > soplex > hmmer. *)
  let by_name name =
    Array.to_list predicted.Model.programs
    |> List.find (fun p -> p.Model.name = name)
  in
  Alcotest.(check bool) "gamess most sensitive" true
    ((by_name "gamess").Model.slowdown > (by_name "soplex").Model.slowdown);
  Alcotest.(check bool) "soplex above hmmer" true
    ((by_name "soplex").Model.slowdown > (by_name "hmmer").Model.slowdown)

let tests =
  [
    ( "core.metrics",
      [
        Alcotest.test_case "known values" `Quick test_metrics_known_values;
        Alcotest.test_case "ideal machine" `Quick test_metrics_ideal;
        Alcotest.test_case "slowdown forms agree" `Quick test_metrics_slowdown_forms_agree;
        Alcotest.test_case "validations" `Quick test_metrics_validations;
      ] );
    ( "core.model",
      [
        Alcotest.test_case "single program identity" `Quick test_model_single_program_is_identity;
        Alcotest.test_case "no traffic, no slowdown" `Quick test_model_no_llc_traffic_no_slowdown;
        Alcotest.test_case "iteration count" `Quick test_model_iteration_count;
        Alcotest.test_case "stop criterion" `Quick test_model_instructions_modelled;
        Alcotest.test_case "relative progress" `Quick test_model_fast_program_advances_further;
        Alcotest.test_case "validations" `Quick test_model_validations;
        Alcotest.test_case "smoothing-independent fixed point" `Quick
          test_model_smoothing_converges_same_fixed_point;
        Alcotest.test_case "closed-form fixed point" `Quick test_model_fixed_point_closed_form;
        Alcotest.test_case "paper vs consistent update" `Quick
          test_model_paper_vs_consistent_update;
        Alcotest.test_case "pluggable contention" `Quick test_model_contention_model_is_pluggable;
        Alcotest.test_case "deterministic" `Quick test_model_deterministic;
      ] );
    ( "core.end_to_end",
      [
        Alcotest.test_case "tracks detailed simulation" `Slow
          test_model_tracks_detailed_simulation;
      ] );
  ]
