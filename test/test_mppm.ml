let () =
  Alcotest.run "mppm"
    (Suite_util.tests @ Suite_cache.tests @ Suite_trace.tests
   @ Suite_simcore.tests @ Suite_multicore.tests @ Suite_profile.tests
   @ Suite_contention.tests @ Suite_model.tests @ Suite_workload.tests @ Suite_experiments.tests @ Suite_extensions.tests @ Suite_simpoint.tests
   @ Suite_lint.tests @ Suite_sema.tests @ Suite_obs.tests
   @ Suite_pool.tests @ Suite_bench_report.tests @ Suite_serve.tests)
