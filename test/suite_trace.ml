(* Tests for mppm_trace: benchmark validation, the op/generator machinery
   and the synthetic suite. *)

module Benchmark = Mppm_trace.Benchmark
module Generator = Mppm_trace.Generator
module Op = Mppm_trace.Op
module Suite = Mppm_trace.Suite

let check_close eps = Alcotest.(check (float eps))

let region ?(pattern = Benchmark.Uniform) name size weight =
  { Benchmark.region_name = name; size_bytes = size; weight; region_pattern = pattern }

let phase ?(mem = 0.3) ?(store = 0.3) ?(mlp = 1.5) ?(cpi = 0.5) name regions =
  {
    Benchmark.phase_name = name;
    base_cpi = cpi;
    mem_ratio = mem;
    store_fraction = store;
    mlp;
    regions;
  }

let simple_benchmark ?(mem = 0.3) () =
  {
    Benchmark.name = "test-bench";
    description = "synthetic test benchmark";
    schedule = [ (phase ~mem "only" [ region "data" 65536 1.0 ], 100_000) ];
    code_bytes = 8192;
    hot_code_bytes = 4096;
    cold_fetch_rate = 0.0;
  }

let two_phase_benchmark =
  {
    Benchmark.name = "two-phase";
    description = "alternating phases";
    schedule =
      [
        (phase ~mem:0.5 "memory" [ region "a" 4096 1.0 ], 1_000);
        (phase ~mem:0.0 "compute" [ region "b" 4096 1.0 ], 500);
      ];
    code_bytes = 4096;
    hot_code_bytes = 4096;
    cold_fetch_rate = 0.0;
  }

(* ---- Op --------------------------------------------------------------- *)

let test_op_constructors () =
  let c = Op.compute 5 in
  Alcotest.(check int) "compute instructions" 5 c.Op.instructions;
  Alcotest.(check bool) "no access" true (c.Op.access = None);
  let m = Op.memory ~gap:3 ~addr:256 ~kind:Op.Load in
  Alcotest.(check int) "memory instructions" 4 m.Op.instructions;
  (match m.Op.access with
  | Some a ->
      Alcotest.(check int) "address" 256 a.Op.addr;
      Alcotest.(check bool) "kind" true (a.Op.kind = Op.Load)
  | None -> Alcotest.fail "expected access");
  Alcotest.(check bool) "compute 0 raises" true
    (try ignore (Op.compute 0); false with Invalid_argument _ -> true)

(* ---- Benchmark validation --------------------------------------------- *)

let test_validate_rejects_bad_specs () =
  let base = simple_benchmark () in
  let invalid b = try Benchmark.validate b; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty schedule" true (invalid { base with Benchmark.schedule = [] });
  Alcotest.(check bool) "bad hot code" true
    (invalid { base with Benchmark.hot_code_bytes = base.Benchmark.code_bytes * 2 });
  Alcotest.(check bool) "bad cold rate" true
    (invalid { base with Benchmark.cold_fetch_rate = 1.5 });
  let bad_phase p = { base with Benchmark.schedule = [ (p, 1000) ] } in
  Alcotest.(check bool) "mem_ratio > 1" true
    (invalid (bad_phase (phase ~mem:1.5 "p" [ region "r" 4096 1.0 ])));
  Alcotest.(check bool) "no regions" true (invalid (bad_phase (phase "p" [])));
  Alcotest.(check bool) "zero weights" true
    (invalid (bad_phase (phase "p" [ region "r" 4096 0.0 ])));
  Alcotest.(check bool) "mlp < 1" true
    (invalid (bad_phase (phase ~mlp:0.5 "p" [ region "r" 4096 1.0 ])));
  Alcotest.(check bool) "stride beyond region" true
    (invalid
       (bad_phase (phase "p" [ region ~pattern:(Benchmark.Strided 8192) "r" 4096 1.0 ])))

let test_phase_at () =
  let b = two_phase_benchmark in
  Alcotest.(check int) "period" 1500 (Benchmark.schedule_period b);
  let p, remaining = Benchmark.phase_at b 0 in
  Alcotest.(check string) "first phase" "memory" p.Benchmark.phase_name;
  Alcotest.(check int) "remaining" 1000 remaining;
  let p, remaining = Benchmark.phase_at b 999 in
  Alcotest.(check string) "end of first" "memory" p.Benchmark.phase_name;
  Alcotest.(check int) "one left" 1 remaining;
  let p, _ = Benchmark.phase_at b 1000 in
  Alcotest.(check string) "second phase" "compute" p.Benchmark.phase_name;
  let p, _ = Benchmark.phase_at b 1500 in
  Alcotest.(check string) "cycles" "memory" p.Benchmark.phase_name;
  let p, _ = Benchmark.phase_at b (1500 * 7 + 1200) in
  Alcotest.(check string) "deep cycling" "compute" p.Benchmark.phase_name

let test_footprint_and_ratio () =
  let b = two_phase_benchmark in
  Alcotest.(check int) "footprint is max over phases" 4096 (Benchmark.data_footprint b);
  check_close 1e-9 "mean mem ratio" (0.5 *. 1000.0 /. 1500.0) (Benchmark.mean_mem_ratio b)

(* ---- Generator --------------------------------------------------------- *)

let test_generator_determinism () =
  let b = simple_benchmark () in
  let g1 = Generator.create ~seed:42 b in
  let g2 = Generator.create ~seed:42 b in
  for _ = 1 to 10_000 do
    let o1 = Generator.next g1 ~cap:1_000 in
    let o2 = Generator.next g2 ~cap:1_000 in
    if o1 <> o2 then Alcotest.fail "streams diverged"
  done

let test_generator_retired_accounting () =
  let b = simple_benchmark () in
  let g = Generator.create ~seed:1 b in
  let total = ref 0 in
  for _ = 1 to 5_000 do
    let op = Generator.next g ~cap:997 in
    Alcotest.(check bool) "cap respected" true (op.Op.instructions <= 997);
    Alcotest.(check bool) "positive" true (op.Op.instructions >= 1);
    total := !total + op.Op.instructions
  done;
  Alcotest.(check int) "retired matches" !total (Generator.retired g)

let test_generator_mem_ratio () =
  let b = simple_benchmark ~mem:0.25 () in
  let g = Generator.create ~seed:3 b in
  let insns = ref 0 and accesses = ref 0 in
  while !insns < 2_000_000 do
    let op = Generator.next g ~cap:1_000_000 in
    insns := !insns + op.Op.instructions;
    if op.Op.access <> None then incr accesses
  done;
  check_close 0.01 "fraction of memory instructions" 0.25
    (float_of_int !accesses /. float_of_int !insns)

let test_generator_store_fraction () =
  let b = simple_benchmark () in
  let g = Generator.create ~seed:5 b in
  let loads = ref 0 and stores = ref 0 in
  for _ = 1 to 200_000 do
    match (Generator.next g ~cap:1_000_000).Op.access with
    | Some { Op.kind = Op.Load; _ } -> incr loads
    | Some { Op.kind = Op.Store; _ } -> incr stores
    | None -> ()
  done;
  check_close 0.02 "store fraction" 0.3
    (float_of_int !stores /. float_of_int (!loads + !stores))

let test_generator_compute_only_phase () =
  let g = Generator.create ~seed:7 two_phase_benchmark in
  (* Walk into the compute phase and verify no accesses are produced
     there. *)
  for _ = 1 to 10_000 do
    let pos = Generator.retired g mod 1500 in
    let op = Generator.next g ~cap:10_000 in
    if pos >= 1000 then
      Alcotest.(check bool) "compute phase has no accesses" true (op.Op.access = None)
  done

let test_generator_phase_boundary () =
  let g = Generator.create ~seed:9 two_phase_benchmark in
  for _ = 1 to 10_000 do
    let pos = Generator.retired g mod 1500 in
    let op = Generator.next g ~cap:100_000 in
    let boundary = if pos < 1000 then 1000 else 1500 in
    Alcotest.(check bool) "op never crosses a phase boundary" true
      (pos + op.Op.instructions <= boundary)
  done

let test_generator_addresses_in_space () =
  let b = simple_benchmark () in
  let offset = 1 lsl 30 in
  let g = Generator.create ~offset ~seed:11 b in
  let space = Generator.address_space_bytes g in
  for _ = 1 to 50_000 do
    (match (Generator.next g ~cap:1_000_000).Op.access with
    | Some { Op.addr; _ } ->
        Alcotest.(check bool) "address within [offset, offset+space)" true
          (addr >= offset && addr < offset + space)
    | None -> ());
    let fetch = Generator.next_fetch g in
    Alcotest.(check bool) "fetch within code region" true
      (fetch >= offset && fetch < offset + b.Benchmark.code_bytes)
  done

let test_generator_sequential_pattern () =
  let b =
    {
      (simple_benchmark ~mem:1.0 ()) with
      Benchmark.schedule =
        [
          ( phase ~mem:1.0 "seq"
              [ region ~pattern:Benchmark.Sequential "s" 1024 1.0 ],
            1_000_000 );
        ];
    }
  in
  let g = Generator.create ~seed:13 b in
  let addr_of op =
    match op.Op.access with Some a -> a.Op.addr | None -> Alcotest.fail "no access"
  in
  let first = addr_of (Generator.next g ~cap:10) in
  let second = addr_of (Generator.next g ~cap:10) in
  Alcotest.(check int) "line-step" 64 (second - first);
  (* 1024-byte region = 16 lines: wraps after 16 accesses. *)
  for _ = 3 to 16 do
    ignore (Generator.next g ~cap:10)
  done;
  Alcotest.(check int) "wraps" first (addr_of (Generator.next g ~cap:10))

let test_generator_strided_pattern () =
  let b =
    {
      (simple_benchmark ~mem:1.0 ()) with
      Benchmark.schedule =
        [
          ( phase ~mem:1.0 "strided"
              [ region ~pattern:(Benchmark.Strided 16) "s" 256 1.0 ],
            1_000_000 );
        ];
    }
  in
  let g = Generator.create ~seed:13 b in
  let addr_of op =
    match op.Op.access with Some a -> a.Op.addr | None -> Alcotest.fail "no access"
  in
  let first = addr_of (Generator.next g ~cap:10) in
  let second = addr_of (Generator.next g ~cap:10) in
  Alcotest.(check int) "stride step" 16 (second - first)

let test_generator_hot_fetch_cycles () =
  let b = simple_benchmark () in
  (* hot = 4096 bytes = 64 lines; with cold rate 0 the fetch stream is a
     strict cycle. *)
  let g = Generator.create ~seed:17 b in
  let first = Generator.next_fetch g in
  for _ = 2 to 64 do
    ignore (Generator.next_fetch g)
  done;
  Alcotest.(check int) "fetch cycles through hot code" first (Generator.next_fetch g)

let test_generator_shared_region_cursor () =
  (* Two phases naming the same region share its cursor (data persists
     across phases). *)
  let shared = region ~pattern:Benchmark.Sequential "shared" 65536 1.0 in
  let b =
    {
      (simple_benchmark ~mem:1.0 ()) with
      Benchmark.schedule =
        [ (phase ~mem:1.0 "p1" [ shared ], 10); (phase ~mem:1.0 "p2" [ shared ], 10) ];
    }
  in
  let g = Generator.create ~seed:19 b in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 40 do
    match (Generator.next g ~cap:1).Op.access with
    | Some { Op.addr; _ } ->
        Alcotest.(check bool) "sequential never repeats before wrap" false
          (Hashtbl.mem seen addr);
        Hashtbl.add seen addr ()
    | None -> ()
  done

(* ---- Suite -------------------------------------------------------------- *)

let test_suite_shape () =
  Alcotest.(check int) "29 benchmarks like SPEC CPU2006" 29 Suite.count;
  let names = Array.to_list Suite.names in
  Alcotest.(check int) "names unique" 29 (List.length (List.sort_uniq compare names));
  List.iter (fun b -> Benchmark.validate b) (Array.to_list Suite.all)

let test_suite_lookup () =
  Array.iteri
    (fun i name ->
      Alcotest.(check int) "index" i (Suite.index name);
      Alcotest.(check string) "find" name (Suite.find name).Benchmark.name)
    Suite.names;
  Alcotest.(check bool) "unknown raises" true
    (try ignore (Suite.find "notabench"); false with Not_found -> true)

let test_suite_seeds () =
  Alcotest.(check int) "stable" (Suite.seed_for "gamess") (Suite.seed_for "gamess");
  Alcotest.(check bool) "distinct" true
    (Suite.seed_for "gamess" <> Suite.seed_for "hmmer")

let test_suite_diversity () =
  (* The suite must span compute-bound to memory-bound behaviour. *)
  let ratios = Array.map Benchmark.mean_mem_ratio Suite.all in
  let lo = Array.fold_left Float.min 1.0 ratios in
  let hi = Array.fold_left Float.max 0.0 ratios in
  Alcotest.(check bool) "memory-op ratios spread" true (lo < 0.3 && hi > 0.38);
  let footprints = Array.map Benchmark.data_footprint Suite.all in
  let small = Array.fold_left min max_int footprints in
  let large = Array.fold_left max 0 footprints in
  Alcotest.(check bool) "footprints span L1-resident to >LLC" true
    (small < 65536 && large > 4 * 1024 * 1024)

let test_suite_llc_band_members () =
  (* The Sec. 6 sharing-sensitive benchmarks must have a region in the
     (L2, LLC] band. *)
  List.iter
    (fun name ->
      let b = Suite.find name in
      let in_band =
        List.exists
          (fun (p, _) ->
            List.exists
              (fun r ->
                r.Benchmark.size_bytes > 256 * 1024
                && r.Benchmark.size_bytes <= 1024 * 1024)
              p.Benchmark.regions)
          b.Benchmark.schedule
      in
      Alcotest.(check bool) (name ^ " has an LLC-band region") true in_band)
    [ "gamess"; "gobmk"; "omnetpp"; "xalancbmk"; "dealII"; "soplex" ]

(* ---- Trace_file ------------------------------------------------------------ *)

module Trace_file = Mppm_trace.Trace_file
module Sdc_profiler = Mppm_cache.Sdc_profiler
module Geometry = Mppm_cache.Geometry

let with_temp_trace f =
  let path = Filename.temp_file "mppm-trace" ".trc" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_trace_roundtrip () =
  with_temp_trace (fun path ->
      let bench = Suite.find "gamess" in
      let seed = 77 in
      let meta =
        Trace_file.record ~path ~generator:(Generator.create ~seed bench)
          ~accesses:5_000 ()
      in
      Alcotest.(check int) "meta accesses" 5_000 meta.Trace_file.accesses;
      Alcotest.(check string) "meta benchmark" "gamess" meta.Trace_file.benchmark;
      (* Replay and compare record-for-record against a fresh generator. *)
      let reference = Generator.create ~seed bench in
      let next_ref () =
        let rec go gap =
          let op = Generator.next reference ~cap:max_int in
          match op.Op.access with
          | Some access -> (gap + op.Op.instructions - 1, access)
          | None -> go (gap + op.Op.instructions)
        in
        go 0
      in
      let count =
        Trace_file.fold path ~init:0 ~f:(fun n ~gap access ->
            let want_gap, want_access = next_ref () in
            Alcotest.(check int) "gap" want_gap gap;
            Alcotest.(check int) "addr" want_access.Op.addr access.Op.addr;
            Alcotest.(check bool) "kind" true (want_access.Op.kind = access.Op.kind);
            n + 1)
      in
      Alcotest.(check int) "all records streamed" 5_000 count)

let test_trace_meta_detects_truncation () =
  with_temp_trace (fun path ->
      let bench = Suite.find "mcf" in
      ignore
        (Trace_file.record ~path ~generator:(Generator.create ~seed:3 bench)
           ~accesses:1_000 ());
      (* Truncate the payload. *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 5);
      Unix.close fd;
      Alcotest.(check bool) "meta rejects truncation" true
        (try ignore (Trace_file.read_meta path); false with Failure _ -> true);
      Alcotest.(check bool) "fold rejects truncation" true
        (try
           ignore (Trace_file.fold path ~init:() ~f:(fun () ~gap:_ _ -> ()));
           false
         with Failure _ -> true))

let test_trace_replay_sdc_matches_live () =
  with_temp_trace (fun path ->
      let bench = Suite.find "soplex" in
      let seed = 9 in
      ignore
        (Trace_file.record ~path ~generator:(Generator.create ~seed bench)
           ~accesses:20_000 ());
      let geometry =
        Geometry.make ~size_bytes:(Geometry.kib 64) ~line_bytes:64
          ~associativity:8
      in
      (* Live profiling of the same stream. *)
      let live = Sdc_profiler.create geometry in
      let g = Generator.create ~seed bench in
      let seen = ref 0 in
      while !seen < 20_000 do
        match (Generator.next g ~cap:max_int).Op.access with
        | Some a ->
            ignore (Sdc_profiler.access live a.Op.addr);
            incr seen
        | None -> ()
      done;
      let replayed = Trace_file.replay_sdc path ~geometry in
      Alcotest.(check (list (float 1e-9)))
        "replayed SDC = live SDC"
        (Mppm_cache.Sdc.to_list (Sdc_profiler.lifetime_total live))
        (Mppm_cache.Sdc.to_list replayed))

let test_trace_miss_rate_monotone_in_size () =
  with_temp_trace (fun path ->
      ignore
        (Trace_file.record ~path
           ~generator:(Generator.create ~seed:5 (Suite.find "omnetpp"))
           ~accesses:30_000 ());
      let rate kb =
        Trace_file.replay_miss_rate path
          ~geometry:
            (Geometry.make ~size_bytes:(Geometry.kib kb) ~line_bytes:64
               ~associativity:8)
      in
      Alcotest.(check bool) "bigger cache, fewer misses" true
        (rate 1024 <= rate 64 +. 1e-9))

(* ---- qcheck -------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"generator blocks respect any cap" ~count:100
      (pair small_int (int_range 1 5_000))
      (fun (seed, cap) ->
        let g = Generator.create ~seed (simple_benchmark ()) in
        let ok = ref true in
        for _ = 1 to 200 do
          let op = Generator.next g ~cap in
          if op.Op.instructions < 1 || op.Op.instructions > cap then ok := false
        done;
        !ok);
    Test.make ~name:"retired equals sum of block sizes" ~count:50 small_int
      (fun seed ->
        let g = Generator.create ~seed two_phase_benchmark in
        let total = ref 0 in
        for _ = 1 to 500 do
          total := !total + (Generator.next g ~cap:333).Op.instructions
        done;
        !total = Generator.retired g);
  ]

let tests =
  [
    ("trace.op", [ Alcotest.test_case "constructors" `Quick test_op_constructors ]);
    ( "trace.benchmark",
      [
        Alcotest.test_case "validation" `Quick test_validate_rejects_bad_specs;
        Alcotest.test_case "phase_at" `Quick test_phase_at;
        Alcotest.test_case "footprint and ratio" `Quick test_footprint_and_ratio;
      ] );
    ( "trace.generator",
      [
        Alcotest.test_case "determinism" `Quick test_generator_determinism;
        Alcotest.test_case "retired accounting" `Quick test_generator_retired_accounting;
        Alcotest.test_case "memory ratio" `Slow test_generator_mem_ratio;
        Alcotest.test_case "store fraction" `Slow test_generator_store_fraction;
        Alcotest.test_case "compute-only phase" `Quick test_generator_compute_only_phase;
        Alcotest.test_case "phase boundaries" `Quick test_generator_phase_boundary;
        Alcotest.test_case "addresses in space" `Quick test_generator_addresses_in_space;
        Alcotest.test_case "sequential pattern" `Quick test_generator_sequential_pattern;
        Alcotest.test_case "strided pattern" `Quick test_generator_strided_pattern;
        Alcotest.test_case "hot fetch cycles" `Quick test_generator_hot_fetch_cycles;
        Alcotest.test_case "shared region cursor" `Quick test_generator_shared_region_cursor;
      ] );
    ( "trace.suite",
      [
        Alcotest.test_case "shape" `Quick test_suite_shape;
        Alcotest.test_case "lookup" `Quick test_suite_lookup;
        Alcotest.test_case "seeds" `Quick test_suite_seeds;
        Alcotest.test_case "diversity" `Quick test_suite_diversity;
        Alcotest.test_case "LLC-band members" `Quick test_suite_llc_band_members;
      ] );
    ( "trace.trace_file",
      [
        Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
        Alcotest.test_case "truncation detected" `Quick test_trace_meta_detects_truncation;
        Alcotest.test_case "replayed SDC = live" `Quick test_trace_replay_sdc_matches_live;
        Alcotest.test_case "miss rate monotone" `Quick test_trace_miss_rate_monotone_in_size;
      ] );
    ("trace.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
