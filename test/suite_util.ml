(* Tests for mppm_util: PRNG, special functions, statistics, rank
   statistics and combinatorics. *)

module Rng = Mppm_util.Rng
module Special = Mppm_util.Special
module Stats = Mppm_util.Stats
module Rank = Mppm_util.Rank
module Combinatorics = Mppm_util.Combinatorics

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ---- Rng ----------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_copy () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.int a 100);
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_split () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "split stream is distinct" true (!same < 5)

let test_rng_int_in () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_rng_int_invalid () =
  let rng = Rng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli rng ~p:1.0);
    Alcotest.(check bool) "p=0 always false" false (Rng.bernoulli rng ~p:0.0)
  done

let test_rng_geometric_mean () =
  let rng = Rng.create ~seed:11 in
  let p = 0.3 in
  let n = 50_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric rng ~p
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* Geometric (failures before success): mean (1-p)/p = 2.333... *)
  check_close 0.1 "geometric mean" ((1.0 -. p) /. p) mean

let test_rng_geometric_p1 () =
  let rng = Rng.create ~seed:11 in
  Alcotest.(check int) "p=1 is 0" 0 (Rng.geometric rng ~p:1.0)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:13 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  check_close 0.05 "mean" 3.0 (Stats.mean samples);
  check_close 0.05 "stddev" 2.0 (Stats.stddev samples)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:17 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.exponential rng ~mean:4.0) in
  check_close 0.1 "mean" 4.0 (Stats.mean samples)

let test_rng_pick_weighted_zero () =
  let rng = Rng.create ~seed:19 in
  for _ = 1 to 1000 do
    let i = Rng.pick_weighted rng ~weights:[| 0.0; 1.0; 0.0 |] in
    Alcotest.(check int) "only positive weight picked" 1 i
  done

let test_rng_pick_weighted_proportions () =
  let rng = Rng.create ~seed:23 in
  let counts = [| 0; 0 |] in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Rng.pick_weighted rng ~weights:[| 3.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close 0.02 "3:1 weighting" 0.75 (float_of_int counts.(0) /. float_of_int n)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:29 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create ~seed:31 in
  let s = Rng.sample_without_replacement rng ~n:20 ~k:10 in
  Alcotest.(check int) "length" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct =
    Array.for_all2 ( <> ) (Array.sub sorted 0 9) (Array.sub sorted 1 9)
  in
  Alcotest.(check bool) "distinct" true distinct;
  Array.iter
    (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 20))
    s

(* ---- Special ------------------------------------------------------- *)

let test_log_gamma_known () =
  check_close 1e-10 "gamma(1)" 0.0 (Special.log_gamma 1.0);
  check_close 1e-10 "gamma(2)" 0.0 (Special.log_gamma 2.0);
  check_close 1e-9 "gamma(5) = 4! = 24" (log 24.0) (Special.log_gamma 5.0);
  check_close 1e-9 "gamma(0.5) = sqrt(pi)"
    (0.5 *. log Float.pi)
    (Special.log_gamma 0.5)

let test_log_gamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x). *)
  List.iter
    (fun x ->
      check_close 1e-8 "recurrence"
        (Special.log_gamma x +. log x)
        (Special.log_gamma (x +. 1.0)))
    [ 0.3; 1.7; 4.2; 10.0 ]

let test_incomplete_beta_bounds () =
  check_float "I_0 = 0" 0.0 (Special.incomplete_beta ~a:2.0 ~b:3.0 ~x:0.0);
  check_float "I_1 = 1" 1.0 (Special.incomplete_beta ~a:2.0 ~b:3.0 ~x:1.0);
  (* I_x(1,1) = x (uniform distribution). *)
  check_close 1e-10 "I_x(1,1) = x" 0.42
    (Special.incomplete_beta ~a:1.0 ~b:1.0 ~x:0.42)

let test_incomplete_beta_symmetry () =
  List.iter
    (fun (a, b, x) ->
      check_close 1e-9 "symmetry"
        (Special.incomplete_beta ~a ~b ~x)
        (1.0 -. Special.incomplete_beta ~a:b ~b:a ~x:(1.0 -. x)))
    [ (2.0, 3.0, 0.3); (0.5, 0.5, 0.7); (5.0, 1.5, 0.9) ]

let test_student_t_cdf_center () =
  List.iter
    (fun df -> check_close 1e-9 "cdf(0) = 0.5" 0.5 (Special.student_t_cdf ~df 0.0))
    [ 1.0; 5.0; 30.0 ]

let test_student_t_cdf_cauchy () =
  (* df=1 is the Cauchy distribution: CDF(1) = 3/4. *)
  check_close 1e-6 "cauchy cdf(1)" 0.75 (Special.student_t_cdf ~df:1.0 1.0)

let test_student_t_quantile_known () =
  (* Classic t-table values for 95% two-sided. *)
  check_close 5e-3 "df=9, p=0.975" 2.262
    (Special.student_t_quantile ~df:9.0 0.975);
  check_close 5e-3 "df=4, p=0.975" 2.776
    (Special.student_t_quantile ~df:4.0 0.975);
  check_close 1e-2 "df=1000 ~ normal" 1.962
    (Special.student_t_quantile ~df:1000.0 0.975)

let test_student_t_roundtrip () =
  List.iter
    (fun p ->
      let t = Special.student_t_quantile ~df:7.0 p in
      check_close 1e-6 "cdf(quantile(p)) = p" p (Special.student_t_cdf ~df:7.0 t))
    [ 0.05; 0.3; 0.5; 0.9; 0.999 ]

let test_normal_cdf () =
  check_close 1e-6 "phi(0)" 0.5 (Special.normal_cdf 0.0);
  check_close 1e-4 "phi(1.96)" 0.975 (Special.normal_cdf 1.96);
  check_close 1e-4 "phi(-1.96)" 0.025 (Special.normal_cdf (-1.96))

(* ---- Stats --------------------------------------------------------- *)

let test_stats_mean_var () =
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean a);
  check_close 1e-9 "sample variance" (32.0 /. 7.0) (Stats.variance a)

let test_stats_geometric_harmonic () =
  check_close 1e-9 "geometric" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |]);
  check_close 1e-9 "harmonic" (3.0 /. (1.0 +. 0.5 +. 0.25))
    (Stats.harmonic_mean [| 1.0; 2.0; 4.0 |])

let test_stats_percentiles () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.median a);
  check_float "p0" 1.0 (Stats.percentile a ~p:0.0);
  check_float "p100" 5.0 (Stats.percentile a ~p:100.0);
  check_float "p25" 2.0 (Stats.percentile a ~p:25.0);
  check_float "interpolated" 3.5 (Stats.percentile a ~p:62.5)

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_stats_confidence_interval () =
  (* n=9 samples with mean 10, sample std 3: half-width = t(8, .975)*3/3. *)
  let a = [| 7.0; 7.0; 7.0; 10.0; 10.0; 10.0; 13.0; 13.0; 13.0 |] in
  let iv = Stats.confidence_interval a in
  check_float "mean" 10.0 iv.Stats.mean;
  let expected = Special.student_t_quantile ~df:8.0 0.975 *. Stats.stddev a /. 3.0 in
  check_close 1e-9 "half width" expected iv.Stats.half_width;
  Alcotest.(check int) "samples" 9 iv.Stats.samples;
  check_close 1e-9 "bounds" iv.Stats.mean ((iv.Stats.lower +. iv.Stats.upper) /. 2.0)

let test_stats_ci_level () =
  let a = Array.init 30 (fun i -> float_of_int i) in
  let narrow = Stats.confidence_interval ~level:0.5 a in
  let wide = Stats.confidence_interval ~level:0.99 a in
  Alcotest.(check bool) "higher level is wider" true
    (wide.Stats.half_width > narrow.Stats.half_width)

let test_stats_relative_error () =
  check_close 1e-9 "mean rel err" 0.1
    (Stats.mean_relative_error ~predicted:[| 1.1; 1.8 |] ~measured:[| 1.0; 2.0 |]);
  check_close 1e-9 "max rel err" 0.1
    (Stats.max_relative_error ~predicted:[| 1.1; 1.9 |] ~measured:[| 1.0; 2.0 |])

let test_stats_running_mean () =
  let series = Stats.running_mean_series [| 1.0; 3.0; 5.0 |] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "prefix means"
    [ (1, 1.0); (2, 2.0); (3, 3.0) ]
    series

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "variance needs 2"
    (Invalid_argument "Stats.variance: need >= 2 samples") (fun () ->
      ignore (Stats.variance [| 1.0 |]))

(* ---- Rank ---------------------------------------------------------- *)

let test_ranks_basic () =
  Alcotest.(check (array (float 1e-9)))
    "simple ranks" [| 3.0; 1.0; 2.0 |]
    (Rank.ranks [| 30.0; 10.0; 20.0 |])

let test_ranks_ties () =
  (* Two values tied for ranks 2 and 3 get 2.5 each. *)
  Alcotest.(check (array (float 1e-9)))
    "mid-ranks" [| 1.0; 2.5; 2.5; 4.0 |]
    (Rank.ranks [| 1.0; 5.0; 5.0; 9.0 |])

let test_spearman_perfect () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close 1e-9 "identity" 1.0 (Rank.spearman a a);
  check_close 1e-9 "monotone transform" 1.0
    (Rank.spearman a (Array.map (fun x -> exp x) a));
  check_close 1e-9 "reversal" (-1.0)
    (Rank.spearman a (Array.map (fun x -> -.x) a))

let test_spearman_known () =
  (* Hand-computed: one transposition among 4 distinct values. *)
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = [| 1.0; 3.0; 2.0; 4.0 |] in
  (* rho = 1 - 6*sum(d^2)/(n(n^2-1)) = 1 - 6*2/60 = 0.8 *)
  check_close 1e-9 "transposition" 0.8 (Rank.spearman a b)

let test_pearson_linear () =
  let a = [| 1.0; 2.0; 3.0 |] in
  check_close 1e-9 "linear" 1.0 (Rank.pearson a (Array.map (fun x -> (2.0 *. x) +. 1.0) a))

let test_rank_order () =
  Alcotest.(check (array int)) "descending order" [| 2; 0; 1 |]
    (Rank.rank_order [| 5.0; 1.0; 9.0 |])

let test_argmax_argmin () =
  Alcotest.(check int) "argmax" 2 (Rank.argmax [| 1.0; 3.0; 5.0; 2.0 |]);
  Alcotest.(check int) "argmin" 0 (Rank.argmin [| 1.0; 3.0; 5.0; 2.0 |]);
  Alcotest.(check int) "first on tie" 1 (Rank.argmax [| 1.0; 5.0; 5.0 |])

(* ---- Combinatorics -------------------------------------------------- *)

let test_binomial_known () =
  check_float "C(5,2)" 10.0 (Combinatorics.binomial 5 2);
  check_float "C(10,0)" 1.0 (Combinatorics.binomial 10 0);
  check_float "C(10,10)" 1.0 (Combinatorics.binomial 10 10);
  check_float "C(3,5)=0" 0.0 (Combinatorics.binomial 3 5);
  check_float "C(52,5)" 2598960.0 (Combinatorics.binomial 52 5)

let test_population_counts_match_paper () =
  (* The paper's introduction: 435 / 35,960 / >30.2M mixes for 29
     benchmarks on 2/4/8 cores. *)
  check_float "2 cores" 435.0 (Combinatorics.multisets_count ~n:29 ~m:2);
  check_float "4 cores" 35960.0 (Combinatorics.multisets_count ~n:29 ~m:4);
  check_float "8 cores" 30260340.0 (Combinatorics.multisets_count ~n:29 ~m:8)

let test_enumerate_multisets () =
  let all = Combinatorics.enumerate_multisets ~n:4 ~m:2 in
  Alcotest.(check int) "count" 10 (List.length all);
  List.iter
    (fun m ->
      Alcotest.(check bool) "sorted" true (m.(0) <= m.(1));
      Alcotest.(check bool) "in range" true (m.(0) >= 0 && m.(1) < 4))
    all;
  (* Lexicographic order, all distinct. *)
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> compare a b < 0 && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "lexicographic" true (strictly_increasing all)

let test_rank_unrank_roundtrip () =
  let n = 6 and m = 3 in
  let total = int_of_float (Combinatorics.multisets_count ~n ~m) in
  for r = 0 to total - 1 do
    let mix = Combinatorics.unrank_multiset ~n ~m (float_of_int r) in
    check_float "roundtrip" (float_of_int r) (Combinatorics.rank_multiset ~n mix)
  done

let test_random_multiset_uniform () =
  let rng = Rng.create ~seed:37 in
  let n = 3 and m = 2 in
  (* 6 multisets; each should appear ~1/6 of the time. *)
  let counts = Hashtbl.create 6 in
  let draws = 30_000 in
  for _ = 1 to draws do
    let mix = Combinatorics.random_multiset rng ~n ~m in
    let key = (mix.(0), mix.(1)) in
    Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
  done;
  Alcotest.(check int) "all 6 appear" 6 (Hashtbl.length counts);
  (* lint: allow S3 per-entry checks, no accumulation across entries *)
  Hashtbl.iter
    (fun _ c ->
      check_close 0.02 "uniform" (1.0 /. 6.0) (float_of_int c /. float_of_int draws))
    counts

let test_selection_with_repetition_sorted () =
  let rng = Rng.create ~seed:41 in
  for _ = 1 to 100 do
    let mix = Combinatorics.random_selection_with_repetition rng ~n:10 ~m:4 in
    for i = 1 to 3 do
      Alcotest.(check bool) "sorted" true (mix.(i - 1) <= mix.(i))
    done
  done

(* ---- Ascii_plot ------------------------------------------------------ *)

module Ascii_plot = Mppm_util.Ascii_plot

let count_char c s =
  String.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 s

let test_plot_scatter_shape () =
  let points = [| (1.0, 1.0); (2.0, 2.0); (3.0, 1.5) |] in
  let out = Ascii_plot.scatter ~width:40 ~height:10 points in
  let lines = String.split_on_char '\n' out in
  (* 10 grid rows + axis + x labels. *)
  Alcotest.(check bool) "enough lines" true (List.length lines >= 12);
  Alcotest.(check bool) "all points drawn" true (count_char '*' out >= 3)

let test_plot_scatter_diagonal () =
  let out =
    Ascii_plot.scatter ~diagonal:true ~width:30 ~height:10 [| (1.0, 2.0) |]
  in
  Alcotest.(check bool) "bisector drawn" true (count_char '.' out > 5);
  Alcotest.(check bool) "point drawn" true (count_char '*' out >= 1)

let test_plot_scatter_empty () =
  Alcotest.(check string) "empty note" "(no points)\n" (Ascii_plot.scatter [||])

let test_plot_scatter_degenerate () =
  (* A single repeated point must not crash on a zero-size range. *)
  let out = Ascii_plot.scatter [| (5.0, 5.0); (5.0, 5.0) |] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_plot_series () =
  let out =
    Ascii_plot.series ~width:30 ~height:8
      [ ("a", [| 1.0; 2.0; 3.0 |]); ("b", [| 3.0; 2.0; 1.0 |]) ]
  in
  Alcotest.(check bool) "first glyph" true (count_char '*' out >= 3);
  Alcotest.(check bool) "second glyph" true (count_char '+' out >= 3);
  Alcotest.(check bool) "legend present" true
    (count_char 'a' out >= 1 && count_char 'b' out >= 1)

let test_plot_series_empty () =
  Alcotest.(check string) "empty note" "(no series)\n"
    (Ascii_plot.series [ ("x", [||]) ])

(* ---- qcheck properties ---------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"rng int is within bound" ~count:500
      (pair small_int (int_range 1 10_000))
      (fun (seed, bound) ->
        let rng = Rng.create ~seed in
        let x = Rng.int rng bound in
        x >= 0 && x < bound);
    Test.make ~name:"incomplete beta is monotone in x" ~count:200
      (triple (float_range 0.2 5.0) (float_range 0.2 5.0)
         (pair (float_range 0.01 0.98) (float_range 0.001 0.01)))
      (fun (a, b, (x, dx)) ->
        Special.incomplete_beta ~a ~b ~x
        <= Special.incomplete_beta ~a ~b ~x:(x +. dx) +. 1e-12);
    Test.make ~name:"t quantile inverts cdf" ~count:200
      (pair (float_range 1.0 50.0) (float_range 0.01 0.99))
      (fun (df, p) ->
        abs_float (Special.student_t_cdf ~df (Special.student_t_quantile ~df p) -. p)
        < 1e-5);
    Test.make ~name:"spearman in [-1, 1]" ~count:200
      (array_of_size (Gen.int_range 2 20) (float_range (-100.0) 100.0))
      (fun a ->
        let rng = Rng.create ~seed:(Array.length a) in
        let b = Array.map (fun x -> x +. Rng.float rng 10.0) a in
        let rho = Rank.spearman a b in
        Float.is_nan rho || (rho >= -1.0 -. 1e-9 && rho <= 1.0 +. 1e-9));
    Test.make ~name:"multiset rank/unrank roundtrip" ~count:300
      (pair (int_range 1 8) (int_range 1 5))
      (fun (n, m) ->
        let rng = Rng.create ~seed:(n + (97 * m)) in
        let mix = Combinatorics.random_multiset rng ~n ~m in
        let r = Combinatorics.rank_multiset ~n mix in
        Combinatorics.unrank_multiset ~n ~m r = mix);
    Test.make ~name:"sample without replacement is distinct" ~count:200
      (pair small_int (int_range 1 30))
      (fun (seed, n) ->
        let rng = Rng.create ~seed in
        let k = 1 + (seed mod n) in
        let s = Rng.sample_without_replacement rng ~n ~k in
        let sorted = Array.copy s in
        Array.sort compare sorted;
        let ok = ref true in
        for i = 1 to k - 1 do
          if sorted.(i) = sorted.(i - 1) then ok := false
        done;
        !ok);
  ]

let tests =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "split" `Quick test_rng_split;
        Alcotest.test_case "int_in range" `Quick test_rng_int_in;
        Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
        Alcotest.test_case "geometric mean" `Slow test_rng_geometric_mean;
        Alcotest.test_case "geometric p=1" `Quick test_rng_geometric_p1;
        Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
        Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
        Alcotest.test_case "pick_weighted zero weight" `Quick test_rng_pick_weighted_zero;
        Alcotest.test_case "pick_weighted proportions" `Slow test_rng_pick_weighted_proportions;
        Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "sample without replacement" `Quick test_rng_sample_without_replacement;
      ] );
    ( "util.special",
      [
        Alcotest.test_case "log_gamma known values" `Quick test_log_gamma_known;
        Alcotest.test_case "log_gamma recurrence" `Quick test_log_gamma_recurrence;
        Alcotest.test_case "incomplete beta bounds" `Quick test_incomplete_beta_bounds;
        Alcotest.test_case "incomplete beta symmetry" `Quick test_incomplete_beta_symmetry;
        Alcotest.test_case "t cdf center" `Quick test_student_t_cdf_center;
        Alcotest.test_case "t cdf cauchy" `Quick test_student_t_cdf_cauchy;
        Alcotest.test_case "t quantile table" `Quick test_student_t_quantile_known;
        Alcotest.test_case "t quantile roundtrip" `Quick test_student_t_roundtrip;
        Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean and variance" `Quick test_stats_mean_var;
        Alcotest.test_case "geometric/harmonic" `Quick test_stats_geometric_harmonic;
        Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
        Alcotest.test_case "min max" `Quick test_stats_min_max;
        Alcotest.test_case "confidence interval" `Quick test_stats_confidence_interval;
        Alcotest.test_case "CI level ordering" `Quick test_stats_ci_level;
        Alcotest.test_case "relative errors" `Quick test_stats_relative_error;
        Alcotest.test_case "running mean" `Quick test_stats_running_mean;
        Alcotest.test_case "error cases" `Quick test_stats_errors;
      ] );
    ( "util.rank",
      [
        Alcotest.test_case "ranks" `Quick test_ranks_basic;
        Alcotest.test_case "tied ranks" `Quick test_ranks_ties;
        Alcotest.test_case "spearman perfect" `Quick test_spearman_perfect;
        Alcotest.test_case "spearman known" `Quick test_spearman_known;
        Alcotest.test_case "pearson linear" `Quick test_pearson_linear;
        Alcotest.test_case "rank order" `Quick test_rank_order;
        Alcotest.test_case "argmax/argmin" `Quick test_argmax_argmin;
      ] );
    ( "util.combinatorics",
      [
        Alcotest.test_case "binomial known" `Quick test_binomial_known;
        Alcotest.test_case "paper population counts" `Quick test_population_counts_match_paper;
        Alcotest.test_case "enumerate multisets" `Quick test_enumerate_multisets;
        Alcotest.test_case "rank/unrank roundtrip" `Quick test_rank_unrank_roundtrip;
        Alcotest.test_case "random multiset uniform" `Slow test_random_multiset_uniform;
        Alcotest.test_case "selection sorted" `Quick test_selection_with_repetition_sorted;
      ] );
    ( "util.ascii_plot",
      [
        Alcotest.test_case "scatter shape" `Quick test_plot_scatter_shape;
        Alcotest.test_case "scatter diagonal" `Quick test_plot_scatter_diagonal;
        Alcotest.test_case "scatter empty" `Quick test_plot_scatter_empty;
        Alcotest.test_case "scatter degenerate" `Quick test_plot_scatter_degenerate;
        Alcotest.test_case "series" `Quick test_plot_series;
        Alcotest.test_case "series empty" `Quick test_plot_series_empty;
      ] );
    ("util.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
