(* Tests for Mppm_pool: the domain pool's maps are bit-for-bit equal to
   their sequential counterparts for any job count, errors and progress
   callbacks are deterministic, the single-flight table computes each key
   exactly once, and a traced canonical compare run through the pool
   matches the sequential run exactly. *)

module Pool = Mppm_pool.Pool
module Single_flight = Mppm_pool.Single_flight
module Prof = Mppm_obs.Prof
module Rng = Mppm_util.Rng
module Registry = Mppm_obs.Registry
module Sink = Mppm_obs.Sink
module Trace = Mppm_obs.Trace
module Event = Mppm_obs.Event
module Mix = Mppm_workload.Mix
open Mppm_experiments

let job_counts = [ 1; 2; 4; 8 ]

(* A seed-driven task: every input is its own RNG seed, as pool tasks are
   throughout the tree. *)
let seeded_task seed =
  let rng = Rng.create ~seed in
  let acc = ref 0 in
  for _ = 1 to 32 do
    acc := (!acc * 31) + Rng.int rng 1_000_003
  done;
  !acc

(* ---- map matches sequential -------------------------------------------- *)

let test_map_matches_sequential () =
  let prop (seeds, jobs_idx, chunk) =
    let xs = Array.of_list seeds in
    let jobs = List.nth job_counts (jobs_idx mod List.length job_counts) in
    let chunk = 1 + (chunk mod 5) in
    let expected = Array.map seeded_task xs in
    let actual =
      Pool.with_pool ~jobs (fun pool -> Pool.map ~chunk pool seeded_task xs)
    in
    expected = actual
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:30
       ~name:"Pool.map f xs = Array.map f xs for jobs in {1,2,4,8}"
       QCheck.(
         triple (list_of_size (Gen.int_range 0 40) small_int) small_int
           small_int)
       prop)

let test_map_reduce_matches_fold () =
  let xs = Array.init 57 (fun i -> i * 13) in
  let seq =
    Array.fold_left (fun acc x -> acc + seeded_task x) 0 xs
  in
  List.iter
    (fun jobs ->
      let par =
        Pool.with_pool ~jobs (fun pool ->
            Pool.map_reduce pool ~map:seeded_task
              ~reduce:(fun acc y -> acc + y)
              ~init:0 xs)
      in
      Alcotest.(check int)
        (Printf.sprintf "map_reduce, %d jobs" jobs)
        seq par)
    job_counts

let test_empty_and_reuse () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "pool job count" 4 (Pool.jobs pool);
      Alcotest.(check (array int)) "empty input" [||]
        (Pool.map pool (fun x -> x) [||]);
      (* Several batches on one pool. *)
      for n = 1 to 5 do
        let xs = Array.init (n * 7) Fun.id in
        Alcotest.(check (array int))
          (Printf.sprintf "batch %d" n)
          (Array.map succ xs)
          (Pool.map pool succ xs)
      done)

let test_invalid_jobs () =
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_shutdown_rejects_map () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "map on a stopped pool"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool succ [| 1 |]))

(* ---- error determinism -------------------------------------------------- *)

exception Boom of int

let test_lowest_index_error () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let raised =
            try
              ignore
                (Pool.map pool
                   (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
                   (Array.init 20 Fun.id));
              None
            with Boom i -> Some i
          in
          Alcotest.(check (option int))
            (Printf.sprintf "lowest failing index, %d jobs" jobs)
            (Some 2) raised;
          (* The pool survives a failed batch. *)
          Alcotest.(check (array int)) "usable after error" [| 2; 3 |]
            (Pool.map pool succ [| 1; 2 |])))
    job_counts

(* ---- progress callback --------------------------------------------------- *)

let test_on_done_serialized () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let seen = ref [] in
          let total = 23 in
          ignore
            (Pool.map
               ~on_done:(fun ~done_ ~total:t ->
                 seen := (done_, t) :: !seen)
               pool seeded_task
               (Array.init total Fun.id));
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "done_ counts 1..total, %d jobs" jobs)
            (List.init total (fun i -> (i + 1, total)))
            (List.rev !seen)))
    job_counts

(* ---- registry counters ---------------------------------------------------- *)

let test_pool_counters () =
  Registry.reset ();
  Pool.with_pool ~jobs:2 (fun pool ->
      ignore (Pool.map pool succ (Array.init 11 Fun.id));
      ignore (Pool.map pool succ (Array.init 5 Fun.id)));
  Alcotest.(check (float 0.0)) "pool.batches" 2.0 (Registry.get "pool.batches");
  Alcotest.(check (float 0.0)) "pool.tasks" 16.0 (Registry.get "pool.tasks");
  Alcotest.(check (float 0.0)) "pool.queue_depth_hwm" 11.0
    (Registry.get "pool.queue_depth_hwm")

(* ---- profiler attachment -------------------------------------------------- *)

(* A profiler's clock is read from worker domains, so the test clock is
   an atomic tick counter: thread-safe, deterministic count, strictly
   increasing across all readers. *)
let atomic_clock () =
  let ticks = Atomic.make 0 in
  fun () -> float_of_int (Atomic.fetch_and_add ticks 1)

let test_prof_attached_identical () =
  let xs = Array.init 40 Fun.id in
  let plain =
    Pool.with_pool ~jobs:1 (fun pool -> Pool.map pool seeded_task xs)
  in
  List.iter
    (fun jobs ->
      let prof = Prof.make ~clock:(atomic_clock ()) in
      let timed =
        Pool.with_pool ~jobs ~prof (fun pool -> Pool.map pool seeded_task xs)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "results bit-identical with prof, %d jobs" jobs)
        plain timed;
      let tasks = Prof.tasks prof in
      Alcotest.(check int)
        (Printf.sprintf "every task recorded, %d jobs" jobs)
        (Array.length xs) (List.length tasks);
      List.iter
        (fun tk ->
          Alcotest.(check bool)
            (Printf.sprintf "worker index in [0, %d), %d jobs" jobs jobs)
            true
            (tk.Prof.tk_domain >= 0 && tk.Prof.tk_domain < jobs);
          Alcotest.(check bool) "wait and duration non-negative" true
            (tk.Prof.tk_wait >= 0.0 && tk.Prof.tk_dur >= 0.0))
        tasks;
      match Prof.pool_stats prof with
      | None -> Alcotest.fail "pool_stats must be Some after a profiled run"
      | Some st ->
          Alcotest.(check int)
            (Printf.sprintf "pool size recorded, %d jobs" jobs)
            jobs st.Prof.p_jobs;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "task total, %d jobs" jobs)
            (float_of_int (Array.length xs))
            st.Prof.p_tasks;
          let domain_total =
            List.fold_left
              (fun acc d -> acc +. d.Prof.d_tasks)
              0.0 st.Prof.p_domains
          in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "per-domain counts sum to total, %d jobs" jobs)
            (float_of_int (Array.length xs))
            domain_total)
    job_counts

let test_prof_null_pool_records_nothing () =
  let xs = Array.init 9 Fun.id in
  let result = Pool.with_pool ~jobs:2 (fun pool -> Pool.map pool succ xs) in
  Alcotest.(check (array int)) "plain pool still maps" (Array.map succ xs)
    result;
  Alcotest.(check int) "null profiler records no tasks" 0
    (List.length (Prof.tasks Prof.null));
  Alcotest.(check bool) "null profiler has no pool stats" true
    (Option.is_none (Prof.pool_stats Prof.null))

(* ---- single flight -------------------------------------------------------- *)

let test_single_flight_once () =
  List.iter
    (fun jobs ->
      Registry.reset ();
      let table = Single_flight.create () in
      let computed = ref 0 in
      let count_mutex = Mutex.create () in
      let compute key =
        Mutex.lock count_mutex;
        incr computed;
        Mutex.unlock count_mutex;
        key * 2
      in
      let requests = 24 in
      let results =
        Pool.with_pool ~jobs (fun pool ->
            Pool.map pool
              (fun _ -> Single_flight.get table 21 compute)
              (Array.init requests Fun.id))
      in
      Alcotest.(check (array int))
        (Printf.sprintf "every requester sees the value, %d jobs" jobs)
        (Array.make requests 42) results;
      Alcotest.(check int)
        (Printf.sprintf "exactly one computation, %d jobs" jobs)
        1 !computed;
      Alcotest.(check bool) "mem after compute" true
        (Single_flight.mem table 21);
      Alcotest.(check bool) "mem on absent key" false
        (Single_flight.mem table 22);
      Alcotest.(check (float 0.0)) "computes counter" 1.0
        (Registry.get "pool.single_flight.computes");
      Alcotest.(check (float 0.0)) "hits counter"
        (float_of_int (requests - 1))
        (Registry.get "pool.single_flight.hits"))
    job_counts

let test_single_flight_failure_retries () =
  let table = Single_flight.create () in
  let attempts = ref 0 in
  let flaky key =
    incr attempts;
    if !attempts = 1 then failwith "first attempt fails" else key + 1
  in
  (try ignore (Single_flight.get table 7 flaky)
   with Failure _ -> ());
  Alcotest.(check bool) "failed key is released" false
    (Single_flight.mem table 7);
  Alcotest.(check int) "later request retries" 8
    (Single_flight.get table 7 flaky)

let test_single_flight_metric () =
  Registry.reset ();
  let table = Single_flight.create ~metric:"profile_cache" () in
  ignore (Single_flight.get table 1 Fun.id);
  ignore (Single_flight.get table 1 Fun.id);
  ignore (Single_flight.get table 1 Fun.id);
  Alcotest.(check (float 0.0)) "metric-scoped hits" 2.0
    (Registry.get "profile_cache.memo_hits")

(* ---- parallel model runs are bit-identical, tracing attached ------------- *)

let tiny_scale = Scale.of_trace 100_000

let mixes =
  [|
    Mix.of_names [| "gamess"; "gamess"; "hmmer"; "soplex" |];
    Mix.of_names [| "hmmer"; "povray"; "namd"; "gromacs" |];
    Mix.of_names [| "mcf"; "lbm"; "milc"; "GemsFDTD" |];
  |]

(* Predict + simulate each mix with a per-mix collecting sink, the way
   bin/mppm batches mixes; returns per-mix (predicted, measured STP,
   trace lines). *)
let compare_all map_fn =
  let ctx = Context.create ~seed:7 tiny_scale in
  map_fn
    (fun mix ->
      let sink, events = Sink.memory () in
      let obs = Trace.of_sink sink in
      let predicted = Context.predict ~obs ctx ~llc_config:1 mix in
      Trace.close obs;
      let measured = Context.detailed ctx ~llc_config:1 mix in
      ( predicted,
        measured.Context.m_stp,
        List.map Event.to_jsonl (events ()) ))
    mixes

let test_canonical_compare_parallel_identical () =
  let seq = compare_all Array.map in
  List.iter
    (fun jobs ->
      let par =
        Pool.with_pool ~jobs (fun pool -> compare_all (Pool.map pool))
      in
      Array.iteri
        (fun i (p_seq, m_seq, t_seq) ->
          let p_par, m_par, t_par = par.(i) in
          Alcotest.(check bool)
            (Printf.sprintf "mix %d predicted bit-identical, %d jobs" i jobs)
            true (p_seq = p_par);
          Alcotest.(check (float 0.0))
            (Printf.sprintf "mix %d measured STP, %d jobs" i jobs)
            m_seq m_par;
          Alcotest.(check (list string))
            (Printf.sprintf "mix %d trace bit-identical, %d jobs" i jobs)
            t_seq t_par)
        seq)
    [ 2; 4 ]

let tests =
  [
    ( "pool",
      [
        Alcotest.test_case "map matches sequential (qcheck)" `Quick
          test_map_matches_sequential;
        Alcotest.test_case "map_reduce matches sequential fold" `Quick
          test_map_reduce_matches_fold;
        Alcotest.test_case "empty input and pool reuse" `Quick
          test_empty_and_reuse;
        Alcotest.test_case "invalid job count rejected" `Quick
          test_invalid_jobs;
        Alcotest.test_case "map after shutdown rejected" `Quick
          test_shutdown_rejects_map;
        Alcotest.test_case "lowest-index error wins" `Quick
          test_lowest_index_error;
        Alcotest.test_case "on_done is serialized and monotonic" `Quick
          test_on_done_serialized;
        Alcotest.test_case "registry counters" `Quick test_pool_counters;
        Alcotest.test_case "profiled map bit-identical, tasks recorded" `Quick
          test_prof_attached_identical;
        Alcotest.test_case "null profiler records nothing" `Quick
          test_prof_null_pool_records_nothing;
      ] );
    ( "single-flight",
      [
        Alcotest.test_case "concurrent requests compute once" `Quick
          test_single_flight_once;
        Alcotest.test_case "failed compute releases the key" `Quick
          test_single_flight_failure_retries;
        Alcotest.test_case "metric-scoped hit counter" `Quick
          test_single_flight_metric;
      ] );
    ( "pool-model",
      [
        Alcotest.test_case "traced compare bit-identical across jobs" `Slow
          test_canonical_compare_parallel_identical;
      ] );
  ]
