(* Tests for mppm_cache: geometry, the cache model (validated against a
   naive reference LRU), stack-distance counters, the SDC profiler and the
   hierarchy. *)

module Geometry = Mppm_cache.Geometry
module Replacement = Mppm_cache.Replacement
module Cache = Mppm_cache.Cache
module Sdc = Mppm_cache.Sdc
module Sdc_profiler = Mppm_cache.Sdc_profiler
module Hierarchy = Mppm_cache.Hierarchy
module Configs = Mppm_cache.Configs
module Rng = Mppm_util.Rng

let check_float = Alcotest.(check (float 1e-9))

let small_geometry =
  (* 4 sets x 4 ways x 64B lines = 1KB: tiny enough to reason by hand. *)
  Geometry.make ~size_bytes:1024 ~line_bytes:64 ~associativity:4

(* ---- Geometry ------------------------------------------------------- *)

let test_geometry_derived () =
  let g = Geometry.make ~size_bytes:(Geometry.kib 512) ~line_bytes:64 ~associativity:8 in
  Alcotest.(check int) "sets" 1024 g.Geometry.num_sets;
  Alcotest.(check int) "lines" 8192 (Geometry.lines g);
  Alcotest.(check int) "set shift" 6 g.Geometry.set_shift

let test_geometry_indexing () =
  let g = small_geometry in
  Alcotest.(check int) "set of 0" 0 (Geometry.set_index g 0);
  Alcotest.(check int) "set of 64" 1 (Geometry.set_index g 64);
  Alcotest.(check int) "sets wrap" 0 (Geometry.set_index g (4 * 64));
  Alcotest.(check int) "offset ignored" (Geometry.set_index g 64)
    (Geometry.set_index g (64 + 63));
  Alcotest.(check int) "line address clears offset" 64 (Geometry.line_address g 127);
  Alcotest.(check bool) "tags differ across conflicting lines" true
    (Geometry.tag g 0 <> Geometry.tag g (4 * 64))

let test_geometry_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non-pow2 size" true
    (raises (fun () -> ignore (Geometry.make ~size_bytes:1000 ~line_bytes:64 ~associativity:4)));
  Alcotest.(check bool) "non-pow2 line" true
    (raises (fun () -> ignore (Geometry.make ~size_bytes:1024 ~line_bytes:60 ~associativity:4)));
  Alcotest.(check bool) "zero assoc" true
    (raises (fun () -> ignore (Geometry.make ~size_bytes:1024 ~line_bytes:64 ~associativity:0)))

let test_geometry_describe () =
  Alcotest.(check string) "KB" "512KB" (Geometry.describe_size (Geometry.kib 512));
  Alcotest.(check string) "MB" "2MB" (Geometry.describe_size (Geometry.mib 2));
  Alcotest.(check string) "B" "100B" (Geometry.describe_size 100)

(* ---- Replacement ----------------------------------------------------- *)

let test_replacement_strings () =
  Alcotest.(check string) "lru" "lru" (Replacement.to_string Replacement.Lru);
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (Replacement.of_string (Replacement.to_string p) = p))
    [ Replacement.Lru; Replacement.Fifo; Replacement.Random 7 ]

(* ---- Cache: reference-model validation ------------------------------- *)

(* A deliberately naive LRU cache: per set, a list of tags in recency
   order.  The production cache must agree access for access. *)
module Reference = struct
  type t = { geometry : Geometry.t; sets : int list array }

  let create geometry = { geometry; sets = Array.make geometry.Geometry.num_sets [] }

  let access t addr =
    let si = Geometry.set_index t.geometry addr in
    let tag = Geometry.tag t.geometry addr in
    let set = t.sets.(si) in
    let rec position i = function
      | [] -> None
      | x :: rest -> if x = tag then Some i else position (i + 1) rest
    in
    match position 0 set with
    | Some pos ->
        t.sets.(si) <- tag :: List.filter (fun x -> x <> tag) set;
        Cache.Hit (pos + 1)
    | None ->
        let truncated =
          if List.length set >= t.geometry.Geometry.associativity then
            List.filteri (fun i _ -> i < t.geometry.Geometry.associativity - 1) set
          else set
        in
        t.sets.(si) <- tag :: truncated;
        Cache.Miss
end

let random_addresses ~seed ~count ~span =
  let rng = Rng.create ~seed in
  Array.init count (fun _ -> Rng.int rng span * 16)

let test_cache_matches_reference () =
  let g = small_geometry in
  let cache = Cache.create g in
  let reference = Reference.create g in
  let addrs = random_addresses ~seed:5 ~count:20_000 ~span:256 in
  Array.iter
    (fun addr ->
      let got = Cache.access cache addr in
      let want = Reference.access reference addr in
      if got <> want then
        Alcotest.failf "divergence at addr %d: got %s want %s" addr
          (match got with Cache.Hit d -> Printf.sprintf "hit@%d" d | Cache.Miss -> "miss")
          (match want with Cache.Hit d -> Printf.sprintf "hit@%d" d | Cache.Miss -> "miss"))
    addrs

let test_cache_lru_eviction_order () =
  let g = small_geometry in
  let cache = Cache.create g in
  (* Five conflicting lines in a 4-way set: 0, 256, 512, ... map to set 0. *)
  let line i = i * 4 * 64 in
  for i = 0 to 3 do
    Alcotest.(check bool) "cold miss" true (Cache.access cache (line i) = Cache.Miss)
  done;
  (* Touch line 0 to refresh it, then insert a fifth line: the LRU victim
     must be line 1. *)
  Alcotest.(check bool) "refresh hit" true (Cache.access cache (line 0) <> Cache.Miss);
  Alcotest.(check bool) "fifth line misses" true (Cache.access cache (line 4) = Cache.Miss);
  Alcotest.(check bool) "line 1 was evicted" true (Cache.access cache (line 1) = Cache.Miss);
  Alcotest.(check bool) "line 0 survived" true (Cache.access cache (line 0) <> Cache.Miss)

let test_cache_hit_depth () =
  let cache = Cache.create small_geometry in
  ignore (Cache.access cache 0);
  ignore (Cache.access cache (4 * 64));
  (match Cache.access cache 0 with
  | Cache.Hit d -> Alcotest.(check int) "second MRU" 2 d
  | Cache.Miss -> Alcotest.fail "expected hit");
  match Cache.access cache 0 with
  | Cache.Hit d -> Alcotest.(check int) "now MRU" 1 d
  | Cache.Miss -> Alcotest.fail "expected hit"

let test_cache_stats () =
  let cache = Cache.create small_geometry in
  ignore (Cache.access cache 0);
  ignore (Cache.access cache 0);
  ignore (Cache.access cache 64);
  Alcotest.(check int) "accesses" 3 (Cache.accesses cache);
  Alcotest.(check int) "hits" 1 (Cache.hits cache);
  Alcotest.(check int) "misses" 2 (Cache.misses cache);
  check_float "miss rate" (2.0 /. 3.0) (Cache.miss_rate cache);
  Cache.reset_stats cache;
  Alcotest.(check int) "reset" 0 (Cache.accesses cache);
  Alcotest.(check bool) "contents survive reset" true (Cache.access cache 0 <> Cache.Miss)

let test_cache_probe () =
  let cache = Cache.create small_geometry in
  Alcotest.(check bool) "absent" false (Cache.probe cache 0);
  ignore (Cache.access cache 0);
  Alcotest.(check bool) "present" true (Cache.probe cache 0);
  Alcotest.(check int) "probe does not count" 1 (Cache.accesses cache)

let test_cache_clear_and_occupancy () =
  let cache = Cache.create small_geometry in
  for i = 0 to 9 do
    ignore (Cache.access cache (i * 64))
  done;
  Alcotest.(check int) "resident lines" 10 (Cache.resident_lines cache);
  Cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Cache.resident_lines cache);
  Alcotest.(check bool) "all cold again" true (Cache.access cache 0 = Cache.Miss)

let test_cache_fifo_no_refresh () =
  let cache = Cache.create ~policy:Replacement.Fifo small_geometry in
  let line i = i * 4 * 64 in
  for i = 0 to 3 do
    ignore (Cache.access cache (line i))
  done;
  (* Refresh line 0; under FIFO this must NOT save it from eviction. *)
  ignore (Cache.access cache (line 0));
  ignore (Cache.access cache (line 4));
  Alcotest.(check bool) "line 0 evicted despite refresh" true
    (Cache.access cache (line 0) = Cache.Miss)

let test_cache_random_bounded () =
  let cache = Cache.create ~policy:(Replacement.Random 3) small_geometry in
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    ignore (Cache.access cache (Rng.int rng 64 * 64))
  done;
  Alcotest.(check bool) "occupancy bounded" true
    (Cache.resident_lines cache <= Geometry.lines small_geometry)

let test_cache_working_set_behaviour () =
  (* A working set that fits has ~100% steady-state hits; double the size
     thrashes. *)
  let g = small_geometry in
  let lines = Geometry.lines g in
  let fits = Cache.create g in
  for _ = 1 to 10 do
    for i = 0 to lines - 1 do
      ignore (Cache.access fits (i * 64))
    done
  done;
  Alcotest.(check int) "fitting set: only cold misses" lines (Cache.misses fits);
  let thrash = Cache.create g in
  for _ = 1 to 10 do
    for i = 0 to (2 * lines) - 1 do
      ignore (Cache.access thrash (i * 64))
    done
  done;
  (* Cyclic sequential at 2x capacity under LRU misses every access. *)
  Alcotest.(check int) "thrashing set: all miss" (2 * lines * 10) (Cache.misses thrash)

(* ---- Sdc ------------------------------------------------------------- *)

let test_sdc_record_and_counters () =
  let sdc = Sdc.create ~assoc:4 in
  Sdc.record sdc ~depth:1;
  Sdc.record sdc ~depth:1;
  Sdc.record sdc ~depth:4;
  Sdc.record sdc ~depth:9;
  (* beyond assoc: a miss *)
  Sdc.record sdc ~depth:max_int;
  check_float "C1" 2.0 (Sdc.counter sdc 1);
  check_float "C4" 1.0 (Sdc.counter sdc 4);
  check_float "C>A" 2.0 (Sdc.counter sdc 5);
  check_float "accesses" 5.0 (Sdc.accesses sdc);
  check_float "hits" 3.0 (Sdc.hits sdc);
  check_float "misses" 2.0 (Sdc.misses sdc);
  check_float "miss rate" 0.4 (Sdc.miss_rate sdc)

let test_sdc_add_scale () =
  let a = Sdc.of_list ~assoc:2 [ 1.0; 2.0; 3.0 ] in
  let b = Sdc.of_list ~assoc:2 [ 10.0; 20.0; 30.0 ] in
  Alcotest.(check (list (float 1e-9))) "add" [ 11.0; 22.0; 33.0 ]
    (Sdc.to_list (Sdc.add a b));
  Alcotest.(check (list (float 1e-9))) "scale" [ 0.5; 1.0; 1.5 ]
    (Sdc.to_list (Sdc.scale a 0.5));
  let dst = Sdc.copy a in
  Sdc.add_into ~dst b;
  Alcotest.(check (list (float 1e-9))) "add_into" [ 11.0; 22.0; 33.0 ] (Sdc.to_list dst)

let test_sdc_reduce_associativity () =
  let sdc = Sdc.of_list ~assoc:4 [ 5.0; 4.0; 3.0; 2.0; 1.0 ] in
  let reduced = Sdc.reduce_associativity sdc ~assoc:2 in
  Alcotest.(check (list (float 1e-9))) "folded" [ 5.0; 4.0; 6.0 ] (Sdc.to_list reduced);
  check_float "accesses preserved" (Sdc.accesses sdc) (Sdc.accesses reduced)

let test_sdc_misses_with_ways () =
  let sdc = Sdc.of_list ~assoc:4 [ 5.0; 4.0; 3.0; 2.0; 1.0 ] in
  check_float "full ways" 1.0 (Sdc.misses_with_ways sdc ~ways:4.0);
  check_float "0 ways: everything misses" 15.0 (Sdc.misses_with_ways sdc ~ways:0.0);
  check_float "2 ways" 6.0 (Sdc.misses_with_ways sdc ~ways:2.0);
  (* Linear interpolation between 2 (6 misses) and 3 (3 misses). *)
  check_float "2.5 ways" 4.5 (Sdc.misses_with_ways sdc ~ways:2.5);
  check_float "beyond assoc clamps" 1.0 (Sdc.misses_with_ways sdc ~ways:10.0)

let test_sdc_prefix_counts () =
  let mk n =
    let sdc = Sdc.create ~assoc:4 in
    for _ = 1 to n do
      Sdc.record sdc ~depth:1
    done;
    sdc
  in
  let prefix = Sdc.prefix_counts [ mk 3; mk 5; mk 2 ] in
  Alcotest.(check (list (float 1e-9)))
    "running totals with a leading zero"
    [ 0.0; 3.0; 8.0; 10.0 ] (Array.to_list prefix);
  check_float "window [1, 3) mass by subtraction" 7.0
    (Sdc.window_accesses prefix ~first:1 ~last:3);
  check_float "whole-sequence mass" 10.0
    (Sdc.window_accesses prefix ~first:0 ~last:3);
  check_float "empty window" 0.0 (Sdc.window_accesses prefix ~first:2 ~last:2);
  Alcotest.check_raises "out-of-range window rejected"
    (Invalid_argument "Sdc.window_accesses: window out of range") (fun () ->
      ignore (Sdc.window_accesses prefix ~first:0 ~last:4))

let test_sdc_reduction_matches_resimulation () =
  (* The paper's Sec. 2 claim: a 16-way profile reduced to 8 ways equals a
     direct 8-way profile with the same set count. *)
  let sets = 16 in
  let g16 = Geometry.make ~size_bytes:(sets * 16 * 64) ~line_bytes:64 ~associativity:16 in
  let g8 = Geometry.make ~size_bytes:(sets * 8 * 64) ~line_bytes:64 ~associativity:8 in
  Alcotest.(check int) "same set count" g16.Geometry.num_sets g8.Geometry.num_sets;
  let p16 = Sdc_profiler.create g16 in
  let p8 = Sdc_profiler.create g8 in
  let addrs = random_addresses ~seed:17 ~count:50_000 ~span:4096 in
  Array.iter
    (fun addr ->
      ignore (Sdc_profiler.access p16 addr);
      ignore (Sdc_profiler.access p8 addr))
    addrs;
  let reduced = Sdc.reduce_associativity (Sdc_profiler.lifetime_total p16) ~assoc:8 in
  Alcotest.(check (list (float 1e-9)))
    "derived = resimulated"
    (Sdc.to_list (Sdc_profiler.lifetime_total p8))
    (Sdc.to_list reduced)

let test_sdc_errors () =
  let sdc = Sdc.create ~assoc:4 in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad depth" true (raises (fun () -> Sdc.record sdc ~depth:0));
  Alcotest.(check bool) "assoc mismatch" true
    (raises (fun () -> ignore (Sdc.add sdc (Sdc.create ~assoc:2))));
  Alcotest.(check bool) "bad of_list" true
    (raises (fun () -> ignore (Sdc.of_list ~assoc:2 [ 1.0 ])))

(* ---- Sdc_profiler ---------------------------------------------------- *)

let test_profiler_intervals_sum_to_total () =
  let profiler = Sdc_profiler.create small_geometry in
  let addrs = random_addresses ~seed:23 ~count:5_000 ~span:512 in
  let cuts = ref [] in
  Array.iteri
    (fun i addr ->
      ignore (Sdc_profiler.access profiler addr);
      if (i + 1) mod 1000 = 0 then cuts := Sdc_profiler.cut_interval profiler :: !cuts)
    addrs;
  let total =
    List.fold_left Sdc.add (Sdc_profiler.current profiler) !cuts
  in
  Alcotest.(check (list (float 1e-9)))
    "interval sum equals lifetime"
    (Sdc.to_list (Sdc_profiler.lifetime_total profiler))
    (Sdc.to_list total);
  check_float "every access recorded" 5000.0 (Sdc.accesses total)

let test_profiler_depths_match_cache () =
  (* The profiler's histogram must agree with the cache's reported depths. *)
  let cache = Cache.create small_geometry in
  let profiler = Sdc_profiler.create small_geometry in
  let addrs = random_addresses ~seed:29 ~count:10_000 ~span:400 in
  let misses = ref 0 and hits_by_depth = Array.make 4 0 in
  Array.iter
    (fun addr ->
      (match Cache.access cache addr with
      | Cache.Miss -> incr misses
      | Cache.Hit d -> hits_by_depth.(d - 1) <- hits_by_depth.(d - 1) + 1);
      ignore (Sdc_profiler.access profiler addr))
    addrs;
  let sdc = Sdc_profiler.lifetime_total profiler in
  check_float "misses agree" (float_of_int !misses) (Sdc.misses sdc);
  Array.iteri
    (fun i c ->
      check_float (Printf.sprintf "depth %d" (i + 1)) (float_of_int c)
        (Sdc.counter sdc (i + 1)))
    hits_by_depth

(* ---- Hierarchy -------------------------------------------------------- *)

let tiny_hierarchy ?(llc_assoc = 8) () =
  let level size assoc latency =
    { Hierarchy.geometry = Geometry.make ~size_bytes:size ~line_bytes:64 ~associativity:assoc;
      latency }
  in
  {
    Hierarchy.l1i = level 1024 2 1;
    l1d = level 1024 2 1;
    l2 = level 4096 4 10;
    llc = level 16384 llc_assoc 16;
    memory_latency = 200;
  }

let test_hierarchy_latencies () =
  let h = Hierarchy.create (tiny_hierarchy ()) in
  (* Cold access goes to memory. *)
  let r1 = Hierarchy.access h ~kind:Hierarchy.Load ~addr:0 in
  Alcotest.(check int) "memory latency" 216 r1.Hierarchy.latency;
  Alcotest.(check bool) "hit level" true (r1.Hierarchy.hit_level = Hierarchy.Memory);
  (* Immediately again: L1 hit. *)
  let r2 = Hierarchy.access h ~kind:Hierarchy.Load ~addr:0 in
  Alcotest.(check int) "l1 latency" 1 r2.Hierarchy.latency;
  Alcotest.(check bool) "no llc outcome on l1 hit" true (r2.Hierarchy.llc_outcome = None)

let test_hierarchy_l2_path () =
  let h = Hierarchy.create (tiny_hierarchy ()) in
  (* Fill L1 set so the first line falls to L2 but stays there. *)
  ignore (Hierarchy.access h ~kind:Hierarchy.Load ~addr:0);
  ignore (Hierarchy.access h ~kind:Hierarchy.Load ~addr:1024);
  ignore (Hierarchy.access h ~kind:Hierarchy.Load ~addr:2048);
  let r = Hierarchy.access h ~kind:Hierarchy.Load ~addr:0 in
  Alcotest.(check bool) "L2 hit" true (r.Hierarchy.hit_level = Hierarchy.L2);
  Alcotest.(check int) "L2 latency" 10 r.Hierarchy.latency

let test_hierarchy_perfect_llc () =
  let h = Hierarchy.create ~perfect_llc:true (tiny_hierarchy ()) in
  let r = Hierarchy.access h ~kind:Hierarchy.Load ~addr:0 in
  Alcotest.(check bool) "perfect LLC hits" true (r.Hierarchy.hit_level = Hierarchy.Llc);
  Alcotest.(check int) "llc latency" 16 r.Hierarchy.latency;
  Alcotest.(check int) "no misses" 0 (Hierarchy.llc_misses h);
  Alcotest.(check int) "counted access" 1 (Hierarchy.llc_accesses h)

let test_hierarchy_fetch_uses_l1i () =
  let h = Hierarchy.create (tiny_hierarchy ()) in
  ignore (Hierarchy.access h ~kind:Hierarchy.Fetch ~addr:0);
  (* The same line via the data side must still miss L1D (separate caches),
     but hit in L2 where the fetch installed it. *)
  let r = Hierarchy.access h ~kind:Hierarchy.Load ~addr:0 in
  Alcotest.(check bool) "L2 hit via shared L2" true (r.Hierarchy.hit_level = Hierarchy.L2)

let test_hierarchy_shared_llc () =
  let config = tiny_hierarchy () in
  let shared = Cache.create config.Hierarchy.llc.Hierarchy.geometry in
  let a = Hierarchy.create ~llc:shared config in
  let b = Hierarchy.create ~llc:shared config in
  ignore (Hierarchy.access a ~kind:Hierarchy.Load ~addr:0);
  (* Core B misses its private levels but finds the line in the shared
     LLC. *)
  let r = Hierarchy.access b ~kind:Hierarchy.Load ~addr:0 in
  Alcotest.(check bool) "hits shared LLC" true (r.Hierarchy.hit_level = Hierarchy.Llc);
  Alcotest.(check int) "a's stats" 1 (Hierarchy.llc_misses a);
  Alcotest.(check int) "b's stats" 0 (Hierarchy.llc_misses b)

let test_hierarchy_geometry_mismatch () =
  let config = tiny_hierarchy () in
  let wrong = Cache.create small_geometry in
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (Hierarchy.create ~llc:wrong config);
       false
     with Invalid_argument _ -> true)

(* ---- Configs ----------------------------------------------------------- *)

let test_configs_table2 () =
  let expected =
    [ (1, 512, 8, 16); (2, 512, 16, 20); (3, 1024, 8, 18);
      (4, 1024, 16, 22); (5, 2048, 8, 20); (6, 2048, 16, 24) ]
  in
  List.iter
    (fun (n, kb, assoc, latency) ->
      let level = Configs.llc_config n in
      Alcotest.(check int) "size" (kb * 1024)
        level.Hierarchy.geometry.Geometry.size_bytes;
      Alcotest.(check int) "assoc" assoc
        level.Hierarchy.geometry.Geometry.associativity;
      Alcotest.(check int) "latency" latency level.Hierarchy.latency)
    expected;
  Alcotest.(check bool) "config 7 raises" true
    (try ignore (Configs.llc_config 7); false with Invalid_argument _ -> true)

let test_configs_table1 () =
  let b = Configs.baseline () in
  Alcotest.(check int) "L1I" (Geometry.kib 32) b.Hierarchy.l1i.Hierarchy.geometry.Geometry.size_bytes;
  Alcotest.(check int) "L1I ways" 4 b.Hierarchy.l1i.Hierarchy.geometry.Geometry.associativity;
  Alcotest.(check int) "L1D ways" 8 b.Hierarchy.l1d.Hierarchy.geometry.Geometry.associativity;
  Alcotest.(check int) "L2 size" (Geometry.kib 256) b.Hierarchy.l2.Hierarchy.geometry.Geometry.size_bytes;
  Alcotest.(check int) "memory" 200 b.Hierarchy.memory_latency;
  Alcotest.(check int) "default LLC is config #1" (Geometry.kib 512)
    b.Hierarchy.llc.Hierarchy.geometry.Geometry.size_bytes

(* ---- qcheck properties -------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"hit depth never exceeds associativity" ~count:50
      small_int
      (fun seed ->
        let cache = Cache.create small_geometry in
        let rng = Rng.create ~seed in
        let ok = ref true in
        for _ = 1 to 2000 do
          match Cache.access cache (Rng.int rng 1024 * 64) with
          | Cache.Hit d -> if d < 1 || d > 4 then ok := false
          | Cache.Miss -> ()
        done;
        !ok);
    Test.make ~name:"misses_with_ways is monotone decreasing" ~count:200
      (pair small_int (pair (float_range 0.0 8.0) (float_range 0.0 2.0)))
      (fun (seed, (ways, delta)) ->
        let rng = Rng.create ~seed in
        let sdc = Sdc.create ~assoc:8 in
        for _ = 1 to 100 do
          Sdc.record sdc ~depth:(1 + Rng.int rng 12)
        done;
        Sdc.misses_with_ways sdc ~ways:(ways +. delta)
        <= Sdc.misses_with_ways sdc ~ways +. 1e-9);
    Test.make ~name:"LRU inclusion: fewer ways never means fewer misses"
      ~count:50 small_int
      (fun seed ->
        let g8 = Geometry.make ~size_bytes:(16 * 8 * 64) ~line_bytes:64 ~associativity:8 in
        let g4 = Geometry.make ~size_bytes:(16 * 4 * 64) ~line_bytes:64 ~associativity:4 in
        let c8 = Cache.create g8 and c4 = Cache.create g4 in
        let rng = Rng.create ~seed in
        for _ = 1 to 5000 do
          let addr = Rng.int rng 512 * 64 in
          ignore (Cache.access c8 addr);
          ignore (Cache.access c4 addr)
        done;
        Cache.misses c4 >= Cache.misses c8);
  ]

let tests =
  [
    ( "cache.geometry",
      [
        Alcotest.test_case "derived fields" `Quick test_geometry_derived;
        Alcotest.test_case "indexing" `Quick test_geometry_indexing;
        Alcotest.test_case "invalid geometry" `Quick test_geometry_invalid;
        Alcotest.test_case "describe_size" `Quick test_geometry_describe;
      ] );
    ( "cache.replacement",
      [ Alcotest.test_case "string roundtrip" `Quick test_replacement_strings ] );
    ( "cache.cache",
      [
        Alcotest.test_case "matches reference LRU" `Quick test_cache_matches_reference;
        Alcotest.test_case "LRU eviction order" `Quick test_cache_lru_eviction_order;
        Alcotest.test_case "hit depth" `Quick test_cache_hit_depth;
        Alcotest.test_case "statistics" `Quick test_cache_stats;
        Alcotest.test_case "probe" `Quick test_cache_probe;
        Alcotest.test_case "clear and occupancy" `Quick test_cache_clear_and_occupancy;
        Alcotest.test_case "FIFO ignores refresh" `Quick test_cache_fifo_no_refresh;
        Alcotest.test_case "random policy bounded" `Quick test_cache_random_bounded;
        Alcotest.test_case "working-set behaviour" `Quick test_cache_working_set_behaviour;
      ] );
    ( "cache.sdc",
      [
        Alcotest.test_case "record and counters" `Quick test_sdc_record_and_counters;
        Alcotest.test_case "add and scale" `Quick test_sdc_add_scale;
        Alcotest.test_case "reduce associativity" `Quick test_sdc_reduce_associativity;
        Alcotest.test_case "misses with fractional ways" `Quick test_sdc_misses_with_ways;
        Alcotest.test_case "prefix counts and window readout" `Quick test_sdc_prefix_counts;
        Alcotest.test_case "reduction matches resimulation" `Quick
          test_sdc_reduction_matches_resimulation;
        Alcotest.test_case "error cases" `Quick test_sdc_errors;
      ] );
    ( "cache.profiler",
      [
        Alcotest.test_case "intervals sum to lifetime" `Quick
          test_profiler_intervals_sum_to_total;
        Alcotest.test_case "depths match cache" `Quick test_profiler_depths_match_cache;
      ] );
    ( "cache.hierarchy",
      [
        Alcotest.test_case "latency model" `Quick test_hierarchy_latencies;
        Alcotest.test_case "L2 path" `Quick test_hierarchy_l2_path;
        Alcotest.test_case "perfect LLC" `Quick test_hierarchy_perfect_llc;
        Alcotest.test_case "fetch side" `Quick test_hierarchy_fetch_uses_l1i;
        Alcotest.test_case "shared LLC" `Quick test_hierarchy_shared_llc;
        Alcotest.test_case "geometry mismatch" `Quick test_hierarchy_geometry_mismatch;
      ] );
    ( "cache.configs",
      [
        Alcotest.test_case "Table 2 values" `Quick test_configs_table2;
        Alcotest.test_case "Table 1 baseline" `Quick test_configs_table1;
      ] );
    ("cache.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
