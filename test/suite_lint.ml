(* Tests for the mppm-lint static-analysis pass, the runtime invariant
   sanitizer, and the fingerprint-based profile cache keys.

   The tree test lints the real sources (made visible in the build
   directory via source_tree deps in test/dune) and asserts the repo is
   lint-clean; the synthetic tests feed each rule a positive and a
   suppressed snippet through [Engine.lint_source]. *)

module Diag = Mppm_lint.Diag
module Engine = Mppm_lint.Engine
module Rules = Mppm_lint.Rules
module Invariant = Mppm_util.Invariant
module Fingerprint = Mppm_util.Fingerprint
module Model = Mppm_core.Model
module Mix = Mppm_workload.Mix
open Mppm_experiments

(* ---- Linting the real tree ---------------------------------------------- *)

(* Tests run from the test stanza's build directory; the source_tree deps
   place lib/, bin/, bench/ and tools/ one level up.  MPPM_LINT_ROOT
   overrides the search (e.g. to lint a checkout directly). *)
let lint_root () =
  let candidates =
    (match Sys.getenv_opt "MPPM_LINT_ROOT" with Some r -> [ r ] | None -> [])
    @ [ ".."; "../.."; "." ]
  in
  List.find_opt
    (fun root ->
      let dir = Filename.concat root "lib" in
      Sys.file_exists dir && Sys.is_directory dir)
    candidates

let test_tree_is_clean () =
  match lint_root () with
  | None -> Alcotest.fail "cannot locate the source tree to lint"
  | Some root ->
      let findings = Engine.lint_tree ~root in
      let errors = Engine.errors findings in
      let render ds =
        String.concat "\n" (List.map Diag.to_text ds)
      in
      Alcotest.(check string) "no lint errors" "" (render errors);
      Alcotest.(check string) "no lint warnings" "" (render findings)

(* ---- Synthetic rule cases ----------------------------------------------- *)

let rules_of ~rel src =
  List.map (fun d -> d.Diag.rule) (Engine.lint_source ~rel src)

let has_rule rule ~rel src = List.mem rule (rules_of ~rel src)

let test_d1_random () =
  Alcotest.(check bool) "Random in lib flagged" true
    (has_rule "D1" ~rel:"lib/core/foo.ml" "let x = Random.int 5\n");
  Alcotest.(check bool) "allow comment suppresses" false
    (has_rule "D1" ~rel:"lib/core/foo.ml"
       "(* lint: allow D1 *)\nlet x = Random.int 5\n");
  Alcotest.(check bool) "qualified path not confused" false
    (has_rule "D1" ~rel:"lib/core/foo.ml"
       "let x = Mppm_util.Rng.int rng 5\n")

let test_d1_wall_clock_and_hash () =
  Alcotest.(check bool) "Sys.time flagged" true
    (has_rule "D1" ~rel:"lib/core/foo.ml" "let t = Sys.time ()\n");
  Alcotest.(check bool) "Unix.gettimeofday flagged" true
    (has_rule "D1" ~rel:"lib/core/foo.ml" "let t = Unix.gettimeofday ()\n");
  Alcotest.(check bool) "Hashtbl.hash flagged" true
    (has_rule "D1" ~rel:"lib/core/foo.ml" "let h = Hashtbl.hash v\n");
  Alcotest.(check bool) "Hashtbl.create bare flagged" true
    (has_rule "D1" ~rel:"lib/core/foo.ml" "let t = Hashtbl.create 16\n");
  Alcotest.(check bool) "Hashtbl.create ~random:false ok" false
    (has_rule "D1" ~rel:"lib/core/foo.ml"
       "let t = Hashtbl.create ~random:false 16\n");
  Alcotest.(check bool) "outside lib not D1" false
    (has_rule "D1" ~rel:"bench/foo.ml" "let t = Hashtbl.create 16\n")

let test_d2_random_outside_lib () =
  Alcotest.(check bool) "Random in bench flagged as D2" true
    (has_rule "D2" ~rel:"bench/foo.ml" "let x = Random.int 5\n");
  Alcotest.(check bool) "suppressed on same line" false
    (has_rule "D2" ~rel:"bench/foo.ml"
       "let x = Random.int 5 (* lint: allow D2 *)\n")

let test_f1_float_equality () =
  Alcotest.(check bool) "if x = 0.5 flagged" true
    (has_rule "F1" ~rel:"lib/core/foo.ml" "let f x = if x = 0.5 then 1 else 2\n");
  Alcotest.(check bool) "when clause flagged" true
    (has_rule "F1" ~rel:"lib/core/foo.ml"
       "let f x = match x with y when y = 1.0 -> 0 | _ -> 1\n");
  Alcotest.(check bool) "let binding not flagged" false
    (has_rule "F1" ~rel:"lib/core/foo.ml" "let x = 0.5\n");
  Alcotest.(check bool) "optional default not flagged" false
    (has_rule "F1" ~rel:"lib/core/foo.ml" "let f ?(eps = 1e-9) x = x +. eps\n");
  Alcotest.(check bool) "Float.equal not flagged" false
    (has_rule "F1" ~rel:"lib/core/foo.ml"
       "let f x = if Float.equal x 0.5 then 1 else 2\n");
  Alcotest.(check bool) "suppression works" false
    (has_rule "F1" ~rel:"lib/core/foo.ml"
       "(* lint: allow F1 *)\nlet f x = if x = 0.5 then 1 else 2\n")

let test_m1_mli_docs () =
  Alcotest.(check bool) "undocumented val flagged" true
    (has_rule "M1" ~rel:"lib/core/foo.mli" "val f : int -> int\n");
  Alcotest.(check bool) "doc after val ok" false
    (has_rule "M1" ~rel:"lib/core/foo.mli"
       "val f : int -> int\n(** Doubles. *)\n");
  Alcotest.(check bool) "doc before val ok" false
    (has_rule "M1" ~rel:"lib/core/foo.mli"
       "(** Doubles. *)\nval f : int -> int\n");
  Alcotest.(check bool) "mli outside lib ignored" false
    (has_rule "M1" ~rel:"tools/foo.mli" "val f : int -> int\n")

let test_e1_error_prefixes () =
  Alcotest.(check bool) "bare failwith flagged" true
    (has_rule "E1" ~rel:"lib/core/foo.ml" "let f () = failwith \"bad input\"\n");
  Alcotest.(check bool) "prefixed failwith ok" false
    (has_rule "E1" ~rel:"lib/core/foo.ml"
       "let f () = failwith \"Foo.f: bad input\"\n");
  Alcotest.(check bool) "prefixed invalid_arg ok" false
    (has_rule "E1" ~rel:"lib/core/foo.ml"
       "let f () = invalid_arg \"Foo: bad input\"\n");
  Alcotest.(check bool) "outside lib ignored" false
    (has_rule "E1" ~rel:"bin/foo.ml" "let f () = failwith \"bad input\"\n")

let test_o1_console_output () =
  Alcotest.(check bool) "print_endline in lib flagged" true
    (has_rule "O1" ~rel:"lib/core/foo.ml" "let f () = print_endline \"x\"\n");
  Alcotest.(check bool) "prerr_string in lib flagged" true
    (has_rule "O1" ~rel:"lib/core/foo.ml" "let f () = prerr_string \"x\"\n");
  Alcotest.(check bool) "Printf.printf in lib flagged" true
    (has_rule "O1" ~rel:"lib/core/foo.ml"
       "let f n = Printf.printf \"%d\" n\n");
  Alcotest.(check bool) "Format.eprintf in lib flagged" true
    (has_rule "O1" ~rel:"lib/core/foo.ml"
       "let f n = Format.eprintf \"%d\" n\n");
  Alcotest.(check bool) "Format.std_formatter in lib flagged" true
    (has_rule "O1" ~rel:"lib/core/foo.ml"
       "let f () = Format.fprintf Format.std_formatter \"x\"\n");
  Alcotest.(check bool) "Printf.sprintf not flagged" false
    (has_rule "O1" ~rel:"lib/core/foo.ml"
       "let f n = Printf.sprintf \"%d\" n\n");
  Alcotest.(check bool) "caller-supplied formatter not flagged" false
    (has_rule "O1" ~rel:"lib/core/foo.ml"
       "let pp ppf n = Format.fprintf ppf \"%d\" n\n");
  Alcotest.(check bool) "projection not confused with bare printer" false
    (has_rule "O1" ~rel:"lib/core/foo.ml" "let f x = X.print_endline x\n");
  Alcotest.(check bool) "outside lib ignored" false
    (has_rule "O1" ~rel:"bin/foo.ml" "let f () = print_endline \"x\"\n");
  Alcotest.(check bool) "suppression works" false
    (has_rule "O1" ~rel:"lib/core/foo.ml"
       "(* lint: allow O1 *)\nlet f () = print_endline \"x\"\n")

let test_testish_scope () =
  let o1 rel src =
    List.filter (fun d -> d.Diag.rule = "O1") (Engine.lint_source ~rel src)
  in
  (match o1 "test/foo.ml" "let f () = print_endline \"x\"\n" with
  | [ d ] ->
      Alcotest.(check bool) "O1 downgraded to warning in test/" true
        (d.Diag.severity = Diag.Warning)
  | ds -> Alcotest.failf "expected one O1, got %d" (List.length ds));
  (match o1 "examples/foo.ml" "let f () = print_endline \"x\"\n" with
  | [ d ] ->
      Alcotest.(check bool) "O1 downgraded to warning in examples/" true
        (d.Diag.severity = Diag.Warning)
  | ds -> Alcotest.failf "expected one O1, got %d" (List.length ds));
  (match Engine.lint_source ~rel:"test/foo.mli" "val f : int -> int\n" with
  | [ d ] ->
      Alcotest.(check string) "M1 applies to test .mli" "M1" d.Diag.rule;
      Alcotest.(check bool) "as a warning" true (d.Diag.severity = Diag.Warning)
  | ds -> Alcotest.failf "expected one M1, got %d" (List.length ds))

let test_allow_file () =
  Alcotest.(check bool) "allow-file suppresses anywhere in the file" false
    (has_rule "O1" ~rel:"lib/core/foo.ml"
       "(* lint: allow-file O1 demo *)\nlet pad = 0\nlet f () = print_endline \"x\"\n");
  Alcotest.(check bool) "allow-file is per-rule" true
    (has_rule "D1" ~rel:"lib/core/foo.ml"
       "(* lint: allow-file O1 demo *)\nlet t = Hashtbl.create 16\n");
  Alcotest.(check bool) "why text after the rule id is ignored" false
    (has_rule "D1" ~rel:"lib/core/foo.ml"
       "(* lint: allow D1 wall-clock by design *)\nlet t = Hashtbl.create 16\n")

let test_dune_unix_in_lib () =
  let findings =
    Engine.lint_dune ~rel:"lib/core/dune"
      "(library (name mppm_core) (libraries unix))\n"
  in
  Alcotest.(check bool) "unix link flagged" true
    (List.exists (fun d -> d.Diag.rule = "D1") findings);
  Alcotest.(check (list string)) "unix as substring not flagged" []
    (List.map
       (fun d -> d.Diag.rule)
       (Engine.lint_dune ~rel:"lib/core/dune"
          "(library (name mppm_unixish))\n"))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_diag_render () =
  let d =
    {
      Diag.file = "lib/a.ml";
      line = 3;
      rule = "D1";
      severity = Diag.Error;
      message = "a \"quoted\" message";
    }
  in
  Alcotest.(check string) "text form" "lib/a.ml:3: [D1] error: a \"quoted\" message"
    (Diag.to_text d);
  let json = Diag.list_to_json [ d ] in
  Alcotest.(check bool) "json escapes quotes" true
    (contains json "a \\\"quoted\\\" message");
  Alcotest.(check bool) "json carries line" true (contains json "\"line\":3")

(* ---- qcheck properties --------------------------------------------------- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"lexer/linter total on arbitrary input" ~count:500
      QCheck.(string)
      (fun s ->
        ignore (Engine.lint_source ~rel:"lib/x/y.ml" s);
        ignore (Engine.lint_source ~rel:"lib/x/y.mli" s);
        true);
    QCheck.Test.make ~name:"F1 fires once per generated comparison" ~count:200
      QCheck.(pair (int_range 0 999) (int_range 0 99))
      (fun (a, b) ->
        let lit = Printf.sprintf "%d.%d" a b in
        let src = Printf.sprintf "let f x = if x = %s then 1 else 2\n" lit in
        let hits =
          List.filter
            (fun d -> d.Diag.rule = "F1")
            (Engine.lint_source ~rel:"lib/x/y.ml" src)
        in
        List.length hits = 1);
    QCheck.Test.make ~name:"F1 suppressed by allow comment" ~count:200
      QCheck.(pair (int_range 0 999) (int_range 0 99))
      (fun (a, b) ->
        let lit = Printf.sprintf "%d.%d" a b in
        let src =
          Printf.sprintf
            "let f x = if x = %s then 1 else 2 (* lint: allow F1 *)\n" lit
        in
        not (has_rule "F1" ~rel:"lib/x/y.ml" src));
  ]

(* ---- Runtime sanitizer ---------------------------------------------------- *)

let canonical_mix = Mix.of_names [| "gamess"; "gamess"; "hmmer"; "soplex" |]
let tiny_scale = Scale.of_trace 100_000

let test_invariant_counters () =
  Invariant.reset ();
  Invariant.set_enabled true;
  Invariant.check "test.pass" true;
  Invariant.check "test.fail" false;
  Invariant.checkf "test.detail" false (fun () -> "x = 42");
  Alcotest.(check int) "checks counted" 3 (Invariant.checks_run ());
  Alcotest.(check int) "violations counted" 2 (Invariant.violations ());
  Alcotest.(check bool) "report names the invariant" true
    (contains (Invariant.report ()) "test.fail");
  Alcotest.(check bool) "report carries the detail" true
    (contains (Invariant.report ()) "x = 42");
  Invariant.set_enabled false;
  Invariant.check "test.disabled" false;
  Alcotest.(check int) "disabled checks are no-ops" 2 (Invariant.violations ());
  Invariant.reset ();
  Alcotest.(check int) "reset clears" 0 (Invariant.checks_run ())

(* The canonical mix, predicted and detail-simulated with the sanitizer on:
   zero violations, and the prediction is bit-for-bit what it is with the
   sanitizer off. *)
let test_sanitizer_smoke () =
  let baseline =
    let ctx = Context.create ~seed:7 tiny_scale in
    Context.predict ctx ~llc_config:1 canonical_mix
  in
  Invariant.reset ();
  Invariant.set_enabled true;
  let sanitized, measured =
    let ctx = Context.create ~seed:7 tiny_scale in
    let p = Context.predict ctx ~llc_config:1 canonical_mix in
    let m = Context.detailed ctx ~llc_config:1 canonical_mix in
    (p, m)
  in
  Invariant.set_enabled false;
  Alcotest.(check bool) "checkpoints exercised" true (Invariant.checks_run () > 0);
  Alcotest.(check int) "zero violations" 0 (Invariant.violations ());
  ignore measured;
  let bits = Int64.bits_of_float in
  let check_bitwise name a b =
    Alcotest.(check int64) name (bits a) (bits b)
  in
  check_bitwise "stp bit-for-bit" baseline.Model.stp sanitized.Model.stp;
  check_bitwise "antt bit-for-bit" baseline.Model.antt sanitized.Model.antt;
  Array.iteri
    (fun i p ->
      let q = sanitized.Model.programs.(i) in
      check_bitwise
        (Printf.sprintf "slowdown %d bit-for-bit" i)
        p.Model.slowdown q.Model.slowdown)
    baseline.Model.programs

(* ---- Fingerprint and cache paths ------------------------------------------ *)

let test_fingerprint_golden () =
  (* Golden FNV-1a 64 values: pin the algorithm so cache filenames stay
     stable across runs and refactors. *)
  Alcotest.(check string) "empty" "cbf29ce484222325"
    (Fingerprint.to_hex Fingerprint.empty);
  Alcotest.(check string) "\"a\"" "af63dc4c8601ec8c"
    (Fingerprint.to_hex (Fingerprint.of_string "a"));
  Alcotest.(check string) "\"foobar\"" "85944171f73967e8"
    (Fingerprint.to_hex (Fingerprint.of_string "foobar"))

let test_fingerprint_separation () =
  let h a b =
    Fingerprint.to_hex (Fingerprint.add_string (Fingerprint.of_string a) b)
  in
  Alcotest.(check string) "add_string is a plain byte fold" (h "ab" "c") (h "a" "bc");
  let i a b =
    Fingerprint.to_hex (Fingerprint.add_int (Fingerprint.add_int Fingerprint.empty a) b)
  in
  Alcotest.(check bool) "ints cannot concatenate-collide" true
    (i 12 3 <> i 1 23);
  Alcotest.(check bool) "of_value distinguishes values" true
    (Fingerprint.of_value (1, "x") <> Fingerprint.of_value (2, "x"));
  Alcotest.(check bool) "of_value is stable" true
    (Fingerprint.of_value (1, "x") = Fingerprint.of_value (1, "x"))

let test_cache_path_digest () =
  let dir = Filename.get_temp_dir_name () in
  let ctx1 = Context.create ~seed:7 ~cache_dir:dir tiny_scale in
  let ctx2 = Context.create ~seed:7 ~cache_dir:dir tiny_scale in
  let path ctx = Context.cache_path ctx ~llc_config:1 0 in
  (match (path ctx1, path ctx2) with
  | Some a, Some b ->
      Alcotest.(check string) "same parameters, same path" a b;
      Alcotest.(check bool) "benchmark name in path" true
        (contains a Mppm_trace.Suite.names.(0))
  | _ -> Alcotest.fail "cache_path must be Some with a cache dir");
  (match (path ctx1, Context.cache_path ctx1 ~llc_config:2 0) with
  | Some a, Some b ->
      Alcotest.(check bool) "different LLC config, different path" true (a <> b)
  | _ -> Alcotest.fail "cache_path must be Some with a cache dir");
  let little =
    Context.create
      ~core:{ Mppm_simcore.Core_model.default with memory_exposure = 0.9 }
      ~seed:7 ~cache_dir:dir tiny_scale
  in
  (match (path ctx1, path little) with
  | Some a, Some b ->
      Alcotest.(check bool) "different core params, different path" true (a <> b)
  | _ -> Alcotest.fail "cache_path must be Some with a cache dir");
  Alcotest.(check (option string)) "no cache dir, no path" None
    (Context.cache_path (Context.create ~seed:7 tiny_scale) ~llc_config:1 0)

let tests =
  [
    ( "lint.tree",
      [ Alcotest.test_case "repository is lint-clean" `Quick test_tree_is_clean ] );
    ( "lint.rules",
      [
        Alcotest.test_case "D1 random" `Quick test_d1_random;
        Alcotest.test_case "D1 wall clock and hash" `Quick test_d1_wall_clock_and_hash;
        Alcotest.test_case "D2 random outside lib" `Quick test_d2_random_outside_lib;
        Alcotest.test_case "F1 float equality" `Quick test_f1_float_equality;
        Alcotest.test_case "M1 mli docs" `Quick test_m1_mli_docs;
        Alcotest.test_case "E1 error prefixes" `Quick test_e1_error_prefixes;
        Alcotest.test_case "O1 console output" `Quick test_o1_console_output;
        Alcotest.test_case "testish scope downgrades" `Quick test_testish_scope;
        Alcotest.test_case "allow-file suppression" `Quick test_allow_file;
        Alcotest.test_case "dune unix in lib" `Quick test_dune_unix_in_lib;
        Alcotest.test_case "diagnostic rendering" `Quick test_diag_render;
      ] );
    ("lint.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ( "lint.sanitizer",
      [
        Alcotest.test_case "counters" `Quick test_invariant_counters;
        Alcotest.test_case "canonical mix smoke" `Slow test_sanitizer_smoke;
      ] );
    ( "lint.fingerprint",
      [
        Alcotest.test_case "golden FNV values" `Quick test_fingerprint_golden;
        Alcotest.test_case "separation" `Quick test_fingerprint_separation;
        Alcotest.test_case "cache path digest" `Quick test_cache_path_digest;
      ] );
  ]
