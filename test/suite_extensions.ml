(* Tests for the extensions beyond the paper's core: the static
   (phase-unaware) model, the way-partitioned LLC, the partition-aware
   contention model, and the co-phase matrix baseline. *)

module Cache = Mppm_cache.Cache
module Geometry = Mppm_cache.Geometry
module Sdc = Mppm_cache.Sdc
module Configs = Mppm_cache.Configs
module Contention = Mppm_contention.Contention
module Model = Mppm_core.Model
module Static_model = Mppm_core.Static_model
module Profile = Mppm_profile.Profile
module Single_core = Mppm_simcore.Single_core
module Multi_core = Mppm_multicore.Multi_core
module Co_phase = Mppm_cophase.Co_phase
module Suite = Mppm_trace.Suite
module Benchmark = Mppm_trace.Benchmark

let check_close eps = Alcotest.(check (float eps))
let baseline = Configs.baseline ()

(* ---- partitioned cache ----------------------------------------------------- *)

let part_geometry =
  (* 1 set x 4 ways: partition effects fully visible. *)
  Geometry.make ~size_bytes:256 ~line_bytes:64 ~associativity:4

let test_partition_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "quota sum too large" true
    (invalid (fun () -> Cache.create ~partition:[| 3; 3 |] part_geometry));
  Alcotest.(check bool) "zero quota" true
    (invalid (fun () -> Cache.create ~partition:[| 0; 4 |] part_geometry));
  Alcotest.(check bool) "needs LRU" true
    (invalid (fun () ->
         Cache.create ~policy:Mppm_cache.Replacement.Fifo ~partition:[| 2; 2 |]
           part_geometry));
  let cache = Cache.create ~partition:[| 2; 2 |] part_geometry in
  Alcotest.(check bool) "owner out of range" true
    (invalid (fun () -> Cache.access_as cache ~owner:2 0))

let test_partition_steady_state_quotas () =
  (* Two owners streaming conflicting lines through one 4-way set: each
     must converge to exactly its quota. *)
  let cache = Cache.create ~partition:[| 2; 2 |] part_geometry in
  let line i = i * 64 in
  for round = 0 to 63 do
    ignore (Cache.access_as cache ~owner:0 (line (round mod 8)));
    ignore (Cache.access_as cache ~owner:1 (line (64 + (round mod 8))))
  done;
  Alcotest.(check int) "owner 0 holds its quota" 2 (Cache.owner_lines cache ~owner:0);
  Alcotest.(check int) "owner 1 holds its quota" 2 (Cache.owner_lines cache ~owner:1)

let test_partition_protects_victim () =
  (* Owner 0 parks two lines and stops; owner 1 streams heavily.  Under
     plain LRU owner 0 would lose everything; under 2/2 partition its lines
     survive. *)
  let cache = Cache.create ~partition:[| 2; 2 |] part_geometry in
  ignore (Cache.access_as cache ~owner:0 0);
  ignore (Cache.access_as cache ~owner:0 64);
  for i = 0 to 99 do
    ignore (Cache.access_as cache ~owner:1 ((i + 10) * 64))
  done;
  Alcotest.(check bool) "line 0 survived" true (Cache.probe cache 0);
  Alcotest.(check bool) "line 64 survived" true (Cache.probe cache 64);
  (* Control: same traffic on an unpartitioned cache evicts them. *)
  let shared = Cache.create part_geometry in
  ignore (Cache.access_as shared ~owner:0 0);
  ignore (Cache.access_as shared ~owner:0 64);
  for i = 0 to 99 do
    ignore (Cache.access_as shared ~owner:1 ((i + 10) * 64))
  done;
  Alcotest.(check bool) "unpartitioned control loses the lines" false
    (Cache.probe shared 0)

let test_partition_under_quota_can_borrow () =
  (* With quotas 1/1 on 4 ways, spare capacity exists; an active owner can
     hold more than its quota until the other owner claims lines. *)
  let cache = Cache.create ~partition:[| 1; 1 |] part_geometry in
  for i = 0 to 3 do
    ignore (Cache.access_as cache ~owner:0 (i * 64))
  done;
  Alcotest.(check int) "borrows all ways while alone" 4
    (Cache.owner_lines cache ~owner:0);
  (* Owner 1 arrives: it must be able to claim a line (owner 0 is over
     quota). *)
  ignore (Cache.access_as cache ~owner:1 (100 * 64));
  Alcotest.(check int) "newcomer claims a way" 1 (Cache.owner_lines cache ~owner:1);
  Alcotest.(check int) "incumbent shrinks" 3 (Cache.owner_lines cache ~owner:0)

let test_partitioned_multicore_runs () =
  let offsets = Multi_core.default_offsets 2 in
  let spec name offset =
    { Multi_core.benchmark = Suite.find name; seed = Suite.seed_for name; offset }
  in
  let programs = [| spec "gamess" offsets.(0); spec "soplex" offsets.(1) |] in
  let shared =
    Multi_core.run (Multi_core.config baseline) ~programs
      ~trace_instructions:100_000
  in
  let partitioned =
    Multi_core.run
      (Multi_core.config ~llc_partition:[| 4; 4 |] baseline)
      ~programs ~trace_instructions:100_000
  in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "cycles positive" true (p.Multi_core.cycles > 0.0);
      ignore shared.Multi_core.programs.(i))
    partitioned.Multi_core.programs;
  Alcotest.(check bool) "partition too small raises" true
    (try
       ignore
         (Multi_core.run
            (Multi_core.config ~llc_partition:[| 8 |] baseline)
            ~programs ~trace_instructions:10_000);
       false
     with Invalid_argument _ -> true)

(* ---- Way_partition contention model ----------------------------------------- *)

let uniform_sdc ~assoc ~depth ~per_depth ~misses =
  let counters =
    List.init (assoc + 1) (fun i ->
        if i < depth then per_depth else if i = assoc then misses else 0.0)
  in
  Sdc.of_list ~assoc counters

let test_way_partition_contention () =
  let a = uniform_sdc ~assoc:8 ~depth:8 ~per_depth:10.0 ~misses:0.0 in
  let b = uniform_sdc ~assoc:8 ~depth:2 ~per_depth:10.0 ~misses:1.0 in
  let p = Contention.predict (Contention.Way_partition [| 4.0; 4.0 |]) [| a; b |] in
  (* a loses its hits deeper than 4 ways; b fits entirely in its quota. *)
  check_close 1e-9 "a extra" 40.0 p.Contention.extra_misses.(0);
  check_close 1e-9 "b extra" 0.0 p.Contention.extra_misses.(1);
  check_close 1e-9 "quota as ways" 4.0 p.Contention.effective_ways.(0);
  (* Independence: b's quota result does not depend on a's traffic. *)
  let heavy = uniform_sdc ~assoc:8 ~depth:8 ~per_depth:1000.0 ~misses:50.0 in
  let p2 = Contention.predict (Contention.Way_partition [| 4.0; 4.0 |]) [| heavy; b |] in
  check_close 1e-9 "partition isolates b" p.Contention.shared_misses.(1)
    p2.Contention.shared_misses.(1)

let test_way_partition_string_roundtrip () =
  let m = Contention.Way_partition [| 2.0; 6.0 |] in
  Alcotest.(check bool) "roundtrip" true
    (Contention.of_string (Contention.model_name m) = m)

(* ---- static model -------------------------------------------------------------- *)

let stationary_profile ?(name = "s") ~cpi ~stall_per_miss ~accesses ~miss_fraction
    ~hit_depth () =
  let misses = accesses *. miss_fraction in
  let hits = accesses -. misses in
  let make_interval _ =
    let sdc = Sdc.create ~assoc:8 in
    let record n depth =
      for _ = 1 to int_of_float n do Sdc.record sdc ~depth done
    in
    record hits hit_depth;
    record misses 9;
    { Profile.instructions = 1_000; cycles = cpi *. 1000.0;
      memory_stall_cycles = stall_per_miss *. misses;
      llc_accesses = accesses; llc_misses = misses; sdc }
  in
  Profile.make ~benchmark:name ~interval_instructions:1_000 ~llc_assoc:8
    (Array.init 10 make_interval)

let test_static_single_program () =
  let p = stationary_profile ~cpi:1.0 ~stall_per_miss:50.0 ~accesses:100.0
      ~miss_fraction:0.1 ~hit_depth:4 () in
  let r = Static_model.predict Static_model.default_params [| p |] in
  check_close 1e-6 "slowdown 1" 1.0 r.Model.programs.(0).Model.slowdown

let test_static_matches_mppm_on_stationary () =
  (* With no phase behaviour the static solver and the iterative model must
     agree: MPPM's extra machinery only matters for time-varying
     workloads. *)
  let inputs () =
    [|
      stationary_profile ~name:"a" ~cpi:1.0 ~stall_per_miss:60.0 ~accesses:100.0
        ~miss_fraction:0.1 ~hit_depth:6 ();
      stationary_profile ~name:"b" ~cpi:1.0 ~stall_per_miss:60.0 ~accesses:100.0
        ~miss_fraction:0.1 ~hit_depth:6 ();
    |]
  in
  let static = Static_model.predict Static_model.default_params (inputs ()) in
  let iterative =
    Model.predict_profiles (Model.default_params ~trace_instructions:10_000)
      (inputs ())
  in
  check_close 2e-2 "same slowdown" iterative.Model.programs.(0).Model.slowdown
    static.Model.programs.(0).Model.slowdown;
  check_close 2e-2 "same stp" iterative.Model.stp static.Model.stp

let test_static_converges () =
  let p () = stationary_profile ~cpi:0.8 ~stall_per_miss:100.0 ~accesses:200.0
      ~miss_fraction:0.2 ~hit_depth:7 () in
  let r = Static_model.predict Static_model.default_params [| p (); p (); p () |] in
  Alcotest.(check bool) "converged before the cap" true
    (r.Model.iterations < Static_model.default_params.Static_model.max_iterations);
  Array.iter
    (fun prog -> Alcotest.(check bool) "slowdown sane" true
        (prog.Model.slowdown >= 1.0 && prog.Model.slowdown < 50.0))
    r.Model.programs

let test_static_validations () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "no programs" true
    (invalid (fun () -> Static_model.predict Static_model.default_params [||]));
  Alcotest.(check bool) "bad damping" true
    (invalid (fun () ->
         Static_model.predict
           { Static_model.default_params with Static_model.damping = 1.0 }
           [| stationary_profile ~cpi:1.0 ~stall_per_miss:1.0 ~accesses:1.0
                ~miss_fraction:0.5 ~hit_depth:1 () |]))

(* ---- memory bandwidth ------------------------------------------------------------ *)

module Memory_channel = Mppm_simcore.Memory_channel

let test_channel_basic () =
  let ch = Memory_channel.create ~transfer_cycles:10.0 in
  check_close 1e-9 "idle: no delay" 0.0 (Memory_channel.request ch ~now:100.0);
  (* Second request 4 cycles later queues behind the 10-cycle transfer. *)
  check_close 1e-9 "queued behind" 6.0 (Memory_channel.request ch ~now:104.0);
  (* Far in the future: idle again. *)
  check_close 1e-9 "idle again" 0.0 (Memory_channel.request ch ~now:1000.0);
  Alcotest.(check int) "transfers" 3 (Memory_channel.transfers ch);
  check_close 1e-9 "total queueing" 6.0 (Memory_channel.total_queueing ch);
  Memory_channel.reset ch;
  Alcotest.(check int) "reset" 0 (Memory_channel.transfers ch)

let test_channel_saturation () =
  let ch = Memory_channel.create ~transfer_cycles:10.0 in
  (* Requests every cycle: queueing grows unboundedly. *)
  let last = ref 0.0 in
  for i = 0 to 99 do
    last := Memory_channel.request ch ~now:(float_of_int i)
  done;
  Alcotest.(check bool) "deep queue" true (!last > 800.0);
  Alcotest.(check bool) "utilization ~1" true
    (Memory_channel.utilization ch ~now:1000.0 > 0.9)

let test_bandwidth_slows_memory_bound () =
  (* lbm misses arrive roughly every ~55 cycles; a channel slower than
     that (80 cycles/line) is over-subscribed even by one program, so the
     isolated run must slow down visibly; a fast channel (4 cycles/line)
     must be nearly free. *)
  let run bandwidth =
    (Single_core.run
       (Single_core.config ?bandwidth baseline)
       ~benchmark:(Suite.find "lbm") ~seed:(Suite.seed_for "lbm")
       ~instructions:200_000)
      .Single_core.cycles
  in
  let unlimited = run None in
  Alcotest.(check bool) "slow channel adds self-queueing" true
    (run (Some 80.0) > 1.2 *. unlimited);
  Alcotest.(check bool) "fast channel nearly free" true
    (run (Some 4.0) < 1.05 *. unlimited)

let test_bandwidth_counter_two_run_agree () =
  let cfg = Single_core.config ~bandwidth:16.0 baseline in
  let counter =
    (Single_core.run cfg ~benchmark:(Suite.find "lbm")
       ~seed:(Suite.seed_for "lbm") ~instructions:100_000)
      .Single_core.memory_cpi
  in
  let two_run =
    Single_core.memory_cpi_two_run cfg ~benchmark:(Suite.find "lbm")
      ~seed:(Suite.seed_for "lbm") ~instructions:100_000
  in
  check_close 1e-6 "methods agree with a channel" two_run counter

let test_shared_channel_creates_contention () =
  (* Two heavy streams hardly interact in the LLC (both stream), but a
     narrow shared channel makes them slow each other down. *)
  let offsets = Multi_core.default_offsets 2 in
  let spec name offset =
    { Multi_core.benchmark = Suite.find name; seed = Suite.seed_for name; offset }
  in
  let programs = [| spec "lbm" offsets.(0); spec "GemsFDTD" offsets.(1) |] in
  let trace = 200_000 in
  let cycles_of cfg =
    Array.map
      (fun p -> p.Multi_core.cycles)
      (Multi_core.run cfg ~programs ~trace_instructions:trace).Multi_core.programs
  in
  let unshared = cycles_of (Multi_core.config baseline) in
  let shared = cycles_of (Multi_core.config ~bandwidth:48.0 baseline) in
  (* Against own-channel isolated runs to isolate the sharing effect. *)
  let isolated name =
    (Single_core.run
       (Single_core.config ~bandwidth:48.0 baseline)
       ~benchmark:(Suite.find name) ~seed:(Suite.seed_for name)
       ~instructions:trace)
      .Single_core.cycles
  in
  let slowdown_0 = shared.(0) /. isolated "lbm" in
  Alcotest.(check bool) "bandwidth sharing slows lbm" true (slowdown_0 > 1.1);
  Alcotest.(check bool) "more than pure LLC sharing did" true
    (shared.(0) > unshared.(0))

let test_model_bandwidth_term () =
  let p () = stationary_profile ~cpi:1.0 ~stall_per_miss:80.0 ~accesses:100.0
      ~miss_fraction:0.5 ~hit_depth:2 () in
  let base = Model.default_params ~trace_instructions:10_000 in
  let without = Model.predict_profiles base [| p (); p (); p (); p () |] in
  let with_bw =
    Model.predict_profiles
      { base with
        Model.bandwidth =
          Some { Model.transfer_cycles = 16.0; exposed_fraction = 0.5 } }
      [| p (); p (); p (); p () |]
  in
  Alcotest.(check bool) "queueing term raises slowdowns" true
    (with_bw.Model.programs.(0).Model.slowdown
    > without.Model.programs.(0).Model.slowdown);
  Alcotest.(check bool) "bad bandwidth rejected" true
    (try
       ignore
         (Model.predict_profiles
            { base with
              Model.bandwidth =
                Some { Model.transfer_cycles = 0.0; exposed_fraction = 0.5 } }
            [| p () |]);
       false
     with Invalid_argument _ -> true)

(* ---- heterogeneous cores ----------------------------------------------------- *)

let test_compute_scale_exact_decomposition () =
  (* A 2x-slower core doubles exactly the non-memory-stall cycles. *)
  let cfg = Single_core.config baseline in
  let big = Single_core.run cfg ~benchmark:(Suite.find "soplex")
      ~seed:(Suite.seed_for "soplex") ~instructions:100_000 in
  let little = Single_core.run ~compute_scale:2.0 cfg
      ~benchmark:(Suite.find "soplex") ~seed:(Suite.seed_for "soplex")
      ~instructions:100_000 in
  check_close 1e-6 "memory stall invariant" big.Single_core.memory_stall_cycles
    little.Single_core.memory_stall_cycles;
  check_close 1e-3 "compute cycles doubled"
    ((2.0 *. (big.Single_core.cycles -. big.Single_core.memory_stall_cycles))
    +. big.Single_core.memory_stall_cycles)
    little.Single_core.cycles

let test_compute_scale_profile_matches_transform () =
  (* Profiling on a little core equals the per-interval transform the
     heterogeneous example applies to big-core profiles. *)
  let cfg = Single_core.config baseline in
  let args b = (b, Suite.seed_for "gamess") in
  let benchmark, seed = args (Suite.find "gamess") in
  let big = Single_core.profile cfg ~benchmark ~seed ~trace_instructions:100_000
      ~interval_instructions:10_000 in
  let little = Single_core.profile ~compute_scale:1.7 cfg ~benchmark ~seed
      ~trace_instructions:100_000 ~interval_instructions:10_000 in
  Array.iteri
    (fun i iv ->
      let jv = little.Profile.intervals.(i) in
      check_close 1e-6 "interval transform"
        ((1.7 *. (iv.Profile.cycles -. iv.Profile.memory_stall_cycles))
        +. iv.Profile.memory_stall_cycles)
        jv.Profile.cycles;
      check_close 1e-6 "stall invariant" iv.Profile.memory_stall_cycles
        jv.Profile.memory_stall_cycles)
    big.Profile.intervals

let test_hetero_multicore_single_program () =
  let offsets = Multi_core.default_offsets 1 in
  let programs =
    [| { Multi_core.benchmark = Suite.find "gobmk";
         seed = Suite.seed_for "gobmk"; offset = offsets.(0) } |]
  in
  let multi =
    Multi_core.run ~compute_scales:[| 1.5 |] (Multi_core.config baseline)
      ~programs ~trace_instructions:50_000
  in
  let single =
    Single_core.run ~compute_scale:1.5 (Single_core.config baseline)
      ~benchmark:(Suite.find "gobmk") ~seed:(Suite.seed_for "gobmk")
      ~instructions:50_000
  in
  check_close 1e-6 "hetero 1-core = scaled single-core"
    single.Single_core.cycles multi.Multi_core.programs.(0).Multi_core.cycles

let test_hetero_model_tracks_hetero_sim () =
  (* MPPM fed little-core profiles must track the heterogeneous detailed
     simulation. *)
  let trace = 200_000 in
  let interval = trace / 50 in
  let cfg = Single_core.config baseline in
  let scales = [| 1.0; 2.0 |] in
  let names = [| "gamess"; "hmmer" |] in
  let profiles =
    Array.mapi
      (fun i name ->
        Single_core.profile ~compute_scale:scales.(i) cfg
          ~benchmark:(Suite.find name) ~seed:(Suite.seed_for name)
          ~trace_instructions:trace ~interval_instructions:interval)
      names
  in
  let predicted =
    Model.predict_profiles (Model.default_params ~trace_instructions:trace)
      profiles
  in
  let offsets = Multi_core.default_offsets 2 in
  let detail =
    Multi_core.run ~compute_scales:scales (Multi_core.config baseline)
      ~programs:
        (Array.mapi
           (fun i name ->
             { Multi_core.benchmark = Suite.find name;
               seed = Suite.seed_for name; offset = offsets.(i) })
           names)
      ~trace_instructions:trace
  in
  let cpi_single = Array.map Profile.cpi profiles in
  let cpi_multi =
    Array.map
      (fun p -> p.Multi_core.multicore_cpi)
      detail.Multi_core.programs
  in
  let stp = Mppm_core.Metrics.stp ~cpi_single ~cpi_multi in
  Alcotest.(check bool) "hetero STP within 15%" true
    (abs_float (predicted.Model.stp -. stp) /. stp < 0.15)

(* ---- co-phase matrix -------------------------------------------------------------- *)

let cophase_config = Co_phase.config ~window_instructions:50_000 baseline

let spec name offset =
  { Co_phase.benchmark = Suite.find name; seed = Suite.seed_for name; offset }

let test_cophase_matrix_size () =
  let offsets = Multi_core.default_offsets 2 in
  (* bzip2 has 2 phases, gcc has 2: at most 4 co-phases can ever exist. *)
  let t =
    Co_phase.create cophase_config
      ~programs:[| spec "bzip2" offsets.(0); spec "gcc" offsets.(1) |]
  in
  let r = Co_phase.predict t ~trace_instructions:200_000 in
  Alcotest.(check bool) "at most 4 co-phases" true (r.Co_phase.co_phases_measured <= 4);
  Alcotest.(check bool) "at least 2 co-phases visited" true
    (r.Co_phase.co_phases_measured >= 2);
  Alcotest.(check int) "matrix size agrees" r.Co_phase.co_phases_measured
    (Co_phase.matrix_size t)

let test_cophase_single_phase_mix () =
  let offsets = Multi_core.default_offsets 2 in
  let t =
    Co_phase.create cophase_config
      ~programs:[| spec "gamess" offsets.(0); spec "soplex" offsets.(1) |]
  in
  let r = Co_phase.predict t ~trace_instructions:100_000 in
  Alcotest.(check int) "one co-phase" 1 r.Co_phase.co_phases_measured;
  Array.iter
    (fun cpi -> Alcotest.(check bool) "cpi positive" true (cpi > 0.0))
    r.Co_phase.cpi_multi

let test_cophase_matrix_reuse () =
  let offsets = Multi_core.default_offsets 2 in
  let t =
    Co_phase.create cophase_config
      ~programs:[| spec "bzip2" offsets.(0); spec "gcc" offsets.(1) |]
  in
  let r1 = Co_phase.predict t ~trace_instructions:100_000 in
  let cost1 = r1.Co_phase.detailed_instructions in
  let r2 = Co_phase.predict t ~trace_instructions:200_000 in
  (* A longer walk may touch co-phases the shorter one missed, but mostly
     reuses the matrix: cost must grow sub-linearly (here: by at most the
     unseen entries). *)
  Alcotest.(check bool) "matrix reused" true
    (r2.Co_phase.detailed_instructions <= cost1 * 4);
  ignore r2

let test_cophase_tracks_detailed () =
  (* Co-phase rates are measured over warm windows (steady state), so the
     reconstruction should track a detailed reference long enough for
     cold-start effects to amortize. *)
  let offsets = Multi_core.default_offsets 2 in
  let names = [| "gamess"; "soplex" |] in
  let trace = 1_000_000 in
  let t =
    Co_phase.create
      (Co_phase.config ~window_instructions:100_000 baseline)
      ~programs:[| spec names.(0) offsets.(0); spec names.(1) offsets.(1) |]
  in
  let predicted = Co_phase.predict t ~trace_instructions:trace in
  let detailed =
    Multi_core.run (Multi_core.config baseline)
      ~programs:
        (Array.mapi
           (fun i name ->
             { Multi_core.benchmark = Suite.find name;
               seed = Suite.seed_for name; offset = offsets.(i) })
           names)
      ~trace_instructions:trace
  in
  Array.iteri
    (fun i p ->
      let measured = p.Multi_core.multicore_cpi in
      let err =
        abs_float (predicted.Co_phase.cpi_multi.(i) -. measured) /. measured
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s within 10%%" names.(i))
        true (err < 0.10))
    detailed.Multi_core.programs

let tests =
  [
    ( "extensions.partitioned_cache",
      [
        Alcotest.test_case "validation" `Quick test_partition_validation;
        Alcotest.test_case "steady-state quotas" `Quick test_partition_steady_state_quotas;
        Alcotest.test_case "protects the victim" `Quick test_partition_protects_victim;
        Alcotest.test_case "borrowing under quota" `Quick test_partition_under_quota_can_borrow;
        Alcotest.test_case "multicore integration" `Quick test_partitioned_multicore_runs;
      ] );
    ( "extensions.way_partition_model",
      [
        Alcotest.test_case "quota semantics" `Quick test_way_partition_contention;
        Alcotest.test_case "string roundtrip" `Quick test_way_partition_string_roundtrip;
      ] );
    ( "extensions.static_model",
      [
        Alcotest.test_case "single program" `Quick test_static_single_program;
        Alcotest.test_case "matches MPPM on stationary inputs" `Quick
          test_static_matches_mppm_on_stationary;
        Alcotest.test_case "converges" `Quick test_static_converges;
        Alcotest.test_case "validations" `Quick test_static_validations;
      ] );
    ( "extensions.heterogeneous",
      [
        Alcotest.test_case "exact cycle decomposition" `Quick
          test_compute_scale_exact_decomposition;
        Alcotest.test_case "profile matches transform" `Quick
          test_compute_scale_profile_matches_transform;
        Alcotest.test_case "1-core heterogeneous" `Quick
          test_hetero_multicore_single_program;
        Alcotest.test_case "model tracks hetero sim" `Slow
          test_hetero_model_tracks_hetero_sim;
      ] );
    ( "extensions.bandwidth",
      [
        Alcotest.test_case "channel basics" `Quick test_channel_basic;
        Alcotest.test_case "channel saturation" `Quick test_channel_saturation;
        Alcotest.test_case "self-queueing" `Quick test_bandwidth_slows_memory_bound;
        Alcotest.test_case "counter = two-run with channel" `Quick
          test_bandwidth_counter_two_run_agree;
        Alcotest.test_case "shared channel contention" `Slow
          test_shared_channel_creates_contention;
        Alcotest.test_case "model queueing term" `Quick test_model_bandwidth_term;
      ] );
    ( "extensions.cophase",
      [
        Alcotest.test_case "matrix size" `Slow test_cophase_matrix_size;
        Alcotest.test_case "single-phase mix" `Quick test_cophase_single_phase_mix;
        Alcotest.test_case "matrix reuse" `Slow test_cophase_matrix_reuse;
        Alcotest.test_case "tracks detailed simulation" `Slow test_cophase_tracks_detailed;
      ] );
  ]
