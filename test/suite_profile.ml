(* Tests for mppm_profile: window aggregation (the heart of MPPM's
   per-iteration arithmetic), associativity derivation and serialization. *)

module Profile = Mppm_profile.Profile
module Sdc = Mppm_cache.Sdc

let check_close eps = Alcotest.(check (float eps))

(* A hand-built profile with easily checkable per-interval values:
   interval i has cycles 100*(i+1), stall 10*(i+1), i misses. *)
let assoc = 4

let make_interval i =
  let sdc = Sdc.create ~assoc in
  for _ = 1 to 20 do
    Sdc.record sdc ~depth:1
  done;
  for _ = 1 to i do
    Sdc.record sdc ~depth:(assoc + 1)
  done;
  {
    Profile.instructions = 1_000;
    cycles = 100.0 *. float_of_int (i + 1);
    memory_stall_cycles = 10.0 *. float_of_int (i + 1);
    llc_accesses = float_of_int (20 + i);
    llc_misses = float_of_int i;
    sdc;
  }

let sample_profile () =
  Profile.make ~benchmark:"synthetic" ~interval_instructions:1_000 ~llc_assoc:assoc
    (Array.init 5 make_interval)

let test_totals () =
  let p = sample_profile () in
  Alcotest.(check int) "instructions" 5_000 (Profile.total_instructions p);
  check_close 1e-9 "cycles" 1500.0 (Profile.total_cycles p);
  check_close 1e-9 "cpi" 0.3 (Profile.cpi p);
  check_close 1e-9 "memory cpi" 0.03 (Profile.memory_cpi p);
  check_close 1e-9 "memory fraction" 0.1 (Profile.memory_cpi_fraction p);
  check_close 1e-9 "mpki" (10.0 *. 1000.0 /. 5000.0) (Profile.llc_mpki p)

let test_make_validations () =
  let iv = make_interval 0 in
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true
    (invalid (fun () -> Profile.make ~benchmark:"x" ~interval_instructions:10 ~llc_assoc:assoc [||]));
  Alcotest.(check bool) "assoc mismatch" true
    (invalid (fun () ->
         Profile.make ~benchmark:"x" ~interval_instructions:10 ~llc_assoc:8 [| iv |]))

let test_window_full_trace () =
  let p = sample_profile () in
  let w = Profile.window p ~start:0.0 ~count:5000.0 in
  check_close 1e-6 "instructions" 5000.0 w.Profile.w_instructions;
  check_close 1e-6 "cycles" 1500.0 w.Profile.w_cycles;
  check_close 1e-6 "stall" 150.0 w.Profile.w_memory_stall_cycles;
  check_close 1e-6 "misses" 10.0 w.Profile.w_llc_misses;
  check_close 1e-6 "sdc misses agree" 10.0 (Sdc.misses w.Profile.w_sdc);
  check_close 1e-9 "window cpi" 0.3 (Profile.window_cpi w)

let test_window_single_interval () =
  let p = sample_profile () in
  let w = Profile.window p ~start:2000.0 ~count:1000.0 in
  check_close 1e-6 "third interval cycles" 300.0 w.Profile.w_cycles;
  check_close 1e-6 "third interval misses" 2.0 w.Profile.w_llc_misses

let test_window_fractional () =
  let p = sample_profile () in
  (* Half of interval 0 plus half of interval 1. *)
  let w = Profile.window p ~start:500.0 ~count:1000.0 in
  check_close 1e-6 "cycles" ((0.5 *. 100.0) +. (0.5 *. 200.0)) w.Profile.w_cycles;
  check_close 1e-6 "misses" 0.5 w.Profile.w_llc_misses;
  check_close 1e-6 "instructions" 1000.0 w.Profile.w_instructions

let test_window_additivity () =
  let p = sample_profile () in
  let whole = Profile.window p ~start:700.0 ~count:3100.0 in
  let first = Profile.window p ~start:700.0 ~count:1300.0 in
  let second = Profile.window p ~start:2000.0 ~count:1800.0 in
  check_close 1e-6 "cycles add"
    (first.Profile.w_cycles +. second.Profile.w_cycles)
    whole.Profile.w_cycles;
  check_close 1e-6 "misses add"
    (first.Profile.w_llc_misses +. second.Profile.w_llc_misses)
    whole.Profile.w_llc_misses

let test_window_wraps () =
  let p = sample_profile () in
  (* Start in the last interval and wrap into the first. *)
  let w = Profile.window p ~start:4500.0 ~count:1000.0 in
  check_close 1e-6 "wrap cycles" ((0.5 *. 500.0) +. (0.5 *. 100.0)) w.Profile.w_cycles;
  (* Start beyond one full trace behaves modulo. *)
  let w2 = Profile.window p ~start:(4500.0 +. 5000.0) ~count:1000.0 in
  check_close 1e-6 "modulo start" w.Profile.w_cycles w2.Profile.w_cycles

let test_window_multiple_laps () =
  let p = sample_profile () in
  let w = Profile.window p ~start:0.0 ~count:10_000.0 in
  check_close 1e-5 "two laps" 3000.0 w.Profile.w_cycles

let test_window_validations () =
  let p = sample_profile () in
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero count" true
    (invalid (fun () -> Profile.window p ~start:0.0 ~count:0.0));
  Alcotest.(check bool) "negative start" true
    (invalid (fun () -> Profile.window p ~start:(-1.0) ~count:10.0))

let test_reduce_associativity () =
  let p = sample_profile () in
  let r = Profile.reduce_associativity p ~assoc:2 in
  Alcotest.(check int) "assoc" 2 r.Profile.llc_assoc;
  Array.iteri
    (fun i iv ->
      (* No hits deeper than depth 1 in the synthetic SDCs, so the fold
         does not create new misses. *)
      check_close 1e-9 "misses re-derived from SDC" (float_of_int i)
        iv.Profile.llc_misses)
    r.Profile.intervals;
  Alcotest.(check bool) "cannot increase" true
    (try ignore (Profile.reduce_associativity p ~assoc:8); false
     with Invalid_argument _ -> true)

let test_save_load_roundtrip () =
  (* Deliberately fractional values: window scaling and associativity
     folding make real SDC counters and miss counts non-integer, and
     those must survive the disk round-trip exactly. *)
  let fractional_interval i =
    let k = float_of_int (i + 1) in
    {
      Profile.instructions = 1_000;
      cycles = 110133.011905 *. k /. 3.0;
      memory_stall_cycles = 103919.047619 *. k /. 7.0;
      llc_accesses = 645.2861652717584 *. k;
      llc_misses = 0.07 *. k;
      sdc =
        Sdc.of_list ~assoc
          [ 20.25 *. k; k /. 3.0; 0.1 *. k; 1e-3 *. k; 0.07 *. k ];
    }
  in
  let p =
    Profile.make ~benchmark:"synthetic" ~interval_instructions:1_000
      ~llc_assoc:assoc
      (Array.init 5 fractional_interval)
  in
  let path = Filename.temp_file "mppm-test" ".prof" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile.save p path;
      let q = Profile.load path in
      Alcotest.(check string) "benchmark" p.Profile.benchmark q.Profile.benchmark;
      Alcotest.(check int) "interval len" p.Profile.interval_instructions
        q.Profile.interval_instructions;
      Alcotest.(check int) "assoc" p.Profile.llc_assoc q.Profile.llc_assoc;
      Alcotest.(check int) "intervals" (Array.length p.Profile.intervals)
        (Array.length q.Profile.intervals);
      (* Round-trip must be exact: a cache hit and a recompute have to be
         bit-for-bit interchangeable (traces are golden-tested on it). *)
      let bits = Int64.bits_of_float in
      Array.iteri
        (fun i iv ->
          let jv = q.Profile.intervals.(i) in
          Alcotest.(check int64) "cycles" (bits iv.Profile.cycles)
            (bits jv.Profile.cycles);
          Alcotest.(check int64) "stall"
            (bits iv.Profile.memory_stall_cycles)
            (bits jv.Profile.memory_stall_cycles);
          Alcotest.(check (list int64)) "sdc"
            (List.map bits (Sdc.to_list iv.Profile.sdc))
            (List.map bits (Sdc.to_list jv.Profile.sdc)))
        p.Profile.intervals)

let test_load_rejects_garbage () =
  let path = Filename.temp_file "mppm-test" ".prof" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a profile\n";
      close_out oc;
      Alcotest.(check bool) "bad header fails" true
        (try ignore (Profile.load path); false with Failure _ -> true))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"window instruction count is exact" ~count:200
      (pair (float_range 0.0 20_000.0) (float_range 1.0 8_000.0))
      (fun (start, count) ->
        let p = sample_profile () in
        let w = Profile.window p ~start ~count in
        abs_float (w.Profile.w_instructions -. count) < 1e-6 *. count +. 1e-6);
    Test.make ~name:"window cycles positive and bounded" ~count:200
      (pair (float_range 0.0 5_000.0) (float_range 1.0 5_000.0))
      (fun (start, count) ->
        let p = sample_profile () in
        let w = Profile.window p ~start ~count in
        (* Bounded by count * max interval CPI (0.5). *)
        w.Profile.w_cycles > 0.0 && w.Profile.w_cycles <= (0.5 *. count) +. 1e-6);
  ]

let tests =
  [
    ( "profile.core",
      [
        Alcotest.test_case "totals" `Quick test_totals;
        Alcotest.test_case "make validations" `Quick test_make_validations;
        Alcotest.test_case "window full trace" `Quick test_window_full_trace;
        Alcotest.test_case "window single interval" `Quick test_window_single_interval;
        Alcotest.test_case "window fractional" `Quick test_window_fractional;
        Alcotest.test_case "window additivity" `Quick test_window_additivity;
        Alcotest.test_case "window wraps" `Quick test_window_wraps;
        Alcotest.test_case "window multiple laps" `Quick test_window_multiple_laps;
        Alcotest.test_case "window validations" `Quick test_window_validations;
        Alcotest.test_case "reduce associativity" `Quick test_reduce_associativity;
        Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
        Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
      ] );
    ("profile.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
