(* Tests for mppm_simcore: the core timing model, the engine, single-core
   simulation and profiling — including the key cross-validation that the
   counter-based memory CPI equals the two-run (perfect-vs-real LLC)
   method. *)

module Hierarchy = Mppm_cache.Hierarchy
module Geometry = Mppm_cache.Geometry
module Configs = Mppm_cache.Configs
module Core_model = Mppm_simcore.Core_model
module Core_engine = Mppm_simcore.Core_engine
module Single_core = Mppm_simcore.Single_core
module Generator = Mppm_trace.Generator
module Benchmark = Mppm_trace.Benchmark
module Suite = Mppm_trace.Suite
module Profile = Mppm_profile.Profile

let check_close eps = Alcotest.(check (float eps))

let baseline = Configs.baseline ()

let result ~latency ~hit_level : Hierarchy.result =
  { Hierarchy.latency; hit_level; llc_outcome = None }

(* ---- Core_model --------------------------------------------------------- *)

let test_stall_l1_free () =
  check_close 1e-9 "L1 hits are free" 0.0
    (Core_model.data_stall Core_model.default ~mlp:1.0
       (result ~latency:1 ~hit_level:Hierarchy.L1))

let test_stall_levels () =
  let p = Core_model.default in
  check_close 1e-9 "L2" (p.Core_model.l2_exposure *. 9.0)
    (Core_model.data_stall p ~mlp:1.0 (result ~latency:10 ~hit_level:Hierarchy.L2));
  check_close 1e-9 "LLC" (p.Core_model.llc_exposure *. 15.0)
    (Core_model.data_stall p ~mlp:1.0 (result ~latency:16 ~hit_level:Hierarchy.Llc));
  check_close 1e-9 "memory" (p.Core_model.memory_exposure *. 215.0)
    (Core_model.data_stall p ~mlp:1.0 (result ~latency:216 ~hit_level:Hierarchy.Memory))

let test_stall_mlp_divides_offcore () =
  let p = Core_model.default in
  let at mlp =
    Core_model.data_stall p ~mlp (result ~latency:216 ~hit_level:Hierarchy.Memory)
  in
  check_close 1e-9 "mlp halves stall" (at 1.0 /. 2.0) (at 2.0);
  (* ...but not L2 stalls, which are not off-core. *)
  let l2 mlp =
    Core_model.data_stall p ~mlp (result ~latency:10 ~hit_level:Hierarchy.L2)
  in
  check_close 1e-9 "L2 unaffected by mlp" (l2 1.0) (l2 4.0)

let test_llc_miss_extra_is_difference () =
  let p = Core_model.default in
  let mlp = 1.7 in
  let memory_stall =
    Core_model.data_stall p ~mlp (result ~latency:216 ~hit_level:Hierarchy.Memory)
  in
  let llc_hit_stall =
    Core_model.data_stall p ~mlp (result ~latency:16 ~hit_level:Hierarchy.Llc)
  in
  check_close 1e-9 "extra = memory - hit"
    (memory_stall -. llc_hit_stall)
    (Core_model.llc_miss_extra_stall p ~config:baseline ~mlp)

let test_fetch_stall () =
  let p = Core_model.default in
  check_close 1e-9 "fetch L1 free" 0.0
    (Core_model.fetch_stall p (result ~latency:1 ~hit_level:Hierarchy.L1));
  check_close 1e-9 "fetch memory"
    (p.Core_model.fetch_exposure *. 215.0)
    (Core_model.fetch_stall p (result ~latency:216 ~hit_level:Hierarchy.Memory));
  check_close 1e-9 "fetch extra"
    (p.Core_model.fetch_exposure *. 200.0)
    (Core_model.fetch_llc_miss_extra_stall p ~config:baseline)

(* ---- Single_core ---------------------------------------------------------- *)

let bench name = Suite.find name
let seed name = Suite.seed_for name

let test_run_totals_consistent () =
  let cfg = Single_core.config baseline in
  let t = Single_core.run cfg ~benchmark:(bench "soplex") ~seed:(seed "soplex")
      ~instructions:100_000 in
  Alcotest.(check int) "instructions" 100_000 t.Single_core.instructions;
  check_close 1e-9 "cpi" (t.Single_core.cycles /. 100_000.0) t.Single_core.cpi;
  check_close 1e-9 "memory cpi"
    (t.Single_core.memory_stall_cycles /. 100_000.0)
    t.Single_core.memory_cpi;
  Alcotest.(check bool) "cycles at least base work" true
    (t.Single_core.cycles > 0.3 *. 100_000.0);
  Alcotest.(check bool) "misses <= accesses" true
    (t.Single_core.llc_misses <= t.Single_core.llc_accesses)

let test_run_deterministic () =
  let cfg = Single_core.config baseline in
  let go () = Single_core.run cfg ~benchmark:(bench "astar") ~seed:7 ~instructions:50_000 in
  Alcotest.(check bool) "identical totals" true (go () = go ())

let test_perfect_llc_no_misses () =
  let cfg = Single_core.config ~perfect_llc:true baseline in
  let t = Single_core.run cfg ~benchmark:(bench "mcf") ~seed:(seed "mcf")
      ~instructions:100_000 in
  Alcotest.(check int) "no LLC misses" 0 t.Single_core.llc_misses;
  check_close 1e-9 "no memory CPI" 0.0 t.Single_core.memory_cpi

let test_perfect_llc_is_faster () =
  let real = Single_core.run (Single_core.config baseline)
      ~benchmark:(bench "mcf") ~seed:(seed "mcf") ~instructions:100_000 in
  let perfect = Single_core.run (Single_core.config ~perfect_llc:true baseline)
      ~benchmark:(bench "mcf") ~seed:(seed "mcf") ~instructions:100_000 in
  Alcotest.(check bool) "perfect LLC strictly faster on mcf" true
    (perfect.Single_core.cycles < real.Single_core.cycles)

let test_memory_cpi_methods_agree () =
  (* The Eyerman-style counter and the paper's two-run method must agree:
     the streams are deterministic and only LLC-miss stalls differ. *)
  let cfg = Single_core.config baseline in
  List.iter
    (fun name ->
      let counter =
        (Single_core.run cfg ~benchmark:(bench name) ~seed:(seed name)
           ~instructions:200_000)
          .Single_core.memory_cpi
      in
      let two_run =
        Single_core.memory_cpi_two_run cfg ~benchmark:(bench name)
          ~seed:(seed name) ~instructions:200_000
      in
      check_close 1e-6 (name ^ ": methods agree") two_run counter)
    [ "mcf"; "hmmer"; "gamess"; "lbm" ]

let test_profile_shape () =
  let cfg = Single_core.config baseline in
  let p = Single_core.profile cfg ~benchmark:(bench "gamess") ~seed:(seed "gamess")
      ~trace_instructions:100_000 ~interval_instructions:10_000 in
  Alcotest.(check int) "intervals" 10 (Array.length p.Profile.intervals);
  Alcotest.(check int) "total instructions" 100_000 (Profile.total_instructions p);
  Array.iter
    (fun iv ->
      Alcotest.(check int) "interval length" 10_000 iv.Profile.instructions;
      Alcotest.(check bool) "cycles positive" true (iv.Profile.cycles > 0.0);
      check_close 1e-6 "SDC accesses = llc accesses" iv.Profile.llc_accesses
        (Mppm_cache.Sdc.accesses iv.Profile.sdc);
      check_close 1e-6 "SDC misses = llc misses" iv.Profile.llc_misses
        (Mppm_cache.Sdc.misses iv.Profile.sdc))
    p.Profile.intervals

let test_profile_matches_run () =
  (* Profiling must not perturb the simulation: totals equal a plain run. *)
  let cfg = Single_core.config baseline in
  let p = Single_core.profile cfg ~benchmark:(bench "soplex") ~seed:(seed "soplex")
      ~trace_instructions:100_000 ~interval_instructions:10_000 in
  let t = Single_core.run cfg ~benchmark:(bench "soplex") ~seed:(seed "soplex")
      ~instructions:100_000 in
  check_close 1e-6 "same cycles" t.Single_core.cycles (Profile.total_cycles p);
  check_close 1e-9 "same cpi" t.Single_core.cpi (Profile.cpi p);
  check_close 1e-6 "same memory cpi" t.Single_core.memory_cpi (Profile.memory_cpi p)

let test_profile_validations () =
  let cfg = Single_core.config baseline in
  Alcotest.(check bool) "non-divisible raises" true
    (try
       ignore
         (Single_core.profile cfg ~benchmark:(bench "mcf") ~seed:1
            ~trace_instructions:100_000 ~interval_instructions:30_000);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "perfect-LLC profile raises" true
    (try
       ignore
         (Single_core.profile
            (Single_core.config ~perfect_llc:true baseline)
            ~benchmark:(bench "mcf") ~seed:1 ~trace_instructions:100_000
            ~interval_instructions:10_000);
       false
     with Invalid_argument _ -> true)

let test_compute_bound_has_low_memory_cpi () =
  (* Long enough runs that cold misses do not dominate. *)
  let cfg = Single_core.config baseline in
  let t = Single_core.run cfg ~benchmark:(bench "hmmer") ~seed:(seed "hmmer")
      ~instructions:1_000_000 in
  Alcotest.(check bool) "hmmer memory CPI small" true
    (t.Single_core.memory_cpi < 0.2 *. t.Single_core.cpi);
  let m = Single_core.run cfg ~benchmark:(bench "mcf") ~seed:(seed "mcf")
      ~instructions:200_000 in
  Alcotest.(check bool) "mcf memory CPI dominates" true
    (m.Single_core.memory_cpi > 0.5 *. m.Single_core.cpi)

let test_llc_size_monotonicity () =
  (* A bigger LLC must help a program whose working set exceeds 512KB but
     fits in 2MB: soplex's 880KB matrix. *)
  let run llc =
    (Single_core.run
       (Single_core.config (Configs.baseline ~llc ()))
       ~benchmark:(bench "soplex") ~seed:(seed "soplex")
       ~instructions:1_000_000)
      .Single_core.cycles
  in
  let small = run 1 and big = run 5 in
  Alcotest.(check bool) "2MB LLC beats 512KB for soplex" true
    (big < 0.95 *. small)

(* ---- Core_engine snapshots -------------------------------------------------- *)

let test_engine_snapshot_delta () =
  let generator = Generator.create ~seed:3 (bench "soplex") in
  let hierarchy = Hierarchy.create baseline in
  let engine =
    Core_engine.create ~params:Core_model.default ~hierarchy ~generator ()
  in
  let consume n =
    let remaining = ref n in
    while !remaining > 0 do
      remaining := !remaining - Core_engine.step engine ~cap:!remaining
    done
  in
  consume 10_000;
  let snap = Core_engine.snapshot engine in
  consume 5_000;
  let delta = Core_engine.since engine snap in
  Alcotest.(check int) "delta retired" 5_000 delta.Core_engine.s_retired;
  Alcotest.(check bool) "delta cycles positive" true (delta.Core_engine.s_cycles > 0.0);
  Alcotest.(check int) "retired total" 15_000 (Core_engine.retired engine)

let tests =
  [
    ( "simcore.core_model",
      [
        Alcotest.test_case "L1 hits stall nothing" `Quick test_stall_l1_free;
        Alcotest.test_case "per-level stalls" `Quick test_stall_levels;
        Alcotest.test_case "mlp divides off-core stalls" `Quick test_stall_mlp_divides_offcore;
        Alcotest.test_case "miss extra = stall difference" `Quick test_llc_miss_extra_is_difference;
        Alcotest.test_case "fetch stalls" `Quick test_fetch_stall;
      ] );
    ( "simcore.single_core",
      [
        Alcotest.test_case "totals consistent" `Quick test_run_totals_consistent;
        Alcotest.test_case "deterministic" `Quick test_run_deterministic;
        Alcotest.test_case "perfect LLC: no misses" `Quick test_perfect_llc_no_misses;
        Alcotest.test_case "perfect LLC is faster" `Quick test_perfect_llc_is_faster;
        Alcotest.test_case "memory CPI: counter = two-run" `Quick test_memory_cpi_methods_agree;
        Alcotest.test_case "profile shape" `Quick test_profile_shape;
        Alcotest.test_case "profile matches run" `Quick test_profile_matches_run;
        Alcotest.test_case "profile validations" `Quick test_profile_validations;
        Alcotest.test_case "compute vs memory bound" `Quick test_compute_bound_has_low_memory_cpi;
        Alcotest.test_case "LLC size monotonicity" `Quick test_llc_size_monotonicity;
      ] );
    ( "simcore.engine",
      [ Alcotest.test_case "snapshot deltas" `Quick test_engine_snapshot_delta ] );
  ]
