(* Tests for the Mppm_obs observability layer: event serialization and
   round-trips, counter/histogram merge algebra, the model core's event
   stream (deterministic and matching the checked-in golden trace), the
   registry aggregates the simulators push, and the hard guarantee that
   attaching a trace never changes results bit-for-bit. *)

module Event = Mppm_obs.Event
module Sink = Mppm_obs.Sink
module Trace = Mppm_obs.Trace
module Counter = Mppm_obs.Counter
module Histogram = Mppm_obs.Histogram
module Registry = Mppm_obs.Registry
module Model = Mppm_core.Model
module Mix = Mppm_workload.Mix
open Mppm_experiments

let canonical_mix = Mix.of_names [| "gamess"; "gamess"; "hmmer"; "soplex" |]
let tiny_scale = Scale.of_trace 100_000

(* Predict the canonical mix with a collecting sink attached; returns the
   model result and the captured trace as JSONL lines. *)
let traced_run () =
  let ctx = Context.create ~seed:7 tiny_scale in
  let sink, events = Sink.memory () in
  let obs = Trace.of_sink sink in
  let result = Context.predict ~obs ctx ~llc_config:1 canonical_mix in
  Trace.close obs;
  (result, events ())

let jsonl_lines events = List.map Event.to_jsonl events

(* ---- events -------------------------------------------------------------- *)

let test_event_validation () =
  Alcotest.check_raises "reserved field rejected"
    (Invalid_argument "Event.make: field name shadows a reserved key")
    (fun () -> ignore (Event.make ~name:"x" ~time:0.0 [ ("t", Event.Int 1) ]));
  Alcotest.check_raises "empty name rejected"
    (Invalid_argument "Event.make: empty name") (fun () ->
      ignore (Event.make ~name:"" ~time:0.0 []));
  (match Event.of_jsonl "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSONL must not parse");
  let ev =
    Event.make ~name:"e" ~time:1.5 ~dur:2.0
      [
        ("i", Event.Int 42);
        ("f", Event.Float 0.1);
        ("s", Event.String "a \"b\"\n\t\\");
        ("l", Event.List [ Event.Float 1.0; Event.Float 2.5 ]);
      ]
  in
  match Event.of_jsonl (Event.to_jsonl ev) with
  | Error msg -> Alcotest.fail ("round-trip parse failed: " ^ msg)
  | Ok ev' ->
      Alcotest.(check string) "serialization is a fixpoint"
        (Event.to_jsonl ev) (Event.to_jsonl ev')

(* ---- the model's event stream ------------------------------------------- *)

let test_trace_schema () =
  let result, events = traced_run () in
  let named n = List.filter (fun e -> e.Event.name = n) events in
  Alcotest.(check int) "one start event" 1 (List.length (named "model.start"));
  Alcotest.(check int) "one result event" 1 (List.length (named "model.result"));
  Alcotest.(check int) "one quantum event per iteration"
    result.Model.iterations
    (List.length (named "model.quantum"));
  Alcotest.(check int) "one convergence record per iteration"
    result.Model.iterations
    (List.length (named "model.convergence"));
  (match named "model.start" with
  | [ start ] ->
      Alcotest.(check (option (list string))) "programs match the mix"
        (Some (Array.to_list (Mix.names canonical_mix)))
        (Event.string_list_field start "programs")
  | _ -> Alcotest.fail "expected exactly one model.start");
  List.iter
    (fun q ->
      (match q.Event.dur with
      | Some d when d > 0.0 -> ()
      | _ -> Alcotest.fail "quantum must be a positive-duration span");
      match Event.float_list_field q "r_after" with
      | Some rs ->
          Alcotest.(check int) "one R_p per program" 4 (List.length rs);
          List.iter
            (fun r ->
              if r < 1.0 then Alcotest.fail "slowdowns must stay >= 1")
            rs
      | None -> Alcotest.fail "quantum carries r_after")
    (named "model.quantum")

let test_trace_deterministic () =
  let _, a = traced_run () in
  let _, b = traced_run () in
  Alcotest.(check (list string)) "two runs, byte-identical JSONL"
    (jsonl_lines a) (jsonl_lines b)

(* The golden trace is checked into the repository (and diffed again by
   CI through the CLI): any change to the event schema or to the model's
   numerical behaviour shows up as a diff here and must be intentional. *)
let golden_file = "golden_canonical_trace.jsonl"

let test_trace_matches_golden () =
  if not (Sys.file_exists golden_file) then
    Alcotest.fail ("missing golden trace " ^ golden_file);
  let ic = open_in_bin golden_file in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let _, events = traced_run () in
  let ours =
    String.concat "" (List.map (fun l -> l ^ "\n") (jsonl_lines events))
  in
  Alcotest.(check string) "trace matches the checked-in golden" golden ours

(* The hard constraint: attaching a sink must not change any result bit. *)
let test_traced_equals_untraced () =
  let untraced =
    let ctx = Context.create ~seed:7 tiny_scale in
    Context.predict ctx ~llc_config:1 canonical_mix
  in
  let traced, _ = traced_run () in
  let bits = Int64.bits_of_float in
  Alcotest.(check int64) "STP bit-for-bit" (bits untraced.Model.stp)
    (bits traced.Model.stp);
  Alcotest.(check int64) "ANTT bit-for-bit" (bits untraced.Model.antt)
    (bits traced.Model.antt);
  Alcotest.(check int) "same iteration count" untraced.Model.iterations
    traced.Model.iterations;
  Array.iteri
    (fun i p ->
      Alcotest.(check int64)
        (Printf.sprintf "slowdown %d bit-for-bit" i)
        (bits p.Model.slowdown)
        (bits traced.Model.programs.(i).Model.slowdown))
    untraced.Model.programs

(* ---- registry aggregates ------------------------------------------------- *)

let test_registry_aggregates () =
  Registry.reset ();
  let ctx = Context.create ~seed:7 tiny_scale in
  ignore (Context.predict ctx ~llc_config:1 canonical_mix);
  Alcotest.(check bool) "profile computations counted" true
    (Registry.get "profile_cache.misses" >= 3.0);
  Alcotest.(check bool) "memoized lookups counted" true
    (Registry.get "profile_cache.memo_hits" >= 1.0);
  Alcotest.(check bool) "profiling runs counted" true
    (Registry.get "simcore.profiles" >= 3.0);
  Alcotest.(check bool) "simcore hierarchy counters pushed" true
    (Registry.get "simcore.l1d.accesses" > 0.0);
  Alcotest.(check bool) "SDC summary pushed" true
    (Registry.get "cache.sdc.mass" > 0.0);
  ignore (Context.detailed ctx ~llc_config:1 canonical_mix);
  Alcotest.(check bool) "multicore run counted" true
    (Registry.get "multicore.runs" >= 1.0);
  Alcotest.(check bool) "shared LLC aggregates pushed" true
    (Registry.get "multicore.shared_llc.accesses" > 0.0);
  let snapshot = Registry.snapshot_prefix "profile_cache" in
  Alcotest.(check bool) "snapshot_prefix selects the namespace" true
    (List.for_all
       (fun (name, _) -> String.length name > 14)
       snapshot
    && snapshot <> []);
  Registry.reset ()

(* ---- counter / histogram algebra ----------------------------------------- *)

(* Integer-valued counters keep float addition exact, so merge order must
   not matter at all. *)
let counter_gen =
  QCheck.(
    small_list (pair (oneofl [ "a"; "b"; "c"; "d" ]) (int_range 0 1000)))

let counter_of_spec spec =
  Counter.of_alist (List.map (fun (k, v) -> (k, float_of_int v)) spec)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"counter merge commutes" ~count:300
      QCheck.(pair counter_gen counter_gen)
      (fun (sa, sb) ->
        let a = counter_of_spec sa and b = counter_of_spec sb in
        Counter.to_alist (Counter.merge a b)
        = Counter.to_alist (Counter.merge b a));
    QCheck.Test.make ~name:"counter merge associates" ~count:300
      QCheck.(triple counter_gen counter_gen counter_gen)
      (fun (sa, sb, sc) ->
        let a = counter_of_spec sa
        and b = counter_of_spec sb
        and c = counter_of_spec sc in
        Counter.to_alist (Counter.merge (Counter.merge a b) c)
        = Counter.to_alist (Counter.merge a (Counter.merge b c)));
    QCheck.Test.make ~name:"counter merge leaves inputs intact" ~count:300
      QCheck.(pair counter_gen counter_gen)
      (fun (sa, sb) ->
        let a = counter_of_spec sa and b = counter_of_spec sb in
        let before = Counter.to_alist a in
        ignore (Counter.merge a b);
        Counter.to_alist a = before);
    QCheck.Test.make ~name:"histogram merge commutes and associates"
      ~count:300
      QCheck.(
        triple (small_list (int_range 0 100)) (small_list (int_range 0 100))
          (small_list (int_range 0 100)))
      (fun (xs, ys, zs) ->
        let bounds = [| 10.0; 25.0; 50.0; 75.0 |] in
        let hist samples =
          let h = Histogram.create ~bounds in
          List.iter (fun x -> Histogram.observe h (float_of_int x)) samples;
          h
        in
        let a = hist xs and b = hist ys and c = hist zs in
        let counts h = Histogram.bucket_counts h in
        counts (Histogram.merge a b) = counts (Histogram.merge b a)
        && counts (Histogram.merge (Histogram.merge a b) c)
           = counts (Histogram.merge a (Histogram.merge b c)));
    QCheck.Test.make ~name:"JSONL floats round-trip exactly" ~count:500
      QCheck.(float)
      (fun f ->
        QCheck.assume (Float.is_finite f);
        let ev = Event.make ~name:"x" ~time:0.0 [ ("v", Event.Float f) ] in
        match Event.of_jsonl (Event.to_jsonl ev) with
        | Ok ev' -> (
            match Event.float_field ev' "v" with
            | Some f' ->
                Int64.bits_of_float f = Int64.bits_of_float f'
                (* -0.0 and 0.0 share a JSON rendering; either bit
                   pattern is a faithful read-back. *)
                (* lint: allow F1 exact zero-bit check intended *)
                || (f = 0.0 && f' = 0.0)
            | None -> false)
        | Error _ -> false);
  ]

let test_histogram_basics () =
  let h = Histogram.create_exponential ~first:1.0 ~ratio:2.0 ~buckets:4 in
  List.iter (Histogram.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
  Alcotest.(check (float 0.0)) "count" 4.0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "sum" 105.0 (Histogram.sum h);
  Alcotest.(check (option (float 0.0))) "min" (Some 0.5)
    (Histogram.min_value h);
  Alcotest.(check (option (float 0.0))) "max" (Some 100.0)
    (Histogram.max_value h);
  Alcotest.(check int) "bucket count" 5
    (Array.length (Histogram.bucket_counts h))

let tests =
  [
    ( "obs.event",
      [
        Alcotest.test_case "validation and round-trip" `Quick
          test_event_validation;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "model event schema" `Quick test_trace_schema;
        Alcotest.test_case "deterministic across runs" `Quick
          test_trace_deterministic;
        Alcotest.test_case "matches checked-in golden" `Quick
          test_trace_matches_golden;
        Alcotest.test_case "traced run bit-identical to untraced" `Quick
          test_traced_equals_untraced;
      ] );
    ( "obs.registry",
      [
        Alcotest.test_case "end-to-end aggregates" `Slow
          test_registry_aggregates;
      ] );
    ( "obs.metrics",
      Alcotest.test_case "histogram basics" `Quick test_histogram_basics
      :: List.map QCheck_alcotest.to_alcotest qcheck_tests );
  ]
