(* Tests for the Mppm_obs observability layer: event serialization and
   round-trips, counter/histogram merge algebra, the model core's event
   stream (deterministic and matching the checked-in golden trace), the
   registry aggregates the simulators push, and the hard guarantee that
   attaching a trace never changes results bit-for-bit. *)

module Event = Mppm_obs.Event
module Sink = Mppm_obs.Sink
module Trace = Mppm_obs.Trace
module Counter = Mppm_obs.Counter
module Histogram = Mppm_obs.Histogram
module Registry = Mppm_obs.Registry
module Prof = Mppm_obs.Prof
module Render = Mppm_obs.Render
module Model = Mppm_core.Model
module Mix = Mppm_workload.Mix
open Mppm_experiments

let canonical_mix = Mix.of_names [| "gamess"; "gamess"; "hmmer"; "soplex" |]
let tiny_scale = Scale.of_trace 100_000

(* Predict the canonical mix with a collecting sink attached; returns the
   model result and the captured trace as JSONL lines. *)
let traced_run () =
  let ctx = Context.create ~seed:7 tiny_scale in
  let sink, events = Sink.memory () in
  let obs = Trace.of_sink sink in
  let result = Context.predict ~obs ctx ~llc_config:1 canonical_mix in
  Trace.close obs;
  (result, events ())

let jsonl_lines events = List.map Event.to_jsonl events

(* ---- events -------------------------------------------------------------- *)

let test_event_validation () =
  Alcotest.check_raises "reserved field rejected"
    (Invalid_argument "Event.make: field name shadows a reserved key")
    (fun () -> ignore (Event.make ~name:"x" ~time:0.0 [ ("t", Event.Int 1) ]));
  Alcotest.check_raises "empty name rejected"
    (Invalid_argument "Event.make: empty name") (fun () ->
      ignore (Event.make ~name:"" ~time:0.0 []));
  (match Event.of_jsonl "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSONL must not parse");
  let ev =
    Event.make ~name:"e" ~time:1.5 ~dur:2.0
      [
        ("i", Event.Int 42);
        ("f", Event.Float 0.1);
        ("s", Event.String "a \"b\"\n\t\\");
        ("l", Event.List [ Event.Float 1.0; Event.Float 2.5 ]);
      ]
  in
  match Event.of_jsonl (Event.to_jsonl ev) with
  | Error msg -> Alcotest.fail ("round-trip parse failed: " ^ msg)
  | Ok ev' ->
      Alcotest.(check string) "serialization is a fixpoint"
        (Event.to_jsonl ev) (Event.to_jsonl ev')

(* ---- the model's event stream ------------------------------------------- *)

let test_trace_schema () =
  let result, events = traced_run () in
  let named n = List.filter (fun e -> e.Event.name = n) events in
  Alcotest.(check int) "one start event" 1 (List.length (named "model.start"));
  Alcotest.(check int) "one result event" 1 (List.length (named "model.result"));
  Alcotest.(check int) "one quantum event per iteration"
    result.Model.iterations
    (List.length (named "model.quantum"));
  Alcotest.(check int) "one convergence record per iteration"
    result.Model.iterations
    (List.length (named "model.convergence"));
  (match named "model.start" with
  | [ start ] ->
      Alcotest.(check (option (list string))) "programs match the mix"
        (Some (Array.to_list (Mix.names canonical_mix)))
        (Event.string_list_field start "programs")
  | _ -> Alcotest.fail "expected exactly one model.start");
  List.iter
    (fun q ->
      (match q.Event.dur with
      | Some d when d > 0.0 -> ()
      | _ -> Alcotest.fail "quantum must be a positive-duration span");
      match Event.float_list_field q "r_after" with
      | Some rs ->
          Alcotest.(check int) "one R_p per program" 4 (List.length rs);
          List.iter
            (fun r ->
              if r < 1.0 then Alcotest.fail "slowdowns must stay >= 1")
            rs
      | None -> Alcotest.fail "quantum carries r_after")
    (named "model.quantum")

let test_trace_deterministic () =
  let _, a = traced_run () in
  let _, b = traced_run () in
  Alcotest.(check (list string)) "two runs, byte-identical JSONL"
    (jsonl_lines a) (jsonl_lines b)

(* The golden trace is checked into the repository (and diffed again by
   CI through the CLI): any change to the event schema or to the model's
   numerical behaviour shows up as a diff here and must be intentional. *)
let golden_file = "golden_canonical_trace.jsonl"

let test_trace_matches_golden () =
  if not (Sys.file_exists golden_file) then
    Alcotest.fail ("missing golden trace " ^ golden_file);
  let ic = open_in_bin golden_file in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let _, events = traced_run () in
  let ours =
    String.concat "" (List.map (fun l -> l ^ "\n") (jsonl_lines events))
  in
  Alcotest.(check string) "trace matches the checked-in golden" golden ours

(* The hard constraint: attaching a sink must not change any result bit. *)
let test_traced_equals_untraced () =
  let untraced =
    let ctx = Context.create ~seed:7 tiny_scale in
    Context.predict ctx ~llc_config:1 canonical_mix
  in
  let traced, _ = traced_run () in
  let bits = Int64.bits_of_float in
  Alcotest.(check int64) "STP bit-for-bit" (bits untraced.Model.stp)
    (bits traced.Model.stp);
  Alcotest.(check int64) "ANTT bit-for-bit" (bits untraced.Model.antt)
    (bits traced.Model.antt);
  Alcotest.(check int) "same iteration count" untraced.Model.iterations
    traced.Model.iterations;
  Array.iteri
    (fun i p ->
      Alcotest.(check int64)
        (Printf.sprintf "slowdown %d bit-for-bit" i)
        (bits p.Model.slowdown)
        (bits traced.Model.programs.(i).Model.slowdown))
    untraced.Model.programs

(* ---- registry aggregates ------------------------------------------------- *)

let test_registry_aggregates () =
  Registry.reset ();
  let ctx = Context.create ~seed:7 tiny_scale in
  ignore (Context.predict ctx ~llc_config:1 canonical_mix);
  Alcotest.(check bool) "profile computations counted" true
    (Registry.get "profile_cache.misses" >= 3.0);
  Alcotest.(check bool) "memoized lookups counted" true
    (Registry.get "profile_cache.memo_hits" >= 1.0);
  Alcotest.(check bool) "profiling runs counted" true
    (Registry.get "simcore.profiles" >= 3.0);
  Alcotest.(check bool) "simcore hierarchy counters pushed" true
    (Registry.get "simcore.l1d.accesses" > 0.0);
  Alcotest.(check bool) "SDC summary pushed" true
    (Registry.get "cache.sdc.mass" > 0.0);
  ignore (Context.detailed ctx ~llc_config:1 canonical_mix);
  Alcotest.(check bool) "multicore run counted" true
    (Registry.get "multicore.runs" >= 1.0);
  Alcotest.(check bool) "shared LLC aggregates pushed" true
    (Registry.get "multicore.shared_llc.accesses" > 0.0);
  let snapshot = Registry.snapshot_prefix "profile_cache" in
  Alcotest.(check bool) "snapshot_prefix selects the namespace" true
    (List.for_all
       (fun (name, _) -> String.length name > 14)
       snapshot
    && snapshot <> []);
  Registry.reset ()

(* ---- counter / histogram algebra ----------------------------------------- *)

(* Integer-valued counters keep float addition exact, so merge order must
   not matter at all. *)
let counter_gen =
  QCheck.(
    small_list (pair (oneofl [ "a"; "b"; "c"; "d" ]) (int_range 0 1000)))

let counter_of_spec spec =
  Counter.of_alist (List.map (fun (k, v) -> (k, float_of_int v)) spec)

(* Shared by the histogram qcheck laws: samples over fixed bounds. *)
let quantile_bounds = [| 10.0; 25.0; 50.0; 75.0 |]

let hist_of samples =
  let h = Histogram.create ~bounds:quantile_bounds in
  List.iter (fun x -> Histogram.observe h (float_of_int x)) samples;
  h

let samples_gen = QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 120))

let qcheck_tests =
  [
    QCheck.Test.make ~name:"counter merge commutes" ~count:300
      QCheck.(pair counter_gen counter_gen)
      (fun (sa, sb) ->
        let a = counter_of_spec sa and b = counter_of_spec sb in
        Counter.to_alist (Counter.merge a b)
        = Counter.to_alist (Counter.merge b a));
    QCheck.Test.make ~name:"counter merge associates" ~count:300
      QCheck.(triple counter_gen counter_gen counter_gen)
      (fun (sa, sb, sc) ->
        let a = counter_of_spec sa
        and b = counter_of_spec sb
        and c = counter_of_spec sc in
        Counter.to_alist (Counter.merge (Counter.merge a b) c)
        = Counter.to_alist (Counter.merge a (Counter.merge b c)));
    QCheck.Test.make ~name:"counter merge leaves inputs intact" ~count:300
      QCheck.(pair counter_gen counter_gen)
      (fun (sa, sb) ->
        let a = counter_of_spec sa and b = counter_of_spec sb in
        let before = Counter.to_alist a in
        ignore (Counter.merge a b);
        Counter.to_alist a = before);
    QCheck.Test.make ~name:"histogram merge commutes and associates"
      ~count:300
      QCheck.(
        triple (small_list (int_range 0 100)) (small_list (int_range 0 100))
          (small_list (int_range 0 100)))
      (fun (xs, ys, zs) ->
        let bounds = [| 10.0; 25.0; 50.0; 75.0 |] in
        let hist samples =
          let h = Histogram.create ~bounds in
          List.iter (fun x -> Histogram.observe h (float_of_int x)) samples;
          h
        in
        let a = hist xs and b = hist ys and c = hist zs in
        let counts h = Histogram.bucket_counts h in
        counts (Histogram.merge a b) = counts (Histogram.merge b a)
        && counts (Histogram.merge (Histogram.merge a b) c)
           = counts (Histogram.merge a (Histogram.merge b c)));
    QCheck.Test.make ~name:"quantile is monotone in p" ~count:300
      QCheck.(triple samples_gen (int_range 0 100) (int_range 0 100))
      (fun (xs, a, b) ->
        let h = hist_of xs in
        let p1 = float_of_int (min a b) /. 100.0
        and p2 = float_of_int (max a b) /. 100.0 in
        Histogram.quantile h p1 <= Histogram.quantile h p2);
    QCheck.Test.make ~name:"quantile stays within [min, max]" ~count:300
      QCheck.(pair samples_gen (int_range 0 100))
      (fun (xs, pi) ->
        let h = hist_of xs in
        let q = Histogram.quantile h (float_of_int pi /. 100.0) in
        match (Histogram.min_value h, Histogram.max_value h) with
        | Some lo, Some hi -> q >= lo && q <= hi
        | _ -> false);
    QCheck.Test.make ~name:"quantile invariant under merge order" ~count:300
      QCheck.(triple samples_gen samples_gen (int_range 0 100))
      (fun (xs, ys, pi) ->
        let p = float_of_int pi /. 100.0 in
        let a = hist_of xs and b = hist_of ys in
        Float.equal
          (Histogram.quantile (Histogram.merge a b) p)
          (Histogram.quantile (Histogram.merge b a) p));
    QCheck.Test.make ~name:"JSONL floats round-trip exactly" ~count:500
      QCheck.(float)
      (fun f ->
        QCheck.assume (Float.is_finite f);
        let ev = Event.make ~name:"x" ~time:0.0 [ ("v", Event.Float f) ] in
        match Event.of_jsonl (Event.to_jsonl ev) with
        | Ok ev' -> (
            match Event.float_field ev' "v" with
            | Some f' ->
                Int64.bits_of_float f = Int64.bits_of_float f'
                (* -0.0 and 0.0 share a JSON rendering; either bit
                   pattern is a faithful read-back. *)
                (* lint: allow F1 exact zero-bit check intended *)
                || (f = 0.0 && f' = 0.0)
            | None -> false)
        | Error _ -> false);
  ]

let test_histogram_basics () =
  let h = Histogram.create_exponential ~first:1.0 ~ratio:2.0 ~buckets:4 in
  List.iter (Histogram.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
  Alcotest.(check (float 0.0)) "count" 4.0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "sum" 105.0 (Histogram.sum h);
  Alcotest.(check (option (float 0.0))) "min" (Some 0.5)
    (Histogram.min_value h);
  Alcotest.(check (option (float 0.0))) "max" (Some 100.0)
    (Histogram.max_value h);
  Alcotest.(check int) "bucket count" 5
    (Array.length (Histogram.bucket_counts h))

let test_quantile_basics () =
  let h = Histogram.create ~bounds:[| 10.0; 20.0; 30.0 |] in
  Alcotest.(check (float 0.0)) "empty histogram reads 0" 0.0
    (Histogram.quantile h 0.5);
  Alcotest.check_raises "p out of range rejected"
    (Invalid_argument "Histogram.quantile: p must lie in [0, 1]") (fun () ->
      ignore (Histogram.quantile h 1.5));
  List.iter (Histogram.observe h) [ 1.0; 5.0; 15.0; 25.0; 100.0 ];
  Alcotest.(check (float 0.0)) "quantile 0 is the min" 1.0
    (Histogram.quantile h 0.0);
  Alcotest.(check (float 0.0)) "quantile 1 is the max" 100.0
    (Histogram.quantile h 1.0);
  (* rank 2.5 of 5 lands mid-bucket [10, 20): interpolates to 15. *)
  Alcotest.(check (float 1e-9)) "median interpolates inside its bucket" 15.0
    (Histogram.quantile h 0.5)

(* ---- the injected-clock profiler ------------------------------------------ *)

(* A deterministic clock: each read advances virtual time by one second. *)
let counter_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 1.0;
    !t

let test_prof_null () =
  let p = Prof.null in
  Alcotest.(check bool) "null is disabled" false (Prof.enabled p);
  Alcotest.(check bool) "null has no clock" true
    (Option.is_none (Prof.clock p));
  Alcotest.(check int) "time is transparent" 42
    (Prof.time p "x" (fun () -> 42));
  Prof.task p ~domain:0 ~start:0.0 ~wait:0.0 ~dur:1.0;
  Prof.note_jobs p 8;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Prof.spans p));
  Alcotest.(check int) "no tasks recorded" 0 (List.length (Prof.tasks p));
  Alcotest.(check bool) "no pool stats" true
    (Option.is_none (Prof.pool_stats p))

let test_prof_spans () =
  let p = Prof.make ~clock:(counter_clock ()) in
  Alcotest.(check bool) "live profiler enabled" true (Prof.enabled p);
  Alcotest.(check int) "result passes through" 7
    (Prof.time p "alpha" (fun () -> 7));
  ignore (Prof.time p "alpha" (fun () -> 1));
  ignore (Prof.time p "beta" (fun () -> 2));
  (* A raising scope still records its span. *)
  (try ignore (Prof.time p "beta" (fun () : int -> failwith "boom"))
   with Failure _ -> ());
  let spans = Prof.spans p in
  Alcotest.(check int) "every scope recorded, raises included" 4
    (List.length spans);
  Alcotest.(check (list string)) "completion order"
    [ "alpha"; "alpha"; "beta"; "beta" ]
    (List.map (fun s -> s.Prof.sp_name) spans);
  List.iter
    (fun s ->
      (* The counter clock ticks once per read: entry and exit are one
         virtual second apart. *)
      Alcotest.(check (float 1e-9)) "span duration is one clock tick" 1.0
        s.Prof.sp_dur;
      Alcotest.(check bool) "allocation delta is non-negative" true
        (s.Prof.sp_alloc_bytes >= 0.0))
    spans;
  match Prof.span_stats p with
  | [ a; b ] ->
      Alcotest.(check string) "stats sorted by name" "alpha" a.Prof.ss_name;
      Alcotest.(check string) "stats sorted by name (2)" "beta" b.Prof.ss_name;
      Alcotest.(check (float 0.0)) "alpha count" 2.0 a.Prof.ss_count;
      Alcotest.(check (float 1e-9)) "alpha total" 2.0 a.Prof.ss_total;
      Alcotest.(check bool) "quantiles ordered" true
        (a.Prof.ss_p50 <= a.Prof.ss_p90 && a.Prof.ss_p90 <= a.Prof.ss_p99)
  | stats ->
      Alcotest.failf "expected 2 span stats, got %d" (List.length stats)

let test_prof_pool_stats () =
  let p = Prof.make ~clock:(counter_clock ()) in
  Prof.note_jobs p 2;
  Prof.task p ~domain:0 ~start:0.0 ~wait:0.0 ~dur:2.0;
  Prof.task p ~domain:1 ~start:1.0 ~wait:0.5 ~dur:1.0;
  (* Clock skew clamps to zero instead of corrupting the aggregates. *)
  Prof.task p ~domain:0 ~start:2.0 ~wait:(-0.1) ~dur:2.0;
  Alcotest.(check int) "tasks logged in order" 3 (List.length (Prof.tasks p));
  (match Prof.tasks p with
  | [ _; _; t3 ] ->
      Alcotest.(check (float 0.0)) "negative wait clamped" 0.0 t3.Prof.tk_wait
  | _ -> Alcotest.fail "expected 3 tasks");
  match Prof.pool_stats p with
  | None -> Alcotest.fail "expected pool stats"
  | Some s ->
      Alcotest.(check int) "jobs" 2 s.Prof.p_jobs;
      Alcotest.(check (float 0.0)) "task count" 3.0 s.Prof.p_tasks;
      Alcotest.(check (float 1e-9)) "elapsed spans first start to last end"
        4.0 s.Prof.p_elapsed;
      (* 5s busy over a 4s window on 2 workers. *)
      Alcotest.(check (float 1e-9)) "utilization" 0.625 s.Prof.p_utilization;
      (match s.Prof.p_domains with
      | [ d0; d1 ] ->
          Alcotest.(check int) "domain ids sorted" 0 d0.Prof.d_domain;
          Alcotest.(check (float 0.0)) "domain 0 tasks" 2.0 d0.Prof.d_tasks;
          Alcotest.(check (float 1e-9)) "domain 0 busy" 4.0 d0.Prof.d_busy;
          Alcotest.(check (float 0.0)) "domain 1 tasks" 1.0 d1.Prof.d_tasks
      | ds -> Alcotest.failf "expected 2 domains, got %d" (List.length ds));
      Alcotest.(check bool) "wait quantiles non-negative" true
        (s.Prof.p_wait_p50 >= 0.0 && s.Prof.p_wait_p99 >= 0.0);
      Alcotest.(check bool) "duration quantiles ordered" true
        (s.Prof.p_dur_p50 <= s.Prof.p_dur_p90
        && s.Prof.p_dur_p90 <= s.Prof.p_dur_p99)

(* The profiling analogue of the tracing guarantee: wrapping the
   canonical prediction in Prof spans changes no result bit. *)
let test_profiled_equals_unprofiled () =
  let unprofiled =
    let ctx = Context.create ~seed:7 tiny_scale in
    Context.predict ctx ~llc_config:1 canonical_mix
  in
  let prof = Prof.make ~clock:(counter_clock ()) in
  let profiled =
    let ctx = Context.create ~seed:7 tiny_scale in
    Prof.time prof "predict" (fun () ->
        Context.predict ctx ~llc_config:1 canonical_mix)
  in
  let bits = Int64.bits_of_float in
  Alcotest.(check int64) "STP bit-for-bit" (bits unprofiled.Model.stp)
    (bits profiled.Model.stp);
  Alcotest.(check int64) "ANTT bit-for-bit" (bits unprofiled.Model.antt)
    (bits profiled.Model.antt);
  Alcotest.(check int) "same iteration count" unprofiled.Model.iterations
    profiled.Model.iterations;
  Array.iteri
    (fun i p ->
      Alcotest.(check int64)
        (Printf.sprintf "slowdown %d bit-for-bit" i)
        (bits p.Model.slowdown)
        (bits profiled.Model.programs.(i).Model.slowdown))
    unprofiled.Model.programs;
  Alcotest.(check int) "exactly one span recorded" 1
    (List.length (Prof.spans prof))

(* ---- stream renderers ----------------------------------------------------- *)

let test_render_jsonl () =
  let ev1 = Event.make ~name:"a" ~time:1.0 [] in
  let ev2 = Event.make ~name:"b" ~time:2.0 ~dur:1.0 [ ("k", Event.Int 3) ] in
  let r = Render.jsonl () in
  Alcotest.(check string) "no header" "" (Render.header r);
  Alcotest.(check string) "one line per event"
    (Event.to_jsonl ev1 ^ "\n")
    (Render.step r ev1);
  Alcotest.(check string) "no trailer" "" (Render.finish r);
  Alcotest.(check string) "whole stream"
    (Event.to_jsonl ev1 ^ "\n" ^ Event.to_jsonl ev2 ^ "\n")
    (Render.to_string (Render.jsonl ()) [ ev1; ev2 ])

let test_render_chrome () =
  let ev1 = Event.make ~name:"a" ~time:1.0 [] in
  let ev2 = Event.make ~name:"b" ~time:2.0 ~dur:1.0 [ ("k", Event.Int 3) ] in
  (* The exact byte framing bin/mppm.ml's --trace-format chrome always
     produced: "[", "\n" before the first object, ",\n" between objects,
     "\n]\n" at the end. *)
  Alcotest.(check string) "array framing"
    ("[\n" ^ Event.to_chrome ev1 ^ ",\n" ^ Event.to_chrome ev2 ^ "\n]\n")
    (Render.to_string (Render.chrome ()) [ ev1; ev2 ]);
  Alcotest.(check string) "empty stream still well-formed" "[\n]\n"
    (Render.to_string (Render.chrome ()) []);
  let lane ev =
    Option.value (Event.int_field ev "domain") ~default:0
  in
  let ev3 = Event.make ~name:"t" ~time:0.0 ~dur:1.0 [ ("domain", Event.Int 3) ] in
  let out = Render.to_string (Render.chrome ~lane ()) [ ev3; ev1 ] in
  Alcotest.(check bool) "lane routes tid" true
    (let sub = "\"tid\":3" in
     let rec find i =
       i + String.length sub <= String.length out
       && (String.sub out i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  Alcotest.(check bool) "default lane stays 0" true
    (let sub = "\"tid\":0" in
     let rec find i =
       i + String.length sub <= String.length out
       && (String.sub out i (String.length sub) = sub || find (i + 1))
     in
     find 0)

let tests =
  [
    ( "obs.event",
      [
        Alcotest.test_case "validation and round-trip" `Quick
          test_event_validation;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "model event schema" `Quick test_trace_schema;
        Alcotest.test_case "deterministic across runs" `Quick
          test_trace_deterministic;
        Alcotest.test_case "matches checked-in golden" `Quick
          test_trace_matches_golden;
        Alcotest.test_case "traced run bit-identical to untraced" `Quick
          test_traced_equals_untraced;
      ] );
    ( "obs.registry",
      [
        Alcotest.test_case "end-to-end aggregates" `Slow
          test_registry_aggregates;
      ] );
    ( "obs.metrics",
      Alcotest.test_case "histogram basics" `Quick test_histogram_basics
      :: Alcotest.test_case "quantile basics" `Quick test_quantile_basics
      :: List.map QCheck_alcotest.to_alcotest qcheck_tests );
    ( "obs.prof",
      [
        Alcotest.test_case "null profiler is a no-op" `Quick test_prof_null;
        Alcotest.test_case "spans and per-name stats" `Quick test_prof_spans;
        Alcotest.test_case "pool task aggregates" `Quick test_prof_pool_stats;
        Alcotest.test_case "profiled run bit-identical to unprofiled" `Quick
          test_profiled_equals_unprofiled;
      ] );
    ( "obs.render",
      [
        Alcotest.test_case "jsonl stream" `Quick test_render_jsonl;
        Alcotest.test_case "chrome framing and lanes" `Quick
          test_render_chrome;
      ] );
  ]
