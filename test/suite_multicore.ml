(* Tests for mppm_multicore: the detailed reference simulator.  The
   decisive invariants: a one-program "mix" behaves exactly like the
   single-core simulator; non-interfering programs see slowdown 1; and
   contention appears exactly where the workload design says it should. *)

module Configs = Mppm_cache.Configs
module Single_core = Mppm_simcore.Single_core
module Multi_core = Mppm_multicore.Multi_core
module Suite = Mppm_trace.Suite

let check_close eps = Alcotest.(check (float eps))

let baseline = Configs.baseline ()
let config = Multi_core.config baseline

let spec ?(offset = 0) name =
  {
    Multi_core.benchmark = Suite.find name;
    seed = Suite.seed_for name;
    offset;
  }

let test_single_program_equals_single_core () =
  let trace = 100_000 in
  let multi =
    Multi_core.run config ~programs:[| spec "gamess" |] ~trace_instructions:trace
  in
  let single =
    Single_core.run (Single_core.config baseline) ~benchmark:(Suite.find "gamess")
      ~seed:(Suite.seed_for "gamess") ~instructions:trace
  in
  let p = multi.Multi_core.programs.(0) in
  check_close 1e-6 "identical cycles" single.Single_core.cycles p.Multi_core.cycles;
  Alcotest.(check int) "identical misses" single.Single_core.llc_misses
    p.Multi_core.llc_misses;
  check_close 1e-9 "cpi" single.Single_core.cpi p.Multi_core.multicore_cpi

let test_deterministic () =
  let programs = [| spec ~offset:0 "gamess"; spec ~offset:(1 lsl 36) "soplex" |] in
  let go () = Multi_core.run config ~programs ~trace_instructions:50_000 in
  let a = go () and b = go () in
  Array.iteri
    (fun i p ->
      check_close 1e-9 "same cycles" p.Multi_core.cycles
        b.Multi_core.programs.(i).Multi_core.cycles)
    a.Multi_core.programs

let test_compute_bound_mix_no_interference () =
  let offsets = Multi_core.default_offsets 4 in
  let names = [| "hmmer"; "povray"; "namd"; "gromacs" |] in
  let programs = Array.mapi (fun i n -> spec ~offset:offsets.(i) n) names in
  let trace = 100_000 in
  let multi = Multi_core.run config ~programs ~trace_instructions:trace in
  Array.iteri
    (fun i p ->
      let single =
        Single_core.run (Single_core.config baseline)
          ~benchmark:(Suite.find names.(i)) ~seed:(Suite.seed_for names.(i))
          ~instructions:trace
      in
      let slowdown = p.Multi_core.cycles /. single.Single_core.cycles in
      Alcotest.(check bool)
        (names.(i) ^ " unaffected by compute co-runners")
        true
        (slowdown < 1.02))
    multi.Multi_core.programs

let test_gamess_suffers_under_contention () =
  let offsets = Multi_core.default_offsets 4 in
  let names = [| "gamess"; "gamess"; "lbm"; "soplex" |] in
  let programs = Array.mapi (fun i n -> spec ~offset:offsets.(i) n) names in
  let trace = 400_000 in
  let multi = Multi_core.run config ~programs ~trace_instructions:trace in
  let single =
    Single_core.run (Single_core.config baseline) ~benchmark:(Suite.find "gamess")
      ~seed:(Suite.seed_for "gamess") ~instructions:trace
  in
  let slowdown =
    multi.Multi_core.programs.(0).Multi_core.cycles /. single.Single_core.cycles
  in
  Alcotest.(check bool) "gamess slowed by > 1.3x" true (slowdown > 1.3)

let test_result_structure () =
  let offsets = Multi_core.default_offsets 2 in
  let programs = [| spec ~offset:offsets.(0) "hmmer"; spec ~offset:offsets.(1) "mcf" |] in
  let trace = 50_000 in
  let r = Multi_core.run config ~programs ~trace_instructions:trace in
  Alcotest.(check int) "two programs" 2 (Array.length r.Multi_core.programs);
  Array.iter
    (fun p ->
      Alcotest.(check int) "first-pass length" trace p.Multi_core.instructions;
      Alcotest.(check bool) "kept running after the pass" true
        (p.Multi_core.total_retired >= trace);
      check_close 1e-9 "cpi definition"
        (p.Multi_core.cycles /. float_of_int trace)
        p.Multi_core.multicore_cpi)
    r.Multi_core.programs;
  let max_cycles =
    Array.fold_left
      (fun acc p -> Float.max acc p.Multi_core.cycles)
      0.0 r.Multi_core.programs
  in
  check_close 1e-9 "wall = slowest completion" max_cycles r.Multi_core.wall_cycles;
  (* The fast program (hmmer) re-iterates while mcf finishes. *)
  let hmmer = r.Multi_core.programs.(0) in
  Alcotest.(check bool) "fast program re-iterates" true
    (hmmer.Multi_core.total_retired > trace);
  Alcotest.(check bool) "shared LLC saw traffic" true
    (r.Multi_core.llc_total_accesses > 0)

let test_default_offsets () =
  let o = Multi_core.default_offsets 16 in
  Alcotest.(check int) "count" 16 (Array.length o);
  let sorted = Array.copy o in
  Array.sort compare sorted;
  for i = 1 to 15 do
    Alcotest.(check bool) "well separated" true
      (sorted.(i) - sorted.(i - 1) > 1 lsl 30)
  done;
  Array.iter
    (fun x -> Alcotest.(check int) "page aligned" 0 (x mod 4096))
    o

let test_validations () =
  Alcotest.(check bool) "no programs raises" true
    (try
       ignore (Multi_core.run config ~programs:[||] ~trace_instructions:1000);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad trace raises" true
    (try
       ignore (Multi_core.run config ~programs:[| spec "mcf" |] ~trace_instructions:0);
       false
     with Invalid_argument _ -> true)

let test_identical_twins_converge () =
  (* Two copies of the same benchmark with different offsets should see
     nearly identical slowdowns (symmetry of the machine). *)
  let offsets = Multi_core.default_offsets 2 in
  let programs =
    [| spec ~offset:offsets.(0) "gamess"; spec ~offset:offsets.(1) "gamess" |]
  in
  let r = Multi_core.run config ~programs ~trace_instructions:200_000 in
  let a = r.Multi_core.programs.(0).Multi_core.cycles in
  let b = r.Multi_core.programs.(1).Multi_core.cycles in
  Alcotest.(check bool) "twins within 2%" true
    (abs_float (a -. b) /. a < 0.02)

let tests =
  [
    ( "multicore.sim",
      [
        Alcotest.test_case "1 program = single-core" `Quick
          test_single_program_equals_single_core;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "compute mix: no interference" `Quick
          test_compute_bound_mix_no_interference;
        Alcotest.test_case "gamess suffers under contention" `Quick
          test_gamess_suffers_under_contention;
        Alcotest.test_case "result structure" `Quick test_result_structure;
        Alcotest.test_case "default offsets" `Quick test_default_offsets;
        Alcotest.test_case "validations" `Quick test_validations;
        Alcotest.test_case "identical twins" `Quick test_identical_twins_converge;
      ] );
  ]
