module Sdc = Mppm_cache.Sdc

type interval = {
  instructions : int;
  cycles : float;
  memory_stall_cycles : float;
  llc_accesses : float;
  llc_misses : float;
  sdc : Sdc.t;
}

type t = {
  benchmark : string;
  interval_instructions : int;
  llc_assoc : int;
  intervals : interval array;
}

let make ~benchmark ~interval_instructions ~llc_assoc intervals =
  if interval_instructions <= 0 then
    invalid_arg "Profile.make: non-positive interval length";
  if Array.length intervals = 0 then invalid_arg "Profile.make: no intervals";
  Array.iter
    (fun iv ->
      if iv.instructions <= 0 then
        invalid_arg "Profile.make: interval with non-positive instructions";
      if Sdc.assoc iv.sdc <> llc_assoc then
        invalid_arg "Profile.make: SDC associativity mismatch")
    intervals;
  { benchmark; interval_instructions; llc_assoc; intervals }

let total_instructions t =
  Array.fold_left (fun acc iv -> acc + iv.instructions) 0 t.intervals

let total_cycles t =
  Array.fold_left (fun acc iv -> acc +. iv.cycles) 0.0 t.intervals

let cpi t = total_cycles t /. float_of_int (total_instructions t)

let memory_cpi t =
  Array.fold_left (fun acc iv -> acc +. iv.memory_stall_cycles) 0.0 t.intervals
  /. float_of_int (total_instructions t)

let memory_cpi_fraction t = memory_cpi t /. cpi t

let llc_mpki t =
  Array.fold_left (fun acc iv -> acc +. iv.llc_misses) 0.0 t.intervals
  *. 1000.0
  /. float_of_int (total_instructions t)

type window = {
  w_instructions : float;
  w_cycles : float;
  w_memory_stall_cycles : float;
  w_llc_accesses : float;
  w_llc_misses : float;
  w_sdc : Sdc.t;
}

let window t ~start ~count =
  if count <= 0.0 then invalid_arg "Profile.window: non-positive count";
  if start < 0.0 then invalid_arg "Profile.window: negative start";
  let trace_len = float_of_int (total_instructions t) in
  let acc_sdc = Sdc.create ~assoc:t.llc_assoc in
  (* lint: allow P1 window-walk accumulator; the flat-profile rewrite (ROADMAP item 2) keeps this in reusable scratch *)
  let acc = ref { w_instructions = 0.0; w_cycles = 0.0;
                  w_memory_stall_cycles = 0.0; w_llc_accesses = 0.0;
                  w_llc_misses = 0.0; w_sdc = acc_sdc } in
  let add_fraction iv frac = (* lint: allow P1 window-walk helper closure; ROADMAP item 2 *)
    if frac > 0.0 then begin
      let a = !acc in
      Sdc.add_into ~dst:acc_sdc (Sdc.scale iv.sdc frac);
      acc := (* lint: allow P1 P4 boxed window accumulator; ROADMAP item 2 *)
        {
          a with
          w_instructions = a.w_instructions +. (float_of_int iv.instructions *. frac);
          w_cycles = a.w_cycles +. (iv.cycles *. frac);
          w_memory_stall_cycles =
            a.w_memory_stall_cycles +. (iv.memory_stall_cycles *. frac);
          w_llc_accesses = a.w_llc_accesses +. (iv.llc_accesses *. frac);
          w_llc_misses = a.w_llc_misses +. (iv.llc_misses *. frac);
        }
    end
  in
  (* Walk intervals from the (wrapped) start position until [count]
     instructions are consumed, taking linear fractions at the ends. *)
  let pos = ref (Float.rem start trace_len) in (* lint: allow P1 window cursor refs; ROADMAP item 2 *)
  let remaining = ref count in
  (* Locate the interval containing !pos together with the offset into it. *)
  let locate pos = (* lint: allow P1 window locate closures; ROADMAP item 2 *)
    let rec go i off =
      let len = float_of_int t.intervals.(i).instructions in
      if pos < off +. len || Int.equal i (Array.length t.intervals - 1) then
        (* lint: allow P1 interval/offset result pair; ROADMAP item 2 *)
        (i, pos -. off)
      else go (i + 1) (off +. len)
    in
    go 0 0.0
  in
  let idx, offset = locate !pos in
  (* lint: allow P1 window cursor refs; ROADMAP item 2 *)
  let idx = ref idx and offset = ref offset in
  while !remaining > 1e-9 do
    let iv = t.intervals.(!idx) in
    let len = float_of_int iv.instructions in
    let available = len -. !offset in
    let take = Float.min available !remaining in
    add_fraction iv (take /. len);
    remaining := !remaining -. take; (* lint: allow P4 window cursor updates; ROADMAP item 2 *)
    pos := !pos +. take;
    offset := 0.0;
    idx := (!idx + 1) mod Array.length t.intervals
  done;
  (* lint: allow P1 the returned window record; ROADMAP item 2 *)
  { !acc with w_sdc = acc_sdc }

let window_cpi w = w.w_cycles /. w.w_instructions
let window_memory_cpi w = w.w_memory_stall_cycles /. w.w_instructions

let reduce_associativity t ~assoc =
  if assoc > t.llc_assoc then
    invalid_arg "Profile.reduce_associativity: cannot increase associativity";
  let intervals =
    Array.map
      (fun iv ->
        let sdc = Sdc.reduce_associativity iv.sdc ~assoc in
        { iv with sdc; llc_misses = Sdc.misses sdc })
      t.intervals
  in
  { t with llc_assoc = assoc; intervals }

(* ---- text serialization ------------------------------------------- *)

(* v2: floats are written shortest-round-trip (v1 truncated to %.6f/%.1f,
   so a cache hit was not bit-identical to a recompute — SDC counters are
   fractional).  The version string feeds the profile-cache fingerprint,
   so v1 entries read as stale rather than as lossy profiles. *)
let format_version = "mppm-profile v2"

(* Shortest decimal representation that parses back to the same bits:
   %.15g when that round-trips, %.17g otherwise (always exact). *)
let float_str x =
  let s = Printf.sprintf "%.15g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

(* Writes go to a ".tmp" sibling first and are renamed into place, so a
   concurrent reader (pool workers share one cache directory) or an
   interrupted run never observes a truncated profile.  The tmp name is
   deterministic; racing writers of the same path write identical bytes,
   so last-rename-wins is harmless. *)
let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n" format_version;
      Printf.fprintf oc "benchmark %s\n" t.benchmark;
      Printf.fprintf oc "interval %d\n" t.interval_instructions;
      Printf.fprintf oc "assoc %d\n" t.llc_assoc;
      Printf.fprintf oc "intervals %d\n" (Array.length t.intervals);
      Array.iter
        (fun iv ->
          Printf.fprintf oc "%d %s %s %s %s" iv.instructions
            (float_str iv.cycles)
            (float_str iv.memory_stall_cycles)
            (float_str iv.llc_accesses) (float_str iv.llc_misses);
          List.iter
            (fun c -> Printf.fprintf oc " %s" (float_str c))
            (Sdc.to_list iv.sdc);
          Printf.fprintf oc "\n")
        t.intervals);
  Sys.rename tmp path

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line_no = ref 0 in
      let next_line () =
        incr line_no;
        try input_line ic
        with End_of_file ->
          failwith
            (Printf.sprintf "Profile.load: %s: unexpected end of file at line %d"
               path !line_no)
      in
      let field expected line =
        match String.index_opt line ' ' with
        | Some i when String.sub line 0 i = expected ->
            String.sub line (i + 1) (String.length line - i - 1)
        | Some _ | None ->
            failwith
              (Printf.sprintf "Profile.load: %s:%d: expected '%s <value>'" path
                 !line_no expected)
      in
      let version = next_line () in
      if version <> format_version then
        failwith
          (Printf.sprintf "Profile.load: %s: unsupported format %S" path version);
      let benchmark = field "benchmark" (next_line ()) in
      let interval_instructions = int_of_string (field "interval" (next_line ())) in
      let llc_assoc = int_of_string (field "assoc" (next_line ())) in
      let n = int_of_string (field "intervals" (next_line ())) in
      let parse_interval line =
        match String.split_on_char ' ' line with
        | insns :: cycles :: stall :: acc :: miss :: counters
          when List.length counters = llc_assoc + 1 ->
            {
              instructions = int_of_string insns;
              cycles = float_of_string cycles;
              memory_stall_cycles = float_of_string stall;
              llc_accesses = float_of_string acc;
              llc_misses = float_of_string miss;
              sdc =
                Sdc.of_list ~assoc:llc_assoc (List.map float_of_string counters);
            }
        | _ ->
            failwith
              (Printf.sprintf "Profile.load: %s:%d: malformed interval" path
                 !line_no)
      in
      let intervals = Array.init n (fun _ -> parse_interval (next_line ())) in
      make ~benchmark ~interval_instructions ~llc_assoc intervals)

let pp_summary ppf t =
  Format.fprintf ppf
    "%s: %d insns, CPI %.3f (mem %.3f, %.0f%%), LLC MPKI %.2f, %d intervals"
    t.benchmark (total_instructions t) (cpi t) (memory_cpi t)
    (100.0 *. memory_cpi_fraction t)
    (llc_mpki t) (Array.length t.intervals)
