(** Single-core simulation profiles: the one-time-cost input to MPPM
    (paper Sec. 2.1).

    A profile holds, for every fixed-length instruction interval of an
    isolated single-core run: the cycles spent (hence single-core CPI), the
    cycles lost to LLC misses (hence memory CPI), the LLC access and miss
    counts, and the LLC stack-distance counters.  MPPM aggregates these
    over arbitrary instruction windows — including windows that wrap around
    the end of the trace, because the model re-iterates programs over their
    trace (Sec. 2.2). *)

type interval = {
  instructions : int;  (* mppm: unit insns *)
  cycles : float;  (* mppm: unit cycles *)
  memory_stall_cycles : float;  (* mppm: unit cycles *)
      (** cycles this interval would have saved with a perfect LLC *)
  llc_accesses : float;  (* mppm: unit accesses *)
  llc_misses : float;  (* mppm: unit accesses *)
  sdc : Mppm_cache.Sdc.t;  (** LLC stack-distance counters *)
}

type t = {
  benchmark : string;
  interval_instructions : int;  (** nominal interval length *)  (* mppm: unit insns *)
  llc_assoc : int;  (** associativity the SDCs were collected at *)
  intervals : interval array;
}

val make :  (* mppm: unit profile *)
  benchmark:string ->
  interval_instructions:int ->
  llc_assoc:int ->
  interval array ->
  t
(** Validates interval shapes (positive instruction counts, SDC
    associativity agreement) and builds the profile. *)

val total_instructions : t -> int  (* mppm: unit insns *)
(** Sum of interval instruction counts (the trace length). *)

val total_cycles : t -> float  (* mppm: unit cycles *)
(** Sum of interval cycle counts (the isolated run's duration). *)

val cpi : t -> float  (* mppm: unit cycles/insns *)
(** Whole-trace single-core CPI. *)

val memory_cpi : t -> float  (* mppm: unit cycles/insns *)
(** Whole-trace memory CPI component. *)

val memory_cpi_fraction : t -> float  (* mppm: unit 1 *)
(** [memory_cpi / cpi]: the memory-boundedness used to classify benchmarks
    into MEM/COMP categories (paper Sec. 5). *)

val llc_mpki : t -> float  (* mppm: unit accesses/insns *)
(** LLC misses per kilo-instruction over the whole trace. *)

(** Aggregate statistics over an instruction window [start, start+count),
    positions taken modulo the trace length (programs restart). *)
type window = {
  w_instructions : float;  (* mppm: unit insns *)
  w_cycles : float;  (* mppm: unit cycles *)
  w_memory_stall_cycles : float;  (* mppm: unit cycles *)
  w_llc_accesses : float;  (* mppm: unit accesses *)
  w_llc_misses : float;  (* mppm: unit accesses *)
  w_sdc : Mppm_cache.Sdc.t;
}

(* mppm: unit start:insns -> count:insns -> window *)
val window : t -> start:float -> count:float -> window
(** [window t ~start ~count] sums interval statistics over the window,
    scaling the partial intervals at each end linearly (accesses are
    assumed uniform within one interval).  [count] must be positive and
    [start] non-negative. *)

val window_cpi : window -> float  (* mppm: unit cycles/insns *)
(** [w_cycles / w_instructions]. *)

(* lint: allow S4 per-window readout kept for the two-run validation workflow *)
val window_memory_cpi : window -> float  (* mppm: unit cycles/insns *)
(** [w_memory_stall_cycles / w_instructions]. *)

(* mppm: unit assoc:ways -> profile *)
val reduce_associativity : t -> assoc:int -> t
(** [reduce_associativity t ~assoc] derives the profile for an LLC of lower
    associativity (same set count): SDCs fold per
    {!Mppm_cache.Sdc.reduce_associativity}; the timing fields are kept —
    they describe the profiled hierarchy and remain the model's base-line
    CPI.  Miss counts are re-derived from the folded SDC. *)

val format_version : string
(** The on-disk format identifier written by {!save} and required by
    {!load}.  Include it in any persistent cache key so a format change
    invalidates old entries instead of loading them. *)

val save : t -> string -> unit  (* mppm: unit _ *)
(** [save t path] writes the profile as a line-oriented text file.
    Floats are rendered shortest-round-trip, so [load (save t)] is
    bit-for-bit identical to [t].  The write is atomic: bytes go to
    [path ^ ".tmp"] and are renamed into place, so a concurrent reader or
    an interrupted run never sees a truncated file. *)

val load : string -> t  (* mppm: unit profile *)
(** [load path] reads a profile written by {!save}.  Raises [Failure] with
    a line diagnostic on malformed input or an unsupported format
    version. *)

val pp_summary : Format.formatter -> t -> unit  (* mppm: unit _ *)
(** One-line whole-trace summary: CPI, memory CPI, MPKI, intervals. *)
