let check ~cpi_single ~cpi_multi =
  let n = Array.length cpi_single in
  if n = 0 || n <> Array.length cpi_multi then
    invalid_arg "Metrics: arrays must have equal non-zero length";
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg "Metrics: non-positive CPI")
    cpi_single;
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg "Metrics: non-positive CPI")
    cpi_multi

let stp ~cpi_single ~cpi_multi =
  check ~cpi_single ~cpi_multi;
  let acc = ref 0.0 in
  Array.iteri (fun i sc -> acc := !acc +. (sc /. cpi_multi.(i))) cpi_single;
  !acc

let antt ~cpi_single ~cpi_multi =
  check ~cpi_single ~cpi_multi;
  let acc = ref 0.0 in
  Array.iteri (fun i sc -> acc := !acc +. (cpi_multi.(i) /. sc)) cpi_single;
  !acc /. float_of_int (Array.length cpi_single)

let slowdowns ~cpi_single ~cpi_multi =
  check ~cpi_single ~cpi_multi;
  Array.mapi (fun i sc -> cpi_multi.(i) /. sc) cpi_single

let positive name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array");
  Array.iter (fun x -> if x <= 0.0 then invalid_arg (name ^ ": non-positive")) a

let stp_of_slowdowns s =
  positive "Metrics.stp_of_slowdowns" s;
  Array.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 s

let antt_of_slowdowns s =
  positive "Metrics.antt_of_slowdowns" s;
  Array.fold_left ( +. ) 0.0 s /. float_of_int (Array.length s)
