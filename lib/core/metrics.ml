module Invariant = Mppm_util.Invariant

(* Sanitizer: STP of n programs lies in (0, n] and ANTT is >= 1 whenever no
   program runs faster shared than alone (slowdowns >= 1), which the MPPM
   iteration guarantees. *)
let sanity ~slowdowns ~stp ~antt =
  if Invariant.enabled () then begin
    let n = float_of_int (Array.length slowdowns) in
    Invariant.check "metrics.finite"
      (Float.is_finite stp && Float.is_finite antt);
    Invariant.check "metrics.positive" (stp > 0.0 && antt > 0.0);
    if Array.for_all (fun s -> s >= 1.0) slowdowns then begin
      Invariant.checkf "metrics.stp_le_n"
        (stp <= n +. (1e-9 *. n))
        (fun () -> Printf.sprintf "STP = %g > n = %g" stp n);
      Invariant.checkf "metrics.antt_ge_1"
        (antt >= 1.0 -. 1e-12)
        (fun () -> Printf.sprintf "ANTT = %g < 1" antt)
    end
  end

let check ~cpi_single ~cpi_multi =
  let n = Array.length cpi_single in
  if n = 0 || n <> Array.length cpi_multi then
    invalid_arg "Metrics: arrays must have equal non-zero length";
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg "Metrics: non-positive CPI")
    cpi_single;
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg "Metrics: non-positive CPI")
    cpi_multi

let slowdowns ~cpi_single ~cpi_multi =
  check ~cpi_single ~cpi_multi;
  Array.mapi (fun i sc -> cpi_multi.(i) /. sc) cpi_single

let stp ~cpi_single ~cpi_multi =
  check ~cpi_single ~cpi_multi;
  let acc = ref 0.0 in
  Array.iteri (fun i sc -> acc := !acc +. (sc /. cpi_multi.(i))) cpi_single;
  if Invariant.enabled () then begin
    let s = slowdowns ~cpi_single ~cpi_multi in
    let n = float_of_int (Array.length s) in
    if Array.for_all (fun x -> x >= 1.0) s then
      Invariant.check "metrics.stp_le_n" (!acc <= n +. (1e-9 *. n))
  end;
  !acc

let antt ~cpi_single ~cpi_multi =
  check ~cpi_single ~cpi_multi;
  let acc = ref 0.0 in
  Array.iteri (fun i sc -> acc := !acc +. (cpi_multi.(i) /. sc)) cpi_single;
  let antt = !acc /. float_of_int (Array.length cpi_single) in
  if Invariant.enabled () then begin
    let s = slowdowns ~cpi_single ~cpi_multi in
    if Array.for_all (fun x -> x >= 1.0) s then
      Invariant.check "metrics.antt_ge_1" (antt >= 1.0 -. 1e-12)
  end;
  antt

let positive name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array");
  Array.iter (fun x -> if x <= 0.0 then invalid_arg (name ^ ": non-positive")) a

let stp_of_slowdowns s =
  positive "Metrics.stp_of_slowdowns" s;
  let stp = Array.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 s in
  let antt = Array.fold_left ( +. ) 0.0 s /. float_of_int (Array.length s) in
  sanity ~slowdowns:s ~stp ~antt;
  stp

let antt_of_slowdowns s =
  positive "Metrics.antt_of_slowdowns" s;
  let antt = Array.fold_left ( +. ) 0.0 s /. float_of_int (Array.length s) in
  let stp = Array.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 s in
  sanity ~slowdowns:s ~stp ~antt;
  antt
