(** A phase-unaware baseline: the StatCC-style equation-solving approach
    (Eklov et al., HiPEAC 2011) that the paper contrasts MPPM against.

    Instead of walking the programs' traces interval by interval, this
    model collapses each profile to its whole-trace aggregate (one SDC,
    one CPI, one memory CPI) and solves the CPI <-> miss-rate
    interdependence by fixed-point iteration over a single window:

    + assume slowdowns R_p;
    + in a common time window, program p executes N_p proportional to
      1 / (CPI_p * R_p) instructions, so its aggregate SDC is scaled by
      N_p / trace;
    + the contention model yields extra misses, priced at the aggregate
      miss penalty, giving new slowdowns;
    + repeat until the slowdowns move less than [tolerance].

    Everything MPPM knows about time-varying behaviour is deliberately
    discarded; the ablation bench measures what that costs on
    phase-alternating workloads (the paper's argument for the iterative,
    interval-walking design). *)

type params = {
  contention : Mppm_contention.Contention.model;
  max_iterations : int;  (** fixed-point cap (default 100) *)  (* mppm: unit 1 *)
  tolerance : float;  (** max |R - R'| for convergence (default 1e-6) *)  (* mppm: unit 1 *)
  damping : float;  (** update damping in [0, 1); 0 = undamped *)  (* mppm: unit 1 *)
}

val default_params : params  (* mppm: unit params *)
(** FOA contention, 100 iterations max, tolerance 1e-6, no damping. *)

val predict : params -> Mppm_profile.Profile.t array -> Model.result  (* mppm: unit result *)
(** [predict params profiles] returns the same result shape as
    {!Model.predict_profiles}; [iterations] reports the fixed-point
    iteration count. *)
