module Profile = Mppm_profile.Profile
module Contention = Mppm_contention.Contention
module Sdc = Mppm_cache.Sdc

type params = {
  contention : Contention.model;
  max_iterations : int;
  tolerance : float;
  damping : float;
}

let default_params =
  {
    contention = Contention.default;
    max_iterations = 100;
    tolerance = 1e-6;
    damping = 0.3;
  }

type aggregate = {
  label : string;
  cpi : float;
  sdc : Sdc.t;  (** whole-trace SDC *)
  trace_instructions : float;
  miss_penalty : float;  (** aggregate cycles per LLC miss *)
}

let aggregate_of_profile profile =
  let intervals = profile.Profile.intervals in
  let sdc = Sdc.create ~assoc:profile.Profile.llc_assoc in
  let stall = ref 0.0 and misses = ref 0.0 in
  Array.iter
    (fun iv ->
      Sdc.add_into ~dst:sdc iv.Profile.sdc;
      stall := !stall +. iv.Profile.memory_stall_cycles;
      misses := !misses +. iv.Profile.llc_misses)
    intervals;
  {
    label = profile.Profile.benchmark;
    cpi = Profile.cpi profile;
    sdc;
    trace_instructions = float_of_int (Profile.total_instructions profile);
    miss_penalty = (if !misses > 0.0 then !stall /. !misses else 0.0);
  }

let validate params profiles =
  if Array.length profiles = 0 then invalid_arg "Static_model.predict: no programs";
  if params.max_iterations <= 0 then
    invalid_arg "Static_model.predict: max_iterations <= 0";
  if not (params.damping >= 0.0 && params.damping < 1.0) then
    invalid_arg "Static_model.predict: damping must be in [0, 1)";
  let assoc = profiles.(0).Profile.llc_assoc in
  Array.iter
    (fun p ->
      if p.Profile.llc_assoc <> assoc then
        invalid_arg "Static_model.predict: profiles at different associativities")
    profiles

let predict params profiles =
  validate params profiles;
  let aggregates = Array.map aggregate_of_profile profiles in
  let n = Array.length aggregates in
  let r = Array.make n 1.0 in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < params.max_iterations do
    incr iterations;
    (* A common time window: the slowest program runs its whole trace. *)
    let window_cycles =
      Array.to_list aggregates
      |> List.mapi (fun i a -> a.cpi *. r.(i) *. a.trace_instructions)
      |> List.fold_left Float.max 0.0
    in
    let instructions =
      Array.mapi (fun i a -> window_cycles /. (a.cpi *. r.(i))) aggregates
    in
    let sdcs =
      Array.mapi
        (fun i a -> Sdc.scale a.sdc (instructions.(i) /. a.trace_instructions))
        aggregates
    in
    let contention = Contention.predict params.contention sdcs in
    let max_delta = ref 0.0 in
    Array.iteri
      (fun i a ->
        let miss_cycles =
          contention.Contention.extra_misses.(i) *. a.miss_penalty
        in
        let isolated_cycles = a.cpi *. instructions.(i) in
        let target = 1.0 +. (miss_cycles /. isolated_cycles) in
        let updated =
          (params.damping *. r.(i)) +. ((1.0 -. params.damping) *. target)
        in
        max_delta := Float.max !max_delta (abs_float (updated -. r.(i)));
        r.(i) <- updated)
      aggregates;
    if !max_delta < params.tolerance then converged := true
  done;
  let programs =
    Array.mapi
      (fun i a ->
        {
          Model.name = a.label;
          slowdown = r.(i);
          cpi_single = a.cpi;
          cpi_multi = a.cpi *. r.(i);
          instructions_modelled = a.trace_instructions;
        })
      aggregates
  in
  {
    Model.programs;
    stp = Metrics.stp_of_slowdowns r;
    antt = Metrics.antt_of_slowdowns r;
    iterations = !iterations;
  }
