(** Multi-program performance metrics (Eyerman & Eeckhout, IEEE Micro
    2008), as defined in the paper's Sec. 3.

    Both metrics compare each program's multi-core CPI against its
    single-core (isolated) CPI:

    - system throughput, a higher-is-better system-perspective metric equal
      to weighted speedup: STP = sum_p CPI_SC,p / CPI_MC,p;
    - average normalized turnaround time, a lower-is-better user-perspective
      metric: ANTT = (1/n) sum_p CPI_MC,p / CPI_SC,p. *)

(* mppm: unit cpi_single:cycles/insns -> cpi_multi:cycles/insns -> 1 *)
val stp : cpi_single:float array -> cpi_multi:float array -> float
(** System throughput (weighted speedup).  Arrays must be non-empty, equal
    length, strictly positive. *)

(* mppm: unit cpi_single:cycles/insns -> cpi_multi:cycles/insns -> 1 *)
val antt : cpi_single:float array -> cpi_multi:float array -> float
(** Average normalized turnaround time. *)

(* mppm: unit cpi_single:cycles/insns -> cpi_multi:cycles/insns -> 1 *)
val slowdowns : cpi_single:float array -> cpi_multi:float array -> float array
(** Per-program slowdown [CPI_MC,p / CPI_SC,p] (ANTT is its mean). *)

val stp_of_slowdowns : float array -> float  (* mppm: unit 1 -> 1 *)
(** STP from per-program slowdowns: [sum_p 1 / slowdown_p]. *)

val antt_of_slowdowns : float array -> float  (* mppm: unit 1 -> 1 *)
(** ANTT from per-program slowdowns: their arithmetic mean. *)
