(** The Multi-Program Performance Model: the paper's core contribution
    (Sec. 2.2, Fig. 2).

    From per-program single-core profiles, the model iteratively resolves
    the entanglement between per-program progress and shared-LLC
    contention:

    + every program starts with slowdown R_p = 1 and instruction pointer
      I_p = 0;
    + each iteration, the program with the largest projected multi-core
      time over its next L instructions sets the epoch's cycle budget
      C = max_p CPI_SC,p(window) * R_p * L;
    + every program advances N_p = C / (CPI_SC,p * R_p) instructions; its
      per-interval SDCs are summed over that window;
    + the contention model converts the window SDCs into extra conflict
      misses, priced at the window's average LLC miss penalty
      (memory CPI * N_p / #LLC misses);
    + each slowdown is updated through an exponential moving average and
      instruction pointers advance;
    + iteration stops once the slowest program has executed
      [stop_trace_multiplier] traces (paper: 5 x 1B instructions).

    The update rule comes in two flavours (see {!update_rule}): the paper's
    literal formula compares conflict-miss cycles against the epoch budget
    C, while the [Consistent] variant compares them against the program's
    own isolated time in the epoch (C / R_p) — the two coincide at small
    slowdowns; the ablation bench quantifies the difference. *)

type update_rule =
  | Paper_literal  (** R <- f R + (1-f) (1 + miss_cycles / C) *)
  | Consistent  (** R <- f R + (1-f) (1 + miss_cycles * R / C) *)

(** Optional bandwidth-contention extension (the paper's Sec. 8 future
    work): misses of all co-runners share one memory channel; each miss
    additionally queues behind the channel, approximated as an M/D/1 wait
    [transfer_cycles * rho / (2 (1 - rho))] at the mix's channel
    utilization.  The model charges only the queueing {e beyond} what the
    program already suffers alone (its profile carries self-queueing when
    collected with a channel). *)
type bandwidth = {
  transfer_cycles : float;  (** channel occupancy per line transfer *)  (* mppm: unit cycles *)
  exposed_fraction : float;  (* mppm: unit 1 *)
      (** fraction of queueing delay that ends up as visible stall (out-of-
          order overlap hides the rest); match the simulator's memory
          exposure / typical MLP *)
}

type params = {
  iteration_instructions : int;  (** L; the paper uses trace/5 = 200M *)  (* mppm: unit insns *)
  smoothing : float;  (** f of the EMA; in [0, 1), higher = smoother *)  (* mppm: unit 1 *)
  stop_trace_multiplier : float;  (** stop criterion; the paper uses 5. *)  (* mppm: unit 1 *)
  contention : Mppm_contention.Contention.model;
  update_rule : update_rule;
  bandwidth : bandwidth option;  (** [None] = unlimited (the paper) *)
}

(* mppm: unit trace_instructions:insns -> params *)
val default_params : trace_instructions:int -> params
(** Paper-faithful scaling: L = trace/5, stop after 5 traces, FOA
    contention, [Consistent] update, smoothing 0.5. *)

type program_input = {
  label : string;  (** display name (benchmark name, possibly repeated) *)
  profile : Mppm_profile.Profile.t;
}

type program_output = {
  name : string;
  slowdown : float;  (** final R_p *)  (* mppm: unit 1 *)
  cpi_single : float;  (** whole-trace isolated CPI from the profile *)  (* mppm: unit cycles/insns *)
  cpi_multi : float;  (** CPI_SC,p * R_p: the model's prediction *)  (* mppm: unit cycles/insns *)
  instructions_modelled : float;  (** final I_p *)  (* mppm: unit insns *)
}

type result = {
  programs : program_output array;
  stp : float;  (* mppm: unit 1 *)
  antt : float;  (* mppm: unit 1 *)
  iterations : int;
}
(** A full prediction: per-program outputs plus the mix's system
    throughput, average normalized turnaround time and iteration count. *)

(* mppm: unit result *)
val predict : ?obs:Mppm_obs.Trace.t -> params -> program_input array -> result
(** [predict params programs] runs the iterative model.  All profiles must
    have been collected at the same LLC associativity.  Raises
    [Invalid_argument] on malformed parameters or inputs.

    [obs] (default {!Mppm_obs.Trace.null}) streams the model's internals:
    one [model.start] event, then per quantum a [model.quantum] span
    (iteration, slowest program, budget C, per-program progress, window
    SDC mass, FOA extra misses, miss penalty, conflict-miss cycles, R_p
    before/after the EMA) and a [model.convergence] instant (max |ΔR_p|,
    mean R_p), then a final [model.result].  Timestamps are virtual —
    cumulative epoch cycles — and tracing never changes the prediction:
    results are bit-for-bit identical with and without a sink. *)

val predict_profiles :  (* mppm: unit result *)
  ?obs:Mppm_obs.Trace.t -> params -> Mppm_profile.Profile.t array -> result
(** Convenience wrapper labelling each program by its profile's benchmark
    name. *)

(** Per-iteration trace for inspection, tests and convergence studies. *)
type iteration_record = {
  epoch_cycles : float;  (** C *)  (* mppm: unit cycles *)
  progress : float array;  (** N_p *)  (* mppm: unit insns *)
  extra_misses : float array;  (* mppm: unit accesses *)
  slowdown_estimate : float array;  (** R_p after the EMA update *)  (* mppm: unit 1 *)
}

(* mppm: unit result *)
val predict_with_history :
  ?obs:Mppm_obs.Trace.t ->
  params ->
  program_input array ->
  result * iteration_record list
(** Like {!predict} but also returns the iteration history, oldest
    first. *)
