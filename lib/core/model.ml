module Profile = Mppm_profile.Profile
module Contention = Mppm_contention.Contention
module Invariant = Mppm_util.Invariant
module Trace = Mppm_obs.Trace
module Event = Mppm_obs.Event

type update_rule = Paper_literal | Consistent

type bandwidth = { transfer_cycles : float; exposed_fraction : float }

type params = {
  iteration_instructions : int;
  smoothing : float;
  stop_trace_multiplier : float;
  contention : Contention.model;
  update_rule : update_rule;
  bandwidth : bandwidth option;
}

let default_params ~trace_instructions =
  if trace_instructions <= 0 then
    invalid_arg "Model.default_params: trace_instructions <= 0";
  {
    iteration_instructions = max 1 (trace_instructions / 5);
    smoothing = 0.5;
    stop_trace_multiplier = 5.0;
    contention = Contention.default;
    update_rule = Consistent;
    bandwidth = None;
  }

type program_input = { label : string; profile : Profile.t }

type program_output = {
  name : string;
  slowdown : float;
  cpi_single : float;
  cpi_multi : float;
  instructions_modelled : float;
}

type result = {
  programs : program_output array;
  stp : float;
  antt : float;
  iterations : int;
}

type iteration_record = {
  epoch_cycles : float;
  progress : float array;
  extra_misses : float array;
  slowdown_estimate : float array;
}

(* Mutable per-program model state. *)
type state = {
  input : program_input;
  trace_length : float;
  mutable r : float;  (* slowdown R_p *)
  mutable ip : float;  (* instruction pointer I_p *)
}

let validate params inputs =
  if params.iteration_instructions <= 0 then
    invalid_arg "Model.predict: iteration_instructions <= 0";
  if not (params.smoothing >= 0.0 && params.smoothing < 1.0) then
    invalid_arg "Model.predict: smoothing must be in [0, 1)";
  if params.stop_trace_multiplier <= 0.0 then
    invalid_arg "Model.predict: stop_trace_multiplier <= 0";
  (match params.bandwidth with
  | Some b when b.transfer_cycles <= 0.0 || b.exposed_fraction < 0.0 ->
      invalid_arg "Model.predict: malformed bandwidth parameters"
  | Some _ | None -> ());
  if Array.length inputs = 0 then invalid_arg "Model.predict: no programs";
  let assoc = inputs.(0).profile.Profile.llc_assoc in
  Array.iter
    (fun i ->
      if i.profile.Profile.llc_assoc <> assoc then
        invalid_arg "Model.predict: profiles at different LLC associativities")
    inputs

(* Average LLC miss penalty over a window: cycles lost to LLC misses per
   miss.  Falls back to the whole-trace average when the window has no
   misses (the division in Fig. 2 needs a denominator). *)
(* mppm: unit _ -> _ -> cycles/accesses *)
let miss_penalty profile (w : Profile.window) =
  if w.Profile.w_llc_misses > 0.0 then
    w.Profile.w_memory_stall_cycles /. w.Profile.w_llc_misses
  else
    let total_misses =
      Array.fold_left
        (fun acc iv -> acc +. iv.Profile.llc_misses)
        0.0 profile.Profile.intervals
    in
    if total_misses > 0.0 then
      Array.fold_left
        (fun acc iv -> acc +. iv.Profile.memory_stall_cycles)
        0.0 profile.Profile.intervals
      /. total_misses
    else 0.0

(* mppm: unit result *)
(* mppm: hot — the per-quantum convergence loop, ROADMAP item 2 *)
let run ?(obs = Trace.null) params inputs ~record =
  validate params inputs;
  let states =
    Array.map
      (fun input ->
        {
          input;
          trace_length =
            float_of_int (Profile.total_instructions input.profile);
          r = 1.0;
          ip = 0.0;
        })
      inputs
  in
  let n = Array.length states in
  let l = float_of_int params.iteration_instructions in
  let history = ref [] in
  let iterations = ref 0 in
  (* Virtual clock for trace timestamps: cumulative epoch cycles.  Only
     read by the observability layer; never feeds back into the model.  A
     one-cell float array rather than a ref: the cells of a float array
     are unboxed, so the per-epoch advance stores no fresh box. *)
  let clock = [| 0.0 |] in
  let observing = Trace.enabled obs in
  (* Per-epoch scratch only the trace needs; left empty when no sink is
     attached so the untraced hot loop allocates nothing extra. *)
  let obs_penalty = if observing then Array.make n 0.0 else [||] in
  let obs_miss_cycles = if observing then Array.make n 0.0 else [||] in
  let obs_r_before = if observing then Array.make n 0.0 else [||] in
  Trace.emit obs (fun () ->
      Event.make ~name:"model.start" ~time:0.0
        [
          ("programs",
           Event.List
             (Array.to_list
                (Array.map (fun st -> Event.String st.input.label) states)));
          ("iteration_instructions", Event.Int params.iteration_instructions);
          ("smoothing", Event.Float params.smoothing);
          ("stop_trace_multiplier", Event.Float params.stop_trace_multiplier);
          ("contention", Event.String (Contention.model_name params.contention));
        ]);
  (* The stop predicate is hoisted out of [stop_reached] so the per-epoch
     test allocates no closure: it is built once, before the loop. *)
  let stop_pred st = st.ip >= params.stop_trace_multiplier *. st.trace_length in
  let stop_reached () = Array.for_all stop_pred states in
  (* Argmax scratch, likewise hoisted so each epoch reuses the two cells. *)
  let slowest = ref 0 in
  let best = ref 0.0 in
  while not (stop_reached ()) do
    incr iterations;
    (* Step 1: find the epoch budget C set by the slowest program. *)
    let window_l =
      Array.map (* lint: allow P1 per-epoch window vector; reused scratch in the ROADMAP-2 rewrite *)
        (fun st -> Profile.window st.input.profile ~start:st.ip ~count:l)
        states
    in
    (* Same value as a Float.max fold; additionally remembers which
       program set the budget (the first argmax). *)
    slowest := 0;
    best := 0.0;
    for i = 0 to n - 1 do
      let projected = Profile.window_cpi window_l.(i) *. states.(i).r *. l in
      if projected > !best then begin
        best := projected;
        slowest := i
      end
    done;
    let epoch_cycles = !best in
    (* Step 2: per-program progress within C cycles. *)
    let progress =
      Array.mapi (* lint: allow P1 per-epoch progress vector; ROADMAP item 2 *)
        (fun i st ->
          let cpi = Profile.window_cpi window_l.(i) in
          epoch_cycles /. (cpi *. st.r))
        states
    in
    (* Step 3: window statistics over each program's actual progress. *)
    let windows =
      Array.mapi (* lint: allow P1 per-epoch window vector; ROADMAP item 2 *)
        (fun i st ->
          Profile.window st.input.profile ~start:st.ip ~count:progress.(i))
        states
    in
    (* Step 4: contention model on the epoch SDCs. *)
    (* lint: allow P1 per-epoch SDC vector; ROADMAP item 2 *)
    let sdcs = Array.map (fun w -> w.Profile.w_sdc) windows in
    let contention = Contention.predict params.contention sdcs in
    (* Step 4b (extension): bandwidth queueing.  The M/D/1 wait at the
       mix's channel utilization, minus the program's own-alone wait. *)
    let queueing_extra =
      match params.bandwidth with
      | None -> fun _ -> 0.0
      | Some b ->
          (* lint: allow P1 bandwidth-extension closures; built only when a channel model is configured *)
          let wait rho =
            let rho = Float.min rho 0.98 in
            b.transfer_cycles *. rho /. (2.0 *. (1.0 -. rho))
          in
          let total_shared =
            Array.fold_left ( +. ) 0.0 contention.Contention.shared_misses
          in
          let rho_mix = total_shared *. b.transfer_cycles /. epoch_cycles in
          (* lint: allow P1 bandwidth-extension closure; see above *)
          fun i ->
            let w = windows.(i) in
            let alone_cycles =
              Float.max 1.0 (Profile.window_cpi w *. w.Profile.w_instructions)
            in
            let rho_alone =
              w.Profile.w_llc_misses *. b.transfer_cycles /. alone_cycles
            in
            let delta = Float.max 0.0 (wait rho_mix -. wait rho_alone) in
            b.exposed_fraction *. delta
            *. contention.Contention.shared_misses.(i)
    in
    (* Step 5: price the conflict misses and update the slowdowns. *)
    if observing then
      Array.iteri (fun i st -> obs_r_before.(i) <- st.r) states;
    Array.iteri (* lint: allow P1 per-epoch update closure; the flat-state rewrite (ROADMAP item 2) turns this into a loop over parallel arrays *)
      (fun i st ->
        let penalty = miss_penalty st.input.profile windows.(i) in
        let miss_cycles =
          (contention.Contention.extra_misses.(i) *. penalty)
          +. queueing_extra i
        in
        if observing then begin
          obs_penalty.(i) <- penalty;
          obs_miss_cycles.(i) <- miss_cycles
        end;
        let current =
          match params.update_rule with
          | Paper_literal -> 1.0 +. (miss_cycles /. epoch_cycles)
          | Consistent -> 1.0 +. (miss_cycles *. st.r /. epoch_cycles)
        in
        let previous = st.r in
        st.r <-
          (params.smoothing *. st.r) +. ((1.0 -. params.smoothing) *. current);
        if Invariant.enabled () then begin
          Invariant.checkf "model.slowdown_ge_1" (st.r >= 1.0) (fun () ->
              Printf.sprintf "%s: R_p = %g < 1" st.input.label st.r);
          Invariant.check "model.slowdown_finite" (Float.is_finite st.r);
          (* The EMA is a convex combination of the previous estimate and
             the current target, so it must stay between them. *)
          let lo = Float.min previous current
          and hi = Float.max previous current in
          let eps = 1e-12 *. Float.max 1.0 hi in
          Invariant.checkf "model.ema_bounded"
            (st.r >= lo -. eps && st.r <= hi +. eps)
            (fun () ->
              Printf.sprintf "%s: R_p = %g outside [%g, %g]" st.input.label
                st.r lo hi)
        end;
        st.ip <- st.ip +. progress.(i))
      states;
    if Invariant.enabled () then
      Invariant.check "model.epoch_positive"
        (Float.is_finite epoch_cycles && epoch_cycles > 0.0);
    if observing then begin
      let floats a = Event.List (Array.to_list (Array.map (fun x -> Event.Float x) a)) in
      let iter = !iterations in
      let time = clock.(0) in
      Trace.emit obs (fun () ->
          Event.make ~name:"model.quantum" ~time ~dur:epoch_cycles
            [
              ("iter", Event.Int iter);
              ("slowest", Event.Int !slowest);
              ("budget_cycles", Event.Float epoch_cycles);
              ("progress", floats progress);
              ("sdc_mass",
               floats (Array.map Mppm_cache.Sdc.accesses sdcs));
              ("extra_misses",
               floats contention.Contention.extra_misses);
              ("miss_penalty", floats obs_penalty);
              ("penalty_cycles", floats obs_miss_cycles);
              ("r_before", floats obs_r_before);
              ("r_after", floats (Array.map (fun st -> st.r) states));
            ]);
      let max_delta = ref 0.0 and r_sum = ref 0.0 in
      Array.iteri
        (fun i st ->
          let d = Float.abs (st.r -. obs_r_before.(i)) in
          if d > !max_delta then max_delta := d;
          r_sum := !r_sum +. st.r)
        states;
      let max_delta = !max_delta and mean_r = !r_sum /. float_of_int n in
      Trace.emit obs (fun () ->
          Event.make ~name:"model.convergence" ~time:(time +. epoch_cycles)
            [
              ("iter", Event.Int iter);
              ("max_delta_r", Event.Float max_delta);
              ("mean_r", Event.Float mean_r);
            ])
    end;
    clock.(0) <- clock.(0) +. epoch_cycles;
    (* mppm: cold — history recording is opt-in: predict runs with ~record:false *)
    if record then
      history :=
        {
          epoch_cycles;
          progress;
          extra_misses = Array.copy contention.Contention.extra_misses;
          slowdown_estimate = Array.map (fun st -> st.r) states;
        }
        :: !history
  done;
  let programs =
    Array.map
      (fun st ->
        let cpi_single = Profile.cpi st.input.profile in
        {
          name = st.input.label;
          slowdown = st.r;
          cpi_single;
          cpi_multi = cpi_single *. st.r;
          instructions_modelled = st.ip;
        })
      states
  in
  let slowdowns = Array.map (fun p -> p.slowdown) programs in
  let result =
    {
      programs;
      stp = Metrics.stp_of_slowdowns slowdowns;
      antt = Metrics.antt_of_slowdowns slowdowns;
      iterations = !iterations;
    }
  in
  Trace.emit obs (fun () ->
      Event.make ~name:"model.result" ~time:clock.(0)
        [
          ("iterations", Event.Int result.iterations);
          ("stp", Event.Float result.stp);
          ("antt", Event.Float result.antt);
          ("slowdowns",
           Event.List
             (Array.to_list (Array.map (fun s -> Event.Float s) slowdowns)));
        ]);
  (result, List.rev !history)

let predict ?obs params inputs = fst (run ?obs params inputs ~record:false)

let predict_profiles ?obs params profiles =
  predict ?obs params
    (Array.map
       (fun profile -> { label = profile.Profile.benchmark; profile })
       profiles)

let predict_with_history ?obs params inputs = run ?obs params inputs ~record:true
