type t = {
  transfer_cycles : float;
  mutable free_at : float;
  mutable transfers : int;
  mutable total_queueing : float;
  mutable busy_cycles : float;
}

let create ~transfer_cycles =
  if transfer_cycles <= 0.0 then
    invalid_arg "Memory_channel.create: transfer_cycles <= 0";
  {
    transfer_cycles;
    free_at = 0.0;
    transfers = 0;
    total_queueing = 0.0;
    busy_cycles = 0.0;
  }


let request t ~now =
  let start = Float.max now t.free_at in
  let delay = start -. now in
  t.free_at <- start +. t.transfer_cycles;
  t.transfers <- t.transfers + 1;
  t.total_queueing <- t.total_queueing +. delay;
  t.busy_cycles <- t.busy_cycles +. t.transfer_cycles;
  delay

let transfers t = t.transfers
let total_queueing t = t.total_queueing

let utilization t ~now =
  if now <= 0.0 then 0.0 else Float.min 1.0 (t.busy_cycles /. now)

let reset t =
  t.free_at <- 0.0;
  t.transfers <- 0;
  t.total_queueing <- 0.0;
  t.busy_cycles <- 0.0
