(** Single-core simulation: isolated runs and MPPM profile collection
    (paper Sec. 2.1, the "one-time cost" box of Fig. 1).

    The profiling run executes the benchmark alone on the full hierarchy
    and records, per interval: cycles, the memory-CPI counter, LLC
    accesses/misses, and the LLC stack-distance counters. *)

type run_config = {
  hierarchy : Mppm_cache.Hierarchy.config;
  core : Core_model.params;
  perfect_llc : bool;
      (** make every LLC access hit: the paper's alternative way of
          isolating the memory CPI component (two-run method) *)
  bandwidth : float option;  (* mppm: unit cycles *)
      (** cycles of memory-channel occupancy per line transfer; [Some _]
          gives the isolated run a private channel so its profile carries
          self-queueing ([None] = unlimited bandwidth, the paper's
          machine) *)
}

val config :  (* mppm: unit run_config *)
  ?core:Core_model.params ->
  ?perfect_llc:bool ->
  ?bandwidth:float ->
  Mppm_cache.Hierarchy.config ->
  run_config
(** Convenience constructor; [core] defaults to {!Core_model.default},
    [perfect_llc] to [false], [bandwidth] to unlimited. *)

(** Aggregate counters of one isolated run. *)
type totals = {
  instructions : int;  (* mppm: unit insns *)
  cycles : float;  (* mppm: unit cycles *)
  cpi : float;  (* mppm: unit cycles/insns *)
  memory_stall_cycles : float;  (* mppm: unit cycles *)
  memory_cpi : float;  (* mppm: unit cycles/insns *)
  llc_accesses : int;  (* mppm: unit accesses *)
  llc_misses : int;  (* mppm: unit accesses *)
}

val run :  (* mppm: unit offset:bytes -> seed:1 -> instructions:insns -> totals *)
  ?offset:int ->
  ?compute_scale:float ->
  run_config ->
  benchmark:Mppm_trace.Benchmark.t ->
  seed:int ->
  instructions:int ->
  totals
(** [run config ~benchmark ~seed ~instructions] executes the benchmark in
    isolation for [instructions] instructions and returns aggregate
    numbers.  With [perfect_llc = true], [memory_cpi] and [llc_misses] are
    zero by construction.  [compute_scale] models a heterogeneous "little"
    core (see {!Core_engine.create}). *)

val profile :  (* mppm: unit offset:bytes -> seed:1 -> trace_instructions:insns -> interval_instructions:insns -> profile *)
  ?offset:int ->
  ?compute_scale:float ->
  run_config ->
  benchmark:Mppm_trace.Benchmark.t ->
  seed:int ->
  trace_instructions:int ->
  interval_instructions:int ->
  Mppm_profile.Profile.t
(** [profile config ~benchmark ~seed ~trace_instructions
    ~interval_instructions] collects the per-interval MPPM profile.
    [trace_instructions] must be a positive multiple of
    [interval_instructions].  [config.perfect_llc] must be [false] (a
    perfect-LLC profile has no SDC content). *)

val memory_cpi_two_run :  (* mppm: unit offset:bytes -> seed:1 -> instructions:insns -> cycles/insns *)
  ?offset:int ->
  ?compute_scale:float ->
  run_config ->
  benchmark:Mppm_trace.Benchmark.t ->
  seed:int ->
  instructions:int ->
  float
(** The paper's two-run method: CPI with the real LLC minus CPI with a
    perfect LLC.  Agrees with the counter-based [memory_cpi] of {!run} (the
    generators are deterministic, so both runs see the same stream). *)
