module Hierarchy = Mppm_cache.Hierarchy

type params = {
  width : int;
  rob_entries : int;
  l2_exposure : float;
  llc_exposure : float;
  memory_exposure : float;
  fetch_exposure : float;
}

let default =
  {
    width = 4;
    rob_entries = 128;
    l2_exposure = 0.35;
    llc_exposure = 0.55;
    memory_exposure = 0.85;
    fetch_exposure = 0.70;
  }

(* The L1 hit latency is pipelined away; only latency beyond it can stall. *)
let extra_latency (result : Hierarchy.result) =
  float_of_int (max 0 (result.latency - 1))

let data_stall params ~mlp (result : Hierarchy.result) =
  match result.hit_level with
  | Hierarchy.L1 -> 0.0
  | Hierarchy.L2 -> params.l2_exposure *. extra_latency result
  | Hierarchy.Llc -> params.llc_exposure *. extra_latency result /. mlp
  | Hierarchy.Memory -> params.memory_exposure *. extra_latency result /. mlp

let fetch_stall params (result : Hierarchy.result) =
  match result.hit_level with
  | Hierarchy.L1 -> 0.0
  | Hierarchy.L2 | Hierarchy.Llc | Hierarchy.Memory ->
      params.fetch_exposure *. extra_latency result

let llc_miss_extra_stall params ~config ~mlp =
  let llc_latency = config.Hierarchy.llc.latency in
  let miss_latency = llc_latency + config.Hierarchy.memory_latency in
  (params.memory_exposure *. float_of_int (miss_latency - 1) /. mlp)
  -. (params.llc_exposure *. float_of_int (llc_latency - 1) /. mlp)

let fetch_llc_miss_extra_stall params ~config =
  let llc_latency = config.Hierarchy.llc.latency in
  let miss_latency = llc_latency + config.Hierarchy.memory_latency in
  params.fetch_exposure *. float_of_int (miss_latency - llc_latency)

let pp ppf params =
  Format.fprintf ppf
    "%d-wide, %d-entry ROB; exposure L2 %.2f / LLC %.2f / mem %.2f / fetch %.2f"
    params.width params.rob_entries params.l2_exposure params.llc_exposure
    params.memory_exposure params.fetch_exposure
