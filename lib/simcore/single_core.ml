module Hierarchy = Mppm_cache.Hierarchy
module Sdc_profiler = Mppm_cache.Sdc_profiler
module Generator = Mppm_trace.Generator
module Profile = Mppm_profile.Profile
module Registry = Mppm_obs.Registry

(* End-of-run aggregate counters.  Pushed once per run/profile (a coarse
   boundary), never from the per-access hot path; reading the registry
   cannot perturb results because nothing here feeds back into timing. *)
let push_run_counters engine =
  Registry.add "simcore.instructions"
    (float_of_int (Core_engine.retired engine));
  Registry.add "simcore.cycles" (Core_engine.cycles engine);
  Registry.add_all ~prefix:"simcore"
    (Hierarchy.counters (Core_engine.hierarchy engine))

type run_config = {
  hierarchy : Hierarchy.config;
  core : Core_model.params;
  perfect_llc : bool;
  bandwidth : float option;
}

let config ?(core = Core_model.default) ?(perfect_llc = false) ?bandwidth
    hierarchy =
  { hierarchy; core; perfect_llc; bandwidth }

type totals = {
  instructions : int;
  cycles : float;
  cpi : float;
  memory_stall_cycles : float;
  memory_cpi : float;
  llc_accesses : int;
  llc_misses : int;
}

let build_engine ?sdc_profiler ?(offset = 0) ?compute_scale cfg ~benchmark
    ~seed =
  let generator = Generator.create ~offset ~seed benchmark in
  let hierarchy = Hierarchy.create ~perfect_llc:cfg.perfect_llc cfg.hierarchy in
  let memory_channel =
    Option.map
      (fun transfer_cycles -> Memory_channel.create ~transfer_cycles)
      cfg.bandwidth
  in
  Core_engine.create ?sdc_profiler ?memory_channel ?compute_scale
    ~params:cfg.core ~hierarchy ~generator ()

let run ?offset ?compute_scale cfg ~benchmark ~seed ~instructions =
  if instructions <= 0 then invalid_arg "Single_core.run: instructions <= 0";
  let engine = build_engine ?offset ?compute_scale cfg ~benchmark ~seed in
  let remaining = ref instructions in
  while !remaining > 0 do
    remaining := !remaining - Core_engine.step engine ~cap:!remaining
  done;
  let cycles = Core_engine.cycles engine in
  let stall = Core_engine.memory_stall_cycles engine in
  Registry.incr "simcore.runs";
  push_run_counters engine;
  {
    instructions;
    cycles;
    cpi = cycles /. float_of_int instructions;
    memory_stall_cycles = stall;
    memory_cpi = stall /. float_of_int instructions;
    llc_accesses = Core_engine.llc_accesses engine;
    llc_misses = Core_engine.llc_misses engine;
  }

let profile ?offset ?compute_scale cfg ~benchmark ~seed ~trace_instructions
    ~interval_instructions =
  if cfg.perfect_llc then
    invalid_arg "Single_core.profile: profiling requires a real LLC";
  if
    interval_instructions <= 0
    || trace_instructions <= 0
    || trace_instructions mod interval_instructions <> 0
  then
    invalid_arg
      "Single_core.profile: trace length must be a positive multiple of the \
       interval length";
  let sdc_profiler = Sdc_profiler.create cfg.hierarchy.Hierarchy.llc.geometry in
  let engine =
    build_engine ~sdc_profiler ?offset ?compute_scale cfg ~benchmark ~seed
  in
  let n_intervals = trace_instructions / interval_instructions in
  let intervals =
    Array.init n_intervals (fun _ ->
        let start = Core_engine.snapshot engine in
        let remaining = ref interval_instructions in
        while !remaining > 0 do
          remaining := !remaining - Core_engine.step engine ~cap:!remaining
        done;
        let delta = Core_engine.since engine start in
        {
          Profile.instructions = delta.Core_engine.s_retired;
          cycles = delta.Core_engine.s_cycles;
          memory_stall_cycles = delta.Core_engine.s_memory_stall_cycles;
          llc_accesses = float_of_int delta.Core_engine.s_llc_accesses;
          llc_misses = float_of_int delta.Core_engine.s_llc_misses;
          sdc = Sdc_profiler.cut_interval sdc_profiler;
        })
  in
  Registry.incr "simcore.profiles";
  push_run_counters engine;
  (* Lifetime stack-distance summary of the profiled LLC stream. *)
  let total = Sdc_profiler.lifetime_total sdc_profiler in
  Registry.add "cache.sdc.mass" (Mppm_cache.Sdc.accesses total);
  Registry.add "cache.sdc.hits" (Mppm_cache.Sdc.hits total);
  Registry.add "cache.sdc.misses" (Mppm_cache.Sdc.misses total);
  (let hits = Mppm_cache.Sdc.hits total in
   if hits > 0.0 then begin
     let weighted = ref 0.0 in
     for d = 1 to Mppm_cache.Sdc.assoc total do
       weighted := !weighted +. (float_of_int d *. Mppm_cache.Sdc.counter total d)
     done;
     Registry.add "cache.sdc.hit_depth_mass" !weighted
   end);
  Profile.make ~benchmark:benchmark.Mppm_trace.Benchmark.name
    ~interval_instructions
    ~llc_assoc:cfg.hierarchy.Hierarchy.llc.geometry.Mppm_cache.Geometry.associativity
    intervals

let memory_cpi_two_run ?offset ?compute_scale cfg ~benchmark ~seed
    ~instructions =
  let real =
    run ?offset ?compute_scale { cfg with perfect_llc = false } ~benchmark
      ~seed ~instructions
  in
  let perfect =
    run ?offset ?compute_scale { cfg with perfect_llc = true } ~benchmark
      ~seed ~instructions
  in
  real.cpi -. perfect.cpi
