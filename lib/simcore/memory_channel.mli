(** A shared off-chip memory channel: the bandwidth-contention substrate
    for the paper's Sec. 8 "modeling sources of contention other than cache
    sharing" extension.

    Every LLC miss occupies the channel for a fixed transfer time (one
    cache line at the channel's bandwidth).  Misses that arrive while the
    channel is busy queue behind it; the queueing delay adds to the miss
    latency.  One channel instance is shared by all cores of a simulated
    multi-core (and a private instance can be used in single-core runs so
    isolated profiles carry their own self-queueing). *)

type t
(** A channel: its occupancy parameter plus busy-horizon state. *)

val create : transfer_cycles:float -> t  (* mppm: unit transfer_cycles:cycles -> channel *)
(** [create ~transfer_cycles] is an idle channel; [transfer_cycles] is the
    occupancy per line transfer (e.g. 64B at 4 bytes/cycle = 16 cycles).
    Must be positive. *)

val request : t -> now:float -> float  (* mppm: unit now:cycles -> cycles *)
(** [request t ~now] enqueues a line transfer issued at time [now] (cycles)
    and returns the queueing delay the requester suffers before its
    transfer starts (0 when the channel is idle).  Out-of-order arrival
    times (from loosely synchronized per-core clocks) are tolerated: a
    request in the channel's past is treated as arriving at the channel's
    current horizon only for occupancy purposes. *)

val transfers : t -> int  (* mppm: unit accesses *)
(** Lines transferred so far. *)

val total_queueing : t -> float  (* mppm: unit cycles *)
(** Sum of all queueing delays handed out. *)

val utilization : t -> now:float -> float  (* mppm: unit now:cycles -> 1 *)
(** Fraction of time the channel has been busy up to [now]. *)

val reset : t -> unit
(** Returns the channel to its idle just-created state. *)
