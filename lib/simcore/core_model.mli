(** The out-of-order core timing abstraction shared by the single-core and
    multi-core simulators.

    The paper's CMP$im cores (Table 1: 4-wide, 8-stage, 128-entry ROB,
    perfect branch prediction) are modelled as a base CPI for the
    non-memory pipeline plus an exposed-stall model for the memory
    hierarchy: an access that hits level X exposes a level-dependent
    fraction of X's latency (the rest is hidden by out-of-order execution),
    and off-core accesses are further divided by the workload's
    memory-level parallelism.  Both simulators use exactly this model, so
    the "detailed" reference and MPPM's single-core inputs are mutually
    consistent — the same relationship CMP$im has to itself in the paper. *)

type params = {
  width : int;  (** pipeline width (descriptive; Table 1: 4) *)  (* mppm: unit insns/cycles *)
  rob_entries : int;  (** ROB size (descriptive; Table 1: 128) *)
  l2_exposure : float;  (* mppm: unit 1 *)
      (** fraction of an L2 hit's extra latency the core cannot hide *)
  llc_exposure : float;  (** same for LLC hits *)  (* mppm: unit 1 *)
  memory_exposure : float;  (** same for memory accesses (LLC misses) *)  (* mppm: unit 1 *)
  fetch_exposure : float;  (* mppm: unit 1 *)
      (** fraction of miss latency exposed on the fetch path (front-end
          stalls are harder to hide than data stalls) *)
}

val default : params  (* mppm: unit params *)
(** Calibrated defaults for the Table 1 core. *)

val data_stall : params -> mlp:float -> Mppm_cache.Hierarchy.result -> float  (* mppm: unit mlp:1 -> cycles *)
(** [data_stall params ~mlp result] is the exposed stall (cycles) of a data
    access satisfied as [result].  L1 hits stall nothing (their latency is
    folded into the base CPI); deeper hits expose
    [exposure * (latency - 1)]; LLC and memory stalls are divided by
    [mlp]. *)

val fetch_stall : params -> Mppm_cache.Hierarchy.result -> float  (* mppm: unit cycles *)
(** Exposed stall of an instruction fetch. *)

(* mppm: unit mlp:1 -> cycles *)
val llc_miss_extra_stall : params -> config:Mppm_cache.Hierarchy.config -> mlp:float -> float
(** [llc_miss_extra_stall params ~config ~mlp] is the stall a data access
    suffers {e because} it missed the LLC: the difference between its
    memory stall and the stall it would have suffered as an LLC hit.  This
    is the per-event increment of the memory-CPI counter architecture
    (Eyerman et al.), and by construction equals the two-run
    (perfect-vs-real LLC) difference. *)

val fetch_llc_miss_extra_stall :  (* mppm: unit cycles *)
  params -> config:Mppm_cache.Hierarchy.config -> float
(** Same quantity for a fetch that missed the LLC. *)

val pp : Format.formatter -> params -> unit
(** Human-readable rendering of the core parameters. *)
