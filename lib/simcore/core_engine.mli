(** One core executing one program against a cache hierarchy: the engine
    shared by the single-core profiler and the detailed multi-core
    simulator.

    The engine pulls {!Mppm_trace.Op.t} blocks from a generator, charges
    base CPI for every retired instruction, issues one instruction fetch
    per {!Mppm_trace.Generator.instructions_per_fetch} instructions, sends
    data references through the hierarchy, and accounts exposed stalls per
    {!Core_model}.  It additionally maintains a memory-CPI counter in the
    style of Eyerman et al.'s CPI-stack counter architecture: every access
    that misses the LLC adds the stall it suffered {e beyond} what an LLC
    hit would have cost. *)

type t
(** A core bound to its generator and hierarchy, with running counters. *)

val create :
  ?sdc_profiler:Mppm_cache.Sdc_profiler.t ->
  ?memory_channel:Memory_channel.t ->
  ?compute_scale:float ->
  params:Core_model.params ->
  hierarchy:Mppm_cache.Hierarchy.t ->
  generator:Mppm_trace.Generator.t ->
  unit ->
  t
(** [create ~sdc_profiler ~memory_channel ~params ~hierarchy ~generator ()]
    wires a core.  If [sdc_profiler] is given, the LLC outcome of every
    access (data and fetch) is recorded into it — this is how single-core
    profiling collects SDCs without a second cache image.  If
    [memory_channel] is given, every LLC miss requests the channel and its
    queueing delay is exposed like the rest of the miss latency (shared
    channels model bandwidth contention; a private channel models a
    program's self-queueing).

    [compute_scale] (default 1.0) models a heterogeneous "little" core: it
    multiplies every cycle cost {e except} the LLC-miss-attributable stall
    (off-chip latency does not change with core strength).  This matches
    the profile transformation little cores get on the MPPM side: compute
    cycles scale, memory-stall cycles do not. *)

val step : t -> cap:int -> int  (* mppm: unit cap:insns -> insns *)
(** [step t ~cap] executes the next op block, retiring at most [cap]
    instructions, and returns the number retired.  Advances the cycle and
    counter state. *)

val retired : t -> int  (* mppm: unit insns *)
(** Total instructions retired. *)

val hierarchy : t -> Mppm_cache.Hierarchy.t
(** The hierarchy this core drives, e.g. for
    {!Mppm_cache.Hierarchy.counters} observability snapshots. *)

val cycles : t -> float  (* mppm: unit cycles *)
(** Total cycles consumed. *)

val memory_stall_cycles : t -> float  (* mppm: unit cycles *)
(** Cycles attributed to LLC misses by the counter architecture. *)

val llc_accesses : t -> int  (* mppm: unit accesses *)
(** LLC lookups issued by this core. *)

val llc_misses : t -> int  (* mppm: unit accesses *)
(** LLC misses suffered by this core. *)

(** Snapshot of the running counters, used to compute per-interval or
    per-pass deltas. *)
type snapshot = {
  s_retired : int;
  s_cycles : float;
  s_memory_stall_cycles : float;
  s_llc_accesses : int;
  s_llc_misses : int;
}

val snapshot : t -> snapshot  (* mppm: unit snapshot *)
(** The counters as of now. *)

val since : t -> snapshot -> snapshot  (* mppm: unit snapshot *)
(** [since t s] is the counter delta between now and snapshot [s]. *)
