module Hierarchy = Mppm_cache.Hierarchy
module Sdc_profiler = Mppm_cache.Sdc_profiler
module Generator = Mppm_trace.Generator
module Op = Mppm_trace.Op
module Benchmark = Mppm_trace.Benchmark
module Invariant = Mppm_util.Invariant

type t = {
  params : Core_model.params;
  hierarchy : Hierarchy.t;
  generator : Generator.t;
  sdc_profiler : Sdc_profiler.t option;
  memory_channel : Memory_channel.t option;
  compute_scale : float;
  mutable fetch_debt : int;
  mutable cycles : float;
  mutable memory_stall_cycles : float;
  mutable llc_accesses : int;
  mutable llc_misses : int;
}

let create ?sdc_profiler ?memory_channel ?(compute_scale = 1.0) ~params
    ~hierarchy ~generator () =
  if compute_scale <= 0.0 then
    invalid_arg "Core_engine.create: compute_scale <= 0";
  {
    params;
    hierarchy;
    generator;
    sdc_profiler;
    memory_channel;
    compute_scale;
    fetch_debt = 0;
    cycles = 0.0;
    memory_stall_cycles = 0.0;
    llc_accesses = 0;
    llc_misses = 0;
  }

let note_llc t (result : Hierarchy.result) =
  match result.llc_outcome with
  | None -> ()
  | Some outcome ->
      t.llc_accesses <- t.llc_accesses + 1;
      (match outcome with
      | Mppm_cache.Cache.Miss -> t.llc_misses <- t.llc_misses + 1
      | Mppm_cache.Cache.Hit _ -> ());
      (match t.sdc_profiler with
      | Some profiler -> Sdc_profiler.record_outcome profiler outcome
      | None -> ())

(* Queueing delay of an LLC miss on the shared memory channel, exposed the
   same way the raw miss latency is. *)
let channel_delay t =
  match t.memory_channel with
  | None -> 0.0
  | Some channel -> Memory_channel.request channel ~now:t.cycles

(* mppm: hot — inner fetch loop of the simulator step *)
let issue_fetches t count =
  t.fetch_debt <- t.fetch_debt + count;
  let config = Hierarchy.config t.hierarchy in
  while t.fetch_debt >= Generator.instructions_per_fetch do
    t.fetch_debt <- t.fetch_debt - Generator.instructions_per_fetch;
    let addr = Generator.next_fetch t.generator in
    let result = Hierarchy.access t.hierarchy ~kind:Hierarchy.Fetch ~addr in
    let stall = Core_model.fetch_stall t.params result in
    note_llc t result;
    match result.hit_level with
    | Hierarchy.Memory ->
        (* Split the stall: the part an LLC hit would also have suffered
           scales with the core; the off-chip extra does not. *)
        let miss_extra =
          Core_model.fetch_llc_miss_extra_stall t.params ~config
        in
        let queueing =
          t.params.Core_model.fetch_exposure *. channel_delay t
        in
        t.cycles <-
          t.cycles
          +. (t.compute_scale *. (stall -. miss_extra))
          +. miss_extra +. queueing;
        t.memory_stall_cycles <- t.memory_stall_cycles +. miss_extra +. queueing
    | Hierarchy.L1 | Hierarchy.L2 | Hierarchy.Llc ->
        t.cycles <- t.cycles +. (t.compute_scale *. stall)
  done

(* mppm: hot — per-instruction simulator step *)
let step t ~cap =
  let cycles_before = t.cycles in
  let phase = Generator.current_phase t.generator in
  let op = Generator.next t.generator ~cap in
  t.cycles <-
    t.cycles
    +. (t.compute_scale
       *. float_of_int op.Op.instructions
       *. phase.Benchmark.base_cpi);
  issue_fetches t op.Op.instructions;
  (match op.Op.access with
  | None -> ()
  | Some { Op.addr; kind } ->
      let kind =
        match kind with Op.Load -> Hierarchy.Load | Op.Store -> Hierarchy.Store
      in
      let result = Hierarchy.access t.hierarchy ~kind ~addr in
      let mlp = phase.Benchmark.mlp in
      let stall = Core_model.data_stall t.params ~mlp result in
      note_llc t result;
      (match result.hit_level with
      | Hierarchy.Memory ->
          let miss_extra =
            Core_model.llc_miss_extra_stall t.params
              ~config:(Hierarchy.config t.hierarchy)
              ~mlp
          in
          let queueing =
            t.params.Core_model.memory_exposure *. channel_delay t /. mlp
          in
          t.cycles <-
            t.cycles
            +. (t.compute_scale *. (stall -. miss_extra))
            +. miss_extra +. queueing;
          t.memory_stall_cycles <- t.memory_stall_cycles +. miss_extra +. queueing
      | Hierarchy.L1 | Hierarchy.L2 | Hierarchy.Llc ->
          t.cycles <- t.cycles +. (t.compute_scale *. stall)));
  if Invariant.enabled () then begin
    Invariant.checkf "simcore.cycles_monotone" (t.cycles >= cycles_before)
      (fun () ->
        Printf.sprintf "cycle count fell from %g to %g" cycles_before t.cycles);
    Invariant.check "simcore.cycles_finite" (Float.is_finite t.cycles);
    Invariant.check "simcore.memory_stall_nonneg"
      (t.memory_stall_cycles >= 0.0 && t.memory_stall_cycles <= t.cycles)
  end;
  op.Op.instructions

let retired t = Generator.retired t.generator
let hierarchy t = t.hierarchy
let cycles t = t.cycles
let memory_stall_cycles t = t.memory_stall_cycles
let llc_accesses t = t.llc_accesses
let llc_misses t = t.llc_misses

type snapshot = {
  s_retired : int;
  s_cycles : float;
  s_memory_stall_cycles : float;
  s_llc_accesses : int;
  s_llc_misses : int;
}

let snapshot t =
  {
    s_retired = retired t;
    s_cycles = t.cycles;
    s_memory_stall_cycles = t.memory_stall_cycles;
    s_llc_accesses = t.llc_accesses;
    s_llc_misses = t.llc_misses;
  }

let since t s =
  {
    s_retired = retired t - s.s_retired;
    s_cycles = t.cycles -. s.s_cycles;
    s_memory_stall_cycles = t.memory_stall_cycles -. s.s_memory_stall_cycles;
    s_llc_accesses = t.llc_accesses - s.s_llc_accesses;
    s_llc_misses = t.llc_misses - s.s_llc_misses;
  }
