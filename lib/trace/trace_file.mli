(** Recording and replaying memory-reference traces.

    The paper's simulator (CMP$im, from the Cache Replacement
    Championship) is driven by address traces; this module provides the
    equivalent interchange format for our synthetic programs: a compact
    binary file of data references (address + load/store + the compute gap
    before the reference).  A recorded trace replays bit-identically
    through cache models and stack-distance profilers without the
    generator, and lets cache studies run on machines/geometries the
    original profile never saw.

    Format (little-endian, written with [output_binary_int]-compatible
    framing): a magic line, the benchmark name, the access count, then one
    record per reference. *)

type meta = {
  benchmark : string;
  accesses : int;  (** number of reference records *)
  instructions : int;  (** instructions covered (gaps + references) *)
}

val record :
  path:string ->
  generator:Generator.t ->
  accesses:int ->
  unit ->
  meta
(** [record ~path ~generator ~accesses ()] pulls ops from the generator
    until [accesses] data references have been emitted and writes them to
    [path].  Returns the metadata written. *)

val read_meta : string -> meta
(** Header only.  Raises [Failure] on a malformed file. *)

val fold :
  string -> init:'acc -> f:('acc -> gap:int -> Op.access -> 'acc) -> 'acc
(** [fold path ~init ~f] streams the records: [f acc ~gap access] receives
    each reference and the compute-instruction gap preceding it.  Raises
    [Failure] on truncation or corruption (the record count must match the
    header). *)

val replay_sdc :
  string -> geometry:Mppm_cache.Geometry.t -> Mppm_cache.Sdc.t
(** [replay_sdc path ~geometry] runs the trace through a fresh LRU
    stack-distance profiler of the given geometry and returns the lifetime
    SDC — the offline equivalent of profiling the generator live. *)

val replay_miss_rate :
  string -> geometry:Mppm_cache.Geometry.t -> float
(** Miss rate of the trace on a fresh LRU cache of the given geometry. *)
