type meta = { benchmark : string; accesses : int; instructions : int }

let magic = "mppm-trace v1"

(* Each record: gap (4 bytes), flags (1 byte: bit0 = store), address
   (8 bytes).  Addresses are full byte addresses; gaps are the compute
   instructions since the previous reference. *)
let record_bytes = 13

let write_record oc ~gap (access : Op.access) =
  if gap < 0 || gap > 0x3FFFFFFF then failwith "Trace_file: gap out of range";
  output_binary_int oc gap;
  output_char oc
    (match access.Op.kind with Op.Load -> '\000' | Op.Store -> '\001');
  (* 64-bit address, big-endian, via two 32-bit writes. *)
  output_binary_int oc (access.Op.addr lsr 32);
  output_binary_int oc (access.Op.addr land 0xFFFFFFFF)

let record ~path ~generator ~accesses () =
  if accesses <= 0 then invalid_arg "Trace_file.record: accesses <= 0";
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let name = (Generator.benchmark generator).Benchmark.name in
      Printf.fprintf oc "%s\n%s\n%d\n" magic name accesses;
      let written = ref 0 in
      let gap = ref 0 in
      let start = Generator.retired generator in
      while !written < accesses do
        let op = Generator.next generator ~cap:max_int in
        match op.Op.access with
        | None -> gap := !gap + op.Op.instructions
        | Some access ->
            write_record oc ~gap:(!gap + op.Op.instructions - 1) access;
            gap := 0;
            incr written
      done;
      {
        benchmark = name;
        accesses;
        instructions = Generator.retired generator - start;
      })

let read_header ic path =
  let line () =
    try input_line ic
    with End_of_file -> failwith (path ^ ": truncated trace header")
  in
  if line () <> magic then failwith (path ^ ": not an mppm trace file");
  let benchmark = line () in
  let accesses =
    match int_of_string_opt (line ()) with
    | Some n when n > 0 -> n
    | Some _ | None -> failwith (path ^ ": malformed access count")
  in
  (benchmark, accesses)

let read_meta path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let benchmark, accesses = read_header ic path in
      (* Instructions are recoverable only by streaming; report the record
         payload instead. *)
      let header_end = pos_in ic in
      let payload = in_channel_length ic - header_end in
      if payload <> accesses * record_bytes then
        failwith (path ^ ": truncated or corrupt trace payload");
      { benchmark; accesses; instructions = 0 })

let fold path ~init ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let _, accesses = read_header ic path in
      let acc = ref init in
      (try
         for _ = 1 to accesses do
           let gap = input_binary_int ic in
           let kind =
             match input_char ic with
             | '\000' -> Op.Load
             | '\001' -> Op.Store
             | _ -> failwith (path ^ ": corrupt record flags")
           in
           let hi = input_binary_int ic in
           let lo = input_binary_int ic in
           let addr = (hi lsl 32) lor (lo land 0xFFFFFFFF) in
           acc := f !acc ~gap { Op.addr; kind }
         done
       with End_of_file -> failwith (path ^ ": truncated trace payload"));
      !acc)

let replay_sdc path ~geometry =
  let profiler = Mppm_cache.Sdc_profiler.create geometry in
  fold path ~init:() ~f:(fun () ~gap:_ access ->
      ignore (Mppm_cache.Sdc_profiler.access profiler access.Op.addr));
  Mppm_cache.Sdc_profiler.lifetime_total profiler

let replay_miss_rate path ~geometry =
  let cache = Mppm_cache.Cache.create geometry in
  fold path ~init:() ~f:(fun () ~gap:_ access ->
      ignore (Mppm_cache.Cache.access cache access.Op.addr));
  Mppm_cache.Cache.miss_rate cache
