type pattern = Uniform | Sequential | Strided of int

type region = {
  region_name : string;
  size_bytes : int;
  weight : float;
  region_pattern : pattern;
}

type phase = {
  phase_name : string;
  base_cpi : float;
  mem_ratio : float;
  store_fraction : float;
  mlp : float;
  regions : region list;
}

type t = {
  name : string;
  description : string;
  schedule : (phase * int) list;
  code_bytes : int;
  hot_code_bytes : int;
  cold_fetch_rate : float;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let validate_region b r =
  if r.size_bytes <= 0 then
    fail "Benchmark %s: region %s has non-positive size" b r.region_name;
  if r.weight < 0.0 then
    fail "Benchmark %s: region %s has negative weight" b r.region_name;
  match r.region_pattern with
  | Strided s when s <= 0 -> fail "Benchmark %s: region %s has non-positive stride" b r.region_name
  | Strided s when s >= r.size_bytes ->
      fail "Benchmark %s: region %s stride exceeds region size" b r.region_name
  | Strided _ | Uniform | Sequential -> ()

let validate_phase b (p, duration) =
  if duration <= 0 then fail "Benchmark %s: phase %s has non-positive duration" b p.phase_name;
  if p.base_cpi <= 0.0 then fail "Benchmark %s: phase %s has non-positive base CPI" b p.phase_name;
  if p.mem_ratio < 0.0 || p.mem_ratio > 1.0 then
    fail "Benchmark %s: phase %s mem_ratio not in [0,1]" b p.phase_name;
  if p.store_fraction < 0.0 || p.store_fraction > 1.0 then
    fail "Benchmark %s: phase %s store_fraction not in [0,1]" b p.phase_name;
  if p.mlp < 1.0 then fail "Benchmark %s: phase %s mlp must be >= 1" b p.phase_name;
  if p.regions = [] then fail "Benchmark %s: phase %s has no regions" b p.phase_name;
  List.iter (validate_region b) p.regions;
  let total_weight = List.fold_left (fun acc r -> acc +. r.weight) 0.0 p.regions in
  if not (total_weight > 0.0) then
    fail "Benchmark %s: phase %s has zero total region weight" b p.phase_name

let validate t =
  if t.name = "" then fail "Benchmark: empty name";
  if t.schedule = [] then fail "Benchmark %s: empty schedule" t.name;
  List.iter (validate_phase t.name) t.schedule;
  if t.code_bytes <= 0 then fail "Benchmark %s: non-positive code footprint" t.name;
  if t.hot_code_bytes <= 0 || t.hot_code_bytes > t.code_bytes then
    fail "Benchmark %s: hot code must be positive and within the footprint"
      t.name;
  if t.cold_fetch_rate < 0.0 || t.cold_fetch_rate > 1.0 then
    fail "Benchmark %s: cold_fetch_rate not in [0,1]" t.name

let schedule_period t =
  List.fold_left (fun acc (_, d) -> acc + d) 0 t.schedule

let phase_at t n =
  if n < 0 then invalid_arg "Benchmark.phase_at: negative instruction index";
  let period = schedule_period t in
  let pos = n mod period in
  let rec find offset = function
    | [] -> assert false
    | (phase, duration) :: rest ->
        if pos < offset + duration then (phase, offset + duration - pos)
        else find (offset + duration) rest
  in
  find 0 t.schedule

let data_footprint t =
  List.fold_left
    (fun acc (p, _) ->
      let phase_bytes =
        List.fold_left (fun b r -> b + r.size_bytes) 0 p.regions
      in
      max acc phase_bytes)
    0 t.schedule

let mean_mem_ratio t =
  let period = schedule_period t in
  let weighted =
    List.fold_left
      (fun acc (p, d) -> acc +. (p.mem_ratio *. float_of_int d))
      0.0 t.schedule
  in
  weighted /. float_of_int period

let pp ppf t =
  Format.fprintf ppf "%s: %s (%d phases, %s data, %s code)" t.name
    t.description (List.length t.schedule)
    (let b = data_footprint t in
     if b >= 1 lsl 20 then Printf.sprintf "%.1fMB" (float_of_int b /. 1048576.0)
     else Printf.sprintf "%dKB" (b / 1024))
    (Printf.sprintf "%dKB" (t.code_bytes / 1024))
