type access_kind = Load | Store
type access = { addr : int; kind : access_kind }
type t = { instructions : int; access : access option }

let compute n =
  if n < 1 then invalid_arg "Op.compute: block must retire >= 1 instruction";
  (* lint: allow P1 per-op record; the unboxed op encoding is the ROADMAP-2 rewrite *)
  { instructions = n; access = None }

let memory ~gap ~addr ~kind =
  if gap < 0 then invalid_arg "Op.memory: negative gap";
  (* lint: allow P1 per-op record; the unboxed op encoding is the ROADMAP-2 rewrite *)
  { instructions = gap + 1; access = Some { addr; kind } }

let pp ppf t =
  match t.access with
  | None -> Format.fprintf ppf "compute[%d]" t.instructions
  | Some { addr; kind } ->
      Format.fprintf ppf "%s[%d]@0x%x"
        (match kind with Load -> "load" | Store -> "store")
        t.instructions addr
