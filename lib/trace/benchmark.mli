(** Statistical benchmark models: the stand-in for SPEC CPU2006.

    A benchmark is a cyclic schedule of {e phases}; each phase fixes an
    instruction mix (memory-operation ratio, store fraction), a base CPI
    for the non-memory pipeline, a memory-level-parallelism factor, and a
    set of {e regions} — address ranges accessed with given weights and
    patterns.  The region structure determines the stack-distance profile
    (and hence cache behaviour at every level); the phase schedule provides
    the time-varying behaviour MPPM's per-interval profiles are designed to
    capture (paper Sec. 2.1). *)

type pattern =
  | Uniform
      (** uniformly random lines within the region: working-set behaviour
          with a miss-rate knee at the region size *)
  | Sequential
      (** a streaming pointer advancing line by line, wrapping: classic
          streaming behaviour, no temporal reuse beyond the line *)
  | Strided of int
      (** pointer advancing by a fixed byte stride, wrapping: strided
          numeric kernels; stride below the line size yields spatial
          locality, above it behaves like a sparser stream *)

type region = {
  region_name : string;
  size_bytes : int;  (** footprint of the region *)
  weight : float;  (** relative probability of an access landing here *)
  region_pattern : pattern;
}

type phase = {
  phase_name : string;
  base_cpi : float;
      (** CPI of the non-memory pipeline (instruction delivery, execution,
          branches folded in: the paper's cores have perfect branch
          prediction) *)
  mem_ratio : float;  (** fraction of instructions that access data memory *)
  store_fraction : float;  (** fraction of data accesses that are stores *)
  mlp : float;
      (** memory-level parallelism: how many long-latency accesses overlap
          on average; divides the exposed stall of off-core accesses *)
  regions : region list;  (** must be non-empty with positive total weight *)
}

type t = {
  name : string;
  description : string;
  schedule : (phase * int) list;
      (** cyclic phase schedule: (phase, duration in instructions); total
          duration must be positive.  A single entry means a stationary
          benchmark. *)
  code_bytes : int;  (** static code footprint (cold code reachable) *)
  hot_code_bytes : int;
      (** the loop working set: fetches cycle through this region and hit
          L1I to the extent it fits; must not exceed [code_bytes] *)
  cold_fetch_rate : float;
      (** probability per fetched line of an excursion to a uniformly
          random line of the full code footprint (calls into cold code);
          models the front-end misses of big-code benchmarks *)
}

val validate : t -> unit
(** Raises [Invalid_argument] describing the first malformed field. *)

val phase_at : t -> int -> phase * int
(** [phase_at b n] is the phase active at instruction [n] (counting from 0,
    cycling through the schedule) and the number of instructions remaining
    in that phase occurrence (always >= 1). *)

val schedule_period : t -> int
(** Total instructions of one pass through the phase schedule. *)

val data_footprint : t -> int
(** Largest total region footprint over the phases (bytes). *)

val mean_mem_ratio : t -> float
(** Schedule-weighted average memory-operation ratio. *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)
