(* Parameter notes.  Region sizes are chosen against the paper's hierarchy:
   32KB L1D / 256KB private L2 / 512KB (config #1) shared LLC.  A region
   under ~32KB is L1-resident, under ~256KB is L2-resident and never
   stresses the LLC, between ~300KB and ~1MB is the LLC-sensitive band
   (hits when alone, thrashes when shared), and multi-MB regions miss the
   LLC regardless and make a benchmark memory-bound but sharing-
   insensitive.  Streaming kernels use Strided patterns with sub-line
   strides (8-24B), so they touch a new line only every few accesses —
   the spatial locality real sweeps have.  [mlp] divides exposed miss
   latency: pointer chasers get ~1.1-1.4, software-pipelined streams 3-4.

   Code: fetches cycle through [hot] bytes (hitting L1I iff it fits 32KB)
   and take cold excursions over the full [code] footprint at rate
   [cold]; big-code benchmarks (gcc, perlbench, xalancbmk, ...) get hot
   loops above 32KB and visible cold rates. *)

let kb n = n * 1024
let mb n = n * 1024 * 1024

let region ?(pattern = Benchmark.Uniform) name size weight =
  {
    Benchmark.region_name = name;
    size_bytes = size;
    weight;
    region_pattern = pattern;
  }

let phase ?(store = 0.30) ?(mlp = 1.5) name ~cpi ~mem regions =
  {
    Benchmark.phase_name = name;
    base_cpi = cpi;
    mem_ratio = mem;
    store_fraction = store;
    mlp;
    regions;
  }

let bench ?(code = kb 64) ?(hot = kb 16) ?(cold = 0.005) name ~description
    schedule =
  let b =
    {
      Benchmark.name;
      description;
      schedule;
      code_bytes = code;
      hot_code_bytes = min hot code;
      cold_fetch_rate = cold;
    }
  in
  Benchmark.validate b;
  b

(* Phase durations are in instructions, sized so that phases alternate
   several times within the default experiment scale (2M-10M instruction
   traces, 1:100 of the paper's 1B). *)
let steady p = [ (p, 1_000_000) ]

(* ------------------------------------------------------------------ *)
(* SPEC CPU2006 integer                                                *)
(* ------------------------------------------------------------------ *)

let perlbench =
  bench "perlbench" ~description:"Perl interpreter: large code, medium heap"
    ~code:(kb 512) ~hot:(kb 40) ~cold:0.02
    (steady
       (phase "interp" ~cpi:0.55 ~mem:0.34 ~mlp:1.4
          [
            region "stack" (kb 24) 5.0;
            region "heap" (kb 144) 2.0;
            region "cold-heap" (mb 2) 0.02;
          ]))

let bzip2 =
  bench "bzip2" ~description:"block compression, compress/decompress phases"
    ~code:(kb 48) ~hot:(kb 12)
    [
      ( phase "compress" ~cpi:0.52 ~mem:0.30 ~mlp:1.8 ~store:0.35
          [
            region "block" ~pattern:(Benchmark.Strided 16) (kb 880) 0.5;
            region "tables" (kb 56) 2.2;
          ],
        400_000 );
      ( phase "decompress" ~cpi:0.45 ~mem:0.26 ~mlp:2.0 ~store:0.40
          [
            region "block" ~pattern:(Benchmark.Strided 16) (kb 880) 0.35;
            region "tables" (kb 56) 2.6;
          ],
        300_000 );
    ]

let gcc =
  bench "gcc" ~description:"compiler: huge code footprint, pass-structured phases"
    ~code:(mb 1) ~hot:(kb 48) ~cold:0.03
    [
      ( phase "parse" ~cpi:0.60 ~mem:0.30 ~mlp:1.4
          [
            region "ast" (kb 700) 0.18;
            region "symtab" (kb 88) 2.0;
          ],
        350_000 );
      ( phase "optimize" ~cpi:0.55 ~mem:0.34 ~mlp:1.3
          [
            region "ast" (kb 700) 0.30;
            region "dataflow" (kb 380) 0.18;
            region "symtab" (kb 88) 1.6;
          ],
        450_000 );
    ]

let mcf =
  bench "mcf" ~description:"network simplex: giant pointer-chased arcs array"
    ~code:(kb 16) ~hot:(kb 8)
    (steady
       (phase "simplex" ~cpi:0.42 ~mem:0.36 ~mlp:1.4
          [
            region "arcs" (mb 24) 1.0;
            region "nodes" (kb 56) 8.0;
          ]))

let gobmk =
  bench "gobmk" ~description:"Go engine: board caches in the LLC-sensitive band"
    ~code:(kb 384) ~hot:(kb 36) ~cold:0.02
    (steady
       (phase "search" ~cpi:0.55 ~mem:0.27 ~mlp:1.3
          [
            region "patterns" (kb 360) 0.12;
            region "board" (kb 40) 3.0;
          ]))

let hmmer =
  bench "hmmer" ~description:"profile HMM search: hot L1/L2-resident matrices"
    ~code:(kb 32) ~hot:(kb 8)
    (steady
       (phase "viterbi" ~cpi:0.42 ~mem:0.42 ~mlp:4.0 ~store:0.25
          [
            region "dp-matrix" (kb 24) 1.0;
            region "model" (kb 16) 1.0;
          ]))

let sjeng =
  bench "sjeng" ~description:"chess: hash probes into a big transposition table"
    ~code:(kb 96) ~hot:(kb 24) ~cold:0.01
    (steady
       (phase "search" ~cpi:0.50 ~mem:0.24 ~mlp:1.2
          [
            region "ttable" (mb 2) 0.05;
            region "board" (kb 120) 1.6;
          ]))

let libquantum =
  bench "libquantum" ~description:"quantum simulation: pure streaming, prefetchable"
    ~code:(kb 16) ~hot:(kb 6)
    (steady
       (phase "gates" ~cpi:0.36 ~mem:0.26 ~mlp:3.8 ~store:0.45
          [
            region "state" ~pattern:(Benchmark.Strided 8) (kb 1536) 1.0;
            region "scratch" (kb 16) 0.4;
          ]))

let h264ref =
  bench "h264ref" ~description:"video encoder: frame buffers around LLC size"
    ~code:(kb 256) ~hot:(kb 28) ~cold:0.012
    [
      ( phase "motion-est" ~cpi:0.50 ~mem:0.36 ~mlp:1.8
          [
            region "ref-frame" ~pattern:(Benchmark.Strided 16) (kb 560) 0.45;
            region "macroblock" (kb 48) 2.4;
          ],
        350_000 );
      ( phase "encode" ~cpi:0.46 ~mem:0.30 ~mlp:2.0 ~store:0.4
          [
            region "cur-frame" ~pattern:(Benchmark.Strided 16) (kb 560) 0.5;
            region "macroblock" (kb 48) 2.0;
          ],
        250_000 );
    ]

let omnetpp =
  bench "omnetpp" ~description:"discrete event simulation: pointer-heavy LLC-band heap"
    ~code:(kb 320) ~hot:(kb 30) ~cold:0.015
    (steady
       (phase "events" ~cpi:0.55 ~mem:0.31 ~mlp:1.25
          [
            region "heap" (kb 640) 0.10;
            region "event-queue" (kb 64) 2.0;
          ]))

let astar =
  bench "astar" ~description:"path finding: map scans alternating with queue work"
    ~code:(kb 32) ~hot:(kb 10)
    [
      ( phase "expand" ~cpi:0.48 ~mem:0.32 ~mlp:1.3
          [
            region "map" (mb 1) 0.16;
            region "open-list" (kb 88) 1.4;
          ],
        300_000 );
      ( phase "backtrack" ~cpi:0.44 ~mem:0.24 ~mlp:1.2
          [
            region "map" (mb 1) 0.06;
            region "open-list" (kb 88) 2.2;
          ],
        200_000 );
    ]

let xalancbmk =
  bench "xalancbmk" ~description:"XSLT processor: DOM in the LLC-sensitive band"
    ~code:(kb 768) ~hot:(kb 44) ~cold:0.025
    (steady
       (phase "transform" ~cpi:0.55 ~mem:0.33 ~mlp:1.35
          [
            region "dom" (kb 600) 0.13;
            region "strings" (kb 56) 2.4;
          ]))

(* ------------------------------------------------------------------ *)
(* SPEC CPU2006 floating point                                         *)
(* ------------------------------------------------------------------ *)

let bwaves =
  bench "bwaves" ~description:"blast waves CFD: long prefetchable sweeps"
    ~code:(kb 24) ~hot:(kb 8)
    [
      ( phase "sweep-x" ~cpi:0.45 ~mem:0.40 ~mlp:3.4 ~store:0.35
          [
            region "grid" ~pattern:(Benchmark.Strided 8) (kb 2560) 1.0;
            region "coeffs" (kb 96) 0.5;
          ],
        400_000 );
      ( phase "sweep-y" ~cpi:0.45 ~mem:0.40 ~mlp:2.6 ~store:0.35
          [
            region "grid" ~pattern:(Benchmark.Strided 24) (kb 2560) 1.0;
            region "coeffs" (kb 96) 0.5;
          ],
        400_000 );
    ]

let gamess =
  bench "gamess" ~description:"quantum chemistry: integral table exactly in the LLC band"
    ~code:(kb 192) ~hot:(kb 26) ~cold:0.008
    (steady
       (phase "scf" ~cpi:0.40 ~mem:0.28 ~mlp:1.05
          [
            region "integrals" (kb 320) 0.22;
            region "fock" (kb 112) 1.8;
          ]))

let milc =
  bench "milc" ~description:"lattice QCD: strided gather/scatter over a big lattice"
    ~code:(kb 32) ~hot:(kb 10)
    (steady
       (phase "cg" ~cpi:0.50 ~mem:0.38 ~mlp:2.8 ~store:0.35
          [
            region "lattice" ~pattern:(Benchmark.Strided 16) (kb 2560) 1.0;
            region "vectors" (kb 112) 1.5;
          ]))

let zeusmp =
  bench "zeusmp" ~description:"astrophysics CFD: streaming with resident coefficients"
    ~code:(kb 48) ~hot:(kb 14)
    (steady
       (phase "hydro" ~cpi:0.50 ~mem:0.35 ~mlp:3.0 ~store:0.35
          [
            region "grid" ~pattern:(Benchmark.Strided 12) (mb 2) 1.0;
            region "coeffs" (kb 120) 0.8;
          ]))

let gromacs =
  bench "gromacs" ~description:"molecular dynamics: compute-bound inner kernels"
    ~code:(kb 128) ~hot:(kb 12)
    (steady
       (phase "forces" ~cpi:0.48 ~mem:0.30 ~mlp:2.2
          [
            region "neighbors" (kb 96) 1.0;
            region "positions" (kb 32) 1.4;
          ]))

let cactusadm =
  bench "cactusADM" ~description:"numerical relativity: stencil sweeps"
    ~code:(kb 64) ~hot:(kb 18)
    (steady
       (phase "stencil" ~cpi:0.55 ~mem:0.36 ~mlp:3.0 ~store:0.3
          [
            region "grid" ~pattern:(Benchmark.Strided 24) (mb 3) 1.0;
            region "halo" (kb 80) 2.5;
          ]))

let leslie3d =
  bench "leslie3d" ~description:"turbulence CFD: streaming sweeps"
    ~code:(kb 40) ~hot:(kb 12)
    (steady
       (phase "flux" ~cpi:0.50 ~mem:0.40 ~mlp:3.2 ~store:0.35
          [
            region "grid" ~pattern:(Benchmark.Strided 8) (kb 2048) 1.0;
            region "faces" (kb 96) 0.6;
          ]))

let namd =
  bench "namd" ~description:"molecular dynamics: tight compute loops"
    ~code:(kb 96) ~hot:(kb 10)
    (steady
       (phase "forces" ~cpi:0.40 ~mem:0.32 ~mlp:2.6
          [
            region "pairlists" (kb 112) 1.0;
            region "atoms" (kb 32) 1.5;
          ]))

let dealii =
  bench "dealII" ~description:"adaptive FEM: matrix structures straddling the LLC"
    ~code:(kb 448) ~hot:(kb 32) ~cold:0.015
    (steady
       (phase "assemble" ~cpi:0.50 ~mem:0.34 ~mlp:1.5
          [
            region "sparse-matrix" (kb 420) 0.11;
            region "cells" (kb 64) 2.0;
          ]))

let soplex =
  bench "soplex" ~description:"simplex LP: matrix bigger than the LLC, partial reuse"
    ~code:(kb 256) ~hot:(kb 24) ~cold:0.01
    (steady
       (phase "pricing" ~cpi:0.45 ~mem:0.37 ~mlp:1.6
          [
            region "matrix" (kb 880) 0.28;
            region "basis" (kb 96) 1.2;
            region "workvec" (kb 24) 1.5;
          ]))

let povray =
  bench "povray" ~description:"ray tracing: small hot scene graph, compute-bound"
    ~code:(kb 320) ~hot:(kb 22) ~cold:0.008
    (steady
       (phase "trace" ~cpi:0.46 ~mem:0.30 ~mlp:1.6
          [
            region "scene" (kb 80) 1.0;
            region "stack" (kb 16) 2.0;
          ]))

let calculix =
  bench "calculix" ~description:"structural FEM: resident solver with cold matrix tail"
    ~code:(kb 192) ~hot:(kb 20) ~cold:0.008
    (steady
       (phase "solve" ~cpi:0.50 ~mem:0.32 ~mlp:2.0
          [
            region "front" (kb 160) 1.0;
            region "matrix" (mb 1) 0.05;
          ]))

let gemsfdtd =
  bench "GemsFDTD" ~description:"electromagnetics FDTD: field sweeps"
    ~code:(kb 48) ~hot:(kb 14)
    (steady
       (phase "update" ~cpi:0.50 ~mem:0.42 ~mlp:3.0 ~store:0.4
          [
            region "fields" ~pattern:(Benchmark.Strided 8) (mb 3) 1.0;
            region "boundary" (kb 64) 0.4;
          ]))

let tonto =
  bench "tonto" ~description:"quantum crystallography: compute-bound with moderate tail"
    ~code:(kb 256) ~hot:(kb 26) ~cold:0.008
    (steady
       (phase "integrals" ~cpi:0.50 ~mem:0.30 ~mlp:1.8
          [
            region "basis" (kb 144) 1.0;
            region "density" (kb 512) 0.04;
          ]))

let lbm =
  bench "lbm" ~description:"lattice Boltzmann: store-heavy pure streaming"
    ~code:(kb 16) ~hot:(kb 6)
    (steady
       (phase "collide" ~cpi:0.40 ~mem:0.44 ~mlp:3.8 ~store:0.48
          [
            region "cells" ~pattern:(Benchmark.Strided 8) (mb 3) 1.0;
          ]))

let wrf =
  bench "wrf" ~description:"weather model: physics/dynamics phase alternation"
    ~code:(kb 512) ~hot:(kb 30) ~cold:0.01
    [
      ( phase "dynamics" ~cpi:0.50 ~mem:0.36 ~mlp:2.8 ~store:0.35
          [
            region "atmosphere" ~pattern:(Benchmark.Strided 16) (mb 2 + kb 512) 0.8;
            region "tendencies" (kb 176) 1.0;
          ],
        350_000 );
      ( phase "physics" ~cpi:0.55 ~mem:0.28 ~mlp:1.8
          [
            region "columns" (kb 144) 1.6;
            region "tendencies" (kb 176) 0.8;
          ],
        300_000 );
    ]

let sphinx3 =
  bench "sphinx3" ~description:"speech recognition: acoustic model scans"
    ~code:(kb 160) ~hot:(kb 22) ~cold:0.01
    (steady
       (phase "gmm" ~cpi:0.50 ~mem:0.36 ~mlp:2.0
          [
            region "acoustic-model" (mb 1 + kb 768) 0.15;
            region "active-list" (kb 72) 1.4;
          ]))

let all =
  [|
    perlbench; bzip2; gcc; mcf; gobmk; hmmer; sjeng; libquantum; h264ref;
    omnetpp; astar; xalancbmk; bwaves; gamess; milc; zeusmp; gromacs;
    cactusadm; leslie3d; namd; dealii; soplex; povray; calculix; gemsfdtd;
    tonto; lbm; wrf; sphinx3;
  |]

let count = Array.length all
let names = Array.map (fun b -> b.Benchmark.name) all

let index name =
  let rec scan i =
    if i >= count then raise Not_found
    else if names.(i) = name then i
    else scan (i + 1)
  in
  scan 0

let find name = all.(index name)

let seed_for name =
  (* Stable FNV-1a hash of the name: profiles regenerated in any session
     describe the same synthetic program. *)
  let h = ref 0x1ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    name;
  !h land max_int
