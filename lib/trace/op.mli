(** The unit of work produced by a workload generator and consumed by the
    timing simulators: a small block of instructions, optionally ending in
    one data-memory access.

    Block-level (rather than per-instruction) delivery keeps trace-driven
    simulation fast while preserving exact instruction counts and the exact
    memory reference stream. *)

type access_kind = Load | Store
(** Data read vs. data write. *)

type access = { addr : int; kind : access_kind }
(** One data reference: byte address plus load/store. *)

type t = {
  instructions : int;  (* mppm: unit insns *)
      (** instructions retired by this block, including the memory
          instruction itself when [access] is [Some _]; always >= 1 *)
  access : access option;
      (** the data reference ending the block, if any.  [None] blocks are
          pure compute (e.g. the tail of a phase). *)
}

val compute : int -> t  (* mppm: unit insns -> op *)
(** [compute n] is a block of [n] compute instructions. *)

val memory : gap:int -> addr:int -> kind:access_kind -> t  (* mppm: unit gap:insns -> addr:_ -> kind:_ -> op *)
(** [memory ~gap ~addr ~kind] is [gap] compute instructions followed by one
    memory instruction. *)

(* lint: allow S4 debugging printer kept as API surface *)
val pp : Format.formatter -> t -> unit
(** Compact one-line rendering of the block. *)
