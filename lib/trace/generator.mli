(** Turns a {!Benchmark.t} spec into a deterministic instruction/reference
    stream.

    Two generators created with the same seed and offset produce identical
    streams, which is what lets the single-core profiling runs and the
    detailed multi-core simulations observe the same program (paper: same
    1B-instruction SimPoint trace everywhere).

    The data stream is delivered as {!Op.t} blocks via {!next}; the
    instruction-fetch stream is delivered line by line via {!next_fetch}
    (the simulator issues one fetch per [instructions_per_fetch] retired
    instructions). *)

type t
(** A generator: the benchmark spec plus its RNG streams and cursors. *)

val instructions_per_fetch : int
(** Retired instructions covered by one fetched line (64B line / ~4B per
    x86-ish instruction = 16). *)

val create : ?offset:int -> seed:int -> Benchmark.t -> t
(** [create ~offset ~seed benchmark] validates the benchmark and builds a
    fresh generator.  [offset] (default 0) displaces the whole address
    space; the multi-core simulator gives each co-running program a
    distinct, page-randomized offset so independent programs never share
    lines yet still conflict in the shared cache's sets. *)

val benchmark : t -> Benchmark.t
(** The spec this generator was created from. *)

val retired : t -> int
(** Instructions retired through {!next} so far. *)

val next : t -> cap:int -> Op.t
(** [next t ~cap] produces the next block, retiring at most [cap]
    instructions ([cap >= 1]).  Blocks never span a phase boundary, so the
    caller can cut profile intervals exactly. *)

val next_fetch : t -> int
(** The next instruction-cache line (byte address) touched by the fetch
    stream: sequential within the code footprint with occasional jumps. *)

val current_phase : t -> Benchmark.phase
(** The phase the next instruction belongs to. *)

val address_space_bytes : t -> int
(** Bytes of address space spanned (code + all regions, page aligned),
    before the offset is applied. *)
