(** The synthetic benchmark suite standing in for SPEC CPU2006.

    Twenty-nine benchmarks named after the SPEC CPU2006 programs, each a
    {!Benchmark.t} statistical model calibrated against the paper's cache
    hierarchy (32KB L1, 256KB private L2, 512KB-2MB shared LLC):

    {ul
    {- {e compute-bound / cache-resident} models (hmmer, povray, namd,
       gromacs, ...) whose working sets fit in the private levels;}
    {- {e LLC-sensitive} models (gamess above all, then gobmk, soplex,
       omnetpp, h264ref, xalancbmk, dealII) whose hot data fits the LLC when
       run alone but thrashes under sharing — the paper's Sec. 6 finds
       exactly this set to be the sharing-sensitive one;}
    {- {e memory-bound streaming} models (mcf, lbm, libquantum, milc,
       bwaves, leslie3d, GemsFDTD, ...) whose footprints dwarf any LLC and
       who therefore care little about sharing;}
    {- phase-alternating models (gcc, bzip2, astar, wrf, bwaves, ...) that
       exercise MPPM's per-interval time-varying machinery.}} *)

val all : Benchmark.t array
(** The 29 benchmarks, in a fixed order (index = benchmark id). *)

val count : int
(** [Array.length all] = 29, matching the paper's workload population
    arithmetic (435 two-program mixes, 35,960 four-program mixes, ...). *)

val names : string array
(** Benchmark names, same order as {!all}. *)

val find : string -> Benchmark.t
(** [find name] looks a benchmark up by name.  Raises [Not_found]. *)

val index : string -> int
(** Position of a benchmark name in {!all}.  Raises [Not_found]. *)

val seed_for : string -> int
(** A stable per-benchmark generator seed derived from the name, so every
    run of the tooling sees the same program. *)
