let instructions_per_fetch = 16
let page_bytes = 4096
let line_bytes = 64

let round_to_page bytes = (bytes + page_bytes - 1) / page_bytes * page_bytes

(* Per-region runtime state: the base address in the generator's address
   space and, for Sequential/Strided patterns, the running cursor. *)
type region_state = {
  region : Benchmark.region;
  base : int;
  mutable cursor : int;
}

type phase_state = {
  phase : Benchmark.phase;
  duration : int;
  weights : float array;
  total_weight : float;
  inv_log_one_minus_p : float;
      (** 1 / ln(1 - mem_ratio), precomputed for geometric gap draws; 0 when
          mem_ratio is 0 or 1 *)
  region_states : region_state array;
}

type t = {
  bench : Benchmark.t;
  rng : Mppm_util.Rng.t;
  fetch_rng : Mppm_util.Rng.t;
      (* The fetch stream draws from its own PRNG stream so that the data
         stream is invariant to how the caller blocks its [next] calls
         relative to [next_fetch]. *)
  offset : int;
  phases : phase_state array;
  mutable phase_idx : int;
  mutable phase_remaining : int;
  mutable retired : int;
  (* Compute instructions owed before the pending memory access, and the
     memory ratio it was drawn under (a phase switch invalidates it). *)
  mutable pending_gap : int;
  mutable pending_valid : bool;
  mutable pending_ratio : float;
  (* Fetch stream state. *)
  code_bytes : int;
  mutable fetch_cursor : int;
  address_space_bytes : int;
}

let create ?(offset = 0) ~seed bench =
  Benchmark.validate bench;
  let rng = Mppm_util.Rng.create ~seed in
  let fetch_rng = Mppm_util.Rng.split rng in
  (* Lay out the address space: code first, then each distinct region (by
     name) page-aligned, in first-appearance order. *)
  let next_free = ref (round_to_page bench.Benchmark.code_bytes) in
  let shared_states : (string, region_state) Hashtbl.t = Hashtbl.create ~random:false 16 in
  let state_for (region : Benchmark.region) =
    match Hashtbl.find_opt shared_states region.Benchmark.region_name with
    | Some st -> st
    | None ->
        let base = !next_free in
        next_free := !next_free + round_to_page region.Benchmark.size_bytes;
        let st = { region; base; cursor = 0 } in
        Hashtbl.add shared_states region.Benchmark.region_name st;
        st
  in
  let phases =
    bench.Benchmark.schedule
    |> List.map (fun ((phase : Benchmark.phase), duration) ->
           let region_states =
             Array.of_list (List.map state_for phase.Benchmark.regions)
           in
           let weights =
             Array.map (fun st -> st.region.Benchmark.weight) region_states
           in
           let p = phase.Benchmark.mem_ratio in
           {
             phase;
             duration;
             weights;
             total_weight = Array.fold_left ( +. ) 0.0 weights;
             inv_log_one_minus_p =
               (if p > 0.0 && p < 1.0 then 1.0 /. log (1.0 -. p) else 0.0);
             region_states;
           })
    |> Array.of_list
  in
  {
    bench;
    rng;
    fetch_rng;
    offset;
    phases;
    phase_idx = 0;
    phase_remaining = phases.(0).duration;
    retired = 0;
    pending_gap = 0;
    pending_valid = false;
    pending_ratio = 0.0;
    code_bytes = bench.Benchmark.code_bytes;
    fetch_cursor = 0;
    address_space_bytes = !next_free;
  }

let benchmark t = t.bench
let retired t = t.retired
let current_phase t = t.phases.(t.phase_idx).phase
let address_space_bytes t = t.address_space_bytes

(* Advance the retired-instruction clock by [k], rolling phases over. [k]
   never exceeds the current phase's remaining budget (callers clamp). *)
let advance t k =
  t.retired <- t.retired + k;
  t.phase_remaining <- t.phase_remaining - k;
  if Int.equal t.phase_remaining 0 then begin
    t.phase_idx <- (t.phase_idx + 1) mod Array.length t.phases;
    t.phase_remaining <- t.phases.(t.phase_idx).duration
  end

let lines_in bytes = max 1 (bytes / line_bytes)

(* mppm: unit _ -- byte address *)
let region_address t (st : region_state) =
  let open Benchmark in
  let within =
    match st.region.region_pattern with
    | Uniform -> Mppm_util.Rng.int t.rng (lines_in st.region.size_bytes) * line_bytes
    | Sequential ->
        let a = st.cursor in
        st.cursor <- (st.cursor + line_bytes) mod st.region.size_bytes;
        a
    | Strided stride ->
        let a = st.cursor in
        st.cursor <- (st.cursor + stride) mod st.region.size_bytes;
        a
  in
  t.offset + st.base + within

(* mppm: unit insns -- compute-gap draw between accesses *)
let draw_gap t (ps : phase_state) =
  if ps.phase.Benchmark.mem_ratio >= 1.0 then 0
  else
    (* Inverse-CDF geometric draw with the log precomputed per phase. *)
    let u = Mppm_util.Rng.float t.rng 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (log u *. ps.inv_log_one_minus_p)

(* Weighted region pick with the phase's precomputed total weight.  The
   scan is toplevel so the per-access pick allocates no closure. *)
(* mppm: unit _ -- weighted index scan *)
let rec scan_weights weights n target i acc =
  if i >= n - 1 then n - 1
  else
    let acc = acc +. weights.(i) in
    if target < acc then i else scan_weights weights n target (i + 1) acc

(* mppm: unit _ -- weighted region index draw *)
let pick_region t (ps : phase_state) =
  let target = Mppm_util.Rng.float t.rng ps.total_weight in
  scan_weights ps.weights (Array.length ps.weights) target 0 0.0

(* mppm: unit _ -> cap:insns -> op *)
let next t ~cap =
  if cap < 1 then invalid_arg "Generator.next: cap must be >= 1";
  let ps = t.phases.(t.phase_idx) in
  let phase = ps.phase in
  let limit = min cap t.phase_remaining in
  if phase.Benchmark.mem_ratio <= 0.0 then begin
    (* Pure-compute phase: no access can occur before the phase ends. *)
    t.pending_valid <- false;
    advance t limit;
    Op.compute limit
  end
  else begin
    if not (t.pending_valid && Float.equal t.pending_ratio phase.Benchmark.mem_ratio)
    then begin
      t.pending_gap <- draw_gap t ps;
      t.pending_valid <- true;
      t.pending_ratio <- phase.Benchmark.mem_ratio
    end;
    if t.pending_gap + 1 > limit then begin
      (* The access does not fit: emit compute and keep owing it. *)
      t.pending_gap <- t.pending_gap - limit;
      advance t limit;
      Op.compute limit
    end
    else begin
      let gap = t.pending_gap in
      t.pending_valid <- false;
      let region_idx = pick_region t ps in
      let addr = region_address t ps.region_states.(region_idx) in
      let kind =
        if Mppm_util.Rng.bernoulli t.rng ~p:phase.Benchmark.store_fraction then
          Op.Store
        else Op.Load
      in
      advance t (gap + 1);
      Op.memory ~gap ~addr ~kind
    end
  end

(* mppm: unit op -- generated fetch op *)
let next_fetch t =
  (* Fetches cycle sequentially through the hot loop body (so the L1I sees
     steady reuse to the extent the loop fits), with occasional excursions
     into the cold code footprint. *)
  if Mppm_util.Rng.bernoulli t.fetch_rng ~p:t.bench.Benchmark.cold_fetch_rate
  then
    t.offset
    + (Mppm_util.Rng.int t.fetch_rng (lines_in t.code_bytes) * line_bytes)
  else begin
    t.fetch_cursor <-
      (t.fetch_cursor + line_bytes) mod t.bench.Benchmark.hot_code_bytes;
    t.offset + t.fetch_cursor
  end
