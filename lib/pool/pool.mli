(** A deterministic fixed-size domain pool (OCaml 5 [Domain]s).

    [map] fans an array of independent tasks out over the pool's domains
    through a chunked work queue, yet returns results positionally — slot
    [i] always holds [f xs.(i)] — so a parallel map is bit-for-bit
    identical to [Array.map f xs] for any job count, provided each task
    is a pure function of its input (in this tree: every task carries its
    own derived RNG seed and draws nothing from shared mutable state; see
    docs/parallelism.md for the determinism argument).

    Deterministic usage counters are published through
    {!Mppm_obs.Registry} under ["pool.*"]: [pool.batches], [pool.tasks]
    and [pool.queue_depth_hwm] (the largest batch submitted).  Counts
    only — the pool never reads wall-clock itself (lint rule D1/O1).
    Timing observability is opt-in: pass a live {!Mppm_obs.Prof.t}
    (whose clock bench/ and tools/ inject) to {!create}/{!with_pool}
    and the pool records per-task duration, queue wait and the worker
    index that ran each task, serialized under its own mutex.
    Profiling never changes results — profiled runs stay bit-for-bit
    identical (tested).

    A pool is not reentrant: tasks must not call {!map} on the pool that
    is running them, and only one {!map} may be in flight per pool. *)

type t
(** A pool of worker domains plus the submitting domain. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1: the job count
    {!create} and {!with_pool} use when none is given. *)

val create : ?jobs:int -> ?prof:Mppm_obs.Prof.t -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitter is
    the remaining worker, so [jobs = 1] spawns nothing and {!map} runs
    tasks in the calling domain, in index order).  [jobs] defaults to
    {!default_jobs}; values below 1 are rejected.  [prof] (default
    {!Mppm_obs.Prof.null}) receives per-task timing: worker indices
    [0 .. jobs - 2] are the spawned domains and [jobs - 1] the
    submitter.  Call {!shutdown} when done, or use {!with_pool}. *)

val shutdown : t -> unit
(** Signals the workers to exit and joins them.  Idempotent.  Any later
    {!map} on the pool is rejected. *)

val with_pool : ?jobs:int -> ?prof:Mppm_obs.Prof.t -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises.  [prof] is forwarded to
    {!create}. *)

val jobs : t -> int
(** The pool's job count (worker domains + the submitter). *)

val map :
  ?on_done:(done_:int -> total:int -> unit) ->
  ?chunk:int ->
  t ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map t f xs] computes [Array.map f xs] with the pool's domains,
    assigning tasks by index in chunks of [chunk] (default 1) and storing
    each result in its task's slot.  [on_done] is called after every task
    completes, serialized under the pool's mutex — [done_] counts
    completed tasks (monotonic, [1..total]) so a progress reporter never
    observes interleaved or out-of-order updates.  If any task raises,
    the remaining tasks still run and the exception of the lowest-index
    failing task is re-raised (deterministic whichever worker hit it
    first). *)

val map_reduce :
  ?on_done:(done_:int -> total:int -> unit) ->
  ?chunk:int ->
  t ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** [map_reduce t ~map ~reduce ~init xs] maps in parallel with {!map},
    then folds the results sequentially in task order — the fold order
    (and thus any float accumulation) is independent of the job count. *)
