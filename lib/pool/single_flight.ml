(* Single-flight memoization: one computation per key, shared by every
   concurrent requester.

   The table holds [Running] while a computation is in flight; requesters
   that find it wait on the condition variable and re-check.  A failed
   computation removes the key and wakes the waiters, one of which then
   becomes the new computer — so an exception never wedges a key. *)

module Registry = Mppm_obs.Registry

type 'v slot = Running | Done of 'v

type ('k, 'v) t = {
  mutex : Mutex.t;
  ready : Condition.t;
  table : ('k, 'v slot) Hashtbl.t;
  metric : string option;
}

let create ?metric () =
  {
    mutex = Mutex.create ();
    ready = Condition.create ();
    table = Hashtbl.create ~random:false 64;
    metric;
  }

let count_hit t =
  Registry.incr "pool.single_flight.hits";
  match t.metric with
  | Some m -> Registry.incr (m ^ ".memo_hits")
  | None -> ()

let get t key compute =
  Mutex.lock t.mutex;
  let rec await () =
    match Hashtbl.find_opt t.table key with
    | Some (Done v) ->
        Mutex.unlock t.mutex;
        count_hit t;
        v
    | Some Running ->
        Condition.wait t.ready t.mutex;
        await ()
    | None -> (
        Hashtbl.replace t.table key Running;
        Mutex.unlock t.mutex;
        Registry.incr "pool.single_flight.computes";
        match compute key with
        | v ->
            Mutex.lock t.mutex;
            Hashtbl.replace t.table key (Done v);
            Condition.broadcast t.ready;
            Mutex.unlock t.mutex;
            v
        | exception e ->
            Mutex.lock t.mutex;
            Hashtbl.remove t.table key;
            Condition.broadcast t.ready;
            Mutex.unlock t.mutex;
            raise e)
  in
  await ()

let mem t key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Done _) -> true
    | Some Running | None -> false
  in
  Mutex.unlock t.mutex;
  r
