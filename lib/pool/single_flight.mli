(** A mutex-guarded, single-flight memo table.

    [get t k compute] returns the cached value for [k], computing it with
    [compute k] on first request.  When several domains request the same
    key concurrently, exactly one runs [compute]; the others block until
    the value lands and then share it.  The computation runs outside the
    table's lock, so distinct keys compute in parallel.

    Counters ({!Mppm_obs.Registry}): every computation increments
    ["pool.single_flight.computes"] and every request served without
    computing increments ["pool.single_flight.hits"] — both are functions
    of the request multiset alone (hits = requests − distinct keys), so
    they are independent of scheduling and job count.  A table created
    with [~metric:"m"] additionally counts hits under ["m.memo_hits"],
    which is how the profile cache keeps its historical counter names. *)

type ('k, 'v) t
(** A single-flight table from ['k] to ['v]. *)

val create : ?metric:string -> unit -> ('k, 'v) t
(** A fresh empty table.  [metric], when given, prefixes the per-table
    hit counter (["<metric>.memo_hits"]). *)

val get : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** [get t k compute] is the value for [k], computed at most once.  If
    [compute] raises, the key is released (so a later request retries)
    and the exception propagates to the requester that ran it; waiting
    requesters elect a new computer. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Whether a completed value for [k] is in the table. *)
