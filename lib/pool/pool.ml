(* A fixed-size domain pool with a chunked, index-ordered work queue.

   Determinism: tasks are identified by index; slot [i] of the result
   array always receives [f xs.(i)], and reductions happen sequentially
   in index order after the barrier.  The scheduling (which domain runs
   which chunk) is timing-dependent, but nothing observable depends on
   it: results are positional, the progress callback sees a monotonic
   completed-count, error selection picks the lowest failing index, and
   the registry counters count work items, not scheduling events.

   Memory model: every cross-domain interaction (claiming a chunk,
   storing a result, bumping the completed count, reading results after
   the batch-done broadcast) happens under [t.mutex], which establishes
   the happens-before edges the OCaml memory model requires.  Tasks
   themselves run unlocked. *)

module Registry = Mppm_obs.Registry
module Prof = Mppm_obs.Prof

type batch = {
  b_total : int;
  b_chunk : int;
  mutable b_run : int -> int -> unit;  (* worker index, task index *)
  mutable b_next : int;  (* next unclaimed task index *)
  mutable b_completed : int;
  mutable b_submitted : float;  (* profiler clock at submission, else 0 *)
}

type t = {
  n_jobs : int;
  prof : Prof.t;  (* task metrics sink; Prof.null when not profiling *)
  mutex : Mutex.t;
  work : Condition.t;  (* a batch was submitted, or shutdown *)
  finished : Condition.t;  (* the current batch completed *)
  mutable batch : batch option;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Claim the next chunk of [b], under [t.mutex]. *)
let claim_chunk b =
  if b.b_next >= b.b_total then None
  else begin
    let lo = b.b_next in
    let hi = min b.b_total (lo + b.b_chunk) in
    b.b_next <- hi;
    Some (lo, hi)
  end

let worker t idx =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec await () =
      if t.stopped then None
      else
        match t.batch with
        | Some b -> (
            match claim_chunk b with
            | Some span -> Some (b, span)
            | None ->
                Condition.wait t.work t.mutex;
                await ())
        | None ->
            Condition.wait t.work t.mutex;
            await ()
    in
    let claimed = await () in
    Mutex.unlock t.mutex;
    match claimed with
    | None -> ()
    | Some (b, (lo, hi)) ->
        for i = lo to hi - 1 do
          b.b_run idx i
        done;
        loop ()
  in
  loop ()

let create ?jobs ?(prof = Prof.null) () =
  let n_jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n_jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n_jobs;
      prof;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      stopped = false;
      workers = [];
    }
  in
  Prof.note_jobs prof n_jobs;
  t.workers <-
    List.init (n_jobs - 1) (fun i -> Domain.spawn (fun () -> worker t i));
  t

let jobs t = t.n_jobs

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?jobs ?prof f =
  let t = create ?jobs ?prof () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ?on_done ?(chunk = 1) t f xs =
  if chunk < 1 then invalid_arg "Pool.map: chunk must be >= 1";
  let total = Array.length xs in
  if total = 0 then [||]
  else begin
    let results = Array.make total None in
    (* Lowest-index failure, so the raised exception does not depend on
       which worker happened to fail first. *)
    let error = ref None in
    let record_error i e =
      match !error with
      | Some (j, _) when j <= i -> ()
      | _ -> error := Some (i, e)
    in
    let clk = Prof.clock t.prof in
    let b =
      { b_total = total; b_chunk = chunk; b_run = (fun _ _ -> ());
        b_next = 0; b_completed = 0; b_submitted = 0.0 }
    in
    (* Completion bookkeeping, under [t.mutex].  Task metrics are recorded
       first, under the same lock, so the profiler needs no lock of its
       own and profiling changes nothing observable (timing is a side
       channel; results stay positional). *)
    let complete timing i r =
      Mutex.lock t.mutex;
      (match timing with
      | Some (domain, t_start, t_end) ->
          Prof.task t.prof ~domain ~start:t_start
            ~wait:(t_start -. b.b_submitted) ~dur:(t_end -. t_start)
      | None -> ());
      (match r with
      | Ok v -> results.(i) <- Some v
      | Error e -> record_error i e);
      b.b_completed <- b.b_completed + 1;
      (match on_done with
      | Some cb -> ( try cb ~done_:b.b_completed ~total with e -> record_error i e)
      | None -> ());
      if b.b_completed = total then begin
        t.batch <- None;
        Condition.broadcast t.finished
      end;
      Mutex.unlock t.mutex
    in
    let run domain i =
      match clk with
      | None ->
          let r = try Ok (f xs.(i)) with e -> Error e in
          complete None i r
      | Some now ->
          let t_start = now () in
          let r = try Ok (f xs.(i)) with e -> Error e in
          let t_end = now () in
          complete (Some (domain, t_start, t_end)) i r
    in
    b.b_run <- run;
    (match clk with Some now -> b.b_submitted <- now () | None -> ());
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    if t.batch <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: a batch is already running on this pool"
    end;
    t.batch <- Some b;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* Deterministic usage counters: batch and task counts plus the
       largest batch seen.  Only the submitting domain updates these. *)
    Registry.incr "pool.batches";
    Registry.add "pool.tasks" (float_of_int total);
    let hwm = Registry.get "pool.queue_depth_hwm" in
    if float_of_int total > hwm then
      Registry.add "pool.queue_depth_hwm" (float_of_int total -. hwm);
    (* The submitter is the last worker index [n_jobs - 1]: it drains
       chunks like the spawned domains, then waits for stragglers. *)
    let submitter = t.n_jobs - 1 in
    let rec help () =
      Mutex.lock t.mutex;
      let claimed =
        match t.batch with
        | Some b' when b' == b -> claim_chunk b
        | _ -> None
      in
      match claimed with
      | Some (lo, hi) ->
          Mutex.unlock t.mutex;
          for i = lo to hi - 1 do
            run submitter i
          done;
          help ()
      | None ->
          while b.b_completed < total do
            Condition.wait t.finished t.mutex
          done;
          Mutex.unlock t.mutex
    in
    help ();
    (match !error with Some (_, e) -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce ?on_done ?chunk t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map ?on_done ?chunk t f xs)
