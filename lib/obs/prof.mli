(* lint: allow-file S4 profiler readouts are obs API surface; bench/tools consume a task-dependent subset *)
(** Injected-clock profiling: scoped wall-time spans with Gc allocation
    deltas, duration quantiles, and the domain pool's per-task metrics.

    The clock is {e caller-supplied} ([bench/], [tools/] and [bin/]
    inject [Unix.gettimeofday]; tests inject counters), so [lib/] never
    reads wall-clock and lint rule D1 holds by construction.  {!null} is
    the default everywhere: every recording point is one branch, no
    clock is read, nothing is allocated, and profiled runs are
    bit-for-bit identical to unprofiled ones (tested in
    [test/suite_obs.ml] and [test/suite_pool.ml]).

    A profiler is {b not} thread-safe on its own: recording must be
    serialized by the caller.  {!Mppm_pool.Pool} records task metrics
    under its own mutex; span scopes belong on the orchestrating
    domain. *)

type clock = unit -> float
(** A monotone time source, in seconds.  Never read inside [lib/]. *)

type t
(** A possibly-null profiler. *)

val null : t
(** The no-op profiler: recording points cost one branch. *)

val make : clock:clock -> t
(** A live profiler reading timestamps from [clock]. *)

val enabled : t -> bool
(** Whether this profiler records anything. *)

val clock : t -> clock option
(** The injected clock, [None] for {!null}.  Lets instrumentation (the
    pool) skip timestamp reads entirely when profiling is off. *)

(** One completed scoped span. *)
type span = {
  sp_name : string;  (** span label, e.g. a bench phase name *)
  sp_start : float;  (** clock value at entry *)
  sp_dur : float;  (** elapsed clock, clamped at 0 *)
  sp_alloc_bytes : float;
      (** [Gc.allocated_bytes] delta on the recording domain *)
}

(** Aggregate statistics over all spans sharing a name. *)
type span_stats = {
  ss_name : string;  (** span label *)
  ss_count : float;  (** completed spans *)
  ss_total : float;  (** summed duration *)
  ss_alloc_bytes : float;  (** summed allocation delta *)
  ss_p50 : float;  (** median span duration (bucketed estimate) *)
  ss_p90 : float;  (** 90th-percentile span duration *)
  ss_p99 : float;  (** 99th-percentile span duration *)
}

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f ()] inside a span: clock and allocation
    deltas are recorded under [name] whether [f] returns or raises.
    With {!null} this is exactly [f ()]. *)

val spans : t -> span list
(** Every completed span, in completion order.  Empty for {!null}. *)

val span_stats : t -> span_stats list
(** Per-name aggregates with p50/p90/p99 duration quantiles, sorted by
    name.  Empty for {!null}. *)

(** One pool task execution, as recorded by [Mppm_pool.Pool]. *)
type task = {
  tk_domain : int;  (** worker index that ran the task (submitter last) *)
  tk_start : float;  (** clock value when the task body started *)
  tk_wait : float;  (** submit-to-start queue wait *)
  tk_dur : float;  (** task body duration *)
}

(** Per-worker totals inside {!pool_stats}. *)
type domain_stat = {
  d_domain : int;  (** worker index *)
  d_tasks : float;  (** tasks completed by this worker *)
  d_busy : float;  (** summed task-body time on this worker *)
}

(** Utilization summary over every recorded pool task. *)
type pool_stats = {
  p_jobs : int;  (** pool size (largest {!note_jobs}, floored at the
                     number of workers observed) *)
  p_tasks : float;  (** tasks recorded *)
  p_domains : domain_stat list;  (** per-worker totals, sorted by index *)
  p_elapsed : float;  (** last task end minus first task start *)
  p_utilization : float;
      (** total busy time / (elapsed x jobs): 1.0 = perfectly packed *)
  p_wait_p50 : float;  (** median queue wait *)
  p_wait_p99 : float;  (** 99th-percentile queue wait *)
  p_dur_p50 : float;  (** median task duration *)
  p_dur_p90 : float;  (** 90th-percentile task duration *)
  p_dur_p99 : float;  (** 99th-percentile task duration *)
}

val note_jobs : t -> int -> unit
(** Record the pool size so {!pool_stats} can report utilization over
    idle workers too.  Called by [Pool.create]. *)

val task : t -> domain:int -> start:float -> wait:float -> dur:float -> unit
(** Record one completed pool task.  Negative waits/durations (clock
    skew) clamp to 0.  Callers must serialize — the pool invokes this
    under its batch mutex. *)

val tasks : t -> task list
(** Every recorded task, in completion order.  Empty for {!null}.  Feeds
    the per-domain lanes of [bench/main.exe --trace-phases]. *)

val pool_stats : t -> pool_stats option
(** The utilization summary; [None] for {!null} or when no task was
    recorded. *)

val pp_pool : Format.formatter -> t -> unit
(** Render {!pool_stats} as the post-run utilization block printed by
    [bench/main.exe] and [tools/calibrate.exe]. *)
