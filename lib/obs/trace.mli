(* lint: allow-file S4 emit helpers are the documented obs API even when sinks are attached elsewhere *)
(** The trace handle threaded through the model core.

    [Trace.null] is the default everywhere: with it, every emission point
    is a single pattern match on an immediate — no event is built, no
    field list allocated, and model results are bit-for-bit identical to
    an instrumented run (the same discipline as [MPPM_SANITIZE=1]).
    Attach a {!Sink.t} to make the same run stream typed events. *)

type t
(** A possibly-null event emitter. *)

val null : t
(** The no-op handle: emission points cost one branch. *)

val of_sink : Sink.t -> t
(** A live handle delivering to [sink]. *)

val enabled : t -> bool
(** Whether a sink is attached.  Instrumentation uses this to skip
    building payloads that only exist for the trace. *)

val emit : t -> (unit -> Event.t) -> unit
(** [emit t thunk] forces [thunk] and delivers the event only when a sink
    is attached — the thunk must be side-effect-free on model state. *)

val instant : t -> name:string -> time:float -> (string * Event.value) list -> unit
(** Build-and-emit convenience for instant events.  Note the field list
    is evaluated by the caller; prefer {!emit} with a thunk on hot
    paths. *)

val span :
  t ->
  name:string ->
  time:float ->
  dur:float ->
  (string * Event.value) list ->
  unit
(** Build-and-emit convenience for span events. *)

val close : t -> unit
(** Close the underlying sink, if any. *)
