type t = {
  bounds : float array;
  counts : float array;  (* length = Array.length bounds + 1 *)
  mutable total : float;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
}

let create ~bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Histogram.create: no bucket bounds";
  for i = 0 to n - 1 do
    if not (Float.is_finite bounds.(i)) then
      invalid_arg "Histogram.create: non-finite bound";
    if i > 0 && bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Histogram.create: bounds must be strictly increasing"
  done;
  {
    bounds = Array.copy bounds;
    counts = Array.make (n + 1) 0.0;
    total = 0.0;
    sum = 0.0;
    lo = infinity;
    hi = neg_infinity;
  }

(* Geometric bounds [first, first*ratio, ...]: the natural shape for
   cycle/instruction magnitudes that span decades. *)
let create_exponential ~first ~ratio ~buckets =
  if first <= 0.0 || ratio <= 1.0 || buckets < 1 then
    invalid_arg "Histogram.create_exponential: need first > 0, ratio > 1";
  create ~bounds:(Array.init buckets (fun i -> first *. (ratio ** float_of_int i)))

let bucket_index t x =
  (* First bucket whose upper bound exceeds x; the last bucket is open. *)
  let n = Array.length t.bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x < t.bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe t x =
  if not (Float.is_finite x) then invalid_arg "Histogram.observe: non-finite";
  let i = bucket_index t x in
  t.counts.(i) <- t.counts.(i) +. 1.0;
  t.total <- t.total +. 1.0;
  t.sum <- t.sum +. x;
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.total
let sum t = t.sum
let mean t = if t.total > 0.0 then t.sum /. t.total else 0.0
let min_value t = if t.total > 0.0 then Some t.lo else None
let max_value t = if t.total > 0.0 then Some t.hi else None
let bucket_counts t = Array.copy t.counts

let same_bounds a b =
  Array.length a.bounds = Array.length b.bounds
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if not (Float.equal x b.bounds.(i)) then ok := false)
        a.bounds;
      !ok)

let merge a b =
  if not (same_bounds a b) then
    invalid_arg "Histogram.merge: bucket bounds differ";
  let t = create ~bounds:a.bounds in
  Array.iteri (fun i c -> t.counts.(i) <- c +. b.counts.(i)) a.counts;
  t.total <- a.total +. b.total;
  t.sum <- a.sum +. b.sum;
  t.lo <- Float.min a.lo b.lo;
  t.hi <- Float.max a.hi b.hi;
  t

let quantile t p =
  if not (Float.is_finite p && p >= 0.0 && p <= 1.0) then
    invalid_arg "Histogram.quantile: p must lie in [0, 1]";
  if t.total <= 0.0 then 0.0
  else begin
    (* Linear interpolation inside the bucket holding rank [p * total].
       The open end buckets borrow the observed extremes as edges, and
       the result is clamped to [lo, hi], so quantile 0 = min and
       quantile 1 = max.  Every input (counts, total, lo, hi) is
       invariant under merge order, hence so is the estimate. *)
    let clamp x = Float.min t.hi (Float.max t.lo x) in
    let rank = p *. t.total in
    let n = Array.length t.bounds in
    let rec go i cum =
      if i > n then t.hi
      else
        let c = t.counts.(i) in
        if c > 0.0 && cum +. c >= rank then begin
          let lo_edge = if i = 0 then t.lo else t.bounds.(i - 1) in
          let hi_edge = if i = n then t.hi else t.bounds.(i) in
          let frac = Float.max 0.0 (Float.min 1.0 ((rank -. cum) /. c)) in
          clamp (lo_edge +. (frac *. (hi_edge -. lo_edge)))
        end
        else go (i + 1) (cum +. c)
    in
    go 0 0.0
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  let n = Array.length t.bounds in
  for i = 0 to n do
    if i > 0 then Format.fprintf ppf "@,";
    let label =
      if i = 0 then Printf.sprintf "< %g" t.bounds.(0)
      else if i = n then Printf.sprintf ">= %g" t.bounds.(n - 1)
      else Printf.sprintf "[%g, %g)" t.bounds.(i - 1) t.bounds.(i)
    in
    Format.fprintf ppf "%-24s %.0f" label t.counts.(i)
  done;
  Format.fprintf ppf "@]"
