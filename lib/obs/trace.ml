type t = Sink.t option

let null = None
let of_sink sink = Some sink
let enabled t = Option.is_some t

let emit t thunk =
  match t with None -> () | Some sink -> Sink.emit sink (thunk ())

let instant t ~name ~time fields =
  match t with
  | None -> ()
  | Some sink -> Sink.emit sink (Event.make ~name ~time fields)

let span t ~name ~time ~dur fields =
  match t with
  | None -> ()
  | Some sink -> Sink.emit sink (Event.make ~name ~time ~dur fields)

let close t = match t with None -> () | Some sink -> Sink.close sink
