(* lint: allow-file S4 statistical readouts are obs API surface; external use is optional by design *)
(** Fixed-bound histograms for telemetry (latency/budget/size
    distributions).

    A histogram with bounds [b_0 < b_1 < ... < b_{n-1}] has [n + 1]
    buckets: (-inf, b_0), [b_0, b_1), ..., [b_{n-1}, +inf).  Two
    histograms with identical bounds merge bucket-wise, associatively and
    commutatively (exact on integer counts), so per-phase histograms can
    be aggregated like {!Counter} sets. *)

type t
(** A mutable histogram. *)

val create : bounds:float array -> t
(** [create ~bounds] with strictly increasing finite bounds.  Raises
    [Invalid_argument] otherwise. *)

val create_exponential : first:float -> ratio:float -> buckets:int -> t
(** Geometric bounds [first, first*ratio, first*ratio^2, ...]: the natural
    shape for cycle counts spanning decades.  Requires [first > 0],
    [ratio > 1], [buckets >= 1]. *)

val observe : t -> float -> unit
(** Record one finite sample. *)

val count : t -> float
(** Number of samples recorded. *)

val sum : t -> float
(** Sum of all samples. *)

val mean : t -> float
(** [sum / count]; 0 when empty. *)

val min_value : t -> float option
(** Smallest sample, [None] when empty. *)

val max_value : t -> float option
(** Largest sample, [None] when empty. *)

val bucket_counts : t -> float array
(** Per-bucket sample counts, length [Array.length (bounds t) + 1]. *)

val quantile : t -> float -> float
(** [quantile t p] estimates the [p]-quantile (e.g. 0.5/0.9/0.99 for
    p50/p90/p99) from the bucketed counts: the bucket holding rank
    [p * count] is located and the value interpolated linearly inside it,
    with the open end buckets bounded by the observed min/max, so
    [quantile t 0.0 = min] and [quantile t 1.0 = max].  The estimate is
    monotone in [p] and invariant under merge order (qcheck-tested).
    Returns 0 on an empty histogram; raises [Invalid_argument] when [p]
    lies outside [0, 1]. *)

val merge : t -> t -> t
(** Bucket-wise sum of two histograms with identical bounds; raises
    [Invalid_argument] on a bounds mismatch.  Inputs are not mutated. *)

val pp : Format.formatter -> t -> unit
(** Multi-line [range count] rendering. *)
