(* lint: allow-file S4 counter combinators are obs API surface; external use is optional by design *)
(** A named counter set: the basic metric container of {!Mppm_obs}.

    Counters are float-valued so large event counts and fractional masses
    (e.g. scaled SDC accesses) share one representation.  Sets merge
    pointwise, which makes per-worker or per-phase counter sets
    aggregatable: merge is associative and commutative up to float
    addition (exact on integer-valued counts within 2^53). *)

type t
(** A mutable map from counter name to accumulated value. *)

val create : unit -> t
(** An empty counter set. *)

val add : t -> string -> float -> unit
(** [add t name by] accumulates [by] onto [name] (creating it at 0).
    Raises [Invalid_argument] on a non-finite delta. *)

val incr : t -> string -> unit
(** [incr t name] is [add t name 1.0]. *)

val value : t -> string -> float
(** Current value of [name]; 0 when never touched. *)

val to_alist : t -> (string * float) list
(** All counters sorted by name (deterministic report order). *)

val of_alist : (string * float) list -> t
(** Build a set from name/value pairs (duplicates accumulate). *)

val merge : t -> t -> t
(** [merge a b] is a fresh set holding the pointwise sum; inputs are not
    mutated. *)

val copy : t -> t
(** An independent set with the same values. *)

val is_empty : t -> bool
(** Whether no counter has ever been touched. *)

val reset : t -> unit
(** Drop every counter. *)

val pp : Format.formatter -> t -> unit
(** Multi-line [name value] rendering, sorted by name. *)
