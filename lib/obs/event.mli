(** Typed trace events and their wire formats.

    An event is a named record stamped with a {e virtual} timestamp —
    cycles or instructions, never wall-clock inside [lib/] — plus an
    optional duration (a span) and a flat list of typed fields.

    Two wire formats are supported: JSONL (one self-contained JSON object
    per line; the canonical, parseable format) and the Chrome
    [trace_event] object format (for chrome://tracing / Perfetto).  Both
    renderings are deterministic: float formatting is locale-free and
    shortest-round-trip, so identical runs produce byte-identical
    traces. *)

(** A field value.  Numbers distinguish [Int] from [Float] so counters
    round-trip exactly. *)
type value =
  | Int of int
  | Float of float
  | String of string
  | List of value list

type t = {
  name : string;  (** dotted event name, e.g. ["model.quantum"] *)
  time : float;  (** virtual timestamp (cycles or instructions) *)
  dur : float option;  (** span length in the same unit; [None] = instant *)
  fields : (string * value) list;  (** payload, in emission order *)
}

val make : name:string -> time:float -> ?dur:float -> (string * value) list -> t
(** [make ~name ~time ?dur fields] validates and builds an event.  Raises
    [Invalid_argument] on an empty name, non-finite time, negative or
    non-finite duration, or a field named [name]/[t]/[dur] (the reserved
    JSONL keys). *)

val to_jsonl : t -> string
(** One-line JSON object: [{"name":..., "t":..., ("dur":...,)? fields...}].
    No trailing newline.  Raises [Invalid_argument] if a float field is
    NaN or infinite (they have no JSON representation). *)

val of_jsonl : string -> (t, string) result
(** Parse one {!to_jsonl} line back.  Total — malformed input yields
    [Error] with a diagnostic, never an exception. *)

val to_chrome : ?pid:int -> ?tid:int -> t -> string
(** The event as a Chrome [trace_event] JSON object ("X" complete event
    when [dur] is present, "i" instant otherwise; fields become [args]).
    [pid]/[tid] pick the process/thread timeline rows (both default 0;
    the bench phase trace routes pool tasks onto per-domain [tid] lanes).
    Callers wrap the objects in a JSON array to form a loadable trace —
    see {!Render.chrome}. *)

val float_field : t -> string -> float option
(** Numeric field as a float ([Int] coerces); [None] when absent or not a
    number. *)

val int_field : t -> string -> int option
(** Integer field; [None] when absent or not an [Int]. *)

val float_list_field : t -> string -> float list option
(** A [List] field of numbers, as floats; [None] on any non-number
    element. *)

val string_list_field : t -> string -> string list option
(** A [List] field of strings; [None] on any non-string element. *)
