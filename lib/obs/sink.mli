(** Pluggable event consumers.

    A sink is just an [emit] function plus a [close] hook.  The library
    ships only in-memory plumbing; file writers (JSONL, Chrome trace JSON)
    live in [bin/]/[tools/] so [lib/] never owns an output channel — all
    model-core output either returns data or flows through a sink the
    caller supplied. *)

type t
(** An event consumer. *)

val make : ?close:(unit -> unit) -> (Event.t -> unit) -> t
(** [make ?close emit] wraps an emit function; [close] (default no-op) is
    called once when the producer is done (flush/close files there). *)

val emit : t -> Event.t -> unit
(** Deliver one event. *)

val close : t -> unit
(** Run the sink's close hook. *)

val memory : unit -> t * (unit -> Event.t list)
(** A collecting sink: [let sink, events = memory ()] stores every event;
    [events ()] returns them in emission order.  Used by tests and by the
    CLI to buffer a trace before writing it in the requested format. *)

(* lint: allow S4 sink combinator documented in docs/observability.md *)
val tee : t -> t -> t
(** Duplicate every event (and close) to both sinks. *)
