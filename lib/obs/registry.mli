(** The process-wide metrics registry: one global {!Counter} set.

    Instrumentation points that have no natural handle to thread (profile
    cache hits, end-of-run simulator aggregates) accumulate here.  Writes
    happen only at coarse boundaries — per profile load, per simulation
    end — never inside per-access hot loops, and reads never feed back
    into the model, so the registry cannot perturb results.  Counter
    names are dotted, e.g. ["profile_cache.hits"],
    ["simcore.llc.misses"]. *)

val add : string -> float -> unit
(** Accumulate onto a named counter. *)

val incr : string -> unit
(** Add 1 to a named counter. *)

val add_all : prefix:string -> (string * float) list -> unit
(** [add_all ~prefix pairs] accumulates each [(name, v)] onto
    ["prefix.name"]. *)

val get : string -> float
(** Current value; 0 when never touched. *)

val snapshot_prefix : string -> (string * float) list
(** Counters whose name starts with ["prefix."], sorted. *)

val reset : unit -> unit
(** Clear the registry (tests). *)
