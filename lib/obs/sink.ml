type t = { emit : Event.t -> unit; close : unit -> unit }

let make ?(close = fun () -> ()) emit = { emit; close }
let emit t event = t.emit event
let close t = t.close ()

let memory () =
  let events = ref [] in
  (make (fun e -> events := e :: !events), fun () -> List.rev !events)

let tee a b =
  make
    ~close:(fun () ->
      a.close ();
      b.close ())
    (fun e ->
      a.emit e;
      b.emit e)
