type value =
  | Int of int
  | Float of float
  | String of string
  | List of value list

type t = {
  name : string;
  time : float;
  dur : float option;
  fields : (string * value) list;
}

let reserved = [ "name"; "t"; "dur" ]

let make ~name ~time ?dur fields =
  if name = "" then invalid_arg "Event.make: empty name";
  if not (Float.is_finite time) then invalid_arg "Event.make: non-finite time";
  (match dur with
  | Some d when not (Float.is_finite d && d >= 0.0) ->
      invalid_arg "Event.make: malformed duration"
  | Some _ | None -> ());
  List.iter
    (fun (k, _) ->
      if List.mem k reserved then
        invalid_arg "Event.make: field name shadows a reserved key")
    fields;
  { name; time; dur; fields }

(* ---- JSON rendering --------------------------------------------------- *)

(* Shortest float representation that round-trips: try %.15g first, fall
   back to %.17g.  Deterministic (no locale, no platform dependence), so
   traces are byte-stable across runs. *)
let float_str x =
  if not (Float.is_finite x) then invalid_arg "Event: non-finite field value";
  let s = Printf.sprintf "%.15g" x in
  let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
  (* Bare integers are valid JSON numbers, but keep a mark of floatness so
     the parser round-trips the field kind. *)
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
  then s
  else s ^ ".0"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec value_to_json = function
  | Int i -> string_of_int i
  | Float x -> float_str x
  | String s -> Printf.sprintf "\"%s\"" (escape_string s)
  | List vs ->
      Printf.sprintf "[%s]" (String.concat "," (List.map value_to_json vs))

let to_jsonl t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"t\":%s" (escape_string t.name)
       (float_str t.time));
  (match t.dur with
  | Some d -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%s" (float_str d))
  | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":%s" (escape_string k) (value_to_json v)))
    t.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Chrome trace_event object: a complete ("X") event when the event has a
   duration, an instant ("i") event otherwise.  Virtual time (cycles) maps
   onto the ts/dur microsecond fields; by default all events share pid 0 /
   tid 0 so a run renders as one timeline row per event name.  Callers can
   route events onto separate rows via ~tid (per-domain pool lanes). *)
let to_chrome ?(pid = 0) ?(tid = 0) t =
  let args =
    String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (escape_string k) (value_to_json v))
         t.fields)
  in
  match t.dur with
  | Some d ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{%s}}"
        (escape_string t.name) (float_str t.time) (float_str d) pid tid args
  | None ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%s,\"s\":\"g\",\"pid\":%d,\"tid\":%d,\"args\":{%s}}"
        (escape_string t.name) (float_str t.time) pid tid args

(* ---- JSONL parsing ---------------------------------------------------- *)

(* A minimal recursive-descent parser for the JSON subset to_jsonl emits:
   one flat object per line whose values are integers, floats, strings or
   (nested) arrays.  Total: malformed input yields [Error]. *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected %c, got %c" ch x))
  | None -> raise (Bad (Printf.sprintf "expected %c, got end of input" ch))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then raise (Bad "bad \\u escape");
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> raise (Bad "bad \\u escape")
            in
            (* Only control characters are emitted escaped; anything else
               in the BMP is preserved byte-wise as UTF-8 by to_jsonl. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else raise (Bad "unsupported \\u escape");
            go ()
        | Some ch -> advance c; Buffer.add_char buf ch; go ()
        | None -> raise (Bad "unterminated escape"))
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with Some ch when is_num_char ch -> advance c; go () | _ -> ()
  in
  go ();
  if c.pos = start then raise (Bad "expected a number");
  let text = String.sub c.src start (c.pos - start) in
  let is_float =
    String.contains text '.' || String.contains text 'e'
    || String.contains text 'E'
  in
  if is_float then
    match float_of_string_opt text with
    | Some x -> Float x
    | None -> raise (Bad "malformed float")
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> raise (Bad "malformed integer")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> raise (Bad "expected , or ] in array")
        in
        items []
  | Some _ -> parse_number c
  | None -> raise (Bad "expected a value")

let parse_object c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    []
  end
  else
    let rec members acc =
      skip_ws c;
      let key = parse_string c in
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' -> advance c; members ((key, v) :: acc)
      | Some '}' -> advance c; List.rev ((key, v) :: acc)
      | _ -> raise (Bad "expected , or } in object")
    in
    members []

let of_jsonl line =
  match
    let c = { src = line; pos = 0 } in
    let members = parse_object c in
    skip_ws c;
    if c.pos <> String.length c.src then raise (Bad "trailing input");
    Ok members
  with
  | exception Bad msg -> Error msg
  | Error _ as e -> e
  | Ok members -> (
      let name = List.assoc_opt "name" members in
      let time = List.assoc_opt "t" members in
      let dur = List.assoc_opt "dur" members in
      let fields =
        List.filter (fun (k, _) -> not (List.mem k reserved)) members
      in
      match (name, time) with
      | Some (String name), Some ((Float _ | Int _) as tv) ->
          let as_float = function
            | Float x -> x
            | Int i -> float_of_int i
            | _ -> raise (Bad "dur must be a number")
          in
          (try
             Ok
               {
                 name;
                 time = as_float tv;
                 dur = Option.map as_float dur;
                 fields;
               }
           with Bad msg -> Error msg)
      | _ -> Error "missing name/t keys")

let field t key = List.assoc_opt key t.fields

let float_field t key =
  match field t key with
  | Some (Float x) -> Some x
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let int_field t key =
  match field t key with Some (Int i) -> Some i | _ -> None

let float_list_field t key =
  match field t key with
  | Some (List vs) ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | Float x :: rest -> go (x :: acc) rest
        | Int i :: rest -> go (float_of_int i :: acc) rest
        | _ -> None
      in
      go [] vs
  | _ -> None

let string_list_field t key =
  match field t key with
  | Some (List vs) ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | String s :: rest -> go (s :: acc) rest
        | _ -> None
      in
      go [] vs
  | _ -> None
