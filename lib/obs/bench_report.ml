(* The machine-readable bench report (BENCH_model.json) and the diff
   engine behind tools/benchdiff.exe.  Everything here is pure — parsing,
   rendering and comparison take strings/formatters and return data, so
   file I/O stays in bench/ and tools/ (lint rules S1/O1) and the module
   is unit-testable without touching the filesystem.

   Rendering uses fixed decimal places everywhere, so render -> parse ->
   render is a fixpoint (golden-tested) and reports diff cleanly. *)

let schema_v2 = "mppm-bench/2"
let schema_v1 = "mppm-bench-timings/1"

type param =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Strings of string list

type phase = {
  ph_name : string;
  ph_seconds : float;
  ph_alloc_bytes : float option;
}

type pool = {
  pl_jobs : int;
  pl_tasks : float;
  pl_utilization : float;
  pl_wait_p50 : float;
  pl_wait_p99 : float;
  pl_dur_p50 : float;
  pl_dur_p90 : float;
  pl_dur_p99 : float;
}

type t = {
  r_git_rev : string option;
  r_params : (string * param) list;
  r_phases : phase list;
  r_pool : pool option;
  r_total_seconds : float;
}

let of_prof ?git_rev ?(params = []) ~total prof =
  let phases =
    List.map
      (fun s ->
        {
          ph_name = s.Prof.ss_name;
          ph_seconds = s.Prof.ss_total;
          ph_alloc_bytes = Some s.Prof.ss_alloc_bytes;
        })
      (Prof.span_stats prof)
  in
  let pool =
    Option.map
      (fun (p : Prof.pool_stats) ->
        {
          pl_jobs = p.Prof.p_jobs;
          pl_tasks = p.Prof.p_tasks;
          pl_utilization = p.Prof.p_utilization;
          pl_wait_p50 = p.Prof.p_wait_p50;
          pl_wait_p99 = p.Prof.p_wait_p99;
          pl_dur_p50 = p.Prof.p_dur_p50;
          pl_dur_p90 = p.Prof.p_dur_p90;
          pl_dur_p99 = p.Prof.p_dur_p99;
        })
      (Prof.pool_stats prof)
  in
  {
    r_git_rev = git_rev;
    r_params = params;
    r_phases = phases;
    r_pool = pool;
    r_total_seconds = total;
  }

(* ---- rendering -------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Fixed-decimal float rendering keeps render -> parse -> render a
   fixpoint; %.17g round-trip floats would too, but diff noisily. *)
let sec x = Printf.sprintf "%.3f" x
let frac x = Printf.sprintf "%.4f" x
let whole x = Printf.sprintf "%.0f" x

let param_to_json = function
  | Int i -> string_of_int i
  | Float x -> frac x
  | Bool b -> if b then "true" else "false"
  | String s -> Printf.sprintf "\"%s\"" (escape s)
  | Strings ss ->
      Printf.sprintf "[%s]"
        (String.concat ", "
           (List.map (fun s -> Printf.sprintf "\"%s\"" (escape s)) ss))

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"%s\",\n" schema_v2;
  (match t.r_git_rev with
  | Some rev -> Printf.bprintf b "  \"git_rev\": \"%s\",\n" (escape rev)
  | None -> Buffer.add_string b "  \"git_rev\": null,\n");
  Printf.bprintf b "  \"params\": {%s},\n"
    (String.concat ", "
       (List.map
          (fun (k, v) ->
            Printf.sprintf "\"%s\": %s" (escape k) (param_to_json v))
          t.r_params));
  Buffer.add_string b "  \"phases\": [\n";
  let n = List.length t.r_phases in
  List.iteri
    (fun i p ->
      let alloc =
        match p.ph_alloc_bytes with
        | Some a -> Printf.sprintf ", \"alloc_bytes\": %s" (whole a)
        | None -> ""
      in
      Printf.bprintf b "    {\"name\": \"%s\", \"seconds\": %s%s}%s\n"
        (escape p.ph_name) (sec p.ph_seconds) alloc
        (if i = n - 1 then "" else ","))
    t.r_phases;
  Buffer.add_string b "  ],\n";
  (match t.r_pool with
  | None -> Buffer.add_string b "  \"pool\": null,\n"
  | Some p ->
      Printf.bprintf b
        "  \"pool\": {\"jobs\": %d, \"tasks\": %s, \"utilization\": %s, \
         \"wait_p50\": %s, \"wait_p99\": %s, \"dur_p50\": %s, \"dur_p90\": \
         %s, \"dur_p99\": %s},\n"
        p.pl_jobs (whole p.pl_tasks) (frac p.pl_utilization)
        (frac p.pl_wait_p50) (frac p.pl_wait_p99) (frac p.pl_dur_p50)
        (frac p.pl_dur_p90) (frac p.pl_dur_p99));
  Printf.bprintf b "  \"total_seconds\": %s\n}\n" (sec t.r_total_seconds);
  Buffer.contents b

(* ---- JSON parsing ------------------------------------------------------ *)

(* Event.of_jsonl only parses the flat-object subset its own writer emits;
   bench reports nest objects and arrays, so they get a small but complete
   JSON reader of their own.  Total: malformed input yields [Error]. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected %c, got %c" ch x))
  | None -> raise (Bad (Printf.sprintf "expected %c, got end of input" ch))

let parse_str c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then raise (Bad "bad \\u escape");
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> raise (Bad "bad \\u escape")
            in
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else raise (Bad "unsupported \\u escape");
            go ()
        | Some ch -> advance c; Buffer.add_char buf ch; go ()
        | None -> raise (Bad "unterminated escape"))
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_num c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with Some ch when is_num_char ch -> advance c; go () | _ -> ()
  in
  go ();
  if c.pos = start then raise (Bad "expected a number");
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with
  | Some x -> J_num x
  | None -> raise (Bad "malformed number")

let parse_word c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else raise (Bad (Printf.sprintf "expected %s" word))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '"' -> J_str (parse_str c)
  | Some 't' -> parse_word c "true" (J_bool true)
  | Some 'f' -> parse_word c "false" (J_bool false)
  | Some 'n' -> parse_word c "null" J_null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        J_arr []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; J_arr (List.rev (v :: acc))
          | _ -> raise (Bad "expected , or ] in array")
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        J_obj []
      end
      else
        let rec members acc =
          skip_ws c;
          let key = parse_str c in
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((key, v) :: acc)
          | Some '}' -> advance c; J_obj (List.rev ((key, v) :: acc))
          | _ -> raise (Bad "expected , or } in object")
        in
        members []
  | Some _ -> parse_num c
  | None -> raise (Bad "expected a value")

let parse_json s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length c.src then raise (Bad "trailing input");
  v

(* ---- mapping json -> t ------------------------------------------------- *)

let find members key = List.assoc_opt key members

let need members key =
  match find members key with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing key %S" key))

let as_num = function
  | J_num x -> x
  | _ -> raise (Bad "expected a number")

let as_str = function
  | J_str s -> s
  | _ -> raise (Bad "expected a string")

let as_obj = function
  | J_obj members -> members
  | _ -> raise (Bad "expected an object")

let param_of_json = function
  | J_num x ->
      if Float.is_integer x && Float.abs x < 1e15 then Int (int_of_float x)
      else Float x
  | J_bool b -> Bool b
  | J_str s -> String s
  | J_arr vs -> Strings (List.map as_str vs)
  | J_null | J_obj _ -> raise (Bad "unsupported param value")

let phase_of_json v =
  let m = as_obj v in
  {
    ph_name = as_str (need m "name");
    ph_seconds = as_num (need m "seconds");
    ph_alloc_bytes = Option.map as_num (find m "alloc_bytes");
  }

let pool_of_json v =
  let m = as_obj v in
  {
    pl_jobs = int_of_float (as_num (need m "jobs"));
    pl_tasks = as_num (need m "tasks");
    pl_utilization = as_num (need m "utilization");
    pl_wait_p50 = as_num (need m "wait_p50");
    pl_wait_p99 = as_num (need m "wait_p99");
    pl_dur_p50 = as_num (need m "dur_p50");
    pl_dur_p90 = as_num (need m "dur_p90");
    pl_dur_p99 = as_num (need m "dur_p99");
  }

let of_json_exn s =
  let m = as_obj (parse_json s) in
  let schema = as_str (need m "schema") in
  if schema <> schema_v2 && schema <> schema_v1 then
    raise
      (Bad
         (Printf.sprintf "unsupported schema %S (expected %S or %S)" schema
            schema_v2 schema_v1));
  let phases =
    match need m "phases" with
    | J_arr vs -> List.map phase_of_json vs
    | _ -> raise (Bad "phases must be an array")
  in
  let params =
    match find m "params" with
    | Some (J_obj members) ->
        List.map (fun (k, v) -> (k, param_of_json v)) members
    | Some _ -> raise (Bad "params must be an object")
    | None -> []
  in
  let git_rev =
    match find m "git_rev" with
    | Some (J_str s) -> Some s
    | Some J_null | None -> None
    | Some _ -> raise (Bad "git_rev must be a string or null")
  in
  let pool =
    match find m "pool" with
    | Some (J_obj _ as v) -> Some (pool_of_json v)
    | Some J_null | None -> None
    | Some _ -> raise (Bad "pool must be an object or null")
  in
  {
    r_git_rev = git_rev;
    r_params = params;
    r_phases = phases;
    r_pool = pool;
    r_total_seconds = as_num (need m "total_seconds");
  }

let of_json s =
  match of_json_exn s with
  | t -> Ok t
  | exception Bad msg -> Error ("Bench_report: " ^ msg)

(* ---- diffing ----------------------------------------------------------- *)

type delta = {
  dl_name : string;
  dl_base : float option;
  dl_cur : float option;
  dl_ratio : float option;
  dl_regression : bool;
}

type diff = {
  df_threshold : float;
  df_min_seconds : float;
  df_base_rev : string option;
  df_cur_rev : string option;
  df_deltas : delta list;
  df_total_base : float;
  df_total_cur : float;
  df_total_ratio : float option;
  df_geomean_ratio : float option;
  df_regressions : string list;
  df_missing : string list;
  df_added : string list;
}

let ratio_of ~base ~cur =
  if base > 0.0 then Some (Float.max 1e-9 cur /. base) else None

let diff ?(threshold = 0.10) ?(min_seconds = 0.05) ~baseline ~current () =
  if not (Float.is_finite threshold && threshold >= 0.0) then
    invalid_arg "Bench_report.diff: threshold must be finite and >= 0";
  let base_phases = baseline.r_phases and cur_phases = current.r_phases in
  let cur_by_name name =
    List.find_opt (fun p -> p.ph_name = name) cur_phases
  in
  let base_by_name name =
    List.find_opt (fun p -> p.ph_name = name) base_phases
  in
  (* Baseline order first, then current-only phases in current order. *)
  let names =
    List.map (fun p -> p.ph_name) base_phases
    @ List.filter_map
        (fun p ->
          if base_by_name p.ph_name = None then Some p.ph_name else None)
        cur_phases
  in
  let deltas =
    List.map
      (fun name ->
        let base = Option.map (fun p -> p.ph_seconds) (base_by_name name) in
        let cur = Option.map (fun p -> p.ph_seconds) (cur_by_name name) in
        let ratio =
          match (base, cur) with
          | Some b, Some c -> ratio_of ~base:b ~cur:c
          | _ -> None
        in
        let big =
          match (base, cur) with
          | Some b, Some c -> Float.max b c >= min_seconds
          | _ -> false
        in
        let regression =
          big
          && match ratio with Some r -> r > 1.0 +. threshold | None -> false
        in
        {
          dl_name = name;
          dl_base = base;
          dl_cur = cur;
          dl_ratio = ratio;
          dl_regression = regression;
        })
      names
  in
  let compared =
    List.filter_map
      (fun d ->
        match (d.dl_base, d.dl_cur, d.dl_ratio) with
        | Some b, Some c, Some r when Float.max b c >= min_seconds ->
            Some r
        | _ -> None)
      deltas
  in
  let geomean =
    match compared with
    | [] -> None
    | rs ->
        let sum = List.fold_left (fun acc r -> acc +. Float.log r) 0.0 rs in
        Some (Float.exp (sum /. float_of_int (List.length rs)))
  in
  {
    df_threshold = threshold;
    df_min_seconds = min_seconds;
    df_base_rev = baseline.r_git_rev;
    df_cur_rev = current.r_git_rev;
    df_deltas = deltas;
    df_total_base = baseline.r_total_seconds;
    df_total_cur = current.r_total_seconds;
    df_total_ratio =
      ratio_of ~base:baseline.r_total_seconds ~cur:current.r_total_seconds;
    df_geomean_ratio = geomean;
    df_regressions =
      List.filter_map
        (fun d -> if d.dl_regression then Some d.dl_name else None)
        deltas;
    df_missing =
      List.filter_map
        (fun d -> if d.dl_cur = None then Some d.dl_name else None)
        deltas;
    df_added =
      List.filter_map
        (fun d -> if d.dl_base = None then Some d.dl_name else None)
        deltas;
  }

let has_regression d = d.df_regressions <> []

(* ---- diff rendering ---------------------------------------------------- *)

let opt_sec = function Some x -> Printf.sprintf "%8.3fs" x | None -> "       -"
let opt_ratio = function Some r -> Printf.sprintf "%6.2fx" r | None -> "     -"

let rev_tag = function Some rev -> " (rev " ^ rev ^ ")" | None -> ""

let pp_text ppf d =
  Format.fprintf ppf "@[<v>benchdiff: baseline%s vs current%s@,"
    (rev_tag d.df_base_rev) (rev_tag d.df_cur_rev);
  Format.fprintf ppf "%-32s %9s %9s %7s@," "phase" "base" "current" "ratio";
  List.iter
    (fun dl ->
      Format.fprintf ppf "%-32s %s %s %s%s@," dl.dl_name (opt_sec dl.dl_base)
        (opt_sec dl.dl_cur)
        (opt_ratio dl.dl_ratio)
        (if dl.dl_regression then "  REGRESSION" else ""))
    d.df_deltas;
  Format.fprintf ppf "%-32s %s %s %s@," "total"
    (opt_sec (Some d.df_total_base))
    (opt_sec (Some d.df_total_cur))
    (opt_ratio d.df_total_ratio);
  (match d.df_geomean_ratio with
  | Some g ->
      Format.fprintf ppf "geomean ratio %.3fx (speedup %.3fx) over phases >= %.2fs@,"
        g (1.0 /. g) d.df_min_seconds
  | None -> Format.fprintf ppf "geomean ratio: no comparable phases@,");
  (match d.df_regressions with
  | [] ->
      Format.fprintf ppf "regressions (> +%.0f%%): none@]"
        (100.0 *. d.df_threshold)
  | rs ->
      Format.fprintf ppf "regressions (> +%.0f%%): %s@]"
        (100.0 *. d.df_threshold)
        (String.concat ", " rs))

let pp_markdown ppf d =
  Format.fprintf ppf "@[<v>### benchdiff: baseline%s vs current%s@,@,"
    (rev_tag d.df_base_rev) (rev_tag d.df_cur_rev);
  Format.fprintf ppf "| phase | base | current | ratio |@,|---|---|---|---|@,";
  let cell_sec = function
    | Some x -> Printf.sprintf "%.3fs" x
    | None -> "-"
  in
  let cell_ratio dl =
    match dl.dl_ratio with
    | Some r ->
        Printf.sprintf "%.2fx%s" r
          (if dl.dl_regression then " **REGRESSION**" else "")
    | None -> "-"
  in
  List.iter
    (fun dl ->
      Format.fprintf ppf "| %s | %s | %s | %s |@," dl.dl_name
        (cell_sec dl.dl_base) (cell_sec dl.dl_cur) (cell_ratio dl))
    d.df_deltas;
  Format.fprintf ppf "| **total** | %.3fs | %.3fs | %s |@,@," d.df_total_base
    d.df_total_cur
    (match d.df_total_ratio with
    | Some r -> Printf.sprintf "%.2fx" r
    | None -> "-");
  (match d.df_geomean_ratio with
  | Some g -> Format.fprintf ppf "geomean ratio **%.3fx**" g
  | None -> Format.fprintf ppf "geomean ratio: no comparable phases");
  match d.df_regressions with
  | [] ->
      Format.fprintf ppf "; regressions (> +%.0f%%): none@]"
        (100.0 *. d.df_threshold)
  | rs ->
      Format.fprintf ppf "; regressions (> +%.0f%%): **%s**@]"
        (100.0 *. d.df_threshold)
        (String.concat ", " rs)

let opt_num_json f = function Some x -> f x | None -> "null"

let diff_to_json d =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"mppm-benchdiff/1\",\n";
  Printf.bprintf b "  \"threshold\": %s,\n" (frac d.df_threshold);
  Printf.bprintf b "  \"min_seconds\": %s,\n" (frac d.df_min_seconds);
  Printf.bprintf b "  \"geomean_ratio\": %s,\n"
    (opt_num_json frac d.df_geomean_ratio);
  Printf.bprintf b
    "  \"total\": {\"base\": %s, \"current\": %s, \"ratio\": %s},\n"
    (sec d.df_total_base) (sec d.df_total_cur)
    (opt_num_json frac d.df_total_ratio);
  Buffer.add_string b "  \"phases\": [\n";
  let n = List.length d.df_deltas in
  List.iteri
    (fun i dl ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"base\": %s, \"current\": %s, \"ratio\": \
         %s, \"regression\": %b}%s\n"
        (escape dl.dl_name)
        (opt_num_json sec dl.dl_base)
        (opt_num_json sec dl.dl_cur)
        (opt_num_json frac dl.dl_ratio)
        dl.dl_regression
        (if i = n - 1 then "" else ","))
    d.df_deltas;
  Buffer.add_string b "  ],\n";
  let str_list ss =
    String.concat ", "
      (List.map (fun s -> Printf.sprintf "\"%s\"" (escape s)) ss)
  in
  Printf.bprintf b "  \"regressions\": [%s],\n" (str_list d.df_regressions);
  Printf.bprintf b "  \"missing\": [%s],\n" (str_list d.df_missing);
  Printf.bprintf b "  \"added\": [%s]\n}\n" (str_list d.df_added);
  Buffer.contents b
