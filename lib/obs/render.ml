(* Pure incremental renderers for event streams.  File I/O stays in
   bin/ and bench/ (lint rules S1/O1): a renderer only turns events into
   the exact bytes a writer should append, including the stream framing
   (the Chrome trace_event array brackets and separators). *)

type t = {
  r_header : string;
  r_step : Event.t -> string;
  r_finish : string;
}

let jsonl () =
  { r_header = ""; r_step = (fun ev -> Event.to_jsonl ev ^ "\n"); r_finish = "" }

let chrome ?(lane = fun _ -> 0) () =
  let first = ref true in
  {
    r_header = "[";
    r_step =
      (fun ev ->
        let sep = if !first then "\n" else ",\n" in
        first := false;
        sep ^ Event.to_chrome ~tid:(lane ev) ev);
    r_finish = "\n]\n";
  }

let header t = t.r_header
let step t ev = t.r_step ev
let finish t = t.r_finish

let to_string t events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf t.r_header;
  List.iter (fun ev -> Buffer.add_string buf (t.r_step ev)) events;
  Buffer.add_string buf t.r_finish;
  Buffer.contents buf
