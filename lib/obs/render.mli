(** Incremental renderers for event streams: the pure
    [Event.t -> bytes-to-append] layer under every trace file writer.

    A renderer owns the stream framing — the JSONL newline discipline,
    the Chrome [trace_event] array brackets and separators — so writers
    in [bin/] and [bench/] only append strings to a channel and [lib/]
    never owns one (lint rules S1/O1).  Rendering is deterministic:
    identical event streams produce byte-identical files. *)

type t
(** A stateful stream renderer (tracks the element separator). *)

val jsonl : unit -> t
(** The JSONL stream: every event renders as its {!Event.to_jsonl} line
    plus a newline; no header or trailer. *)

val chrome : ?lane:(Event.t -> int) -> unit -> t
(** A Chrome [trace_event] JSON array.  [lane] maps each event to its
    [tid] timeline row (default: everything on lane 0) — the bench phase
    trace uses it to put pool workers on per-domain lanes. *)

val header : t -> string
(** Bytes to write before the first event (["["] for Chrome, empty for
    JSONL). *)

val step : t -> Event.t -> string
(** Bytes to append for this event, separators included.  Stateful:
    call in stream order. *)

val finish : t -> string
(** Bytes to append after the last event (["\n]\n"] for Chrome).  A
    stream with no events is still well-formed: [header ^ finish]. *)

val to_string : t -> Event.t list -> string
(** [to_string t events] renders a whole stream in one call —
    [header ^ concat (step ...) ^ finish]. *)
