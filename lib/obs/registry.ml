(* One global counter set, shared by every domain.  Pool workers
   (lib/pool/) publish per-run aggregates here concurrently, so every
   operation takes the registry lock; counter updates are commutative
   additions, which keeps the totals independent of worker scheduling. *)

(* lint: allow-file S5 the registry is the one lib/ module outside
   lib/pool/ written from worker domains; a single lock makes its
   updates atomic *)

let counters = Counter.create ()
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let add name by = locked (fun () -> Counter.add counters name by)
let incr name = locked (fun () -> Counter.incr counters name)

let add_all ~prefix pairs =
  locked (fun () ->
      List.iter (fun (name, v) -> Counter.add counters (prefix ^ "." ^ name) v)
        pairs)

let get name = locked (fun () -> Counter.value counters name)
let snapshot () = locked (fun () -> Counter.to_alist counters)

let snapshot_prefix prefix =
  let p = prefix ^ "." in
  let n = String.length p in
  List.filter
    (fun (name, _) -> String.length name >= n && String.sub name 0 n = p)
    (snapshot ())

let reset () = locked (fun () -> Counter.reset counters)
