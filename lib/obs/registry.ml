let counters = Counter.create ()

let add name by = Counter.add counters name by
let incr name = Counter.incr counters name

let add_all ~prefix pairs =
  List.iter (fun (name, v) -> add (prefix ^ "." ^ name) v) pairs

let get name = Counter.value counters name
let snapshot () = Counter.to_alist counters

let snapshot_prefix prefix =
  let p = prefix ^ "." in
  let n = String.length p in
  List.filter
    (fun (name, _) -> String.length name >= n && String.sub name 0 n = p)
    (snapshot ())

let reset () = Counter.reset counters
