(* lint: allow-file S4 report fields are obs API surface; bench/tools consume a task-dependent subset *)
(** The machine-readable bench report ([BENCH_model.json]) and the diff
    engine behind [tools/benchdiff.exe].

    Pure by construction: parsing, rendering and comparison work on
    strings and formatters — file I/O stays in [bench/] and [tools/]
    (lint rules S1/O1).  {!to_json} uses fixed decimal places so
    render [->] parse [->] render is a fixpoint and reports diff
    cleanly; the key set and schema tag are pinned by a golden test. *)

val schema_v2 : string
(** The schema tag written by {!to_json}: ["mppm-bench/2"]. *)

val schema_v1 : string
(** The legacy schema tag still accepted by {!of_json}:
    ["mppm-bench-timings/1"] (no allocation, pool or git fields). *)

(** One run parameter, as recorded under the ["params"] key. *)
type param =
  | Int of int  (** e.g. [trace], [mixes], [seed], [jobs] *)
  | Float of float  (** non-integral numeric parameter *)
  | Bool of bool  (** e.g. [paper] *)
  | String of string  (** free-form parameter *)
  | Strings of string list  (** e.g. the [only] section list *)

(** One harness phase: wall time plus the orchestrating domain's
    allocation. *)
type phase = {
  ph_name : string;  (** phase label, e.g. ["section fig4+fig5"] *)
  ph_seconds : float;  (** summed wall time of the phase's spans *)
  ph_alloc_bytes : float option;
      (** [Gc.allocated_bytes] delta on the orchestrating domain; [None]
          in legacy v1 reports *)
}

(** Pool utilization summary, from {!Prof.pool_stats}. *)
type pool = {
  pl_jobs : int;  (** pool size *)
  pl_tasks : float;  (** tasks executed *)
  pl_utilization : float;  (** busy / (elapsed x jobs) *)
  pl_wait_p50 : float;  (** median queue wait, seconds *)
  pl_wait_p99 : float;  (** 99th-percentile queue wait *)
  pl_dur_p50 : float;  (** median task duration *)
  pl_dur_p90 : float;  (** 90th-percentile task duration *)
  pl_dur_p99 : float;  (** 99th-percentile task duration *)
}

(** A complete bench report. *)
type t = {
  r_git_rev : string option;  (** source revision, when known *)
  r_params : (string * param) list;  (** run parameters, in emission order *)
  r_phases : phase list;  (** per-phase costs, in emission order *)
  r_pool : pool option;  (** pool utilization; [None] when no pool ran *)
  r_total_seconds : float;  (** whole-run wall time *)
}

val of_prof :
  ?git_rev:string ->
  ?params:(string * param) list ->
  total:float ->
  Prof.t ->
  t
(** Build a report from a profiler: {!Prof.span_stats} become the phases
    (sorted by name) and {!Prof.pool_stats} the pool summary. *)

val to_json : t -> string
(** Render as the [mppm-bench/2] JSON document, trailing newline
    included.  Deterministic for a fixed report. *)

val of_json : string -> (t, string) result
(** Parse a v1 or v2 report.  Total — malformed input, an unsupported
    schema or missing keys yield [Error] with a diagnostic. *)

(** One phase compared across two reports. *)
type delta = {
  dl_name : string;  (** phase label *)
  dl_base : float option;  (** baseline seconds; [None] = phase added *)
  dl_cur : float option;  (** current seconds; [None] = phase missing *)
  dl_ratio : float option;
      (** current/baseline when both present and baseline > 0 *)
  dl_regression : bool;
      (** ratio above threshold on a phase big enough to matter *)
}

(** The result of comparing two reports. *)
type diff = {
  df_threshold : float;  (** regression threshold (0.10 = +10%) *)
  df_min_seconds : float;  (** phases below this are never regressions *)
  df_base_rev : string option;  (** baseline revision *)
  df_cur_rev : string option;  (** current revision *)
  df_deltas : delta list;
      (** union of phases: baseline order, then added ones *)
  df_total_base : float;  (** baseline total seconds *)
  df_total_cur : float;  (** current total seconds *)
  df_total_ratio : float option;  (** current/baseline total *)
  df_geomean_ratio : float option;
      (** geometric mean of per-phase ratios over comparable phases;
          values < 1 are speedups *)
  df_regressions : string list;  (** phases flagged as regressions *)
  df_missing : string list;  (** baseline phases absent from current *)
  df_added : string list;  (** current phases absent from baseline *)
}

val diff :
  ?threshold:float -> ?min_seconds:float -> baseline:t -> current:t -> unit ->
  diff
(** [diff ~baseline ~current ()] compares per-phase wall times.  A phase
    regresses when both sides exist, [max base cur >= min_seconds]
    (default 0.05s — timing noise on tiny phases never fails a build)
    and [cur/base > 1 + threshold] (default [0.10]).  Raises
    [Invalid_argument] on a negative or non-finite threshold. *)

val has_regression : diff -> bool
(** Whether any phase regressed — the CLI's exit-code predicate. *)

val pp_text : Format.formatter -> diff -> unit
(** Fixed-width table rendering for terminals. *)

val pp_markdown : Format.formatter -> diff -> unit
(** GitHub-flavoured markdown table (CI job summaries). *)

val diff_to_json : diff -> string
(** The diff as a [mppm-benchdiff/1] JSON document, for machine
    consumers. *)
