type t = (string, float ref) Hashtbl.t

let create () : t = Hashtbl.create ~random:false 16

let add t name by =
  if not (Float.is_finite by) then invalid_arg "Counter.add: non-finite delta";
  match Hashtbl.find_opt t name with
  | Some cell -> cell := !cell +. by
  | None -> Hashtbl.add t name (ref by)

let incr t name = add t name 1.0

let value t name =
  match Hashtbl.find_opt t name with Some cell -> !cell | None -> 0.0

let to_alist t =
  Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let of_alist pairs =
  let t = create () in
  List.iter (fun (name, v) -> add t name v) pairs;
  t

let merge a b =
  let t = create () in
  let pour src =
    Hashtbl.iter (fun name cell -> add t name !cell) src
  in
  pour a;
  pour b;
  t

let copy t = merge t (create ())
let is_empty t = Hashtbl.length t = 0
let reset t = Hashtbl.reset t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-40s %.0f" name v)
    (to_alist t);
  Format.fprintf ppf "@]"
