(* Injected-clock profiler: scoped spans with Gc allocation deltas plus
   the pool's per-task metrics, all behind an option so the null profiler
   costs one branch and profiled runs stay bit-for-bit identical to
   unprofiled ones.

   The clock is caller-supplied (bench/tools/bin inject a monotonic
   wall-clock; tests inject counters), so lib/ never reads wall-clock
   and lint rule D1 holds by construction.  A profiler is NOT
   thread-safe on its own: recording must be serialized by the caller —
   the pool records under its own mutex, and span scopes run on the
   orchestrating domain only. *)

type clock = unit -> float

(* Duration histograms: geometric buckets from 1 microsecond up, wide
   enough for any span a bench run can produce. *)
let duration_bounds () =
  Histogram.create_exponential ~first:1e-6 ~ratio:2.0 ~buckets:48

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_alloc_bytes : float;
}

type span_stats = {
  ss_name : string;
  ss_count : float;
  ss_total : float;
  ss_alloc_bytes : float;
  ss_p50 : float;
  ss_p90 : float;
  ss_p99 : float;
}

type task = {
  tk_domain : int;
  tk_start : float;
  tk_wait : float;
  tk_dur : float;
}

type domain_stat = { d_domain : int; d_tasks : float; d_busy : float }

type pool_stats = {
  p_jobs : int;
  p_tasks : float;
  p_domains : domain_stat list;
  p_elapsed : float;
  p_utilization : float;
  p_wait_p50 : float;
  p_wait_p99 : float;
  p_dur_p50 : float;
  p_dur_p90 : float;
  p_dur_p99 : float;
}

type span_agg = {
  mutable sa_count : float;
  mutable sa_total : float;
  mutable sa_alloc : float;
  sa_hist : Histogram.t;
}

type domain_agg = { mutable da_tasks : float; mutable da_busy : float }

type active = {
  a_clock : clock;
  a_spans : (string, span_agg) Hashtbl.t;
  mutable a_span_log : span list;  (* reverse emission order *)
  mutable a_jobs : int;
  a_domains : (int, domain_agg) Hashtbl.t;
  mutable a_task_log : task list;  (* reverse emission order *)
  mutable a_task_count : float;
  mutable a_first_start : float;
  mutable a_last_end : float;
  a_wait_hist : Histogram.t;
  a_dur_hist : Histogram.t;
}

type t = active option

let null = None

let make ~clock =
  Some
    {
      a_clock = clock;
      a_spans = Hashtbl.create ~random:false 16;
      a_span_log = [];
      a_jobs = 0;
      a_domains = Hashtbl.create ~random:false 16;
      a_task_log = [];
      a_task_count = 0.0;
      a_first_start = infinity;
      a_last_end = neg_infinity;
      a_wait_hist = duration_bounds ();
      a_dur_hist = duration_bounds ();
    }

let enabled t = Option.is_some t

let clock t = Option.map (fun a -> a.a_clock) t

(* ---- scoped spans ---------------------------------------------------- *)

let record_span a name ~start ~dur ~alloc =
  let dur = Float.max 0.0 dur and alloc = Float.max 0.0 alloc in
  let agg =
    match Hashtbl.find_opt a.a_spans name with
    | Some agg -> agg
    | None ->
        let agg =
          { sa_count = 0.0; sa_total = 0.0; sa_alloc = 0.0;
            sa_hist = duration_bounds () }
        in
        Hashtbl.add a.a_spans name agg;
        agg
  in
  agg.sa_count <- agg.sa_count +. 1.0;
  agg.sa_total <- agg.sa_total +. dur;
  agg.sa_alloc <- agg.sa_alloc +. alloc;
  Histogram.observe agg.sa_hist dur;
  a.a_span_log <-
    { sp_name = name; sp_start = start; sp_dur = dur; sp_alloc_bytes = alloc }
    :: a.a_span_log

let time t name f =
  match t with
  | None -> f ()
  | Some a ->
      let alloc0 = Gc.allocated_bytes () in
      let t0 = a.a_clock () in
      Fun.protect
        ~finally:(fun () ->
          let dur = a.a_clock () -. t0 in
          let alloc = Gc.allocated_bytes () -. alloc0 in
          record_span a name ~start:t0 ~dur ~alloc)
        f

let spans t =
  match t with None -> [] | Some a -> List.rev a.a_span_log

let span_stats t =
  match t with
  | None -> []
  | Some a ->
      Hashtbl.fold
        (fun name agg acc ->
          {
            ss_name = name;
            ss_count = agg.sa_count;
            ss_total = agg.sa_total;
            ss_alloc_bytes = agg.sa_alloc;
            ss_p50 = Histogram.quantile agg.sa_hist 0.50;
            ss_p90 = Histogram.quantile agg.sa_hist 0.90;
            ss_p99 = Histogram.quantile agg.sa_hist 0.99;
          }
          :: acc)
        a.a_spans []
      |> List.sort (fun x y -> String.compare x.ss_name y.ss_name)

(* ---- pool task metrics ------------------------------------------------ *)

let note_jobs t jobs =
  match t with
  | None -> ()
  | Some a -> if jobs > a.a_jobs then a.a_jobs <- jobs

let task t ~domain ~start ~wait ~dur =
  match t with
  | None -> ()
  | Some a ->
      let wait = Float.max 0.0 wait and dur = Float.max 0.0 dur in
      let agg =
        match Hashtbl.find_opt a.a_domains domain with
        | Some agg -> agg
        | None ->
            let agg = { da_tasks = 0.0; da_busy = 0.0 } in
            Hashtbl.add a.a_domains domain agg;
            agg
      in
      agg.da_tasks <- agg.da_tasks +. 1.0;
      agg.da_busy <- agg.da_busy +. dur;
      a.a_task_count <- a.a_task_count +. 1.0;
      if start < a.a_first_start then a.a_first_start <- start;
      if start +. dur > a.a_last_end then a.a_last_end <- start +. dur;
      Histogram.observe a.a_wait_hist wait;
      Histogram.observe a.a_dur_hist dur;
      a.a_task_log <-
        { tk_domain = domain; tk_start = start; tk_wait = wait; tk_dur = dur }
        :: a.a_task_log

let tasks t =
  match t with None -> [] | Some a -> List.rev a.a_task_log

let pool_stats t =
  match t with
  | None -> None
  | Some a when a.a_task_count <= 0.0 -> None
  | Some a ->
      let domains =
        Hashtbl.fold
          (fun d agg acc ->
            { d_domain = d; d_tasks = agg.da_tasks; d_busy = agg.da_busy }
            :: acc)
          a.a_domains []
        |> List.sort (fun x y -> compare x.d_domain y.d_domain)
      in
      let busy = List.fold_left (fun acc d -> acc +. d.d_busy) 0.0 domains in
      let elapsed = Float.max 0.0 (a.a_last_end -. a.a_first_start) in
      let jobs = max a.a_jobs (List.length domains) in
      let utilization =
        if elapsed > 0.0 && jobs > 0 then
          busy /. (elapsed *. float_of_int jobs)
        else 0.0
      in
      Some
        {
          p_jobs = jobs;
          p_tasks = a.a_task_count;
          p_domains = domains;
          p_elapsed = elapsed;
          p_utilization = utilization;
          p_wait_p50 = Histogram.quantile a.a_wait_hist 0.50;
          p_wait_p99 = Histogram.quantile a.a_wait_hist 0.99;
          p_dur_p50 = Histogram.quantile a.a_dur_hist 0.50;
          p_dur_p90 = Histogram.quantile a.a_dur_hist 0.90;
          p_dur_p99 = Histogram.quantile a.a_dur_hist 0.99;
        }

let pp_pool ppf t =
  match pool_stats t with
  | None -> Format.fprintf ppf "pool: no tasks recorded"
  | Some s ->
      Format.fprintf ppf
        "@[<v>pool: %.0f tasks over %d domains in %.2fs  (utilization \
         %.0f%%)@,\
         task wall-time p50 %.4fs  p90 %.4fs  p99 %.4fs   queue-wait p50 \
         %.4fs  p99 %.4fs"
        s.p_tasks s.p_jobs s.p_elapsed
        (100.0 *. s.p_utilization)
        s.p_dur_p50 s.p_dur_p90 s.p_dur_p99 s.p_wait_p50 s.p_wait_p99;
      List.iter
        (fun d ->
          Format.fprintf ppf "@,  domain %d: %4.0f tasks, %.2fs busy"
            d.d_domain d.d_tasks d.d_busy)
        s.p_domains;
      Format.fprintf ppf "@]"
