(** Request handlers and renderers shared by the one-shot CLI ([bin/mppm])
    and the prediction daemon ([bin/mppmd]).

    This is the service's pure core: mix parsing, output formatting and
    the per-request handlers all live here, over
    {!Mppm_experiments.Context}, so the daemon's answers are byte-for-byte
    the text the CLI prints for the same query — the end-to-end
    determinism guarantee the integration tests and the CI smoke job
    diff.  No sockets, no channels: callers own all I/O. *)

val parse_mixes :
  string list ->
  (Mppm_workload.Mix.t list, Wire.error_code * string) result
(** Benchmark-name arguments to mixes, with the CLI's comma semantics:
    plain names form one mix; if any argument contains a comma, each
    argument is its own comma-separated mix and the list is a batch.
    Unknown names come back as {!Wire.Unknown_benchmark}, empty mixes as
    {!Wire.Bad_request} — never an exception. *)

val pp_predicted : Format.formatter -> Mppm_core.Model.result -> unit
(** The CLI's rendering of one MPPM prediction (iterations, per-program
    slowdown/CPI lines, STP/ANTT). *)

val pp_measured : Format.formatter -> Mppm_experiments.Context.measured -> unit
(** The CLI's rendering of one detailed-simulation result. *)

val pp_comparison :
  Format.formatter ->
  Mppm_core.Model.result * Mppm_experiments.Context.measured ->
  unit
(** Prediction, measurement, and the STP/ANTT error line between them
    (the [mppm compare] block for one mix). *)

val pp_batch :
  (Format.formatter -> 'a -> unit) ->
  mixes:Mppm_workload.Mix.t list ->
  Format.formatter ->
  'a array ->
  unit
(** Renders per-mix results in batch form: a single mix prints bare; a
    multi-mix batch separates results with ["== mix a+b+c+d =="] headers,
    exactly as the one-shot CLI does. *)

val rank_configs :
  Mppm_experiments.Context.t ->
  cores:int ->
  count:int ->
  (int * float) array
(** Ranks the Table 2 LLC configurations by mean MPPM-predicted STP over
    [count] freshly sampled [cores]-program mixes, best first.  The
    sample is drawn from the context's ["cli-rank"] stream, so the
    ranking is a deterministic function of the context seed. *)

val pp_ranking :
  cores:int -> count:int -> Format.formatter -> (int * float) array -> unit
(** Renders a {!rank_configs} result as the CLI's numbered ranking
    table. *)

val handle :
  Mppm_experiments.Context.t -> Wire.request -> Wire.response
(** Answers one request: [Predict]/[Compare] parse the names, run the
    model (and, for compare, the detailed simulator) per mix and return
    the batch rendering as {!Wire.Output}; [Rank] returns the rendered
    ranking; [Stats] snapshots the [serve.*], [pool.*] and
    [profile_cache.*] registry counters; [Shutdown] acknowledges (the
    caller owns actually exiting).  Malformed queries return structured
    {!Wire.Error} responses — [handle] never raises on them — and every
    request/outcome is counted under [serve.*] in
    {!Mppm_obs.Registry}. *)
