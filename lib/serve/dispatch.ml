(* The service's pure request/response core.

   Carved out of the one-shot CLI so that bin/mppm and bin/mppmd share
   one implementation of mix parsing, output rendering and the
   predict/compare/rank/stats handlers.  Responses are rendered with
   Format.asprintf over the same printers the CLI hands its formatter,
   which is what makes daemon output byte-identical to CLI output. *)

module Suite = Mppm_trace.Suite
module Model = Mppm_core.Model
module Mix = Mppm_workload.Mix
module Sampler = Mppm_workload.Sampler
module Context = Mppm_experiments.Context
module Registry = Mppm_obs.Registry

(* ---- mix parsing ----------------------------------------------------- *)

let known_name n = Array.exists (String.equal n) Suite.names

let mix_of_names names =
  match names with
  | [] ->
      Result.Error
        ( Wire.Bad_request,
          "Mppm_serve.Dispatch: empty mix (give at least one benchmark \
           name)" )
  | _ -> (
      match List.find_opt (fun n -> not (known_name n)) names with
      | Some bad ->
          Result.Error
            ( Wire.Unknown_benchmark,
              Printf.sprintf
                "Mppm_serve.Dispatch: unknown benchmark %S (run 'mppm \
                 suite' for the 29 names)"
                bad )
      | None -> Result.Ok (Mix.of_names (Array.of_list names)))

(* Plain names form one mix; comma syntax makes each argument a mix of
   its own ("a,b,c,d e,f,g,h" is two quad-core mixes). *)
let parse_mixes names =
  if names = [] then
    Result.Error
      ( Wire.Bad_request,
        "Mppm_serve.Dispatch: empty request (give benchmark names)" )
  else if List.exists (fun s -> String.contains s ',') names then
    List.fold_left
      (fun acc arg ->
        match acc with
        | Result.Error _ as e -> e
        | Result.Ok mixes -> (
            let parts =
              List.filter
                (fun x -> x <> "")
                (String.split_on_char ',' arg)
            in
            match mix_of_names parts with
            | Result.Ok mix -> Result.Ok (mix :: mixes)
            | Result.Error _ as e -> e))
      (Result.Ok []) names
    |> Result.map List.rev
  else Result.map (fun m -> [ m ]) (mix_of_names names)

(* ---- renderers ------------------------------------------------------- *)

let pp_predicted ppf (result : Model.result) =
  Format.fprintf ppf "MPPM prediction (%d iterations):@."
    result.Model.iterations;
  Array.iter
    (fun p ->
      Format.fprintf ppf "  %-12s slowdown %5.3f  CPI %6.3f -> %6.3f@."
        p.Model.name p.Model.slowdown p.Model.cpi_single p.Model.cpi_multi)
    result.Model.programs;
  Format.fprintf ppf "  STP %.3f   ANTT %.3f@." result.Model.stp
    result.Model.antt

let pp_measured ppf (m : Context.measured) =
  Format.fprintf ppf "detailed simulation:@.";
  Array.iteri
    (fun i p ->
      Format.fprintf ppf "  %-12s slowdown %5.3f  CPI %6.3f -> %6.3f@."
        p.Mppm_multicore.Multi_core.name m.Context.m_slowdowns.(i)
        m.Context.m_cpi_single.(i) m.Context.m_cpi_multi.(i))
    m.Context.m_detail.Mppm_multicore.Multi_core.programs;
  Format.fprintf ppf "  STP %.3f   ANTT %.3f@." m.Context.m_stp
    m.Context.m_antt

let pp_comparison ppf ((predicted : Model.result), (measured : Context.measured))
    =
  pp_predicted ppf predicted;
  pp_measured ppf measured;
  let err p m = 100.0 *. abs_float (p -. m) /. m in
  Format.fprintf ppf "errors: STP %.1f%%  ANTT %.1f%%@."
    (err predicted.Model.stp measured.Context.m_stp)
    (err predicted.Model.antt measured.Context.m_antt)

let pp_batch pp ~mixes ppf results =
  let many = Array.length results > 1 in
  Array.iteri
    (fun i result ->
      if many then
        Format.fprintf ppf "%s== mix %s ==@."
          (if i > 0 then "\n" else "")
          (Mix.to_string (List.nth mixes i));
      pp ppf result)
    results

(* ---- ranking --------------------------------------------------------- *)

let rank_configs ctx ~cores ~count =
  let rng = Context.rng ctx "cli-rank" in
  let mixes = Sampler.random_mixes rng ~cores ~count in
  let means =
    Array.map
      (fun cfg ->
        let stps =
          Array.map
            (fun mix ->
              (Context.predict ctx ~llc_config:cfg mix).Model.stp)
            mixes
        in
        (cfg, Mppm_util.Stats.mean stps))
      (Array.init Mppm_cache.Configs.llc_config_count (fun i -> i + 1))
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) means;
  means

let pp_ranking ~cores ~count ppf ranking =
  Format.fprintf ppf
    "ranking LLC configs by mean MPPM-predicted STP over %d %d-core mixes@."
    count cores;
  Array.iteri
    (fun rank (cfg, stp) ->
      Format.fprintf ppf "  %d. config #%d  mean STP %.3f@." (rank + 1) cfg
        stp)
    ranking

(* ---- handlers -------------------------------------------------------- *)

let render f = Format.asprintf "%t" f

let max_rank_cores = 64
let max_rank_count = 1_000_000

(* A handler bug (or a malformed-but-decodable query tripping a deep
   Invalid_argument) must come back as a structured Internal error, not
   tear the connection down. *)
let guarded f =
  match f () with
  | resp -> resp
  | exception (Failure msg | Invalid_argument msg) ->
      Wire.Error
        { code = Wire.Internal; message = "Mppm_serve.Dispatch: " ^ msg }

let check_llc_config llc_config k =
  let n = Mppm_cache.Configs.llc_config_count in
  if llc_config < 1 || llc_config > n then
    Wire.Error
      {
        code = Wire.Bad_request;
        message =
          Printf.sprintf
            "Mppm_serve.Dispatch: LLC config %d out of range 1..%d (Table 2)"
            llc_config n;
      }
  else k ()

let handle ctx req =
  Registry.incr "serve.requests";
  let counted kind resp =
    (match resp with
    | Wire.Error _ -> Registry.incr "serve.errors"
    | Wire.Output _ | Wire.Counters _ -> Registry.incr ("serve." ^ kind));
    resp
  in
  match req with
  | Wire.Predict { names; llc_config } ->
      counted "predict" @@ check_llc_config llc_config
      @@ fun () ->
      (match parse_mixes names with
      | Result.Error (code, message) -> Wire.Error { code; message }
      | Result.Ok mixes ->
          guarded @@ fun () ->
          let results =
            Array.map
              (fun mix -> Context.predict ctx ~llc_config mix)
              (Array.of_list mixes)
          in
          Wire.Output
            (render (fun ppf -> pp_batch pp_predicted ~mixes ppf results)))
  | Wire.Compare { names; llc_config } ->
      counted "compare" @@ check_llc_config llc_config
      @@ fun () ->
      (match parse_mixes names with
      | Result.Error (code, message) -> Wire.Error { code; message }
      | Result.Ok mixes ->
          guarded @@ fun () ->
          let results =
            Array.map
              (fun mix ->
                let predicted = Context.predict ctx ~llc_config mix in
                let measured = Context.detailed ctx ~llc_config mix in
                (predicted, measured))
              (Array.of_list mixes)
          in
          Wire.Output
            (render (fun ppf -> pp_batch pp_comparison ~mixes ppf results)))
  | Wire.Rank { cores; count } ->
      counted "rank"
      @@
      if cores < 1 || cores > max_rank_cores then
        Wire.Error
          {
            code = Wire.Bad_request;
            message =
              Printf.sprintf
                "Mppm_serve.Dispatch: rank cores %d out of range 1..%d"
                cores max_rank_cores;
          }
      else if count < 1 || count > max_rank_count then
        Wire.Error
          {
            code = Wire.Bad_request;
            message =
              Printf.sprintf
                "Mppm_serve.Dispatch: rank mix count %d out of range 1..%d"
                count max_rank_count;
          }
      else
        guarded @@ fun () ->
        let ranking = rank_configs ctx ~cores ~count in
        Wire.Output
          (render (fun ppf -> pp_ranking ~cores ~count ppf ranking))
  | Wire.Stats ->
      counted "stats"
        (Wire.Counters
           (Registry.snapshot_prefix "serve"
           @ Registry.snapshot_prefix "pool"
           @ Registry.snapshot_prefix "profile_cache"))
  | Wire.Shutdown -> counted "shutdown" (Wire.Output "mppmd: shutting down\n")
