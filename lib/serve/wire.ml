(* Versioned length-prefixed wire codec for the mppmd prediction service.

   Pure string/bytes manipulation: the socket (and any other channel) is
   owned by the caller, so this unit stays inside the lib/ I/O containment
   rule (S1).  Decoding is total — every malformed shape maps to a
   structured (error_code, message) pair instead of an exception, which is
   what lets the daemon answer garbage with an error response rather than
   closing the connection. *)

let protocol_version = 1
let max_frame_bytes = 16 * 1024 * 1024

(* ---- endpoints ------------------------------------------------------- *)

type endpoint = Unix_socket of string | Tcp of { host : string; port : int }

let endpoint_syntax = "expected \"unix:PATH\" or \"tcp:HOST:PORT\""

let endpoint_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then
        Result.Error
          (Printf.sprintf "Wire.endpoint_of_string: empty socket path in %S" s)
      else Result.Ok (Unix_socket path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j -> (
          let host = String.sub rest 0 j in
          let port_s = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port_s with
          | Some port when host <> "" && port > 0 && port < 65536 ->
              Result.Ok (Tcp { host; port })
          | _ ->
              Result.Error
                (Printf.sprintf
                   "Wire.endpoint_of_string: bad host/port in %S (%s)" s
                   endpoint_syntax))
      | None ->
          Result.Error
            (Printf.sprintf "Wire.endpoint_of_string: missing port in %S (%s)"
               s endpoint_syntax))
  | _ ->
      Result.Error
        (Printf.sprintf "Wire.endpoint_of_string: cannot parse %S (%s)" s
           endpoint_syntax)

let endpoint_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

(* ---- message types --------------------------------------------------- *)

type error_code =
  | Bad_frame
  | Bad_version
  | Bad_request
  | Bad_response
  | Unknown_benchmark
  | Internal

let error_code_to_string = function
  | Bad_frame -> "bad_frame"
  | Bad_version -> "bad_version"
  | Bad_request -> "bad_request"
  | Bad_response -> "bad_response"
  | Unknown_benchmark -> "unknown_benchmark"
  | Internal -> "internal"

let error_code_to_int = function
  | Bad_frame -> 1
  | Bad_version -> 2
  | Bad_request -> 3
  | Bad_response -> 4
  | Unknown_benchmark -> 5
  | Internal -> 6

let error_code_of_int = function
  | 1 -> Some Bad_frame
  | 2 -> Some Bad_version
  | 3 -> Some Bad_request
  | 4 -> Some Bad_response
  | 5 -> Some Unknown_benchmark
  | 6 -> Some Internal
  | _ -> None

type request =
  | Predict of { names : string list; llc_config : int }
  | Compare of { names : string list; llc_config : int }
  | Rank of { cores : int; count : int }
  | Stats
  | Shutdown

type response =
  | Output of string
  | Counters of (string * float) list
  | Error of { code : error_code; message : string }

let equal_request a b =
  match (a, b) with
  | Predict a, Predict b ->
      a.names = b.names && a.llc_config = b.llc_config
  | Compare a, Compare b ->
      a.names = b.names && a.llc_config = b.llc_config
  | Rank a, Rank b -> a.cores = b.cores && a.count = b.count
  | Stats, Stats | Shutdown, Shutdown -> true
  | _ -> false

let equal_response a b =
  match (a, b) with
  | Output a, Output b -> String.equal a b
  | Counters a, Counters b ->
      List.length a = List.length b
      && List.for_all2
           (fun (na, va) (nb, vb) ->
             String.equal na nb
             && Int64.equal (Int64.bits_of_float va) (Int64.bits_of_float vb))
           a b
  | Error a, Error b -> a.code = b.code && String.equal a.message b.message
  | _ -> false

(* ---- encoding -------------------------------------------------------- *)

(* Caps enforced by the decoder (and respected by well-formed encoders):
   a mix-name list and a counter snapshot both stay tiny in practice, so
   a hostile count field cannot drive allocation. *)
let max_list_entries = 4096

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let tag_of_request = function
  | Predict _ -> 1
  | Compare _ -> 2
  | Rank _ -> 3
  | Stats -> 4
  | Shutdown -> 5

let encode_request req =
  let b = Buffer.create 64 in
  put_u8 b protocol_version;
  put_u8 b (tag_of_request req);
  (match req with
  | Predict { names; llc_config } | Compare { names; llc_config } ->
      put_u32 b llc_config;
      put_u32 b (List.length names);
      List.iter (put_string b) names
  | Rank { cores; count } ->
      put_u32 b cores;
      put_u32 b count
  | Stats | Shutdown -> ());
  Buffer.contents b

let encode_response resp =
  let b = Buffer.create 256 in
  put_u8 b protocol_version;
  (match resp with
  | Output text ->
      put_u8 b 1;
      put_string b text
  | Counters kvs ->
      put_u8 b 2;
      put_u32 b (List.length kvs);
      List.iter
        (fun (name, v) ->
          put_string b name;
          put_f64 b v)
        kvs
  | Error { code; message } ->
      put_u8 b 3;
      put_u8 b (error_code_to_int code);
      put_string b message);
  Buffer.contents b

(* ---- decoding -------------------------------------------------------- *)

(* Total decoding over a cursor: every read is bounds-checked and failures
   carry the offset, so a truncated or lying length field surfaces as a
   precise message instead of an exception or over-read. *)

exception Malformed of error_code * string

type cursor = { data : string; mutable pos : int }

let need ~what cur n =
  if cur.pos + n > String.length cur.data then
    raise
      (Malformed
         ( Bad_frame,
           Printf.sprintf
             "Wire: truncated payload: need %d byte(s) for %s at offset %d \
              but only %d remain"
             n what cur.pos
             (String.length cur.data - cur.pos) ))

let get_u8 ~what cur =
  need ~what cur 1;
  let v = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let get_u32 ~what cur =
  need ~what cur 4;
  let byte i = Char.code cur.data.[cur.pos + i] in
  let v = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  cur.pos <- cur.pos + 4;
  v

let get_string ~what cur =
  let len = get_u32 ~what:(what ^ " length") cur in
  if len > max_frame_bytes then
    raise
      (Malformed
         ( Bad_frame,
           Printf.sprintf "Wire: %s length %d exceeds the %d-byte frame cap"
             what len max_frame_bytes ));
  need ~what cur len;
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let get_f64 ~what cur =
  need ~what cur 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor
        (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code cur.data.[cur.pos + i]))
  done;
  cur.pos <- cur.pos + 8;
  Int64.float_of_bits !bits

let get_count ~what cur =
  let n = get_u32 ~what cur in
  if n > max_list_entries then
    raise
      (Malformed
         ( Bad_frame,
           Printf.sprintf "Wire: %s count %d exceeds the %d-entry cap" what n
             max_list_entries ));
  n

let get_list ~what cur read =
  let n = get_count ~what cur in
  List.init n (fun _ -> read cur)

let check_version ~kind cur =
  let v = get_u8 ~what:"version" cur in
  if v <> protocol_version then
    raise
      (Malformed
         ( Bad_version,
           Printf.sprintf
             "Wire: unsupported protocol version %d in %s (this build \
              speaks version %d)"
             v kind protocol_version ))

let check_consumed ~kind cur =
  if cur.pos <> String.length cur.data then
    raise
      (Malformed
         ( Bad_frame,
           Printf.sprintf "Wire: %d trailing byte(s) after a complete %s"
             (String.length cur.data - cur.pos)
             kind ))

let decoding ~kind payload read =
  let cur = { data = payload; pos = 0 } in
  match
    check_version ~kind cur;
    let v = read cur in
    check_consumed ~kind cur;
    v
  with
  | v -> Result.Ok v
  | exception Malformed (code, message) -> Result.Error (code, message)

let decode_request payload =
  decoding ~kind:"request" payload @@ fun cur ->
  match get_u8 ~what:"request tag" cur with
  | (1 | 2) as tag ->
      let llc_config = get_u32 ~what:"llc config" cur in
      let names = get_list ~what:"mix name" cur (get_string ~what:"name") in
      if tag = 1 then Predict { names; llc_config }
      else Compare { names; llc_config }
  | 3 ->
      let cores = get_u32 ~what:"cores" cur in
      let count = get_u32 ~what:"count" cur in
      Rank { cores; count }
  | 4 -> Stats
  | 5 -> Shutdown
  | tag ->
      raise
        (Malformed
           ( Bad_request,
             Printf.sprintf "Wire: unknown request tag %d" tag ))

let decode_response payload =
  decoding ~kind:"response" payload @@ fun cur ->
  match get_u8 ~what:"response tag" cur with
  | 1 -> Output (get_string ~what:"output text" cur)
  | 2 ->
      Counters
        (get_list ~what:"counter" cur (fun cur ->
             let name = get_string ~what:"counter name" cur in
             let v = get_f64 ~what:"counter value" cur in
             (name, v)))
  | 3 ->
      let code_int = get_u8 ~what:"error code" cur in
      let code =
        match error_code_of_int code_int with
        | Some c -> c
        | None ->
            raise
              (Malformed
                 ( Bad_response,
                   Printf.sprintf "Wire: unknown error code %d" code_int ))
      in
      let message = get_string ~what:"error message" cur in
      Error { code; message }
  | tag ->
      raise
        (Malformed
           ( Bad_response,
             Printf.sprintf "Wire: unknown response tag %d" tag ))

(* ---- framing --------------------------------------------------------- *)

let frame payload =
  let len = String.length payload in
  if len < 2 || len > max_frame_bytes then
    invalid_arg
      (Printf.sprintf "Wire.frame: payload of %d bytes (valid range 2..%d)"
         len max_frame_bytes);
  let b = Buffer.create (len + 4) in
  put_u32 b len;
  Buffer.add_string b payload;
  Buffer.contents b

let frame_length prefix =
  if String.length prefix < 4 then
    Result.Error
      ( Bad_frame,
        Printf.sprintf
          "Wire: short length prefix (%d byte(s), frames start with 4)"
          (String.length prefix) )
  else
    let byte i = Char.code prefix.[i] in
    let len =
      (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
    in
    if len < 2 || len > max_frame_bytes then
      Result.Error
        ( Bad_frame,
          Printf.sprintf
            "Wire: announced payload of %d bytes lies outside 2..%d" len
            max_frame_bytes )
    else Result.Ok len
