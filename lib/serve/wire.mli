(** The mppmd wire protocol: a versioned, length-prefixed request/response
    codec.

    Everything here is pure string/bytes manipulation — no sockets, no
    channels — so the daemon ([bin/mppmd]), the CLI client ([mppm client])
    and the load generator ([tools/loadgen.exe]) share one codec while all
    I/O stays out of lib/ (see docs/service.md for the protocol
    specification).

    {2 Frame layout}

    Every message travels as one frame:

    {v
    +----------------+---------+-----+------------------+
    | length (u32 BE)| version | tag | body ...         |
    +----------------+---------+-----+------------------+
         4 bytes        1 byte  1 byte   length - 2 bytes
    v}

    The length covers the payload (version byte included, itself
    excluded) and must lie in [2 .. max_frame_bytes].  Integers are
    big-endian; strings are a u32 byte length followed by the bytes;
    floats are the 8 IEEE-754 bytes of [Int64.bits_of_float],
    big-endian.  Decoding never raises: malformed input comes back as an
    {!error_code} plus a human-readable message, so a server can answer
    with a structured {!response} error instead of closing the
    connection. *)

val protocol_version : int
(** The protocol version this build speaks (currently 1).  Encoders stamp
    it into every payload; decoders reject any other value with
    {!Bad_version}. *)

val max_frame_bytes : int
(** Upper bound on a payload (16 MiB).  {!frame} refuses to build larger
    frames and {!frame_length} rejects larger announcements, so a corrupt
    or hostile length prefix cannot make a peer allocate unboundedly. *)

(** Where a daemon listens: a Unix-domain socket path or a TCP host/port. *)
type endpoint = Unix_socket of string | Tcp of { host : string; port : int }

val endpoint_of_string : string -> (endpoint, string) result
(** Parses ["unix:PATH"] or ["tcp:HOST:PORT"] (the form taken by
    [--connect] and [--listen] flags).  The error message spells out both
    accepted forms. *)

val endpoint_to_string : endpoint -> string
(** Renders an endpoint back to the [--connect] syntax accepted by
    {!endpoint_of_string} (round-trips exactly). *)

(** Structured failure classes carried by error responses.  [Bad_frame]
    covers framing-layer damage (bad length prefix, truncated payload),
    [Bad_version] a well-framed payload of a protocol version this build
    does not speak, [Bad_request]/[Bad_response] a payload that frames and
    versions correctly but does not decode, [Unknown_benchmark] a mix
    naming a benchmark outside the suite, and [Internal] a server-side
    failure while handling a well-formed request. *)
type error_code =
  | Bad_frame
  | Bad_version
  | Bad_request
  | Bad_response
  | Unknown_benchmark
  | Internal

val error_code_to_string : error_code -> string
(** Stable lower-snake names (["bad_frame"], ...) for logs and client
    error lines. *)

(** One client query.  [Predict]/[Compare] carry the benchmark-name
    arguments exactly as the one-shot CLI takes them (comma syntax makes
    each argument its own mix, plain names form one mix), plus the Table 2
    LLC configuration; [Rank] asks for the LLC-config ranking over a
    freshly sampled population; [Stats] reads the daemon's counters;
    [Shutdown] asks the daemon to exit after replying. *)
type request =
  | Predict of { names : string list; llc_config : int }
  | Compare of { names : string list; llc_config : int }
  | Rank of { cores : int; count : int }
  | Stats
  | Shutdown

(** One server answer.  [Output] carries rendered text, byte-identical to
    what the one-shot CLI prints for the same query; [Counters] a sorted
    name/value snapshot of the daemon's {!Mppm_obs.Registry} metrics;
    [Error] a structured failure that leaves the connection usable. *)
type response =
  | Output of string
  | Counters of (string * float) list
  | Error of { code : error_code; message : string }

val equal_request : request -> request -> bool
(** Structural equality (used by the round-trip tests). *)

val equal_response : response -> response -> bool
(** Structural equality; counter values compare bitwise
    ([Int64.bits_of_float]), which is exactly what the codec preserves. *)

val encode_request : request -> string
(** The payload (version byte onward) for a request; wrap with {!frame}
    before writing to a socket. *)

val decode_request : string -> (request, error_code * string) result
(** Decodes a payload produced by {!encode_request}.  Never raises:
    truncated bodies, oversized counts, unknown tags and foreign versions
    come back as [(code, message)]. *)

val encode_response : response -> string
(** The payload for a response; wrap with {!frame}. *)

val decode_response : string -> (response, error_code * string) result
(** Decodes a payload produced by {!encode_response}; same error contract
    as {!decode_request}. *)

val frame : string -> string
(** [frame payload] prepends the 4-byte big-endian length.  Raises
    [Invalid_argument] if the payload is empty or exceeds
    {!max_frame_bytes} (servers never build such payloads; the guard is
    for codec misuse, not remote input). *)

val frame_length : string -> (int, error_code * string) result
(** [frame_length prefix] reads a 4-byte length prefix and validates the
    bounds ([2 .. max_frame_bytes]), so a reader knows how many payload
    bytes to expect.  Rejects short prefixes and out-of-range lengths
    with {!Bad_frame}. *)
