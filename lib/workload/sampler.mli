(** Drawing workload-mix populations.

    Two sampling regimes matter in the paper: {e current practice} draws a
    small number of random mixes (each core slot filled independently at
    random, possibly within categories), while {e MPPM-style evaluation}
    draws a very large sample — or, for small populations, enumerates
    everything. *)

val random_mixes :
  Mppm_util.Rng.t -> cores:int -> count:int -> Mix.t array
(** [random_mixes rng ~cores ~count] draws [count] mixes over the suite,
    each slot independently uniform over the 29 benchmarks (duplicates
    across draws are possible, as in practice). *)

val distinct_random_mixes :
  Mppm_util.Rng.t -> cores:int -> count:int -> Mix.t array
(** Like {!random_mixes} but rejects duplicate mixes, drawing until [count]
    distinct ones exist.  Requires [count] not to exceed the population. *)

val uniform_multiset_mixes :
  Mppm_util.Rng.t -> cores:int -> count:int -> Mix.t array
(** Draws uniformly over the {e multiset population} (each of the
    C(29+m-1, m) mixes equally likely), the right notion when estimating
    population statistics such as Fig. 3's confidence intervals. *)

val all_mixes : cores:int -> Mix.t array
(** Enumerates the entire population; intended for 2 cores (435 mixes) or
    3 (4,495).  Raises [Invalid_argument] beyond 10M mixes. *)

val category_sets :
  Mppm_util.Rng.t ->
  mem:int array ->
  comp:int array ->
  cores:int ->
  sets:int ->
  per_composition:int ->
  Mix.t array array
(** [category_sets rng ~mem ~comp ~cores ~sets ~per_composition] builds
    [sets] workload sets, each containing [per_composition] mixes of every
    composition (paper Fig. 7(b): 4 MEM / 4 COMP / 4 MIX). *)

val random_sets :
  Mppm_util.Rng.t -> cores:int -> sets:int -> per_set:int -> Mix.t array array
(** [random_sets rng ~cores ~sets ~per_set] builds [sets] independent sets
    of [per_set] random mixes (paper Fig. 7(a): 20 sets of 12). *)
