module Rng = Mppm_util.Rng
module Combinatorics = Mppm_util.Combinatorics
module Suite = Mppm_trace.Suite

let n = Suite.count

let random_mixes rng ~cores ~count =
  Array.init count (fun _ ->
      Mix.of_indices ~n (Combinatorics.random_selection_with_repetition rng ~n ~m:cores))

let distinct_random_mixes rng ~cores ~count =
  let population = Combinatorics.multisets_count ~n ~m:cores in
  if float_of_int count > population then
    invalid_arg "Sampler.distinct_random_mixes: count exceeds population";
  let seen = Hashtbl.create ~random:false (2 * count) in
  let result = ref [] in
  while Hashtbl.length seen < count do
    let mix =
      Mix.of_indices ~n
        (Combinatorics.random_selection_with_repetition rng ~n ~m:cores)
    in
    let key = Mix.to_string mix in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      result := mix :: !result
    end
  done;
  Array.of_list (List.rev !result)

let uniform_multiset_mixes rng ~cores ~count =
  Array.init count (fun _ ->
      Mix.of_indices ~n (Combinatorics.random_multiset rng ~n ~m:cores))

let all_mixes ~cores =
  Combinatorics.enumerate_multisets ~n ~m:cores
  |> List.map (Mix.of_indices ~n)
  |> Array.of_list

let category_sets rng ~mem ~comp ~cores ~sets ~per_composition =
  Array.init sets (fun _ ->
      Category.compositions
      |> List.concat_map (fun composition ->
             List.init per_composition (fun _ ->
                 Category.random_mix rng ~mem ~comp ~cores composition))
      |> Array.of_list)

let random_sets rng ~cores ~sets ~per_set =
  Array.init sets (fun _ -> random_mixes rng ~cores ~count:per_set)
