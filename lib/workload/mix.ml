module Suite = Mppm_trace.Suite

type t = { indices : int array }

let of_indices ~n indices =
  if Array.length indices = 0 then invalid_arg "Mix.of_indices: empty mix";
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Mix.of_indices: index out of range")
    indices;
  let indices = Array.copy indices in
  Array.sort compare indices;
  { indices }

let of_names names =
  of_indices ~n:Suite.count (Array.map Suite.index names)

let size t = Array.length t.indices
let indices t = Array.copy t.indices
let names t = Array.map (fun i -> Suite.names.(i)) t.indices
let benchmarks t = Array.map (fun i -> Suite.all.(i)) t.indices
let equal a b = a.indices = b.indices
let compare a b = compare a.indices b.indices
let to_string t = String.concat "+" (Array.to_list (names t))
let pp ppf t = Format.pp_print_string ppf (to_string t)

let population ~cores =
  Mppm_util.Combinatorics.multisets_count ~n:Suite.count ~m:cores
