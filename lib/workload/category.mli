(** MEM/COMP benchmark classification and category-structured mixes.

    Current practice (paper Sec. 5) often buckets benchmarks into
    memory-intensive (MEM) and compute-intensive (COMP) classes and then
    builds workload categories: all-MEM mixes, all-COMP mixes, and MIX
    mixes of half each.  Fig. 7(b) evaluates random selection within this
    category structure (4 MEM / 4 COMP / 4 MIX mixes per set). *)

type t = Mem | Comp
(** Memory-intensive vs. compute-intensive. *)

val classify : memory_fraction:float -> threshold:float -> t
(** [classify ~memory_fraction ~threshold] is [Mem] iff the benchmark's
    memory-CPI fraction reaches the threshold. *)

val classify_profiles :
  ?threshold:float -> Mppm_profile.Profile.t array -> t array
(** Classifies every profile by {!Mppm_profile.Profile.memory_cpi_fraction}
    (default threshold 0.5: at least half the isolated CPI is memory
    stall). *)

val partition : t array -> int array * int array
(** [partition classes] is [(mem_indices, comp_indices)]. *)

type composition = All_mem | All_comp | Half_half
(** The three workload categories of Sec. 5. *)

val compositions : composition list
(** [All_mem; All_comp; Half_half]. *)

val composition_name : composition -> string
(** "MEM", "COMP" or "MIX". *)

val random_mix :
  Mppm_util.Rng.t ->
  mem:int array ->
  comp:int array ->
  cores:int ->
  composition ->
  Mix.t
(** [random_mix rng ~mem ~comp ~cores composition] draws a mix of the given
    composition (programs drawn independently and uniformly within their
    class; [Half_half] rounds the MEM half down).  Raises
    [Invalid_argument] if a needed class is empty. *)

val pp : Format.formatter -> t -> unit
(** Prints "MEM" or "COMP". *)
