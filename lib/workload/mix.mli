(** Multi-program workload mixes: multisets of benchmarks.

    A mix is what one experiment schedules onto the cores of a multi-core
    processor — e.g. [gamess, gamess, hmmer, soplex] on a quad-core.  Order
    is irrelevant; repetition is allowed (two copies of gamess are two
    independent instances of the same program). *)

type t = private { indices : int array }
(** Benchmark indices into {!Mppm_trace.Suite.all}, kept sorted. *)

val of_indices : n:int -> int array -> t
(** [of_indices ~n indices] validates each index against the population
    size [n] and sorts.  Raises [Invalid_argument] on out-of-range or empty
    input. *)

val of_names : string array -> t
(** [of_names names] builds a mix of suite benchmarks by name.  Raises
    [Not_found] on an unknown name. *)

val size : t -> int
(** Number of programs (= cores used). *)

val indices : t -> int array
(** A fresh copy of the (sorted) benchmark indices. *)

val names : t -> string array
(** Suite benchmark names, aligned with {!indices}. *)

val benchmarks : t -> Mppm_trace.Benchmark.t array
(** The benchmark specs, aligned with {!indices}. *)

val equal : t -> t -> bool
(** Same multiset of benchmarks. *)

val compare : t -> t -> int
(** Lexicographic order on the sorted index arrays. *)

val to_string : t -> string
(** "gamess+gamess+hmmer+soplex". *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)

val population : cores:int -> float
(** [population ~cores] is the number of distinct mixes of [cores] programs
    over the 29-benchmark suite — the combinatorial explosion of the
    paper's introduction (435 at 2 cores, 35,960 at 4, >30.2M at 8). *)
