module Rng = Mppm_util.Rng
module Profile = Mppm_profile.Profile

type t = Mem | Comp

let classify ~memory_fraction ~threshold =
  if memory_fraction >= threshold then Mem else Comp

let classify_profiles ?(threshold = 0.5) profiles =
  Array.map
    (fun p ->
      classify ~memory_fraction:(Profile.memory_cpi_fraction p) ~threshold)
    profiles

let partition classes =
  let mem = ref [] and comp = ref [] in
  Array.iteri
    (fun i cls ->
      match cls with Mem -> mem := i :: !mem | Comp -> comp := i :: !comp)
    classes;
  (Array.of_list (List.rev !mem), Array.of_list (List.rev !comp))

type composition = All_mem | All_comp | Half_half

let compositions = [ All_mem; All_comp; Half_half ]

let composition_name = function
  | All_mem -> "MEM"
  | All_comp -> "COMP"
  | Half_half -> "MIX"

let draw rng pool count =
  if Array.length pool = 0 then
    invalid_arg "Category.random_mix: empty benchmark class";
  Array.init count (fun _ -> Rng.pick rng pool)

let random_mix rng ~mem ~comp ~cores composition =
  if cores <= 0 then invalid_arg "Category.random_mix: cores <= 0";
  let picks =
    match composition with
    | All_mem -> draw rng mem cores
    | All_comp -> draw rng comp cores
    | Half_half ->
        let mem_count = cores / 2 in
        Array.append (draw rng mem mem_count) (draw rng comp (cores - mem_count))
  in
  Mix.of_indices ~n:Mppm_trace.Suite.count picks

let pp ppf = function
  | Mem -> Format.pp_print_string ppf "MEM"
  | Comp -> Format.pp_print_string ppf "COMP"
