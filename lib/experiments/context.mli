(** Shared machinery for the paper's experiments: per-(benchmark, LLC
    config) profile management with optional disk caching, detailed
    simulation of mixes, MPPM prediction of mixes, and the measured/
    predicted metric pairs every figure is built from. *)

type t
(** An experiment context: scale, seed, model parameters and the profile
    cache. *)

val create :
  ?core:Mppm_simcore.Core_model.params ->
  ?model_contention:Mppm_contention.Contention.model ->
  ?model_update:Mppm_core.Model.update_rule ->
  ?model_smoothing:float ->
  ?seed:int ->
  ?cache_dir:string ->
  Scale.t ->
  t
(** [create scale] builds a context.  [cache_dir], when given, persists
    single-core profiles across runs (they are the "one-time cost" of
    Fig. 1).  [seed] (default 42) drives all sampling. *)

val scale : t -> Scale.t
(** The scale this context was created with. *)

val seed : t -> int  (* mppm: unit 1 *)
(** The master seed (default 42) all sampling derives from. *)

val rng : t -> string -> Mppm_util.Rng.t
(** [rng t purpose] is a fresh deterministic stream for the given purpose
    string; distinct purposes yield independent streams. *)

val model_params : t -> Mppm_core.Model.params
(** The MPPM parameters this context uses (paper-faithful ratios at the
    context's scale, with any constructor overrides applied). *)

val cache_path : t -> llc_config:int -> int -> string option
(** [cache_path t ~llc_config i] is the on-disk location of suite benchmark
    [i]'s profile, or [None] without a cache directory.  The filename
    carries an explicit {!Mppm_util.Fingerprint} digest of everything the
    profile depends on (benchmark spec, core parameters, hierarchy, scale,
    profiling seed), so changing any of them changes the path and a stale
    cache entry is never mistaken for the requested profile. *)

val profile : t -> llc_config:int -> int -> Mppm_profile.Profile.t
(** [profile t ~llc_config i] is the single-core profile of suite benchmark
    [i] on LLC configuration [llc_config] (Table 2), computed on first use
    (or loaded from the cache directory) and memoized.  The memo table is
    a {!Mppm_pool.Single_flight} front, so concurrent pool workers
    requesting the same profile trigger exactly one computation and share
    the result.  Counts every lookup into {!Mppm_obs.Registry} under
    [profile_cache.*]: [memo_hits] (served from memory), [hits] (loaded
    from disk), [misses] (computed), and [stale] (cache-directory entries
    for the requested benchmark/config whose fingerprint digest no longer
    matches). *)

(** Classification of a profile-cache directory's contents. *)
type cache_report = {
  cr_live : string list;
      (** basenames some (benchmark, Table 2 config) pair maps to under the
          current context settings *)
  cr_stale : string list;
      (** recognized ["name-cfgN-*.prof"] entries whose fingerprint digest
          matches no current benchmark/config pair *)
  cr_tmp : string list;
      (** orphaned ["*.tmp"] staging files left by an interrupted atomic
          profile write *)
  cr_foreign : string list;  (** everything else in the directory *)
}

val scan_cache : t -> cache_report option
(** [scan_cache t] classifies every file of the cache directory ([None]
    without one).  Basenames are sorted within each class. *)

val prune_cache : t -> string list
(** [prune_cache t] deletes the {!cache_report.cr_stale} entries and the
    orphaned {!cache_report.cr_tmp} staging files (live and foreign files
    are untouched) and returns the deleted basenames. *)

val all_profiles :
  ?pool:Mppm_pool.Pool.t -> t -> llc_config:int ->
  Mppm_profile.Profile.t array
(** Profiles of the whole suite, in suite order.  [pool] computes them in
    parallel (results are positional, so the array is identical to the
    sequential one). *)

val cpi_single : t -> llc_config:int -> Mppm_workload.Mix.t -> float array  (* mppm: unit cycles/insns *)
(** Isolated whole-trace CPI of each program of the mix. *)

(** The measured (detailed-simulation) view of one mix. *)
type measured = {
  m_cpi_single : float array;  (* mppm: unit cycles/insns *)
  m_cpi_multi : float array;  (* mppm: unit cycles/insns *)
  m_slowdowns : float array;  (* mppm: unit 1 *)
  m_stp : float;  (* mppm: unit 1 *)
  m_antt : float;  (* mppm: unit 1 *)
  m_detail : Mppm_multicore.Multi_core.result;
}

val detailed :
  ?llc_partition:int array ->
  t ->
  llc_config:int ->
  Mppm_workload.Mix.t ->
  measured
(** Runs the detailed multi-core simulator on the mix (program seeds match
    the profiling runs; per-slot address offsets are deterministic in the
    context seed).  [llc_partition] way-partitions the shared LLC per core
    slot. *)

val predict :
  ?obs:Mppm_obs.Trace.t ->
  t ->
  llc_config:int ->
  Mppm_workload.Mix.t ->
  Mppm_core.Model.result
(** Runs MPPM on the mix from cached profiles.  [obs] (default
    {!Mppm_obs.Trace.null}) receives the model's event stream; results are
    bit-for-bit independent of it. *)

val predict_with :
  ?obs:Mppm_obs.Trace.t ->
  t ->
  params:Mppm_core.Model.params ->
  llc_config:int ->
  Mppm_workload.Mix.t ->
  Mppm_core.Model.result
(** {!predict} with explicit model parameters (ablations, partition-aware
    contention, ...). *)

val predict_static :
  t -> llc_config:int -> Mppm_workload.Mix.t -> Mppm_core.Model.result
(** The phase-unaware {!Mppm_core.Static_model} baseline on the same
    profiles. *)

val hierarchy : t -> llc_config:int -> Mppm_cache.Hierarchy.config
(** The Table 1 hierarchy with LLC configuration [llc_config], at the
    context's scale. *)

val categories : t -> llc_config:int -> Mppm_workload.Category.t array
(** MEM/COMP classification of the suite from its profiles. *)
