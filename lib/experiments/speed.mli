(** Sec. 4.3: MPPM speed versus detailed simulation.

    The paper: single-core profiling costs ~1 hour per benchmark (one-time);
    MPPM then predicts a mix in sub-second time while detailed simulation of
    an 8-core mix takes ~12 hours — up to five orders of magnitude.  At our
    scale both sides shrink by the same trace factor, so the {e ratios} are
    the reproducible quantity. *)

type t = {
  profile_seconds : float;  (** wall seconds per single-core profiling run *)  (* mppm: unit seconds *)
  one_time_cost_seconds : float;  (** profiling the whole 29-benchmark suite *)  (* mppm: unit seconds *)
  detailed_seconds_per_mix : (int * float) list;
      (** (cores, wall seconds) per detailed multi-core simulation *)
  mppm_seconds_per_mix : float;  (* mppm: unit seconds *)
  speedup_model_only : (int * float) list;
      (** (cores, detailed/MPPM) once profiles exist *)
  speedup_study_150 : (int * float) list;
      (** (cores, speedup) for a 150-mix study including the one-time
          profiling cost — the paper's 62x number for 8 cores *)
}

val measure :
  Context.t -> ?cores_list:int list -> ?sim_mixes:int -> ?model_mixes:int ->
  unit -> t
(** [measure ctx ()] times a fresh profiling run, [sim_mixes] (default 3)
    detailed simulations per core count (default [2; 4; 8]) and
    [model_mixes] (default 50) MPPM predictions. *)

val pp : Format.formatter -> t -> unit
(** The Sec. 4.3 timing table: costs, then speedups per core count. *)
