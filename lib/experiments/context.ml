module Rng = Mppm_util.Rng
module Configs = Mppm_cache.Configs
module Suite = Mppm_trace.Suite
module Single_core = Mppm_simcore.Single_core
module Core_model = Mppm_simcore.Core_model
module Multi_core = Mppm_multicore.Multi_core
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Mix = Mppm_workload.Mix
module Category = Mppm_workload.Category
module Fingerprint = Mppm_util.Fingerprint

type t = {
  scale : Scale.t;
  core : Core_model.params;
  contention : Mppm_contention.Contention.model;
  update_rule : Model.update_rule;
  smoothing : float;
  seed : int;
  cache_dir : string option;
  profiles : (int * int, Profile.t) Hashtbl.t;  (* (llc_config, bench) *)
  offsets : int array;  (* per-core-slot address offsets *)
}

let max_cores = 16

let create ?(core = Core_model.default)
    ?(model_contention = Mppm_contention.Contention.default)
    ?(model_update = Model.Consistent) ?(model_smoothing = 0.5) ?(seed = 42)
    ?cache_dir scale =
  (match cache_dir with
  | Some dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  | None -> ());
  {
    scale;
    core;
    contention = model_contention;
    update_rule = model_update;
    smoothing = model_smoothing;
    seed;
    cache_dir;
    profiles = Hashtbl.create ~random:false 64;
    offsets = Multi_core.default_offsets ~seed max_cores;
  }

let scale t = t.scale
let seed t = t.seed

let rng t purpose =
  (* Derive a purpose-specific seed so experiment arms stay independent. *)
  let h = ref t.seed in
  String.iter (fun c -> h := (!h * 31) + Char.code c) purpose;
  Rng.create ~seed:(!h land max_int)

let model_params t =
  {
    (Model.default_params
       ~trace_instructions:t.scale.Scale.trace_instructions)
    with
    contention = t.contention;
    update_rule = t.update_rule;
    smoothing = t.smoothing;
  }

let hierarchy _t ~llc_config = Configs.baseline ~llc:llc_config ()

let cache_path t ~llc_config bench_index =
  Option.map
    (fun dir ->
      (* The digest covers everything the profile depends on, so a stale
         cache entry can never be mistaken for the requested profile. *)
      let benchmark = Suite.all.(bench_index) in
      let digest =
        Fingerprint.to_hex
          (Fingerprint.of_value
             ( benchmark,
               t.core,
               hierarchy t ~llc_config,
               t.scale,
               Suite.seed_for benchmark.Mppm_trace.Benchmark.name ))
      in
      Filename.concat dir
        (Printf.sprintf "%s-cfg%d-%s.prof" Suite.names.(bench_index)
           llc_config digest))
    t.cache_dir

let compute_profile t ~llc_config bench_index =
  let benchmark = Suite.all.(bench_index) in
  Single_core.profile
    (Single_core.config ~core:t.core (hierarchy t ~llc_config))
    ~benchmark
    ~seed:(Suite.seed_for benchmark.Mppm_trace.Benchmark.name)
    ~trace_instructions:t.scale.Scale.trace_instructions
    ~interval_instructions:t.scale.Scale.interval_instructions

let profile t ~llc_config bench_index =
  if bench_index < 0 || bench_index >= Suite.count then
    invalid_arg "Context.profile: bad benchmark index";
  let key = (llc_config, bench_index) in
  match Hashtbl.find_opt t.profiles key with
  | Some p -> p
  | None ->
      let p =
        match cache_path t ~llc_config bench_index with
        | Some path when Sys.file_exists path -> Profile.load path
        | Some path ->
            let p = compute_profile t ~llc_config bench_index in
            Profile.save p path;
            p
        | None -> compute_profile t ~llc_config bench_index
      in
      Hashtbl.add t.profiles key p;
      p

let all_profiles t ~llc_config =
  Array.init Suite.count (fun i -> profile t ~llc_config i)

let cpi_single t ~llc_config mix =
  Array.map
    (fun i -> Profile.cpi (profile t ~llc_config i))
    (Mix.indices mix)

type measured = {
  m_cpi_single : float array;
  m_cpi_multi : float array;
  m_slowdowns : float array;
  m_stp : float;
  m_antt : float;
  m_detail : Multi_core.result;
}

let detailed ?llc_partition t ~llc_config mix =
  let indices = Mix.indices mix in
  if Array.length indices > max_cores then
    invalid_arg "Context.detailed: mix larger than the supported core count";
  let specs =
    Array.mapi
      (fun slot bench_index ->
        let benchmark = Suite.all.(bench_index) in
        {
          Multi_core.benchmark;
          seed = Suite.seed_for benchmark.Mppm_trace.Benchmark.name;
          offset = t.offsets.(slot);
        })
      indices
  in
  let detail =
    Multi_core.run
      (Multi_core.config ~core:t.core ?llc_partition (hierarchy t ~llc_config))
      ~programs:specs
      ~trace_instructions:t.scale.Scale.trace_instructions
  in
  let m_cpi_single = cpi_single t ~llc_config mix in
  let m_cpi_multi =
    Array.map
      (fun p -> p.Multi_core.multicore_cpi)
      detail.Multi_core.programs
  in
  {
    m_cpi_single;
    m_cpi_multi;
    m_slowdowns = Metrics.slowdowns ~cpi_single:m_cpi_single ~cpi_multi:m_cpi_multi;
    m_stp = Metrics.stp ~cpi_single:m_cpi_single ~cpi_multi:m_cpi_multi;
    m_antt = Metrics.antt ~cpi_single:m_cpi_single ~cpi_multi:m_cpi_multi;
    m_detail = detail;
  }

let mix_profiles t ~llc_config mix =
  Array.map (fun i -> profile t ~llc_config i) (Mix.indices mix)

let predict t ~llc_config mix =
  Model.predict_profiles (model_params t) (mix_profiles t ~llc_config mix)

let predict_with t ~params ~llc_config mix =
  Model.predict_profiles params (mix_profiles t ~llc_config mix)

let predict_static t ~llc_config mix =
  Mppm_core.Static_model.predict
    { Mppm_core.Static_model.default_params with
      contention = t.contention }
    (mix_profiles t ~llc_config mix)

let categories t ~llc_config =
  Category.classify_profiles (all_profiles t ~llc_config)
